/**
 * @file
 * Section VIII reporter: the hazard-pointer announcement kernel.
 *
 * The announcement loop (Figure 12) needs the re-check load to
 * execute after the announcement store is visible; on AArch64 that
 * is a full DMB today.  With EDE, the store produces a key the load
 * consumes (Section VIII-A):
 *
 *     str (1,0), x3, [x2]      ; announce
 *     ldr (0,1), x4, [x1]      ; re-check, ordered after the store
 *
 * The bench measures announcements under the DMB version and the EDE
 * version on both hardware realizations.
 */

#include <cstdio>

#include "common/stats.hh"
#include "sim/session.hh"
#include "trace/builder.hh"

using namespace ede;

namespace {

/**
 * Emit @p count hazard-pointer announcements (Figure 12 body),
 * interleaved with the data-structure reads a lock-free traversal
 * performs.  The full fence serializes those unrelated reads; the
 * EDE store->load dependence only orders the re-check.
 */
Trace
buildKernel(bool use_ede, int count)
{
    Trace t;
    TraceBuilder b(t);
    const Addr elem_loc = 0x200000;   // Element-pointer cell.
    const Addr hazard = 0x300000;     // This thread's hazard slot.
    const Addr nodes = 0x400000;      // Lock-free structure nodes.
    // Warm the shared cells.
    b.str(1, 2, elem_loc, 0xabc);
    b.str(1, 2, hazard, 0);
    b.dsbSy();
    for (int i = 0; i < count; ++i) {
        // ldr x3, [x1]: load the element's location.
        b.ldr(3, 1, elem_loc);
        // str x3, [x2]: announce it.
        if (use_ede) {
            b.str(3, 2, hazard, 0xabc, 0, {1, 0});
            // ldr (0,1) x4, [x1]: ordered re-check, no fence.
            b.ldr(4, 1, elem_loc, 0, {0, 1});
        } else {
            b.str(3, 2, hazard, 0xabc);
            // Figure 12 line 5: dmb sy, a *full* fence.  Our DSB SY
            // models its all-older-complete semantics.
            b.dsbSy();
            b.ldr(4, 1, elem_loc);
        }
        // cmp + b.ne Loop (succeeds: locations match).
        b.branchCond("hp.retry", 3, 4, false);
        // Traverse the protected structure: independent reads that a
        // full fence needlessly serializes.
        for (int l = 0; l < 3; ++l) {
            b.ldr(static_cast<RegIndex>(5 + l), 8,
                  nodes + 64ull * ((i * 7 + l * 131) % 4096));
        }
        b.alu(9, 9, kNoReg, 1);
    }
    return t;
}

Cycle
run(Config cfg, bool use_ede, int count)
{
    // Through the unified Session path (single core of the N-core
    // System); the paper preset for cfg carries the EnforceMode.
    Session session(SimConfig::paper(cfg));
    const SimResult r =
        session.run(RunRequest::of(buildKernel(use_ede, count)));
    if (!r.ok())
        throw SimFaultError(r.error);
    return r.stats.cycles;
}

} // namespace

int
main()
{
    std::printf("== Section VIII: hazard-pointer announcement ==\n\n");
    constexpr int kCount = 2000;
    const Cycle fence = run(Config::B, false, kCount);
    const Cycle iq = run(Config::IQ, true, kCount);
    const Cycle wb = run(Config::WB, true, kCount);

    TextTable t({"variant", "cycles", "cycles/announce", "speedup"});
    auto row = [&](const char *name, Cycle c) {
        t.addRow({name, std::to_string(c),
                  fmtDouble(static_cast<double>(c) / kCount, 2),
                  fmtDouble(static_cast<double>(fence) / c, 2) + "x"});
    };
    row("DMB fence (Figure 12)", fence);
    row("EDE str->ldr, IQ", iq);
    row("EDE str->ldr, WB", wb);
    std::printf("%s\n", t.str().c_str());
    std::printf("note: the load variant gates at issue in both "
                "designs (Section VIII-C),\nso IQ and WB behave "
                "identically here; both remove the full fence.\n");
    return 0;
}
