/**
 * @file
 * Ablation sweeps over the design points DESIGN.md calls out: write
 * buffer depth, write-buffer drain width, NVM persist-accept latency,
 * on-DIMM buffer depth, NVM media write bandwidth, and the
 * conservative-vs-aggressive DMB ST timing.
 *
 * Each sweep reports op-phase cycles for B / IQ / WB / U on the
 * update kernel, so the sensitivity of the Figure 9 result to each
 * knob is visible.
 *
 * Every tweak point is declared as an axis of one ExperimentPlan and
 * the whole design space runs through the experiment layer in a
 * single parallel, cache-backed pass.
 */

#include <cstdio>
#include <functional>

#include "bench_util.hh"

using namespace ede;
using namespace ede::bench;

namespace {

const std::vector<Config> kSweepConfigs = {Config::B, Config::IQ,
                                           Config::WB, Config::U};

using Tweak = std::function<void(SimParams &)>;

struct SweepAxis
{
    std::string title;
    std::vector<std::pair<std::string, Tweak>> points;
};

/** Print one axis' table from the shared results. */
void
printSweep(const SweepAxis &axis, const exp::ExperimentResults &results)
{
    std::printf("-- %s --\n", axis.title.c_str());
    TextTable t({"point", "B", "IQ", "WB", "U", "U/B"});
    for (const auto &[label, tweak] : axis.points) {
        std::vector<std::string> row{label};
        Cycle base = 0;
        Cycle last_u = 0;
        for (Config cfg : kSweepConfigs) {
            const Cycle cycles =
                results
                    .cellByLabel(label + "/" +
                                 std::string(configName(cfg)))
                    .opCycles;
            if (cfg == Config::B)
                base = cycles;
            if (cfg == Config::U)
                last_u = cycles;
            row.push_back(std::to_string(cycles));
        }
        row.push_back(fmtDouble(static_cast<double>(last_u) /
                                static_cast<double>(base), 2));
        t.addRow(row);
    }
    std::printf("%s\n", t.str().c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    BenchOptions opt = parseOptions(argc, argv, "ablation_sweeps");
    printBanner("Ablations (update kernel)", opt);

    const std::vector<SweepAxis> axes = {
        {"write buffer depth (Table I: 16)",
         {{"wb=4", [](SimParams &p) { p.core.wbSize = 4; }},
          {"wb=8", [](SimParams &p) { p.core.wbSize = 8; }},
          {"wb=16", [](SimParams &) {}},
          {"wb=32", [](SimParams &p) { p.core.wbSize = 32; }}}},
        {"write buffer drain width",
         {{"drain=1",
           [](SimParams &p) { p.core.wbDrainPerCycle = 1; }},
          {"drain=2", [](SimParams &) {}},
          {"drain=4",
           [](SimParams &p) { p.core.wbDrainPerCycle = 4; }}}},
        {"persist-accept latency (WPQ RTT)",
         {{"accept=24",
           [](SimParams &p) { p.mem.nvm.bufferAccept = 24; }},
          {"accept=60", [](SimParams &) {}},
          {"accept=150",
           [](SimParams &p) { p.mem.nvm.bufferAccept = 150; }}}},
        {"on-DIMM buffer depth (Table I: 128)",
         {{"slots=32",
           [](SimParams &p) { p.mem.nvm.bufferSlots = 32; }},
          {"slots=128", [](SimParams &) {}},
          {"slots=512",
           [](SimParams &p) { p.mem.nvm.bufferSlots = 512; }}}},
        {"NVM media write streams (bandwidth)",
         {{"writers=2",
           [](SimParams &p) { p.mem.nvm.mediaWriters = 2; }},
          {"writers=5", [](SimParams &) {}},
          {"writers=10",
           [](SimParams &p) { p.mem.nvm.mediaWriters = 10; }},
          {"writers=40",
           [](SimParams &p) { p.mem.nvm.mediaWriters = 40; }}}},
        {"NVM write latency (Table I: 500ns = 1500 cyc)",
         {{"write=900c",
           [](SimParams &p) { p.mem.nvm.writeLatency = 900; }},
          {"write=1500c", [](SimParams &) {}},
          {"write=3000c",
           [](SimParams &p) { p.mem.nvm.writeLatency = 3000; }}}},
    };

    // One plan for the whole design space: every axis point becomes
    // a labeled cell, so identical points (the Table I defaults each
    // axis re-declares) even dedupe through the result cache.
    exp::ExperimentPlan plan;
    for (const SweepAxis &axis : axes) {
        for (const auto &[label, tweak] : axis.points) {
            plan.addTweakAxis(label, AppId::Update, kSweepConfigs,
                              opt.spec, tweak);
        }
    }
    const exp::ExperimentResults results =
        exp::runPlan(plan, runnerOptions(opt));

    for (const SweepAxis &axis : axes)
        printSweep(axis, results);

    // DMB ST timing only affects the SU configuration; also report
    // the persist-ordering audit, which the aggressive LSQ fails.
    // The audit needs harness access, so this axis stays on a direct
    // WorkloadHarness instead of the cached runner.
    std::printf("-- DMB ST timing (SU configuration) --\n");
    {
        TextTable t({"point", "SU cycles", "vs B", "audit"});
        SimParams base_b = makeParams(Config::B);
        WorkloadHarness hb(AppId::Update, Config::B, opt.spec,
                           AppParams{}, base_b);
        hb.generate();
        hb.simulate();
        const double b_cycles =
            static_cast<double>(hb.opPhaseCycles());
        for (bool conservative : {true, false}) {
            SimParams p = makeParams(Config::SU);
            p.core.dmbStCoversCvap = conservative;
            WorkloadHarness h(AppId::Update, Config::SU, opt.spec,
                              AppParams{}, p);
            h.enableAudit();
            h.generate();
            h.simulate();
            const AuditReport audit = h.audit();
            t.addRow({conservative ? "conservative (gem5-like)"
                                   : "aggressive",
                      std::to_string(h.opPhaseCycles()),
                      fmtDouble(h.opPhaseCycles() / b_cycles, 2),
                      audit.clean() ? "clean"
                                    : std::to_string(audit.violations)
                                          + " violations"});
        }
        std::printf("%s\n", t.str().c_str());
    }

    std::printf("note: IQ/WB columns show EDE holding its advantage "
                "across the design space;\nthe U/B column tracks how "
                "much room fences leave in each regime.\n");
    maybeWriteJson(opt, "ablation_sweeps", results);
    return 0;
}
