/**
 * @file
 * google-benchmark microbenchmarks for the library's hot paths: EDM
 * operations, instruction encode/decode, cache accesses and
 * end-to-end simulator throughput.  These guard the simulator's own
 * performance (host instructions per simulated cycle), not the
 * paper's results.
 */

#include <benchmark/benchmark.h>

#include "common/random.hh"
#include "core/edm.hh"
#include "core/wait_counters.hh"
#include "isa/encoding.hh"
#include "mem/mem_system.hh"
#include "pipeline/core.hh"
#include "trace/builder.hh"

namespace ede {
namespace {

void
BM_EdmDefineLookupComplete(benchmark::State &state)
{
    Edm edm;
    SeqNum seq = 1;
    for (auto _ : state) {
        const Edk key = static_cast<Edk>(1 + (seq % 15));
        edm.specDefine(key, seq);
        benchmark::DoNotOptimize(edm.specLookup(key));
        edm.complete(key, seq);
        ++seq;
    }
}
BENCHMARK(BM_EdmDefineLookupComplete);

void
BM_EdmSquashRestore(benchmark::State &state)
{
    Edm edm;
    std::vector<std::pair<Edk, SeqNum>> survivors;
    for (SeqNum s = 1; s <= 8; ++s)
        survivors.emplace_back(static_cast<Edk>(s), s);
    for (auto _ : state) {
        edm.squashRestore(survivors);
        benchmark::DoNotOptimize(edm.specLookup(3));
    }
}
BENCHMARK(BM_EdmSquashRestore);

void
BM_WaitCounters(benchmark::State &state)
{
    WaitCounters c;
    StaticInst si;
    si.op = Op::Str;
    si.edkDef = 3;
    si.edkUse = 7;
    for (auto _ : state) {
        c.enter(si);
        benchmark::DoNotOptimize(c.keyClear(3));
        c.exit(si);
    }
}
BENCHMARK(BM_WaitCounters);

void
BM_EncodeDecode(benchmark::State &state)
{
    StaticInst si;
    si.op = Op::Str;
    si.src1 = 3;
    si.base = 0;
    si.size = 8;
    si.edkUse = 1;
    for (auto _ : state) {
        const auto word = encode(si);
        benchmark::DoNotOptimize(decode(*word));
    }
}
BENCHMARK(BM_EncodeDecode);

void
BM_CacheHit(benchmark::State &state)
{
    MemSystem mem{MemSystemParams{}};
    Cycle now = 0;
    // Warm one line.
    mem.warmLine(0x1000, 1);
    for (auto _ : state) {
        if (auto id = mem.sendLoad(0x1000, 8, now)) {
            while (!mem.consumeDone(*id))
                mem.tick(now++);
        }
    }
    benchmark::DoNotOptimize(now);
}
BENCHMARK(BM_CacheHit);

void
BM_SimulatorThroughput(benchmark::State &state)
{
    // Simulated cycles per host-second on a representative mix.
    Trace t;
    TraceBuilder b(t);
    Rng rng(1);
    for (int i = 0; i < 5000; ++i) {
        const auto pick = rng.below(10);
        const Addr a = 0x100000 + 64 * rng.below(512);
        if (pick < 4) {
            b.alu(static_cast<RegIndex>(1 + rng.below(8)), kZeroReg);
        } else if (pick < 7) {
            b.ldr(2, 3, a);
        } else if (pick < 9) {
            b.str(4, 5, a, pick);
        } else {
            b.cvap(5, a);
        }
    }
    std::uint64_t cycles = 0;
    for (auto _ : state) {
        MemSystem mem{MemSystemParams{}};
        CoreParams params;
        OoOCore core(params, mem);
        cycles += core.run(t);
    }
    state.counters["sim_cycles/s"] = benchmark::Counter(
        static_cast<double>(cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulatorThroughput)->Unit(benchmark::kMillisecond);

} // namespace
} // namespace ede

BENCHMARK_MAIN();
