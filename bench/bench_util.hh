/**
 * @file
 * Shared plumbing for the reproduction benches: command-line options
 * and the standard (application x configuration) sweep used by the
 * Figure 9/10/11 reporters.
 *
 * The sweep itself is a thin wrapper over the experiment layer
 * (src/exp): cells run in parallel across cores and are served from
 * the content-addressed result cache when an identical cell was
 * already simulated -- so running fig9, fig10 and fig11 back to back
 * performs exactly one simulation per (app, config) pair.
 *
 * Standard options (also printed by --help):
 *   --txns N      transactions per application        (default 40)
 *   --ops M       operations per transaction          (default 25)
 *   --paper       paper-scale run: 1000 txns x 100 ops (Section VI-B)
 *   --seed S      workload RNG seed                   (default 42)
 *   --app LIST    comma-separated subset of apps
 *   --jobs N      parallel simulation jobs (default: hardware
 *                 concurrency; 1 reproduces the old serial order)
 *   --json PATH   write the sweep as a BENCH_*.json artifact
 *   --cache-dir D result-cache directory (default .ede-cache)
 *   --no-cache    simulate every cell even when cached
 */

#ifndef EDE_BENCH_BENCH_UTIL_HH
#define EDE_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "apps/harness.hh"
#include "common/logging.hh"
#include "common/stats.hh"
#include "exp/runner.hh"
#include "exp/sink.hh"

namespace ede {
namespace bench {

/** Parsed command line. */
struct BenchOptions
{
    RunSpec spec{40, 25, 42};
    std::vector<AppId> apps{kAllApps.begin(), kAllApps.end()};
    bool paperScale = false;
    unsigned jobs = 0;       ///< 0 = hardware concurrency.
    std::string jsonPath;    ///< Empty = no JSON artifact.
    std::string cacheDir = ".ede-cache";
    bool useCache = true;
};

/** The --help text (kept in one place so every bench agrees). */
inline void
printUsage(const char *bench)
{
    std::printf(
        "usage: %s [options]\n"
        "  --txns N      transactions per application (default 40)\n"
        "  --ops M       operations per transaction (default 25)\n"
        "  --paper       paper-scale run: 1000 txns x 100 ops\n"
        "  --seed S      workload RNG seed (default 42)\n"
        "  --app LIST    comma-separated subset of: ",
        bench);
    for (AppId id : kAllApps)
        std::printf("%s%s", id == kAllApps.front() ? "" : ",",
                    std::string(appName(id)).c_str());
    std::printf(
        "\n"
        "  --jobs N      parallel simulation jobs (default: hardware\n"
        "                concurrency; 1 reproduces the old serial "
        "order --\n"
        "                results are bit-identical either way)\n"
        "  --json PATH   write the sweep as a JSON artifact "
        "(BENCH_*.json)\n"
        "  --cache-dir D result-cache directory (default .ede-cache);\n"
        "                snapshots are keyed by {app, config, "
        "workload,\n"
        "                simulator parameters, schema}; delete the\n"
        "                directory after changing simulator code\n"
        "  --no-cache    simulate every cell even when cached\n"
        "  --help        this text\n");
}

/** Parse the standard options; unknown flags are fatal. */
inline BenchOptions
parseOptions(int argc, char **argv, const char *bench = "bench")
{
    BenchOptions opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                ede_fatal("flag ", arg, " needs a value");
            return argv[++i];
        };
        if (arg == "--txns") {
            opt.spec.txns = std::stoull(next());
        } else if (arg == "--ops") {
            opt.spec.opsPerTxn = std::stoull(next());
        } else if (arg == "--seed") {
            opt.spec.seed = std::stoull(next());
        } else if (arg == "--paper") {
            opt.paperScale = true;
            opt.spec.txns = 1000;
            opt.spec.opsPerTxn = 100;
        } else if (arg == "--jobs") {
            opt.jobs = static_cast<unsigned>(std::stoul(next()));
        } else if (arg == "--json") {
            opt.jsonPath = next();
        } else if (arg == "--cache-dir") {
            opt.cacheDir = next();
        } else if (arg == "--no-cache") {
            opt.useCache = false;
        } else if (arg == "--help" || arg == "-h") {
            printUsage(bench);
            std::exit(0);
        } else if (arg == "--app") {
            opt.apps.clear();
            std::string list = next();
            std::size_t pos = 0;
            while (pos != std::string::npos) {
                const std::size_t comma = list.find(',', pos);
                const std::string name =
                    list.substr(pos, comma == std::string::npos
                                         ? comma : comma - pos);
                bool found = false;
                for (AppId id : kAllApps) {
                    if (appName(id) == name) {
                        opt.apps.push_back(id);
                        found = true;
                    }
                }
                if (!found)
                    ede_fatal("unknown app '", name, "'");
                pos = (comma == std::string::npos) ? comma : comma + 1;
            }
        } else {
            ede_fatal("unknown flag '", arg, "' (--help for usage)");
        }
    }
    return opt;
}

/** Runner options implied by a bench command line. */
inline exp::RunnerOptions
runnerOptions(const BenchOptions &opt)
{
    exp::RunnerOptions ro;
    ro.jobs = opt.jobs;
    ro.cacheDir = opt.useCache ? opt.cacheDir : std::string();
    return ro;
}

/**
 * Run every (app, config) pair through the experiment layer --
 * parallel across cells, cache-backed -- and return keyed results.
 */
inline exp::ExperimentResults
runSweep(const BenchOptions &opt,
         const std::vector<Config> &configs =
             {kAllConfigs.begin(), kAllConfigs.end()})
{
    exp::ExperimentPlan plan;
    plan.addGrid(opt.apps, configs, opt.spec);
    return exp::runPlan(plan, runnerOptions(opt));
}

/** Emit the --json artifact when one was requested. */
inline void
maybeWriteJson(const BenchOptions &opt, const char *bench,
               const exp::ExperimentResults &results)
{
    if (!opt.jsonPath.empty())
        exp::writeJsonArtifact(opt.jsonPath, bench, results);
}

/** Standard bench banner. */
inline void
printBanner(const char *figure, const BenchOptions &opt)
{
    std::printf("== %s ==\n", figure);
    std::printf("workload: %zu txns x %zu ops/txn (seed %llu)%s\n\n",
                opt.spec.txns, opt.spec.opsPerTxn,
                static_cast<unsigned long long>(opt.spec.seed),
                opt.paperScale ? " [paper scale]" : "");
}

} // namespace bench
} // namespace ede

#endif // EDE_BENCH_BENCH_UTIL_HH
