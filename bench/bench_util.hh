/**
 * @file
 * Shared plumbing for the reproduction benches: command-line options
 * and the standard (application x configuration) sweep used by the
 * Figure 9/10/11 reporters.
 *
 * Every bench accepts:
 *   --txns N   transactions per application        (default 40)
 *   --ops M    operations per transaction          (default 25)
 *   --paper    paper-scale run: 1000 txns x 100 ops (Section VI-B)
 *   --seed S   workload RNG seed                   (default 42)
 *   --app LIST comma-separated subset of apps
 *
 * The default scale keeps every bench under a few minutes while
 * preserving the steady-state behaviour the figures report; --paper
 * reproduces the full 100,000-operation runs.
 */

#ifndef EDE_BENCH_BENCH_UTIL_HH
#define EDE_BENCH_BENCH_UTIL_HH

#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "apps/harness.hh"
#include "common/logging.hh"
#include "common/stats.hh"

namespace ede {
namespace bench {

/** Parsed command line. */
struct BenchOptions
{
    RunSpec spec{40, 25, 42};
    std::vector<AppId> apps{kAllApps.begin(), kAllApps.end()};
    bool paperScale = false;
};

/** Parse the standard options; unknown flags are fatal. */
inline BenchOptions
parseOptions(int argc, char **argv)
{
    BenchOptions opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                ede_fatal("flag ", arg, " needs a value");
            return argv[++i];
        };
        if (arg == "--txns") {
            opt.spec.txns = std::stoull(next());
        } else if (arg == "--ops") {
            opt.spec.opsPerTxn = std::stoull(next());
        } else if (arg == "--seed") {
            opt.spec.seed = std::stoull(next());
        } else if (arg == "--paper") {
            opt.paperScale = true;
            opt.spec.txns = 1000;
            opt.spec.opsPerTxn = 100;
        } else if (arg == "--app") {
            opt.apps.clear();
            std::string list = next();
            std::size_t pos = 0;
            while (pos != std::string::npos) {
                const std::size_t comma = list.find(',', pos);
                const std::string name =
                    list.substr(pos, comma == std::string::npos
                                         ? comma : comma - pos);
                bool found = false;
                for (AppId id : kAllApps) {
                    if (appName(id) == name) {
                        opt.apps.push_back(id);
                        found = true;
                    }
                }
                if (!found)
                    ede_fatal("unknown app '", name, "'");
                pos = (comma == std::string::npos) ? comma : comma + 1;
            }
        } else {
            ede_fatal("unknown flag '", arg,
                      "' (see bench_util.hh for usage)");
        }
    }
    return opt;
}

/** One completed run. */
struct SweepCell
{
    AppId app;
    Config config;
    Cycle opCycles = 0;  ///< Transaction-phase cycles (the paper's
                         ///< measurement excludes pool setup).
    RunResult result;
};

/** Run every (app, config) pair and collect the results. */
inline std::vector<SweepCell>
runSweep(const BenchOptions &opt,
         const std::vector<Config> &configs =
             {kAllConfigs.begin(), kAllConfigs.end()})
{
    std::vector<SweepCell> cells;
    for (AppId app : opt.apps) {
        for (Config cfg : configs) {
            WorkloadHarness h(app, cfg, opt.spec);
            h.generate();
            h.simulate();
            SweepCell cell;
            cell.app = app;
            cell.config = cfg;
            cell.opCycles = h.opPhaseCycles();
            cell.result = h.system().result();
            cells.push_back(std::move(cell));
        }
    }
    return cells;
}

/** Find one cell in a sweep. */
inline const SweepCell &
cellOf(const std::vector<SweepCell> &cells, AppId app, Config cfg)
{
    for (const SweepCell &c : cells) {
        if (c.app == app && c.config == cfg)
            return c;
    }
    ede_fatal("missing sweep cell");
}

/** Standard bench banner. */
inline void
printBanner(const char *figure, const BenchOptions &opt)
{
    std::printf("== %s ==\n", figure);
    std::printf("workload: %zu txns x %zu ops/txn (seed %llu)%s\n\n",
                opt.spec.txns, opt.spec.opsPerTxn,
                static_cast<unsigned long long>(opt.spec.seed),
                opt.paperScale ? " [paper scale]" : "");
}

} // namespace bench
} // namespace ede

#endif // EDE_BENCH_BENCH_UTIL_HH
