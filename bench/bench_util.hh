/**
 * @file
 * Shared plumbing for the reproduction benches: command-line options
 * and the standard (application x configuration) sweep used by the
 * Figure 9/10/11 reporters.
 *
 * The sweep itself is a thin wrapper over the experiment layer
 * (src/exp): cells run in parallel across cores and are served from
 * the content-addressed result cache when an identical cell was
 * already simulated -- so running fig9, fig10 and fig11 back to back
 * performs exactly one simulation per (app, config) pair.
 *
 * Flag parsing rides on bench/cli.hh; run any bench with --help for
 * the full option list.
 */

#ifndef EDE_BENCH_BENCH_UTIL_HH
#define EDE_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "apps/harness.hh"
#include "cli.hh"
#include "common/logging.hh"
#include "common/stats.hh"
#include "exp/runner.hh"
#include "exp/sink.hh"

namespace ede {
namespace bench {

/** Parsed command line. */
struct BenchOptions
{
    RunSpec spec{40, 25, 42};
    std::vector<AppId> apps{kAllApps.begin(), kAllApps.end()};
    bool paperScale = false;
    CommonOptions common;  ///< --jobs / --json / --cache-dir / ...
    IsolationOptions iso;  ///< --isolate / --journal / --resume / ...
};

/** The standard sweep flags, registered on a shared Cli. */
inline Cli
makeCli(const char *bench, BenchOptions &opt)
{
    Cli cli(bench);
    cli.value("--txns", "N",
              "transactions per application (default 40)",
              [&opt](const std::string &v) {
                  opt.spec.txns = toU64(v);
              })
        .value("--ops", "M",
               "operations per transaction (default 25)",
               [&opt](const std::string &v) {
                   opt.spec.opsPerTxn = toU64(v);
               })
        .toggle("--paper",
                "paper-scale run: 1000 txns x 100 ops",
                [&opt] {
                    opt.paperScale = true;
                    opt.spec.txns = 1000;
                    opt.spec.opsPerTxn = 100;
                })
        .value("--seed", "S", "workload RNG seed (default 42)",
               [&opt](const std::string &v) {
                   opt.spec.seed = toU64(v);
               })
        .value("--app", "LIST",
               "comma-separated subset of the applications",
               [&opt](const std::string &list) {
                   opt.apps.clear();
                   std::size_t pos = 0;
                   while (pos != std::string::npos) {
                       const std::size_t comma = list.find(',', pos);
                       const std::string name = list.substr(
                           pos, comma == std::string::npos
                                    ? comma
                                    : comma - pos);
                       bool found = false;
                       for (AppId id : kAllApps) {
                           if (appName(id) == name) {
                               opt.apps.push_back(id);
                               found = true;
                           }
                       }
                       if (!found)
                           ede_fatal("unknown app '", name, "'");
                       pos = (comma == std::string::npos) ? comma
                                                          : comma + 1;
                   }
               });
    addCommonFlags(cli, opt.common);
    addIsolationFlags(cli, opt.iso);
    return cli;
}

/** Parse the standard options; unknown flags exit with status 2. */
inline BenchOptions
parseOptions(int argc, char **argv, const char *bench = "bench")
{
    BenchOptions opt;
    makeCli(bench, opt).parse(argc, argv);
    return opt;
}

/** Runner options implied by a bench command line. */
inline exp::RunnerOptions
runnerOptions(const BenchOptions &opt)
{
    exp::RunnerOptions ro;
    ro.jobs = opt.common.jobs;
    ro.cacheDir =
        opt.common.useCache ? opt.common.cacheDir : std::string();
    applyIsolation(ro, opt.iso);
    return ro;
}

/**
 * Run every (app, config) pair through the experiment layer --
 * parallel across cells, cache-backed -- and return keyed results.
 */
inline exp::ExperimentResults
runSweep(const BenchOptions &opt,
         const std::vector<Config> &configs =
             {kAllConfigs.begin(), kAllConfigs.end()})
{
    exp::ExperimentPlan plan;
    plan.addGrid(opt.apps, configs, opt.spec);
    return exp::runPlan(plan, runnerOptions(opt));
}

/** Emit the --json artifact when one was requested. */
inline void
maybeWriteJson(const BenchOptions &opt, const char *bench,
               const exp::ExperimentResults &results)
{
    if (!opt.common.jsonPath.empty())
        exp::writeJsonArtifact(opt.common.jsonPath, bench, results);
}

/** Standard bench banner. */
inline void
printBanner(const char *figure, const BenchOptions &opt)
{
    std::printf("== %s ==\n", figure);
    std::printf("workload: %zu txns x %zu ops/txn (seed %llu)%s\n\n",
                opt.spec.txns, opt.spec.opsPerTxn,
                static_cast<unsigned long long>(opt.spec.seed),
                opt.paperScale ? " [paper scale]" : "");
}

} // namespace bench
} // namespace ede

#endif // EDE_BENCH_BENCH_UTIL_HH
