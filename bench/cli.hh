/**
 * @file
 * Tiny shared command-line parser for the bench drivers.
 *
 * Every driver used to hand-roll the same loop (string compare, bump
 * the index for a value, bespoke usage text) with slightly different
 * unknown-flag behaviour.  Cli centralizes the contract:
 *
 *  - flags are registered with a help line and a callback;
 *  - a flag that takes a value receives it already split off;
 *  - --help / -h prints the generated usage to stdout and exits 0;
 *  - an unknown flag, a missing value, or a malformed value (the
 *    toU64/toUnsigned/toF64 helpers throw CliError instead of
 *    silently parsing "abc" as 0) prints a one-line error plus usage
 *    to stderr and exits 2 (so CI distinguishes "bad invocation"
 *    from "campaign found a violation", which exits 1).
 *
 * CommonOptions + addCommonFlags cover the experiment-layer options
 * (--jobs / --json / --cache-dir / --no-cache) shared by the sweep
 * benches; IsolationOptions + addIsolationFlags cover the
 * process-isolation backend (--isolate / --timeout-ms / ... /
 * --journal / --resume).
 */

#ifndef EDE_BENCH_CLI_HH
#define EDE_BENCH_CLI_HH

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "exp/runner.hh"

namespace ede {
namespace bench {

/** Thrown by value conversions on malformed input; caught by parse. */
struct CliError
{
    std::string message;
};

/** Declarative command-line parser; see file comment. */
class Cli
{
  public:
    explicit Cli(std::string prog) : prog_(std::move(prog)) {}

    /** Register a flag taking a value, e.g. --seed N. */
    Cli &
    value(std::string name, std::string metavar, std::string help,
          std::function<void(const std::string &)> apply)
    {
        opts_.push_back({std::move(name), std::move(metavar),
                         std::move(help), std::move(apply), {}});
        return *this;
    }

    /** Register a boolean flag, e.g. --paper. */
    Cli &
    toggle(std::string name, std::string help,
           std::function<void()> apply)
    {
        opts_.push_back({std::move(name), {}, std::move(help), {},
                         std::move(apply)});
        return *this;
    }

    void
    usage(std::FILE *out) const
    {
        std::fprintf(out, "usage: %s [options]\n", prog_.c_str());
        for (const Opt &o : opts_) {
            std::string head = o.name;
            if (!o.metavar.empty())
                head += " " + o.metavar;
            std::fprintf(out, "  %-18s %s\n", head.c_str(),
                         o.help.c_str());
        }
        std::fprintf(out, "  %-18s %s\n", "--help", "this text");
    }

    /** Parse the whole command line; exits on --help or errors. */
    void
    parse(int argc, char **argv) const
    {
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            if (arg == "--help" || arg == "-h") {
                usage(stdout);
                std::exit(0);
            }
            const Opt *match = nullptr;
            for (const Opt &o : opts_) {
                if (o.name == arg) {
                    match = &o;
                    break;
                }
            }
            if (!match) {
                std::fprintf(stderr, "%s: unknown flag '%s'\n",
                             prog_.c_str(), arg.c_str());
                usage(stderr);
                std::exit(2);
            }
            if (match->toggleFn) {
                match->toggleFn();
                continue;
            }
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s: flag %s needs a value\n",
                             prog_.c_str(), arg.c_str());
                usage(stderr);
                std::exit(2);
            }
            try {
                match->valueFn(argv[++i]);
            } catch (const CliError &e) {
                std::fprintf(stderr, "%s: flag %s: %s\n",
                             prog_.c_str(), arg.c_str(),
                             e.message.c_str());
                usage(stderr);
                std::exit(2);
            }
        }
    }

  private:
    struct Opt
    {
        std::string name;
        std::string metavar;
        std::string help;
        std::function<void(const std::string &)> valueFn;
        std::function<void()> toggleFn;
    };

    std::string prog_;
    std::vector<Opt> opts_;
};

/**
 * @name Value conversions for flag callbacks.
 *
 * Each parses the *whole* string and throws CliError on anything
 * else: empty input, trailing junk ("12x"), a leading '-' on the
 * unsigned forms (strtoull would happily wrap it), or out-of-range
 * values.  Cli::parse turns the throw into the exit-2 usage path.
 */
/// @{
inline std::uint64_t
toU64(const std::string &s)
{
    if (s.empty())
        throw CliError{"expected an unsigned integer, got ''"};
    if (s[0] == '-')
        throw CliError{"expected an unsigned integer, got '" + s + "'"};
    errno = 0;
    char *end = nullptr;
    const unsigned long long v = std::strtoull(s.c_str(), &end, 0);
    if (end == s.c_str() || *end != '\0' || errno == ERANGE) {
        throw CliError{"expected an unsigned integer, got '" + s +
                       "'"};
    }
    return v;
}

inline unsigned
toUnsigned(const std::string &s)
{
    const std::uint64_t v = toU64(s);
    if (v > 0xffffffffull)
        throw CliError{"value '" + s + "' does not fit in 32 bits"};
    return static_cast<unsigned>(v);
}

inline double
toF64(const std::string &s)
{
    if (s.empty())
        throw CliError{"expected a number, got ''"};
    errno = 0;
    char *end = nullptr;
    const double v = std::strtod(s.c_str(), &end);
    if (end == s.c_str() || *end != '\0' || errno == ERANGE)
        throw CliError{"expected a number, got '" + s + "'"};
    return v;
}
/// @}

/** Experiment-layer options shared by every sweep bench. */
struct CommonOptions
{
    unsigned jobs = 0;    ///< 0 = hardware concurrency.
    std::string jsonPath; ///< Empty = no JSON artifact.
    std::string cacheDir = ".ede-cache";
    bool useCache = true;
};

/** Register --jobs / --json / --cache-dir / --no-cache on @p cli. */
inline void
addCommonFlags(Cli &cli, CommonOptions &opt)
{
    cli.value("--jobs", "N",
              "parallel simulation jobs (default: hardware "
              "concurrency; 1 reproduces the old serial order -- "
              "results are bit-identical either way)",
              [&opt](const std::string &v) {
                  opt.jobs = toUnsigned(v);
              })
        .value("--json", "PATH",
               "write the sweep as a JSON artifact (BENCH_*.json)",
               [&opt](const std::string &v) { opt.jsonPath = v; })
        .value("--cache-dir", "D",
               "result-cache directory (default .ede-cache); "
               "snapshots are keyed by {app, config, workload, "
               "simulator parameters, schema}",
               [&opt](const std::string &v) { opt.cacheDir = v; })
        .toggle("--no-cache",
                "simulate every cell even when cached",
                [&opt] { opt.useCache = false; });
}

/**
 * Register the shared --seed flag: every seeded bench takes its
 * master seed the same way instead of re-rolling the registration.
 */
inline void
addSeedFlag(Cli &cli, std::uint64_t &seed)
{
    cli.value("--seed", "S", "master workload seed (default 42)",
              [&seed](const std::string &v) { seed = toU64(v); });
}

/** Traffic-harness knobs shared by the open-loop benches. */
struct TrafficOptions
{
    unsigned streams = 4;     ///< Concurrent client streams.
    double zipfTheta = 0.99;  ///< Key skew; [0, 1).
    bool bursty = false;      ///< MMPP arrivals instead of Poisson.

    /** Explicit offered-load points (mean gap, cycles); empty = the
     * bench's default sweep. */
    std::vector<double> arrivalGaps;

    std::uint64_t seed = 42;
};

/**
 * Register --streams / --zipf-theta / --arrival / --bursty / --seed
 * on @p cli.  --arrival is repeatable: each occurrence appends one
 * offered-load point to the sweep.
 */
inline void
addTrafficFlags(Cli &cli, TrafficOptions &opt)
{
    cli.value("--streams", "N",
              "concurrent client streams (default 4)",
              [&opt](const std::string &v) {
                  opt.streams = toUnsigned(v);
                  if (opt.streams < 1)
                      throw CliError{"--streams must be >= 1"};
              })
        .value("--zipf-theta", "T",
               "zipfian key skew in [0, 1) (default 0.99)",
               [&opt](const std::string &v) {
                   opt.zipfTheta = toF64(v);
                   if (!(opt.zipfTheta >= 0.0 && opt.zipfTheta < 1.0))
                       throw CliError{"--zipf-theta must be in "
                                      "[0, 1)"};
               })
        .value("--arrival", "G",
               "offered-load point: mean inter-arrival gap in cycles "
               "(> 0; repeatable -- each use appends one sweep "
               "point)",
               [&opt](const std::string &v) {
                   const double gap = toF64(v);
                   if (!(gap > 0.0))
                       throw CliError{"--arrival must be > 0"};
                   opt.arrivalGaps.push_back(gap);
               })
        .toggle("--bursty",
                "two-state MMPP arrivals instead of Poisson",
                [&opt] { opt.bursty = true; });
    addSeedFlag(cli, opt.seed);
}

/** Parse an admission-policy name (see traffic/policy.hh). */
inline traffic::AdmissionKind
toAdmissionKind(const std::string &s)
{
    if (s == "none")
        return traffic::AdmissionKind::None;
    if (s == "drop-tail")
        return traffic::AdmissionKind::DropTail;
    if (s == "deadline")
        return traffic::AdmissionKind::Deadline;
    if (s == "token-bucket")
        return traffic::AdmissionKind::TokenBucket;
    throw CliError{"unknown admission policy '" + s +
                   "' (none, drop-tail, deadline, token-bucket)"};
}

/**
 * Serving-path overload knobs: the admission policy and its
 * parameters, retry budgets, the degradation ladder, the
 * warmup/window split and the closed-pool arrival option.  Range
 * checks beyond simple positivity live in validateTrafficPlan, so
 * the CLI and programmatic callers reject identically.
 */
struct OverloadOptions
{
    traffic::OverloadPolicy policy;
    int totalTxns = 0;            ///< 0 = txnsPerStream semantics.
    unsigned warmupPermille = 125;
    unsigned latencyWindows = 8;
    bool closedPool = false;      ///< ClosedPool arrivals.
    unsigned poolSize = 4;
    double thinkTime = 2000.0;
};

/** Register the overload-policy flags on @p cli. */
inline void
addOverloadFlags(Cli &cli, OverloadOptions &opt)
{
    cli.value("--admission", "KIND",
              "admission policy: none | drop-tail | deadline | "
              "token-bucket (default none)",
              [&opt](const std::string &v) {
                  opt.policy.admission = toAdmissionKind(v);
              })
        .value("--queue-depth", "N",
               "finite service-queue depth before backpressure "
               "scaling (default 16)",
               [&opt](const std::string &v) {
                   opt.policy.queueDepth = toU64(v);
               })
        .value("--deadline", "C",
               "per-transaction deadline in cycles (deadline "
               "admission sheds predicted misses; any policy counts "
               "completions past it as timeouts)",
               [&opt](const std::string &v) {
                   opt.policy.deadline = toU64(v);
               })
        .value("--token-rate", "R",
               "token-bucket refill: tokens per 1024 cycles",
               [&opt](const std::string &v) {
                   opt.policy.tokenRatePerKCycle = toU64(v);
               })
        .value("--token-burst", "B", "token-bucket capacity",
               [&opt](const std::string &v) {
                   opt.policy.tokenBurst = toU64(v);
               })
        .value("--retry-budget", "N",
               "client retries per stream before permanent failure "
               "(default 0 = no retries)",
               [&opt](const std::string &v) {
                   opt.policy.retryBudget = toU64(v);
               })
        .value("--retry-base", "C",
               "exponential-backoff base in cycles (default 256)",
               [&opt](const std::string &v) {
                   opt.policy.retryBackoffBase = toU64(v);
               })
        .value("--retry-cap", "C",
               "backoff ceiling in cycles (default 8192)",
               [&opt](const std::string &v) {
                   opt.policy.retryBackoffCap = toU64(v);
               })
        .toggle("--degrade",
                "enable the graceful-degradation ladder (normal -> "
                "read-mostly -> reject-all, hysteretic recovery)",
                [&opt] { opt.policy.degrade = true; })
        .value("--shed-window", "N",
               "sliding pressure window for the ladder (default 32)",
               [&opt](const std::string &v) {
                   opt.policy.shedWindow = toUnsigned(v);
               })
        .value("--degrade-permille", "P",
               "shed rate escalating the ladder (default 500)",
               [&opt](const std::string &v) {
                   opt.policy.degradePermille = toUnsigned(v);
               })
        .value("--recover-permille", "P",
               "shed rate recovering one rung; must be below "
               "--degrade-permille (default 125)",
               [&opt](const std::string &v) {
                   opt.policy.recoverPermille = toUnsigned(v);
               })
        .value("--warmup-permille", "P",
               "leading fraction of each stream classified warmup "
               "(default 125)",
               [&opt](const std::string &v) {
                   opt.warmupPermille = toUnsigned(v);
               })
        .value("--windows", "N",
               "latency time-series windows, 1..64 (default 8)",
               [&opt](const std::string &v) {
                   opt.latencyWindows = toUnsigned(v);
               })
        .value("--total-txns", "N",
               "exact total transactions split round-robin across "
               "streams (0 = per-stream count)",
               [&opt](const std::string &v) {
                   opt.totalTxns = static_cast<int>(toUnsigned(v));
               })
        .value("--closed-pool", "N",
               "closed-loop arrivals from a pool of N clients per "
               "stream instead of open-loop",
               [&opt](const std::string &v) {
                   opt.closedPool = true;
                   opt.poolSize = toUnsigned(v);
                   if (opt.poolSize < 1)
                       throw CliError{"--closed-pool must be >= 1"};
               })
        .value("--think-time", "T",
               "mean closed-pool think time in cycles (default 2000)",
               [&opt](const std::string &v) {
                   opt.thinkTime = toF64(v);
                   if (opt.thinkTime < 0)
                       throw CliError{"--think-time must be >= 0"};
               });
}

/** Fold @p o into @p plan (policy, split knobs, closed arrivals). */
inline void
applyOverload(traffic::TrafficPlan &plan, const OverloadOptions &o)
{
    plan.policy = o.policy;
    plan.totalTxns = o.totalTxns;
    plan.warmupPermille = o.warmupPermille;
    plan.latencyWindows = o.latencyWindows;
    if (o.closedPool) {
        plan.arrival.kind = traffic::ArrivalKind::ClosedPool;
        plan.arrival.poolSize = o.poolSize;
        plan.arrival.thinkTime = o.thinkTime;
    }
}

/** Process-isolation options shared by the sweeping drivers. */
struct IsolationOptions
{
    bool isolate = false;      ///< Fork one worker per cell.
    exp::WorkerLimits limits;  ///< Per-job timeout / memory cap.
    exp::RetryPolicy retry;    ///< Transient-failure retry policy.
    std::string journalPath;   ///< Empty = no sweep journal.
    bool resume = false;       ///< Replay a compatible journal.
};

/** Register --isolate / --timeout-ms / ... / --resume on @p cli. */
inline void
addIsolationFlags(Cli &cli, IsolationOptions &opt)
{
    cli.toggle("--isolate",
               "run each cell in a forked worker process; crashes, "
               "hangs and OOMs are quarantined instead of fatal",
               [&opt] { opt.isolate = true; })
        .value("--timeout-ms", "T",
               "per-job wall-clock limit in ms (0 = none; needs "
               "--isolate)",
               [&opt](const std::string &v) {
                   opt.limits.timeoutMs = toU64(v);
               })
        .value("--mem-limit-mb", "M",
               "per-job address-space cap in MiB (0 = none; needs "
               "--isolate; ignored under sanitizers)",
               [&opt](const std::string &v) {
                   opt.limits.memLimitBytes =
                       toU64(v) * 1024ull * 1024ull;
               })
        .value("--attempts", "N",
               "attempts per job before quarantine; transient "
               "failures back off exponentially between tries "
               "(default 3)",
               [&opt](const std::string &v) {
                   opt.retry.maxAttempts = toUnsigned(v);
                   if (opt.retry.maxAttempts == 0)
                       throw CliError{"--attempts must be >= 1"};
               })
        .value("--journal", "PATH",
               "append-only sweep journal; every durable cell is "
               "recorded as it lands (needs --isolate)",
               [&opt](const std::string &v) { opt.journalPath = v; })
        .toggle("--resume",
                "replay compatible cells from the --journal instead "
                "of re-running them",
                [&opt] { opt.resume = true; });
}

/** Fold @p iso into runner options (mode, limits, journal). */
inline void
applyIsolation(exp::RunnerOptions &ro, const IsolationOptions &iso)
{
    ro.isolation = iso.isolate ? exp::IsolationMode::Process
                               : exp::IsolationMode::None;
    ro.limits = iso.limits;
    ro.retry = iso.retry;
    ro.journalPath = iso.journalPath;
    ro.resume = iso.resume;
}

} // namespace bench
} // namespace ede

#endif // EDE_BENCH_CLI_HH
