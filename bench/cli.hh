/**
 * @file
 * Tiny shared command-line parser for the bench drivers.
 *
 * Every driver used to hand-roll the same loop (string compare, bump
 * the index for a value, bespoke usage text) with slightly different
 * unknown-flag behaviour.  Cli centralizes the contract:
 *
 *  - flags are registered with a help line and a callback;
 *  - a flag that takes a value receives it already split off;
 *  - --help / -h prints the generated usage to stdout and exits 0;
 *  - an unknown flag or a missing value prints usage to stderr and
 *    exits 2 (so CI distinguishes "bad invocation" from "campaign
 *    found a violation", which exits 1).
 *
 * CommonOptions + addCommonFlags cover the experiment-layer options
 * (--jobs / --json / --cache-dir / --no-cache) shared by the sweep
 * benches.
 */

#ifndef EDE_BENCH_CLI_HH
#define EDE_BENCH_CLI_HH

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

namespace ede {
namespace bench {

/** Declarative command-line parser; see file comment. */
class Cli
{
  public:
    explicit Cli(std::string prog) : prog_(std::move(prog)) {}

    /** Register a flag taking a value, e.g. --seed N. */
    Cli &
    value(std::string name, std::string metavar, std::string help,
          std::function<void(const std::string &)> apply)
    {
        opts_.push_back({std::move(name), std::move(metavar),
                         std::move(help), std::move(apply), {}});
        return *this;
    }

    /** Register a boolean flag, e.g. --paper. */
    Cli &
    toggle(std::string name, std::string help,
           std::function<void()> apply)
    {
        opts_.push_back({std::move(name), {}, std::move(help), {},
                         std::move(apply)});
        return *this;
    }

    void
    usage(std::FILE *out) const
    {
        std::fprintf(out, "usage: %s [options]\n", prog_.c_str());
        for (const Opt &o : opts_) {
            std::string head = o.name;
            if (!o.metavar.empty())
                head += " " + o.metavar;
            std::fprintf(out, "  %-18s %s\n", head.c_str(),
                         o.help.c_str());
        }
        std::fprintf(out, "  %-18s %s\n", "--help", "this text");
    }

    /** Parse the whole command line; exits on --help or errors. */
    void
    parse(int argc, char **argv) const
    {
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            if (arg == "--help" || arg == "-h") {
                usage(stdout);
                std::exit(0);
            }
            const Opt *match = nullptr;
            for (const Opt &o : opts_) {
                if (o.name == arg) {
                    match = &o;
                    break;
                }
            }
            if (!match) {
                std::fprintf(stderr, "%s: unknown flag '%s'\n",
                             prog_.c_str(), arg.c_str());
                usage(stderr);
                std::exit(2);
            }
            if (match->toggleFn) {
                match->toggleFn();
                continue;
            }
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s: flag %s needs a value\n",
                             prog_.c_str(), arg.c_str());
                usage(stderr);
                std::exit(2);
            }
            match->valueFn(argv[++i]);
        }
    }

  private:
    struct Opt
    {
        std::string name;
        std::string metavar;
        std::string help;
        std::function<void(const std::string &)> valueFn;
        std::function<void()> toggleFn;
    };

    std::string prog_;
    std::vector<Opt> opts_;
};

/** @name Value conversions for flag callbacks. */
/// @{
inline std::uint64_t
toU64(const std::string &s)
{
    return std::strtoull(s.c_str(), nullptr, 0);
}

inline unsigned
toUnsigned(const std::string &s)
{
    return static_cast<unsigned>(std::strtoul(s.c_str(), nullptr, 0));
}

inline double
toF64(const std::string &s)
{
    return std::strtod(s.c_str(), nullptr);
}
/// @}

/** Experiment-layer options shared by every sweep bench. */
struct CommonOptions
{
    unsigned jobs = 0;    ///< 0 = hardware concurrency.
    std::string jsonPath; ///< Empty = no JSON artifact.
    std::string cacheDir = ".ede-cache";
    bool useCache = true;
};

/** Register --jobs / --json / --cache-dir / --no-cache on @p cli. */
inline void
addCommonFlags(Cli &cli, CommonOptions &opt)
{
    cli.value("--jobs", "N",
              "parallel simulation jobs (default: hardware "
              "concurrency; 1 reproduces the old serial order -- "
              "results are bit-identical either way)",
              [&opt](const std::string &v) {
                  opt.jobs = toUnsigned(v);
              })
        .value("--json", "PATH",
               "write the sweep as a JSON artifact (BENCH_*.json)",
               [&opt](const std::string &v) { opt.jsonPath = v; })
        .value("--cache-dir", "D",
               "result-cache directory (default .ede-cache); "
               "snapshots are keyed by {app, config, workload, "
               "simulator parameters, schema}",
               [&opt](const std::string &v) { opt.cacheDir = v; })
        .toggle("--no-cache",
                "simulate every cell even when cached",
                [&opt] { opt.useCache = false; });
}

} // namespace bench
} // namespace ede

#endif // EDE_BENCH_CLI_HH
