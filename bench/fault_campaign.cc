/**
 * @file
 * Fault-injection campaign driver.
 *
 * Sweeps crash points across every Table III configuration under the
 * NVM fault model (failed ADR drains, torn persists, transient accept
 * faults) and classifies each reconstructed-and-recovered image.
 * Everything -- crash-point choice, per-point fault plans, the
 * transient-fault schedule -- derives from the single --seed value,
 * so any printed failure tuple replays exactly.
 *
 * Usage:
 *   fault_campaign [--seed N] [--points N] [--app NAME]
 *                  [--txns N] [--ops N] [--fault-rate F] [--jobs N]
 *                  [--json PATH] [--isolate] [--timeout-ms T]
 *                  [--mem-limit-mb M] [--attempts N]
 *                  [--journal PATH] [--resume]
 *
 *   --points 0 enumerates every persist-boundary crash point.
 *   --jobs runs the per-config simulations and the crash-point
 *   classifications in parallel through the experiment scheduler
 *   (0 = hardware concurrency); results are bit-identical to
 *   --jobs 1 because every scenario derives only from the recorded
 *   persist events.
 *   --isolate forks one worker per configuration so a crash, hang or
 *   OOM quarantines that configuration instead of killing the
 *   campaign; --journal + --resume make an interrupted campaign
 *   resumable with byte-identical final output.
 *
 * Exit status is non-zero when a safe configuration (B, IQ, WB)
 * produced an unrecoverable crash point -- Table III broken -- or
 * when any configuration was quarantined, so the campaign can gate
 * CI.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "cli.hh"
#include "common/logging.hh"
#include "fault/campaign.hh"

using namespace ede;
using namespace ede::bench;

namespace {

AppId
parseApp(const std::string &name)
{
    for (AppId id : kAllApps) {
        if (name == appName(id))
            return id;
    }
    std::fprintf(stderr, "unknown app '%s'\n", name.c_str());
    std::exit(2);
}

} // namespace

int
main(int argc, char **argv)
{
    CampaignOptions options;
    std::string jsonPath;
    std::string chaosCrashConfig;
    IsolationOptions iso;
    Cli cli("fault_campaign");
    cli.value("--seed", "N", "campaign RNG seed",
              [&](const std::string &v) { options.seed = toU64(v); })
        .value("--points", "N",
               "crash points per configuration (0 = every "
               "persist boundary)",
               [&](const std::string &v) {
                   options.pointsPerConfig = toU64(v);
               })
        .value("--app", "NAME", "workload application",
               [&](const std::string &v) {
                   options.app = parseApp(v);
               })
        .value("--txns", "N", "transactions per run",
               [&](const std::string &v) {
                   options.spec.txns = toU64(v);
               })
        .value("--ops", "N", "operations per transaction",
               [&](const std::string &v) {
                   options.spec.opsPerTxn = toU64(v);
               })
        .value("--fault-rate", "F",
               "transient accept-fault probability",
               [&](const std::string &v) {
                   options.acceptFaultRate = toF64(v);
               })
        .value("--jobs", "N",
               "parallel classifications (0 = hardware "
               "concurrency); results are bit-identical to --jobs 1",
               [&](const std::string &v) {
                   options.jobs = toUnsigned(v);
               })
        .value("--json", "PATH",
               "write the deterministic campaign JSON artifact",
               [&](const std::string &v) { jsonPath = v; })
        .value("--chaos-crash-config", "NAME",
               "chaos hook: this configuration's isolated worker "
               "calls abort() (CI/testing only)",
               [&](const std::string &v) { chaosCrashConfig = v; });
    addIsolationFlags(cli, iso);
    cli.parse(argc, argv);

    options.isolate = iso.isolate;
    options.limits = iso.limits;
    options.retry = iso.retry;
    options.journalPath = iso.journalPath;
    options.resume = iso.resume;
    options.chaosCrashConfig = chaosCrashConfig;

    const CampaignReport report = runCampaign(options);
    std::fputs(report.describe().c_str(), stdout);

    if (!jsonPath.empty()) {
        std::ofstream out(jsonPath,
                          std::ios::binary | std::ios::trunc);
        if (!out)
            ede_fatal("cannot write JSON artifact '", jsonPath, "'");
        out << campaignToJson(report);
        out.close();
        if (!out)
            ede_fatal("short write on JSON artifact '", jsonPath, "'");
        std::printf("[campaign] wrote %s\n", jsonPath.c_str());
    }

    bool unsafe_exposed = false;
    for (const CampaignConfigResult &c : report.configs) {
        if (c.config == Config::U && c.unrecoverable > 0)
            unsafe_exposed = true;
    }
    if (!unsafe_exposed && report.quarantined.empty()) {
        std::printf("note: U produced no unrecoverable point at this "
                    "seed/scale; widen --points or --txns\n");
    }
    return report.ok() ? 0 : 1;
}
