/**
 * @file
 * Fault-injection campaign driver.
 *
 * Sweeps crash points across every Table III configuration under the
 * NVM fault model (failed ADR drains, torn persists, transient accept
 * faults) and classifies each reconstructed-and-recovered image.
 * Everything -- crash-point choice, per-point fault plans, the
 * transient-fault schedule -- derives from the single --seed value,
 * so any printed failure tuple replays exactly.
 *
 * Usage:
 *   fault_campaign [--seed N] [--points N] [--app NAME]
 *                  [--txns N] [--ops N] [--fault-rate F] [--jobs N]
 *
 *   --points 0 enumerates every persist-boundary crash point.
 *   --jobs runs the per-config simulations and the crash-point
 *   classifications in parallel through the experiment scheduler
 *   (0 = hardware concurrency); results are bit-identical to
 *   --jobs 1 because every scenario derives only from the recorded
 *   persist events.
 *
 * Exit status is non-zero when a safe configuration (B, IQ, WB)
 * produced an unrecoverable crash point -- Table III broken -- so the
 * campaign can gate CI.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "fault/campaign.hh"

using namespace ede;

namespace {

AppId
parseApp(const std::string &name)
{
    for (AppId id : kAllApps) {
        if (name == appName(id))
            return id;
    }
    std::fprintf(stderr, "unknown app '%s'\n", name.c_str());
    std::exit(2);
}

} // namespace

int
main(int argc, char **argv)
{
    CampaignOptions options;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--seed") {
            options.seed = std::strtoull(value().c_str(), nullptr, 0);
        } else if (arg == "--points") {
            options.pointsPerConfig =
                std::strtoull(value().c_str(), nullptr, 0);
        } else if (arg == "--app") {
            options.app = parseApp(value());
        } else if (arg == "--txns") {
            options.spec.txns =
                std::strtoull(value().c_str(), nullptr, 0);
        } else if (arg == "--ops") {
            options.spec.opsPerTxn =
                std::strtoull(value().c_str(), nullptr, 0);
        } else if (arg == "--fault-rate") {
            options.acceptFaultRate =
                std::strtod(value().c_str(), nullptr);
        } else if (arg == "--jobs") {
            options.jobs = static_cast<unsigned>(
                std::strtoul(value().c_str(), nullptr, 0));
        } else {
            std::fprintf(stderr,
                         "usage: fault_campaign [--seed N] "
                         "[--points N] [--app NAME] [--txns N] "
                         "[--ops N] [--fault-rate F] [--jobs N]\n");
            return arg == "--help" || arg == "-h" ? 0 : 2;
        }
    }

    const CampaignReport report = runCampaign(options);
    std::fputs(report.describe().c_str(), stdout);

    bool unsafe_exposed = false;
    for (const CampaignConfigResult &c : report.configs) {
        if (c.config == Config::U && c.unrecoverable > 0)
            unsafe_exposed = true;
    }
    if (!unsafe_exposed) {
        std::printf("note: U produced no unrecoverable point at this "
                    "seed/scale; widen --points or --txns\n");
    }
    return report.safeConfigsClean() ? 0 : 1;
}
