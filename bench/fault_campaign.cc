/**
 * @file
 * Fault-injection campaign driver.
 *
 * Sweeps crash points across every Table III configuration under the
 * NVM fault model (failed ADR drains, torn persists, transient accept
 * faults) and classifies each reconstructed-and-recovered image.
 * Everything -- crash-point choice, per-point fault plans, the
 * transient-fault schedule -- derives from the single --seed value,
 * so any printed failure tuple replays exactly.
 *
 * Usage:
 *   fault_campaign [--seed N] [--points N] [--app NAME]
 *                  [--txns N] [--ops N] [--fault-rate F] [--jobs N]
 *                  [--json PATH] [--isolate] [--timeout-ms T]
 *                  [--mem-limit-mb M] [--attempts N]
 *                  [--journal PATH] [--resume]
 *                  [--conc NAME] [--cores N] [--ops-per-core N]
 *                  [--workload-seed N] [--media-factor N]
 *
 *   --points 0 enumerates every persist-boundary crash point.
 *   --conc switches to the multi-core campaign: the named concurrent
 *   kernel (msqueue / rwlock / rcu) runs on --cores harts and crash
 *   points stratify toward cycles where a *remote* core still has
 *   accepted-but-undrained media writes.  The single-app flags
 *   (--app/--txns/--ops) do not apply; the shared flags keep their
 *   meaning.
 *   --jobs runs the per-config simulations and the crash-point
 *   classifications in parallel through the experiment scheduler
 *   (0 = hardware concurrency); results are bit-identical to
 *   --jobs 1 because every scenario derives only from the recorded
 *   persist events.
 *   --isolate forks one worker per configuration so a crash, hang or
 *   OOM quarantines that configuration instead of killing the
 *   campaign; --journal + --resume make an interrupted campaign
 *   resumable with byte-identical final output.
 *
 * Exit status is non-zero when a safe configuration (B, IQ, WB)
 * produced an unrecoverable crash point -- Table III broken -- or
 * when any configuration was quarantined, so the campaign can gate
 * CI.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "cli.hh"
#include "common/logging.hh"
#include "fault/campaign.hh"
#include "fault/conc_campaign.hh"
#include "sim/session.hh"

using namespace ede;
using namespace ede::bench;

namespace {

AppId
parseApp(const std::string &name)
{
    for (AppId id : kAllApps) {
        if (name == appName(id))
            return id;
    }
    std::fprintf(stderr, "unknown app '%s'\n", name.c_str());
    std::exit(2);
}

ConcApp
parseConcApp(const std::string &name)
{
    for (ConcApp app : kAllConcApps) {
        if (name == concAppName(app))
            return app;
    }
    std::fprintf(stderr, "unknown concurrent kernel '%s'\n",
                 name.c_str());
    std::exit(2);
}

} // namespace

int
main(int argc, char **argv)
{
    CampaignOptions options;
    ConcCampaignOptions conc;
    bool useConc = false;
    std::string jsonPath;
    std::string chaosCrashConfig;
    IsolationOptions iso;
    Cli cli("fault_campaign");
    cli.value("--seed", "N", "campaign RNG seed",
              [&](const std::string &v) { options.seed = toU64(v); })
        .value("--points", "N",
               "crash points per configuration (0 = every "
               "persist boundary)",
               [&](const std::string &v) {
                   options.pointsPerConfig = toU64(v);
               })
        .value("--app", "NAME", "workload application",
               [&](const std::string &v) {
                   options.app = parseApp(v);
               })
        .value("--txns", "N", "transactions per run",
               [&](const std::string &v) {
                   options.spec.txns = toU64(v);
               })
        .value("--ops", "N", "operations per transaction",
               [&](const std::string &v) {
                   options.spec.opsPerTxn = toU64(v);
               })
        .value("--fault-rate", "F",
               "transient accept-fault probability",
               [&](const std::string &v) {
                   options.acceptFaultRate = toF64(v);
               })
        .value("--jobs", "N",
               "parallel classifications (0 = hardware "
               "concurrency); results are bit-identical to --jobs 1",
               [&](const std::string &v) {
                   options.jobs = toUnsigned(v);
               })
        .value("--json", "PATH",
               "write the deterministic campaign JSON artifact",
               [&](const std::string &v) { jsonPath = v; })
        .value("--chaos-crash-config", "NAME",
               "chaos hook: this configuration's isolated worker "
               "calls abort() (CI/testing only)",
               [&](const std::string &v) { chaosCrashConfig = v; })
        .value("--conc", "NAME",
               "concurrent kernel (msqueue / rwlock / rcu): run the "
               "multi-core campaign instead of the single-app one",
               [&](const std::string &v) {
                   useConc = true;
                   conc.app = parseConcApp(v);
               })
        .value("--cores", "N", "cores for --conc (default 2)",
               [&](const std::string &v) {
                   conc.cores = toUnsigned(v);
               })
        .value("--ops-per-core", "N",
               "operations per core for --conc (default 8)",
               [&](const std::string &v) {
                   conc.opsPerCore = static_cast<int>(toU64(v));
               })
        .value("--workload-seed", "N",
               "global-interleaving seed for --conc (default 42)",
               [&](const std::string &v) {
                   conc.workloadSeed = toU64(v);
               })
        .value("--media-factor", "N",
               "NVM media write latency multiplier for --conc "
               "(default 8: the slow-media crash window)",
               [&](const std::string &v) {
                   conc.mediaFactor = toUnsigned(v);
               });
    addIsolationFlags(cli, iso);
    cli.parse(argc, argv);

    options.isolate = iso.isolate;
    options.limits = iso.limits;
    options.retry = iso.retry;
    options.journalPath = iso.journalPath;
    options.resume = iso.resume;
    options.chaosCrashConfig = chaosCrashConfig;

    if (useConc) {
        // Shared flags were parsed into the single-app options;
        // forward them so both campaigns speak one CLI dialect.
        conc.seed = options.seed;
        conc.pointsPerConfig = options.pointsPerConfig;
        conc.acceptFaultRate = options.acceptFaultRate;
        conc.jobs = options.jobs;
        conc.isolate = options.isolate;
        conc.limits = options.limits;
        conc.retry = options.retry;
        conc.journalPath = options.journalPath;
        conc.resume = options.resume;
        conc.chaosCrashConfig = options.chaosCrashConfig;

        ConcCampaignReport report;
        try {
            report = runConcCampaign(conc);
        } catch (const SimFaultError &e) {
            // A structured workload fault (e.g. the per-core EDK key
            // partition exhausting at --cores >= 16) is a usage
            // error here, not a campaign verdict: one-line
            // diagnostic, exit 2, same contract as malformed flags.
            const std::string what = e.what();
            std::fprintf(stderr, "fault_campaign: %s\n",
                         what.substr(0, what.find('\n')).c_str());
            return 2;
        }
        std::fputs(report.describe().c_str(), stdout);

        if (!jsonPath.empty()) {
            std::ofstream out(jsonPath,
                              std::ios::binary | std::ios::trunc);
            if (!out)
                ede_fatal("cannot write JSON artifact '", jsonPath,
                          "'");
            out << concCampaignToJson(report);
            out.close();
            if (!out)
                ede_fatal("short write on JSON artifact '", jsonPath,
                          "'");
            std::printf("[campaign] wrote %s\n", jsonPath.c_str());
        }
        return report.ok() ? 0 : 1;
    }

    const CampaignReport report = runCampaign(options);
    std::fputs(report.describe().c_str(), stdout);

    if (!jsonPath.empty()) {
        std::ofstream out(jsonPath,
                          std::ios::binary | std::ios::trunc);
        if (!out)
            ede_fatal("cannot write JSON artifact '", jsonPath, "'");
        out << campaignToJson(report);
        out.close();
        if (!out)
            ede_fatal("short write on JSON artifact '", jsonPath, "'");
        std::printf("[campaign] wrote %s\n", jsonPath.c_str());
    }

    bool unsafe_exposed = false;
    for (const CampaignConfigResult &c : report.configs) {
        if (c.config == Config::U && c.unrecoverable > 0)
            unsafe_exposed = true;
    }
    if (!unsafe_exposed && report.quarantined.empty()) {
        std::printf("note: U produced no unrecoverable point at this "
                    "seed/scale; widen --points or --txns\n");
    }
    return report.ok() ? 0 : 1;
}
