/**
 * @file
 * Figure 10 reporter: distribution of pending writes in the
 * persistent 128-slot on-DIMM NVM buffer, sampled each time a store
 * reaches the media.
 *
 * Expected shape (Section VII-C): U keeps the buffer fullest -- near
 * capacity for the kernels, lower for the PMDK applications -- and
 * WB holds slightly more pending writes than the remaining
 * configurations.
 */

#include <cstdio>

#include "bench_util.hh"

using namespace ede;
using namespace ede::bench;

int
main(int argc, char **argv)
{
    const BenchOptions opt =
        parseOptions(argc, argv, "fig10_pending_writes");
    printBanner("Figure 10: pending NVM writes in the on-DIMM buffer",
                opt);

    const exp::ExperimentResults cells = runSweep(opt);

    for (AppId app : opt.apps) {
        std::printf("-- %s --\n",
                    std::string(appName(app)).c_str());
        TextTable t({"pending", "B", "SU", "IQ", "WB", "U"});
        // Present in 16-slot buckets, 0..128.
        const std::size_t kBuckets = 9;
        for (std::size_t bkt = 0; bkt < kBuckets; ++bkt) {
            const std::uint64_t lo = bkt * 16;
            const std::uint64_t hi = bkt == 8 ? 128 : lo + 15;
            std::vector<std::string> row{
                std::to_string(lo) + "-" + std::to_string(hi)};
            for (Config cfg : kAllConfigs) {
                const Distribution &d =
                    cells.cell(app, cfg).result.nvmOccupancy;
                double frac = 0.0;
                for (std::uint64_t v = lo; v <= hi; ++v) {
                    if (v < d.numBuckets())
                        frac += d.fraction(v);
                }
                row.push_back(fmtPercent(frac, 1));
            }
            t.addRow(row);
        }
        std::vector<std::string> mean_row{"mean"};
        for (Config cfg : kAllConfigs) {
            mean_row.push_back(fmtDouble(
                cells.cell(app, cfg).result.nvmOccupancy.mean(),
                1));
        }
        t.addRow(mean_row);
        std::printf("%s\n", t.str().c_str());
    }

    // Paper check: U has the most pending writes on every app.
    std::printf("U fullest on every app (paper, Section VII-C): ");
    bool ok = true;
    for (AppId app : opt.apps) {
        const double u =
            cells.cell(app, Config::U).result.nvmOccupancy.mean();
        for (Config cfg : {Config::B, Config::SU, Config::IQ,
                           Config::WB}) {
            ok &= u >= cells.cell(app, cfg)
                      .result.nvmOccupancy.mean();
        }
    }
    std::printf("%s\n", ok ? "yes" : "NO");
    maybeWriteJson(opt, "fig10_pending_writes", cells);
    return 0;
}
