/**
 * @file
 * Figure 11 reporter: distribution of the number of instructions
 * issued each cycle (issue width 8), plus the per-configuration IPC
 * the paper quotes alongside it (Section VII-B: on average 0.40,
 * 0.42, 0.46, 0.49 and 0.64 for B, SU, IQ, WB and U).
 *
 * Expected shape: all configurations issue 0 instructions in most
 * cycles (NVM-bound pipelines); IQ and WB spend fewer cycles unable
 * to issue than SU and B; WB issues more instructions than IQ during
 * its active cycles.
 */

#include <cstdio>

#include "bench_util.hh"

using namespace ede;
using namespace ede::bench;

int
main(int argc, char **argv)
{
    const BenchOptions opt =
        parseOptions(argc, argv, "fig11_issue_dist");
    printBanner("Figure 11: instructions issued per cycle", opt);

    const exp::ExperimentResults cells = runSweep(opt);

    // Aggregate the issue histograms across applications per config.
    std::map<Config, Histogram> agg;
    for (Config cfg : kAllConfigs)
        agg.emplace(cfg, Histogram(9));
    for (const exp::ExperimentCell &c : cells.cells())
        agg.at(c.point.config).merge(c.result.core.issueHist);

    TextTable t({"issued/cycle", "B", "SU", "IQ", "WB", "U"});
    for (std::size_t w = 0; w < 9; ++w) {
        std::vector<std::string> row{std::to_string(w)};
        for (Config cfg : kAllConfigs)
            row.push_back(fmtPercent(agg.at(cfg).fraction(w), 2));
        t.addRow(row);
    }
    std::printf("%s\n", t.str().c_str());

    TextTable s({"metric", "B", "SU", "IQ", "WB", "U"});
    std::vector<std::string> ipc_row{"IPC (paper: .40/.42/.46/.49/.64)"};
    std::vector<std::string> active{"active-cycle fraction"};
    std::vector<std::string> per_active{"issued per active cycle"};
    for (Config cfg : kAllConfigs) {
        std::vector<double> ipcs;
        for (AppId app : opt.apps)
            ipcs.push_back(cells.cell(app, cfg).result.core.ipc());
        ipc_row.push_back(fmtDouble(mean(ipcs), 3));
        const Histogram &h = agg.at(cfg);
        const double active_frac = 1.0 - h.fraction(0);
        active.push_back(fmtPercent(active_frac, 1));
        per_active.push_back(fmtDouble(
            active_frac > 0 ? h.mean() / active_frac : 0.0, 2));
    }
    s.addRow(ipc_row);
    s.addRow(active);
    s.addRow(per_active);
    std::printf("%s\n", s.str().c_str());
    maybeWriteJson(opt, "fig11_issue_dist", cells);
    return 0;
}
