/**
 * @file
 * Figure 8 reporter: the four-instruction, two-dependence pattern
 * under the IQ and WB realizations.
 *
 * Reproduces the paper's timeline argument quantitatively: IQ stalls
 * the dependent instructions at the issue queue and serializes the
 * pairs; WB lets them retire and orders only the pushes, approaching
 * the ideal timeline.
 */

#include <cstdio>

#include "common/stats.hh"
#include "mem/mem_system.hh"
#include "pipeline/core.hh"
#include "trace/builder.hh"

using namespace ede;

namespace {

struct PatternRun
{
    Cycle total = 0;
    std::vector<Cycle> issue;
    std::vector<Cycle> retire;
    std::vector<Cycle> complete;
};

/** Run N repetitions of the Figure 8 pattern under @p mode. */
PatternRun
runPattern(EnforceMode mode, int reps)
{
    MemSystem mem{MemSystemParams{}};
    CoreParams params;
    params.ede = mode;
    OoOCore core(params, mem);
    core.setRecordCompletions(true);

    Trace t;
    TraceBuilder b(t);
    const Addr nvm = MemSystemParams{}.map.nvmBase() + 0x100000;
    const Addr dram0 = 0x100000;
    const Addr dram1 = 0x100040;
    // Warm the consumer lines.
    b.str(1, 2, dram0, 0);
    b.str(1, 2, dram1, 0);
    b.dsbSy();
    std::vector<std::size_t> pattern_idx;
    for (int r = 0; r < reps; ++r) {
        // inst1 -> inst2, inst3 -> inst4 (Figure 8).
        pattern_idx.push_back(
            b.cvap(2, nvm + 128ull * (2 * r), {1, 0}));
        pattern_idx.push_back(b.str(3, 4, dram0, 1, 0, {0, 1}));
        pattern_idx.push_back(
            b.cvap(5, nvm + 128ull * (2 * r + 1), {2, 0}));
        pattern_idx.push_back(b.str(6, 7, dram1, 2, 0, {0, 2}));
    }
    PatternRun run;
    run.total = core.run(t);
    for (std::size_t i : pattern_idx)
        run.complete.push_back(core.completionCycles()[i]);
    return run;
}

} // namespace

int
main()
{
    std::printf("== Figure 8: IQ vs WB on the 4-instruction "
                "pattern ==\n\n");
    constexpr int kReps = 16;
    const PatternRun iq = runPattern(EnforceMode::IQ, kReps);
    const PatternRun wb = runPattern(EnforceMode::WB, kReps);

    TextTable t({"design", "total cycles", "cycles/pattern"});
    t.addRow({"IQ", std::to_string(iq.total),
              fmtDouble(static_cast<double>(iq.total) / kReps, 1)});
    t.addRow({"WB", std::to_string(wb.total),
              fmtDouble(static_cast<double>(wb.total) / kReps, 1)});
    std::printf("%s\n", t.str().c_str());
    std::printf("WB/IQ time ratio: %s (paper: WB strictly faster, "
                "Figure 8(a) vs 8(b))\n\n",
                fmtDouble(static_cast<double>(wb.total) / iq.total, 3)
                    .c_str());

    std::printf("first pattern completion cycles "
                "(producer1, consumer1, producer2, consumer2):\n");
    for (int i = 0; i < 4; ++i) {
        std::printf("  inst%d: IQ=%llu WB=%llu\n", i + 1,
                    static_cast<unsigned long long>(iq.complete[i]),
                    static_cast<unsigned long long>(wb.complete[i]));
    }
    return 0;
}
