/**
 * @file
 * Figure 9 reporter: application execution time for each Table III
 * configuration, normalized to the DSB baseline (B).
 *
 * The paper reports geomean execution-time reductions of about
 * 5% (SU), 15% (IQ), 20% (WB) and 38% (U), i.e. speedups of 18% for
 * IQ and 26% for WB, with WB recovering ~54% of U's reduction.
 */

#include <cstdio>

#include "bench_util.hh"

using namespace ede;
using namespace ede::bench;

int
main(int argc, char **argv)
{
    const BenchOptions opt = parseOptions(argc, argv, "fig9_exec_time");
    printBanner("Figure 9: normalized execution time", opt);

    const exp::ExperimentResults cells = runSweep(opt);

    TextTable t({"app", "B", "SU", "IQ", "WB", "U", "cycles(B)"});
    std::map<Config, std::vector<double>> normalized;
    for (AppId app : opt.apps) {
        const double base = static_cast<double>(
            cells.cell(app, Config::B).opCycles);
        std::vector<std::string> row{std::string(appName(app))};
        for (Config cfg : kAllConfigs) {
            const double norm = static_cast<double>(
                cells.cell(app, cfg).opCycles) / base;
            normalized[cfg].push_back(norm);
            row.push_back(fmtDouble(norm, 3));
        }
        row.push_back(std::to_string(
            cells.cell(app, Config::B).opCycles));
        t.addRow(row);
    }
    std::vector<std::string> gm{"geomean"};
    for (Config cfg : kAllConfigs)
        gm.push_back(fmtDouble(geomean(normalized[cfg]), 3));
    gm.push_back("-");
    t.addRow(gm);
    std::printf("%s\n", t.str().c_str());

    const double red_su = 1.0 - geomean(normalized[Config::SU]);
    const double red_iq = 1.0 - geomean(normalized[Config::IQ]);
    const double red_wb = 1.0 - geomean(normalized[Config::WB]);
    const double red_u = 1.0 - geomean(normalized[Config::U]);
    std::printf("execution time reduction vs B (paper: SU 5%%, IQ "
                "15%%, WB 20%%, U 38%%):\n");
    std::printf("  SU %s  IQ %s  WB %s  U %s\n",
                fmtPercent(red_su).c_str(), fmtPercent(red_iq).c_str(),
                fmtPercent(red_wb).c_str(), fmtPercent(red_u).c_str());
    std::printf("speedup over B (paper: IQ 18%%, WB 26%%):\n");
    std::printf("  IQ %s  WB %s\n",
                fmtPercent(1.0 / geomean(normalized[Config::IQ]) - 1.0)
                    .c_str(),
                fmtPercent(1.0 / geomean(normalized[Config::WB]) - 1.0)
                    .c_str());
    if (red_u > 0.0) {
        std::printf("WB recovers %s of U's reduction (paper: ~54%%)\n",
                    fmtPercent(red_wb / red_u).c_str());
    }
    maybeWriteJson(opt, "fig9_exec_time", cells);
    return 0;
}
