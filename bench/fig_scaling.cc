/**
 * @file
 * Multi-core scalability reporter: the concurrent persistent kernels
 * (MS-queue, reader-writer lock, RCU list) on 1..8 cores for every
 * Table III configuration.
 *
 * Each cell runs N cores lock-step over one shared hierarchy, with
 * fixed work *per core* (weak scaling): the scaling factor reported
 * is N * cycles(1) / cycles(N), i.e. ideal == N.  Cells run through
 * the experiment layer -- parallel across cells, served from the
 * content-addressed result cache on a repeat run -- and the --json
 * artifact (BENCH_scaling.json) is the unified ResultSink schema,
 * whose per-cell "cores" array and "coherence" object carry the
 * per-core breakdown and the coherence-point counters.
 *
 * --check-single-core is the differential gate the CI runs: a
 * 1-core machine built through the refactored System (CoreGroup run
 * loop, per-core L1 vector, cross-core plumbing compiled in but
 * detached) must reproduce the raw OoOCore::run legacy loop
 * bit-identically, cycle counts and counters alike.
 */

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "apps/concurrent.hh"
#include "cli.hh"
#include "common/stats.hh"
#include "exp/runner.hh"
#include "exp/sink.hh"
#include "sim/session.hh"

using namespace ede;
using namespace ede::bench;

namespace {

struct Options
{
    int opsPerCore = 256;
    std::uint64_t seed = 42;
    bool smoke = false;
    bool checkSingleCore = false;
    CommonOptions common;  ///< --jobs / --json / --cache-dir / ...
};

/** The plan-point label of one (kernel, config, cores) cell. */
std::string
cellLabel(ConcApp app, Config cfg, unsigned cores)
{
    return std::string(concAppName(app)) + "/" +
           std::string(configName(cfg)) + "/" +
           std::to_string(cores) + "c";
}

/**
 * The differential gate: every kernel x configuration on one core,
 * run through the refactored System AND through the raw legacy
 * OoOCore::run loop on a hand-assembled machine.  Any difference in
 * cycles or headline counters fails the gate.
 */
int
checkSingleCore(const Options &opt)
{
    int failures = 0;
    for (ConcApp app : kAllConcApps) {
        for (Config cfg : kAllConfigs) {
            ConcParams cp;
            cp.cfg = cfg;
            cp.cores = 1;
            cp.opsPerCore = opt.opsPerCore;
            cp.seed = opt.seed;
            const std::vector<Trace> traces =
                buildConcurrentTraces(app, cp);

            const SimConfig sc = SimConfig::paper(cfg);
            Session session(sc);
            const SimResult viaSystem =
                session.run(RunRequest::perCore(traces));

            // The legacy path: hand-assembled machine, historical
            // single-core run loop.
            const SimParams params = sc.params();
            MemSystem mem(params.mem);
            OoOCore core(params.core, mem);
            core.run(traces[0]);

            const CoreStats &a = viaSystem.stats.core;
            const CoreStats &b = core.stats();
            const WriteBufferStats &wa = viaSystem.stats.wb;
            const WriteBufferStats &wb = core.wbStats();
            const bool same =
                viaSystem.ok() &&
                core.simError().kind == SimErrorKind::None &&
                a.cycles == b.cycles && a.retired == b.retired &&
                a.issuedOps == b.issuedOps &&
                a.dispatched == b.dispatched &&
                a.squashes == b.squashes &&
                a.retireStallWbFull == b.retireStallWbFull &&
                a.dispatchStallRob == b.dispatchStallRob &&
                wa.pushes == wb.pushes &&
                wa.srcIdGated == wb.srcIdGated &&
                viaSystem.stats.l1d.hits == mem.l1d().stats().hits &&
                viaSystem.stats.l1d.misses ==
                    mem.l1d().stats().misses;
            if (!same) {
                ++failures;
                std::printf(
                    "MISMATCH %s/%s: System %llu cycles / %llu "
                    "retired vs legacy %llu / %llu\n",
                    std::string(concAppName(app)).c_str(),
                    std::string(configName(cfg)).c_str(),
                    static_cast<unsigned long long>(a.cycles),
                    static_cast<unsigned long long>(a.retired),
                    static_cast<unsigned long long>(b.cycles),
                    static_cast<unsigned long long>(b.retired));
            }
        }
    }
    if (failures) {
        std::printf("single-core differential gate: %d mismatched "
                    "cell(s)\n", failures);
        return 1;
    }
    std::printf("single-core differential gate: all %zu cells "
                "bit-identical\n",
                kAllConcApps.size() * kAllConfigs.size());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    Cli cli("fig_scaling");
    cli.value("--ops", "N", "operations per core (default 256)",
              [&opt](const std::string &v) {
                  opt.opsPerCore = static_cast<int>(toUnsigned(v));
                  if (opt.opsPerCore < 1)
                      throw CliError{"--ops must be >= 1"};
              })
        .toggle("--smoke",
                "tiny sweep for CI (MS-queue, 1 and 4 cores, 32 ops)",
                [&opt] { opt.smoke = true; })
        .toggle("--check-single-core",
                "differential gate: System(coreCount=1) must match "
                "the legacy raw-core run loop bit-identically",
                [&opt] { opt.checkSingleCore = true; });
    addSeedFlag(cli, opt.seed);
    addCommonFlags(cli, opt.common);
    cli.parse(argc, argv);

    if (opt.checkSingleCore)
        return checkSingleCore(opt);

    std::vector<ConcApp> apps(kAllConcApps.begin(),
                              kAllConcApps.end());
    std::vector<unsigned> coreCounts{1, 2, 4, 8};
    if (opt.smoke) {
        apps = {ConcApp::MsQueue};
        coreCounts = {1, 4};
        opt.opsPerCore = std::min(opt.opsPerCore, 32);
    }

    std::printf("== Multi-core scaling: concurrent persistent "
                "kernels ==\n(%d ops/core, seed %llu)\n\n",
                opt.opsPerCore,
                static_cast<unsigned long long>(opt.seed));

    exp::ExperimentPlan plan;
    for (ConcApp app : apps) {
        for (Config cfg : kAllConfigs) {
            for (unsigned n : coreCounts) {
                exp::ExperimentPoint pt;
                pt.label = cellLabel(app, cfg, n);
                pt.config = cfg;
                pt.simParams = SimConfig::paper(cfg)
                                   .withCoreCount(static_cast<int>(n))
                                   .params();
                pt.conc = true;
                pt.concApp = app;
                pt.concOpsPerCore = opt.opsPerCore;
                pt.concSeed = opt.seed;
                plan.add(std::move(pt));
            }
        }
    }

    exp::RunnerOptions ro;
    ro.jobs = opt.common.jobs;
    ro.cacheDir =
        opt.common.useCache ? opt.common.cacheDir : std::string();
    const exp::ExperimentResults results = exp::runPlan(plan, ro);

    for (ConcApp app : apps) {
        TextTable t({"config", "1c", "2c", "4c", "8c",
                     "scaling@8c", "snoops@8c"});
        // Column layout follows the full sweep; smoke rows leave
        // missing core counts blank.
        for (Config cfg : kAllConfigs) {
            std::vector<std::string> row{
                std::string(configName(cfg))};
            Cycle base = 0;
            Cycle last = 0;
            unsigned last_n = 1;
            std::uint64_t last_snoops = 0;
            for (unsigned n : {1u, 2u, 4u, 8u}) {
                const bool present =
                    std::find(coreCounts.begin(), coreCounts.end(),
                              n) != coreCounts.end();
                if (!present) {
                    row.push_back("-");
                    continue;
                }
                const exp::ExperimentCell &cell =
                    results.cellByLabel(cellLabel(app, cfg, n));
                const Cycle c = cell.result.cycles;
                if (n == 1)
                    base = c;
                last = c;
                last_n = n;
                last_snoops = cell.result.coherence.snoops;
                row.push_back(std::to_string(c));
            }
            const double scaling =
                last ? static_cast<double>(last_n) *
                           static_cast<double>(base) /
                           static_cast<double>(last)
                     : 0.0;
            row.push_back(fmtDouble(scaling, 2) + "x");
            row.push_back(std::to_string(last_snoops));
            t.addRow(row);
        }
        std::printf("-- %s --\n%s\n",
                    std::string(concAppName(app)).c_str(),
                    t.str().c_str());
    }

    if (!opt.common.jsonPath.empty()) {
        exp::writeJsonArtifact(opt.common.jsonPath, "fig_scaling",
                               results);
    }
    return 0;
}
