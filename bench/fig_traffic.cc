/**
 * @file
 * Open-loop traffic harness: exact tail latency vs offered load for
 * every Table III configuration.
 *
 * Each cell multiplexes N seeded client streams (YCSB-style
 * read/update mix, zipfian key skew, Poisson / bursty / closed-pool
 * arrivals) onto the multi-core persistent heap through the traffic
 * library (src/traffic/), and reports *exact* -- not
 * histogram-bucketed -- p50 / p99 / p99.9 open-loop and service
 * (closed-loop) latency per {configuration x arrival rate} cell,
 * aggregate, per stream and as a warmup/steady progress series.
 *
 * The sweep is the paper-style overload story a closed-loop bench
 * cannot tell: the per-core transaction schedule is arrival-
 * independent, so the machine's closed-loop cycle count is
 * bit-identical across offered loads, while the open-loop tail
 * blows up once arrivals outrun the NVM-bound service rate -- the
 * overload knee.  Two CI gates ride on that construction:
 *
 *  - --check-knee: closed-loop cycles identical across offered loads
 *    while the open-loop p99 diverges (PR-9's separation);
 *  - --check-shed: the serving-path robustness story.  A light-load
 *    probe measures the mean service time (service times are
 *    arrival-independent, so the probe's distribution equals every
 *    cell's); the knee gap follows as meanService * streams / cores.
 *    At the knee and at 2x the knee, a deadline-shedding admission
 *    policy must hold the steady-state goodput *rate* (goodput per
 *    cycle of arrival horizon -- counts alone would compare
 *    different horizons) within 10%, while the policy-free open p99
 *    at 2x diverges from the knee's.  Overload shedding keeps
 *    goodput flat where the unprotected tail blows up.
 *
 * Every latency record is integer cycles, so BENCH_traffic.json is
 * byte-identical across --jobs 1 / --jobs 8 and both tickers up to
 * host_perf; CI cmp-gates that too.  Cells run through the
 * experiment layer (parallel across cells, content-addressed result
 * cache) like every other sweep bench.
 */

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "cli.hh"
#include "common/stats.hh"
#include "exp/runner.hh"
#include "exp/sink.hh"
#include "sim/session.hh"

using namespace ede;
using namespace ede::bench;

namespace {

struct Options
{
    TrafficOptions traffic;   ///< --streams / --zipf-theta / ...
    OverloadOptions overload; ///< --admission / --deadline / ...
    int txnsPerStream = 96;
    int opsPerTxn = 4;
    int cores = 2;
    bool smoke = false;
    bool checkKnee = false;
    bool checkShed = false;
    CommonOptions common;     ///< --jobs / --json / --cache-dir / ...
};

/** The plan-point label of one (config, mean-gap) cell. */
std::string
cellLabel(Config cfg, double gap)
{
    return std::string(configName(cfg)) + "/g" +
           std::to_string(static_cast<long long>(gap));
}

traffic::TrafficPlan
makePlan(const Options &opt, double gap)
{
    traffic::TrafficPlan plan;
    plan.streams = opt.traffic.streams;
    plan.txnsPerStream = opt.txnsPerStream;
    plan.opsPerTxn = opt.opsPerTxn;
    plan.mix.zipfTheta = opt.traffic.zipfTheta;
    plan.arrival.kind = opt.traffic.bursty
                            ? traffic::ArrivalKind::Bursty
                            : traffic::ArrivalKind::Poisson;
    plan.arrival.meanGap = gap;
    plan.seed = opt.traffic.seed;
    applyOverload(plan, opt.overload);
    return plan;
}

exp::ExperimentPoint
makePoint(const Options &opt, Config cfg, std::string label,
          traffic::TrafficPlan plan)
{
    exp::ExperimentPoint pt;
    pt.label = std::move(label);
    pt.config = cfg;
    pt.simParams = SimConfig::paper(cfg)
                       .withCoreCount(opt.cores)
                       .params();
    pt.traffic = true;
    pt.trafficPlan = std::move(plan);
    return pt;
}

/**
 * The overload-knee gate: per configuration, the machine's
 * closed-loop cycle count must be IDENTICAL at every offered load
 * (the trace is arrival-independent by construction), while the
 * open-loop p99 at the heaviest load must strictly exceed the
 * lightest load's -- queueing delay the closed-loop run structurally
 * cannot show.
 */
int
checkKnee(const exp::ExperimentResults &results,
          const std::vector<Config> &configs,
          const std::vector<double> &gaps)
{
    int failures = 0;
    for (Config cfg : configs) {
        // Gaps are swept lightest (largest gap) first.
        const exp::ExperimentCell &light =
            results.cellByLabel(cellLabel(cfg, gaps.front()));
        const exp::ExperimentCell &heavy =
            results.cellByLabel(cellLabel(cfg, gaps.back()));
        bool cyclesEqual = true;
        for (double gap : gaps) {
            const exp::ExperimentCell &cell =
                results.cellByLabel(cellLabel(cfg, gap));
            if (cell.result.cycles != light.result.cycles)
                cyclesEqual = false;
        }
        const Cycle p99Light = light.result.traffic.open.p99;
        const Cycle p99Heavy = heavy.result.traffic.open.p99;
        const bool diverges = p99Heavy > p99Light;
        if (!cyclesEqual || !diverges) {
            ++failures;
            std::printf(
                "KNEE MISSING %s: closed-loop %s, open p99 "
                "%llu -> %llu\n",
                std::string(configName(cfg)).c_str(),
                cyclesEqual ? "equal" : "DIVERGED",
                static_cast<unsigned long long>(p99Light),
                static_cast<unsigned long long>(p99Heavy));
        }
    }
    if (failures) {
        std::printf("overload-knee gate: %d configuration(s) without "
                    "the closed/open separation\n", failures);
        return 1;
    }
    std::printf("overload-knee gate: closed-loop cycles equal and "
                "open p99 diverges for all %zu configurations\n",
                configs.size());
    return 0;
}

/** Steady-state goodput rate in transactions per kilocycle. */
double
goodputRate(const traffic::OverloadResult &ov)
{
    if (ov.steadyHorizon == 0)
        return 0.0;
    return static_cast<double>(ov.steadyGoodput) * 1000.0 /
           static_cast<double>(ov.steadyHorizon);
}

/**
 * The deadline-shedding gate (see the file comment).  Runs its own
 * two-phase sweep: a light-load probe per configuration to measure
 * the mean service time, then {knee, 2x-knee} x {none, shed} cells.
 * Writes the phase-2 results as the JSON artifact when requested.
 */
int
runCheckShed(const Options &opt, const std::vector<Config> &configs,
             const exp::RunnerOptions &ro)
{
    // Phase 1: one probe cell per configuration at a gap so large no
    // queueing happens.  Service times are arrival-independent, so
    // the probe's service distribution equals every phase-2 cell's.
    const double probeGap = 50000.0;
    exp::ExperimentPlan probePlan;
    for (Config cfg : configs) {
        traffic::TrafficPlan plan = makePlan(opt, probeGap);
        plan.policy = traffic::OverloadPolicy{};
        probePlan.add(makePoint(
            opt, cfg, std::string(configName(cfg)) + "/probe",
            std::move(plan)));
    }
    const exp::ExperimentResults probe = exp::runPlan(probePlan, ro);

    // Phase 2: per configuration, the knee gap (aggregate arrivals
    // match service capacity: gap = meanService * streams / cores)
    // and half of it, each with and without deadline shedding.
    exp::ExperimentPlan plan2;
    std::vector<double> kneeGaps(configs.size());
    std::vector<Cycle> deadlines(configs.size());
    for (std::size_t i = 0; i < configs.size(); ++i) {
        const Config cfg = configs[i];
        const exp::ExperimentCell &cell = probe.cellByLabel(
            std::string(configName(cfg)) + "/probe");
        const double meanService =
            cell.result.traffic.service.mean();
        if (!(meanService > 0)) {
            std::printf("SHED GATE %s: probe measured no service "
                        "time\n",
                        std::string(configName(cfg)).c_str());
            return 1;
        }
        kneeGaps[i] = std::max(
            1.0, meanService * opt.traffic.streams / opt.cores);
        deadlines[i] = static_cast<Cycle>(6.0 * meanService);
        for (double gap : {kneeGaps[i], kneeGaps[i] / 2}) {
            for (bool shed : {false, true}) {
                traffic::TrafficPlan plan = makePlan(opt, gap);
                plan.policy = traffic::OverloadPolicy{};
                if (shed) {
                    plan.policy.admission =
                        traffic::AdmissionKind::Deadline;
                    plan.policy.deadline = deadlines[i];
                }
                plan2.add(makePoint(
                    opt, cfg,
                    cellLabel(cfg, gap) + (shed ? "/shed" : "/none"),
                    std::move(plan)));
            }
        }
    }
    const exp::ExperimentResults results = exp::runPlan(plan2, ro);

    int failures = 0;
    for (std::size_t i = 0; i < configs.size(); ++i) {
        const Config cfg = configs[i];
        const double knee = kneeGaps[i];
        const auto cell = [&](double gap, const char *suffix)
            -> const exp::ExperimentCell & {
            return results.cellByLabel(cellLabel(cfg, gap) + "/" +
                                       suffix);
        };
        const traffic::OverloadResult &shedKnee =
            cell(knee, "shed").result.traffic.overload;
        const traffic::OverloadResult &shed2x =
            cell(knee / 2, "shed").result.traffic.overload;
        const Cycle p99Knee =
            cell(knee, "none").result.traffic.openSteady.p99;
        const Cycle p992x =
            cell(knee / 2, "none").result.traffic.openSteady.p99;

        const double rateKnee = goodputRate(shedKnee);
        const double rate2x = goodputRate(shed2x);
        const bool goodputHolds =
            rateKnee > 0 && rate2x >= 0.9 * rateKnee;
        const bool sheds = shed2x.shedDeadline > 0;
        const bool tailDiverges = p992x > p99Knee;

        std::printf(
            "%-10s knee gap %7.0f deadline %6llu | goodput rate "
            "%s -> %s txn/kcyc (shed %llu) | no-policy steady p99 "
            "%llu -> %llu\n",
            std::string(configName(cfg)).c_str(), knee,
            static_cast<unsigned long long>(deadlines[i]),
            fmtDouble(rateKnee, 3).c_str(),
            fmtDouble(rate2x, 3).c_str(),
            static_cast<unsigned long long>(shed2x.shedDeadline),
            static_cast<unsigned long long>(p99Knee),
            static_cast<unsigned long long>(p992x));

        if (!goodputHolds || !sheds || !tailDiverges) {
            ++failures;
            std::printf(
                "SHED GATE %s: %s%s%s\n",
                std::string(configName(cfg)).c_str(),
                goodputHolds ? "" : "goodput rate dropped >10%; ",
                sheds ? "" : "deadline admission never shed; ",
                tailDiverges ? "" : "no-policy p99 did not diverge");
        }
    }

    if (!opt.common.jsonPath.empty()) {
        exp::writeJsonArtifact(opt.common.jsonPath, "fig_traffic",
                               results);
    }
    if (failures) {
        std::printf("deadline-shed gate: %d configuration(s) failed\n",
                    failures);
        return 1;
    }
    std::printf("deadline-shed gate: goodput rate held within 10%% "
                "at 2x knee while the unprotected p99 diverged, for "
                "all %zu configurations\n",
                configs.size());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    Cli cli("fig_traffic");
    cli.value("--txns", "N",
              "transactions per stream (default 96)",
              [&opt](const std::string &v) {
                  opt.txnsPerStream = static_cast<int>(toUnsigned(v));
                  if (opt.txnsPerStream < 1)
                      throw CliError{"--txns must be >= 1"};
              })
        .value("--ops", "N", "key operations per transaction "
                             "(default 4)",
               [&opt](const std::string &v) {
                   opt.opsPerTxn = static_cast<int>(toUnsigned(v));
                   if (opt.opsPerTxn < 1)
                       throw CliError{"--ops must be >= 1"};
               })
        .value("--cores", "N", "cores serving the streams (default 2)",
               [&opt](const std::string &v) {
                   opt.cores = static_cast<int>(toUnsigned(v));
                   if (opt.cores < 1)
                       throw CliError{"--cores must be >= 1"};
               })
        .toggle("--smoke",
                "tiny sweep for CI (two offered loads, 32 txns)",
                [&opt] { opt.smoke = true; })
        .toggle("--check-knee",
                "gate: closed-loop cycles identical across offered "
                "loads while open-loop p99 diverges",
                [&opt] { opt.checkKnee = true; })
        .toggle("--check-shed",
                "gate: deadline shedding holds the steady goodput "
                "rate at 2x the overload knee while the unprotected "
                "p99 diverges",
                [&opt] { opt.checkShed = true; });
    addTrafficFlags(cli, opt.traffic);
    addOverloadFlags(cli, opt.overload);
    addCommonFlags(cli, opt.common);
    cli.parse(argc, argv);

    std::vector<Config> configs(kAllConfigs.begin(),
                                kAllConfigs.end());
    // Lightest offered load first; the knee gate compares the ends.
    std::vector<double> gaps{4000, 2000, 1000, 500, 250, 125};
    if (opt.smoke) {
        gaps = {6000, 60};
        opt.txnsPerStream = std::min(opt.txnsPerStream, 32);
    }
    if (!opt.traffic.arrivalGaps.empty()) {
        gaps = opt.traffic.arrivalGaps;
        std::sort(gaps.begin(), gaps.end(),
                  [](double a, double b) { return a > b; });
    }

    std::printf("== Open-loop traffic: %u streams on %d cores, "
                "%d txns/stream, theta %s, %s arrivals, seed %llu "
                "==\n\n",
                opt.traffic.streams, opt.cores, opt.txnsPerStream,
                fmtDouble(opt.traffic.zipfTheta, 2).c_str(),
                opt.overload.closedPool
                    ? "closed-pool"
                    : (opt.traffic.bursty ? "bursty" : "poisson"),
                static_cast<unsigned long long>(opt.traffic.seed));

    exp::RunnerOptions ro;
    ro.jobs = opt.common.jobs;
    ro.cacheDir =
        opt.common.useCache ? opt.common.cacheDir : std::string();

    if (opt.checkShed)
        return runCheckShed(opt, configs, ro);

    exp::ExperimentPlan plan;
    for (Config cfg : configs) {
        for (double gap : gaps) {
            plan.add(makePoint(opt, cfg, cellLabel(cfg, gap),
                               makePlan(opt, gap)));
        }
    }
    const exp::ExperimentResults results = exp::runPlan(plan, ro);

    const bool policyActive = opt.overload.policy.active();
    for (Config cfg : configs) {
        TextTable t({"mean gap", "cycles", "svc p50", "svc p99",
                     "open p50", "open p99", "open p99.9",
                     "open max"});
        for (double gap : gaps) {
            const exp::ExperimentCell &cell =
                results.cellByLabel(cellLabel(cfg, gap));
            const traffic::TrafficResult &tr = cell.result.traffic;
            t.addRow({std::to_string(static_cast<long long>(gap)),
                      std::to_string(cell.result.cycles),
                      std::to_string(tr.service.p50),
                      std::to_string(tr.service.p99),
                      std::to_string(tr.open.p50),
                      std::to_string(tr.open.p99),
                      std::to_string(tr.open.p999),
                      std::to_string(tr.open.max)});
        }
        std::printf("-- %s --\n%s\n",
                    std::string(configName(cfg)).c_str(),
                    t.str().c_str());

        if (!policyActive)
            continue;
        TextTable o({"mean gap", "offered", "goodput", "timeout",
                     "shed", "retries", "failed", "depth",
                     "degrade"});
        for (double gap : gaps) {
            const traffic::OverloadResult &ov =
                results.cellByLabel(cellLabel(cfg, gap))
                    .result.traffic.overload;
            const std::uint64_t shed = ov.shedQueue +
                                       ov.shedDeadline +
                                       ov.shedToken + ov.shedDegrade;
            o.addRow({std::to_string(static_cast<long long>(gap)),
                      std::to_string(ov.offered),
                      std::to_string(ov.goodput),
                      std::to_string(ov.timeouts),
                      std::to_string(shed),
                      std::to_string(ov.retries),
                      std::to_string(ov.failures),
                      std::to_string(ov.effectiveDepth),
                      std::string(traffic::degradeLevelName(
                          static_cast<traffic::DegradeLevel>(
                              ov.maxDegradeLevel)))});
        }
        std::printf("-- %s overload --\n%s\n",
                    std::string(configName(cfg)).c_str(),
                    o.str().c_str());
    }

    if (!opt.common.jsonPath.empty()) {
        exp::writeJsonArtifact(opt.common.jsonPath, "fig_traffic",
                               results);
    }
    if (opt.checkKnee)
        return checkKnee(results, configs, gaps);
    return 0;
}
