/**
 * @file
 * Open-loop traffic harness: exact tail latency vs offered load for
 * every Table III configuration.
 *
 * Each cell multiplexes N seeded client streams (YCSB-style
 * read/update mix, zipfian key skew, Poisson or bursty arrivals)
 * onto the multi-core persistent heap through the traffic library
 * (src/traffic/), and reports *exact* -- not histogram-bucketed --
 * p50 / p99 / p99.9 open-loop and service (closed-loop) latency per
 * {configuration x arrival rate} cell, aggregate and per stream.
 *
 * The sweep is the paper-style overload story a closed-loop bench
 * cannot tell: the per-core transaction schedule is arrival-
 * independent, so the machine's closed-loop cycle count is
 * bit-identical across offered loads, while the open-loop tail
 * blows up once arrivals outrun the NVM-bound service rate -- the
 * overload knee.  --check-knee gates exactly that separation (equal
 * cycles, diverging open p99) and is run by CI, as is the --jobs
 * parity of the BENCH_traffic.json artifact: every latency record
 * is integer cycles, so the JSON must be byte-identical across
 * --jobs 1 / --jobs 8 up to host_perf.
 *
 * Cells run through the experiment layer (parallel across cells,
 * content-addressed result cache) like every other sweep bench.
 */

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "cli.hh"
#include "common/stats.hh"
#include "exp/runner.hh"
#include "exp/sink.hh"
#include "sim/session.hh"

using namespace ede;
using namespace ede::bench;

namespace {

struct Options
{
    TrafficOptions traffic;   ///< --streams / --zipf-theta / ...
    int txnsPerStream = 96;
    int opsPerTxn = 4;
    int cores = 2;
    bool smoke = false;
    bool checkKnee = false;
    CommonOptions common;     ///< --jobs / --json / --cache-dir / ...
};

/** The plan-point label of one (config, mean-gap) cell. */
std::string
cellLabel(Config cfg, double gap)
{
    return std::string(configName(cfg)) + "/g" +
           std::to_string(static_cast<long long>(gap));
}

traffic::TrafficPlan
makePlan(const Options &opt, double gap)
{
    traffic::TrafficPlan plan;
    plan.streams = opt.traffic.streams;
    plan.txnsPerStream = opt.txnsPerStream;
    plan.opsPerTxn = opt.opsPerTxn;
    plan.mix.zipfTheta = opt.traffic.zipfTheta;
    plan.arrival.kind = opt.traffic.bursty
                            ? traffic::ArrivalKind::Bursty
                            : traffic::ArrivalKind::Poisson;
    plan.arrival.meanGap = gap;
    plan.seed = opt.traffic.seed;
    return plan;
}

/**
 * The overload-knee gate: per configuration, the machine's
 * closed-loop cycle count must be IDENTICAL at every offered load
 * (the trace is arrival-independent by construction), while the
 * open-loop p99 at the heaviest load must strictly exceed the
 * lightest load's -- queueing delay the closed-loop run structurally
 * cannot show.
 */
int
checkKnee(const exp::ExperimentResults &results,
          const std::vector<Config> &configs,
          const std::vector<double> &gaps)
{
    int failures = 0;
    for (Config cfg : configs) {
        // Gaps are swept lightest (largest gap) first.
        const exp::ExperimentCell &light =
            results.cellByLabel(cellLabel(cfg, gaps.front()));
        const exp::ExperimentCell &heavy =
            results.cellByLabel(cellLabel(cfg, gaps.back()));
        bool cyclesEqual = true;
        for (double gap : gaps) {
            const exp::ExperimentCell &cell =
                results.cellByLabel(cellLabel(cfg, gap));
            if (cell.result.cycles != light.result.cycles)
                cyclesEqual = false;
        }
        const Cycle p99Light = light.result.traffic.open.p99;
        const Cycle p99Heavy = heavy.result.traffic.open.p99;
        const bool diverges = p99Heavy > p99Light;
        if (!cyclesEqual || !diverges) {
            ++failures;
            std::printf(
                "KNEE MISSING %s: closed-loop %s, open p99 "
                "%llu -> %llu\n",
                std::string(configName(cfg)).c_str(),
                cyclesEqual ? "equal" : "DIVERGED",
                static_cast<unsigned long long>(p99Light),
                static_cast<unsigned long long>(p99Heavy));
        }
    }
    if (failures) {
        std::printf("overload-knee gate: %d configuration(s) without "
                    "the closed/open separation\n", failures);
        return 1;
    }
    std::printf("overload-knee gate: closed-loop cycles equal and "
                "open p99 diverges for all %zu configurations\n",
                configs.size());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    Cli cli("fig_traffic");
    cli.value("--txns", "N",
              "transactions per stream (default 96)",
              [&opt](const std::string &v) {
                  opt.txnsPerStream = static_cast<int>(toUnsigned(v));
                  if (opt.txnsPerStream < 1)
                      throw CliError{"--txns must be >= 1"};
              })
        .value("--ops", "N", "key operations per transaction "
                             "(default 4)",
               [&opt](const std::string &v) {
                   opt.opsPerTxn = static_cast<int>(toUnsigned(v));
                   if (opt.opsPerTxn < 1)
                       throw CliError{"--ops must be >= 1"};
               })
        .value("--cores", "N", "cores serving the streams (default 2)",
               [&opt](const std::string &v) {
                   opt.cores = static_cast<int>(toUnsigned(v));
                   if (opt.cores < 1)
                       throw CliError{"--cores must be >= 1"};
               })
        .toggle("--smoke",
                "tiny sweep for CI (two offered loads, 32 txns)",
                [&opt] { opt.smoke = true; })
        .toggle("--check-knee",
                "gate: closed-loop cycles identical across offered "
                "loads while open-loop p99 diverges",
                [&opt] { opt.checkKnee = true; });
    addTrafficFlags(cli, opt.traffic);
    addCommonFlags(cli, opt.common);
    cli.parse(argc, argv);

    std::vector<Config> configs(kAllConfigs.begin(),
                                kAllConfigs.end());
    // Lightest offered load first; the knee gate compares the ends.
    std::vector<double> gaps{4000, 2000, 1000, 500, 250, 125};
    if (opt.smoke) {
        gaps = {6000, 60};
        opt.txnsPerStream = std::min(opt.txnsPerStream, 32);
    }
    if (!opt.traffic.arrivalGaps.empty()) {
        gaps = opt.traffic.arrivalGaps;
        std::sort(gaps.begin(), gaps.end(),
                  [](double a, double b) { return a > b; });
    }

    std::printf("== Open-loop traffic: %u streams on %d cores, "
                "%d txns/stream, theta %s, %s arrivals, seed %llu "
                "==\n\n",
                opt.traffic.streams, opt.cores, opt.txnsPerStream,
                fmtDouble(opt.traffic.zipfTheta, 2).c_str(),
                opt.traffic.bursty ? "bursty" : "poisson",
                static_cast<unsigned long long>(opt.traffic.seed));

    exp::ExperimentPlan plan;
    for (Config cfg : configs) {
        for (double gap : gaps) {
            exp::ExperimentPoint pt;
            pt.label = cellLabel(cfg, gap);
            pt.config = cfg;
            pt.simParams = SimConfig::paper(cfg)
                               .withCoreCount(opt.cores)
                               .params();
            pt.traffic = true;
            pt.trafficPlan = makePlan(opt, gap);
            plan.add(std::move(pt));
        }
    }

    exp::RunnerOptions ro;
    ro.jobs = opt.common.jobs;
    ro.cacheDir =
        opt.common.useCache ? opt.common.cacheDir : std::string();
    const exp::ExperimentResults results = exp::runPlan(plan, ro);

    for (Config cfg : configs) {
        TextTable t({"mean gap", "cycles", "svc p50", "svc p99",
                     "open p50", "open p99", "open p99.9",
                     "open max"});
        for (double gap : gaps) {
            const exp::ExperimentCell &cell =
                results.cellByLabel(cellLabel(cfg, gap));
            const traffic::TrafficResult &tr = cell.result.traffic;
            t.addRow({std::to_string(static_cast<long long>(gap)),
                      std::to_string(cell.result.cycles),
                      std::to_string(tr.service.p50),
                      std::to_string(tr.service.p99),
                      std::to_string(tr.open.p50),
                      std::to_string(tr.open.p99),
                      std::to_string(tr.open.p999),
                      std::to_string(tr.open.max)});
        }
        std::printf("-- %s --\n%s\n",
                    std::string(configName(cfg)).c_str(),
                    t.str().c_str());
    }

    if (!opt.common.jsonPath.empty()) {
        exp::writeJsonArtifact(opt.common.jsonPath, "fig_traffic",
                               results);
    }
    if (opt.checkKnee)
        return checkKnee(results, configs, gaps);
    return 0;
}
