/**
 * @file
 * Crash-consistency model-checker driver.
 *
 * Where fault_campaign samples crash cycles, this driver enumerates
 * the *entire* durable-set lattice of a (deliberately small) run:
 * every downward-closed subset of the persist-ordering partial order
 * that a power failure could leave durable, plus torn-persist
 * variants at each set's frontier.  Every unique image goes through
 * undo-log recovery and the application's invariant oracle; a
 * violation is shrunk to a minimal durable-set counterexample.
 *
 * Usage:
 *   model_check [--app NAME] [--seed N] [--txns N] [--ops N]
 *               [--array-len N] [--config NAME]... [--drain-lines N]
 *               [--max-states N] [--budget-ms T] [--no-torn]
 *               [--seed-bug] [--jobs N] [--json PATH]
 *               [--isolate] [--timeout-ms T] [--mem-limit-mb M]
 *               [--attempts N] [--journal PATH] [--resume]
 *               [--conc NAME] [--cores N] [--ops-per-core N]
 *               [--workload-seed N] [--media-factor N]
 *
 *   --seed-bug deletes the EDK operand ordering the first
 *   transactional update behind its undo-log entry; the run then
 *   passes only if the checker DETECTS the resulting violation in
 *   every EDE configuration (checker-sensitivity gate).
 *   --max-states is the deterministic search bound; --budget-ms is a
 *   wall-clock bound and NONDETERMINISTIC in which states it covers.
 *
 *   --conc switches to the cross-core checker: the named concurrent
 *   kernel (msqueue / rwlock / rcu) runs on --cores harts, the joint
 *   persist-order lattice is enumerated, and every image is judged by
 *   the kernels' recovery oracles.  --seed-bug then retargets a
 *   cross-core WAIT (seedMissingCrossCoreWaitBug) instead of an EDK
 *   operand.  The single-app flags (--app/--txns/--ops/--array-len/
 *   --drain-lines) do not apply; the shared flags (--config,
 *   --max-states, --budget-ms, --no-torn, --jobs, --json, isolation)
 *   keep their meaning.
 *
 * Exit status is non-zero when an intact configuration has a
 * violating durable state, a seeded bug goes undetected, or a
 * configuration was quarantined.
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "cli.hh"
#include "common/logging.hh"
#include "fault/conc_check.hh"
#include "fault/model_check/checker.hh"
#include "sim/session.hh"

using namespace ede;
using namespace ede::bench;

namespace {

AppId
parseApp(const std::string &name)
{
    for (AppId id : kAllApps) {
        if (name == appName(id))
            return id;
    }
    std::fprintf(stderr, "unknown app '%s'\n", name.c_str());
    std::exit(2);
}

Config
parseConfig(const std::string &name)
{
    for (Config c : kAllConfigs) {
        if (name == configName(c))
            return c;
    }
    std::fprintf(stderr, "unknown config '%s'\n", name.c_str());
    std::exit(2);
}

ConcApp
parseConcApp(const std::string &name)
{
    for (ConcApp app : kAllConcApps) {
        if (name == concAppName(app))
            return app;
    }
    std::fprintf(stderr, "unknown concurrent kernel '%s'\n",
                 name.c_str());
    std::exit(2);
}

} // namespace

int
main(int argc, char **argv)
{
    ModelCheckOptions options;
    ConcCheckOptions conc;
    bool useConc = false;
    std::string jsonPath;
    std::vector<Config> configs;
    IsolationOptions iso;
    Cli cli("model_check");
    cli.value("--app", "NAME", "workload application",
              [&](const std::string &v) { options.app = parseApp(v); })
        .value("--seed", "N", "model-check RNG seed (torn masks)",
               [&](const std::string &v) { options.seed = toU64(v); })
        .value("--txns", "N", "transactions per run",
               [&](const std::string &v) {
                   options.spec.txns = toU64(v);
               })
        .value("--ops", "N", "operations per transaction",
               [&](const std::string &v) {
                   options.spec.opsPerTxn = toU64(v);
               })
        .value("--array-len", "N",
               "kernel array length (update/swap workloads)",
               [&](const std::string &v) {
                   options.appParams.arrayLen = toU64(v);
               })
        .value("--config", "NAME",
               "configuration to check (repeatable; default B IQ WB)",
               [&](const std::string &v) {
                   configs.push_back(parseConfig(v));
               })
        .value("--drain-lines", "N",
               "ADR drain budget in 256 B media lines "
               "(default: unlimited, a working ADR)",
               [&](const std::string &v) {
                   options.drainLines = toUnsigned(v);
               })
        .value("--max-states", "N",
               "deterministic bound on enumerated durable sets "
               "(0 = unlimited)",
               [&](const std::string &v) {
                   options.maxStates = toU64(v);
               })
        .value("--budget-ms", "T",
               "wall-clock search budget per config "
               "(0 = unlimited; nondeterministic coverage)",
               [&](const std::string &v) {
                   options.budgetMs = toU64(v);
               })
        .toggle("--no-torn", "skip torn-persist frontier variants",
                [&]() { options.torn = false; })
        .toggle("--seed-bug",
                "delete a load-bearing EDK and require the checker "
                "to find the violation",
                [&]() { options.seedBug = true; })
        .value("--jobs", "N",
               "parallel configurations (0 = hardware concurrency)",
               [&](const std::string &v) {
                   options.jobs = toUnsigned(v);
               })
        .value("--json", "PATH",
               "write the deterministic model-check JSON artifact",
               [&](const std::string &v) { jsonPath = v; })
        .value("--chaos-crash-config", "NAME",
               "chaos hook: this configuration's isolated worker "
               "calls abort() (CI/testing only)",
               [&](const std::string &v) {
                   options.chaosCrashConfig = v;
               })
        .value("--conc", "NAME",
               "concurrent kernel (msqueue / rwlock / rcu): run the "
               "cross-core checker instead of the single-app one",
               [&](const std::string &v) {
                   useConc = true;
                   conc.app = parseConcApp(v);
               })
        .value("--cores", "N", "cores for --conc (default 2)",
               [&](const std::string &v) {
                   conc.cores = toUnsigned(v);
               })
        .value("--ops-per-core", "N",
               "operations per core for --conc (default 4)",
               [&](const std::string &v) {
                   conc.opsPerCore = static_cast<int>(toU64(v));
               })
        .value("--workload-seed", "N",
               "global-interleaving seed for --conc (default 42)",
               [&](const std::string &v) {
                   conc.workloadSeed = toU64(v);
               })
        .value("--media-factor", "N",
               "NVM media write latency multiplier for --conc "
               "(default 8: the slow-media crash window)",
               [&](const std::string &v) {
                   conc.mediaFactor = toUnsigned(v);
               });
    addIsolationFlags(cli, iso);
    cli.parse(argc, argv);

    if (!configs.empty())
        options.configs = configs;
    options.isolate = iso.isolate;
    options.limits = iso.limits;
    options.retry = iso.retry;
    options.journalPath = iso.journalPath;
    options.resume = iso.resume;

    bool ok = false;
    std::string json;
    try {
    if (useConc) {
        // Shared flags were parsed into the single-app options;
        // forward them so both checkers speak one CLI dialect.
        conc.seed = options.seed;
        if (!configs.empty())
            conc.configs = configs;
        conc.drainLines = options.drainLines;
        conc.maxStates = options.maxStates;
        conc.budgetMs = options.budgetMs;
        conc.torn = options.torn;
        conc.seedBug = options.seedBug;
        conc.jobs = options.jobs;
        conc.isolate = options.isolate;
        conc.limits = options.limits;
        conc.retry = options.retry;
        conc.journalPath = options.journalPath;
        conc.resume = options.resume;
        conc.chaosCrashConfig = options.chaosCrashConfig;

        const ConcCheckReport report = runConcCheck(conc);
        std::fputs(report.describe().c_str(), stdout);
        ok = report.ok();
        if (!jsonPath.empty())
            json = concCheckToJson(report);
    } else {
        const ModelCheckReport report = runModelCheck(options);
        std::fputs(report.describe().c_str(), stdout);
        ok = report.ok();
        if (!jsonPath.empty())
            json = modelCheckToJson(report);
    }
    } catch (const SimFaultError &e) {
        // A structured workload/simulator fault (e.g. the per-core
        // EDK key partition exhausting at --cores >= 16) is a usage
        // error at this entry point, not a checker verdict: one-line
        // diagnostic, exit 2, same contract as malformed flags.
        const std::string what = e.what();
        std::fprintf(stderr, "model_check: %s\n",
                     what.substr(0, what.find('\n')).c_str());
        return 2;
    }

    if (!jsonPath.empty()) {
        std::ofstream out(jsonPath,
                          std::ios::binary | std::ios::trunc);
        if (!out)
            ede_fatal("cannot write JSON artifact '", jsonPath, "'");
        out << json;
        out.close();
        if (!out)
            ede_fatal("short write on JSON artifact '", jsonPath, "'");
        std::printf("[model-check] wrote %s\n", jsonPath.c_str());
    }
    return ok ? 0 : 1;
}
