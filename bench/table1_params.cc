/**
 * @file
 * Table I reporter: prints the architectural parameters the simulator
 * actually uses, for verification against the paper.
 */

#include <cstdio>

#include "bench_util.hh"
#include "sim/config.hh"

using namespace ede;

int
main()
{
    const SimParams p = makeParams(Config::B);
    const CoreParams &c = p.core;
    const MemSystemParams &m = p.mem;

    std::printf("== Table I: architectural parameters ==\n\n");
    TextTable t({"Parameter", "Value"});
    t.addRow({"ISA", "AArch64-flavoured micro-ops + EDE extension"});
    t.addRow({"Processor", "OoO core, " +
              std::to_string(c.fetchWidth) + "-instr decode width, "
              "3GHz (latencies in core cycles)"});
    t.addRow({"Issue queue", std::to_string(c.iqSize) + " entries, " +
              std::to_string(c.issueWidth) + "-wide issue"});
    t.addRow({"ROB", std::to_string(c.robSize) + " entries, " +
              std::to_string(c.retireWidth) + "-wide retire"});
    t.addRow({"Ld-St queue", std::to_string(c.lqSize) + " / " +
              std::to_string(c.sqSize) + " entries"});
    t.addRow({"Write buffer", std::to_string(c.wbSize) + " entries"});
    t.addRow({"L1 D-cache", std::to_string(m.l1d.sizeBytes / 1024) +
              "KB, " + std::to_string(m.l1d.assoc) + "-way, " +
              std::to_string(m.l1d.latency) + "-cycle access"});
    t.addRow({"L2 cache", std::to_string(m.l2.sizeBytes / 1024) +
              "KB, " + std::to_string(m.l2.assoc) + "-way, " +
              std::to_string(m.l2.latency) + "-cycle access"});
    t.addRow({"L3 cache", std::to_string(m.l3.sizeBytes / 1024) +
              "KB, " + std::to_string(m.l3.assoc) + "-way, " +
              std::to_string(m.l3.latency) + "-cycle access"});
    t.addRow({"DRAM capacity", std::to_string(m.map.dramBytes >> 30) +
              "GB"});
    t.addRow({"NVM capacity", std::to_string(m.map.nvmBytes >> 30) +
              "GB"});
    t.addRow({"NVM latency", std::to_string(m.nvm.readLatency) +
              " cyc read (150ns); " +
              std::to_string(m.nvm.writeLatency) +
              " cyc write (500ns)"});
    t.addRow({"NVM line size", std::to_string(m.nvm.lineBytes) + "B"});
    t.addRow({"NVM on-DIMM buffer", std::to_string(m.nvm.bufferSlots) +
              " slots"});
    t.addRow({"DRAM type", "2400MHz DDR4-like (row hit " +
              std::to_string(m.dram.rowHit) + " cyc, miss " +
              std::to_string(m.dram.rowMiss) + " cyc)"});
    t.addRow({"DRAM banks", std::to_string(m.dram.banks) +
              " (2 ranks x 16 banks)"});
    std::printf("%s\n", t.str().c_str());

    std::printf("Configurations (Table III): ");
    for (Config cfg : kAllConfigs) {
        std::printf("%s(%s) ", std::string(configName(cfg)).c_str(),
                    configIsUnsafe(cfg) ? "unsafe"
                    : configUsesEde(cfg)
                        ? std::string(enforceModeName(
                              configEnforceMode(cfg))).c_str()
                        : "fences");
    }
    std::printf("\n");
    return 0;
}
