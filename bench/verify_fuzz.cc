/**
 * @file
 * Malformed-program fuzz campaign driver.
 *
 * Generates thousands of seeded adversarial EDE programs and enforces
 * the verifier/pipeline contract in both directions: programs built
 * well-formed must be accepted and run clean on both enforcement
 * designs; programs with recorded malformations must be rejected at
 * or before the first offending instruction and still complete under
 * degrade-to-fence recovery; hardware-fault gadgets must be caught by
 * the runtime detector in IQ mode, survive degrade mode with
 * synthesized fences, and be neutralized by the WB CAM check.
 *
 * Usage:
 *   verify_fuzz [--seed N] [--programs N] [--max-ops N]
 *               [--malform-rate F] [--fault-rate F] [--jobs N]
 *
 *   --jobs runs the per-program checks in parallel through the
 *   experiment scheduler (0 = hardware concurrency); results are
 *   bit-identical to --jobs 1 because each program derives only
 *   from (seed, index).
 *
 * Exit status is non-zero when any generated program broke the
 * contract, so the campaign can gate CI.
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "verify/fuzz.hh"

using namespace ede;

int
main(int argc, char **argv)
{
    FuzzOptions options;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--seed") {
            options.seed = std::strtoull(value().c_str(), nullptr, 0);
        } else if (arg == "--programs") {
            options.programs =
                std::strtoull(value().c_str(), nullptr, 0);
        } else if (arg == "--max-ops") {
            options.maxOps =
                std::strtoull(value().c_str(), nullptr, 0);
        } else if (arg == "--malform-rate") {
            options.malformRate = std::strtod(value().c_str(), nullptr);
        } else if (arg == "--fault-rate") {
            options.faultRate = std::strtod(value().c_str(), nullptr);
        } else if (arg == "--jobs") {
            options.jobs = static_cast<unsigned>(
                std::strtoul(value().c_str(), nullptr, 0));
        } else if (arg == "--dump") {
            options.dumpFailures = true;
        } else {
            std::fprintf(stderr,
                         "usage: verify_fuzz [--seed N] "
                         "[--programs N] [--max-ops N] "
                         "[--malform-rate F] [--fault-rate F] "
                         "[--jobs N]\n");
            return arg == "--help" || arg == "-h" ? 0 : 2;
        }
    }

    const FuzzReport report = runVerifyFuzz(options);
    std::fputs(report.describe().c_str(), stdout);
    return report.contractHolds() ? 0 : 1;
}
