/**
 * @file
 * Malformed-program fuzz campaign driver.
 *
 * Generates thousands of seeded adversarial EDE programs and enforces
 * the verifier/pipeline contract in both directions: programs built
 * well-formed must be accepted and run clean on both enforcement
 * designs; programs with recorded malformations must be rejected at
 * or before the first offending instruction and still complete under
 * degrade-to-fence recovery; hardware-fault gadgets must be caught by
 * the runtime detector in IQ mode, survive degrade mode with
 * synthesized fences, and be neutralized by the WB CAM check.
 *
 * Usage:
 *   verify_fuzz [--seed N] [--programs N] [--max-ops N]
 *               [--malform-rate F] [--fault-rate F] [--jobs N]
 *               [--isolate] [--timeout-ms T] [--mem-limit-mb M]
 *               [--attempts N]
 *
 *   --jobs runs the per-program checks in parallel through the
 *   experiment scheduler (0 = hardware concurrency); results are
 *   bit-identical to --jobs 1 because each program derives only
 *   from (seed, index).
 *   --isolate forks one worker per program so a crash, hang or OOM
 *   while checking one adversarial program quarantines that program
 *   instead of killing the campaign.
 *
 * Exit status is non-zero when any generated program broke the
 * contract or was quarantined, so the campaign can gate CI.
 */

#include <cstdio>
#include <string>

#include "cli.hh"
#include "verify/fuzz.hh"

using namespace ede;
using namespace ede::bench;

int
main(int argc, char **argv)
{
    FuzzOptions options;
    Cli cli("verify_fuzz");
    cli.value("--seed", "N", "campaign RNG seed",
              [&](const std::string &v) { options.seed = toU64(v); })
        .value("--programs", "N", "generated programs",
               [&](const std::string &v) {
                   options.programs = toU64(v);
               })
        .value("--max-ops", "N", "max operations per program",
               [&](const std::string &v) {
                   options.maxOps = toU64(v);
               })
        .value("--malform-rate", "F",
               "fraction of programs given a malformation",
               [&](const std::string &v) {
                   options.malformRate = toF64(v);
               })
        .value("--fault-rate", "F",
               "fraction of programs given a hardware-fault gadget",
               [&](const std::string &v) {
                   options.faultRate = toF64(v);
               })
        .value("--jobs", "N",
               "parallel checks (0 = hardware concurrency); results "
               "are bit-identical to --jobs 1",
               [&](const std::string &v) {
                   options.jobs = toUnsigned(v);
               })
        .toggle("--dump", "dump every contract-breaking program",
                [&] { options.dumpFailures = true; })
        .value("--chaos-crash-index", "I",
               "chaos hook: this program's isolated worker calls "
               "abort() (CI/testing only)",
               [&](const std::string &v) {
                   options.chaosCrashIndex = toU64(v);
               });
    IsolationOptions iso;
    addIsolationFlags(cli, iso);
    cli.parse(argc, argv);

    if (!iso.journalPath.empty() || iso.resume) {
        std::fprintf(stderr, "verify_fuzz: --journal/--resume are not "
                             "supported here (use fault_campaign)\n");
        return 2;
    }
    options.isolate = iso.isolate;
    options.limits = iso.limits;
    options.retry = iso.retry;

    const FuzzReport report = runVerifyFuzz(options);
    std::fputs(report.describe().c_str(), stdout);
    return report.contractHolds() ? 0 : 1;
}
