/**
 * @file
 * Section IX demo: assemble EDE code from text, and lower a program
 * with *virtual* keys onto the fifteen physical EDKs.
 *
 * Part 1 assembles the paper's Figure 7 listing and prints the
 * binary encodings.  Part 2 builds an IR with 40 overlapping virtual
 * dependences, runs the linear-scan EDK allocator, and shows where
 * WAIT_KEY spills were inserted.
 */

#include <cstdio>

#include "compiler/edk_alloc.hh"
#include "isa/assembler.hh"
#include "isa/encoding.hh"

using namespace ede;

int
main()
{
    std::printf("== Part 1: assembling the Figure 7 listing ==\n\n");
    const char *listing = R"(
        ; log_value tail: persist the undo entry, produce EDK #1
        stp x0, x1, [x2]
        dc cvap (1,0), x2
        ; update_value: the store consumes EDK #1 -- no DSB needed
        str (0,1), x3, [x0]
        dc cvap x0
    )";
    std::string err;
    const auto program = assemble(listing, &err);
    if (!program) {
        std::fprintf(stderr, "assembly failed: %s\n", err.c_str());
        return 1;
    }
    for (const StaticInst &si : *program) {
        const auto word = encode(si);
        std::printf("  %-28s -> 0x%016llx\n", disassemble(si).c_str(),
                    static_cast<unsigned long long>(
                        word ? *word : 0));
    }

    std::printf("\n== Part 2: virtual-key allocation "
                "(Section IX-A) ==\n\n");
    // 40 producer/consumer pairs whose live ranges all overlap: far
    // more than the 15 architectural keys.
    std::vector<VKeyedInst> ir;
    for (VKey v = 1; v <= 40; ++v) {
        VKeyedInst p;
        p.si.op = Op::DcCvap;
        p.si.base = 2;
        p.vdef = v;
        ir.push_back(p);
    }
    for (VKey v = 1; v <= 40; ++v) {
        VKeyedInst c;
        c.si.op = Op::Str;
        c.si.src1 = 3;
        c.si.base = 4;
        c.si.size = 8;
        c.vuse = v;
        ir.push_back(c);
    }
    const EdkAllocResult r = allocateEdks(ir);
    std::printf("input: %zu IR instructions, 40 virtual keys\n",
                ir.size());
    std::printf("output: %zu instructions (%zu WAIT_KEY spills, %zu "
                "fence fallbacks)\n\n",
                r.code.size(), r.waitKeysInserted, r.fencesInserted);
    std::printf("first lowered instructions:\n");
    for (std::size_t i = 0; i < r.code.size() && i < 20; ++i) {
        std::printf("  %-30s%s\n", disassemble(r.code[i]).c_str(),
                    r.origin[i] == EdkAllocResult::kInserted
                        ? "   <- inserted spill" : "");
    }
    std::printf("  ...\n\nThe allocator reuses keys whose ranges "
                "closed; when more than 15\nranges are live it ends "
                "one with WAIT_KEY, exactly the register-\n"
                "allocation analogy of Section IX.\n");
    return 0;
}
