/**
 * @file
 * Crash-and-recover demo: run btree inserts under WB, crash at
 * several points, rebuild the durable NVM image, run undo-log
 * recovery and validate the tree.
 */

#include <cstdio>

#include "apps/harness.hh"

using namespace ede;

int
main()
{
    std::printf("== Crash recovery with EDE (WB) ==\n\n");
    RunSpec spec;
    spec.txns = 6;
    spec.opsPerTxn = 10;
    WorkloadHarness h(AppId::Btree, Config::WB, spec);
    h.enableAudit();
    h.generate();
    const Cycle total = h.simulate();

    std::printf("ran %zu instructions in %llu cycles; audit: %s\n\n",
                h.trace().size(),
                static_cast<unsigned long long>(total),
                h.audit().clean() ? "clean" : "VIOLATIONS");

    const Cycle start = h.setupCompleteCycle();
    TextTable t({"crash cycle", "recovery", "tree state"});
    for (int i = 0; i <= 8; ++i) {
        const Cycle at = start + (total - start) * i / 8;
        MemoryImage recovered = h.recoveredImageAt(at);
        const bool ok = h.app().checkRecovered(recovered);
        t.addRow({std::to_string(at), "undo-log replay",
                  ok ? "consistent (a txn boundary)" : "CORRUPT"});
        if (!ok)
            return 1;
    }
    std::printf("%s\n", t.str().c_str());
    std::printf("Every crash point recovers to a transaction "
                "boundary: EDE's fine-grained\nordering preserves "
                "undo logging's crash consistency while removing "
                "the fences.\n");
    return 0;
}
