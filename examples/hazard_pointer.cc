/**
 * @file
 * Section VIII example: hazard-pointer announcement without the full
 * fence, using the EDE load variant.
 *
 * Shows the exact instruction sequences side by side and the cycles
 * a single announcement costs under each.
 */

#include <cstdio>

#include "mem/mem_system.hh"
#include "pipeline/core.hh"
#include "trace/builder.hh"

using namespace ede;

namespace {

Cycle
announceLoop(bool use_ede, int iters)
{
    MemSystem mem{MemSystemParams{}};
    CoreParams params;
    params.ede = EnforceMode::WB;
    OoOCore core(params, mem);

    Trace t;
    TraceBuilder b(t);
    const Addr elem_loc = 0x200000;
    const Addr hazard = 0x300000;
    const Addr nodes = 0x400000;
    b.str(1, 2, elem_loc, 0xabc);
    b.str(1, 2, hazard, 0);
    b.dsbSy();
    for (int i = 0; i < iters; ++i) {
        // Figure 12 body.
        b.ldr(3, 1, elem_loc);
        if (use_ede) {
            b.str(3, 2, hazard, 0xabc, 0, {1, 0});
            b.ldr(4, 1, elem_loc, 0, {0, 1});
        } else {
            b.str(3, 2, hazard, 0xabc);
            b.dsbSy(); // Figure 12's dmb sy (full fence) semantics.
            b.ldr(4, 1, elem_loc);
        }
        b.branchCond("hp.retry", 3, 4, false);
        // Reads of the protected structure: the full fence
        // serializes these; the EDE dependence leaves them free.
        for (int l = 0; l < 3; ++l) {
            b.ldr(static_cast<RegIndex>(5 + l), 8,
                  nodes + 64ull * ((i * 7 + l * 131) % 2048));
        }
    }
    return core.run(t);
}

} // namespace

int
main()
{
    std::printf("== Hazard pointer announcement (Section VIII) "
                "==\n\n");
    std::printf("with fence (Figure 12):        with EDE:\n");
    std::printf("  ldr x3, [x1]                   ldr x3, [x1]\n");
    std::printf("  str x3, [x2]                   str (1,0), x3, "
                "[x2]\n");
    std::printf("  dmb sy                         ldr (0,1), x4, "
                "[x1]\n");
    std::printf("  ldr x4, [x1]                   cmp x4, x3\n");
    std::printf("  cmp x4, x3                     b.ne Loop\n");
    std::printf("  b.ne Loop\n\n");

    constexpr int kIters = 500;
    const Cycle fence = announceLoop(false, kIters);
    const Cycle ede = announceLoop(true, kIters);
    std::printf("%d announcements + traversal, fence version: "
                "%llu cycles (%.1f/iter)\n", kIters,
                static_cast<unsigned long long>(fence),
                static_cast<double>(fence) / kIters);
    std::printf("%d announcements + traversal, EDE version:   "
                "%llu cycles (%.1f/iter)\n", kIters,
                static_cast<unsigned long long>(ede),
                static_cast<double>(ede) / kIters);
    std::printf("\nThe EDE load still waits for the announcement "
                "store to complete\n(the required ordering), but the "
                "traversal reads are no longer\nserialized behind a "
                "full fence: %.2fx faster.\n",
                static_cast<double>(fence) / ede);
    return 0;
}
