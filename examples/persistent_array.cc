/**
 * @file
 * End-to-end persistent-array example (Figures 1, 2, 7): run the
 * update kernel through the full framework under all five
 * configurations and report timing, fence counts and the audit.
 */

#include <cstdio>

#include "apps/harness.hh"

using namespace ede;

int
main()
{
    std::printf("== Persistent array updates under the five "
                "configurations ==\n\n");
    RunSpec spec;
    spec.txns = 10;
    spec.opsPerTxn = 25;

    TextTable t({"config", "op cycles", "norm", "fences", "EDE insts",
                 "audit"});
    Cycle base = 0;
    for (Config cfg : kAllConfigs) {
        WorkloadHarness h(AppId::Update, cfg, spec);
        h.enableAudit();
        h.generate();
        h.simulate();
        const Cycle cycles = h.opPhaseCycles();
        if (cfg == Config::B)
            base = cycles;
        const AuditReport audit = h.audit();
        if (!h.app().checkFinal()) {
            std::fprintf(stderr, "functional check failed!\n");
            return 1;
        }
        t.addRow({std::string(configName(cfg)),
                  std::to_string(cycles),
                  fmtDouble(static_cast<double>(cycles) / base, 2),
                  std::to_string(h.trace().fenceCount()),
                  std::to_string(h.trace().edeCount()),
                  audit.clean()
                      ? "clean"
                      : std::to_string(audit.violations) +
                            " violations"});
    }
    std::printf("%s\n", t.str().c_str());
    std::printf("B uses a DSB per update (Figure 2); IQ/WB express "
                "the same ordering\nwith EDK #1 (Figure 7) and run "
                "faster; U drops ordering and fails the\n"
                "undo-logging audit.\n");
    return 0;
}
