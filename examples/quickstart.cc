/**
 * @file
 * Quickstart: build a tiny EDE program by hand, run it on the
 * simulated core, and print what happened.
 *
 * The program is the paper's motivating pair (Figure 7): persist an
 * undo-log entry, then update the element -- with the ordering
 * carried by EDK #1 instead of a DSB.
 */

#include <cstdio>

#include "isa/encoding.hh"
#include "mem/mem_system.hh"
#include "pipeline/core.hh"
#include "trace/builder.hh"

using namespace ede;

int
main()
{
    // A memory system and an out-of-order core with the write-buffer
    // EDE realization (Table I parameters).
    MemSystem mem{MemSystemParams{}};
    CoreParams params;
    params.ede = EnforceMode::WB;
    OoOCore core(params, mem);
    core.setRecordCompletions(true);

    MemoryImage image;
    core.setTimingImage(&image);

    // Addresses: a log slot and an element, both in NVM.
    const Addr nvm = MemSystemParams{}.map.nvmBase();
    const Addr slot = nvm + 0x1000;
    const Addr elem = nvm + 0x2000;

    // Assemble the Figure 7 sequence.
    Trace trace;
    TraceBuilder b(trace);
    b.movImm(0, static_cast<std::int64_t>(elem));     // x0 = &elem
    b.ldr(1, 0, elem);                                // x1 = old value
    b.movImm(2, static_cast<std::int64_t>(slot));     // x2 = slot
    b.stp(0, 1, 2, slot, elem, 0);                    // log {addr,old}
    const auto log_cvap = b.cvap(2, slot, {1, 0});    // dc cvap (1,0)
    b.movImm(3, 42);                                  // new value
    const auto upd = b.str(3, 0, elem, 42, 0, {0, 1});// str (0,1)
    b.cvap(0, elem, {2, 0});                          // persist elem

    std::printf("program:\n");
    for (std::size_t i = 0; i < trace.size(); ++i) {
        const auto word = encode(trace[i].si);
        if (word) {
            std::printf("  [%zu] %-40s encoding=0x%016llx\n", i,
                        disassemble(trace[i]).c_str(),
                        static_cast<unsigned long long>(*word));
        } else {
            // Wide address immediates need a movz/movk sequence on
            // real AArch64; the model folds them into one mov.
            std::printf("  [%zu] %-40s (wide imm; lowered as a mov "
                        "sequence)\n", i,
                        disassemble(trace[i]).c_str());
        }
    }

    const Cycle cycles = core.run(trace);

    std::printf("\nran %zu instructions in %llu cycles (IPC %.2f)\n",
                trace.size(),
                static_cast<unsigned long long>(cycles),
                core.stats().ipc());
    std::printf("log persist completed at cycle %llu\n",
                static_cast<unsigned long long>(
                    core.completionCycles()[log_cvap]));
    std::printf("element store visible at cycle %llu "
                "(never before the log persist)\n",
                static_cast<unsigned long long>(
                    core.completionCycles()[upd]));
    std::printf("element value in coherent memory: %llu\n",
                static_cast<unsigned long long>(
                    image.read<std::uint64_t>(elem)));
    std::printf("fences executed: %zu (the DSB of Figure 4 is "
                "gone)\n", trace.fenceCount());
    return 0;
}
