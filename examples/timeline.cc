/**
 * @file
 * Figure 3 / Figure 8 visualisation: per-instruction completion
 * timelines for three independent persistent-array updates under
 * every configuration.
 *
 * Under B, the DSBs create the four serial phases of Figure 3; under
 * EDE each update only waits for its own log persist, and the three
 * updates overlap.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "mem/mem_system.hh"
#include "pipeline/core.hh"
#include "sim/config.hh"
#include "trace/builder.hh"

using namespace ede;

namespace {

struct Labeled
{
    std::size_t idx;
    std::string label;
};

/** Emit p_array[i] = v for three elements (Figures 1, 4, 7). */
void
emitUpdates(TraceBuilder &b, Config cfg, Addr log_base, Addr array,
            std::vector<Labeled> &out)
{
    for (int i = 0; i < 3; ++i) {
        const Addr slot = log_base + 64ull * i;
        const Addr elem = array + 8ull * i;
        const std::string tag = "upd" + std::to_string(i);
        b.movImm(0, static_cast<std::int64_t>(elem));
        b.ldr(1, 0, elem);
        b.movImm(2, static_cast<std::int64_t>(slot));
        out.push_back({b.stp(0, 1, 2, slot, elem, 7), tag + ".log-stp"});
        if (configUsesEde(cfg)) {
            out.push_back({b.cvap(2, slot, {1, 0}),
                           tag + ".log-cvap (1,0)"});
        } else {
            out.push_back({b.cvap(2, slot), tag + ".log-cvap"});
            if (cfg == Config::B)
                b.dsbSy();
            else if (cfg == Config::SU)
                b.dmbSt();
        }
        b.movImm(3, 6 + i);
        if (configUsesEde(cfg)) {
            out.push_back({b.str(3, 0, elem,
                                 static_cast<std::uint64_t>(6 + i), 0,
                                 {0, 1}),
                           tag + ".elem-str (0,1)"});
        } else {
            out.push_back({b.str(3, 0, elem,
                                 static_cast<std::uint64_t>(6 + i)),
                           tag + ".elem-str"});
        }
        out.push_back({b.cvap(0, elem), tag + ".elem-cvap"});
    }
}

} // namespace

int
main()
{
    std::printf("== Figure 3: three updates, completion "
                "timelines ==\n");
    const Addr nvm = MemSystemParams{}.map.nvmBase();
    for (Config cfg : kAllConfigs) {
        MemSystem mem{MemSystemParams{}};
        CoreParams params;
        params.ede = configEnforceMode(cfg);
        OoOCore core(params, mem);
        core.setRecordCompletions(true);

        Trace t;
        TraceBuilder b(t);
        std::vector<Labeled> labeled;
        emitUpdates(b, cfg, nvm + 0x1000, nvm + 0x8000, labeled);
        const Cycle total = core.run(t);

        std::printf("\n[%s]  total=%llu cycles\n",
                    std::string(configName(cfg)).c_str(),
                    static_cast<unsigned long long>(total));
        for (const Labeled &l : labeled) {
            const Cycle done = core.completionCycles()[l.idx];
            std::printf("  %-22s done @%5llu  |%s\n", l.label.c_str(),
                        static_cast<unsigned long long>(done),
                        std::string(std::min<std::size_t>(
                                        done / 8, 70), '=')
                            .c_str());
        }
    }
    std::printf("\nUnder B the phases serialize (Figure 3); under "
                "IQ/WB the three\nupdates' log persists overlap and "
                "each element store waits only\nfor its own log "
                "entry.\n");
    return 0;
}
