#include "apps/app.hh"

#include "apps/btree.hh"
#include "apps/ctree.hh"
#include "apps/kernels.hh"
#include "apps/rbtree.hh"
#include "apps/rtree.hh"
#include "common/logging.hh"

namespace ede {

std::unique_ptr<App>
makeApp(AppId id, NvmFramework &fw, const AppParams &params)
{
    switch (id) {
      case AppId::Update:
        return std::make_unique<UpdateKernel>(fw, params.arrayLen,
                                              params.seed);
      case AppId::Swap:
        return std::make_unique<SwapKernel>(fw, params.arrayLen,
                                            params.seed);
      case AppId::Btree:
        return std::make_unique<BtreeApp>(fw, params.seed);
      case AppId::Ctree:
        return std::make_unique<CtreeApp>(fw, params.seed);
      case AppId::Rbtree:
        return std::make_unique<RbtreeApp>(fw, params.seed);
      case AppId::Rtree:
        return std::make_unique<RtreeApp>(fw, params.seed);
    }
    ede_panic("unknown AppId");
}

} // namespace ede
