/**
 * @file
 * Workload interface and registry (Table II applications).
 *
 * An App is a persistent data structure (or kernel) written against
 * the NvmFramework: it executes functionally on the simulated memory
 * image while emitting the dynamic instruction stream.  Each app also
 * keeps a per-transaction logical history so crash-recovery tests can
 * check that a recovered image equals *some* transaction boundary --
 * the failure-atomicity property the paper's undo logging provides.
 */

#ifndef EDE_APPS_APP_HH
#define EDE_APPS_APP_HH

#include <array>
#include <memory>
#include <string>
#include <string_view>

#include "common/random.hh"
#include "nvm/framework.hh"

namespace ede {

/** Table II application identifiers. */
enum class AppId { Update, Swap, Btree, Ctree, Rbtree, Rtree };

/** All applications in the paper's order. */
inline constexpr std::array<AppId, 6> kAllApps = {
    AppId::Update, AppId::Swap, AppId::Btree,
    AppId::Ctree, AppId::Rbtree, AppId::Rtree,
};

/** Printable workload name. */
constexpr std::string_view
appName(AppId id)
{
    switch (id) {
      case AppId::Update: return "update";
      case AppId::Swap: return "swap";
      case AppId::Btree: return "btree";
      case AppId::Ctree: return "ctree";
      case AppId::Rbtree: return "rbtree";
      case AppId::Rtree: return "rtree";
    }
    return "<bad-app>";
}

/** Tunables common to every workload. */
struct AppParams
{
    std::uint64_t seed = 42;

    /**
     * Kernel array length (update/swap).  The default 32 KB array is
     * cache-hot, so the kernels stress persist ordering rather than
     * load latency -- the regime where the paper's Figure 9 spread
     * appears.
     */
    std::size_t arrayLen = 4096;
};

/** A workload generating operations through the framework. */
class App
{
  public:
    explicit App(NvmFramework &fw) : fw_(fw) {}
    virtual ~App() = default;

    /** Workload name (Table II). */
    virtual std::string_view name() const = 0;

    /** Allocate and persist the initial structure (outside any tx). */
    virtual void setup() = 0;

    /** Emit one operation; must be called inside an open tx. */
    virtual void op(Rng &rng) = 0;

    /** The driver committed the current transaction. */
    virtual void noteCommit() = 0;

    /** Validate the functional end state (volatile image). */
    virtual bool checkFinal() const = 0;

    /**
     * Validate a post-recovery crash image: structure must be intact
     * and its logical contents must equal some transaction boundary.
     */
    virtual bool checkRecovered(const MemoryImage &img) const = 0;

  protected:
    NvmFramework &fw_;
};

/** Instantiate application @p id over framework @p fw. */
std::unique_ptr<App> makeApp(AppId id, NvmFramework &fw,
                             const AppParams &params);

} // namespace ede

#endif // EDE_APPS_APP_HH
