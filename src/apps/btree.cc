#include "apps/btree.hh"

#include "common/logging.hh"

namespace ede {

BtreeApp::BtreeApp(NvmFramework &fw, std::uint64_t seed)
    : App(fw), seed_(seed)
{
}

std::uint64_t
BtreeApp::rd(Addr node, int f, RegIndex base)
{
    std::uint64_t v = 0;
    fw_.loadU64(fieldAddr(node, f), base, &v);
    return v;
}

void
BtreeApp::wr(Addr node, int f, std::uint64_t v)
{
    // PMDK-style: snapshot the whole node on first touch per tx.
    fw_.pWriteU64InRange(fieldAddr(node, f), v, node, 24);
}

Addr
BtreeApp::allocNode(bool leaf)
{
    const Addr node = fw_.heap().alloc(kNodeBytes);
    fw_.compute(1); // Allocator bookkeeping.
    wr(node, fNKeys, 0);
    wr(node, fIsLeaf, leaf ? 1 : 0);
    return node;
}

void
BtreeApp::setup()
{
    rootPtr_ = fw_.heap().alloc(16);
    fw_.rawStoreU64(rootPtr_, 0);
    fw_.persistLine(rootPtr_);
}

void
BtreeApp::splitChild(Addr parent, int idx, RegIndex parent_reg)
{
    const Addr child = rd(parent, fChild0 + idx, parent_reg);
    const RegIndex child_reg = fw_.movAddr(child);
    const bool child_leaf = rd(child, fIsLeaf, child_reg) != 0;
    const Addr fresh = allocNode(child_leaf);

    // Move the upper t-1 keys (and t children) into the new node.
    for (int k = 0; k < kMinDegree - 1; ++k) {
        wr(fresh, fKey0 + k, rd(child, fKey0 + kMinDegree + k,
                                child_reg));
        wr(fresh, fVal0 + k, rd(child, fVal0 + kMinDegree + k,
                                child_reg));
    }
    if (!child_leaf) {
        for (int k = 0; k < kMinDegree; ++k) {
            wr(fresh, fChild0 + k,
               rd(child, fChild0 + kMinDegree + k, child_reg));
        }
    }
    wr(fresh, fNKeys, kMinDegree - 1);
    wr(child, fNKeys, kMinDegree - 1);

    // Shift the parent's keys/children right of idx and insert the
    // median.
    const int parent_n = static_cast<int>(rd(parent, fNKeys,
                                             parent_reg));
    for (int k = parent_n - 1; k >= idx; --k) {
        wr(parent, fKey0 + k + 1, rd(parent, fKey0 + k, parent_reg));
        wr(parent, fVal0 + k + 1, rd(parent, fVal0 + k, parent_reg));
    }
    for (int k = parent_n; k >= idx + 1; --k) {
        wr(parent, fChild0 + k + 1,
           rd(parent, fChild0 + k, parent_reg));
    }
    wr(parent, fKey0 + idx, rd(child, fKey0 + kMinDegree - 1,
                               child_reg));
    wr(parent, fVal0 + idx, rd(child, fVal0 + kMinDegree - 1,
                               child_reg));
    wr(parent, fChild0 + idx + 1, fresh);
    wr(parent, fNKeys, parent_n + 1);
}

void
BtreeApp::insertNonFull(Addr node, RegIndex node_reg, std::uint64_t key,
                        std::uint64_t val)
{
    while (true) {
        const int n = static_cast<int>(rd(node, fNKeys, node_reg));
        const bool leaf = rd(node, fIsLeaf, node_reg) != 0;
        // Search for the position, emitting the compare-and-branch
        // work the compiled loop performs.
        int pos = 0;
        const RegIndex key_reg = fw_.movAddr(key);
        while (pos < n) {
            const std::uint64_t k = rd(node, fKey0 + pos, node_reg);
            const RegIndex cmp_reg = fw_.movAddr(k);
            if (k == key) {
                fw_.branchCmp("btree.eq", key_reg, cmp_reg, true);
                wr(node, fVal0 + pos, val);
                return;
            }
            const bool stop = k > key;
            fw_.branchCmp("btree.scan", key_reg, cmp_reg, stop);
            if (stop)
                break;
            ++pos;
        }
        if (leaf) {
            for (int k = n - 1; k >= pos; --k) {
                wr(node, fKey0 + k + 1, rd(node, fKey0 + k, node_reg));
                wr(node, fVal0 + k + 1, rd(node, fVal0 + k, node_reg));
            }
            wr(node, fKey0 + pos, key);
            wr(node, fVal0 + pos, val);
            wr(node, fNKeys, n + 1);
            return;
        }
        Addr child = rd(node, fChild0 + pos, node_reg);
        RegIndex child_reg = fw_.movAddr(child);
        if (rd(child, fNKeys, child_reg) == kMaxKeys) {
            splitChild(node, pos, node_reg);
            const std::uint64_t median =
                fw_.image().read<std::uint64_t>(
                    fieldAddr(node, fKey0 + pos));
            if (key == median) {
                wr(node, fVal0 + pos, val);
                return;
            }
            if (key > median) {
                ++pos;
                child = fw_.image().read<std::uint64_t>(
                    fieldAddr(node, fChild0 + pos));
                child_reg = fw_.movAddr(child);
            } else {
                child = fw_.image().read<std::uint64_t>(
                    fieldAddr(node, fChild0 + pos));
                child_reg = fw_.movAddr(child);
            }
        }
        node = child;
        node_reg = child_reg;
    }
}

void
BtreeApp::insert(std::uint64_t key, std::uint64_t val)
{
    const RegIndex root_ptr_reg = fw_.movAddr(rootPtr_);
    Addr root = 0;
    fw_.loadU64(rootPtr_, root_ptr_reg, &root);
    if (root == 0) {
        root = allocNode(true);
        wr(root, fKey0, key);
        wr(root, fVal0, val);
        wr(root, fNKeys, 1);
        fw_.pWriteU64(rootPtr_, root);
        return;
    }
    RegIndex root_reg = fw_.movAddr(root);
    if (rd(root, fNKeys, root_reg) == kMaxKeys) {
        const Addr fresh = allocNode(false);
        wr(fresh, fChild0, root);
        splitChild(fresh, 0, fw_.movAddr(fresh));
        fw_.pWriteU64(rootPtr_, fresh);
        root = fresh;
        root_reg = fw_.movAddr(fresh);
    }
    insertNonFull(root, root_reg, key, val);
}

void
BtreeApp::op(Rng &rng)
{
    const std::uint64_t key = rng.next() & 0xffffffffffffull;
    const std::uint64_t val = rng.next() | 1;
    insert(key, val);
    ref_[key] = val;
    curTxn_.emplace_back(key, val);
}

void
BtreeApp::noteCommit()
{
    history_.push_back(std::move(curTxn_));
    curTxn_.clear();
}

bool
BtreeApp::collect(const MemoryImage &img, Addr node, int depth,
                  int &leaf_depth, bool is_root, std::uint64_t lo,
                  std::uint64_t hi,
                  std::vector<std::pair<std::uint64_t,
                                        std::uint64_t>> &out,
                  std::size_t &budget)
{
    if (budget == 0 || depth > 64)
        return false;
    --budget;
    if (node == 0 || (node & 0xf) != 0)
        return false;
    const auto n = img.read<std::uint64_t>(fieldAddr(node, fNKeys));
    const bool leaf = img.read<std::uint64_t>(
        fieldAddr(node, fIsLeaf)) != 0;
    if (n > kMaxKeys)
        return false;
    if (!is_root && n < kMinDegree - 1)
        return false;
    if (is_root && n < 1)
        return false;
    if (leaf) {
        if (leaf_depth < 0)
            leaf_depth = depth;
        else if (leaf_depth != depth)
            return false;
    }
    std::uint64_t prev = lo;
    for (std::uint64_t i = 0; i < n; ++i) {
        const auto key = img.read<std::uint64_t>(
            fieldAddr(node, fKey0 + static_cast<int>(i)));
        const auto val = img.read<std::uint64_t>(
            fieldAddr(node, fVal0 + static_cast<int>(i)));
        if (key < prev || key > hi)
            return false;
        if (!leaf) {
            const auto child = img.read<std::uint64_t>(
                fieldAddr(node, fChild0 + static_cast<int>(i)));
            if (!collect(img, child, depth + 1, leaf_depth, false,
                         prev, key, out, budget)) {
                return false;
            }
        }
        out.emplace_back(key, val);
        prev = key;
    }
    if (!leaf) {
        const auto child = img.read<std::uint64_t>(
            fieldAddr(node, fChild0 + static_cast<int>(n)));
        if (!collect(img, child, depth + 1, leaf_depth, false, prev, hi,
                     out, budget)) {
            return false;
        }
    }
    return true;
}

bool
BtreeApp::extract(const MemoryImage &img, Addr root_ptr,
                  std::vector<std::pair<std::uint64_t,
                                        std::uint64_t>> &out)
{
    const Addr root = img.read<std::uint64_t>(root_ptr);
    if (root == 0)
        return true; // Empty tree.
    int leaf_depth = -1;
    std::size_t budget = 1u << 22;
    return collect(img, root, 0, leaf_depth, true, 0,
                   ~std::uint64_t{0}, out, budget);
}

bool
BtreeApp::lookup(const MemoryImage &img, Addr root_ptr,
                 std::uint64_t key, std::uint64_t *val_out)
{
    Addr node = img.read<std::uint64_t>(root_ptr);
    int depth = 0;
    while (node != 0 && depth++ < 64) {
        const auto n = img.read<std::uint64_t>(fieldAddr(node, fNKeys));
        const bool leaf = img.read<std::uint64_t>(
            fieldAddr(node, fIsLeaf)) != 0;
        std::uint64_t i = 0;
        while (i < n && img.read<std::uint64_t>(
                   fieldAddr(node, fKey0 + static_cast<int>(i))) < key) {
            ++i;
        }
        if (i < n) {
            const auto k = img.read<std::uint64_t>(
                fieldAddr(node, fKey0 + static_cast<int>(i)));
            if (k == key) {
                if (val_out) {
                    *val_out = img.read<std::uint64_t>(
                        fieldAddr(node, fVal0 + static_cast<int>(i)));
                }
                return true;
            }
        }
        if (leaf)
            return false;
        node = img.read<std::uint64_t>(
            fieldAddr(node, fChild0 + static_cast<int>(i)));
    }
    return false;
}

bool
BtreeApp::checkFinal() const
{
    std::vector<std::pair<std::uint64_t, std::uint64_t>> got;
    if (!extract(fw_.image(), rootPtr_, got))
        return false;
    if (got.size() != ref_.size())
        return false;
    auto it = ref_.begin();
    for (const auto &kv : got) {
        if (kv.first != it->first || kv.second != it->second)
            return false;
        ++it;
    }
    return true;
}

bool
BtreeApp::checkRecovered(const MemoryImage &img) const
{
    std::vector<std::pair<std::uint64_t, std::uint64_t>> got;
    if (!extract(img, rootPtr_, got))
        return false;

    std::map<std::uint64_t, std::uint64_t> state;
    auto matches = [&]() {
        if (got.size() != state.size())
            return false;
        auto it = state.begin();
        for (const auto &kv : got) {
            if (kv.first != it->first || kv.second != it->second)
                return false;
            ++it;
        }
        return true;
    };
    if (matches())
        return true;
    for (const auto &txn : history_) {
        for (const auto &[k, v] : txn)
            state[k] = v;
        if (matches())
            return true;
    }
    return false;
}

} // namespace ede
