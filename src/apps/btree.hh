/**
 * @file
 * Persistent B-tree with between 3 and 7 keys per node (Table II),
 * undo-logged through the framework like PMDK pmembench's btree.
 *
 * Node layout (all fields u64, 192 bytes, allocated as 256):
 *   [0] nKeys   [1] isLeaf
 *   [2..8]   keys[7]
 *   [9..15]  vals[7]
 *   [16..23] children[8]
 *
 * Insertion uses preemptive splitting on the way down (minimum degree
 * t = 4, so full nodes hold 2t-1 = 7 keys and non-root nodes never
 * drop below t-1 = 3).
 */

#ifndef EDE_APPS_BTREE_HH
#define EDE_APPS_BTREE_HH

#include <map>
#include <vector>

#include "apps/app.hh"

namespace ede {

/** Persistent B-tree insert workload. */
class BtreeApp : public App
{
  public:
    BtreeApp(NvmFramework &fw, std::uint64_t seed);

    std::string_view name() const override { return "btree"; }
    void setup() override;
    void op(Rng &rng) override;
    void noteCommit() override;
    bool checkFinal() const override;
    bool checkRecovered(const MemoryImage &img) const override;

    /** Transactional insert (exposed for unit tests). */
    void insert(std::uint64_t key, std::uint64_t val);

    /** Functional lookup on an arbitrary image (tests/recovery). */
    static bool lookup(const MemoryImage &img, Addr root_ptr,
                       std::uint64_t key, std::uint64_t *val_out);

  private:
    static constexpr int kMaxKeys = 7;
    static constexpr int kMinDegree = 4;
    static constexpr std::uint64_t kNodeBytes = 256;

    /** @name Field offsets (u64 indices). */
    /// @{
    static constexpr int fNKeys = 0;
    static constexpr int fIsLeaf = 1;
    static constexpr int fKey0 = 2;
    static constexpr int fVal0 = 9;
    static constexpr int fChild0 = 16;
    /// @}

    static Addr fieldAddr(Addr node, int f) { return node + 8 * f; }

    /** Functional field read that also emits the load. */
    std::uint64_t rd(Addr node, int f, RegIndex base = kNoReg);

    /** Undo-logged field write. */
    void wr(Addr node, int f, std::uint64_t v);

    Addr allocNode(bool leaf);
    void splitChild(Addr parent, int idx, RegIndex parent_reg);
    void insertNonFull(Addr node, RegIndex node_reg, std::uint64_t key,
                       std::uint64_t val);

    /**
     * Collect (key, val) pairs in order while checking invariants.
     * @return false on any structural anomaly.
     */
    static bool collect(const MemoryImage &img, Addr node, int depth,
                        int &leaf_depth, bool is_root,
                        std::uint64_t lo, std::uint64_t hi,
                        std::vector<std::pair<std::uint64_t,
                                              std::uint64_t>> &out,
                        std::size_t &budget);

    static bool extract(const MemoryImage &img, Addr root_ptr,
                        std::vector<std::pair<std::uint64_t,
                                              std::uint64_t>> &out);

    std::uint64_t seed_;
    Addr rootPtr_ = kNoAddr;

    std::map<std::uint64_t, std::uint64_t> ref_;
    std::vector<std::pair<std::uint64_t, std::uint64_t>> curTxn_;
    std::vector<std::vector<std::pair<std::uint64_t, std::uint64_t>>>
        history_;
};

} // namespace ede

#endif // EDE_APPS_BTREE_HH
