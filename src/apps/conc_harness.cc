#include "apps/conc_harness.hh"

#include <algorithm>

#include "common/logging.hh"
#include "sim/session.hh"

namespace ede {

ConcurrentHarness::ConcurrentHarness(ConcApp app,
                                     const ConcParams &params,
                                     std::uint32_t mediaLatencyFactor)
    : app_(app), params_(params)
{
    ede_assert(mediaLatencyFactor >= 1,
               "media latency factor must be >= 1");
    SimConfig sc = SimConfig::paper(params_.cfg);
    sc.withCoreCount(static_cast<int>(params_.cores));
    sc.mem().nvm.writeLatency *= mediaLatencyFactor;
    system_ = std::make_unique<System>(sc);
    system_->recordCompletions(true);
    system_->recordPersistData(true);
}

void
ConcurrentHarness::generate()
{
    ede_assert(!generated_, "generate() is single-shot");
    generated_ = true;
    workload_ = buildConcurrentWorkload(app_, params_);
}

Cycle
ConcurrentHarness::simulateChecked()
{
    ede_assert(generated_, "generate() before simulate()");
    ede_assert(!simulated_, "simulate() is single-shot");
    simulated_ = true;
    baselineNvm_ = system_->nvmImage();
    const Cycle cycles = system_->run(workload_.traces);
    if (const SimError *err = system_->firstError())
        throw SimFaultError(*err);
    if (params_.paced)
        verifyPacing();
    return cycles;
}

void
ConcurrentHarness::verifyPacing() const
{
    const std::vector<ConcOpSpan> &spans = workload_.opSpans;
    // Accept window of each span's persist events.  Spans without
    // persists (plain readers, empty dequeues) push nothing durable
    // -- their values are host-resolved and timing-only -- so they
    // place no constraint and are skipped below.
    std::vector<Cycle> lo(spans.size(), kNoCycle);
    std::vector<Cycle> hi(spans.size(), 0);
    for (const PersistEvent &ev : system_->persistEvents()) {
        if (ev.origin == kNoOrigin)
            continue;
        const auto idx = static_cast<std::size_t>(ev.origin);
        for (std::size_t s = 0; s < spans.size(); ++s) {
            if (spans[s].core != ev.core || idx < spans[s].first ||
                idx >= spans[s].last) {
                continue;
            }
            lo[s] = lo[s] == kNoCycle ? ev.cycle
                                      : std::min(lo[s], ev.cycle);
            hi[s] = std::max(hi[s], ev.cycle);
            break;
        }
    }
    bool have_prev = false;
    Cycle prev_hi = 0;
    for (std::size_t s = 0; s < spans.size(); ++s) {
        if (lo[s] == kNoCycle)
            continue;
        if (have_prev && lo[s] <= prev_hi) {
            SimError err;
            err.kind = SimErrorKind::PacingDrift;
            err.cycle = lo[s];
            err.lastProgressCycle = prev_hi;
            throw SimFaultError(err);
        }
        have_prev = true;
        prev_hi = std::max(prev_hi, hi[s]);
    }
}

const MemoryImage &
ConcurrentHarness::baselineNvm() const
{
    ede_assert(simulated_, "baselineNvm needs a completed run");
    return baselineNvm_;
}

std::vector<std::vector<Cycle>>
ConcurrentHarness::completionMatrix() const
{
    ede_assert(simulated_,
               "completion cycles need a completed run");
    std::vector<std::vector<Cycle>> done;
    done.reserve(system_->coreCount());
    for (unsigned c = 0; c < system_->coreCount(); ++c)
        done.push_back(system_->completionCycles(c));
    return done;
}

std::uint32_t
ConcurrentHarness::mediaLineBytes() const
{
    return system_->mem().controller().nvm().params().lineBytes;
}

} // namespace ede
