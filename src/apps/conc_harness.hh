/**
 * @file
 * Concurrent-workload harness: one audited N-core run.
 *
 * The single-core WorkloadHarness owns a framework, an undo log and
 * one trace; the concurrent kernels need none of that -- they persist
 * their structures directly -- but the crash-consistency tooling
 * needs the same run artifacts: the baseline NVM image, the global
 * persist/media event streams, and *per-core* completion cycles for
 * the joint persist-order walk.  This harness packages exactly that.
 *
 * The machine is built with SimConfig::paper(cfg) widened to
 * params.cores, optionally with the NVM media write latency scaled up
 * (mediaLatencyFactor): the crash checkers probe the regime where
 * media writes are an order slower than buffer accepts, so a remote
 * core's accepted-but-undrained persists stay outstanding across
 * several scheduling rounds -- the window the ISSUE's
 * crash-during-remote-persist injection targets.  Factor 1 keeps the
 * Table I device.
 */

#ifndef EDE_APPS_CONC_HARNESS_HH
#define EDE_APPS_CONC_HARNESS_HH

#include <memory>

#include "apps/concurrent.hh"
#include "sim/system.hh"

namespace ede {

/** One audited concurrent run. */
class ConcurrentHarness
{
  public:
    ConcurrentHarness(ConcApp app, const ConcParams &params,
                      std::uint32_t mediaLatencyFactor = 1);

    /**
     * Build the per-core traces and the oracle model.  Throws
     * SimFaultError (CoreCountKeyExhausted) when an EDE configuration
     * asks for more cores than there are real keys.
     */
    void generate();

    /**
     * Run the timing simulation with completion and persist-data
     * recording on; @return the machine run length.  A structured
     * simulator abort raises SimFaultError, so isolated workers can
     * classify it as a typed failure.
     *
     * Paced runs additionally verify the pacing contract: every op
     * span's persist-accept window must fall strictly after every
     * earlier (model-order) span's.  The generators resolve
     * cross-core values host-side under the global serialization, so
     * a machine run that drifted out of it would be silently unsound
     * -- verification turns that into SimFaultError(PacingDrift).
     */
    Cycle simulateChecked();

    /** @name Run artifacts. */
    /// @{
    const std::vector<Trace> &traces() const
    {
        return workload_.traces;
    }

    /** Mutable before simulate: the seeded-bug mutators edit here. */
    std::vector<Trace> &traces() { return workload_.traces; }

    const ConcModel &model() const { return workload_.model; }

    /** Paced-mode op spans in global serialization order. */
    const std::vector<ConcOpSpan> &opSpans() const
    {
        return workload_.opSpans;
    }

    System &system() { return *system_; }
    const System &system() const { return *system_; }

    /** Durable state before the run (requires a completed run). */
    const MemoryImage &baselineNvm() const;

    /** Per-core completion cycles, index == core (completed run). */
    std::vector<std::vector<Cycle>> completionMatrix() const;

    /** NVM media line size of the simulated device. */
    std::uint32_t mediaLineBytes() const;

    ConcApp app() const { return app_; }
    const ConcParams &params() const { return params_; }
    /// @}

  private:
    void verifyPacing() const;

    ConcApp app_;
    ConcParams params_;
    std::unique_ptr<System> system_;
    ConcWorkload workload_;
    MemoryImage baselineNvm_;
    bool generated_ = false;
    bool simulated_ = false;
};

} // namespace ede

#endif // EDE_APPS_CONC_HARNESS_HH
