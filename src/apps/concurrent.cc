#include "apps/concurrent.hh"

#include <algorithm>
#include <deque>

#include "common/logging.hh"
#include "common/random.hh"
#include "trace/builder.hh"

namespace ede {
namespace {

/**
 * Shared control block and per-core arenas, all in the NVM region
 * (AddrMap default split puts NVM at 2 GB).  Control cells sit one
 * per cache line -- they are the contended coherence traffic.
 */
constexpr Addr kNvmBase = 2ull << 30;
constexpr Addr kQueueHead = kNvmBase + 0x000;
constexpr Addr kQueueTail = kNvmBase + 0x040;
constexpr Addr kLockWord = kNvmBase + 0x080;
constexpr Addr kListHead = kNvmBase + 0x0c0;
constexpr Addr kRwData = kNvmBase + 0x100;   ///< 4 protected lines.
constexpr int kRwLines = 4;
constexpr Addr kArenaBase = kNvmBase + 0x100000;
constexpr Addr kArenaStride = 0x100000;      ///< Per-core node arena.
constexpr int kRcuListLen = 16;

/** Node @p n of core @p core's arena (64 B nodes, line-aligned). */
Addr
arenaNode(unsigned core, int n)
{
    return kArenaBase + core * kArenaStride +
           64ull * static_cast<unsigned>(n);
}

/** Per-core generation state. */
struct CoreGen
{
    explicit CoreGen(Trace &t) : b(t) {}

    TraceBuilder b;
    TempRegPool temps;
    int nodesUsed = 0;  ///< Arena bump cursor.
};

/**
 * The persist->publish ordering token (see file comment of
 * concurrent.hh): emitted between a DC CVAP and the store that
 * publishes the persisted data.  EDE configs carry the dependence on
 * the key operands instead; U omits ordering entirely.
 */
void
emitOrderingToken(TraceBuilder &b, Config cfg)
{
    switch (cfg) {
      case Config::B:
        b.dsbSy();
        break;
      case Config::SU:
        b.dmbSt();
        break;
      case Config::IQ:
      case Config::WB:
      case Config::U:
        break;
    }
}

/** The drain barrier (grace period / lock release / durable read). */
void
emitDrain(TraceBuilder &b, Config cfg, Edk key, bool all_keys)
{
    switch (cfg) {
      case Config::B:
        b.dsbSy();
        break;
      case Config::SU:
        b.dmbSt();
        break;
      case Config::IQ:
      case Config::WB:
        if (all_keys)
            b.waitAllKeys();
        else
            b.waitKey(key);
        break;
      case Config::U:
        break;
    }
}

/** Warm a core's arena line and close its setup phase. */
void
emitPreamble(CoreGen &g, unsigned core)
{
    const RegIndex r = g.temps.get();
    g.b.str(r, g.temps.get(), arenaNode(core, 0), 0);
    g.b.dsbSy();
}

// ---------------------------------------------------------------
// MS-queue: enqueue persists the node, then publishes it through
// the tail link; dequeue swings the head and persists the swing.
// ---------------------------------------------------------------

struct QueueModel
{
    std::deque<Addr> nodes;  ///< Linked nodes, head first.
    Addr tail = kNoAddr;     ///< Node the tail pointer names.
};

void
emitEnqueue(CoreGen &g, Config cfg, unsigned core, QueueModel &q,
            std::uint64_t val)
{
    const bool ede = configUsesEde(cfg);
    const Edk k = concCoreKey(core);
    const Addr node = arenaNode(core, g.nodesUsed++);

    const RegIndex r_node = g.temps.get();
    const RegIndex r_val = g.temps.get();
    g.b.movImm(r_val, static_cast<std::int64_t>(val));
    g.b.str(r_val, r_node, node, val);          // node->val
    g.b.str(r_val, r_node, node + 8, 0, 8);     // node->next = null
    g.b.cvap(r_node, node, ede ? EdkOps{k, 0} : EdkOps{});
    emitOrderingToken(g.b, cfg);

    // Publish: tail->next = node, ordered behind the node persist,
    // then persist the link (the recovery-critical edge).
    const RegIndex r_tail = g.temps.get();
    g.b.str(r_node, r_tail, q.tail + 8, node, 0,
            ede ? EdkOps{0, k} : EdkOps{});
    g.b.cvap(r_tail, q.tail + 8, ede ? EdkOps{k, 0} : EdkOps{});

    // Swing the shared tail pointer, ordered behind the link persist.
    emitOrderingToken(g.b, cfg);
    const RegIndex r_tp = g.temps.get();
    g.b.str(r_node, r_tp, kQueueTail, node, 0,
            ede ? EdkOps{0, k} : EdkOps{});

    q.nodes.push_back(node);
    q.tail = node;
}

void
emitDequeue(CoreGen &g, Config cfg, unsigned core, QueueModel &q)
{
    const bool ede = configUsesEde(cfg);
    const Edk k = concCoreKey(core);

    const RegIndex r_head = g.temps.get();
    const RegIndex r_node = g.temps.get();
    g.b.ldr(r_node, r_head, kQueueHead);
    if (q.nodes.empty()) {
        // Empty check fails: observe the (null) head and leave.
        g.b.branchCond("msq.empty", r_node, r_node, true);
        return;
    }
    const Addr front = q.nodes.front();
    q.nodes.pop_front();
    const Addr next = q.nodes.empty() ? 0 : q.nodes.front();
    if (q.nodes.empty())
        q.tail = kNoAddr;

    const RegIndex r_next = g.temps.get();
    g.b.ldr(r_next, r_node, front + 8);         // head->next
    g.b.branchCond("msq.deq", r_node, r_next, false);
    const RegIndex r_val = g.temps.get();
    g.b.ldr(r_val, r_node, front);              // consume the value
    // Swing head and persist the swing (dequeue durability).
    g.b.str(r_next, r_head, kQueueHead, next);
    g.b.cvap(r_head, kQueueHead, ede ? EdkOps{k, 0} : EdkOps{});

    if (q.tail == kNoAddr)
        q.tail = front; // Model keeps the last node as sentinel.
}

std::vector<Trace>
buildMsQueue(const ConcParams &p)
{
    std::vector<Trace> traces(p.cores);
    std::vector<CoreGen> gens;
    gens.reserve(p.cores);
    for (Trace &t : traces)
        gens.emplace_back(t);

    // Core 0 installs the sentinel and the head/tail cells.
    QueueModel q;
    {
        CoreGen &g = gens[0];
        const Addr sent = arenaNode(0, g.nodesUsed++);
        const RegIndex r = g.temps.get();
        const RegIndex r_s = g.temps.get();
        g.b.str(r, r_s, sent + 8, 0, 8);        // sentinel->next
        g.b.str(r, r_s, kQueueHead, 0);         // empty queue
        g.b.str(r, r_s, kQueueTail, sent);
        g.b.cvap(r_s, sent);
        g.b.cvap(r_s, kQueueHead);
        q.tail = sent;
    }
    for (unsigned i = 0; i < p.cores; ++i)
        emitPreamble(gens[i], i);

    Rng rng(p.seed);
    std::vector<int> remaining(p.cores, p.opsPerCore);
    std::uint64_t total =
        static_cast<std::uint64_t>(p.cores) * p.opsPerCore;
    std::uint64_t val = 1;
    while (total > 0) {
        const auto c = static_cast<unsigned>(rng.below(p.cores));
        if (remaining[c] == 0)
            continue;
        --remaining[c];
        --total;
        if (q.nodes.empty() || rng.below(2) == 0)
            emitEnqueue(gens[c], p.cfg, c, q, val++);
        else
            emitDequeue(gens[c], p.cfg, c, q);
    }
    return traces;
}

// ---------------------------------------------------------------
// Reader-writer lock over a persistent record: writers persist the
// record lines before releasing; readers may issue a durable read,
// draining the last writer's in-flight persists across the
// coherence point (cross-core WAIT_KEY).
// ---------------------------------------------------------------

std::vector<Trace>
buildRwLock(const ConcParams &p)
{
    std::vector<Trace> traces(p.cores);
    std::vector<CoreGen> gens;
    gens.reserve(p.cores);
    for (Trace &t : traces)
        gens.emplace_back(t);
    for (unsigned i = 0; i < p.cores; ++i)
        emitPreamble(gens[i], i);

    Rng rng(p.seed);
    std::vector<int> remaining(p.cores, p.opsPerCore);
    std::uint64_t total =
        static_cast<std::uint64_t>(p.cores) * p.opsPerCore;
    std::uint64_t version = 1;
    unsigned last_writer = 0;
    while (total > 0) {
        const auto c = static_cast<unsigned>(rng.below(p.cores));
        if (remaining[c] == 0)
            continue;
        --remaining[c];
        --total;
        CoreGen &g = gens[c];
        const bool ede = configUsesEde(p.cfg);
        const Edk k = concCoreKey(c);
        const RegIndex r_lock = g.temps.get();
        const RegIndex r_obs = g.temps.get();
        g.b.ldr(r_obs, r_lock, kLockWord);
        if (rng.below(4) == 0) {
            // Writer: acquire, update + persist the record, drain,
            // release.
            g.b.branchCond("rw.acq", r_obs, r_obs, false);
            const RegIndex r_w = g.temps.get();
            g.b.str(r_w, r_lock, kLockWord, 1 + c);
            for (int l = 0; l < kRwLines; ++l) {
                const Addr line = kRwData + 64ull * l;
                const RegIndex r_d = g.temps.get();
                g.b.movImm(r_d,
                           static_cast<std::int64_t>(version));
                g.b.str(r_d, r_lock, line, version);
                g.b.cvap(r_lock, line,
                         ede ? EdkOps{k, 0} : EdkOps{});
            }
            // The record must be durable before the release store
            // makes it reachable.
            emitDrain(g.b, p.cfg, k, /*all_keys=*/false);
            g.b.str(r_w, r_lock, kLockWord, 0);
            g.b.cvap(r_lock, kLockWord);
            last_writer = c;
            ++version;
        } else {
            // Reader: observe the lock, read the record.
            g.b.branchCond("rw.read", r_obs, r_obs, false);
            RegIndex r_prev = r_obs;
            for (int l = 0; l < kRwLines; ++l) {
                const RegIndex r_d = g.temps.get();
                g.b.ldr(r_d, r_prev, kRwData + 64ull * l);
                r_prev = r_d;
            }
            // Durable read (1 in 4): drain the last writer's
            // persists.  Under EDE the waited key belongs to a
            // *different* core -- the counters span the coherence
            // point.
            if (rng.below(4) == 0) {
                emitDrain(g.b, p.cfg, concCoreKey(last_writer),
                          /*all_keys=*/false);
            }
        }
    }
    return traces;
}

// ---------------------------------------------------------------
// RCU list: readers traverse; updaters persist a replacement node,
// publish it, then wait out a grace period before poisoning the
// old node.  Under EDE the grace period is WAIT_ALL_KEYS, which
// with cross-core counters drains every core's in-flight keyed
// persists.
// ---------------------------------------------------------------

std::vector<Trace>
buildRcuList(const ConcParams &p)
{
    std::vector<Trace> traces(p.cores);
    std::vector<CoreGen> gens;
    gens.reserve(p.cores);
    for (Trace &t : traces)
        gens.emplace_back(t);

    // Core 0 builds the initial list.
    std::vector<Addr> list;
    {
        CoreGen &g = gens[0];
        const RegIndex r_n = g.temps.get();
        const RegIndex r_v = g.temps.get();
        for (int n = 0; n < kRcuListLen; ++n)
            list.push_back(arenaNode(0, g.nodesUsed++));
        for (int n = 0; n < kRcuListLen; ++n) {
            const Addr next =
                n + 1 < kRcuListLen ? list[n + 1] : 0;
            g.b.str(r_v, r_n, list[n], 100 + n);
            g.b.str(r_v, r_n, list[n] + 8, next, 8);
            g.b.cvap(r_n, list[n]);
        }
        g.b.str(r_v, r_n, kListHead, list[0]);
        g.b.cvap(r_n, kListHead);
    }
    for (unsigned i = 0; i < p.cores; ++i)
        emitPreamble(gens[i], i);

    Rng rng(p.seed);
    std::vector<int> remaining(p.cores, p.opsPerCore);
    std::uint64_t total =
        static_cast<std::uint64_t>(p.cores) * p.opsPerCore;
    std::uint64_t version = 1000;
    while (total > 0) {
        const auto c = static_cast<unsigned>(rng.below(p.cores));
        if (remaining[c] == 0)
            continue;
        --remaining[c];
        --total;
        CoreGen &g = gens[c];
        const bool ede = configUsesEde(p.cfg);
        const Edk k = concCoreKey(c);
        if (rng.below(4) == 0) {
            // Updater: replace list[idx] with a fresh node.
            const auto idx = static_cast<std::size_t>(
                rng.below(list.size()));
            const Addr old = list[idx];
            const Addr next_val = idx + 1 < list.size()
                                      ? list[idx + 1]
                                      : 0;
            const Addr pred =
                idx == 0 ? kListHead : list[idx - 1] + 8;
            const Addr node = arenaNode(c, g.nodesUsed++);
            const RegIndex r_n = g.temps.get();
            const RegIndex r_v = g.temps.get();
            g.b.movImm(r_v, static_cast<std::int64_t>(version));
            g.b.str(r_v, r_n, node, version);
            g.b.str(r_v, r_n, node + 8, next_val, 8);
            g.b.cvap(r_n, node, ede ? EdkOps{k, 0} : EdkOps{});
            emitOrderingToken(g.b, p.cfg);
            const RegIndex r_p = g.temps.get();
            g.b.str(r_n, r_p, pred, node, 0,
                    ede ? EdkOps{0, k} : EdkOps{});
            g.b.cvap(r_p, pred, ede ? EdkOps{k, 0} : EdkOps{});
            // Grace period: every core's keyed persists must drain
            // before the old node can be poisoned.
            emitDrain(g.b, p.cfg, k, /*all_keys=*/true);
            const RegIndex r_x = g.temps.get();
            g.b.str(r_x, r_n, old, 0xdead);
            list[idx] = node;
            ++version;
        } else {
            // Reader: pointer-chase the first nodes of the list.
            const RegIndex r_h = g.temps.get();
            RegIndex r_prev = g.temps.get();
            g.b.ldr(r_prev, r_h, kListHead);
            const std::size_t hops =
                std::min<std::size_t>(8, list.size());
            for (std::size_t h = 0; h < hops; ++h) {
                const RegIndex r_n = g.temps.get();
                // Dependent load: base is the previous hop's dest.
                g.b.ldr(r_n, r_prev, list[h] + (h + 1 < hops ? 8 : 0));
                r_prev = r_n;
            }
        }
    }
    return traces;
}

} // namespace

std::vector<Trace>
buildConcurrentTraces(ConcApp app, const ConcParams &p)
{
    ede_assert(p.cores >= 1, "concurrent workloads need >= 1 core");
    ede_assert(p.opsPerCore >= 1,
               "concurrent workloads need >= 1 op per core");
    switch (app) {
      case ConcApp::MsQueue:
        return buildMsQueue(p);
      case ConcApp::RwLock:
        return buildRwLock(p);
      case ConcApp::RcuList:
        return buildRcuList(p);
    }
    ede_assert(false, "unknown concurrent app");
    return {};
}

} // namespace ede
