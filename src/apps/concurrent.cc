#include "apps/concurrent.hh"

#include <algorithm>
#include <array>
#include <deque>
#include <set>

#include "common/logging.hh"
#include "common/random.hh"
#include "pipeline/sim_error.hh"
#include "sim/session.hh"
#include "trace/builder.hh"

namespace ede {
namespace {

/** Node @p n of core @p core's arena (64 B nodes, line-aligned). */
Addr
arenaNode(unsigned core, int n)
{
    return kConcArenaBase + core * kConcArenaStride +
           64ull * static_cast<unsigned>(n);
}

/**
 * Paced-mode alignment loads chain through this register (outside
 * the TempRegPool range), fresh NVM lines deep inside the core's own
 * arena so every round costs the same long run of media reads on
 * every core.
 */
constexpr RegIndex kPaceReg = 26;

/**
 * Chained pace reads per core per round.  The quantum must dominate
 * the cumulative machine-cost imbalance between cores: every core
 * pays the same quantum of reads per round and the acting core
 * additionally pays its structural op's retire-visible cost (drain
 * barriers, accept round trips), so after R rounds a core's clock
 * lags the round grid by the sum of its own op costs -- which grows
 * with opsPerCore, hence the quantum does too.  The bound is
 * heuristic; ConcurrentHarness::simulateChecked() verifies the
 * achieved serialization exactly and fails loudly (PacingDrift) if
 * the margin was ever insufficient.
 */
int
paceDepth(const ConcParams &p)
{
    return 16 + 2 * p.opsPerCore;
}

/** The @p slot'th pace-read line of core @p core's arena. */
Addr
paceRead(unsigned core, int slot)
{
    // Pace lines live in [0x80000, 0x100000) of the 1 MiB arena.
    ede_assert(slot >= 0 && slot < 0x80000 / 64,
               "pace-read slots exhausted");
    return kConcArenaBase + core * kConcArenaStride + 0x80000 +
           64ull * static_cast<unsigned>(slot);
}

/** 64 B cache line of @p a. */
Addr
cacheLine(Addr a)
{
    return a & ~static_cast<Addr>(63);
}

/** Per-core generation state. */
struct CoreGen
{
    explicit CoreGen(Trace &t) : b(t) {}

    TraceBuilder b;
    TempRegPool temps;
    int nodesUsed = 0;  ///< Arena bump cursor.
};

/**
 * The persist->publish ordering token (see file comment of
 * concurrent.hh): emitted between a DC CVAP and the store that
 * publishes the persisted data.  EDE configs carry the dependence on
 * the key operands instead; U omits ordering entirely.
 */
void
emitOrderingToken(TraceBuilder &b, Config cfg)
{
    switch (cfg) {
      case Config::B:
        b.dsbSy();
        break;
      case Config::SU:
        b.dmbSt();
        break;
      case Config::IQ:
      case Config::WB:
      case Config::U:
        break;
    }
}

/** The drain barrier (grace period / lock release / durable read). */
void
emitDrain(TraceBuilder &b, Config cfg, Edk key, bool all_keys)
{
    switch (cfg) {
      case Config::B:
        b.dsbSy();
        break;
      case Config::SU:
        b.dmbSt();
        break;
      case Config::IQ:
      case Config::WB:
        if (all_keys)
            b.waitAllKeys();
        else
            b.waitKey(key);
        break;
      case Config::U:
        break;
    }
}

/**
 * Make persists another core issued durable before a dependent local
 * publish.  Under EDE this is WAIT_KEY on the owner's key: the
 * counters span the coherence point (core/cross_core.hh), so the
 * waiter drains the remote core's in-flight keyed persists with no
 * fence -- the paper's mechanism, and the edge the
 * seedMissingCrossCoreWaitBug gate deletes.  The fence
 * configurations have no cross-core wait: the dependent core
 * re-CVAPs the remote lines locally (the shared-L2 dirty handoff
 * supplies the coherent data, and the NVM buffer chains same-line
 * accepts behind the remote persist) and fences.  SU fences with
 * DMB ST, which does not order DC CVAP -- the paper's SU hole,
 * faithfully unsafe across cores too.  U emits nothing.
 */
void
emitRemoteDrain(CoreGen &g, Config cfg, Edk ownerKey,
                const std::vector<Addr> &lines)
{
    switch (cfg) {
      case Config::B:
      case Config::SU: {
        const RegIndex r = g.temps.get();
        for (Addr a : lines)
            g.b.cvap(r, cacheLine(a));
        if (cfg == Config::B)
            g.b.dsbSy();
        else
            g.b.dmbSt();
        break;
      }
      case Config::IQ:
      case Config::WB:
        g.b.waitKey(ownerKey);
        break;
      case Config::U:
        break;
    }
}

/** Warm a core's arena line and close its setup phase. */
void
emitPreamble(CoreGen &g, unsigned core, const ConcParams &p)
{
    const RegIndex r = g.temps.get();
    g.b.str(r, g.temps.get(), arenaNode(core, 0), 0);
    g.b.movImm(kPaceReg, 0);
    g.b.dsbSy();
    // Paced mode: every core burns one pace quantum before round 0,
    // keeping the cores' round clocks in phase from the start.  Core
    // 0's setup phase (sentinel / initial list construction) runs
    // before its burn, so setup retires a quantum before anyone's
    // round-0 op can touch what it built, at the cost of a small
    // one-time lag on core 0's clock that the round margin absorbs.
    if (p.paced) {
        for (int j = 0; j < paceDepth(p); ++j)
            g.b.ldr(kPaceReg, kPaceReg, paceRead(core, j));
    }
}

/**
 * The seeded global interleaving: which core performs its next
 * structural operation at each step.
 *
 * Free mode draws the next core uniformly -- the historical
 * fig_scaling behaviour, fine for timing curves where the host model
 * resolves every value up front and machine-time drift between cores
 * is harmless.
 *
 * Paced mode (the crash-consistency checkers) must keep the machine
 * aligned with the model's serialization: a consumer op that exposes
 * a producer core's data genuinely has to run *after* that producer
 * on the machine, or the WAIT it performs retires against an empty
 * counter and the intended ordering never exists.  Paced scheduling
 * runs exactly one structural op per round and balances rounds in
 * blocks (every block of `cores` rounds runs each core once, in
 * seeded order), and emitPaceLoads below charges every core one full
 * NVM media read per round, so per-core progress tracks the round
 * index and a consumer always trails its producer by at least one
 * round's latency.
 */
std::vector<unsigned>
opSchedule(const ConcParams &p, Rng &rng)
{
    std::vector<unsigned> order;
    order.reserve(static_cast<std::size_t>(p.cores) *
                  static_cast<std::size_t>(p.opsPerCore));
    if (p.paced) {
        std::vector<unsigned> block(p.cores);
        for (unsigned c = 0; c < p.cores; ++c)
            block[c] = c;
        for (int r = 0; r < p.opsPerCore; ++r) {
            for (unsigned i = p.cores; i > 1; --i) {
                std::swap(block[i - 1],
                          block[static_cast<std::size_t>(
                              rng.below(i))]);
            }
            order.insert(order.end(), block.begin(), block.end());
        }
    } else {
        std::vector<int> remaining(p.cores, p.opsPerCore);
        std::uint64_t total =
            static_cast<std::uint64_t>(p.cores) *
            static_cast<std::uint64_t>(p.opsPerCore);
        while (total > 0) {
            const auto c =
                static_cast<unsigned>(rng.below(p.cores));
            if (remaining[c] == 0)
                continue;
            --remaining[c];
            --total;
            order.push_back(c);
        }
    }
    return order;
}

/**
 * The paced-mode round boundary: kConcPaceDepth chained
 * (base-dependent) loads of fresh NVM lines on *every* core.  The
 * dependence chain through kPaceReg keeps each core's retirement
 * stream gated behind the full quantum, and the quantum is identical
 * on every core, so per-round advance is equal up to the acting
 * core's structural-op cost (see kConcPaceDepth for why that margin
 * suffices).  Loads add no persist events and no ordering edges --
 * pacing never distorts the lattice under test.
 */
void
emitPaceLoads(std::vector<CoreGen> &gens, const ConcParams &p,
              int round)
{
    if (!p.paced)
        return;
    const int depth = paceDepth(p);
    for (unsigned i = 0; i < p.cores; ++i) {
        for (int j = 0; j < depth; ++j) {
            gens[i].b.ldr(kPaceReg, kPaceReg,
                          paceRead(i, (round + 1) * depth + j));
        }
    }
}

// ---------------------------------------------------------------
// MS-queue: enqueue persists the node, then publishes it through
// the tail link; dequeue drains the exposed node's owner, swings
// the head and persists the swing.
// ---------------------------------------------------------------

struct QueueModel
{
    std::deque<Addr> nodes;  ///< Linked nodes, head first.
    Addr tail = kNoAddr;     ///< Node the tail pointer names.
};

void
emitEnqueue(CoreGen &g, Config cfg, unsigned core, QueueModel &q,
            ConcModel &model, std::uint64_t val)
{
    const bool ede = configUsesEde(cfg);
    const Edk k = concCoreKey(core);
    const Addr node = arenaNode(core, g.nodesUsed++);

    const RegIndex r_node = g.temps.get();
    const RegIndex r_val = g.temps.get();
    g.b.movImm(r_val, static_cast<std::int64_t>(val));
    g.b.str(r_val, r_node, node, val);          // node->val
    g.b.str(r_val, r_node, node + 8, 0, 8);     // node->next = null
    g.b.cvap(r_node, node, ede ? EdkOps{k, 0} : EdkOps{});
    emitOrderingToken(g.b, cfg);

    // Publish: tail->next = node, ordered behind the node persist,
    // then persist the link (the recovery-critical edge).
    const RegIndex r_tail = g.temps.get();
    g.b.str(r_node, r_tail, q.tail + 8, node, 0,
            ede ? EdkOps{0, k} : EdkOps{});
    g.b.cvap(r_tail, q.tail + 8, ede ? EdkOps{k, 0} : EdkOps{});

    // Swing the shared tail pointer, ordered behind the link persist.
    emitOrderingToken(g.b, cfg);
    const RegIndex r_tp = g.temps.get();
    g.b.str(r_node, r_tp, kConcQueueTail, node, 0,
            ede ? EdkOps{0, k} : EdkOps{});

    q.nodes.push_back(node);
    q.tail = node;
    model.queueNodes[node] = val;
}

void
emitDequeue(CoreGen &g, Config cfg, unsigned core, QueueModel &q)
{
    const bool ede = configUsesEde(cfg);
    const Edk k = concCoreKey(core);

    const RegIndex r_head = g.temps.get();
    const RegIndex r_node = g.temps.get();
    g.b.ldr(r_node, r_head, kConcQueueHead);
    if (q.nodes.empty()) {
        // Empty check fails: observe the (null) head and leave.
        g.b.branchCond("msq.empty", r_node, r_node, true);
        return;
    }
    const Addr front = q.nodes.front();
    q.nodes.pop_front();
    const Addr next = q.nodes.empty() ? 0 : q.nodes.front();
    if (q.nodes.empty())
        q.tail = kNoAddr;

    const RegIndex r_next = g.temps.get();
    g.b.ldr(r_next, r_node, front + 8);         // head->next
    g.b.branchCond("msq.deq", r_node, r_next, false);
    const RegIndex r_val = g.temps.get();
    g.b.ldr(r_val, r_node, front);              // consume the value
    // The node the new head exposes was persisted by its enqueuer --
    // possibly on another core.  Its content must be durable before
    // the swing is, or recovery walks into an unwritten node.
    if (next != 0) {
        emitRemoteDrain(g, cfg, concCoreKey(concNodeOwner(next)),
                        {next});
    }
    // Swing head and persist the swing (dequeue durability).
    g.b.str(r_next, r_head, kConcQueueHead, next);
    g.b.cvap(r_head, kConcQueueHead, ede ? EdkOps{k, 0} : EdkOps{});

    if (q.tail == kNoAddr)
        q.tail = front; // Model keeps the last node as sentinel.
}

ConcWorkload
buildMsQueue(const ConcParams &p)
{
    ConcWorkload wl;
    wl.model.app = ConcApp::MsQueue;
    wl.model.cores = p.cores;
    wl.traces.resize(p.cores);
    std::vector<CoreGen> gens;
    gens.reserve(p.cores);
    for (Trace &t : wl.traces)
        gens.emplace_back(t);

    // Core 0 installs the sentinel and the head/tail cells.
    QueueModel q;
    {
        CoreGen &g = gens[0];
        const Addr sent = arenaNode(0, g.nodesUsed++);
        const RegIndex r = g.temps.get();
        const RegIndex r_s = g.temps.get();
        g.b.str(r, r_s, sent + 8, 0, 8);        // sentinel->next
        g.b.str(r, r_s, kConcQueueHead, 0);     // empty queue
        g.b.str(r, r_s, kConcQueueTail, sent);
        g.b.cvap(r_s, sent);
        g.b.cvap(r_s, kConcQueueHead);
        q.tail = sent;
    }
    if (p.paced)
        wl.opSpans.push_back({0, 0, wl.traces[0].size()});
    for (unsigned i = 0; i < p.cores; ++i)
        emitPreamble(gens[i], i, p);

    Rng rng(p.seed);
    const std::vector<unsigned> order = opSchedule(p, rng);
    std::uint64_t val = 1;
    int round = 0;
    for (const unsigned c : order) {
        const std::size_t first = wl.traces[c].size();
        if (q.nodes.empty() || rng.below(2) == 0)
            emitEnqueue(gens[c], p.cfg, c, q, wl.model, val++);
        else
            emitDequeue(gens[c], p.cfg, c, q);
        if (p.paced)
            wl.opSpans.push_back({c, first, wl.traces[c].size()});
        emitPaceLoads(gens, p, round++);
    }
    return wl;
}

// ---------------------------------------------------------------
// Reader-writer lock over a persistent record: writers drain the
// previous writer (the durable face of acquiring the lock), persist
// the record lines, publish a version stamp behind them, and
// release; readers may issue a durable read, draining the last
// writer's in-flight persists across the coherence point.
// ---------------------------------------------------------------

/** Every durable cell the rwlock writers own. */
std::vector<Addr>
rwAllLines()
{
    std::vector<Addr> lines;
    for (int l = 0; l < kConcRwLines; ++l)
        lines.push_back(kConcRwData + 64ull * l);
    lines.push_back(kConcRwStamp);
    return lines;
}

ConcWorkload
buildRwLock(const ConcParams &p)
{
    ConcWorkload wl;
    wl.model.app = ConcApp::RwLock;
    wl.model.cores = p.cores;
    wl.traces.resize(p.cores);
    std::vector<CoreGen> gens;
    gens.reserve(p.cores);
    for (Trace &t : wl.traces)
        gens.emplace_back(t);
    for (unsigned i = 0; i < p.cores; ++i)
        emitPreamble(gens[i], i, p);

    Rng rng(p.seed);
    const std::vector<unsigned> order = opSchedule(p, rng);
    std::uint64_t version = 1;
    unsigned last_writer = 0;
    bool have_writer = false;
    int round = 0;
    for (const unsigned c : order) {
        CoreGen &g = gens[c];
        const std::size_t op_first = wl.traces[c].size();
        const bool ede = configUsesEde(p.cfg);
        const Edk k = concCoreKey(c);
        const RegIndex r_lock = g.temps.get();
        const RegIndex r_obs = g.temps.get();
        g.b.ldr(r_obs, r_lock, kConcLockWord);
        if (rng.below(4) == 0) {
            // Writer: acquire (draining the previous writer's
            // record and stamp persists -- writers hand the durable
            // record over, they never race on it), update + persist
            // the record, publish the stamp, release.
            g.b.branchCond("rw.acq", r_obs, r_obs, false);
            if (have_writer) {
                emitRemoteDrain(g, p.cfg, concCoreKey(last_writer),
                                rwAllLines());
            }
            const RegIndex r_w = g.temps.get();
            g.b.str(r_w, r_lock, kConcLockWord, 1 + c);
            for (int l = 0; l < kConcRwLines; ++l) {
                const Addr line = kConcRwData + 64ull * l;
                const RegIndex r_d = g.temps.get();
                g.b.movImm(r_d,
                           static_cast<std::int64_t>(version));
                g.b.str(r_d, r_lock, line, version);
                g.b.cvap(r_lock, line,
                         ede ? EdkOps{k, 0} : EdkOps{});
            }
            // The record must be durable before the stamp claims it
            // is: a durable stamp v asserts every record line holds
            // version >= v.
            emitDrain(g.b, p.cfg, k, /*all_keys=*/false);
            const RegIndex r_st = g.temps.get();
            g.b.movImm(r_st, static_cast<std::int64_t>(version));
            g.b.str(r_st, r_lock, kConcRwStamp, version);
            g.b.cvap(r_lock, kConcRwStamp,
                     ede ? EdkOps{k, 0} : EdkOps{});
            g.b.str(r_w, r_lock, kConcLockWord, 0);
            g.b.cvap(r_lock, kConcLockWord);
            last_writer = c;
            have_writer = true;
            wl.model.maxVersion = version;
            ++version;
        } else {
            // Reader: observe the lock, read the record.
            g.b.branchCond("rw.read", r_obs, r_obs, false);
            RegIndex r_prev = r_obs;
            for (int l = 0; l < kConcRwLines; ++l) {
                const RegIndex r_d = g.temps.get();
                g.b.ldr(r_d, r_prev, kConcRwData + 64ull * l);
                r_prev = r_d;
            }
            // Durable read (1 in 4): drain the last writer's
            // persists.  Under EDE the waited key belongs to a
            // *different* core -- the counters span the coherence
            // point.
            if (rng.below(4) == 0 && have_writer) {
                std::vector<Addr> lines;
                for (int l = 0; l < kConcRwLines; ++l)
                    lines.push_back(kConcRwData + 64ull * l);
                emitRemoteDrain(g, p.cfg, concCoreKey(last_writer),
                                lines);
                // The receipt makes the durable read observable: it
                // persists the version this reader witnessed,
                // *behind* the drain, so a crash image holding the
                // receipt must also hold the record it vouches for.
                // Dropping the cross-core WAIT above is exactly the
                // bug the seeded-WAIT gate plants: the receipt then
                // floats free of the writer's persists.
                const std::uint64_t vread = version - 1;
                const Addr rcpt = concRwReceipt(c);
                const RegIndex r_v = g.temps.get();
                g.b.movImm(r_v, static_cast<std::int64_t>(vread));
                g.b.str(r_v, r_lock, rcpt, vread);
                g.b.cvap(r_lock, rcpt,
                         ede ? EdkOps{k, 0} : EdkOps{});
            }
        }
        if (p.paced)
            wl.opSpans.push_back({c, op_first, wl.traces[c].size()});
        emitPaceLoads(gens, p, round++);
    }
    return wl;
}

// ---------------------------------------------------------------
// RCU list: readers traverse; updaters drain the previous updater
// (the durable face of the update lock every real RCU serializes
// writers with), persist a replacement node, publish it, then wait
// out a grace period before poisoning the old node.  Under EDE the
// grace period is WAIT_ALL_KEYS, which with cross-core counters
// drains every core's in-flight keyed persists.
// ---------------------------------------------------------------

ConcWorkload
buildRcuList(const ConcParams &p)
{
    ConcWorkload wl;
    wl.model.app = ConcApp::RcuList;
    wl.model.cores = p.cores;
    wl.traces.resize(p.cores);
    std::vector<CoreGen> gens;
    gens.reserve(p.cores);
    for (Trace &t : wl.traces)
        gens.emplace_back(t);

    // Core 0 builds the initial list; the nodes must be durable
    // before the head publish can be (recovery enters through the
    // head).
    std::vector<Addr> list;
    {
        CoreGen &g = gens[0];
        const RegIndex r_n = g.temps.get();
        const RegIndex r_v = g.temps.get();
        for (int n = 0; n < kConcRcuInitLen; ++n)
            list.push_back(arenaNode(0, g.nodesUsed++));
        for (int n = 0; n < kConcRcuInitLen; ++n) {
            const Addr next =
                n + 1 < kConcRcuInitLen ? list[n + 1] : 0;
            const std::uint64_t v = 100 + n;
            g.b.str(r_v, r_n, list[n], v);
            g.b.str(r_v, r_n, list[n] + 8, next, 8);
            g.b.cvap(r_n, list[n]);
            wl.model.listNodes[list[n]] = v;
        }
        g.b.dsbSy();
        g.b.str(r_v, r_n, kConcListHead, list[0]);
        g.b.cvap(r_n, kConcListHead);
    }
    if (p.paced)
        wl.opSpans.push_back({0, 0, wl.traces[0].size()});
    for (unsigned i = 0; i < p.cores; ++i)
        emitPreamble(gens[i], i, p);

    Rng rng(p.seed);
    const std::vector<unsigned> order = opSchedule(p, rng);
    std::uint64_t version = 1000;
    bool have_updater = false;
    unsigned last_updater = 0;
    std::vector<Addr> last_update_lines;
    int round = 0;
    for (const unsigned c : order) {
        CoreGen &g = gens[c];
        const std::size_t op_first = wl.traces[c].size();
        const bool ede = configUsesEde(p.cfg);
        const Edk k = concCoreKey(c);
        if (rng.below(4) == 0) {
            // Updater: replace list[idx] with a fresh node.
            if (have_updater) {
                emitRemoteDrain(g, p.cfg, concCoreKey(last_updater),
                                last_update_lines);
            }
            const auto idx = static_cast<std::size_t>(
                rng.below(list.size()));
            const Addr old = list[idx];
            const Addr next_val = idx + 1 < list.size()
                                      ? list[idx + 1]
                                      : 0;
            const Addr pred =
                idx == 0 ? kConcListHead : list[idx - 1] + 8;
            const Addr node = arenaNode(c, g.nodesUsed++);
            const RegIndex r_n = g.temps.get();
            const RegIndex r_v = g.temps.get();
            g.b.movImm(r_v, static_cast<std::int64_t>(version));
            g.b.str(r_v, r_n, node, version);
            g.b.str(r_v, r_n, node + 8, next_val, 8);
            g.b.cvap(r_n, node, ede ? EdkOps{k, 0} : EdkOps{});
            emitOrderingToken(g.b, p.cfg);
            const RegIndex r_p = g.temps.get();
            g.b.str(r_n, r_p, pred, node, 0,
                    ede ? EdkOps{0, k} : EdkOps{});
            g.b.cvap(r_p, pred, ede ? EdkOps{k, 0} : EdkOps{});
            // Grace period: every core's keyed persists must drain
            // before the old node can be poisoned.
            emitDrain(g.b, p.cfg, k, /*all_keys=*/true);
            const RegIndex r_x = g.temps.get();
            g.b.str(r_x, r_n, old, 0xdead);
            wl.model.listNodes[node] = version;
            list[idx] = node;
            have_updater = true;
            last_updater = c;
            last_update_lines = {cacheLine(node), cacheLine(pred),
                                 cacheLine(old)};
            ++version;
        } else {
            // Reader: pointer-chase the first nodes of the list.
            const RegIndex r_h = g.temps.get();
            RegIndex r_prev = g.temps.get();
            g.b.ldr(r_prev, r_h, kConcListHead);
            const std::size_t hops =
                std::min<std::size_t>(8, list.size());
            for (std::size_t h = 0; h < hops; ++h) {
                const RegIndex r_n = g.temps.get();
                // Dependent load: base is the previous hop's dest.
                g.b.ldr(r_n, r_prev,
                        list[h] + (h + 1 < hops ? 8 : 0));
                r_prev = r_n;
            }
        }
        if (p.paced)
            wl.opSpans.push_back({c, op_first, wl.traces[c].size()});
        emitPaceLoads(gens, p, round++);
    }
    return wl;
}

// ---------------------------------------------------------------
// Recovery oracles (see the invariant list in concurrent.hh).
// ---------------------------------------------------------------

const char *
checkMsQueue(const ConcModel &m, const MemoryImage &img)
{
    Addr p = img.read<std::uint64_t>(kConcQueueHead);
    std::set<Addr> visited;
    while (p != 0) {
        if (!visited.insert(p).second)
            return "msqueue-doubly-linked";
        const auto it = m.queueNodes.find(p);
        if (it == m.queueNodes.end() ||
            img.read<std::uint64_t>(p) != it->second)
            return "msqueue-node-lost";
        p = img.read<std::uint64_t>(p + 8);
    }
    return nullptr;
}

const char *
checkRwLock(const ConcModel &m, const MemoryImage &img)
{
    const auto stamp = img.read<std::uint64_t>(kConcRwStamp);
    if (stamp != 0) {  // Else no writer's stamp became durable.
        if (stamp > m.maxVersion)
            return "rwlock-torn-write";
        for (int l = 0; l < kConcRwLines; ++l) {
            const auto v =
                img.read<std::uint64_t>(kConcRwData + 64ull * l);
            if (v < stamp || v > m.maxVersion)
                return "rwlock-torn-write";
        }
    }
    // Durable read receipts: a reader that persisted a receipt at
    // version v vouched that it drained the version-v writer first,
    // so v's record lines must be at least as durable as the receipt.
    for (unsigned c = 0; c < m.cores; ++c) {
        const auto v = img.read<std::uint64_t>(concRwReceipt(c));
        if (v == 0)
            continue;  // No durable read on this core.
        if (v > m.maxVersion)
            return "rwlock-torn-write";
        for (int l = 0; l < kConcRwLines; ++l) {
            if (img.read<std::uint64_t>(kConcRwData + 64ull * l) < v)
                return "rwlock-torn-write";
        }
    }
    return nullptr;
}

const char *
checkRcu(const ConcModel &m, const MemoryImage &img)
{
    Addr p = img.read<std::uint64_t>(kConcListHead);
    std::set<Addr> visited;
    while (p != 0) {
        if (!visited.insert(p).second)
            return "rcu-dangling-node";
        const auto v = img.read<std::uint64_t>(p);
        if (v == 0xdead)
            return "rcu-reclaimed-reachable";
        const auto it = m.listNodes.find(p);
        if (it == m.listNodes.end() || it->second != v)
            return "rcu-dangling-node";
        p = img.read<std::uint64_t>(p + 8);
    }
    return nullptr;
}

} // namespace

ConcWorkload
buildConcurrentWorkload(ConcApp app, const ConcParams &p)
{
    ede_assert(p.cores >= 1, "concurrent workloads need >= 1 core");
    ede_assert(p.opsPerCore >= 1,
               "concurrent workloads need >= 1 op per core");
    if (configUsesEde(p.cfg)) {
        // Round-robin key allocation with an explicit collision
        // check: one real key per core, and a core whose round-robin
        // key is exhausted or already taken fails generation instead
        // of silently sharing (a shared key would let a WAIT drain
        // the wrong core's persists).
        std::array<bool, kNumEdks> used{};
        for (unsigned c = 0; c < p.cores; ++c) {
            const Edk k = concCoreKey(c);
            if (!edkIsReal(k) || used[k]) {
                SimError err;
                err.kind = SimErrorKind::CoreCountKeyExhausted;
                throw SimFaultError(err);
            }
            used[k] = true;
        }
    }
    switch (app) {
      case ConcApp::MsQueue:
        return buildMsQueue(p);
      case ConcApp::RwLock:
        return buildRwLock(p);
      case ConcApp::RcuList:
        return buildRcuList(p);
    }
    ede_assert(false, "unknown concurrent app");
    return {};
}

std::vector<Trace>
buildConcurrentTraces(ConcApp app, const ConcParams &p)
{
    return buildConcurrentWorkload(app, p).traces;
}

const char *
checkConcInvariants(const ConcModel &model, const MemoryImage &image)
{
    switch (model.app) {
      case ConcApp::MsQueue:
        return checkMsQueue(model, image);
      case ConcApp::RwLock:
        return checkRwLock(model, image);
      case ConcApp::RcuList:
        return checkRcu(model, image);
    }
    ede_assert(false, "unknown concurrent app");
    return nullptr;
}

} // namespace ede
