/**
 * @file
 * Concurrent persistent workloads for the N-core System.
 *
 * Three kernels modelled on the classic lock-free / synchronization
 * case studies (Michael-Scott queue, reader-writer lock, RCU list),
 * each rewritten as a *persistent* structure in the paper's style:
 * every structural update persists its lines with DC CVAP and orders
 * the publishing store behind the persist.  The ordering token is
 * lowered per Table III configuration, exactly as the NvmFramework
 * lowers its undo-log patterns:
 *
 *  - B  : DC CVAP ; DSB SY ; publish
 *  - SU : DC CVAP ; DMB ST ; publish       (unsafe: DMB ST does not
 *                                           order the CVAP)
 *  - IQ / WB : DC CVAP defines the core's key; the publish store
 *              consumes it -- no fence
 *  - U  : DC CVAP ; publish                (no ordering)
 *
 * Each core runs its own instruction stream against a private EDK
 * key, and cross-core persist ordering is expressed with WAIT_KEY /
 * WAIT_ALL_KEYS on *another* core's key -- the counters span the
 * coherence point, so a waiter drains the remote core's in-flight
 * keyed persists (see core/cross_core.hh).  Per-core EDM files mean
 * a use-key only links to a producer on the same core; the workloads
 * respect that split.  Where a core depends on data a *remote* core
 * persisted (a dequeuer exposing a remote node, a reader demanding a
 * durable record, an updater taking over the RCU update role), the
 * generator emits a remote-drain sequence: WAIT_KEY on the owner's
 * key under EDE, or re-CVAP the remote lines plus a fence under the
 * fence configurations (SU inherits its DMB ST hole here too).
 *
 * Generation is functional-first, like every trace generator in this
 * repo: a seeded *global interleaving* serializes the cores'
 * operations, a host-side model of the structure resolves every
 * address and value under that order, and each operation's micro-ops
 * are appended to its core's trace.  The timing simulation then
 * replays the N streams lock-step; values are already resolved, so
 * timing never changes the functional outcome (the hazard-pointer
 * bench uses the same idiom on one core).
 *
 * The host model doubles as the crash-recovery oracle: it records
 * what each kernel ever made reachable, and checkConcInvariants
 * walks a recovered NVM image against that record, naming the first
 * violated invariant (see the per-kernel invariant list there).
 */

#ifndef EDE_APPS_CONCURRENT_HH
#define EDE_APPS_CONCURRENT_HH

#include <array>
#include <map>
#include <string_view>
#include <vector>

#include "isa/edk.hh"
#include "mem/memory_image.hh"
#include "sim/config.hh"
#include "trace/trace.hh"

namespace ede {

/** The concurrent kernels. */
enum class ConcApp { MsQueue, RwLock, RcuList };

/** All concurrent kernels, presentation order. */
inline constexpr std::array<ConcApp, 3> kAllConcApps = {
    ConcApp::MsQueue, ConcApp::RwLock, ConcApp::RcuList,
};

/** Printable kernel name. */
constexpr std::string_view
concAppName(ConcApp app)
{
    switch (app) {
      case ConcApp::MsQueue: return "msqueue";
      case ConcApp::RwLock: return "rwlock";
      case ConcApp::RcuList: return "rcu";
    }
    return "<bad-conc-app>";
}

/** Generator tunables. */
struct ConcParams
{
    Config cfg = Config::B;      ///< Table III lowering to apply.
    unsigned cores = 1;          ///< One trace per core.
    int opsPerCore = 256;        ///< Operations each core performs.
    std::uint64_t seed = 42;     ///< Global-interleaving seed.

    /**
     * Pace the cores so machine execution tracks the host model's
     * serialization (required by the crash-consistency checkers; see
     * opSchedule in the .cc).  Off by default: the timing benches
     * keep the historical free-running interleave.
     */
    bool paced = false;
};

/** Nodes the RCU list starts with (built durably by core 0). */
inline constexpr int kConcRcuInitLen = 16;

/**
 * @name Shared NVM layout.
 *
 * Control cells sit one per 256 B NVM *media* line (not merely one
 * per 64 B cache line): the durable-set lattice chains successive
 * persists of one media line, so co-locating two control cells would
 * entangle their persist histories and every counterexample would
 * drag in the other cell's whole chain.  Per-core node arenas are
 * 1 MiB apart; concNodeOwner inverts the mapping.
 */
/// @{
inline constexpr Addr kConcNvmBase = 2ull << 30;
inline constexpr Addr kConcQueueHead = kConcNvmBase + 0x000;
inline constexpr Addr kConcQueueTail = kConcNvmBase + 0x100;
inline constexpr Addr kConcLockWord = kConcNvmBase + 0x200;
inline constexpr Addr kConcRwStamp = kConcNvmBase + 0x300;
inline constexpr Addr kConcRwData = kConcNvmBase + 0x400;
inline constexpr int kConcRwLines = 4;   ///< 4 x 64 B, one media line.
inline constexpr Addr kConcListHead = kConcNvmBase + 0x600;
inline constexpr Addr kConcRwReceiptBase = kConcNvmBase + 0x800;
inline constexpr Addr kConcArenaBase = kConcNvmBase + 0x100000;
inline constexpr Addr kConcArenaStride = 0x100000;

/**
 * Core @p core's durable read receipt (rwlock): a durable reader
 * persists the version it read here, *after* draining the writer it
 * read from -- the receipt is what makes a "durable read" observable
 * in a crash image, so the oracle can demand the data it witnessed
 * is at least as durable as the witness.  One media line per core.
 */
constexpr Addr
concRwReceipt(unsigned core)
{
    return kConcRwReceiptBase + 0x100ull * core;
}

/** The core whose arena holds @p node (see arenaNode in the .cc). */
constexpr unsigned
concNodeOwner(Addr node)
{
    return static_cast<unsigned>((node - kConcArenaBase) /
                                 kConcArenaStride);
}
/// @}

/**
 * The most cores an EDE configuration supports: the ISA has
 * kNumEdks - 1 = 15 real keys and the generator dedicates one per
 * core.  Asking for more under an EDE configuration fails generation
 * with SimErrorKind::CoreCountKeyExhausted (see
 * buildConcurrentWorkload) instead of silently aliasing two cores
 * onto one key, which would let a WAIT drain the wrong core's
 * persists and mask ordering bugs.  Fence configurations never
 * consume keys and scale past this bound.
 */
inline constexpr unsigned kMaxConcEdeCores = kNumEdks - 1;

/**
 * The EDK key core @p core produces: keys are handed out round-robin
 * (key 1 + core), one real key per core, valid only for
 * core < kMaxConcEdeCores -- buildConcurrentWorkload performs the
 * collision check before any trace is built.  Cross-core waiters
 * name a peer's key explicitly via this mapping.
 */
constexpr Edk
concCoreKey(unsigned core)
{
    return static_cast<Edk>(1 + core);
}

/**
 * The host model's record of everything a kernel made reachable,
 * kept alongside the traces so a recovered crash image can be
 * audited without re-deriving the interleaving.
 */
struct ConcModel
{
    ConcApp app = ConcApp::MsQueue;
    unsigned cores = 1;

    /** MS-queue: every enqueued node address -> stored value. */
    std::map<Addr, std::uint64_t> queueNodes;

    /** rwlock: the highest version any writer published. */
    std::uint64_t maxVersion = 0;

    /** RCU: every node ever linked into the list -> stored value. */
    std::map<Addr, std::uint64_t> listNodes;
};

/**
 * One structural operation's trace span in paced mode: core @p core
 * executes trace indices [first, last).  Spans are recorded in the
 * model's global serialization order, and the pacing contract is that
 * the machine serializes them too -- every persist the span pushes is
 * accepted after every persist of every earlier span.  The harness
 * verifies exactly that post-run (SimErrorKind::PacingDrift on
 * failure), because the generators resolve cross-core values
 * host-side under this order and a drifted run would be silently
 * unsound.
 */
struct ConcOpSpan
{
    unsigned core = 0;
    std::size_t first = 0;  ///< First trace index of the op.
    std::size_t last = 0;   ///< One past the op's final index.
};

/** Traces plus the oracle model that generated them. */
struct ConcWorkload
{
    std::vector<Trace> traces;  ///< Index i binds to core i.
    ConcModel model;

    /** Paced mode only: ops in global serialization order. */
    std::vector<ConcOpSpan> opSpans;
};

/**
 * Build kernel @p app's per-core traces and oracle model
 * (traces.size() == p.cores).  Deterministic in (app, p).  Throws
 * SimFaultError carrying SimErrorKind::CoreCountKeyExhausted when an
 * EDE configuration asks for more cores than there are real keys.
 */
ConcWorkload buildConcurrentWorkload(ConcApp app, const ConcParams &p);

/** Traces only; see buildConcurrentWorkload. */
std::vector<Trace> buildConcurrentTraces(ConcApp app,
                                         const ConcParams &p);

/**
 * The recovery oracle: audit a recovered NVM image against the
 * model.  Returns nullptr when every invariant holds, else the name
 * of the first violated invariant:
 *
 *  - "msqueue-node-lost":       the durable head chain reaches a node
 *                               whose enqueued value never became
 *                               durable (or was never enqueued);
 *  - "msqueue-doubly-linked":   the durable head chain revisits a
 *                               node (a cycle through stale links);
 *  - "rwlock-torn-write":       the durable stamp admits a version
 *                               whose record lines are not all
 *                               durable at that version or newer;
 *  - "rcu-reclaimed-reachable": a poisoned (reclaimed) node is
 *                               reachable from the durable list head;
 *  - "rcu-dangling-node":       the durable list reaches a node whose
 *                               published contents never became
 *                               durable.
 */
const char *checkConcInvariants(const ConcModel &model,
                                const MemoryImage &image);

} // namespace ede

#endif // EDE_APPS_CONCURRENT_HH
