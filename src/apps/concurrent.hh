/**
 * @file
 * Concurrent persistent workloads for the N-core System.
 *
 * Three kernels modelled on the classic lock-free / synchronization
 * case studies (Michael-Scott queue, reader-writer lock, RCU list),
 * each rewritten as a *persistent* structure in the paper's style:
 * every structural update persists its lines with DC CVAP and orders
 * the publishing store behind the persist.  The ordering token is
 * lowered per Table III configuration, exactly as the NvmFramework
 * lowers its undo-log patterns:
 *
 *  - B  : DC CVAP ; DSB SY ; publish
 *  - SU : DC CVAP ; DMB ST ; publish       (unsafe: DMB ST does not
 *                                           order the CVAP)
 *  - IQ / WB : DC CVAP defines the core's key; the publish store
 *              consumes it -- no fence
 *  - U  : DC CVAP ; publish                (no ordering)
 *
 * Each core runs its own instruction stream against a private EDK
 * key (the 15 real keys partitioned round-robin across cores), and
 * cross-core persist ordering is expressed with WAIT_KEY /
 * WAIT_ALL_KEYS on *another* core's key -- the counters span the
 * coherence point, so a waiter drains the remote core's in-flight
 * keyed persists (see core/cross_core.hh).  Per-core EDM files mean
 * a use-key only links to a producer on the same core; the workloads
 * respect that split.
 *
 * Generation is functional-first, like every trace generator in this
 * repo: a seeded *global interleaving* serializes the cores'
 * operations, a host-side model of the structure resolves every
 * address and value under that order, and each operation's micro-ops
 * are appended to its core's trace.  The timing simulation then
 * replays the N streams lock-step; values are already resolved, so
 * timing never changes the functional outcome (the hazard-pointer
 * bench uses the same idiom on one core).
 */

#ifndef EDE_APPS_CONCURRENT_HH
#define EDE_APPS_CONCURRENT_HH

#include <array>
#include <string_view>
#include <vector>

#include "sim/config.hh"
#include "trace/trace.hh"

namespace ede {

/** The concurrent kernels. */
enum class ConcApp { MsQueue, RwLock, RcuList };

/** All concurrent kernels, presentation order. */
inline constexpr std::array<ConcApp, 3> kAllConcApps = {
    ConcApp::MsQueue, ConcApp::RwLock, ConcApp::RcuList,
};

/** Printable kernel name. */
constexpr std::string_view
concAppName(ConcApp app)
{
    switch (app) {
      case ConcApp::MsQueue: return "msqueue";
      case ConcApp::RwLock: return "rwlock";
      case ConcApp::RcuList: return "rcu";
    }
    return "<bad-conc-app>";
}

/** Generator tunables. */
struct ConcParams
{
    Config cfg = Config::B;      ///< Table III lowering to apply.
    unsigned cores = 1;          ///< One trace per core.
    int opsPerCore = 256;        ///< Operations each core performs.
    std::uint64_t seed = 42;     ///< Global-interleaving seed.
};

/**
 * The EDK key core @p core produces on an N-core machine: the 15
 * real keys are partitioned round-robin, so two cores share a key
 * only beyond 15 cores.  Cross-core waiters name a peer's key
 * explicitly via this mapping.
 */
constexpr Edk
concCoreKey(unsigned core)
{
    return static_cast<Edk>(1 + core % 15);
}

/**
 * Build kernel @p app's per-core traces (index i binds to core i;
 * size == p.cores).  Deterministic in (app, p).
 */
std::vector<Trace> buildConcurrentTraces(ConcApp app,
                                         const ConcParams &p);

} // namespace ede

#endif // EDE_APPS_CONCURRENT_HH
