#include "apps/ctree.hh"

#include <bit>

#include "common/logging.hh"

namespace ede {

CtreeApp::CtreeApp(NvmFramework &fw, std::uint64_t seed)
    : App(fw), seed_(seed)
{
}

std::uint64_t
CtreeApp::rd(Addr node, int f, RegIndex base)
{
    std::uint64_t v = 0;
    fw_.loadU64(fieldAddr(node, f), base, &v);
    return v;
}

void
CtreeApp::wr(Addr node, int f, std::uint64_t v)
{
    // PMDK-style: snapshot the 32-byte node on first touch per tx.
    fw_.pWriteU64InRange(fieldAddr(node, f), v, node, 4);
}

Addr
CtreeApp::makeLeaf(std::uint64_t key, std::uint64_t val)
{
    const Addr leaf = fw_.heap().alloc(kNodeBytes);
    fw_.compute(1);
    wr(leaf, fTag, 1);
    wr(leaf, fAux, key);
    wr(leaf, fA, val);
    return leaf;
}

void
CtreeApp::setup()
{
    rootPtr_ = fw_.heap().alloc(16);
    fw_.rawStoreU64(rootPtr_, 0);
    fw_.persistLine(rootPtr_);
}

void
CtreeApp::insert(std::uint64_t key, std::uint64_t val)
{
    const RegIndex root_ptr_reg = fw_.movAddr(rootPtr_);
    Addr root = 0;
    fw_.loadU64(rootPtr_, root_ptr_reg, &root);
    if (root == 0) {
        fw_.pWriteU64(rootPtr_, makeLeaf(key, val));
        return;
    }

    // Phase 1: walk to the closest leaf.
    Addr node = root;
    RegIndex node_reg = fw_.movAddr(root);
    int guard = 0;
    while (rd(node, fTag, node_reg) == 0) {
        ede_assert(++guard <= 70, "ctree path too deep");
        const std::uint64_t bit = rd(node, fAux, node_reg);
        const bool dir = testBit(key, bit);
        fw_.compute(1); // Bit extraction.
        Addr child = 0;
        fw_.loadU64(fieldAddr(node, dir ? fB : fA), node_reg, &child);
        node = child;
        node_reg = fw_.movAddr(child); // Chained pointer register.
    }
    const std::uint64_t leaf_key = rd(node, fAux, node_reg);
    const RegIndex key_reg = fw_.movAddr(key);
    if (leaf_key == key) {
        fw_.branchCmp("ctree.dup", key_reg, node_reg, true);
        wr(node, fA, val);
        return;
    }
    fw_.branchCmp("ctree.dup", key_reg, node_reg, false);

    // The critical bit: highest differing bit, MSB-first index.
    const std::uint64_t diff = leaf_key ^ key;
    const auto crit =
        static_cast<std::uint64_t>(std::countl_zero(diff));
    fw_.compute(2); // clz + direction computation.

    // Phase 2: find the insertion point (first node whose bit index
    // exceeds the critical bit).
    const Addr fresh_leaf = makeLeaf(key, val);
    const Addr inode = fw_.heap().alloc(kNodeBytes);
    fw_.compute(1);
    wr(inode, fTag, 0);
    wr(inode, fAux, crit);

    Addr parent = 0;
    int parent_dir = 0;
    node = root;
    node_reg = fw_.movAddr(root);
    guard = 0;
    while (rd(node, fTag, node_reg) == 0 &&
           rd(node, fAux, node_reg) < crit) {
        ede_assert(++guard <= 70, "ctree reinsert path too deep");
        const std::uint64_t bit =
            fw_.image().read<std::uint64_t>(fieldAddr(node, fAux));
        const bool dir = testBit(key, bit);
        parent = node;
        parent_dir = dir ? fB : fA;
        Addr child = 0;
        fw_.loadU64(fieldAddr(node, parent_dir), node_reg, &child);
        node = child;
        node_reg = fw_.movAddr(child);
    }

    const bool new_dir = testBit(key, crit);
    wr(inode, new_dir ? fB : fA, fresh_leaf);
    wr(inode, new_dir ? fA : fB, node);
    if (parent == 0)
        fw_.pWriteU64(rootPtr_, inode);
    else
        wr(parent, parent_dir, inode);
}

void
CtreeApp::op(Rng &rng)
{
    const std::uint64_t key = rng.next() & 0xffffffffffffull;
    const std::uint64_t val = rng.next() | 1;
    insert(key, val);
    ref_[key] = val;
    curTxn_.emplace_back(key, val);
}

void
CtreeApp::noteCommit()
{
    history_.push_back(std::move(curTxn_));
    curTxn_.clear();
}

bool
CtreeApp::collect(const MemoryImage &img, Addr node, std::uint64_t path,
                  std::uint64_t mask, std::uint64_t last_bit, bool first,
                  std::vector<std::pair<std::uint64_t,
                                        std::uint64_t>> &out,
                  std::size_t &budget)
{
    if (budget == 0)
        return false;
    --budget;
    if (node == 0 || (node & 0xf) != 0)
        return false;
    const auto tag = img.read<std::uint64_t>(fieldAddr(node, fTag));
    if (tag == 1) {
        const auto key = img.read<std::uint64_t>(fieldAddr(node, fAux));
        const auto val = img.read<std::uint64_t>(fieldAddr(node, fA));
        // Every bit decided on the path must match the key.
        if ((key & mask) != path)
            return false;
        out.emplace_back(key, val);
        return true;
    }
    if (tag != 0)
        return false;
    const auto bit = img.read<std::uint64_t>(fieldAddr(node, fAux));
    if (bit > 63 || (!first && bit <= last_bit))
        return false; // Bit indices must strictly increase.
    const std::uint64_t bit_mask = 1ull << (63 - bit);
    const auto c0 = img.read<std::uint64_t>(fieldAddr(node, fA));
    const auto c1 = img.read<std::uint64_t>(fieldAddr(node, fB));
    return collect(img, c0, path, mask | bit_mask, bit, false, out,
                   budget) &&
           collect(img, c1, path | bit_mask, mask | bit_mask, bit,
                   false, out, budget);
}

bool
CtreeApp::extract(const MemoryImage &img, Addr root_ptr,
                  std::vector<std::pair<std::uint64_t,
                                        std::uint64_t>> &out)
{
    const Addr root = img.read<std::uint64_t>(root_ptr);
    if (root == 0)
        return true;
    std::size_t budget = 1u << 22;
    return collect(img, root, 0, 0, 0, true, out, budget);
}

bool
CtreeApp::checkFinal() const
{
    std::vector<std::pair<std::uint64_t, std::uint64_t>> got;
    if (!extract(fw_.image(), rootPtr_, got))
        return false;
    if (got.size() != ref_.size())
        return false;
    std::map<std::uint64_t, std::uint64_t> sorted(got.begin(),
                                                  got.end());
    return sorted.size() == got.size() &&
           std::equal(sorted.begin(), sorted.end(), ref_.begin());
}

bool
CtreeApp::checkRecovered(const MemoryImage &img) const
{
    std::vector<std::pair<std::uint64_t, std::uint64_t>> got;
    if (!extract(img, rootPtr_, got))
        return false;
    std::map<std::uint64_t, std::uint64_t> sorted(got.begin(),
                                                  got.end());
    if (sorted.size() != got.size())
        return false;

    std::map<std::uint64_t, std::uint64_t> state;
    auto matches = [&]() { return sorted == state; };
    if (matches())
        return true;
    for (const auto &txn : history_) {
        for (const auto &[k, v] : txn)
            state[k] = v;
        if (matches())
            return true;
    }
    return false;
}

} // namespace ede
