/**
 * @file
 * Persistent crit-bit trie (Table II "ctree", after PMDK pmembench's
 * crit-bit tree [Morrison's PATRICIA]).
 *
 * Node layout (32 bytes, all fields u64):
 *   leaf:     [0]=1  [1]=key     [2]=val     [3]=unused
 *   internal: [0]=0  [1]=bitIdx  [2]=child0  [3]=child1
 *
 * Bits are numbered MSB-first (bitIdx 0 tests bit 63), so bit indices
 * strictly increase along any root-to-leaf path.
 */

#ifndef EDE_APPS_CTREE_HH
#define EDE_APPS_CTREE_HH

#include <map>
#include <vector>

#include "apps/app.hh"

namespace ede {

/** Crit-bit trie insert workload. */
class CtreeApp : public App
{
  public:
    CtreeApp(NvmFramework &fw, std::uint64_t seed);

    std::string_view name() const override { return "ctree"; }
    void setup() override;
    void op(Rng &rng) override;
    void noteCommit() override;
    bool checkFinal() const override;
    bool checkRecovered(const MemoryImage &img) const override;

    /** Transactional insert (exposed for unit tests). */
    void insert(std::uint64_t key, std::uint64_t val);

    /**
     * Validate structure on @p img and collect (key, val) pairs.
     * @return false on any structural anomaly.
     */
    bool
    contents(const MemoryImage &img,
             std::vector<std::pair<std::uint64_t, std::uint64_t>> &out)
        const
    {
        return extract(img, rootPtr_, out);
    }

  private:
    static constexpr std::uint64_t kNodeBytes = 32;
    static constexpr int fTag = 0;
    static constexpr int fAux = 1;  ///< key (leaf) / bitIdx (internal).
    static constexpr int fA = 2;    ///< val (leaf) / child0.
    static constexpr int fB = 3;    ///< child1.

    static Addr fieldAddr(Addr n, int f) { return n + 8 * f; }

    /** MSB-first bit test. */
    static bool
    testBit(std::uint64_t key, std::uint64_t bit_idx)
    {
        return (key >> (63 - bit_idx)) & 1;
    }

    std::uint64_t rd(Addr node, int f, RegIndex base = kNoReg);
    void wr(Addr node, int f, std::uint64_t v);
    Addr makeLeaf(std::uint64_t key, std::uint64_t val);

    static bool collect(const MemoryImage &img, Addr node,
                        std::uint64_t path, std::uint64_t mask,
                        std::uint64_t last_bit, bool first,
                        std::vector<std::pair<std::uint64_t,
                                              std::uint64_t>> &out,
                        std::size_t &budget);
    static bool extract(const MemoryImage &img, Addr root_ptr,
                        std::vector<std::pair<std::uint64_t,
                                              std::uint64_t>> &out);

    std::uint64_t seed_;
    Addr rootPtr_ = kNoAddr;

    std::map<std::uint64_t, std::uint64_t> ref_;
    std::vector<std::pair<std::uint64_t, std::uint64_t>> curTxn_;
    std::vector<std::vector<std::pair<std::uint64_t, std::uint64_t>>>
        history_;
};

} // namespace ede

#endif // EDE_APPS_CTREE_HH
