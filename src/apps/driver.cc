#include "apps/driver.hh"

namespace ede {

std::size_t
generateWorkload(App &app, NvmFramework &fw, const RunSpec &spec)
{
    app.setup();
    fw.warmUndoLog();
    fw.setupFence();
    const std::size_t setup_end = fw.builder().trace().size() - 1;
    Rng rng(spec.seed);
    for (std::size_t t = 0; t < spec.txns; ++t) {
        fw.txBegin();
        for (std::size_t i = 0; i < spec.opsPerTxn; ++i)
            app.op(rng);
        fw.txCommit();
        app.noteCommit();
    }
    return setup_end;
}

} // namespace ede
