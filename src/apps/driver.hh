/**
 * @file
 * Workload driver: the transaction loop of Section VI-B.
 */

#ifndef EDE_APPS_DRIVER_HH
#define EDE_APPS_DRIVER_HH

#include <cstddef>

#include "apps/app.hh"

namespace ede {

/** How much work to generate. */
struct RunSpec
{
    std::size_t txns = 100;        ///< Paper: 1,000.
    std::size_t opsPerTxn = 100;   ///< Paper: 100.
    std::uint64_t seed = 42;
};

/**
 * Generate the full workload: setup, then @p spec.txns transactions
 * of @p spec.opsPerTxn operations each (Section VI-B).
 *
 * @return the trace index of the fence closing the setup phase; the
 *         initial structure is durable once that element completes.
 */
std::size_t generateWorkload(App &app, NvmFramework &fw,
                             const RunSpec &spec);

} // namespace ede

#endif // EDE_APPS_DRIVER_HH
