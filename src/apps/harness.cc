#include "apps/harness.hh"

#include <algorithm>

#include "common/logging.hh"
#include "nvm/undo_log.hh"
#include "sim/session.hh"

namespace ede {

WorkloadHarness::WorkloadHarness(AppId app, Config cfg, RunSpec spec,
                                 AppParams app_params)
    : WorkloadHarness(app, cfg, spec, app_params, makeParams(cfg))
{
}

WorkloadHarness::WorkloadHarness(AppId app, Config cfg, RunSpec spec,
                                 AppParams app_params,
                                 const SimParams &sim_params)
    : appId_(app), cfg_(cfg), spec_(spec)
{
    // The unified SimConfig front end validates the full parameter
    // set -- including that the enforcement mode matches the Table
    // III configuration -- before anything is built.
    system_ = std::make_unique<System>(
        SimConfig::paper(cfg).withCore(sim_params.core)
            .withMem(sim_params.mem));

    // The log rotates through a region sized for one transaction's
    // worst case, mirroring PMDK's per-lane ulogs, which are reused
    // across transactions and therefore stay cache-warm.
    const Addr nvm_base = sim_params.mem.map.nvmBase();
    log_.stateAddr = nvm_base;
    log_.entriesBase = nvm_base + 64;
    log_.capacity = std::max<std::uint64_t>(4096,
                                            spec_.opsPerTxn * 128);

    Addr heap_base = log_.stateAddr + log_.footprint();
    heap_base = (heap_base + 4095) & ~Addr{4095};
    const Addr heap_size =
        sim_params.mem.map.limit() - heap_base;
    heap_ = std::make_unique<PersistentHeap>(heap_base, heap_size);

    builder_ = std::make_unique<TraceBuilder>(trace_);
    framework_ = std::make_unique<NvmFramework>(
        cfg_, *builder_, system_->volatileImage(), *heap_, log_);
    // Backdoor pool initialization: durable in both images, and the
    // line is made cache-resident (functional warmup).
    framework_->setBackdoor(
        [this](Addr addr, std::uint64_t value, int warm_level) {
            system_->timingImage().write<std::uint64_t>(addr, value);
            system_->nvmImage().write<std::uint64_t>(addr, value);
            system_->mem().warmLine(addr, warm_level);
        });
    app_ = makeApp(appId_, *framework_, app_params);
}

void
WorkloadHarness::enableAudit()
{
    ede_assert(!simulated_, "enable auditing before simulate()");
    auditing_ = true;
    system_->recordCompletions(true);
    system_->recordPersistData(true);
}

void
WorkloadHarness::generate()
{
    ede_assert(!generated_, "generate() is single-shot");
    generated_ = true;
    setupEndIdx_ = generateWorkload(*app_, *framework_, spec_);
}

Cycle
WorkloadHarness::setupCompleteCycle() const
{
    ede_assert(auditing_ && simulated_,
               "setupCompleteCycle needs enableAudit() and a "
               "completed run");
    return system_->completionCycles().at(setupEndIdx_);
}

Cycle
WorkloadHarness::simulate()
{
    ede_assert(generated_, "generate() before simulate()");
    ede_assert(!simulated_, "simulate() is single-shot");
    simulated_ = true;
    if (auditing_) {
        // Backdoor-initialized pool contents are durable before the
        // run starts; crash images build on top of them.
        baselineNvm_ = system_->nvmImage();
    }
    system_->core().watchCompletion(setupEndIdx_);
    const Cycle cycles = system_->run(trace_);
    // Tests and benches expect a completed run; a watchdog or
    // max-cycles abort is fatal here, but now dies with the full
    // structured dump instead of a one-line panic.
    if (const SimError &err = system_->core().simError()) {
        ede_panic("simulation aborted\n", err.describe());
    }
    return cycles;
}

Cycle
WorkloadHarness::simulateChecked()
{
    ede_assert(generated_, "generate() before simulate()");
    ede_assert(!simulated_, "simulate() is single-shot");
    simulated_ = true;
    if (auditing_)
        baselineNvm_ = system_->nvmImage();
    system_->core().watchCompletion(setupEndIdx_);
    const Cycle cycles = system_->run(trace_);
    if (const SimError &err = system_->core().simError())
        throw SimFaultError(err);
    return cycles;
}

Cycle
WorkloadHarness::opPhaseCycles() const
{
    ede_assert(simulated_, "opPhaseCycles needs a completed run");
    const Cycle setup_done =
        system_->core().watchedCompletion(setupEndIdx_);
    ede_assert(setup_done != kNoCycle, "setup fence never completed");
    return system_->core().stats().cycles - setup_done;
}

AuditReport
WorkloadHarness::audit() const
{
    ede_assert(auditing_ && simulated_,
               "audit needs enableAudit() and a completed run");
    return auditPersistOrdering(framework_->obligations(),
                                system_->completionCycles());
}

const MemoryImage &
WorkloadHarness::baselineNvm() const
{
    ede_assert(auditing_ && simulated_,
               "baselineNvm needs enableAudit() and a completed run");
    return baselineNvm_;
}

std::vector<Cycle>
WorkloadHarness::commitCycles() const
{
    ede_assert(auditing_ && simulated_,
               "commitCycles needs enableAudit() and a completed run");
    const std::vector<Cycle> &done = system_->completionCycles();
    std::vector<Cycle> cycles;
    cycles.reserve(framework_->commitMarks().size());
    for (std::size_t idx : framework_->commitMarks())
        cycles.push_back(done.at(idx));
    return cycles;
}

MemoryImage
WorkloadHarness::recoveredImageAt(Cycle crashCycle) const
{
    ede_assert(auditing_ && simulated_,
               "crash images need enableAudit() and a completed run");
    MemoryImage img = baselineNvm_;
    applyPersistEvents(img, system_->persistEvents(), crashCycle);
    recoverUndoLog(img, log_);
    return img;
}

} // namespace ede
