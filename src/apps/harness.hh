/**
 * @file
 * Workload harness: builds a complete simulated run for one
 * (application, configuration) pair.
 *
 * Owns the System, the trace, the heap/log placement, the framework
 * and the application, in the right order, so benches and tests can
 * express a full experiment in three lines:
 *
 *   WorkloadHarness h(AppId::Btree, Config::WB, spec);
 *   h.generate();
 *   h.simulate();
 */

#ifndef EDE_APPS_HARNESS_HH
#define EDE_APPS_HARNESS_HH

#include <memory>

#include "apps/app.hh"
#include "apps/driver.hh"
#include "audit/auditor.hh"
#include "nvm/framework.hh"
#include "sim/system.hh"
#include "trace/builder.hh"

namespace ede {

/** One experiment instance. */
class WorkloadHarness
{
  public:
    WorkloadHarness(AppId app, Config cfg, RunSpec spec = {},
                    AppParams app_params = {});

    /** As above with explicit simulator parameters (ablations). */
    WorkloadHarness(AppId app, Config cfg, RunSpec spec,
                    AppParams app_params, const SimParams &sim_params);

    /** Enable audit support (completion + persist-data recording). */
    void enableAudit();

    /** Functionally execute the workload, emitting the trace. */
    void generate();

    /** Run the timing simulation. @return total cycles. */
    Cycle simulate();

    /**
     * As simulate(), but a structured simulator abort (watchdog,
     * max-cycles, EDK dependence cycle) raises SimFaultError instead
     * of panicking, so isolated experiment workers can classify it
     * as a typed SimFault failure record.
     */
    Cycle simulateChecked();

    /**
     * Cycles spent in the transaction phase (total minus setup).
     * This matches the paper's measurement, which times the
     * operations, not pool initialization (Section VI-B).
     */
    Cycle opPhaseCycles() const;

    /** Persist-ordering audit (requires enableAudit + both phases). */
    AuditReport audit() const;

    /**
     * Durable state at @p crashCycle, after undo-log recovery
     * (requires enableAudit).
     */
    MemoryImage recoveredImageAt(Cycle crashCycle) const;

    /**
     * First cycle at which the initial structure is fully durable;
     * crash points sampled before this see a half-built pool
     * (requires enableAudit and a completed run).
     */
    Cycle setupCompleteCycle() const;

    /**
     * Durable pool contents before the run started -- the base every
     * crash image is reconstructed on (requires enableAudit and a
     * completed run).
     */
    const MemoryImage &baselineNvm() const;

    /**
     * Completion cycle of each transaction's state-clear persist, in
     * transaction order: the commit boundaries the crash campaign
     * stratifies over (requires enableAudit and a completed run).
     */
    std::vector<Cycle> commitCycles() const;

    /** @name Component access. */
    /// @{
    System &system() { return *system_; }
    const System &system() const { return *system_; }
    App &app() { return *app_; }
    const App &app() const { return *app_; }
    NvmFramework &framework() { return *framework_; }
    const NvmFramework &framework() const { return *framework_; }
    Trace &trace() { return trace_; }
    const Trace &trace() const { return trace_; }
    const RunSpec &spec() const { return spec_; }
    Config config() const { return cfg_; }
    AppId appId() const { return appId_; }
    /// @}

  private:
    AppId appId_;
    Config cfg_;
    RunSpec spec_;
    std::unique_ptr<System> system_;
    Trace trace_;
    std::unique_ptr<TraceBuilder> builder_;
    std::unique_ptr<PersistentHeap> heap_;
    UndoLogLayout log_;
    std::unique_ptr<NvmFramework> framework_;
    std::unique_ptr<App> app_;
    MemoryImage baselineNvm_;  ///< Durable state before the run.
    std::size_t setupEndIdx_ = 0;
    bool generated_ = false;
    bool simulated_ = false;
    bool auditing_ = false;
};

} // namespace ede

#endif // EDE_APPS_HARNESS_HH
