#include "apps/kernels.hh"

#include "common/logging.hh"

namespace ede {

ArrayKernelBase::ArrayKernelBase(NvmFramework &fw, std::size_t len,
                                 std::uint64_t seed)
    : App(fw), len_(len), seed_(seed)
{
    ede_assert(len_ >= 2, "kernel arrays need at least two elements");
}

void
ArrayKernelBase::setup()
{
    // The array pre-exists (an already-created pool): initialize it
    // through the backdoor -- durable contents, L3-resident lines --
    // rather than simulating millions of initialization stores.
    array_ = fw_.heap().alloc(8 * len_);
    ref_.resize(len_);
    Rng rng(seed_ ^ 0xa5a5a5a5ull);
    for (std::size_t i = 0; i < len_; ++i) {
        const std::uint64_t v = rng.next() | 1; // Non-zero contents.
        fw_.backdoorStoreU64(elemAddr(i), v, /*warm_level=*/3);
        ref_[i] = v;
    }
}

void
ArrayKernelBase::refWrite(std::size_t idx, std::uint64_t val)
{
    ref_[idx] = val;
    curTxn_.emplace_back(static_cast<std::uint32_t>(idx), val);
}

void
ArrayKernelBase::noteCommit()
{
    history_.push_back(std::move(curTxn_));
    curTxn_.clear();
}

bool
ArrayKernelBase::checkFinal() const
{
    for (std::size_t i = 0; i < len_; ++i) {
        if (fw_.image().read<std::uint64_t>(elemAddr(i)) != ref_[i])
            return false;
    }
    return true;
}

bool
ArrayKernelBase::checkRecovered(const MemoryImage &img) const
{
    // Replay the committed prefix txn by txn; the recovered array
    // must equal one of the boundary states.
    std::vector<std::uint64_t> state(len_);
    Rng rng(seed_ ^ 0xa5a5a5a5ull);
    for (std::size_t i = 0; i < len_; ++i)
        state[i] = rng.next() | 1;

    auto matches = [&]() {
        for (std::size_t i = 0; i < len_; ++i) {
            if (img.read<std::uint64_t>(elemAddr(i)) != state[i])
                return false;
        }
        return true;
    };

    if (matches())
        return true;
    for (const auto &txn : history_) {
        for (const auto &[idx, val] : txn)
            state[idx] = val;
        if (matches())
            return true;
    }
    return false;
}

void
UpdateKernel::op(Rng &rng)
{
    const std::size_t idx = rng.below(len_);
    const std::uint64_t val = rng.next() | 1;
    // A little address arithmetic, as the compiled loop would do.
    fw_.compute(2);
    fw_.pWriteU64(elemAddr(idx), val);
    refWrite(idx, val);
}

void
SwapKernel::op(Rng &rng)
{
    const std::size_t a = rng.below(len_);
    std::size_t b = rng.below(len_);
    if (b == a)
        b = (b + 1) % len_;
    fw_.compute(2);
    std::uint64_t va = 0;
    std::uint64_t vb = 0;
    fw_.loadU64(elemAddr(a), kNoReg, &va);
    fw_.loadU64(elemAddr(b), kNoReg, &vb);
    fw_.pWriteU64(elemAddr(a), vb);
    fw_.pWriteU64(elemAddr(b), va);
    refWrite(a, vb);
    refWrite(b, va);
}

} // namespace ede
