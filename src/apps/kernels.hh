/**
 * @file
 * The two kernel applications of Table II.
 *
 * update: each operation overwrites one random array element.
 * swap:   each operation exchanges two random array elements.
 *
 * Both use undo logging through the framework, producing exactly the
 * Figure 4 instruction pattern per element write.
 */

#ifndef EDE_APPS_KERNELS_HH
#define EDE_APPS_KERNELS_HH

#include <vector>

#include "apps/app.hh"

namespace ede {

/** Common state for the array kernels. */
class ArrayKernelBase : public App
{
  public:
    ArrayKernelBase(NvmFramework &fw, std::size_t len,
                    std::uint64_t seed);

    void setup() override;
    bool checkFinal() const override;
    bool checkRecovered(const MemoryImage &img) const override;
    void noteCommit() override;

    /** Base address of the persistent array. */
    Addr arrayAddr() const { return array_; }

  protected:
    Addr elemAddr(std::size_t i) const { return array_ + 8 * i; }

    /** Reference-model write (mirrors one pWriteU64). */
    void refWrite(std::size_t idx, std::uint64_t val);

    std::size_t len_;
    std::uint64_t seed_;
    Addr array_ = kNoAddr;

    /** Reference model, mirrored alongside the functional image. */
    std::vector<std::uint64_t> ref_;

    /** Semantic op log: (index, new value), grouped per txn. */
    std::vector<std::pair<std::uint32_t, std::uint64_t>> curTxn_;
    std::vector<std::vector<std::pair<std::uint32_t, std::uint64_t>>>
        history_;
};

/** Table II "update": random single-element overwrites. */
class UpdateKernel : public ArrayKernelBase
{
  public:
    using ArrayKernelBase::ArrayKernelBase;
    std::string_view name() const override { return "update"; }
    void op(Rng &rng) override;
};

/** Table II "swap": pairwise random element exchanges. */
class SwapKernel : public ArrayKernelBase
{
  public:
    using ArrayKernelBase::ArrayKernelBase;
    std::string_view name() const override { return "swap"; }
    void op(Rng &rng) override;
};

} // namespace ede

#endif // EDE_APPS_KERNELS_HH
