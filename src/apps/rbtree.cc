#include "apps/rbtree.hh"

#include "common/logging.hh"

namespace ede {

RbtreeApp::RbtreeApp(NvmFramework &fw, std::uint64_t seed)
    : App(fw), seed_(seed)
{
}

std::uint64_t
RbtreeApp::rd(Addr node, int f, RegIndex base)
{
    std::uint64_t v = 0;
    fw_.loadU64(fieldAddr(node, f), base, &v);
    return v;
}

std::uint64_t
RbtreeApp::peek(Addr node, int f) const
{
    return fw_.image().read<std::uint64_t>(fieldAddr(node, f));
}

void
RbtreeApp::wr(Addr node, int f, std::uint64_t v)
{
    // PMDK-style: snapshot the whole node on first touch per tx.
    fw_.pWriteU64InRange(fieldAddr(node, f), v, node, 6);
}

void
RbtreeApp::setup()
{
    rootPtr_ = fw_.heap().alloc(16);
    nil_ = fw_.heap().alloc(kNodeBytes);
    fw_.rawStoreU64(fieldAddr(nil_, fColor), kBlack);
    fw_.rawStoreU64(fieldAddr(nil_, fParent), nil_);
    fw_.rawStoreU64(fieldAddr(nil_, fLeft), nil_);
    fw_.rawStoreU64(fieldAddr(nil_, fRight), nil_);
    fw_.rawStoreU64(rootPtr_, nil_);
    fw_.persistLine(nil_);
    fw_.persistLine(rootPtr_);
}

void
RbtreeApp::rotate(Addr x, bool left)
{
    const int near = left ? fRight : fLeft;
    const int far = left ? fLeft : fRight;
    const RegIndex x_reg = fw_.movAddr(x);
    const Addr y = rd(x, near, x_reg);
    const RegIndex y_reg = fw_.movAddr(y);
    const Addr y_far = rd(y, far, y_reg);

    wr(x, near, y_far);
    if (y_far != nil_)
        wr(y_far, fParent, x);
    const Addr x_parent = rd(x, fParent, x_reg);
    wr(y, fParent, x_parent);
    if (x_parent == nil_) {
        fw_.pWriteU64(rootPtr_, y);
    } else if (peek(x_parent, fLeft) == x) {
        wr(x_parent, fLeft, y);
    } else {
        wr(x_parent, fRight, y);
    }
    wr(y, far, x);
    wr(x, fParent, y);
}

void
RbtreeApp::fixup(Addr z)
{
    int guard = 0;
    while (peek(peek(z, fParent), fColor) == kRed) {
        ede_assert(++guard <= 128, "rbtree fixup runaway");
        const Addr parent = peek(z, fParent);
        const Addr grand = peek(parent, fParent);
        const RegIndex g_reg = fw_.movAddr(grand);
        const bool parent_is_left = peek(grand, fLeft) == parent;
        const Addr uncle = rd(grand, parent_is_left ? fRight : fLeft,
                              g_reg);
        const RegIndex u_reg = fw_.movAddr(uncle);
        const std::uint64_t uncle_color = rd(uncle, fColor, u_reg);
        fw_.branchCmp("rbtree.unclered", u_reg, g_reg,
                      uncle_color == kRed);
        if (uncle_color == kRed) {
            wr(parent, fColor, kBlack);
            wr(uncle, fColor, kBlack);
            wr(grand, fColor, kRed);
            z = grand;
            continue;
        }
        if (parent_is_left) {
            if (z == peek(parent, fRight)) {
                z = parent;
                rotate(z, /*left=*/true);
            }
            wr(peek(z, fParent), fColor, kBlack);
            wr(peek(peek(z, fParent), fParent), fColor, kRed);
            rotate(peek(peek(z, fParent), fParent), /*left=*/false);
        } else {
            if (z == peek(parent, fLeft)) {
                z = parent;
                rotate(z, /*left=*/false);
            }
            wr(peek(z, fParent), fColor, kBlack);
            wr(peek(peek(z, fParent), fParent), fColor, kRed);
            rotate(peek(peek(z, fParent), fParent), /*left=*/true);
        }
    }
    const Addr root = peek(rootPtr_, 0);
    if (peek(root, fColor) != kBlack)
        wr(root, fColor, kBlack);
}

void
RbtreeApp::insert(std::uint64_t key, std::uint64_t val)
{
    // BST descent, emitting the pointer-chasing loads and compare
    // branches of the compiled search loop.
    const RegIndex root_ptr_reg = fw_.movAddr(rootPtr_);
    Addr root = 0;
    fw_.loadU64(rootPtr_, root_ptr_reg, &root);

    Addr parent = nil_;
    Addr cur = root;
    RegIndex cur_reg = fw_.movAddr(cur);
    bool went_left = false;
    const RegIndex key_reg = fw_.movAddr(key);
    int guard = 0;
    while (cur != nil_) {
        ede_assert(++guard <= 128, "rbtree descent runaway");
        const std::uint64_t ck = rd(cur, fKey, cur_reg);
        const RegIndex ck_reg = fw_.movAddr(ck);
        if (ck == key) {
            fw_.branchCmp("rbtree.eq", key_reg, ck_reg, true);
            wr(cur, fVal, val);
            return;
        }
        fw_.branchCmp("rbtree.eq", key_reg, ck_reg, false);
        went_left = key < ck;
        fw_.branchCmp("rbtree.dir", key_reg, ck_reg, went_left);
        parent = cur;
        Addr next = 0;
        fw_.loadU64(fieldAddr(cur, went_left ? fLeft : fRight), cur_reg,
                    &next);
        cur = next;
        cur_reg = fw_.movAddr(cur);
    }

    const Addr z = fw_.heap().alloc(kNodeBytes);
    fw_.compute(1);
    wr(z, fKey, key);
    wr(z, fVal, val);
    wr(z, fColor, kRed);
    wr(z, fParent, parent);
    wr(z, fLeft, nil_);
    wr(z, fRight, nil_);
    if (parent == nil_)
        fw_.pWriteU64(rootPtr_, z);
    else
        wr(parent, went_left ? fLeft : fRight, z);
    fixup(z);
}

void
RbtreeApp::op(Rng &rng)
{
    const std::uint64_t key = rng.next() & 0xffffffffffffull;
    const std::uint64_t val = rng.next() | 1;
    insert(key, val);
    ref_[key] = val;
    curTxn_.emplace_back(key, val);
}

void
RbtreeApp::noteCommit()
{
    history_.push_back(std::move(curTxn_));
    curTxn_.clear();
}

bool
RbtreeApp::validate(const MemoryImage &img, Addr node, std::uint64_t lo,
                    std::uint64_t hi, int &black_height,
                    std::vector<std::pair<std::uint64_t,
                                          std::uint64_t>> &out,
                    std::size_t &budget) const
{
    if (node == nil_) {
        black_height = 1;
        return true;
    }
    if (budget == 0)
        return false;
    --budget;
    if (node == 0 || (node & 0xf) != 0)
        return false;
    const auto key = img.read<std::uint64_t>(fieldAddr(node, fKey));
    const auto val = img.read<std::uint64_t>(fieldAddr(node, fVal));
    const auto color = img.read<std::uint64_t>(fieldAddr(node, fColor));
    const auto left = img.read<std::uint64_t>(fieldAddr(node, fLeft));
    const auto right = img.read<std::uint64_t>(fieldAddr(node, fRight));
    if (key < lo || key > hi)
        return false;
    if (color != kRed && color != kBlack)
        return false;
    if (color == kRed) {
        // Red nodes have black children.
        if (img.read<std::uint64_t>(fieldAddr(left, fColor)) == kRed ||
            img.read<std::uint64_t>(fieldAddr(right, fColor)) == kRed) {
            return false;
        }
    }
    int bh_left = 0;
    int bh_right = 0;
    if (!validate(img, left, lo, key ? key - 1 : 0, bh_left, out,
                  budget)) {
        return false;
    }
    out.emplace_back(key, val);
    if (!validate(img, right, key + 1, hi, bh_right, out, budget))
        return false;
    if (bh_left != bh_right)
        return false;
    black_height = bh_left + (color == kBlack ? 1 : 0);
    return true;
}

bool
RbtreeApp::extract(const MemoryImage &img,
                   std::vector<std::pair<std::uint64_t,
                                         std::uint64_t>> &out) const
{
    const Addr root = img.read<std::uint64_t>(rootPtr_);
    if (root == nil_)
        return true;
    if (img.read<std::uint64_t>(fieldAddr(root, fColor)) != kBlack)
        return false;
    int bh = 0;
    std::size_t budget = 1u << 22;
    return validate(img, root, 0, ~std::uint64_t{0}, bh, out, budget);
}

bool
RbtreeApp::checkFinal() const
{
    std::vector<std::pair<std::uint64_t, std::uint64_t>> got;
    if (!extract(fw_.image(), got))
        return false;
    if (got.size() != ref_.size())
        return false;
    auto it = ref_.begin();
    for (const auto &kv : got) {
        if (kv.first != it->first || kv.second != it->second)
            return false;
        ++it;
    }
    return true;
}

bool
RbtreeApp::checkRecovered(const MemoryImage &img) const
{
    std::vector<std::pair<std::uint64_t, std::uint64_t>> got;
    if (!extract(img, got))
        return false;
    std::map<std::uint64_t, std::uint64_t> state;
    auto matches = [&]() {
        if (got.size() != state.size())
            return false;
        auto it = state.begin();
        for (const auto &kv : got) {
            if (kv.first != it->first || kv.second != it->second)
                return false;
            ++it;
        }
        return true;
    };
    if (matches())
        return true;
    for (const auto &txn : history_) {
        for (const auto &[k, v] : txn)
            state[k] = v;
        if (matches())
            return true;
    }
    return false;
}

} // namespace ede
