/**
 * @file
 * Persistent red-black tree with a sentinel nil node (Table II
 * "rbtree", after PMDK pmembench's rbtree).
 *
 * Node layout (64 bytes, all fields u64):
 *   [0] key  [1] val  [2] color (0=black, 1=red)
 *   [3] parent  [4] left  [5] right
 *
 * A single black sentinel ("nil") stands in for every external leaf
 * and for the root's parent, exactly as in CLRS; the root pointer
 * cell holds the current root (or nil when empty).
 */

#ifndef EDE_APPS_RBTREE_HH
#define EDE_APPS_RBTREE_HH

#include <map>
#include <vector>

#include "apps/app.hh"

namespace ede {

/** Red-black tree insert workload. */
class RbtreeApp : public App
{
  public:
    RbtreeApp(NvmFramework &fw, std::uint64_t seed);

    std::string_view name() const override { return "rbtree"; }
    void setup() override;
    void op(Rng &rng) override;
    void noteCommit() override;
    bool checkFinal() const override;
    bool checkRecovered(const MemoryImage &img) const override;

    /** Transactional insert (exposed for unit tests). */
    void insert(std::uint64_t key, std::uint64_t val);

    /** The sentinel address (tests). */
    Addr nil() const { return nil_; }

    /**
     * Validate red-black invariants on @p img and collect the
     * in-order (key, val) pairs.  @return false on any violation.
     */
    bool
    contents(const MemoryImage &img,
             std::vector<std::pair<std::uint64_t, std::uint64_t>> &out)
        const
    {
        return extract(img, out);
    }

  private:
    static constexpr std::uint64_t kNodeBytes = 64;
    static constexpr int fKey = 0;
    static constexpr int fVal = 1;
    static constexpr int fColor = 2;
    static constexpr int fParent = 3;
    static constexpr int fLeft = 4;
    static constexpr int fRight = 5;
    static constexpr std::uint64_t kBlack = 0;
    static constexpr std::uint64_t kRed = 1;

    static Addr fieldAddr(Addr n, int f) { return n + 8 * f; }

    std::uint64_t rd(Addr node, int f, RegIndex base = kNoReg);
    /** Pure read (no trace emission) for fixup bookkeeping. */
    std::uint64_t peek(Addr node, int f) const;
    void wr(Addr node, int f, std::uint64_t v);

    void rotate(Addr x, bool left);
    void fixup(Addr z);

    bool validate(const MemoryImage &img, Addr node, std::uint64_t lo,
                  std::uint64_t hi, int &black_height,
                  std::vector<std::pair<std::uint64_t,
                                        std::uint64_t>> &out,
                  std::size_t &budget) const;
    bool extract(const MemoryImage &img,
                 std::vector<std::pair<std::uint64_t,
                                       std::uint64_t>> &out) const;

    std::uint64_t seed_;
    Addr rootPtr_ = kNoAddr;
    Addr nil_ = kNoAddr;

    std::map<std::uint64_t, std::uint64_t> ref_;
    std::vector<std::pair<std::uint64_t, std::uint64_t>> curTxn_;
    std::vector<std::vector<std::pair<std::uint64_t, std::uint64_t>>>
        history_;
};

} // namespace ede

#endif // EDE_APPS_RBTREE_HH
