#include "apps/rtree.hh"

#include "common/logging.hh"

namespace ede {

RtreeApp::RtreeApp(NvmFramework &fw, std::uint64_t seed)
    : App(fw), seed_(seed)
{
}

std::uint64_t
RtreeApp::rd(Addr node, std::uint32_t idx, RegIndex base)
{
    std::uint64_t v = 0;
    fw_.loadU64(slotAddr(node, idx), base, &v);
    return v;
}

void
RtreeApp::wr(Addr node, std::uint32_t idx, std::uint64_t v)
{
    fw_.pWriteU64(slotAddr(node, idx), v);
}

void
RtreeApp::setup()
{
    // The root node exists from the start; interior nodes appear
    // lazily.  Fresh heap memory is zero, i.e. "all slots empty".
    root_ = fw_.heap().alloc(kNodeBytes);
    fw_.persistLine(root_); // Make the (empty) root line durable.
}

void
RtreeApp::insert(std::uint32_t key, std::uint64_t val)
{
    Addr node = root_;
    RegIndex node_reg = fw_.movAddr(node);
    for (int level = 0; level < kLevels - 1; ++level) {
        const std::uint32_t idx = byteAt(key, level);
        fw_.compute(1); // Byte extraction.
        Addr child = rd(node, idx, node_reg);
        if (child == 0) {
            child = fw_.heap().alloc(kNodeBytes);
            fw_.compute(1);
            wr(node, idx, child);
        }
        node = child;
        node_reg = fw_.movAddr(child);
    }
    fw_.compute(1);
    wr(node, byteAt(key, kLevels - 1), val);
}

void
RtreeApp::op(Rng &rng)
{
    const auto key = static_cast<std::uint32_t>(rng.next());
    const std::uint64_t val = rng.next() | 1;
    insert(key, val);
    ref_[key] = val;
    curTxn_.emplace_back(key, val);
}

void
RtreeApp::noteCommit()
{
    history_.push_back(std::move(curTxn_));
    curTxn_.clear();
}

bool
RtreeApp::collect(const MemoryImage &img, Addr node, int level,
                  std::uint32_t prefix,
                  std::vector<std::pair<std::uint64_t,
                                        std::uint64_t>> &out,
                  std::size_t &budget) const
{
    if (budget == 0)
        return false;
    --budget;
    if (node == 0 || (node & 0xf) != 0)
        return false;
    for (std::uint32_t i = 0; i < 256; ++i) {
        const auto slot = img.read<std::uint64_t>(slotAddr(node, i));
        if (slot == 0)
            continue;
        const std::uint32_t next_prefix = (prefix << 8) | i;
        if (level == kLevels - 1) {
            out.emplace_back(next_prefix, slot);
        } else if (!collect(img, slot, level + 1, next_prefix, out,
                            budget)) {
            return false;
        }
    }
    return true;
}

bool
RtreeApp::extract(const MemoryImage &img,
                  std::vector<std::pair<std::uint64_t,
                                        std::uint64_t>> &out) const
{
    std::size_t budget = 1u << 22;
    return collect(img, root_, 0, 0, out, budget);
}

bool
RtreeApp::checkFinal() const
{
    std::vector<std::pair<std::uint64_t, std::uint64_t>> got;
    if (!extract(fw_.image(), got))
        return false;
    if (got.size() != ref_.size())
        return false;
    auto it = ref_.begin();
    for (const auto &kv : got) {
        if (kv.first != it->first || kv.second != it->second)
            return false;
        ++it;
    }
    return true;
}

bool
RtreeApp::checkRecovered(const MemoryImage &img) const
{
    std::vector<std::pair<std::uint64_t, std::uint64_t>> got;
    if (!extract(img, got))
        return false;
    std::map<std::uint64_t, std::uint64_t> state;
    auto matches = [&]() {
        if (got.size() != state.size())
            return false;
        auto it = state.begin();
        for (const auto &kv : got) {
            if (kv.first != it->first || kv.second != it->second)
                return false;
            ++it;
        }
        return true;
    };
    if (matches())
        return true;
    for (const auto &txn : history_) {
        for (const auto &[k, v] : txn)
            state[k] = v;
        if (matches())
            return true;
    }
    return false;
}

} // namespace ede
