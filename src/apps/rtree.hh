/**
 * @file
 * Persistent radix tree with radix 256 (Table II "rtree", after PMDK
 * pmembench's rtree).
 *
 * Keys are 32 bits, consumed one byte per level MSB-first: three
 * levels of 256-slot pointer nodes and a final 256-slot value level.
 * Nodes are 2 KiB (256 x u64) and are allocated zeroed (slot 0 means
 * "empty"); values are kept non-zero by construction.
 */

#ifndef EDE_APPS_RTREE_HH
#define EDE_APPS_RTREE_HH

#include <map>
#include <vector>

#include "apps/app.hh"

namespace ede {

/** Radix-256 tree insert workload. */
class RtreeApp : public App
{
  public:
    RtreeApp(NvmFramework &fw, std::uint64_t seed);

    std::string_view name() const override { return "rtree"; }
    void setup() override;
    void op(Rng &rng) override;
    void noteCommit() override;
    bool checkFinal() const override;
    bool checkRecovered(const MemoryImage &img) const override;

    /** Transactional insert (exposed for unit tests). */
    void insert(std::uint32_t key, std::uint64_t val);

  private:
    static constexpr std::uint64_t kNodeBytes = 256 * 8;
    static constexpr int kLevels = 4;

    static Addr
    slotAddr(Addr node, std::uint32_t idx)
    {
        return node + 8 * idx;
    }

    static std::uint32_t
    byteAt(std::uint32_t key, int level)
    {
        return (key >> (8 * (kLevels - 1 - level))) & 0xff;
    }

    std::uint64_t rd(Addr node, std::uint32_t idx,
                     RegIndex base = kNoReg);
    void wr(Addr node, std::uint32_t idx, std::uint64_t v);

    bool collect(const MemoryImage &img, Addr node, int level,
                 std::uint32_t prefix,
                 std::vector<std::pair<std::uint64_t,
                                       std::uint64_t>> &out,
                 std::size_t &budget) const;
    bool extract(const MemoryImage &img,
                 std::vector<std::pair<std::uint64_t,
                                       std::uint64_t>> &out) const;

    std::uint64_t seed_;
    Addr root_ = kNoAddr;

    std::map<std::uint64_t, std::uint64_t> ref_;
    std::vector<std::pair<std::uint64_t, std::uint64_t>> curTxn_;
    std::vector<std::vector<std::pair<std::uint64_t, std::uint64_t>>>
        history_;
};

} // namespace ede

#endif // EDE_APPS_RTREE_HH
