#include "audit/auditor.hh"

#include "common/logging.hh"

namespace ede {

AuditReport
auditPersistOrdering(const std::vector<PersistObligation> &obligations,
                     const std::vector<Cycle> &completionCycles)
{
    AuditReport report;
    for (std::size_t i = 0; i < obligations.size(); ++i) {
        const PersistObligation &ob = obligations[i];
        ede_assert(ob.logCvapIdx < completionCycles.size() &&
                   ob.dataStrIdx < completionCycles.size(),
                   "obligation indexes beyond the trace");
        const Cycle log_persisted = completionCycles[ob.logCvapIdx];
        const Cycle data_visible = completionCycles[ob.dataStrIdx];
        ede_assert(log_persisted != kNoCycle &&
                   data_visible != kNoCycle,
                   "trace element never completed; was completion "
                   "recording enabled?");
        ++report.checked;
        if (data_visible < log_persisted) {
            if (report.violations == 0)
                report.firstViolationOp = i;
            ++report.violations;
        }
    }
    return report;
}

void
applyPersistEvents(MemoryImage &image,
                   const std::vector<PersistEvent> &events,
                   Cycle crashCycle)
{
    for (const PersistEvent &ev : events) {
        if (ev.cycle > crashCycle)
            continue;
        ede_assert(ev.bytes.size() == ev.size,
                   "persist event without data; enable "
                   "System::recordPersistData before running");
        image.write(ev.addr, ev.bytes.data(), ev.size);
    }
}

MemoryImage
buildCrashImage(const std::vector<PersistEvent> &events,
                Cycle crashCycle)
{
    MemoryImage img;
    applyPersistEvents(img, events, crashCycle);
    return img;
}

const char *
crashInvariantName(bool appOk, const RecoveryResult &rec)
{
    if (appOk)
        return nullptr;
    return rec.sawCommitted ? "committed-update-missing"
                            : "active-rollback-failed";
}

} // namespace ede
