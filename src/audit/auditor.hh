/**
 * @file
 * Crash-consistency auditing.
 *
 * Two complementary checks turn the paper's safety argument
 * (Table III: B/IQ/WB are safe, SU/U are not) into executable
 * properties:
 *
 * 1. Persist-ordering audit.  Undo logging requires that an element
 *    update must not become *visible* (and hence potentially durable
 *    through eviction) before its undo-log entry is durable.  The
 *    framework records each transactional write's obligation; the
 *    auditor compares the store's visibility cycle against the log
 *    persist's completion cycle from the actual simulation.
 *
 * 2. Crash images.  When persist-event data recording is enabled, a
 *    byte-accurate NVM image can be reconstructed for any crash
 *    cycle; running undo-log recovery over it and validating the
 *    application's invariants exercises the full recovery story.
 */

#ifndef EDE_AUDIT_AUDITOR_HH
#define EDE_AUDIT_AUDITOR_HH

#include <vector>

#include "nvm/framework.hh"
#include "nvm/undo_log.hh"
#include "sim/system.hh"

namespace ede {

/** Outcome of the persist-ordering audit. */
struct AuditReport
{
    std::uint64_t checked = 0;
    std::uint64_t violations = 0;
    std::size_t firstViolationOp = 0; ///< Valid when violations > 0.

    bool clean() const { return violations == 0; }
};

/**
 * Check every obligation: visible(data store) must be no earlier than
 * persisted(log entry).
 *
 * @param obligations      from NvmFramework::obligations()
 * @param completionCycles from System::completionCycles() (recording
 *                         must have been enabled before the run)
 */
AuditReport auditPersistOrdering(
    const std::vector<PersistObligation> &obligations,
    const std::vector<Cycle> &completionCycles);

/**
 * Reconstruct the durable NVM state as of @p crashCycle from the
 * recorded persist events.  Events must carry data (enable
 * System::recordPersistData before running).
 */
MemoryImage buildCrashImage(const std::vector<PersistEvent> &events,
                            Cycle crashCycle);

/**
 * Apply the persist events up to @p crashCycle on top of an existing
 * durable baseline (e.g. a backdoor-initialized pool).
 */
void applyPersistEvents(MemoryImage &image,
                        const std::vector<PersistEvent> &events,
                        Cycle crashCycle);

/**
 * Name the crash-consistency invariant a recovered image violates,
 * keyed on where the crash hit the commit protocol:
 *
 *  - "committed-update-missing": the state word read COMMITTED, so
 *    every transactional update was supposed to be durable, yet the
 *    recovered image fails the application oracle;
 *  - "active-rollback-failed": the state word read ACTIVE, the undo
 *    entries were replayed, and the image still does not match any
 *    transaction boundary -- an update escaped its log entry.
 *
 * @return nullptr when @p appOk (no violation to name).
 */
const char *crashInvariantName(bool appOk, const RecoveryResult &rec);

} // namespace ede

#endif // EDE_AUDIT_AUDITOR_HH
