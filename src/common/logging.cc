#include "common/logging.hh"

#include <exception>
#include <iostream>
#include <mutex>

namespace ede {

namespace {

/** Serializes every log line across threads. */
std::mutex &
logMutex()
{
    static std::mutex m;
    return m;
}

thread_local std::string t_jobTag;

/** "[tag] " when the thread is tagged, "" otherwise. */
std::string
tagPrefix()
{
    return t_jobTag.empty() ? std::string()
                            : "[" + t_jobTag + "] ";
}

} // namespace

std::string
logJobTag()
{
    return t_jobTag;
}

void
setLogJobTag(std::string tag)
{
    t_jobTag = std::move(tag);
}

namespace detail {

void
panicImpl(const char *file, int line, const std::string &msg)
{
    {
        std::lock_guard<std::mutex> lock(logMutex());
        std::cerr << "panic: " << tagPrefix() << msg << " [" << file
                  << ":" << line << "]" << std::endl;
    }
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    {
        std::lock_guard<std::mutex> lock(logMutex());
        std::cerr << "fatal: " << tagPrefix() << msg << " [" << file
                  << ":" << line << "]" << std::endl;
    }
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    std::lock_guard<std::mutex> lock(logMutex());
    std::cerr << "warn: " << tagPrefix() << msg << std::endl;
}

void
informImpl(const std::string &msg)
{
    std::lock_guard<std::mutex> lock(logMutex());
    std::cout << "info: " << tagPrefix() << msg << std::endl;
}

} // namespace detail
} // namespace ede
