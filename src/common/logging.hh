/**
 * @file
 * Error-reporting helpers in the gem5 tradition.
 *
 * panic()  - an internal simulator invariant was violated (a bug in
 *            this library).  Aborts so a debugger/core dump can be used.
 * fatal()  - the user asked for something impossible (bad configuration,
 *            out-of-range parameter).  Exits with status 1.
 * warn()   - something is modelled approximately; simulation continues.
 * inform() - plain status output.
 *
 * All four sinks are thread-safe: one process-wide mutex serializes
 * each line, so output from parallel experiment jobs never
 * interleaves mid-line.  A per-thread *job tag* (LogJobTag) is
 * prepended to every line emitted by that thread, keeping parallel
 * output attributable to the run that produced it.
 */

#ifndef EDE_COMMON_LOGGING_HH
#define EDE_COMMON_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <utility>

namespace ede {

namespace detail {

/** Concatenate any streamable arguments into a std::string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

} // namespace detail

/** The calling thread's current log tag ("" when untagged). */
std::string logJobTag();

/** Set the calling thread's log tag ("" clears it). */
void setLogJobTag(std::string tag);

/**
 * Scoped per-thread log tag: every log line the thread emits while
 * the guard is alive is prefixed with "[tag]".  Scheduler jobs use
 * this so interleaved parallel output stays attributable; tags nest
 * (the previous tag is restored on destruction).
 */
class LogJobTag
{
  public:
    explicit LogJobTag(std::string tag) : prev_(logJobTag())
    {
        setLogJobTag(std::move(tag));
    }

    ~LogJobTag() { setLogJobTag(std::move(prev_)); }

    LogJobTag(const LogJobTag &) = delete;
    LogJobTag &operator=(const LogJobTag &) = delete;

  private:
    std::string prev_;
};

} // namespace ede

/** Abort with a message: internal invariant violated. */
#define ede_panic(...) \
    ::ede::detail::panicImpl(__FILE__, __LINE__, \
                             ::ede::detail::concat(__VA_ARGS__))

/** Exit with a message: user error (bad config / arguments). */
#define ede_fatal(...) \
    ::ede::detail::fatalImpl(__FILE__, __LINE__, \
                             ::ede::detail::concat(__VA_ARGS__))

/** Non-fatal warning. */
#define ede_warn(...) \
    ::ede::detail::warnImpl(::ede::detail::concat(__VA_ARGS__))

/** Status message. */
#define ede_inform(...) \
    ::ede::detail::informImpl(::ede::detail::concat(__VA_ARGS__))

/** Panic unless a condition holds. */
#define ede_assert(cond, ...) \
    do { \
        if (!(cond)) { \
            ede_panic("assertion '" #cond "' failed: ", ##__VA_ARGS__); \
        } \
    } while (0)

#endif // EDE_COMMON_LOGGING_HH
