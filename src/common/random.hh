/**
 * @file
 * Deterministic pseudo-random number generator.
 *
 * Simulation runs must be exactly reproducible from a seed, so every
 * stochastic component (workload key choice, branch predictor warmup,
 * crash-injection points) draws from an explicitly seeded Rng instead
 * of a global generator.  The implementation is xoshiro256**, which is
 * fast and has no measurable bias for our use cases.
 */

#ifndef EDE_COMMON_RANDOM_HH
#define EDE_COMMON_RANDOM_HH

#include <cstdint>

namespace ede {

/** Seedable xoshiro256** generator. */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via splitmix64). */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
    {
        std::uint64_t x = seed;
        for (auto &word : state_) {
            // splitmix64 step to decorrelate nearby seeds.
            x += 0x9e3779b97f4a7c15ull;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). @pre bound > 0 */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Debiased multiply-shift (Lemire).
        std::uint64_t x = next();
        __uint128_t m = static_cast<__uint128_t>(x) * bound;
        return static_cast<std::uint64_t>(m >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    between(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    real()
    {
        return (next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability p. */
    bool chance(double p) { return real() < p; }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

} // namespace ede

#endif // EDE_COMMON_RANDOM_HH
