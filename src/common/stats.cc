#include "common/stats.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/logging.hh"

namespace ede {

double
Histogram::mean() const
{
    if (!total_)
        return 0.0;
    double sum = 0.0;
    for (std::size_t i = 0; i < buckets_.size(); ++i)
        sum += static_cast<double>(i) * buckets_[i];
    return sum / total_;
}

void
Histogram::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    total_ = 0;
    saturated_ = 0;
}

void
Histogram::merge(const Histogram &other)
{
    ede_assert(buckets_.size() == other.buckets_.size(),
               "histogram shape mismatch");
    for (std::size_t i = 0; i < buckets_.size(); ++i)
        buckets_[i] += other.buckets_[i];
    total_ += other.total_;
    saturated_ += other.saturated_;
}

void
Histogram::restore(std::vector<std::uint64_t> counts,
                   std::uint64_t saturated)
{
    ede_assert(counts.size() == buckets_.size(),
               "histogram restore shape mismatch: ", counts.size(),
               " != ", buckets_.size());
    buckets_ = std::move(counts);
    total_ = 0;
    for (std::uint64_t c : buckets_)
        total_ += c;
    saturated_ = saturated;
}

Distribution::Distribution(std::uint64_t max_value,
                           std::uint64_t bucket_width)
    : max_(max_value), width_(bucket_width ? bucket_width : 1),
      buckets_(max_value / (bucket_width ? bucket_width : 1) + 1, 0)
{
}

void
Distribution::sample(std::uint64_t value)
{
    value = std::min(value, max_);
    ++buckets_[value / width_];
    sum_ += value;
    ++total_;
}

std::uint64_t
Distribution::bucketHi(std::size_t i) const
{
    return std::min(max_, (i + 1) * width_ - 1);
}

double
Distribution::fraction(std::size_t i) const
{
    return total_ ? static_cast<double>(buckets_.at(i)) / total_ : 0.0;
}

double
Distribution::mean() const
{
    return total_ ? static_cast<double>(sum_) / total_ : 0.0;
}

void
Distribution::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    sum_ = 0;
    total_ = 0;
}

void
Distribution::restore(std::vector<std::uint64_t> counts,
                      std::uint64_t sum)
{
    ede_assert(counts.size() == buckets_.size(),
               "distribution restore shape mismatch: ", counts.size(),
               " != ", buckets_.size());
    buckets_ = std::move(counts);
    sum_ = sum;
    total_ = 0;
    for (std::uint64_t c : buckets_)
        total_ += c;
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values) {
        ede_assert(v > 0.0, "geomean requires positive values, got ", v);
        log_sum += std::log(v);
    }
    return std::exp(log_sum / values.size());
}

double
mean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum / values.size();
}

TextTable::TextTable(std::vector<std::string> header)
{
    rows_.push_back(std::move(header));
}

void
TextTable::addRow(std::vector<std::string> row)
{
    ede_assert(row.size() == rows_.front().size(),
               "row width ", row.size(), " != header width ",
               rows_.front().size());
    rows_.push_back(std::move(row));
}

std::string
TextTable::str() const
{
    std::vector<std::size_t> widths(rows_.front().size(), 0);
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    std::ostringstream os;
    for (std::size_t r = 0; r < rows_.size(); ++r) {
        for (std::size_t c = 0; c < rows_[r].size(); ++c) {
            if (c)
                os << "  ";
            os << rows_[r][c];
            for (std::size_t pad = rows_[r][c].size(); pad < widths[c];
                 ++pad) {
                os << ' ';
            }
        }
        os << '\n';
        if (r == 0) {
            std::size_t line = 0;
            for (std::size_t c = 0; c < widths.size(); ++c)
                line += widths[c] + (c ? 2 : 0);
            os << std::string(line, '-') << '\n';
        }
    }
    return os.str();
}

std::string
fmtDouble(double v, int digits)
{
    std::ostringstream os;
    os.setf(std::ios::fixed);
    os.precision(digits);
    os << v;
    return os.str();
}

std::string
fmtPercent(double fraction, int digits)
{
    return fmtDouble(fraction * 100.0, digits) + "%";
}

} // namespace ede
