/**
 * @file
 * Statistics toolkit used by the simulator and the benchmark harness.
 *
 * The paper reports three kinds of data we need to regenerate:
 *  - scalar counters (cycles, instructions, stalls),
 *  - small integer histograms (instructions issued per cycle, Fig. 11),
 *  - occupancy distributions (pending NVM writes, Fig. 10).
 */

#ifndef EDE_COMMON_STATS_HH
#define EDE_COMMON_STATS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace ede {

/**
 * Histogram over a small dense integer domain [0, size).
 *
 * Samples above the top bucket are clamped into it (with a saturation
 * count kept so tests can detect unexpected clamping).
 */
class Histogram
{
  public:
    /** @param size number of buckets; domain is [0, size). */
    explicit Histogram(std::size_t size = 0) : buckets_(size, 0) {}

    /** Record one observation of @p value. */
    void
    sample(std::uint64_t value)
    {
        if (buckets_.empty())
            return;
        if (value >= buckets_.size()) {
            ++saturated_;
            value = buckets_.size() - 1;
        }
        ++buckets_[value];
        ++total_;
    }

    /**
     * Record @p weight observations of @p value at once.  Identical
     * to calling sample(value) @p weight times; the skip-ahead cycle
     * loop uses this to replay the issue-width-0 samples of cycles it
     * jumped over.
     */
    void
    sample(std::uint64_t value, std::uint64_t weight)
    {
        if (buckets_.empty() || weight == 0)
            return;
        if (value >= buckets_.size()) {
            saturated_ += weight;
            value = buckets_.size() - 1;
        }
        buckets_[value] += weight;
        total_ += weight;
    }

    /** Raw count in bucket @p i. */
    std::uint64_t count(std::size_t i) const { return buckets_.at(i); }

    /** Fraction of all samples that fell in bucket @p i. */
    double
    fraction(std::size_t i) const
    {
        return total_ ? static_cast<double>(buckets_.at(i)) / total_ : 0.0;
    }

    /** Mean of the recorded values. */
    double mean() const;

    /** Total number of samples. */
    std::uint64_t totalSamples() const { return total_; }

    /** Number of samples clamped into the top bucket. */
    std::uint64_t saturated() const { return saturated_; }

    /** Number of buckets. */
    std::size_t size() const { return buckets_.size(); }

    /** Reset all counts. */
    void reset();

    /** Accumulate another histogram of the same shape into this one. */
    void merge(const Histogram &other);

    /** Raw bucket counts (snapshot serialization). */
    const std::vector<std::uint64_t> &counts() const { return buckets_; }

    /**
     * Rebuild from serialized state.  total is recomputed as the sum
     * of @p counts (the invariant sample() maintains).
     */
    void restore(std::vector<std::uint64_t> counts,
                 std::uint64_t saturated);

  private:
    std::vector<std::uint64_t> buckets_;
    std::uint64_t total_ = 0;
    std::uint64_t saturated_ = 0;
};

/**
 * Distribution over a wider integer range, bucketed by a fixed width.
 *
 * Used for the Fig. 10 pending-NVM-writes distribution: domain
 * [0, 128], bucket width selectable for presentation.
 */
class Distribution
{
  public:
    /**
     * @param max_value largest representable value (inclusive)
     * @param bucket_width values per bucket
     */
    Distribution(std::uint64_t max_value = 0, std::uint64_t bucket_width = 1);

    /** Record one observation. Values above max_value are clamped. */
    void sample(std::uint64_t value);

    /** Number of buckets. */
    std::size_t numBuckets() const { return buckets_.size(); }

    /** Inclusive lower bound of bucket @p i. */
    std::uint64_t bucketLo(std::size_t i) const { return i * width_; }

    /** Inclusive upper bound of bucket @p i (clamped to max). */
    std::uint64_t bucketHi(std::size_t i) const;

    /** Raw count in bucket @p i. */
    std::uint64_t count(std::size_t i) const { return buckets_.at(i); }

    /** Fraction of samples in bucket @p i. */
    double fraction(std::size_t i) const;

    /** Mean of the recorded values. */
    double mean() const;

    /** Total samples. */
    std::uint64_t totalSamples() const { return total_; }

    /** Reset all counts. */
    void reset();

    /** @name Snapshot serialization access. */
    /// @{
    std::uint64_t maxValue() const { return max_; }
    std::uint64_t bucketWidth() const { return width_; }
    const std::vector<std::uint64_t> &counts() const { return buckets_; }
    std::uint64_t sampleSum() const { return sum_; }

    /**
     * Rebuild from serialized state; the geometry must match this
     * instance's construction parameters.  total is recomputed as
     * the sum of @p counts.
     */
    void restore(std::vector<std::uint64_t> counts, std::uint64_t sum);
    /// @}

  private:
    std::uint64_t max_ = 0;
    std::uint64_t width_ = 1;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t sum_ = 0;
    std::uint64_t total_ = 0;
};

/** Geometric mean of a list of strictly positive values. */
double geomean(const std::vector<double> &values);

/** Arithmetic mean; zero for an empty list. */
double mean(const std::vector<double> &values);

/**
 * Minimal fixed-width text table used by the bench binaries so every
 * reproduced figure/table prints in a uniform, diffable format.
 */
class TextTable
{
  public:
    /** @param header column titles */
    explicit TextTable(std::vector<std::string> header);

    /** Append a row; must have as many cells as the header. */
    void addRow(std::vector<std::string> row);

    /** Render with aligned columns. */
    std::string str() const;

  private:
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with fixed precision (default 3 digits). */
std::string fmtDouble(double v, int digits = 3);

/** Format a fraction as a percentage string, e.g. "12.3%". */
std::string fmtPercent(double fraction, int digits = 1);

} // namespace ede

#endif // EDE_COMMON_STATS_HH
