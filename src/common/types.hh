/**
 * @file
 * Fundamental scalar types shared by every EDE module.
 *
 * The simulator measures time in core clock cycles ("Cycle") and
 * identifies dynamic instructions by a monotonically increasing
 * sequence number ("SeqNum").  Memory is byte addressable with 64-bit
 * addresses ("Addr").
 */

#ifndef EDE_COMMON_TYPES_HH
#define EDE_COMMON_TYPES_HH

#include <cstdint>
#include <limits>

namespace ede {

/** Core clock cycle count. */
using Cycle = std::uint64_t;

/** Byte address in the simulated physical address space. */
using Addr = std::uint64_t;

/** Dynamic instruction sequence number (1-based; 0 means "none"). */
using SeqNum = std::uint64_t;

/** Architectural register index. */
using RegIndex = std::uint8_t;

/** Sentinel for "no cycle" / "not yet scheduled". */
inline constexpr Cycle kNoCycle = std::numeric_limits<Cycle>::max();

/** Sentinel for "no sequence number". */
inline constexpr SeqNum kNoSeq = 0;

/** Sentinel for "no address". */
inline constexpr Addr kNoAddr = std::numeric_limits<Addr>::max();

/** Sentinel for "no register operand". */
inline constexpr RegIndex kNoReg = 0xff;

/** Number of general purpose registers modelled (x0..x30 + xzr). */
inline constexpr int kNumArchRegs = 32;

/** Index of the always-zero register (xzr). */
inline constexpr RegIndex kZeroReg = 31;

} // namespace ede

#endif // EDE_COMMON_TYPES_HH
