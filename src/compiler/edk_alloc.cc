#include "compiler/edk_alloc.hh"

#include <array>
#include <map>

#include "common/logging.hh"

namespace ede {

namespace {

/** Where and how a virtual key is consumed. */
struct VKeyInfo
{
    std::size_t lastUse = 0;        ///< Last consumer position.
    std::vector<std::size_t> uses;  ///< All consumer positions.
    std::vector<bool> useIsLoad;    ///< Consumer observes at execute.
};

/** Per-physical-key state during the scan. */
struct PhysState
{
    VKey owner = 0;   ///< 0 = free.
};

} // namespace

EdkAllocResult
allocateEdks(const std::vector<VKeyedInst> &program)
{
    // Pass 1: live ranges of every virtual key.
    std::map<VKey, VKeyInfo> info;
    for (std::size_t i = 0; i < program.size(); ++i) {
        const VKeyedInst &in = program[i];
        auto note_use = [&](VKey v) {
            if (!v)
                return;
            VKeyInfo &k = info[v];
            k.lastUse = i;
            k.uses.push_back(i);
            k.useIsLoad.push_back(opIsLoad(in.si.op));
        };
        note_use(in.vuse);
        note_use(in.vuse2);
        if (in.vdef)
            info[in.vdef]; // Ensure the entry exists.
    }

    EdkAllocResult result;
    std::array<PhysState, kNumEdks> phys{};  // Index 1..15 used.
    std::map<VKey, Edk> assignment;          // Live vkey -> phys.
    std::map<VKey, bool> evicted;

    auto remaining_use_is_load = [&](VKey v, std::size_t after) {
        const VKeyInfo &k = info.at(v);
        for (std::size_t u = 0; u < k.uses.size(); ++u) {
            if (k.uses[u] > after && k.useIsLoad[u])
                return true;
        }
        return false;
    };
    auto next_use_after = [&](VKey v, std::size_t after) {
        const VKeyInfo &k = info.at(v);
        for (std::size_t pos : k.uses) {
            if (pos > after)
                return pos;
        }
        return program.size();
    };

    for (std::size_t i = 0; i < program.size(); ++i) {
        const VKeyedInst &in = program[i];
        StaticInst out = in.si;
        out.edkDef = kZeroEdk;
        out.edkUse = kZeroEdk;
        out.edkUse2 = kZeroEdk;

        // Consumers first (Section IV-A1 ordering).
        auto lower_use = [&](VKey v, Edk &field) {
            if (!v)
                return;
            auto it = assignment.find(v);
            if (it != assignment.end()) {
                field = it->second;
            } else {
                // Evicted: ordering was made architectural by the
                // WAIT/DSB inserted at eviction time.
                ede_assert(evicted.count(v),
                           "consumer of an unknown virtual key ", v);
            }
        };
        lower_use(in.vuse, out.edkUse);
        lower_use(in.vuse2, out.edkUse2);

        // Free keys whose ranges have closed.
        for (auto it = assignment.begin(); it != assignment.end();) {
            const VKeyInfo &k = info.at(it->first);
            if (k.lastUse <= i) {
                phys[it->second].owner = 0;
                it = assignment.erase(it);
            } else {
                ++it;
            }
        }

        // Producer definition.
        if (in.vdef) {
            // A redefinition of a live virtual key keeps its slot.
            Edk chosen = kZeroEdk;
            if (auto it = assignment.find(in.vdef);
                it != assignment.end()) {
                chosen = it->second;
            }
            if (!chosen) {
                for (Edk k = 1; k < kNumEdks; ++k) {
                    if (phys[k].owner == 0) {
                        chosen = k;
                        break;
                    }
                }
            }
            if (!chosen) {
                // Spill: end the range whose next use is farthest,
                // among ranges with only store-class consumers left.
                VKey victim = 0;
                std::size_t best = 0;
                for (const auto &[v, k] : assignment) {
                    if (remaining_use_is_load(v, i))
                        continue;
                    const std::size_t nu = next_use_after(v, i);
                    if (nu >= best) {
                        best = nu;
                        victim = v;
                    }
                }
                if (victim) {
                    const Edk freed = assignment.at(victim);
                    StaticInst wait;
                    wait.op = Op::WaitKey;
                    wait.edkDef = freed;
                    wait.edkUse = freed;
                    result.code.push_back(wait);
                    result.origin.push_back(
                        EdkAllocResult::kInserted);
                    ++result.waitKeysInserted;
                    assignment.erase(victim);
                    evicted[victim] = true;
                    phys[freed].owner = 0;
                    chosen = freed;
                } else {
                    // Every live range still has load consumers:
                    // fall back to the fence EDE exists to avoid.
                    StaticInst dsb;
                    dsb.op = Op::DsbSy;
                    result.code.push_back(dsb);
                    result.origin.push_back(
                        EdkAllocResult::kInserted);
                    ++result.fencesInserted;
                    for (const auto &[v, k] : assignment) {
                        evicted[v] = true;
                        phys[k].owner = 0;
                    }
                    assignment.clear();
                    chosen = 1;
                }
            }
            phys[chosen].owner = in.vdef;
            assignment[in.vdef] = chosen;
            out.edkDef = chosen;
        }

        result.code.push_back(out);
        result.origin.push_back(i);
    }
    return result;
}

} // namespace ede
