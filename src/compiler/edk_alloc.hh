/**
 * @file
 * EDK virtualization (Section IX-A): compiler-side assignment of
 * physical Execution Dependence Keys.
 *
 * A compiler IR can carry unbounded *virtual* keys; the hardware has
 * fifteen.  This pass maps virtual keys onto EDK #1..#15 with a
 * linear scan over live ranges (a virtual key is live from its
 * producer to its last consumer), reusing keys whose ranges have
 * closed -- exactly the register-allocation analogy the paper draws.
 *
 * When more than fifteen ranges overlap, a range must be ended
 * early.  Ending the range of key K is made sound by inserting
 * WAIT_KEY (K): every instruction younger than the WAIT retires
 * after K's producers complete, so the dropped consumer links are
 * subsumed by retirement order -- valid for store-class consumers,
 * whose effects are post-retirement.  A range that still has *load*
 * consumers (which observe memory at execute, Section VIII-C) cannot
 * be ended that way; if only such ranges remain, the allocator falls
 * back to a DSB SY, the catch-all the extension exists to avoid --
 * and counts it, so callers can see the spill pressure.
 */

#ifndef EDE_COMPILER_EDK_ALLOC_HH
#define EDE_COMPILER_EDK_ALLOC_HH

#include <cstdint>
#include <vector>

#include "isa/inst.hh"

namespace ede {

/** A virtual key name; 0 means "none". */
using VKey = std::uint32_t;

/** One IR instruction: opcode/operands plus virtual key operands. */
struct VKeyedInst
{
    StaticInst si;    ///< Physical key fields are ignored on input.
    VKey vdef = 0;
    VKey vuse = 0;
    VKey vuse2 = 0;   ///< JOIN only.
};

/** Allocation outcome. */
struct EdkAllocResult
{
    /** The lowered program: physical keys, plus inserted spill ops. */
    std::vector<StaticInst> code;

    /**
     * For each output instruction, the index of the input
     * instruction it lowers (kInserted for spill WAIT_KEY/DSB ops).
     */
    std::vector<std::size_t> origin;

    std::size_t waitKeysInserted = 0;
    std::size_t fencesInserted = 0;

    static constexpr std::size_t kInserted =
        static_cast<std::size_t>(-1);
};

/** Run the linear-scan allocation over @p program. */
EdkAllocResult allocateEdks(const std::vector<VKeyedInst> &program);

} // namespace ede

#endif // EDE_COMPILER_EDK_ALLOC_HH
