/**
 * @file
 * Cross-core WAIT-counter aggregation: the EDE ordering view that
 * spans the coherence point.
 *
 * Each core's private WaitCounters track its own post-retirement
 * window.  On a multi-core machine a WAIT_KEY/WAIT_ALL_KEYS must
 * additionally observe *other* cores' tracked instructions for the
 * named key: an EDK defined by a producer on core 0 and waited on by
 * core 1 only resolves once core 0's tagged stores/cleans have
 * completed at the coherence/persistence point.  CrossCoreOrdering
 * mirrors every core's enter/exit into per-core counter files and
 * answers "is any *remote* core still tracking this key?".
 *
 * The EDM stays strictly per-core: consumer srcID links are renamed
 * locally and never cross the coherence point (a remote producer
 * cannot appear in a local EDM).  Cross-core EDE semantics flow only
 * through the WAIT counters, which is also what keeps the protocol
 * deadlock-free -- counters only ever drain, they never wait.
 *
 * Single-core machines never construct this class, so the historical
 * single-core timing is untouched by the multi-core refactor.
 */

#ifndef EDE_CORE_CROSS_CORE_HH
#define EDE_CORE_CROSS_CORE_HH

#include <vector>

#include "core/wait_counters.hh"

namespace ede {

/** Shared WAIT-counter aggregation across all cores of a System. */
class CrossCoreOrdering
{
  public:
    explicit CrossCoreOrdering(unsigned coreCount)
        : perCore_(coreCount)
    {
        ede_assert(coreCount >= 1, "need at least one core");
    }

    /** Core @p core tracks an EDE instruction entering its window. */
    void
    enter(unsigned core, const StaticInst &si)
    {
        perCore_.at(core).enter(si);
    }

    /** Core @p core's tracked EDE instruction completed/squashed. */
    void
    exit(unsigned core, const StaticInst &si)
    {
        perCore_.at(core).exit(si);
    }

    /** True when no core other than @p core is tracking @p key. */
    bool
    remoteKeyClear(unsigned core, Edk key) const
    {
        if (!edkIsReal(key))
            return true;
        for (unsigned c = 0; c < perCore_.size(); ++c) {
            if (c != core && perCore_[c].keyCount(key) != 0)
                return false;
        }
        return true;
    }

    /** True when no core other than @p core is tracking anything. */
    bool
    remoteAllClear(unsigned core) const
    {
        for (unsigned c = 0; c < perCore_.size(); ++c) {
            if (c != core && perCore_[c].allCount() != 0)
                return false;
        }
        return true;
    }

    /** Per-core counter file (tests). */
    const WaitCounters &counters(unsigned core) const
    {
        return perCore_.at(core);
    }

    unsigned coreCount() const
    {
        return static_cast<unsigned>(perCore_.size());
    }

  private:
    std::vector<WaitCounters> perCore_;
};

} // namespace ede

#endif // EDE_CORE_CROSS_CORE_HH
