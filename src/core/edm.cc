#include "core/edm.hh"

namespace ede {

bool
EdmMap::empty() const
{
    for (SeqNum s : entries_)
        if (s != kNoSeq)
            return false;
    return true;
}

void
Edm::squashRestore(const std::vector<std::pair<Edk, SeqNum>> &survivors)
{
    // Safe under back-to-back squashes: nonspec_ only ever advances
    // at retirement and completion, never during recovery, so each
    // restore starts from a consistent architectural snapshot no
    // matter how recently the previous squash ran.  Survivors are
    // replayed in program order, so the youngest surviving definition
    // of a key wins -- matching what rename would have rebuilt.
    spec_ = nonspec_;
    for (const auto &[key, seq] : survivors)
        spec_.define(key, seq);
}

void
Edm::reset()
{
    spec_.reset();
    nonspec_.reset();
}

} // namespace ede
