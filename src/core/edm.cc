#include "core/edm.hh"

namespace ede {

bool
EdmMap::empty() const
{
    for (SeqNum s : entries_)
        if (s != kNoSeq)
            return false;
    return true;
}

void
Edm::squashRestore(const std::vector<std::pair<Edk, SeqNum>> &survivors)
{
    spec_ = nonspec_;
    for (const auto &[key, seq] : survivors)
        spec_.define(key, seq);
}

void
Edm::reset()
{
    spec_.reset();
    nonspec_.reset();
}

} // namespace ede
