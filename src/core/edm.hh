/**
 * @file
 * The Execution Dependence Map (EDM).
 *
 * The EDM holds EDK-to-instruction links (Section V-A): one slot per
 * real key (EDK #1..#15) containing the in-flight sequence number of
 * the most recent dependence producer of that key, or kNoSeq when the
 * producer has completed (or none was ever named).
 *
 * Two copies are kept, as the paper prescribes (Section V-A1):
 *  - the *speculative* map, read and updated at decode/rename;
 *  - the *non-speculative* map, updated at retirement.
 *
 * On a pipeline squash the speculative map is restored from the
 * non-speculative one and then repaired by replaying the definitions
 * of the surviving (unretired, older-than-the-squash) instructions in
 * program order -- the checkpoint-repair scheme of Hwu & Patt that
 * the paper cites for its register-map analogy.
 */

#ifndef EDE_CORE_EDM_HH
#define EDE_CORE_EDM_HH

#include <array>
#include <utility>
#include <vector>

#include "common/types.hh"
#include "isa/edk.hh"

namespace ede {

/** One architectural copy of the map. */
class EdmMap
{
  public:
    /** Producer currently linked to @p key (kNoSeq when empty). */
    SeqNum
    lookup(Edk key) const
    {
        return edkIsReal(key) ? entries_[key] : kNoSeq;
    }

    /** Record @p producer as the dependence source for @p key. */
    void
    define(Edk key, SeqNum producer)
    {
        if (edkIsReal(key))
            entries_[key] = producer;
    }

    /**
     * A producer completed: clear its entry if the map still points
     * at it (Section V-A: query, compare IDs, clear on match).
     * @return true when an entry was cleared.
     */
    bool
    clearIfMatch(Edk key, SeqNum producer)
    {
        if (edkIsReal(key) && entries_[key] == producer) {
            entries_[key] = kNoSeq;
            return true;
        }
        return false;
    }

    /** Empty every slot. */
    void reset() { entries_.fill(kNoSeq); }

    /** True when no key has an in-flight producer. */
    bool empty() const;

    bool operator==(const EdmMap &) const = default;

  private:
    std::array<SeqNum, kNumEdks> entries_{};
};

/** The speculative / non-speculative EDM pair. */
class Edm
{
  public:
    /** @name Front-end (decode/rename) interface: speculative map. */
    /// @{
    SeqNum specLookup(Edk key) const { return spec_.lookup(key); }
    void specDefine(Edk key, SeqNum producer) { spec_.define(key, producer); }
    /// @}

    /** Retirement updates the non-speculative map. */
    void
    retireDefine(Edk key, SeqNum producer)
    {
        nonspec_.define(key, producer);
    }

    /**
     * A dependence producer completed: clear matching entries in both
     * copies.
     */
    void
    complete(Edk key, SeqNum producer)
    {
        spec_.clearIfMatch(key, producer);
        nonspec_.clearIfMatch(key, producer);
    }

    /**
     * Squash recovery: restore the speculative map from the
     * non-speculative one, then replay the (key, seq) definitions of
     * the surviving in-flight instructions in program order.
     */
    void squashRestore(
        const std::vector<std::pair<Edk, SeqNum>> &survivors);

    /** Direct access for tests. */
    const EdmMap &spec() const { return spec_; }
    const EdmMap &nonspec() const { return nonspec_; }

    /** Reset both copies. */
    void reset();

  private:
    EdmMap spec_;
    EdmMap nonspec_;
};

} // namespace ede

#endif // EDE_CORE_EDM_HH
