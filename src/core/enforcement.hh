/**
 * @file
 * EDE enforcement point selection.
 *
 * The paper evaluates two hardware realizations (Section V-B): IQ
 * enforces execution dependences in the issue queue via an eDepReady
 * wakeup flag; WB lets consumers retire and gates their write-buffer
 * push on a srcID CAM match.  None disables EDE enforcement entirely
 * (used by the fence-based configurations, whose traces contain no
 * EDE instructions).
 */

#ifndef EDE_CORE_ENFORCEMENT_HH
#define EDE_CORE_ENFORCEMENT_HH

#include <string_view>

namespace ede {

/** Where execution dependences are enforced. */
enum class EnforceMode {
    None,  ///< No EDE hardware (fence-only configurations).
    IQ,    ///< Enforce at the issue queue (Section V-B1).
    WB,    ///< Enforce at the write buffer (Section V-B3 / V-D).
};

/** Printable name. */
constexpr std::string_view
enforceModeName(EnforceMode m)
{
    switch (m) {
      case EnforceMode::None: return "none";
      case EnforceMode::IQ: return "IQ";
      case EnforceMode::WB: return "WB";
    }
    return "<bad-mode>";
}

} // namespace ede

#endif // EDE_CORE_ENFORCEMENT_HH
