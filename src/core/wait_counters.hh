/**
 * @file
 * Per-EDK and global in-flight EDE instruction counters backing
 * WAIT_KEY and WAIT_ALL_KEYS (Section V-D).
 *
 * Stores, writebacks and JOINs carry their key tags into the write
 * buffer; the counters are incremented when such an instruction
 * enters the tracked window and decremented when it completes.  A
 * WAIT instruction may retire only when the matching counter (or the
 * global counter, for WAIT_ALL_KEYS) is zero.  Because retirement is
 * in order, every counted instruction is older than the waiting one.
 */

#ifndef EDE_CORE_WAIT_COUNTERS_HH
#define EDE_CORE_WAIT_COUNTERS_HH

#include <array>
#include <cstdint>

#include "common/logging.hh"
#include "isa/edk.hh"
#include "isa/inst.hh"

namespace ede {

/** The WAIT_KEY / WAIT_ALL_KEYS counter file. */
class WaitCounters
{
  public:
    /** Track an EDE instruction entering the monitored window. */
    void
    enter(const StaticInst &si)
    {
        bump(si, +1);
    }

    /** An EDE instruction completed (or was squashed pre-entry). */
    void
    exit(const StaticInst &si)
    {
        bump(si, -1);
    }

    /** True when no tracked instruction names @p key. */
    bool
    keyClear(Edk key) const
    {
        return edkIsReal(key) ? perKey_[key] == 0 : true;
    }

    /** True when no tracked EDE instruction is in flight at all. */
    bool allClear() const { return all_ == 0; }

    /** Tracked-instruction count for @p key (tests). */
    std::uint32_t keyCount(Edk key) const { return perKey_.at(key); }

    /** Global tracked-instruction count (tests). */
    std::uint32_t allCount() const { return all_; }

    /** Clear every counter. */
    void
    reset()
    {
        perKey_.fill(0);
        all_ = 0;
    }

  private:
    void
    bump(const StaticInst &si, int delta)
    {
        if (!si.usesEde())
            return;
        bool counted = false;
        // A key named in several fields of one instruction is counted
        // once per field; symmetric on enter/exit so the zero test is
        // still exact.
        for (Edk k : {si.edkDef, si.edkUse, si.edkUse2}) {
            if (edkIsReal(k)) {
                ede_assert(delta > 0 || perKey_[k] > 0,
                           "wait counter underflow on key ",
                           static_cast<int>(k));
                perKey_[k] += delta;
                counted = true;
            }
        }
        if (counted) {
            ede_assert(delta > 0 || all_ > 0,
                       "global wait counter underflow");
            all_ += delta;
        }
    }

    std::array<std::uint32_t, kNumEdks> perKey_{};
    std::uint32_t all_ = 0;
};

} // namespace ede

#endif // EDE_CORE_WAIT_COUNTERS_HH
