#include "exp/fingerprint.hh"

#include <cstring>

namespace ede {
namespace exp {

void
FingerprintHasher::bytes(const void *data, std::size_t len)
{
    const auto *p = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < len; ++i) {
        hash_ ^= p[i];
        hash_ *= 0x100000001b3ull;  // FNV prime.
    }
}

void
FingerprintHasher::field(std::string_view name, std::uint64_t value)
{
    bytes(name.data(), name.size());
    bytes(&value, sizeof(value));
}

void
FingerprintHasher::field(std::string_view name, bool value)
{
    field(name, static_cast<std::uint64_t>(value ? 1 : 0));
}

void
FingerprintHasher::field(std::string_view name, double value)
{
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(value));
    std::memcpy(&bits, &value, sizeof(bits));
    field(name, bits);
}

void
FingerprintHasher::field(std::string_view name, std::string_view value)
{
    bytes(name.data(), name.size());
    field("len", static_cast<std::uint64_t>(value.size()));
    bytes(value.data(), value.size());
}

namespace {

void
hashCoreParams(FingerprintHasher &h, const CoreParams &c)
{
    h.field("core.fetchWidth", static_cast<std::uint64_t>(c.fetchWidth));
    h.field("core.issueWidth", static_cast<std::uint64_t>(c.issueWidth));
    h.field("core.retireWidth",
            static_cast<std::uint64_t>(c.retireWidth));
    h.field("core.robSize", static_cast<std::uint64_t>(c.robSize));
    h.field("core.iqSize", static_cast<std::uint64_t>(c.iqSize));
    h.field("core.lqSize", static_cast<std::uint64_t>(c.lqSize));
    h.field("core.sqSize", static_cast<std::uint64_t>(c.sqSize));
    h.field("core.wbSize", static_cast<std::uint64_t>(c.wbSize));
    h.field("core.wbDrainPerCycle",
            static_cast<std::uint64_t>(c.wbDrainPerCycle));
    h.field("core.mispredictPenalty", c.mispredictPenalty);
    h.field("core.aluUnits", static_cast<std::uint64_t>(c.aluUnits));
    h.field("core.mulUnits", static_cast<std::uint64_t>(c.mulUnits));
    h.field("core.branchUnits",
            static_cast<std::uint64_t>(c.branchUnits));
    h.field("core.loadUnits", static_cast<std::uint64_t>(c.loadUnits));
    h.field("core.storeUnits",
            static_cast<std::uint64_t>(c.storeUnits));
    h.field("core.aluLatency", c.aluLatency);
    h.field("core.mulLatency", c.mulLatency);
    h.field("core.branchLatency", c.branchLatency);
    h.field("core.agenLatency", c.agenLatency);
    h.field("core.forwardLatency", c.forwardLatency);
    h.field("core.ede", static_cast<std::uint64_t>(c.ede));
    h.field("core.dmbStCoversCvap", c.dmbStCoversCvap);
    h.field("core.predictorEntries",
            static_cast<std::uint64_t>(c.predictorEntries));
    h.field("core.watchdogCycles", c.watchdogCycles);
    h.field("core.maxCycles", c.maxCycles);
    h.field("core.edkStallCycles", c.edkStallCycles);
    h.field("core.edkRecoveryMode",
            static_cast<std::uint64_t>(c.edkRecoveryMode));
}

void
hashCacheParams(FingerprintHasher &h, std::string_view prefix,
                const CacheParams &c)
{
    const std::string p(prefix);
    h.field(p + ".sizeBytes", static_cast<std::uint64_t>(c.sizeBytes));
    h.field(p + ".assoc", static_cast<std::uint64_t>(c.assoc));
    h.field(p + ".lineBytes", static_cast<std::uint64_t>(c.lineBytes));
    h.field(p + ".latency", c.latency);
    h.field(p + ".ports", static_cast<std::uint64_t>(c.ports));
    h.field(p + ".mshrs", static_cast<std::uint64_t>(c.mshrs));
    h.field(p + ".inputQueue",
            static_cast<std::uint64_t>(c.inputQueue));
}

void
hashMemParams(FingerprintHasher &h, const MemSystemParams &m)
{
    hashCacheParams(h, "l1d", m.l1d);
    hashCacheParams(h, "l2", m.l2);
    hashCacheParams(h, "l3", m.l3);
    h.field("dram.banks", static_cast<std::uint64_t>(m.dram.banks));
    h.field("dram.rowBytes",
            static_cast<std::uint64_t>(m.dram.rowBytes));
    h.field("dram.rowHit", m.dram.rowHit);
    h.field("dram.rowMiss", m.dram.rowMiss);
    h.field("dram.busBurst", m.dram.busBurst);
    h.field("dram.queueDepth",
            static_cast<std::uint64_t>(m.dram.queueDepth));
    h.field("nvm.readLatency", m.nvm.readLatency);
    h.field("nvm.writeLatency", m.nvm.writeLatency);
    h.field("nvm.bufferAccept", m.nvm.bufferAccept);
    h.field("nvm.bufferReadHit", m.nvm.bufferReadHit);
    h.field("nvm.lineBytes",
            static_cast<std::uint64_t>(m.nvm.lineBytes));
    h.field("nvm.bufferSlots",
            static_cast<std::uint64_t>(m.nvm.bufferSlots));
    h.field("nvm.mediaWriters",
            static_cast<std::uint64_t>(m.nvm.mediaWriters));
    h.field("nvm.mediaReaders",
            static_cast<std::uint64_t>(m.nvm.mediaReaders));
    h.field("nvm.readQueueDepth",
            static_cast<std::uint64_t>(m.nvm.readQueueDepth));
    h.field("map.dramBytes", m.map.dramBytes);
    h.field("map.nvmBytes", m.map.nvmBytes);
}

} // namespace

std::uint64_t
fingerprintPoint(const ExperimentPoint &point)
{
    FingerprintHasher h;
    h.field("schema", static_cast<std::uint64_t>(kResultSchemaVersion));
    h.field("app", appName(point.app));
    h.field("config", configName(point.config));
    h.field("spec.txns", static_cast<std::uint64_t>(point.spec.txns));
    h.field("spec.opsPerTxn",
            static_cast<std::uint64_t>(point.spec.opsPerTxn));
    h.field("spec.seed", point.spec.seed);
    h.field("appParams.seed", point.appParams.seed);
    h.field("appParams.arrayLen",
            static_cast<std::uint64_t>(point.appParams.arrayLen));
    hashCoreParams(h, point.simParams.core);
    hashMemParams(h, point.simParams.mem);
    h.field("coreCount",
            static_cast<std::uint64_t>(point.simParams.coreCount));
    // Concurrent-kernel cells only: hashing the fields exclusively
    // when set keeps every single-app fingerprint unchanged.
    if (point.conc) {
        h.field("conc", true);
        h.field("conc.app", concAppName(point.concApp));
        h.field("conc.opsPerCore",
                static_cast<std::uint64_t>(point.concOpsPerCore));
        h.field("conc.seed", point.concSeed);
    }
    // Traffic cells only, same gating rationale as above.
    if (point.traffic) {
        const traffic::TrafficPlan &tp = point.trafficPlan;
        h.field("traffic", true);
        h.field("traffic.streams",
                static_cast<std::uint64_t>(tp.streams));
        h.field("traffic.txnsPerStream",
                static_cast<std::uint64_t>(tp.txnsPerStream));
        h.field("traffic.opsPerTxn",
                static_cast<std::uint64_t>(tp.opsPerTxn));
        h.field("traffic.readFraction", tp.mix.readFraction);
        h.field("traffic.zipfTheta", tp.mix.zipfTheta);
        h.field("traffic.keys", tp.mix.keys);
        h.field("traffic.arrival",
                traffic::arrivalKindName(tp.arrival.kind));
        h.field("traffic.meanGap", tp.arrival.meanGap);
        h.field("traffic.burstFactor", tp.arrival.burstFactor);
        h.field("traffic.pSwitch", tp.arrival.pSwitch);
        h.field("traffic.poolSize",
                static_cast<std::uint64_t>(tp.arrival.poolSize));
        h.field("traffic.thinkTime", tp.arrival.thinkTime);
        h.field("traffic.totalTxns",
                static_cast<std::uint64_t>(tp.totalTxns));
        h.field("traffic.warmupPermille",
                static_cast<std::uint64_t>(tp.warmupPermille));
        h.field("traffic.latencyWindows",
                static_cast<std::uint64_t>(tp.latencyWindows));
        // The whole overload policy is hashed unconditionally inside
        // the traffic block: every knob can change the overload
        // records a snapshot carries.
        const traffic::OverloadPolicy &pol = tp.policy;
        h.field("traffic.admission",
                traffic::admissionKindName(pol.admission));
        h.field("traffic.queueDepth",
                static_cast<std::uint64_t>(pol.queueDepth));
        h.field("traffic.deadline", pol.deadline);
        h.field("traffic.tokenRate",
                static_cast<std::uint64_t>(pol.tokenRatePerKCycle));
        h.field("traffic.tokenBurst",
                static_cast<std::uint64_t>(pol.tokenBurst));
        h.field("traffic.retryBudget",
                static_cast<std::uint64_t>(pol.retryBudget));
        h.field("traffic.retryBackoffBase", pol.retryBackoffBase);
        h.field("traffic.retryBackoffCap", pol.retryBackoffCap);
        h.field("traffic.degrade", pol.degrade);
        h.field("traffic.shedWindow",
                static_cast<std::uint64_t>(pol.shedWindow));
        h.field("traffic.degradePermille",
                static_cast<std::uint64_t>(pol.degradePermille));
        h.field("traffic.recoverPermille",
                static_cast<std::uint64_t>(pol.recoverPermille));
        h.field("traffic.seed", tp.seed);
    }
    return h.value();
}

std::string
fingerprintHex(std::uint64_t fingerprint)
{
    static const char *digits = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i) {
        out[i] = digits[fingerprint & 0xf];
        fingerprint >>= 4;
    }
    return out;
}

} // namespace exp
} // namespace ede
