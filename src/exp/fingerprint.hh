/**
 * @file
 * Content-addressed fingerprints for experiment points.
 *
 * The result cache keys a RunResult snapshot by a hash over *every
 * simulation input*: application, configuration, RunSpec, AppParams,
 * the full SimParams tree, and a schema version.  Any parameter an
 * ablation can tweak is hashed by (name, value) pair, so adding,
 * reordering or changing a field changes the fingerprint and old
 * snapshots simply stop matching -- there is no explicit
 * invalidation step.
 *
 * kResultSchemaVersion must be bumped whenever the *simulator's
 * behaviour* or the snapshot layout changes, since the fingerprint
 * cannot see code.
 */

#ifndef EDE_EXP_FINGERPRINT_HH
#define EDE_EXP_FINGERPRINT_HH

#include <cstdint>
#include <string>
#include <string_view>

#include "exp/plan.hh"

namespace ede {
namespace exp {

/**
 * Cached-result schema/behaviour version.  Bump on any change to the
 * simulator's timing behaviour, the statistics it reports, or the
 * snapshot serialization in result_cache.cc.
 *
 * v3: skip-ahead scheduler landed (cycle counts are bit-identical to
 * the reference loop by construction, but stale v2 snapshots predate
 * the differential harness) and BENCH_*.json artifacts gained the
 * per-cell "host_perf" object.  The ticking mode and the host-side
 * profile are deliberately NOT part of the fingerprint: they must not
 * affect simulated results, and caching host wall-clock times would
 * break the racing-writers-produce-identical-bytes invariant.
 *
 * v4: process-isolated workers landed.  BENCH_*.json gained the
 * top-level "failures" array (quarantined cells) and the "replayed"
 * cache tally; sweep journals embed this version through the sweep
 * id.  The isolation mode, limits and retry policy are NOT part of
 * the fingerprint: an isolated cell is bit-identical to an inline
 * one by construction (the snapshot serialization *is* the wire
 * format between worker and parent).
 *
 * v5: persist events carry the originating trace index, torn persists
 * generalized from "last accepted event" to any frontier event of the
 * durable set (seed-chosen), and the model-check artifacts landed
 * (BENCH_model_check.json with the durable-set lattice coverage).
 * Campaign classifications can differ from v4 at torn crash points,
 * so v4 journals/snapshots must not replay.
 *
 * v6: the machine became an N-core System (shared coherence point at
 * the L2, per-core private L1s / write buffers / EDMs, cross-core
 * WAIT counters).  SimParams gained coreCount, which is now hashed;
 * RunResult snapshots gained the per-core breakdown and the
 * coherence counters, and CacheStats gained the snoop tallies.  A
 * coreCount=1 machine is bit-identical to v5 timing by construction
 * (the differential gate in bench/fig_scaling enforces it), but the
 * snapshot layout changed, so v5 snapshots must not replay.
 *
 * v7: the open-loop traffic harness landed.  RunResult snapshots
 * gained the traffic section (aggregate + per-stream exact
 * p50/p99/p99.9 open and service latency records), BENCH_*.json
 * cells gained the "traffic" object, and ExperimentPoint gained the
 * gated traffic-plan fields.  Timing of non-traffic cells is
 * unchanged, but the snapshot layout grew, so v6 snapshots must not
 * replay.
 *
 * v8: the overload-control layer landed.  TrafficPlan gained the
 * exact-total/warmup/window knobs, the closed-pool arrival kind and
 * the full OverloadPolicy (admission, finite queue, retry budget,
 * degradation ladder) -- all hashed inside the gated traffic block.
 * Traffic snapshots gained the warmup/steady split, the per-window
 * series, per-stream shed/retry/failure counters and the overload
 * section, and BENCH_*.json traffic objects grew the same fields
 * (with count=0 summaries now emitting null percentiles).  Timing is
 * unchanged, but the traffic snapshot layout grew, so v7 snapshots
 * must not replay.
 */
inline constexpr std::uint32_t kResultSchemaVersion = 8;

/** FNV-1a over a stream of tagged fields. */
class FingerprintHasher
{
  public:
    /** Hash one named integer field. */
    void field(std::string_view name, std::uint64_t value);

    /** Hash one named boolean field. */
    void field(std::string_view name, bool value);

    /** Hash one named floating-point field (by bit pattern). */
    void field(std::string_view name, double value);

    /** Hash one named string field. */
    void field(std::string_view name, std::string_view value);

    /** The 64-bit digest so far. */
    std::uint64_t value() const { return hash_; }

  private:
    void bytes(const void *data, std::size_t len);

    std::uint64_t hash_ = 0xcbf29ce484222325ull;  // FNV offset basis.
};

/** Fingerprint of everything that determines a point's RunResult. */
std::uint64_t fingerprintPoint(const ExperimentPoint &point);

/** Fixed-width lowercase hex rendering (cache file names). */
std::string fingerprintHex(std::uint64_t fingerprint);

} // namespace exp
} // namespace ede

#endif // EDE_EXP_FINGERPRINT_HH
