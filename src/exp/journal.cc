#include "exp/journal.hh"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/logging.hh"
#include "exp/fingerprint.hh"

namespace ede {
namespace exp {

namespace {

constexpr const char *kJournalMagic = "ede-exp-journal-v1";

/** FNV-1a over the record body (the line before " crc <hex>"). */
std::uint64_t
lineChecksum(const std::string &body)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (unsigned char c : body) {
        h ^= c;
        h *= 0x100000001b3ull;
    }
    return h;
}

bool
isPlainToken(char c)
{
    return c > 0x20 && c != '%' && c != 0x7f;
}

} // namespace

std::string
journalEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (isPlainToken(c)) {
            out += c;
        } else {
            char buf[4];
            std::snprintf(buf, sizeof(buf), "%%%02x",
                          static_cast<unsigned char>(c));
            out += buf;
        }
    }
    // An empty field still needs a token on the line.
    return out.empty() ? std::string("%") : out;
}

std::string
journalUnescape(const std::string &s)
{
    if (s == "%")
        return {};
    std::string out;
    out.reserve(s.size());
    for (std::size_t i = 0; i < s.size(); ++i) {
        if (s[i] == '%' && i + 2 < s.size()) {
            const std::string hex = s.substr(i + 1, 2);
            out += static_cast<char>(
                std::strtoul(hex.c_str(), nullptr, 16));
            i += 2;
        } else {
            out += s[i];
        }
    }
    return out;
}

SweepJournal::SweepJournal(std::string path, std::uint64_t sweepId,
                           std::size_t points, bool resume)
    : path_(std::move(path))
{
    const std::string header_body =
        std::string(kJournalMagic) + " sweep " +
        fingerprintHex(sweepId) + " points " + std::to_string(points);

    bool compatible = false;
    if (resume) {
        std::ifstream in(path_, std::ios::binary);
        std::string line;
        bool first = true;
        while (in && std::getline(in, line)) {
            // Every line ends in " crc <hex>"; anything torn or
            // scribbled (a SIGKILL mid-append) fails the checksum and
            // is dropped, as is everything after it.
            const std::size_t crc_at = line.rfind(" crc ");
            if (crc_at == std::string::npos)
                break;
            const std::string body = line.substr(0, crc_at);
            const std::string crc = line.substr(crc_at + 5);
            if (crc != fingerprintHex(lineChecksum(body)))
                break;
            if (first) {
                first = false;
                if (body != header_body) {
                    ede_warn("journal '", path_, "' belongs to a "
                             "different sweep; starting fresh");
                    break;
                }
                compatible = true;
                continue;
            }
            std::istringstream is(body);
            std::string kind, fp_hex;
            std::size_t index = 0;
            if (!(is >> kind >> index >> fp_hex))
                continue;
            JournalEntry e;
            e.fingerprint =
                std::strtoull(fp_hex.c_str(), nullptr, 16);
            if (kind == "ok") {
                std::string payload;
                if (!(is >> payload))
                    continue;
                e.ok = true;
                e.payload = journalUnescape(payload);
            } else if (kind == "quarantine") {
                int outcome = 0;
                std::string msg, tail;
                if (!(is >> outcome >> e.failure.signal >>
                      e.failure.exitCode >> e.failure.attempts >>
                      msg >> tail))
                    continue;
                e.failure.outcome = static_cast<JobOutcome>(outcome);
                e.failure.message = journalUnescape(msg);
                e.failure.stderrTail = journalUnescape(tail);
            } else {
                continue;
            }
            replayed_[index] = std::move(e);
        }
    }

    if (!compatible) {
        replayed_.clear();
        std::ofstream out(path_, std::ios::binary | std::ios::trunc);
        if (!out) {
            ede_fatal("cannot create sweep journal '", path_, "'");
        }
    }
    appendSealedLine(compatible ? std::string() : header_body);
}

void
SweepJournal::appendSealedLine(const std::string &body)
{
    if (body.empty())
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    std::ofstream out(path_, std::ios::binary | std::ios::app);
    if (!out) {
        ede_warn("cannot append to sweep journal '", path_, "'");
        return;
    }
    out << body << " crc " << fingerprintHex(lineChecksum(body))
        << '\n';
    out.flush();
}

void
SweepJournal::recordOk(std::size_t index, std::uint64_t fingerprint,
                       const std::string &payload)
{
    std::ostringstream os;
    os << "ok " << index << ' ' << fingerprintHex(fingerprint) << ' '
       << journalEscape(payload);
    appendSealedLine(os.str());
}

void
SweepJournal::recordQuarantine(std::size_t index,
                               std::uint64_t fingerprint,
                               const JobFailure &failure)
{
    std::ostringstream os;
    os << "quarantine " << index << ' ' << fingerprintHex(fingerprint)
       << ' ' << static_cast<int>(failure.outcome) << ' '
       << failure.signal << ' ' << failure.exitCode << ' '
       << failure.attempts << ' ' << journalEscape(failure.message)
       << ' ' << journalEscape(failure.stderrTail);
    appendSealedLine(os.str());
}

} // namespace exp
} // namespace ede
