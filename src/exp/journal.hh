/**
 * @file
 * Append-only, crash-safe sweep journals.
 *
 * A journal records, per plan index, the durable outcome of one sweep
 * cell: either `ok` with the cell's serialized payload inline, or
 * `quarantine` with the typed JobFailure record.  Records are single
 * lines (fields percent-escaped) each sealed with an FNV-1a checksum,
 * appended and flushed one at a time -- so a sweep SIGKILLed mid-run
 * leaves at worst one torn final line, which replay detects and
 * drops.  `--resume` replays the journal and reuses every durable
 * cell, making an interrupted campaign's final output identical to an
 * uninterrupted run's.
 *
 * The header line binds the journal to one sweep identity (a hash of
 * every input that determines the cells) and the point count; a
 * journal written by a different sweep is ignored and started fresh,
 * never misread.
 */

#ifndef EDE_EXP_JOURNAL_HH
#define EDE_EXP_JOURNAL_HH

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "exp/worker.hh"

namespace ede {
namespace exp {

/** One replayed journal record. */
struct JournalEntry
{
    bool ok = false;                 ///< ok vs. quarantine record.
    std::uint64_t fingerprint = 0;   ///< Cell identity at write time.
    std::string payload;             ///< Serialized cell (ok only).
    JobFailure failure;              ///< Quarantine record only.
};

/** Percent-escape @p s so it survives as one whitespace-free token. */
std::string journalEscape(const std::string &s);

/** Inverse of journalEscape. */
std::string journalUnescape(const std::string &s);

/** The append-only journal of one sweep. */
class SweepJournal
{
  public:
    /**
     * Open @p path for appending.  When @p resume is set and the file
     * carries a matching header (@p sweepId, @p points), its valid
     * records are replayed into replayed(); otherwise the file is
     * started fresh (a mismatched journal is dropped with a warning).
     */
    SweepJournal(std::string path, std::uint64_t sweepId,
                 std::size_t points, bool resume);

    SweepJournal(const SweepJournal &) = delete;
    SweepJournal &operator=(const SweepJournal &) = delete;

    /** Records recovered by a resume open, keyed by plan index. */
    const std::map<std::size_t, JournalEntry> &replayed() const
    {
        return replayed_;
    }

    /** Append a durable `ok` record. Thread-safe. */
    void recordOk(std::size_t index, std::uint64_t fingerprint,
                  const std::string &payload);

    /** Append a `quarantine` record. Thread-safe. */
    void recordQuarantine(std::size_t index, std::uint64_t fingerprint,
                          const JobFailure &failure);

    const std::string &path() const { return path_; }

  private:
    void appendSealedLine(const std::string &body);

    std::string path_;
    std::map<std::size_t, JournalEntry> replayed_;
    std::mutex mutex_;
};

} // namespace exp
} // namespace ede

#endif // EDE_EXP_JOURNAL_HH
