#include "exp/plan.hh"

namespace ede {
namespace exp {

std::string
pointLabel(AppId app, Config cfg)
{
    return std::string(appName(app)) + "/" +
           std::string(configName(cfg));
}

ExperimentPlan &
ExperimentPlan::add(ExperimentPoint point)
{
    if (point.label.empty())
        point.label = pointLabel(point.app, point.config);
    points_.push_back(std::move(point));
    return *this;
}

ExperimentPlan &
ExperimentPlan::addCell(AppId app, Config cfg, const RunSpec &spec,
                        const AppParams &app_params)
{
    ExperimentPoint p;
    p.app = app;
    p.config = cfg;
    p.spec = spec;
    p.appParams = app_params;
    p.simParams = makeParams(cfg);
    return add(std::move(p));
}

ExperimentPlan &
ExperimentPlan::addGrid(const std::vector<AppId> &apps,
                        const std::vector<Config> &configs,
                        const RunSpec &spec, const AppParams &app_params)
{
    for (AppId app : apps) {
        for (Config cfg : configs)
            addCell(app, cfg, spec, app_params);
    }
    return *this;
}

ExperimentPlan &
ExperimentPlan::addTweakAxis(const std::string &axis, AppId app,
                             const std::vector<Config> &configs,
                             const RunSpec &spec,
                             const std::function<void(SimParams &)> &tweak)
{
    for (Config cfg : configs) {
        ExperimentPoint p;
        p.label = axis + "/" + std::string(configName(cfg));
        p.app = app;
        p.config = cfg;
        p.spec = spec;
        p.simParams = makeParams(cfg);
        tweak(p.simParams);
        add(std::move(p));
    }
    return *this;
}

} // namespace exp
} // namespace ede
