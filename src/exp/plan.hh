/**
 * @file
 * Declarative experiment plans.
 *
 * An ExperimentPlan is the full input of one evaluation sweep: a list
 * of labeled (application, configuration, workload, simulator
 * parameters) points.  The plan says *what* to simulate; the runner
 * (runner.hh) decides how -- in parallel, through the result cache --
 * so every bench, ablation sweep and the fault campaign can share one
 * orchestration path instead of hand-rolled nested loops.
 */

#ifndef EDE_EXP_PLAN_HH
#define EDE_EXP_PLAN_HH

#include <functional>
#include <string>
#include <vector>

#include "apps/app.hh"
#include "apps/concurrent.hh"
#include "apps/driver.hh"
#include "sim/config.hh"
#include "traffic/stream_mux.hh"

namespace ede {
namespace exp {

/** One cell of an experiment grid. */
struct ExperimentPoint
{
    /** Display/lookup key; defaults to "<app>/<config>". */
    std::string label;
    AppId app = AppId::Update;
    Config config = Config::B;
    RunSpec spec{};
    AppParams appParams{};
    SimParams simParams{};  ///< Must match `config` (harness asserts).

    /**
     * @name Concurrent-kernel cells (bench/fig_scaling).
     *
     * When `conc` is set the point simulates a concurrent kernel
     * (apps/concurrent.hh) on simParams.coreCount lock-step cores
     * instead of a Table II application; `app`, `spec` and
     * `appParams` are ignored.  The conc fields are fingerprinted
     * only when set, so single-app fingerprints are unchanged.
     */
    /// @{
    bool conc = false;
    ConcApp concApp = ConcApp::MsQueue;
    int concOpsPerCore = 256;
    std::uint64_t concSeed = 42;
    /// @}

    /**
     * @name Open-loop traffic cells (bench/fig_traffic).
     *
     * When `traffic` is set the point runs a traffic plan
     * (traffic/stream_mux.hh) through RunRequest::ofTraffic on
     * simParams.coreCount cores; `app`, `spec`, `appParams` and the
     * conc fields are ignored.  Like the conc block, the traffic
     * fields are fingerprinted only when set.
     */
    /// @{
    bool traffic = false;
    traffic::TrafficPlan trafficPlan{};
    /// @}
};

/** The default point label for @p app under @p cfg. */
std::string pointLabel(AppId app, Config cfg);

/** A list of labeled points, built by grid/axis helpers. */
class ExperimentPlan
{
  public:
    /** Append a fully specified point. */
    ExperimentPlan &add(ExperimentPoint point);

    /** Append one (app, config) cell with Table I parameters. */
    ExperimentPlan &addCell(AppId app, Config cfg, const RunSpec &spec,
                            const AppParams &app_params = {});

    /** Append the full apps x configs grid (the figure sweeps). */
    ExperimentPlan &addGrid(const std::vector<AppId> &apps,
                            const std::vector<Config> &configs,
                            const RunSpec &spec,
                            const AppParams &app_params = {});

    /**
     * Append one ablation axis point: for each configuration, start
     * from Table I parameters and apply @p tweak.  Labels are
     * "<axis>/<config>".
     */
    ExperimentPlan &
    addTweakAxis(const std::string &axis, AppId app,
                 const std::vector<Config> &configs, const RunSpec &spec,
                 const std::function<void(SimParams &)> &tweak);

    const std::vector<ExperimentPoint> &points() const { return points_; }
    std::size_t size() const { return points_.size(); }
    bool empty() const { return points_.empty(); }

  private:
    std::vector<ExperimentPoint> points_;
};

} // namespace exp
} // namespace ede

#endif // EDE_EXP_PLAN_HH
