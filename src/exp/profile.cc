#include "exp/profile.hh"

#include <cstdio>
#include <sstream>

namespace ede {

namespace {

std::string
jsonDouble(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

} // namespace

std::string
describeProfile(const HostProfile &profile)
{
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "%.2f Mcyc/s, %.1f%% skipped (%s ticking)",
                  profile.cyclesPerHostSecond() / 1e6,
                  profile.skipRatio() * 100.0,
                  profile.referenceTicking ? "reference" : "skip-ahead");
    return buf;
}

std::string
profileToJson(const HostProfile &profile, const std::string &indent)
{
    std::ostringstream os;
    os << "{\n";
    os << indent << "  \"reference_ticking\": "
       << (profile.referenceTicking ? "true" : "false") << ",\n";
    os << indent << "  \"wall_nanos\": " << profile.wallNanos << ",\n";
    os << indent << "  \"mem_nanos\": " << profile.memNanos << ",\n";
    os << indent << "  \"fetch_nanos\": " << profile.fetchNanos
       << ",\n";
    os << indent << "  \"issue_nanos\": " << profile.issueNanos
       << ",\n";
    os << indent << "  \"wb_nanos\": " << profile.wbNanos << ",\n";
    os << indent << "  \"host_ticks\": " << profile.hostTicks << ",\n";
    os << indent << "  \"skip_jumps\": " << profile.skipJumps << ",\n";
    os << indent << "  \"skip_attempts\": " << profile.skipAttempts
       << ",\n";
    os << indent << "  \"skip_nanos\": " << profile.skipNanos << ",\n";
    os << indent << "  \"cycles_skipped\": " << profile.cyclesSkipped
       << ",\n";
    os << indent << "  \"cycles_simulated\": "
       << profile.cyclesSimulated << ",\n";
    os << indent << "  \"cycles_per_host_sec\": "
       << jsonDouble(profile.cyclesPerHostSecond()) << ",\n";
    os << indent << "  \"skip_ratio\": "
       << jsonDouble(profile.skipRatio()) << "\n";
    os << indent << "}";
    return os.str();
}

} // namespace ede
