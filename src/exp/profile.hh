/**
 * @file
 * Host-side performance profile of one simulation run.
 *
 * Everything in here measures the *simulator*, not the simulated
 * machine: wall-clock nanoseconds per pipeline phase, how many host
 * ticks the cycle loop actually executed, and how many simulated
 * cycles the skip-ahead scheduler jumped over.  None of it is
 * deterministic across hosts, so it lives outside CoreStats (which
 * must stay bit-identical between ticking modes) and is excluded from
 * the result-cache fingerprint.
 *
 * The struct is header-only so the pipeline can fill it without
 * linking against the experiment layer; JSON rendering lives in
 * profile.cc (linked into ede_exp for the ResultSink).
 */

#ifndef EDE_EXP_PROFILE_HH
#define EDE_EXP_PROFILE_HH

#include <chrono>
#include <cstdint>
#include <string>

#include "common/types.hh"

namespace ede {

/** Wall-clock timers and skip counters for one OoOCore::run. */
struct HostProfile
{
    /** @name Per-phase wall-clock time, nanoseconds. */
    /// @{
    std::uint64_t memNanos = 0;    ///< MemSystem tick + load polling.
    std::uint64_t fetchNanos = 0;  ///< Dispatch (frontend).
    std::uint64_t issueNanos = 0;  ///< Issue-queue scan.
    std::uint64_t wbNanos = 0;     ///< Exec WB, write buffer, retire.
    /// @}

    /** Whole-run wall-clock time, nanoseconds. */
    std::uint64_t wallNanos = 0;

    /** tickOnce invocations actually executed on the host. */
    std::uint64_t hostTicks = 0;

    /** Skip-ahead jumps taken (0 under reference ticking). */
    std::uint64_t skipJumps = 0;

    /** skipTarget evaluations, including failed ones (target<=now). */
    std::uint64_t skipAttempts = 0;

    /** Wall time spent computing skip targets, nanoseconds. */
    std::uint64_t skipNanos = 0;

    /** Simulated cycles covered by jumps instead of ticks. */
    Cycle cyclesSkipped = 0;

    /** Total simulated cycles of the run. */
    Cycle cyclesSimulated = 0;

    /** True when the run used the reference per-cycle loop. */
    bool referenceTicking = false;

    /** Simulated cycles per host second (0 when unmeasured). */
    double
    cyclesPerHostSecond() const
    {
        if (wallNanos == 0)
            return 0.0;
        return static_cast<double>(cyclesSimulated) * 1e9 /
               static_cast<double>(wallNanos);
    }

    /** Fraction of simulated cycles that were skipped, in [0, 1]. */
    double
    skipRatio() const
    {
        if (cyclesSimulated == 0)
            return 0.0;
        return static_cast<double>(cyclesSkipped) /
               static_cast<double>(cyclesSimulated);
    }

    /** Accumulate another run's profile (sweep totals). */
    void
    merge(const HostProfile &o)
    {
        memNanos += o.memNanos;
        fetchNanos += o.fetchNanos;
        issueNanos += o.issueNanos;
        wbNanos += o.wbNanos;
        wallNanos += o.wallNanos;
        hostTicks += o.hostTicks;
        skipJumps += o.skipJumps;
        skipAttempts += o.skipAttempts;
        skipNanos += o.skipNanos;
        cyclesSkipped += o.cyclesSkipped;
        cyclesSimulated += o.cyclesSimulated;
        referenceTicking = referenceTicking || o.referenceTicking;
    }
};

/**
 * Scoped phase timer: adds the elapsed nanoseconds to @p slot on
 * destruction.  Constructed with a null profile it does nothing, so
 * the instrumented code pays one branch when profiling is off.
 */
class PhaseTimer
{
  public:
    PhaseTimer(HostProfile *profile, std::uint64_t HostProfile::*slot)
        : profile_(profile), slot_(slot)
    {
        if (profile_)
            start_ = std::chrono::steady_clock::now();
    }

    ~PhaseTimer()
    {
        if (profile_) {
            profile_->*slot_ += static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now() - start_)
                    .count());
        }
    }

    PhaseTimer(const PhaseTimer &) = delete;
    PhaseTimer &operator=(const PhaseTimer &) = delete;

  private:
    HostProfile *profile_;
    std::uint64_t HostProfile::*slot_;
    std::chrono::steady_clock::time_point start_;
};

/** One-line human-readable summary ("12.3 Mcyc/s, 87% skipped"). */
std::string describeProfile(const HostProfile &profile);

/** JSON object fragment for the ResultSink (no trailing newline). */
std::string profileToJson(const HostProfile &profile,
                          const std::string &indent);

} // namespace ede

#endif // EDE_EXP_PROFILE_HH
