#include "exp/result.hh"

#include "common/logging.hh"

namespace ede {
namespace exp {

namespace {

std::pair<int, int>
keyOf(AppId app, Config cfg)
{
    return {static_cast<int>(app), static_cast<int>(cfg)};
}

} // namespace

ExperimentResults::ExperimentResults(std::vector<ExperimentCell> cells)
    : cells_(std::move(cells))
{
    for (std::size_t i = 0; i < cells_.size(); ++i) {
        const ExperimentCell &c = cells_[i];
        // First occurrence wins, so grid lookups land on the plan's
        // canonical cell even when an axis re-runs the same pair.
        byKey_.emplace(keyOf(c.point.app, c.point.config), i);
        byLabel_.emplace(c.point.label, i);
        if (c.failed)
            failures_.push_back(&c);
        else if (c.fromCache)
            ++cacheHits_;
        else if (c.fromJournal)
            ++journalReplays_;
    }
}

const ExperimentCell *
ExperimentResults::find(AppId app, Config cfg) const
{
    const auto it = byKey_.find(keyOf(app, cfg));
    return it == byKey_.end() ? nullptr : &cells_[it->second];
}

const ExperimentCell &
ExperimentResults::cell(AppId app, Config cfg) const
{
    const ExperimentCell *c = find(app, cfg);
    if (!c) {
        ede_fatal("no cell for app '", appName(app), "' config '",
                  configName(cfg), "' in this ", cells_.size(),
                  "-cell experiment (was it in the plan / --app list?)");
    }
    if (c->failed) {
        ede_fatal("cell for app '", appName(app), "' config '",
                  configName(cfg), "' was quarantined: ",
                  c->failure.describe());
    }
    return *c;
}

const ExperimentCell *
ExperimentResults::findByLabel(const std::string &label) const
{
    const auto it = byLabel_.find(label);
    return it == byLabel_.end() ? nullptr : &cells_[it->second];
}

const ExperimentCell &
ExperimentResults::cellByLabel(const std::string &label) const
{
    const ExperimentCell *c = findByLabel(label);
    if (!c) {
        ede_fatal("no cell labeled '", label, "' in this ",
                  cells_.size(), "-cell experiment");
    }
    if (c->failed) {
        ede_fatal("cell labeled '", label, "' was quarantined: ",
                  c->failure.describe());
    }
    return *c;
}

} // namespace exp
} // namespace ede
