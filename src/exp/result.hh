/**
 * @file
 * Experiment results with keyed lookup.
 *
 * ExperimentResults replaces the benches' old linear `cellOf` scan:
 * cells are indexed by (app, config) and by label at construction,
 * lookups are O(log n), and a missing cell fails with a message
 * naming exactly what was requested instead of running into
 * undefined behaviour.
 */

#ifndef EDE_EXP_RESULT_HH
#define EDE_EXP_RESULT_HH

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "exp/plan.hh"
#include "exp/profile.hh"
#include "exp/worker.hh"
#include "sim/system.hh"

namespace ede {
namespace exp {

/** One completed (or cache-restored, or quarantined) cell. */
struct ExperimentCell
{
    ExperimentPoint point;
    std::uint64_t fingerprint = 0;
    Cycle opCycles = 0;  ///< Transaction-phase cycles (the paper's
                         ///< measurement excludes pool setup).
    RunResult result;
    bool fromCache = false;    ///< Restored from the result cache.
    bool fromJournal = false;  ///< Replayed from a sweep journal.

    /**
     * Quarantined: the isolated worker for this cell failed
     * terminally (crash, timeout, OOM, SimFault after the retry
     * budget).  `result` is empty; `failure` carries the typed
     * record.  Only a keep-going isolated run produces these.
     */
    bool failed = false;
    JobFailure failure;

    /**
     * Host-side performance of the simulation that produced this
     * cell.  Never cached (host wall time is not content-addressable);
     * all-zero when fromCache is set.
     */
    HostProfile profile;
};

/** A plan's cells, in plan order, with keyed lookup. */
class ExperimentResults
{
  public:
    ExperimentResults() = default;
    explicit ExperimentResults(std::vector<ExperimentCell> cells);

    /** Cells in plan order. */
    const std::vector<ExperimentCell> &cells() const { return cells_; }
    std::size_t size() const { return cells_.size(); }

    /**
     * The cell for (app, config); fatal with a message naming the
     * missing pair when the plan never contained it.  When a plan
     * holds several cells for the pair (ablation axes), the first in
     * plan order is returned -- use cellByLabel for axis points.
     */
    const ExperimentCell &cell(AppId app, Config cfg) const;

    /** As cell(), or nullptr when missing. */
    const ExperimentCell *find(AppId app, Config cfg) const;

    /** The cell with label @p label; fatal when absent. */
    const ExperimentCell &cellByLabel(const std::string &label) const;

    /** As cellByLabel(), or nullptr when missing. */
    const ExperimentCell *findByLabel(const std::string &label) const;

    /** Cells restored from the result cache. */
    std::size_t cacheHits() const { return cacheHits_; }

    /** Cells replayed from a sweep journal (--resume). */
    std::size_t journalReplays() const { return journalReplays_; }

    /** Quarantined cells, in plan order. */
    const std::vector<const ExperimentCell *> &failures() const
    {
        return failures_;
    }

    /** True when no cell was quarantined. */
    bool allOk() const { return failures_.empty(); }

    /** Cells that were freshly simulated. */
    std::size_t
    simulated() const
    {
        return cells_.size() - cacheHits_ - journalReplays_ -
               failures_.size();
    }

  private:
    std::vector<ExperimentCell> cells_;
    std::vector<const ExperimentCell *> failures_;
    std::map<std::pair<int, int>, std::size_t> byKey_;
    std::map<std::string, std::size_t> byLabel_;
    std::size_t cacheHits_ = 0;
    std::size_t journalReplays_ = 0;
};

} // namespace exp
} // namespace ede

#endif // EDE_EXP_RESULT_HH
