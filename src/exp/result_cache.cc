#include "exp/result_cache.hh"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "common/logging.hh"
#include "exp/fingerprint.hh"

namespace ede {
namespace exp {

namespace {

constexpr const char *kMagic = "ede-exp-snapshot";

void
putScalar(std::ostream &os, const char *key, std::uint64_t v)
{
    os << key << ' ' << v << '\n';
}

void
putLatency(std::ostream &os, const char *key,
           const traffic::LatencySummary &s)
{
    os << key << ' ' << s.count << ' ' << s.p50 << ' ' << s.p99 << ' '
       << s.p999 << ' ' << s.max << ' ' << s.sum << '\n';
}

void
putCacheStats(std::ostream &os, const char *prefix, const CacheStats &c)
{
    os << prefix << ' ' << c.hits << ' ' << c.misses << ' '
       << c.mshrMerges << ' ' << c.evictions << ' ' << c.writebacks
       << ' ' << c.cleansForwarded << ' ' << c.rejects << ' '
       << c.snoopInvalidations << ' ' << c.snoopDowngrades << '\n';
}

/** Reader over the snapshot token stream; any slip poisons it. */
class SnapshotReader
{
  public:
    explicit SnapshotReader(const std::string &text) : is_(text) {}

    bool ok() const { return ok_; }

    /** Consume one token and require it to equal @p key. */
    void
    expect(const char *key)
    {
        std::string tok;
        if (!(is_ >> tok) || tok != key)
            ok_ = false;
    }

    std::uint64_t
    scalar(const char *key)
    {
        expect(key);
        std::uint64_t v = 0;
        if (!(is_ >> v))
            ok_ = false;
        return v;
    }

    std::string
    word(const char *key)
    {
        expect(key);
        std::string v;
        if (!(is_ >> v))
            ok_ = false;
        return v;
    }

    std::vector<std::uint64_t>
    vec(std::size_t n)
    {
        std::vector<std::uint64_t> out(n, 0);
        for (std::uint64_t &v : out) {
            if (!(is_ >> v))
                ok_ = false;
        }
        return out;
    }

    void
    cacheStats(const char *prefix, CacheStats &c)
    {
        expect(prefix);
        if (!(is_ >> c.hits >> c.misses >> c.mshrMerges >> c.evictions
                  >> c.writebacks >> c.cleansForwarded >> c.rejects
                  >> c.snoopInvalidations >> c.snoopDowngrades))
            ok_ = false;
    }

    void
    latency(const char *key, traffic::LatencySummary &s)
    {
        expect(key);
        if (!(is_ >> s.count >> s.p50 >> s.p99 >> s.p999 >> s.max
                  >> s.sum))
            ok_ = false;
    }

  private:
    std::istringstream is_;
    bool ok_ = true;
};

} // namespace

std::string
serializeCell(const ExperimentCell &cell)
{
    const RunResult &r = cell.result;
    std::ostringstream os;
    os << kMagic << ' ' << kResultSchemaVersion << '\n';
    os << "fingerprint " << fingerprintHex(cell.fingerprint) << '\n';
    os << "app "
       << (cell.point.traffic ? "traffic"
           : cell.point.conc ? concAppName(cell.point.concApp)
                             : appName(cell.point.app))
       << '\n';
    os << "config " << configName(cell.point.config) << '\n';
    putScalar(os, "opCycles", cell.opCycles);
    putScalar(os, "cycles", r.cycles);
    putScalar(os, "coreCount", static_cast<std::uint64_t>(r.coreCount));
    os << "coherence " << r.coherence.snoops << ' '
       << r.coherence.invalidations << ' ' << r.coherence.downgrades
       << ' ' << r.coherence.dirtyHandoffs << '\n';

    putScalar(os, "core.cycles", r.core.cycles);
    putScalar(os, "core.retired", r.core.retired);
    putScalar(os, "core.dispatched", r.core.dispatched);
    putScalar(os, "core.issuedOps", r.core.issuedOps);
    putScalar(os, "core.branches", r.core.branches);
    putScalar(os, "core.mispredicts", r.core.mispredicts);
    putScalar(os, "core.squashes", r.core.squashes);
    putScalar(os, "core.squashedInsts", r.core.squashedInsts);
    putScalar(os, "core.loadsForwarded", r.core.loadsForwarded);
    putScalar(os, "core.retireStallWbFull", r.core.retireStallWbFull);
    putScalar(os, "core.dispatchStallRob", r.core.dispatchStallRob);
    putScalar(os, "core.dispatchStallIq", r.core.dispatchStallIq);
    putScalar(os, "core.dispatchStallLsq", r.core.dispatchStallLsq);
    putScalar(os, "core.edkStallChecks", r.core.edkStallChecks);
    putScalar(os, "core.edkExternalStalls", r.core.edkExternalStalls);
    putScalar(os, "core.edkStuckDetected", r.core.edkStuckDetected);
    putScalar(os, "core.edkFencesSynthesized",
              r.core.edkFencesSynthesized);
    os << "issueHist " << r.core.issueHist.size();
    for (std::uint64_t c : r.core.issueHist.counts())
        os << ' ' << c;
    os << " saturated " << r.core.issueHist.saturated() << '\n';

    os << "wb " << r.wb.inserted << ' ' << r.wb.pushes << ' '
       << r.wb.srcIdGated << ' ' << r.wb.lineGated << ' '
       << r.wb.dmbGated << ' ' << r.wb.memRejected << '\n';

    os << "nvm " << r.nvm.reads << ' ' << r.nvm.bufferReadHits << ' '
       << r.nvm.writesAccepted << ' ' << r.nvm.writesCoalesced << ' '
       << r.nvm.mediaWrites << ' ' << r.nvm.cleansAccepted << ' '
       << r.nvm.bufferFullRejects << ' ' << r.nvm.transientRejects
       << '\n';

    os << "nvmOccupancy " << r.nvmOccupancy.maxValue() << ' '
       << r.nvmOccupancy.bucketWidth() << ' '
       << r.nvmOccupancy.numBuckets();
    for (std::uint64_t c : r.nvmOccupancy.counts())
        os << ' ' << c;
    os << " sum " << r.nvmOccupancy.sampleSum() << '\n';

    putCacheStats(os, "l1d", r.l1d);
    putCacheStats(os, "l2", r.l2);
    putCacheStats(os, "l3", r.l3);

    os << "dram " << r.dram.reads << ' ' << r.dram.writes << ' '
       << r.dram.rowHits << ' ' << r.dram.rowMisses << ' '
       << r.dram.rejects << '\n';

    // Multi-core cells (the scaling bench) append the per-core
    // breakdown.  Single-core snapshot bytes are untouched -- the
    // aggregate sections above already carry everything -- so the
    // schema version stays put and existing snapshots remain valid.
    if (r.coreCount != 1) {
        ede_assert(r.perCore.size() ==
                       static_cast<std::size_t>(r.coreCount),
                   "per-core breakdown must cover every core");
        os << "perCore " << r.perCore.size() << '\n';
        for (const CoreRunStats &pc : r.perCore) {
            os << "pc " << pc.core << ' ' << pc.stats.cycles << ' '
               << pc.stats.retired << ' ' << pc.stats.dispatched << ' '
               << pc.stats.issuedOps << ' ' << pc.stats.branches << ' '
               << pc.stats.mispredicts << ' ' << pc.stats.squashes
               << ' ' << pc.stats.squashedInsts << ' '
               << pc.stats.loadsForwarded << ' '
               << pc.stats.retireStallWbFull << ' '
               << pc.stats.dispatchStallRob << ' '
               << pc.stats.dispatchStallIq << ' '
               << pc.stats.dispatchStallLsq << ' '
               << pc.stats.edkStallChecks << ' '
               << pc.stats.edkExternalStalls << ' '
               << pc.stats.edkStuckDetected << ' '
               << pc.stats.edkFencesSynthesized << '\n';
            os << "pcHist " << pc.stats.issueHist.size();
            for (std::uint64_t c : pc.stats.issueHist.counts())
                os << ' ' << c;
            os << " saturated " << pc.stats.issueHist.saturated()
               << '\n';
            os << "pcWb " << pc.wb.inserted << ' ' << pc.wb.pushes
               << ' ' << pc.wb.srcIdGated << ' ' << pc.wb.lineGated
               << ' ' << pc.wb.dmbGated << ' ' << pc.wb.memRejected
               << '\n';
            putCacheStats(os, "pcL1d", pc.l1d);
        }
    }

    // Traffic cells append their exact tail-latency records.  The
    // flag line itself is written for every cell -- the section is
    // part of the v8 layout, not an optional trailer.
    os << "traffic " << (r.traffic.enabled ? 1 : 0) << '\n';
    if (r.traffic.enabled) {
        putLatency(os, "tOpen", r.traffic.open);
        putLatency(os, "tService", r.traffic.service);
        putLatency(os, "tOpenWarm", r.traffic.openWarmup);
        putLatency(os, "tOpenSteady", r.traffic.openSteady);
        putLatency(os, "tServiceWarm", r.traffic.serviceWarmup);
        putLatency(os, "tServiceSteady", r.traffic.serviceSteady);
        os << "tWindows " << r.traffic.windows.size() << '\n';
        for (const traffic::WindowLatency &w : r.traffic.windows) {
            os << "tw " << w.window << ' ' << (w.warmup ? 1 : 0)
               << '\n';
            putLatency(os, "twOpen", w.open);
            putLatency(os, "twService", w.service);
        }
        os << "tStreams " << r.traffic.streams.size() << '\n';
        for (const traffic::StreamLatency &sl : r.traffic.streams) {
            os << "ts " << sl.stream << ' ' << sl.core << ' '
               << sl.shed << ' ' << sl.retries << ' ' << sl.failures
               << '\n';
            putLatency(os, "tsOpen", sl.open);
            putLatency(os, "tsService", sl.service);
        }
        const traffic::OverloadResult &ov = r.traffic.overload;
        os << "tOverload " << (ov.enabled ? 1 : 0) << '\n';
        if (ov.enabled) {
            os << "tOv " << ov.effectiveDepth << ' ' << ov.offered
               << ' ' << ov.admitted << ' ' << ov.completed << ' '
               << ov.goodput << ' ' << ov.timeouts << ' '
               << ov.failures << ' ' << ov.steadyOffered << ' '
               << ov.steadyGoodput << ' ' << ov.steadyHorizon << ' '
               << ov.shedQueue << ' ' << ov.shedDeadline << ' '
               << ov.shedToken << ' ' << ov.shedDegrade << ' '
               << ov.retries << ' ' << ov.retryExhausted << ' '
               << ov.degradeUp << ' ' << ov.degradeDown << ' '
               << ov.maxDegradeLevel << '\n';
            putLatency(os, "tOvOpen", ov.open);
            putLatency(os, "tOvGoodput", ov.goodputOpen);
        }
    }
    os << "end\n";
    return os.str();
}

std::optional<ExperimentCell>
deserializeCell(const std::string &text, const ExperimentPoint &point,
                std::uint64_t fingerprint)
{
    SnapshotReader in(text);
    if (in.scalar(kMagic) != kResultSchemaVersion || !in.ok())
        return std::nullopt;
    if (in.word("fingerprint") != fingerprintHex(fingerprint))
        return std::nullopt;
    if (in.word("app") !=
        (point.traffic ? "traffic"
         : point.conc ? concAppName(point.concApp)
                      : appName(point.app)))
        return std::nullopt;
    if (in.word("config") != configName(point.config))
        return std::nullopt;

    ExperimentCell cell;
    cell.point = point;
    cell.fingerprint = fingerprint;
    cell.fromCache = true;
    RunResult &r = cell.result;
    r.config = point.config;

    cell.opCycles = in.scalar("opCycles");
    r.cycles = in.scalar("cycles");

    r.coreCount = static_cast<int>(in.scalar("coreCount"));
    if (!in.ok() || r.coreCount < 1)
        return std::nullopt;
    in.expect("coherence");
    if (!(in.ok()))
        return std::nullopt;
    {
        const auto v = in.vec(4);
        if (!in.ok())
            return std::nullopt;
        r.coherence.snoops = v[0];
        r.coherence.invalidations = v[1];
        r.coherence.downgrades = v[2];
        r.coherence.dirtyHandoffs = v[3];
    }

    r.core.cycles = in.scalar("core.cycles");
    r.core.retired = in.scalar("core.retired");
    r.core.dispatched = in.scalar("core.dispatched");
    r.core.issuedOps = in.scalar("core.issuedOps");
    r.core.branches = in.scalar("core.branches");
    r.core.mispredicts = in.scalar("core.mispredicts");
    r.core.squashes = in.scalar("core.squashes");
    r.core.squashedInsts = in.scalar("core.squashedInsts");
    r.core.loadsForwarded = in.scalar("core.loadsForwarded");
    r.core.retireStallWbFull = in.scalar("core.retireStallWbFull");
    r.core.dispatchStallRob = in.scalar("core.dispatchStallRob");
    r.core.dispatchStallIq = in.scalar("core.dispatchStallIq");
    r.core.dispatchStallLsq = in.scalar("core.dispatchStallLsq");
    r.core.edkStallChecks = in.scalar("core.edkStallChecks");
    r.core.edkExternalStalls = in.scalar("core.edkExternalStalls");
    r.core.edkStuckDetected = in.scalar("core.edkStuckDetected");
    r.core.edkFencesSynthesized =
        in.scalar("core.edkFencesSynthesized");

    const std::uint64_t hist_n = in.scalar("issueHist");
    if (!in.ok() || hist_n != r.core.issueHist.size())
        return std::nullopt;
    std::vector<std::uint64_t> hist = in.vec(hist_n);
    const std::uint64_t hist_sat = in.scalar("saturated");
    if (!in.ok())
        return std::nullopt;
    r.core.issueHist.restore(std::move(hist), hist_sat);

    in.expect("wb");
    {
        const auto v = in.vec(6);
        if (!in.ok())
            return std::nullopt;
        r.wb.inserted = v[0];
        r.wb.pushes = v[1];
        r.wb.srcIdGated = v[2];
        r.wb.lineGated = v[3];
        r.wb.dmbGated = v[4];
        r.wb.memRejected = v[5];
    }

    in.expect("nvm");
    {
        const auto v = in.vec(8);
        if (!in.ok())
            return std::nullopt;
        r.nvm.reads = v[0];
        r.nvm.bufferReadHits = v[1];
        r.nvm.writesAccepted = v[2];
        r.nvm.writesCoalesced = v[3];
        r.nvm.mediaWrites = v[4];
        r.nvm.cleansAccepted = v[5];
        r.nvm.bufferFullRejects = v[6];
        r.nvm.transientRejects = v[7];
    }

    in.expect("nvmOccupancy");
    {
        const auto geom = in.vec(3);
        if (!in.ok() || geom[0] != r.nvmOccupancy.maxValue() ||
            geom[1] != r.nvmOccupancy.bucketWidth() ||
            geom[2] != r.nvmOccupancy.numBuckets())
            return std::nullopt;
        std::vector<std::uint64_t> counts = in.vec(geom[2]);
        const std::uint64_t sum = in.scalar("sum");
        if (!in.ok())
            return std::nullopt;
        r.nvmOccupancy.restore(std::move(counts), sum);
    }

    in.cacheStats("l1d", r.l1d);
    in.cacheStats("l2", r.l2);
    in.cacheStats("l3", r.l3);

    in.expect("dram");
    {
        const auto v = in.vec(5);
        if (!in.ok())
            return std::nullopt;
        r.dram.reads = v[0];
        r.dram.writes = v[1];
        r.dram.rowHits = v[2];
        r.dram.rowMisses = v[3];
        r.dram.rejects = v[4];
    }
    if (r.coreCount == 1) {
        // Rebuild the per-core view from the aggregate sections so a
        // restored RunResult is indistinguishable from a fresh one.
        r.perCore = {CoreRunStats{0, r.core, r.wb, r.l1d}};
    } else {
        const std::uint64_t n = in.scalar("perCore");
        if (!in.ok() ||
            n != static_cast<std::uint64_t>(r.coreCount))
            return std::nullopt;
        r.perCore.resize(n);
        for (CoreRunStats &pc : r.perCore) {
            in.expect("pc");
            const auto v = in.vec(18);
            if (!in.ok())
                return std::nullopt;
            pc.core = static_cast<unsigned>(v[0]);
            pc.stats.cycles = v[1];
            pc.stats.retired = v[2];
            pc.stats.dispatched = v[3];
            pc.stats.issuedOps = v[4];
            pc.stats.branches = v[5];
            pc.stats.mispredicts = v[6];
            pc.stats.squashes = v[7];
            pc.stats.squashedInsts = v[8];
            pc.stats.loadsForwarded = v[9];
            pc.stats.retireStallWbFull = v[10];
            pc.stats.dispatchStallRob = v[11];
            pc.stats.dispatchStallIq = v[12];
            pc.stats.dispatchStallLsq = v[13];
            pc.stats.edkStallChecks = v[14];
            pc.stats.edkExternalStalls = v[15];
            pc.stats.edkStuckDetected = v[16];
            pc.stats.edkFencesSynthesized = v[17];

            const std::uint64_t hn = in.scalar("pcHist");
            if (!in.ok() || hn != pc.stats.issueHist.size())
                return std::nullopt;
            std::vector<std::uint64_t> hist = in.vec(hn);
            const std::uint64_t sat = in.scalar("saturated");
            if (!in.ok())
                return std::nullopt;
            pc.stats.issueHist.restore(std::move(hist), sat);

            in.expect("pcWb");
            const auto w = in.vec(6);
            if (!in.ok())
                return std::nullopt;
            pc.wb.inserted = w[0];
            pc.wb.pushes = w[1];
            pc.wb.srcIdGated = w[2];
            pc.wb.lineGated = w[3];
            pc.wb.dmbGated = w[4];
            pc.wb.memRejected = w[5];

            in.cacheStats("pcL1d", pc.l1d);
        }
    }

    const std::uint64_t traffic_on = in.scalar("traffic");
    if (!in.ok() || traffic_on > 1)
        return std::nullopt;
    r.traffic.enabled = traffic_on == 1;
    if (r.traffic.enabled) {
        in.latency("tOpen", r.traffic.open);
        in.latency("tService", r.traffic.service);
        in.latency("tOpenWarm", r.traffic.openWarmup);
        in.latency("tOpenSteady", r.traffic.openSteady);
        in.latency("tServiceWarm", r.traffic.serviceWarmup);
        in.latency("tServiceSteady", r.traffic.serviceSteady);
        const std::uint64_t wn = in.scalar("tWindows");
        if (!in.ok() || wn > 64)
            return std::nullopt;
        r.traffic.windows.resize(wn);
        for (traffic::WindowLatency &w : r.traffic.windows) {
            in.expect("tw");
            const auto v = in.vec(2);
            if (!in.ok() || v[1] > 1)
                return std::nullopt;
            w.window = static_cast<unsigned>(v[0]);
            w.warmup = v[1] == 1;
            in.latency("twOpen", w.open);
            in.latency("twService", w.service);
        }
        const std::uint64_t n = in.scalar("tStreams");
        if (!in.ok())
            return std::nullopt;
        r.traffic.streams.resize(n);
        for (traffic::StreamLatency &sl : r.traffic.streams) {
            in.expect("ts");
            const auto v = in.vec(5);
            if (!in.ok())
                return std::nullopt;
            sl.stream = static_cast<unsigned>(v[0]);
            sl.core = static_cast<unsigned>(v[1]);
            sl.shed = v[2];
            sl.retries = v[3];
            sl.failures = v[4];
            in.latency("tsOpen", sl.open);
            in.latency("tsService", sl.service);
        }
        const std::uint64_t ov_on = in.scalar("tOverload");
        if (!in.ok() || ov_on > 1)
            return std::nullopt;
        traffic::OverloadResult &ov = r.traffic.overload;
        ov.enabled = ov_on == 1;
        if (ov.enabled) {
            in.expect("tOv");
            const auto v = in.vec(19);
            if (!in.ok())
                return std::nullopt;
            ov.effectiveDepth = v[0];
            ov.offered = v[1];
            ov.admitted = v[2];
            ov.completed = v[3];
            ov.goodput = v[4];
            ov.timeouts = v[5];
            ov.failures = v[6];
            ov.steadyOffered = v[7];
            ov.steadyGoodput = v[8];
            ov.steadyHorizon = v[9];
            ov.shedQueue = v[10];
            ov.shedDeadline = v[11];
            ov.shedToken = v[12];
            ov.shedDegrade = v[13];
            ov.retries = v[14];
            ov.retryExhausted = v[15];
            ov.degradeUp = v[16];
            ov.degradeDown = v[17];
            ov.maxDegradeLevel = static_cast<unsigned>(v[18]);
            in.latency("tOvOpen", ov.open);
            in.latency("tOvGoodput", ov.goodputOpen);
        }
    }
    in.expect("end");
    if (!in.ok())
        return std::nullopt;
    return cell;
}

ResultCache::ResultCache(std::string dir) : dir_(std::move(dir))
{
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    if (ec) {
        ede_fatal("cannot create result-cache directory '", dir_,
                  "': ", ec.message());
    }
    // Sweep temp files stranded by a writer that died mid-store (a
    // crashed or SIGKILLed sweep): they are never renamed into place
    // and would otherwise accumulate forever.  A *live* concurrent
    // writer losing its tmp here merely skips that one store.
    for (const auto &entry :
         std::filesystem::directory_iterator(dir_, ec)) {
        if (entry.path().filename().string().find(".tmp.") !=
            std::string::npos) {
            std::filesystem::remove(entry.path(), ec);
        }
    }
}

std::string
ResultCache::pathFor(std::uint64_t fingerprint) const
{
    return dir_ + "/" + fingerprintHex(fingerprint) + ".snapshot";
}

std::optional<ExperimentCell>
ResultCache::load(const ExperimentPoint &point,
                  std::uint64_t fingerprint) const
{
    std::ifstream in(pathFor(fingerprint), std::ios::binary);
    if (!in)
        return std::nullopt;
    std::ostringstream text;
    text << in.rdbuf();
    return deserializeCell(text.str(), point, fingerprint);
}

void
ResultCache::store(const ExperimentCell &cell) const
{
    const std::string path = pathFor(cell.fingerprint);
    // Unique temp name per thread so parallel jobs never collide;
    // the final rename is atomic, and racing writers of the same
    // fingerprint produce identical bytes.  The cell's HostProfile is
    // deliberately not serialized: host wall time varies run to run
    // (and between ticking modes), which would break that invariant.
    std::ostringstream tmp_name;
    tmp_name << path << ".tmp."
             << std::hash<std::thread::id>{}(std::this_thread::get_id());
    const std::string tmp = tmp_name.str();
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out) {
            ede_warn("result cache: cannot write '", tmp,
                     "'; skipping store");
            return;
        }
        out << serializeCell(cell);
        out.close();
        if (!out) {
            // Short write (disk full, I/O error): never rename a
            // truncated snapshot into place, and never leak the tmp.
            ede_warn("result cache: short write on '", tmp,
                     "'; skipping store");
            std::error_code ec;
            std::filesystem::remove(tmp, ec);
            return;
        }
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        ede_warn("result cache: rename to '", path,
                 "' failed: ", ec.message());
        std::filesystem::remove(tmp, ec);
    }
}

} // namespace exp
} // namespace ede
