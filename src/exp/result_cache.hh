/**
 * @file
 * Content-addressed, on-disk cache of RunResult snapshots.
 *
 * One file per fingerprint (fingerprint.hh hashes every simulation
 * input plus the schema version), so the three figure reporters --
 * which sweep the identical (app x config) grid -- share one
 * simulation instead of re-running it per binary.  Writes go through
 * a temp file + rename, making concurrent writers (parallel jobs,
 * or two benches racing) safe: the rename is atomic and both sides
 * would write identical bytes anyway.
 *
 * A snapshot that fails any validation -- wrong magic, truncated,
 * mismatched fingerprint or histogram shape -- is treated as a miss,
 * never an error.  Temp files stranded by a writer that died before
 * its rename are swept when the cache is opened.
 */

#ifndef EDE_EXP_RESULT_CACHE_HH
#define EDE_EXP_RESULT_CACHE_HH

#include <optional>
#include <string>

#include "exp/result.hh"

namespace ede {
namespace exp {

/** Serialize a cell's measurements (cache file contents). */
std::string serializeCell(const ExperimentCell &cell);

/**
 * Parse @p text into a cell for @p point; nullopt on any mismatch.
 * @p fingerprint is the expected content address.
 */
std::optional<ExperimentCell>
deserializeCell(const std::string &text, const ExperimentPoint &point,
                std::uint64_t fingerprint);

/** The disk cache: a directory of snapshot files. */
class ResultCache
{
  public:
    /** Open (creating if needed) the cache at @p dir. */
    explicit ResultCache(std::string dir);

    /** Look up the snapshot for @p point; nullopt on miss. */
    std::optional<ExperimentCell>
    load(const ExperimentPoint &point, std::uint64_t fingerprint) const;

    /** Persist @p cell under its fingerprint. */
    void store(const ExperimentCell &cell) const;

    const std::string &dir() const { return dir_; }

  private:
    std::string pathFor(std::uint64_t fingerprint) const;

    std::string dir_;
};

} // namespace exp
} // namespace ede

#endif // EDE_EXP_RESULT_CACHE_HH
