#include "exp/runner.hh"

#include <cstdio>
#include <optional>

#include "apps/harness.hh"
#include "common/logging.hh"
#include "exp/fingerprint.hh"
#include "exp/result_cache.hh"
#include "exp/scheduler.hh"

namespace ede {
namespace exp {

ExperimentResults
runPlan(const ExperimentPlan &plan, const RunnerOptions &options)
{
    const Scheduler sched(options.jobs);
    std::optional<ResultCache> cache;
    if (!options.cacheDir.empty())
        cache.emplace(options.cacheDir);

    std::vector<ExperimentCell> cells =
        sched.map<ExperimentCell>(plan.size(), [&](std::size_t i) {
            const ExperimentPoint &point = plan.points()[i];
            const std::uint64_t fp = fingerprintPoint(point);
            if (cache) {
                if (std::optional<ExperimentCell> hit =
                        cache->load(point, fp))
                    return std::move(*hit);
            }
            const LogJobTag tag(point.label);
            WorkloadHarness h(point.app, point.config, point.spec,
                              point.appParams, point.simParams);
            h.generate();
            h.simulate();
            ExperimentCell cell;
            cell.point = point;
            cell.fingerprint = fp;
            cell.opCycles = h.opPhaseCycles();
            cell.result = h.system().result();
            cell.profile = h.system().profile();
            if (cache)
                cache->store(cell);
            return cell;
        });

    ExperimentResults results(std::move(cells));
    if (options.printSummary) {
        std::printf("[exp] %zu cells: %zu cached, %zu simulated "
                    "(jobs=%u%s)\n",
                    results.size(), results.cacheHits(),
                    results.simulated(), sched.jobs(),
                    cache ? (", cache=" + cache->dir()).c_str()
                          : ", cache off");
        std::fflush(stdout);
    }
    return results;
}

} // namespace exp
} // namespace ede
