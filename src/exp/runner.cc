#include "exp/runner.hh"

#include <cstdio>
#include <cstdlib>
#include <optional>

#include "apps/concurrent.hh"
#include "apps/harness.hh"
#include "common/logging.hh"
#include "sim/session.hh"
#include "exp/fingerprint.hh"
#include "exp/journal.hh"
#include "exp/result_cache.hh"
#include "exp/scheduler.hh"

namespace ede {
namespace exp {

namespace {

/**
 * Simulate one plan point.  Shared verbatim by the in-process path
 * and the forked worker, so isolated results are bit-identical to
 * inline ones.  @p checked selects SimFaultError over panic on a
 * structured simulator abort.
 */
/**
 * Simulate one concurrent-kernel point (bench/fig_scaling): N
 * lock-step cores running buildConcurrentTraces through a Session.
 * There is no setup/transaction split, so opCycles is the machine
 * run length.
 */
ExperimentCell
simulateConcCell(const ExperimentPoint &point, std::uint64_t fp,
                 bool checked)
{
    const LogJobTag tag(point.label);
    ConcParams cp;
    cp.cfg = point.config;
    cp.cores = static_cast<unsigned>(point.simParams.coreCount);
    cp.opsPerCore = point.concOpsPerCore;
    cp.seed = point.concSeed;
    const std::vector<Trace> traces =
        buildConcurrentTraces(point.concApp, cp);

    Session session(SimConfig::paper(point.config)
                        .withCore(point.simParams.core)
                        .withMem(point.simParams.mem)
                        .withCoreCount(point.simParams.coreCount));
    const SimResult r = session.run(RunRequest::perCore(traces));
    if (checked && !r.ok())
        throw SimFaultError(r.error);
    if (!r.ok()) {
        ede_fatal("conc cell '", point.label, "' aborted: ",
                  r.error.describe());
    }
    ExperimentCell cell;
    cell.point = point;
    cell.fingerprint = fp;
    cell.opCycles = r.stats.cycles;
    cell.result = r.stats;
    cell.profile = r.profile;
    return cell;
}

/**
 * Simulate one open-loop traffic point (bench/fig_traffic): the plan
 * expands into per-core traces inside Session::run, and the cell's
 * result carries the exact tail-latency records in stats.traffic.
 */
ExperimentCell
simulateTrafficCell(const ExperimentPoint &point, std::uint64_t fp,
                    bool checked)
{
    const LogJobTag tag(point.label);
    Session session(SimConfig::paper(point.config)
                        .withCore(point.simParams.core)
                        .withMem(point.simParams.mem)
                        .withCoreCount(point.simParams.coreCount));
    const SimResult r =
        session.run(RunRequest::ofTraffic(point.trafficPlan));
    if (checked && !r.ok())
        throw SimFaultError(r.error);
    if (!r.ok()) {
        ede_fatal("traffic cell '", point.label, "' aborted: ",
                  r.error.describe());
    }
    ExperimentCell cell;
    cell.point = point;
    cell.fingerprint = fp;
    cell.opCycles = r.stats.cycles;
    cell.result = r.stats;
    cell.profile = r.profile;
    return cell;
}

ExperimentCell
simulateCell(const ExperimentPoint &point, std::uint64_t fp,
             bool checked)
{
    if (point.traffic)
        return simulateTrafficCell(point, fp, checked);
    if (point.conc)
        return simulateConcCell(point, fp, checked);
    const LogJobTag tag(point.label);
    WorkloadHarness h(point.app, point.config, point.spec,
                      point.appParams, point.simParams);
    h.generate();
    if (checked)
        h.simulateChecked();
    else
        h.simulate();
    ExperimentCell cell;
    cell.point = point;
    cell.fingerprint = fp;
    cell.opCycles = h.opPhaseCycles();
    cell.result = h.system().result();
    cell.profile = h.system().profile();
    return cell;
}

ExperimentCell
quarantinedCell(const ExperimentPoint &point, std::uint64_t fp,
                JobFailure failure)
{
    ExperimentCell cell;
    cell.point = point;
    cell.fingerprint = fp;
    cell.failed = true;
    cell.failure = std::move(failure);
    return cell;
}

} // namespace

std::uint64_t
planSweepId(const ExperimentPlan &plan)
{
    FingerprintHasher h;
    h.field("sweep.points", static_cast<std::uint64_t>(plan.size()));
    for (const ExperimentPoint &p : plan.points())
        h.field("sweep.cell", fingerprintPoint(p));
    return h.value();
}

ExperimentResults
runPlan(const ExperimentPlan &plan, const RunnerOptions &options)
{
    const bool isolated = options.isolation == IsolationMode::Process;
    if (isolated && !processIsolationSupported())
        ede_fatal("process isolation is not supported on this platform");
    if (!options.journalPath.empty() && !isolated) {
        ede_fatal("the sweep journal requires process isolation "
                  "(--isolate)");
    }

    const Scheduler sched(options.jobs);
    std::optional<ResultCache> cache;
    if (!options.cacheDir.empty())
        cache.emplace(options.cacheDir);
    std::optional<SweepJournal> journal;
    if (!options.journalPath.empty()) {
        journal.emplace(options.journalPath, planSweepId(plan),
                        plan.size(), options.resume);
    }

    std::vector<ExperimentCell> cells(plan.size());
    auto runIndex = [&](std::size_t i) {
        const ExperimentPoint &point = plan.points()[i];
        const std::uint64_t fp = fingerprintPoint(point);

        if (journal && options.resume) {
            const auto it = journal->replayed().find(i);
            if (it != journal->replayed().end() &&
                it->second.fingerprint == fp) {
                const JournalEntry &e = it->second;
                if (e.ok) {
                    if (std::optional<ExperimentCell> cell =
                            deserializeCell(e.payload, point, fp)) {
                        cell->fromCache = false;
                        cell->fromJournal = true;
                        cells[i] = std::move(*cell);
                        return;
                    }
                    // Corrupt payload: fall through and re-run.
                } else {
                    cells[i] = quarantinedCell(point, fp, e.failure);
                    return;
                }
            }
        }

        if (cache) {
            if (std::optional<ExperimentCell> hit =
                    cache->load(point, fp)) {
                if (journal)
                    journal->recordOk(i, fp, serializeCell(*hit));
                cells[i] = std::move(*hit);
                return;
            }
        }

        if (!isolated) {
            cells[i] = simulateCell(point, fp, /*checked=*/false);
            if (cache)
                cache->store(cells[i]);
            return;
        }

        const WorkerRun run = runWithRetry(
            [&]() -> std::string {
                if (!options.chaosCrashLabel.empty() &&
                    point.label == options.chaosCrashLabel) {
                    std::abort();
                }
                return serializeCell(
                    simulateCell(point, fp, /*checked=*/true));
            },
            options.limits, options.retry, /*jitterSeed=*/fp);

        if (run.ok()) {
            if (std::optional<ExperimentCell> cell =
                    deserializeCell(run.payload, point, fp)) {
                cell->fromCache = false;
                cells[i] = std::move(*cell);
                if (cache)
                    cache->store(cells[i]);
                if (journal)
                    journal->recordOk(i, fp, run.payload);
                return;
            }
            JobFailure protocol;
            protocol.outcome = JobOutcome::Crashed;
            protocol.attempts = run.failure.attempts;
            protocol.message =
                "worker payload failed snapshot validation";
            cells[i] = quarantinedCell(point, fp, protocol);
        } else {
            ede_warn("cell '", point.label, "' quarantined: ",
                     run.failure.describe());
            cells[i] = quarantinedCell(point, fp, run.failure);
        }
        if (journal)
            journal->recordQuarantine(i, fp, cells[i].failure);
    };

    if (isolated) {
        // Failures are classified into the cells themselves; a job
        // never throws, so every cell always lands.
        sched.run(plan.size(), runIndex, FailureMode::KeepGoing);
    } else {
        // The historical contract: first failure (lowest index)
        // propagates after in-flight jobs drain.
        sched.parallelFor(plan.size(), runIndex);
    }

    ExperimentResults results(std::move(cells));
    if (options.printSummary) {
        std::printf("[exp] %zu cells: %zu cached, %zu replayed, "
                    "%zu simulated, %zu quarantined (jobs=%u%s%s)\n",
                    results.size(), results.cacheHits(),
                    results.journalReplays(), results.simulated(),
                    results.failures().size(), sched.jobs(),
                    cache ? (", cache=" + cache->dir()).c_str()
                          : ", cache off",
                    isolated ? ", isolated" : "");
        for (const ExperimentCell *f : results.failures()) {
            std::printf("[exp] quarantined '%s': %s\n",
                        f->point.label.c_str(),
                        f->failure.describe().c_str());
        }
        std::fflush(stdout);
    }
    return results;
}

} // namespace exp
} // namespace ede
