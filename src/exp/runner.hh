/**
 * @file
 * The experiment runner: plan in, keyed results out.
 *
 * Ties the layer together: each plan point is fingerprinted, looked
 * up in the result cache (when one is configured), and simulated by
 * a fresh WorkloadHarness on a scheduler worker only on a miss.
 * Results come back in plan order, so `jobs=N` is bit-identical to
 * `jobs=1` and a warm cache is bit-identical to a cold one.
 */

#ifndef EDE_EXP_RUNNER_HH
#define EDE_EXP_RUNNER_HH

#include <string>

#include "exp/plan.hh"
#include "exp/result.hh"

namespace ede {
namespace exp {

/** How to execute a plan. */
struct RunnerOptions
{
    /** Parallel jobs; 0 = hardware concurrency, 1 = serial. */
    unsigned jobs = 0;

    /** Result-cache directory; empty disables the disk cache. */
    std::string cacheDir;

    /** Print the one-line `[exp] ...` run summary on completion. */
    bool printSummary = true;
};

/** Execute every point of @p plan. */
ExperimentResults runPlan(const ExperimentPlan &plan,
                          const RunnerOptions &options = {});

} // namespace exp
} // namespace ede

#endif // EDE_EXP_RUNNER_HH
