/**
 * @file
 * The experiment runner: plan in, keyed results out.
 *
 * Ties the layer together: each plan point is fingerprinted, looked
 * up in the result cache (when one is configured), and simulated by
 * a fresh WorkloadHarness on a scheduler worker only on a miss.
 * Results come back in plan order, so `jobs=N` is bit-identical to
 * `jobs=1` and a warm cache is bit-identical to a cold one.
 *
 * With IsolationMode::Process each miss is executed in a forked
 * worker (exp/worker.hh) bounded by a wall-clock timeout and an
 * address-space cap; a crash, hang, OOM or structured SimError in
 * one cell is classified, retried per the transient-failure policy,
 * and finally *quarantined* -- the sweep still completes, the
 * surviving cells are bit-identical to a non-isolated run, and the
 * quarantined cells are reported in ExperimentResults::failures().
 * A sweep journal (exp/journal.hh) makes the run resumable: every
 * durable cell (fresh, cached or quarantined) is appended as it
 * lands, and `resume` replays compatible records so a SIGKILLed
 * campaign picks up from the last durable cell.
 */

#ifndef EDE_EXP_RUNNER_HH
#define EDE_EXP_RUNNER_HH

#include <string>

#include "exp/plan.hh"
#include "exp/result.hh"
#include "exp/worker.hh"

namespace ede {
namespace exp {

/** Where a plan point's simulation executes. */
enum class IsolationMode
{
    None,    ///< In-process, on a scheduler thread (the old path).
    Process, ///< Forked worker per cell; failures are classified.
};

/** How to execute a plan. */
struct RunnerOptions
{
    /** Parallel jobs; 0 = hardware concurrency, 1 = serial. */
    unsigned jobs = 0;

    /** Result-cache directory; empty disables the disk cache. */
    std::string cacheDir;

    /** Print the one-line `[exp] ...` run summary on completion. */
    bool printSummary = true;

    /** Execution backend for cache misses. */
    IsolationMode isolation = IsolationMode::None;

    /** Per-job resource bounds (Process isolation only). */
    WorkerLimits limits;

    /** Transient-failure retry/backoff policy (Process only). */
    RetryPolicy retry;

    /**
     * Sweep-journal path; empty disables journaling.  Requires
     * Process isolation (the journal records classified outcomes).
     */
    std::string journalPath;

    /** Replay a compatible journal instead of re-running its cells. */
    bool resume = false;

    /**
     * Test/chaos hook: a point whose label equals this calls abort()
     * inside its isolated worker before simulating -- the way tests
     * and the CI chaos job provoke a deterministic poison cell.
     * Ignored (never aborts the sweep) without Process isolation.
     */
    std::string chaosCrashLabel;
};

/** Execute every point of @p plan. */
ExperimentResults runPlan(const ExperimentPlan &plan,
                          const RunnerOptions &options = {});

/** The journal identity of @p plan (hash of every cell fingerprint). */
std::uint64_t planSweepId(const ExperimentPlan &plan);

} // namespace exp
} // namespace ede

#endif // EDE_EXP_RUNNER_HH
