#include "exp/scheduler.hh"

#include <atomic>
#include <exception>
#include <limits>
#include <mutex>
#include <thread>

namespace ede {
namespace exp {

unsigned
Scheduler::hardwareJobs()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

Scheduler::Scheduler(unsigned jobs)
    : jobs_(jobs ? jobs : hardwareJobs())
{
}

void
Scheduler::parallelFor(std::size_t n,
                       const std::function<void(std::size_t)> &fn) const
{
    if (n == 0)
        return;
    if (jobs_ <= 1 || n == 1) {
        // Serial path: index order, natural exception propagation.
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    std::atomic<std::size_t> next{0};
    std::mutex error_mutex;
    std::size_t error_index = std::numeric_limits<std::size_t>::max();
    std::exception_ptr error;
    std::atomic<bool> failed{false};

    auto worker = [&]() {
        for (;;) {
            if (failed.load(std::memory_order_relaxed))
                return;  // Drain: no new jobs after a failure.
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= n)
                return;
            try {
                fn(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(error_mutex);
                // Keep the lowest-index exception so the rethrow is
                // deterministic regardless of worker interleaving.
                if (i < error_index) {
                    error_index = i;
                    error = std::current_exception();
                }
                failed.store(true, std::memory_order_relaxed);
            }
        }
    };

    const std::size_t workers =
        std::min<std::size_t>(jobs_, n);
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w)
        pool.emplace_back(worker);
    for (std::thread &t : pool)
        t.join();

    if (error)
        std::rethrow_exception(error);
}

} // namespace exp
} // namespace ede
