#include "exp/scheduler.hh"

#include <algorithm>
#include <atomic>
#include <limits>
#include <mutex>
#include <thread>

namespace ede {
namespace exp {

unsigned
Scheduler::hardwareJobs()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

Scheduler::Scheduler(unsigned jobs)
    : jobs_(jobs ? jobs : hardwareJobs())
{
}

RunReport
Scheduler::run(std::size_t n,
               const std::function<void(std::size_t)> &fn,
               FailureMode mode) const
{
    RunReport report;
    if (n == 0)
        return report;

    if (jobs_ <= 1 || n == 1) {
        // Serial path: index order, no worker threads.
        for (std::size_t i = 0; i < n; ++i) {
            try {
                fn(i);
                report.completed.push_back(i);
            } catch (...) {
                report.errors.push_back({i, std::current_exception()});
                if (mode == FailureMode::StopOnFirstError)
                    break;
            }
        }
        return report;
    }

    std::atomic<std::size_t> next{0};
    std::atomic<bool> failed{false};
    std::mutex report_mutex;

    auto worker = [&]() {
        for (;;) {
            if (mode == FailureMode::StopOnFirstError &&
                failed.load(std::memory_order_relaxed)) {
                return;  // Drain: no new jobs after a failure.
            }
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= n)
                return;
            try {
                fn(i);
                std::lock_guard<std::mutex> lock(report_mutex);
                report.completed.push_back(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(report_mutex);
                report.errors.push_back({i, std::current_exception()});
                failed.store(true, std::memory_order_relaxed);
            }
        }
    };

    const std::size_t workers = std::min<std::size_t>(jobs_, n);
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w)
        pool.emplace_back(worker);
    for (std::thread &t : pool)
        t.join();

    // Deterministic report regardless of worker interleaving.
    std::sort(report.completed.begin(), report.completed.end());
    std::sort(report.errors.begin(), report.errors.end(),
              [](const JobError &a, const JobError &b) {
                  return a.index < b.index;
              });
    return report;
}

void
Scheduler::parallelFor(std::size_t n,
                       const std::function<void(std::size_t)> &fn) const
{
    const RunReport report =
        run(n, fn, FailureMode::StopOnFirstError);
    // Lowest-index exception, so the rethrow is deterministic
    // regardless of worker interleaving.
    if (!report.ok())
        std::rethrow_exception(report.errors.front().error);
}

} // namespace exp
} // namespace ede
