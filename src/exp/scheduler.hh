/**
 * @file
 * Thread-pool scheduler for independent simulation jobs.
 *
 * Every WorkloadHarness builds its own System, so the experiment
 * grids (app x config sweeps, ablation axes, crash-scenario cells)
 * are embarrassingly parallel.  The scheduler exploits that while
 * keeping results *deterministic*: outputs are collected by job
 * index, never by completion order, so `jobs=8` is bit-identical to
 * `jobs=1`.
 *
 * Failure semantics are explicit via FailureMode:
 *
 *  - StopOnFirstError (parallelFor's behaviour): once a job throws,
 *    no *new* jobs start; in-flight jobs drain, and the lowest-index
 *    captured exception is rethrown on the calling thread.  The
 *    indices of jobs that *did* complete are no longer discarded --
 *    run() surfaces them in its RunReport, so a caller can keep the
 *    finished work (the keep-going runner policy is built on this).
 *
 *  - KeepGoing: every job runs regardless of failures; the report
 *    carries every completed index and every captured error, sorted
 *    by index.  Nothing is rethrown.
 *
 * With jobs=1 everything runs inline on the calling thread in index
 * order -- exactly the old serial behaviour.
 */

#ifndef EDE_EXP_SCHEDULER_HH
#define EDE_EXP_SCHEDULER_HH

#include <cstddef>
#include <exception>
#include <functional>
#include <optional>
#include <vector>

namespace ede {
namespace exp {

/** What the scheduler does when a job throws. */
enum class FailureMode
{
    StopOnFirstError, ///< Drain in-flight jobs, start nothing new.
    KeepGoing,        ///< Run every job; collect all errors.
};

/** One captured job exception. */
struct JobError
{
    std::size_t index = 0;
    std::exception_ptr error;
};

/** What a run() call completed and what it failed. */
struct RunReport
{
    std::vector<std::size_t> completed; ///< Sorted finished indices.
    std::vector<JobError> errors;       ///< Sorted by index.

    bool ok() const { return errors.empty(); }
};

/** Runs index-addressed jobs across a bounded set of worker threads. */
class Scheduler
{
  public:
    /** @param jobs worker count; 0 means hardware concurrency. */
    explicit Scheduler(unsigned jobs = 0);

    /** Resolved worker count (>= 1). */
    unsigned jobs() const { return jobs_; }

    /** The machine's hardware concurrency (>= 1). */
    static unsigned hardwareJobs();

    /**
     * Run fn(0) .. fn(n-1), each exactly once, across the workers.
     * Blocks until all started jobs finish; rethrows the
     * lowest-index captured exception, if any.  Callers that must
     * not lose completed work on a failure use run() instead.
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)> &fn) const;

    /**
     * As parallelFor, but never throws: returns the completed
     * indices and every captured error (per @p mode's policy on
     * whether jobs keep starting after the first failure).
     */
    RunReport run(std::size_t n,
                  const std::function<void(std::size_t)> &fn,
                  FailureMode mode) const;

    /**
     * As parallelFor, collecting fn(i) into slot i of the returned
     * vector (deterministic order independent of scheduling).
     */
    template <typename T>
    std::vector<T>
    map(std::size_t n, const std::function<T(std::size_t)> &fn) const
    {
        std::vector<std::optional<T>> slots(n);
        parallelFor(n, [&](std::size_t i) { slots[i].emplace(fn(i)); });
        std::vector<T> out;
        out.reserve(n);
        for (std::optional<T> &slot : slots)
            out.push_back(std::move(*slot));
        return out;
    }

  private:
    unsigned jobs_;
};

} // namespace exp
} // namespace ede

#endif // EDE_EXP_SCHEDULER_HH
