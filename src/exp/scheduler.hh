/**
 * @file
 * Thread-pool scheduler for independent simulation jobs.
 *
 * Every WorkloadHarness builds its own System, so the experiment
 * grids (app x config sweeps, ablation axes, crash-scenario cells)
 * are embarrassingly parallel.  The scheduler exploits that while
 * keeping results *deterministic*: outputs are collected by job
 * index, never by completion order, so `jobs=8` is bit-identical to
 * `jobs=1`.
 *
 * Failure semantics: the first raised exception (lowest job index
 * among those that threw) is rethrown on the calling thread after
 * every in-flight job has drained; once a job has thrown, no *new*
 * jobs are started.  With jobs=1 everything runs inline on the
 * calling thread in index order -- exactly the old serial behaviour.
 */

#ifndef EDE_EXP_SCHEDULER_HH
#define EDE_EXP_SCHEDULER_HH

#include <cstddef>
#include <functional>
#include <optional>
#include <vector>

namespace ede {
namespace exp {

/** Runs index-addressed jobs across a bounded set of worker threads. */
class Scheduler
{
  public:
    /** @param jobs worker count; 0 means hardware concurrency. */
    explicit Scheduler(unsigned jobs = 0);

    /** Resolved worker count (>= 1). */
    unsigned jobs() const { return jobs_; }

    /** The machine's hardware concurrency (>= 1). */
    static unsigned hardwareJobs();

    /**
     * Run fn(0) .. fn(n-1), each exactly once, across the workers.
     * Blocks until all started jobs finish; rethrows the
     * lowest-index captured exception, if any.
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)> &fn) const;

    /**
     * As parallelFor, collecting fn(i) into slot i of the returned
     * vector (deterministic order independent of scheduling).
     */
    template <typename T>
    std::vector<T>
    map(std::size_t n, const std::function<T(std::size_t)> &fn) const
    {
        std::vector<std::optional<T>> slots(n);
        parallelFor(n, [&](std::size_t i) { slots[i].emplace(fn(i)); });
        std::vector<T> out;
        out.reserve(n);
        for (std::optional<T> &slot : slots)
            out.push_back(std::move(*slot));
        return out;
    }

  private:
    unsigned jobs_;
};

} // namespace exp
} // namespace ede

#endif // EDE_EXP_SCHEDULER_HH
