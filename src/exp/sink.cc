#include "exp/sink.hh"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/logging.hh"
#include "exp/fingerprint.hh"
#include "exp/profile.hh"

namespace ede {
namespace exp {

namespace {

/** Minimal JSON string escaping (labels are plain ASCII). */
std::string
jsonEscape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
jsonDouble(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

/**
 * One exact latency record as an inline JSON object.  An empty
 * population reports explicit nulls -- a zero percentile and a
 * missing one are different claims, and shed-heavy overload cells
 * produce genuinely empty populations.
 */
void
emitLatency(std::ostream &os, const traffic::LatencySummary &s)
{
    if (s.count == 0) {
        os << "{\"count\": 0, \"p50\": null, \"p99\": null, "
              "\"p999\": null, \"max\": null, \"mean\": null}";
        return;
    }
    os << "{\"count\": " << s.count << ", \"p50\": " << s.p50
       << ", \"p99\": " << s.p99 << ", \"p999\": " << s.p999
       << ", \"max\": " << s.max << ", \"mean\": "
       << jsonDouble(s.mean()) << "}";
}

void
emitCell(std::ostream &os, const ExperimentCell &c)
{
    const RunResult &r = c.result;
    os << "    {\n";
    os << "      \"label\": \"" << jsonEscape(c.point.label) << "\",\n";
    os << "      \"app\": \""
       << (c.point.traffic ? "traffic"
           : c.point.conc ? concAppName(c.point.concApp)
                          : appName(c.point.app))
       << "\",\n";
    os << "      \"config\": \"" << configName(c.point.config)
       << "\",\n";
    os << "      \"fingerprint\": \"" << fingerprintHex(c.fingerprint)
       << "\",\n";
    os << "      \"from_cache\": " << (c.fromCache ? "true" : "false")
       << ",\n";
    if (c.point.traffic) {
        // Traffic cells carry the offered-load point and the mix
        // knobs instead of a transaction structure.
        const traffic::TrafficPlan &tp = c.point.trafficPlan;
        os << "      \"streams\": " << tp.streams << ",\n";
        os << "      \"txns_per_stream\": " << tp.txnsPerStream
           << ",\n";
        os << "      \"ops_per_txn\": " << tp.opsPerTxn << ",\n";
        os << "      \"arrival\": \""
           << traffic::arrivalKindName(tp.arrival.kind) << "\",\n";
        os << "      \"mean_gap\": " << jsonDouble(tp.arrival.meanGap)
           << ",\n";
        if (tp.arrival.kind == traffic::ArrivalKind::ClosedPool) {
            os << "      \"pool_size\": " << tp.arrival.poolSize
               << ",\n";
            os << "      \"think_time\": "
               << jsonDouble(tp.arrival.thinkTime) << ",\n";
        }
        os << "      \"zipf_theta\": "
           << jsonDouble(tp.mix.zipfTheta) << ",\n";
        os << "      \"read_fraction\": "
           << jsonDouble(tp.mix.readFraction) << ",\n";
        os << "      \"warmup_permille\": " << tp.warmupPermille
           << ",\n";
        os << "      \"admission\": \""
           << traffic::admissionKindName(tp.policy.admission)
           << "\",\n";
        os << "      \"seed\": " << tp.seed << ",\n";
    } else if (c.point.conc) {
        // Concurrent-kernel cells have no transaction structure;
        // the workload knobs are per-core ops and the interleaving
        // seed.
        os << "      \"ops_per_core\": " << c.point.concOpsPerCore
           << ",\n";
        os << "      \"seed\": " << c.point.concSeed << ",\n";
    } else {
        os << "      \"txns\": " << c.point.spec.txns << ",\n";
        os << "      \"ops_per_txn\": " << c.point.spec.opsPerTxn
           << ",\n";
        os << "      \"seed\": " << c.point.spec.seed << ",\n";
    }
    os << "      \"op_cycles\": " << c.opCycles << ",\n";
    os << "      \"cycles\": " << r.cycles << ",\n";
    os << "      \"core_count\": " << r.coreCount << ",\n";
    os << "      \"retired\": " << r.core.retired << ",\n";
    os << "      \"ipc\": " << jsonDouble(r.core.ipc()) << ",\n";
    os << "      \"cores\": [";
    for (std::size_t i = 0; i < r.perCore.size(); ++i) {
        const CoreRunStats &pc = r.perCore[i];
        os << (i ? ", " : "") << "{\"core\": " << pc.core
           << ", \"cycles\": " << pc.stats.cycles << ", \"retired\": "
           << pc.stats.retired << ", \"ipc\": "
           << jsonDouble(pc.stats.ipc()) << ", \"l1d_misses\": "
           << pc.l1d.misses << ", \"snoop_invalidations\": "
           << pc.l1d.snoopInvalidations << "}";
    }
    os << "],\n";
    os << "      \"coherence\": {\"snoops\": " << r.coherence.snoops
       << ", \"invalidations\": " << r.coherence.invalidations
       << ", \"downgrades\": " << r.coherence.downgrades
       << ", \"dirty_handoffs\": " << r.coherence.dirtyHandoffs
       << "},\n";
    os << "      \"issue_hist\": [";
    for (std::size_t i = 0; i < r.core.issueHist.size(); ++i) {
        os << (i ? ", " : "") << r.core.issueHist.count(i);
    }
    os << "],\n";
    os << "      \"nvm_occupancy_mean\": "
       << jsonDouble(r.nvmOccupancy.mean()) << ",\n";
    os << "      \"nvm\": {\"writes_accepted\": "
       << r.nvm.writesAccepted << ", \"writes_coalesced\": "
       << r.nvm.writesCoalesced << ", \"media_writes\": "
       << r.nvm.mediaWrites << ", \"buffer_full_rejects\": "
       << r.nvm.bufferFullRejects << ", \"reads\": " << r.nvm.reads
       << "},\n";
    os << "      \"write_buffer\": {\"inserted\": " << r.wb.inserted
       << ", \"src_id_gated\": " << r.wb.srcIdGated
       << ", \"dmb_gated\": " << r.wb.dmbGated << "},\n";
    os << "      \"edk\": {\"stall_checks\": " << r.core.edkStallChecks
       << ", \"external_stalls\": " << r.core.edkExternalStalls
       << ", \"stuck_detected\": " << r.core.edkStuckDetected
       << ", \"fences_synthesized\": " << r.core.edkFencesSynthesized
       << "},\n";
    os << "      \"caches\": {\"l1d_misses\": " << r.l1d.misses
       << ", \"l2_misses\": " << r.l2.misses << ", \"l3_misses\": "
       << r.l3.misses << "},\n";
    os << "      \"dram\": {\"reads\": " << r.dram.reads
       << ", \"writes\": " << r.dram.writes << "},\n";
    if (r.traffic.enabled) {
        // Exact open-loop and closed-loop (service) tail latencies,
        // aggregate and per stream.  Integer cycles throughout: the
        // values are bit-identical across --jobs counts and tickers.
        os << "      \"traffic\": {\n";
        os << "        \"open\": ";
        emitLatency(os, r.traffic.open);
        os << ",\n        \"service\": ";
        emitLatency(os, r.traffic.service);
        // Headline steady-state numbers exclude the warmup fraction;
        // the windows array is the per-window time series.
        os << ",\n        \"open_warmup\": ";
        emitLatency(os, r.traffic.openWarmup);
        os << ",\n        \"open_steady\": ";
        emitLatency(os, r.traffic.openSteady);
        os << ",\n        \"service_warmup\": ";
        emitLatency(os, r.traffic.serviceWarmup);
        os << ",\n        \"service_steady\": ";
        emitLatency(os, r.traffic.serviceSteady);
        os << ",\n        \"windows\": [";
        for (std::size_t i = 0; i < r.traffic.windows.size(); ++i) {
            const traffic::WindowLatency &w = r.traffic.windows[i];
            os << (i ? ", " : "") << "{\"window\": " << w.window
               << ", \"warmup\": " << (w.warmup ? "true" : "false")
               << ", \"open\": ";
            emitLatency(os, w.open);
            os << ", \"service\": ";
            emitLatency(os, w.service);
            os << "}";
        }
        os << "],\n        \"streams\": [";
        for (std::size_t i = 0; i < r.traffic.streams.size(); ++i) {
            const traffic::StreamLatency &sl = r.traffic.streams[i];
            os << (i ? ", " : "") << "{\"stream\": " << sl.stream
               << ", \"core\": " << sl.core << ", \"shed\": "
               << sl.shed << ", \"retries\": " << sl.retries
               << ", \"failures\": " << sl.failures << ", \"open\": ";
            emitLatency(os, sl.open);
            os << ", \"service\": ";
            emitLatency(os, sl.service);
            os << "}";
        }
        os << "]";
        if (r.traffic.overload.enabled) {
            const traffic::OverloadResult &ov = r.traffic.overload;
            os << ",\n        \"overload\": {\n";
            os << "          \"effective_depth\": "
               << ov.effectiveDepth << ",\n";
            os << "          \"offered\": " << ov.offered << ",\n";
            os << "          \"completed\": " << ov.completed
               << ",\n";
            os << "          \"goodput\": " << ov.goodput << ",\n";
            os << "          \"timeouts\": " << ov.timeouts << ",\n";
            os << "          \"failures\": " << ov.failures << ",\n";
            os << "          \"steady_offered\": " << ov.steadyOffered
               << ",\n";
            os << "          \"steady_goodput\": " << ov.steadyGoodput
               << ",\n";
            os << "          \"steady_horizon\": " << ov.steadyHorizon
               << ",\n";
            os << "          \"shed\": {\"queue\": " << ov.shedQueue
               << ", \"deadline\": " << ov.shedDeadline
               << ", \"token\": " << ov.shedToken
               << ", \"degrade\": " << ov.shedDegrade << "},\n";
            os << "          \"retries\": " << ov.retries << ",\n";
            os << "          \"retry_exhausted\": "
               << ov.retryExhausted << ",\n";
            os << "          \"degrade\": {\"up\": " << ov.degradeUp
               << ", \"down\": " << ov.degradeDown
               << ", \"max_level\": " << ov.maxDegradeLevel
               << "},\n";
            os << "          \"open\": ";
            emitLatency(os, ov.open);
            os << ",\n          \"goodput_open\": ";
            emitLatency(os, ov.goodputOpen);
            os << "\n        }";
        }
        os << "\n      },\n";
    }
    // Host-side measurement of the simulation itself; all-zero for
    // cache-restored cells (host wall time is never cached).
    os << "      \"host_perf\": " << profileToJson(c.profile, "      ")
       << "\n";
    os << "    }";
}

} // namespace

std::string
resultsToJson(const std::string &benchName,
              const ExperimentResults &results)
{
    std::ostringstream os;
    os << "{\n";
    os << "  \"bench\": \"" << jsonEscape(benchName) << "\",\n";
    os << "  \"schema\": " << kResultSchemaVersion << ",\n";
    os << "  \"cache\": {\"hits\": " << results.cacheHits()
       << ", \"replayed\": " << results.journalReplays()
       << ", \"simulated\": " << results.simulated() << "},\n";
    os << "  \"cells\": [\n";
    // Quarantined cells carry no measurements; they are reported in
    // the "failures" array instead so downstream consumers never
    // mistake an empty RunResult for data.
    std::vector<const ExperimentCell *> ok_cells;
    for (const ExperimentCell &c : results.cells()) {
        if (!c.failed)
            ok_cells.push_back(&c);
    }
    for (std::size_t i = 0; i < ok_cells.size(); ++i) {
        emitCell(os, *ok_cells[i]);
        os << (i + 1 < ok_cells.size() ? ",\n" : "\n");
    }
    os << "  ],\n";
    os << "  \"failures\": [\n";
    const auto &failures = results.failures();
    for (std::size_t i = 0; i < failures.size(); ++i) {
        const ExperimentCell &c = *failures[i];
        const JobFailure &f = c.failure;
        os << "    {\n";
        os << "      \"label\": \"" << jsonEscape(c.point.label)
           << "\",\n";
        os << "      \"app\": \""
           << (c.point.conc ? concAppName(c.point.concApp)
                            : appName(c.point.app))
           << "\",\n";
        os << "      \"config\": \"" << configName(c.point.config)
           << "\",\n";
        os << "      \"fingerprint\": \""
           << fingerprintHex(c.fingerprint) << "\",\n";
        os << "      \"outcome\": \"" << jobOutcomeName(f.outcome)
           << "\",\n";
        os << "      \"signal\": " << f.signal << ",\n";
        os << "      \"exit_code\": " << f.exitCode << ",\n";
        os << "      \"attempts\": " << f.attempts << ",\n";
        os << "      \"message\": \"" << jsonEscape(f.message)
           << "\",\n";
        os << "      \"stderr_tail\": \"" << jsonEscape(f.stderrTail)
           << "\"\n";
        os << "    }" << (i + 1 < failures.size() ? ",\n" : "\n");
    }
    os << "  ]\n";
    os << "}\n";
    return os.str();
}

void
writeJsonArtifact(const std::string &path, const std::string &benchName,
                  const ExperimentResults &results)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        ede_fatal("cannot write JSON artifact '", path, "'");
    out << resultsToJson(benchName, results);
    out.close();
    if (!out)
        ede_fatal("short write on JSON artifact '", path, "'");
    std::printf("[exp] wrote %s (%zu cells)\n", path.c_str(),
                results.size());
}

} // namespace exp
} // namespace ede
