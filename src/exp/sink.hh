/**
 * @file
 * Unified JSON result sink.
 *
 * Every bench can emit its sweep as a machine-readable
 * `BENCH_<name>.json` artifact (--json), giving the CI perf
 * trajectory one schema across figures, ablations and the fault
 * campaign instead of scraping text tables.
 */

#ifndef EDE_EXP_SINK_HH
#define EDE_EXP_SINK_HH

#include <string>

#include "exp/result.hh"

namespace ede {
namespace exp {

/** Render @p results as the unified JSON document. */
std::string resultsToJson(const std::string &benchName,
                          const ExperimentResults &results);

/**
 * Write @p results as JSON to @p path (fatal on I/O error) and
 * report the artifact on stdout.
 */
void writeJsonArtifact(const std::string &path,
                       const std::string &benchName,
                       const ExperimentResults &results);

} // namespace exp
} // namespace ede

#endif // EDE_EXP_SINK_HH
