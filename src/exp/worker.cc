#include "exp/worker.hh"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <new>
#include <sstream>
#include <thread>

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include "common/random.hh"
#include "sim/session.hh"

namespace ede {
namespace exp {

namespace {

/**
 * Child exit codes of the worker protocol.  The payload channel
 * carries a one-byte tag ('P' payload, 'F' SimFault text, 'E' escaped
 * std::exception text) followed by the content; everything else is
 * classified from the wait status.
 */
constexpr int kOomExitCode = 77;      ///< std::bad_alloc in the job.
constexpr int kProtocolExitCode = 78; ///< Child-side plumbing failed.

constexpr char kTagPayload = 'P';
constexpr char kTagSimFault = 'F';
constexpr char kTagException = 'E';

#if defined(__SANITIZE_ADDRESS__)
constexpr bool kSanitized = true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
constexpr bool kSanitized = true;
#else
constexpr bool kSanitized = false;
#endif
#else
constexpr bool kSanitized = false;
#endif

void
writeAll(int fd, const void *data, std::size_t len)
{
    const char *p = static_cast<const char *>(data);
    while (len) {
        const ssize_t n = ::write(fd, p, len);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return;  // Parent went away; nothing left to report to.
        }
        p += n;
        len -= static_cast<std::size_t>(n);
    }
}

/** Everything the child does after fork(); never returns. */
[[noreturn]] void
childMain(const std::function<std::string()> &job,
          const WorkerLimits &limits, int payloadFd, int stderrFd)
{
    // The job's stderr (warnings, sanitizer reports, abort messages)
    // flows to the parent's capture pipe.
    ::dup2(stderrFd, STDERR_FILENO);
    ::close(stderrFd);

    if (limits.memLimitBytes && !kSanitized) {
        struct rlimit rl;
        rl.rlim_cur = limits.memLimitBytes;
        rl.rlim_max = limits.memLimitBytes;
        ::setrlimit(RLIMIT_AS, &rl);
    }

    char tag = kTagPayload;
    std::string content;
    try {
        content = job();
    } catch (const SimFaultError &e) {
        tag = kTagSimFault;
        content = e.what();
    } catch (const std::bad_alloc &) {
        ::_exit(kOomExitCode);
    } catch (const std::exception &e) {
        tag = kTagException;
        content = e.what();
    } catch (...) {
        tag = kTagException;
        content = "unknown exception";
    }
    writeAll(payloadFd, &tag, 1);
    writeAll(payloadFd, content.data(), content.size());
    ::close(payloadFd);
    ::_exit(0);
}

/** Append @p fd's readable bytes to @p out; false once fd hit EOF. */
bool
drainFd(int fd, std::string &out)
{
    char buf[4096];
    for (;;) {
        const ssize_t n = ::read(fd, buf, sizeof(buf));
        if (n > 0) {
            out.append(buf, static_cast<std::size_t>(n));
            continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
            return true;
        if (n < 0 && errno == EINTR)
            continue;
        return false;  // EOF (or unrecoverable error): done.
    }
}

void
setNonBlocking(int fd)
{
    ::fcntl(fd, F_SETFL, ::fcntl(fd, F_GETFL, 0) | O_NONBLOCK);
}

std::string
tailOf(const std::string &text, std::size_t keep)
{
    if (text.size() <= keep)
        return text;
    return text.substr(text.size() - keep);
}

} // namespace

const char *
jobOutcomeName(JobOutcome outcome)
{
    switch (outcome) {
      case JobOutcome::Ok:
        return "ok";
      case JobOutcome::Crashed:
        return "crashed";
      case JobOutcome::TimedOut:
        return "timed-out";
      case JobOutcome::OutOfMemory:
        return "out-of-memory";
      case JobOutcome::SimFault:
        return "sim-fault";
    }
    return "unknown";
}

bool
outcomeIsTransient(JobOutcome outcome)
{
    return outcome == JobOutcome::Crashed ||
           outcome == JobOutcome::TimedOut ||
           outcome == JobOutcome::OutOfMemory;
}

bool
processIsolationSupported()
{
#if defined(__unix__) || defined(__APPLE__)
    return true;
#else
    return false;
#endif
}

std::string
JobFailure::describe() const
{
    std::ostringstream os;
    os << jobOutcomeName(outcome);
    if (signal)
        os << " (signal " << signal << " " << strsignal(signal) << ")";
    else if (outcome != JobOutcome::SimFault)
        os << " (exit " << exitCode << ")";
    os << " after " << attempts
       << (attempts == 1 ? " attempt" : " attempts");
    if (!message.empty()) {
        // First line only: SimFault messages carry the whole dump.
        const std::size_t nl = message.find('\n');
        os << ": " << message.substr(0, nl);
    }
    return os.str();
}

WorkerRun
runInProcess(const std::function<std::string()> &job,
             const WorkerLimits &limits)
{
    WorkerRun run;
    int payload_pipe[2];
    int stderr_pipe[2];
    if (::pipe(payload_pipe) != 0) {
        run.failure.message = "pipe() failed";
        return run;
    }
    if (::pipe(stderr_pipe) != 0) {
        ::close(payload_pipe[0]);
        ::close(payload_pipe[1]);
        run.failure.message = "pipe() failed";
        return run;
    }

    // Flush stdio so the child never re-emits buffered parent output.
    std::fflush(stdout);
    std::fflush(stderr);

    const pid_t pid = ::fork();
    if (pid < 0) {
        for (int fd : {payload_pipe[0], payload_pipe[1],
                       stderr_pipe[0], stderr_pipe[1]})
            ::close(fd);
        run.failure.message = "fork() failed";
        return run;
    }
    if (pid == 0) {
        ::close(payload_pipe[0]);
        ::close(stderr_pipe[0]);
        childMain(job, limits, payload_pipe[1], stderr_pipe[1]);
    }

    ::close(payload_pipe[1]);
    ::close(stderr_pipe[1]);
    setNonBlocking(payload_pipe[0]);
    setNonBlocking(stderr_pipe[0]);

    // Drain both pipes together (a full pipe would otherwise wedge
    // the child) until both hit EOF or the deadline passes.
    std::string payload;
    std::string child_stderr;
    bool timed_out = false;
    const auto start = std::chrono::steady_clock::now();
    bool payload_open = true;
    bool stderr_open = true;
    while (payload_open || stderr_open) {
        struct pollfd fds[2];
        nfds_t nfds = 0;
        if (payload_open)
            fds[nfds++] = {payload_pipe[0], POLLIN, 0};
        if (stderr_open)
            fds[nfds++] = {stderr_pipe[0], POLLIN, 0};

        int wait_ms = -1;
        if (limits.timeoutMs) {
            const auto elapsed =
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    std::chrono::steady_clock::now() - start)
                    .count();
            const std::int64_t left =
                static_cast<std::int64_t>(limits.timeoutMs) - elapsed;
            if (left <= 0) {
                timed_out = true;
                break;
            }
            wait_ms = static_cast<int>(left);
        }
        const int ready = ::poll(fds, nfds, wait_ms);
        if (ready < 0 && errno == EINTR)
            continue;
        if (ready == 0) {
            timed_out = true;
            break;
        }
        if (payload_open)
            payload_open = drainFd(payload_pipe[0], payload);
        if (stderr_open)
            stderr_open = drainFd(stderr_pipe[0], child_stderr);
    }

    if (timed_out) {
        ::kill(pid, SIGKILL);
        // Late output is still worth keeping for the record.
        drainFd(payload_pipe[0], payload);
        drainFd(stderr_pipe[0], child_stderr);
    }
    ::close(payload_pipe[0]);
    ::close(stderr_pipe[0]);

    int status = 0;
    while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
    }

    JobFailure &f = run.failure;
    f.stderrTail = tailOf(child_stderr, limits.stderrTailBytes);

    if (timed_out) {
        run.outcome = JobOutcome::TimedOut;
        f.outcome = JobOutcome::TimedOut;
        f.signal = SIGKILL;
        return run;
    }
    if (WIFSIGNALED(status)) {
        run.outcome = JobOutcome::Crashed;
        f.outcome = JobOutcome::Crashed;
        f.signal = WTERMSIG(status);
        return run;
    }
    const int code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    if (code == kOomExitCode) {
        run.outcome = JobOutcome::OutOfMemory;
        f.outcome = JobOutcome::OutOfMemory;
        f.exitCode = code;
        return run;
    }
    if (code == 0 && !payload.empty() && payload[0] == kTagPayload) {
        run.outcome = JobOutcome::Ok;
        run.payload = payload.substr(1);
        return run;
    }
    if (code == 0 && !payload.empty() && payload[0] == kTagSimFault) {
        run.outcome = JobOutcome::SimFault;
        f.outcome = JobOutcome::SimFault;
        f.message = payload.substr(1);
        return run;
    }
    run.outcome = JobOutcome::Crashed;
    f.outcome = JobOutcome::Crashed;
    f.exitCode = code;
    if (code == 0 && !payload.empty() && payload[0] == kTagException)
        f.message = payload.substr(1);
    else if (code == kProtocolExitCode)
        f.message = "worker protocol failure in child";
    else if (payload.empty())
        f.message = "child exited without a payload";
    return run;
}

WorkerRun
runWithRetry(const std::function<std::string()> &job,
             const WorkerLimits &limits, const RetryPolicy &retry,
             std::uint64_t jitterSeed)
{
    const unsigned attempts = retry.maxAttempts ? retry.maxAttempts : 1;
    Rng rng(jitterSeed ^ 0xa5a5a5a5deadbeefull);
    WorkerRun run;
    for (unsigned attempt = 1;; ++attempt) {
        run = runInProcess(job, limits);
        run.failure.attempts = attempt;
        if (run.ok() || !outcomeIsTransient(run.outcome) ||
            attempt >= attempts) {
            return run;
        }
        // Exponential backoff, capped, with +/-50% deterministic
        // jitter so a herd of retrying workers spreads out while two
        // runs of the same sweep still sleep identically.
        std::uint64_t delay =
            retry.backoffBaseMs
                ? retry.backoffBaseMs << std::min(attempt - 1, 20u)
                : 0;
        delay = std::min(delay, retry.backoffMaxMs);
        if (delay) {
            delay = delay / 2 + rng.below(delay / 2 + 1);
            std::this_thread::sleep_for(
                std::chrono::milliseconds(delay));
        }
    }
}

} // namespace exp
} // namespace ede
