/**
 * @file
 * Process-isolated job execution for the experiment layer.
 *
 * A sweep cell that calls abort(), trips an ASan report, leaks until
 * the OOM killer fires, or hangs past the watchdog used to take the
 * whole campaign down with it, discarding every completed result.
 * runInProcess() gives each job the isolation of a real job system:
 * the job runs in a forked child bounded by a wall-clock timeout and
 * an address-space cap, serializes its result string back over a
 * pipe, and any failure is *classified* -- Crashed (signal or bad
 * exit), TimedOut, OutOfMemory, or SimFault (a structured SimError
 * raised as SimFaultError) -- together with the tail of the child's
 * stderr, instead of being fatal to the sweep.
 *
 * runWithRetry() layers the failure policy on top: transient classes
 * (Crashed / TimedOut / OutOfMemory may be machine-load artifacts)
 * are retried with exponential backoff and deterministic seeded
 * jitter; a job still failing after the attempt budget is returned as
 * a quarantinable failure record.  SimFault is never retried -- a
 * structured simulator abort is deterministic in the inputs.
 *
 * The fork re-enters the in-process job closure directly (no exec, so
 * arbitrary plan points need no argv serialization); the child exits
 * only through _exit(), never running the parent's atexit chain.
 */

#ifndef EDE_EXP_WORKER_HH
#define EDE_EXP_WORKER_HH

#include <cstdint>
#include <functional>
#include <string>

namespace ede {
namespace exp {

/** How an isolated job ended. */
enum class JobOutcome
{
    Ok,          ///< Payload delivered.
    Crashed,     ///< Killed by a signal or exited uncleanly.
    TimedOut,    ///< Exceeded the wall-clock budget; SIGKILLed.
    OutOfMemory, ///< Exceeded the address-space cap.
    SimFault,    ///< Structured SimError (SimFaultError) in the job.
};

const char *jobOutcomeName(JobOutcome outcome);

/** Resource bounds for one isolated job. */
struct WorkerLimits
{
    /** Wall-clock budget in milliseconds; 0 = unbounded. */
    std::uint64_t timeoutMs = 0;

    /**
     * Child address-space cap (RLIMIT_AS) in bytes; 0 = unbounded.
     * Ignored under ASan/UBSan builds, whose shadow mappings make
     * RLIMIT_AS meaningless.
     */
    std::uint64_t memLimitBytes = 0;

    /** Bytes of the child's stderr tail kept in the failure record. */
    std::size_t stderrTailBytes = 4096;
};

/** Typed record of one failed (or quarantined) job. */
struct JobFailure
{
    JobOutcome outcome = JobOutcome::Crashed;
    int signal = 0;          ///< Terminating signal (0 = none).
    int exitCode = 0;        ///< Exit status when not signaled.
    unsigned attempts = 1;   ///< Executions including the failing one.
    std::string message;     ///< SimFault text / protocol detail.
    std::string stderrTail;  ///< Last bytes the child wrote to stderr.

    /** One-line `outcome(signal/exit, attempts): message` summary. */
    std::string describe() const;
};

/** Result of one isolated execution. */
struct WorkerRun
{
    JobOutcome outcome = JobOutcome::Crashed;
    std::string payload;  ///< The job's return string when Ok.
    JobFailure failure;   ///< Meaningful when !ok().

    bool ok() const { return outcome == JobOutcome::Ok; }
};

/** Retry/backoff policy for transient failure classes. */
struct RetryPolicy
{
    unsigned maxAttempts = 3;          ///< Total executions per job.
    std::uint64_t backoffBaseMs = 50;  ///< First-retry delay.
    std::uint64_t backoffMaxMs = 2000; ///< Exponential-growth cap.
};

/**
 * True for failure classes worth retrying: Crashed, TimedOut and
 * OutOfMemory can all be artifacts of a loaded host.  SimFault is a
 * deterministic function of the job's inputs and never retried.
 */
bool outcomeIsTransient(JobOutcome outcome);

/** True when this platform supports process isolation (POSIX fork). */
bool processIsolationSupported();

/**
 * Run @p job once in a forked child under @p limits.  The child's
 * return string comes back as the payload; any failure is classified
 * into a JobFailure with the child's stderr tail attached.
 */
WorkerRun runInProcess(const std::function<std::string()> &job,
                       const WorkerLimits &limits);

/**
 * runInProcess with the retry policy applied: transient failures are
 * re-executed up to @p retry.maxAttempts times with exponential
 * backoff and jitter drawn deterministically from @p jitterSeed, so
 * two runs of the same sweep sleep identically.  The returned
 * failure's `attempts` counts every execution.
 */
WorkerRun runWithRetry(const std::function<std::string()> &job,
                       const WorkerLimits &limits,
                       const RetryPolicy &retry,
                       std::uint64_t jitterSeed);

} // namespace exp
} // namespace ede

#endif // EDE_EXP_WORKER_HH
