#include "fault/campaign.hh"

#include <algorithm>
#include <memory>
#include <sstream>

#include "apps/harness.hh"
#include "common/logging.hh"
#include "exp/scheduler.hh"
#include "fault/crash_image.hh"
#include "nvm/undo_log.hh"

namespace ede {

namespace {

/** Decorrelated 64-bit stream: one value per (seed, salt) pair. */
std::uint64_t
mixSeed(std::uint64_t seed, std::uint64_t salt)
{
    Rng rng(seed ^ (salt * 0x9e3779b97f4a7c15ull));
    return rng.next();
}

std::uint64_t
configSalt(Config cfg)
{
    return static_cast<std::uint64_t>(cfg) + 1;
}

/**
 * Candidate crash cycles at persist boundaries (each accept cycle and
 * the cycle after it), stratified over inter-commit windows when the
 * budget is smaller than the candidate set.  @p budget 0 or larger
 * than the candidate count means exhaustive.
 */
std::vector<Cycle>
selectCrashPoints(const WorkloadHarness &h, std::size_t budget)
{
    const Cycle setup_done = h.setupCompleteCycle();
    std::vector<Cycle> candidates;
    for (const PersistEvent &ev : h.system().persistEvents()) {
        if (ev.cycle < setup_done)
            continue;
        candidates.push_back(ev.cycle);
        candidates.push_back(ev.cycle + 1);
    }
    std::sort(candidates.begin(), candidates.end());
    candidates.erase(
        std::unique(candidates.begin(), candidates.end()),
        candidates.end());
    if (budget == 0 || candidates.size() <= budget)
        return candidates;

    // Group candidates by the inter-commit window they fall in, so
    // the thinned set still probes every transaction's commit
    // protocol instead of only the persist-dense stretches.
    std::vector<Cycle> commits = h.commitCycles();
    std::sort(commits.begin(), commits.end());
    std::vector<std::vector<Cycle>> strata(commits.size() + 1);
    for (Cycle c : candidates) {
        const std::size_t s = static_cast<std::size_t>(
            std::lower_bound(commits.begin(), commits.end(), c) -
            commits.begin());
        strata[s].push_back(c);
    }
    std::erase_if(strata,
                  [](const std::vector<Cycle> &s) { return s.empty(); });

    // Even per-stratum quotas; spare budget spills into the strata
    // that still have unpicked candidates.
    const std::size_t n = strata.size();
    std::vector<std::size_t> take(n, 0);
    std::size_t remaining = budget;
    for (std::size_t i = 0; i < n && remaining; ++i) {
        take[i] = std::min(strata[i].size(),
                           std::max<std::size_t>(1, budget / n));
        remaining -= std::min(remaining, take[i]);
    }
    bool grew = true;
    while (remaining && grew) {
        grew = false;
        for (std::size_t i = 0; i < n && remaining; ++i) {
            if (take[i] < strata[i].size()) {
                ++take[i];
                --remaining;
                grew = true;
            }
        }
    }

    std::vector<Cycle> points;
    points.reserve(budget);
    for (std::size_t i = 0; i < n; ++i) {
        // Evenly spaced picks inside the stratum.
        for (std::size_t j = 0; j < take[i]; ++j)
            points.push_back(strata[i][j * strata[i].size() / take[i]]);
    }
    std::sort(points.begin(), points.end());
    points.erase(std::unique(points.begin(), points.end()),
                 points.end());
    return points;
}

/** Reconstruct, recover, classify one crash point under @p plan. */
CrashPointResult
classifyPoint(const WorkloadHarness &h, Cycle crashCycle,
              const FaultPlan &plan)
{
    const System &sys = h.system();
    MemoryImage img = h.baselineNvm();
    applyFaultyPersistEvents(
        img, sys.persistEvents(), sys.mediaWriteEvents(), crashCycle,
        plan, sys.mem().controller().nvm().params().lineBytes);
    const RecoveryResult rec =
        recoverUndoLog(img, h.framework().logLayout());

    CrashPointResult r;
    r.crashCycle = crashCycle;
    r.plan = plan;
    r.entriesTorn = rec.entriesTorn;
    if (h.app().checkRecovered(img)) {
        r.outcome = rec.entriesTorn ? CrashOutcome::TornLogDetected
                                    : CrashOutcome::Recovered;
    } else {
        r.outcome = CrashOutcome::Unrecoverable;
    }
    return r;
}

/**
 * Shrink a failing plan to the weakest variant that still fails:
 * no faults at all, tear only, drain only, then the original.  The
 * reconstruction is pure, so re-classification is cheap.
 */
FaultPlan
shrinkFailure(const WorkloadHarness &h, Cycle crashCycle,
              const FaultPlan &plan)
{
    FaultPlan benign = plan;
    benign.drainLines = FaultPlan::kDrainAll;
    benign.tear = TearKind::None;

    FaultPlan tear_only = benign;
    tear_only.tear = plan.tear;

    FaultPlan drain_only = benign;
    drain_only.drainLines = plan.drainLines;

    for (const FaultPlan &candidate :
         {benign, tear_only, drain_only, plan}) {
        if (classifyPoint(h, crashCycle, candidate).outcome ==
            CrashOutcome::Unrecoverable) {
            return candidate;
        }
    }
    return plan;  // Unreachable: the caller saw `plan` fail.
}

/**
 * Simulate one configuration's workload with the transient-fault
 * injector installed.  Self-contained (own System), so configurations
 * simulate in parallel.
 */
std::unique_ptr<WorkloadHarness>
simulateConfig(const CampaignOptions &options, Config cfg)
{
    const LogJobTag tag("campaign/" + std::string(configName(cfg)));
    auto h = std::make_unique<WorkloadHarness>(options.app, cfg,
                                               options.spec);
    h->enableAudit();

    // Transient accept faults pressure the whole simulated run; the
    // controller's bounded-backoff retries must absorb them without
    // wedging any configuration.
    FaultPlan sim_plan;
    sim_plan.seed = mixSeed(options.seed, configSalt(cfg));
    sim_plan.acceptFaultRate = options.acceptFaultRate;
    h->system().mem().controller().nvm().setAcceptFaultHook(
        makeAcceptFaultInjector(sim_plan));

    h->generate();
    h->simulate();
    return h;
}

/**
 * Classify every crash point of one simulated configuration.  The
 * reconstruction of each point is pure given the recorded persist
 * events, so the cells dispatch through the scheduler; tallying and
 * failure shrinking walk the classified points serially in point
 * order, keeping the report byte-identical for any job count.
 */
CampaignConfigResult
classifyConfig(const CampaignOptions &options, Config cfg,
               const WorkloadHarness &h, const exp::Scheduler &sched)
{
    CampaignConfigResult result;
    result.config = cfg;
    result.cycles = h.system().core().stats().cycles;
    result.transientRejects =
        h.system().mem().controller().nvm().stats().transientRejects;

    const std::uint64_t plan_seed =
        mixSeed(options.seed, configSalt(cfg));
    const std::uint32_t wpq_slots =
        h.system().mem().controller().nvm().params().bufferSlots;
    const std::vector<Cycle> points =
        selectCrashPoints(h, options.pointsPerConfig);

    result.results = sched.map<CrashPointResult>(
        points.size(), [&](std::size_t i) {
            const FaultPlan plan = makeFaultPlan(
                mixSeed(plan_seed, 0x6001 + i), wpq_slots);
            return classifyPoint(h, points[i], plan);
        });

    for (std::size_t i = 0; i < points.size(); ++i) {
        const CrashPointResult &r = result.results[i];
        ++result.points;
        switch (r.outcome) {
          case CrashOutcome::Recovered:
            ++result.recovered;
            break;
          case CrashOutcome::TornLogDetected:
            ++result.tornDetected;
            break;
          case CrashOutcome::Unrecoverable:
            ++result.unrecoverable;
            if (!configIsUnsafe(cfg)) {
                Reproducer rep;
                rep.seed = options.seed;
                rep.config = cfg;
                rep.crashCycle = points[i];
                rep.plan = shrinkFailure(h, points[i], r.plan);
                result.failures.push_back(std::move(rep));
            }
            break;
        }
    }
    return result;
}

} // namespace

const char *
crashOutcomeName(CrashOutcome outcome)
{
    switch (outcome) {
      case CrashOutcome::Recovered:
        return "recovered";
      case CrashOutcome::TornLogDetected:
        return "torn-log-detected";
      case CrashOutcome::Unrecoverable:
        return "unrecoverable";
    }
    return "unknown";
}

std::string
Reproducer::describe() const
{
    std::ostringstream os;
    os << "{seed=" << seed << ", config=" << configName(config)
       << ", crashCycle=" << crashCycle << ", faultPlan={"
       << plan.describe() << "}}";
    return os.str();
}

bool
CampaignReport::safeConfigsClean() const
{
    for (const CampaignConfigResult &c : configs) {
        if (!configIsUnsafe(c.config) && c.unrecoverable > 0)
            return false;
    }
    return true;
}

std::string
CampaignReport::describe() const
{
    std::ostringstream os;
    os << "fault campaign: app=" << appName(options.app) << " seed="
       << options.seed << " points/config="
       << (options.pointsPerConfig
               ? std::to_string(options.pointsPerConfig)
               : std::string("exhaustive"))
       << " acceptFaultRate=" << options.acceptFaultRate << "\n";
    for (const CampaignConfigResult &c : configs) {
        os << "  " << configName(c.config) << ": " << c.points
           << " points -> " << c.recovered << " recovered, "
           << c.tornDetected << " torn-log-detected, "
           << c.unrecoverable << " unrecoverable  (run=" << c.cycles
           << " cycles, transientRejects=" << c.transientRejects
           << ")\n";
        for (const Reproducer &rep : c.failures)
            os << "    FAILURE " << rep.describe() << "\n";
    }
    os << (safeConfigsClean()
               ? "  safe configurations clean (Table III holds)\n"
               : "  SAFE CONFIGURATION FAILURES above\n");
    return os.str();
}

CampaignReport
runCampaign(const CampaignOptions &options)
{
    const exp::Scheduler sched(options.jobs);

    // Phase 1: every configuration's simulation is independent.
    std::vector<std::unique_ptr<WorkloadHarness>> harnesses =
        sched.map<std::unique_ptr<WorkloadHarness>>(
            options.configs.size(), [&](std::size_t i) {
                return simulateConfig(options, options.configs[i]);
            });

    // Phase 2: per-point classification, parallel within each
    // configuration, tallied in deterministic point order.
    CampaignReport report;
    report.options = options;
    for (std::size_t i = 0; i < options.configs.size(); ++i) {
        report.configs.push_back(classifyConfig(
            options, options.configs[i], *harnesses[i], sched));
    }
    return report;
}

} // namespace ede
