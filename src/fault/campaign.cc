#include "fault/campaign.hh"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <sstream>

#include "apps/harness.hh"
#include "common/logging.hh"
#include "exp/fingerprint.hh"
#include "exp/journal.hh"
#include "exp/scheduler.hh"
#include "fault/crash_image.hh"
#include "fault/model_check/checker.hh"
#include "nvm/undo_log.hh"
#include "sim/session.hh"

namespace ede {

namespace {

/** Reverse of configName; nullopt for an unknown name. */
std::optional<Config>
configFromName(const std::string &name)
{
    for (Config c : kAllConfigs) {
        if (configName(c) == name)
            return c;
    }
    return std::nullopt;
}

/** Decorrelated 64-bit stream: one value per (seed, salt) pair. */
std::uint64_t
mixSeed(std::uint64_t seed, std::uint64_t salt)
{
    Rng rng(seed ^ (salt * 0x9e3779b97f4a7c15ull));
    return rng.next();
}

std::uint64_t
configSalt(Config cfg)
{
    return static_cast<std::uint64_t>(cfg) + 1;
}

/**
 * Candidate crash cycles at persist boundaries (each accept cycle and
 * the cycle after it), stratified over inter-commit windows when the
 * budget is smaller than the candidate set.  @p budget 0 or larger
 * than the candidate count means exhaustive.
 */
std::vector<Cycle>
selectCrashPoints(const WorkloadHarness &h, std::size_t budget)
{
    const Cycle setup_done = h.setupCompleteCycle();
    std::vector<Cycle> candidates;
    for (const PersistEvent &ev : h.system().persistEvents()) {
        if (ev.cycle < setup_done)
            continue;
        candidates.push_back(ev.cycle);
        candidates.push_back(ev.cycle + 1);
    }
    std::sort(candidates.begin(), candidates.end());
    candidates.erase(
        std::unique(candidates.begin(), candidates.end()),
        candidates.end());
    if (budget == 0 || candidates.size() <= budget)
        return candidates;

    // Group candidates by the inter-commit window they fall in, so
    // the thinned set still probes every transaction's commit
    // protocol instead of only the persist-dense stretches.
    std::vector<Cycle> commits = h.commitCycles();
    std::sort(commits.begin(), commits.end());
    std::vector<std::vector<Cycle>> strata(commits.size() + 1);
    for (Cycle c : candidates) {
        const std::size_t s = static_cast<std::size_t>(
            std::lower_bound(commits.begin(), commits.end(), c) -
            commits.begin());
        strata[s].push_back(c);
    }
    std::erase_if(strata,
                  [](const std::vector<Cycle> &s) { return s.empty(); });

    // Even per-stratum quotas; spare budget spills into the strata
    // that still have unpicked candidates.
    const std::size_t n = strata.size();
    std::vector<std::size_t> take(n, 0);
    std::size_t remaining = budget;
    for (std::size_t i = 0; i < n && remaining; ++i) {
        take[i] = std::min(strata[i].size(),
                           std::max<std::size_t>(1, budget / n));
        remaining -= std::min(remaining, take[i]);
    }
    bool grew = true;
    while (remaining && grew) {
        grew = false;
        for (std::size_t i = 0; i < n && remaining; ++i) {
            if (take[i] < strata[i].size()) {
                ++take[i];
                --remaining;
                grew = true;
            }
        }
    }

    std::vector<Cycle> points;
    points.reserve(budget);
    for (std::size_t i = 0; i < n; ++i) {
        // Evenly spaced picks inside the stratum.
        for (std::size_t j = 0; j < take[i]; ++j)
            points.push_back(strata[i][j * strata[i].size() / take[i]]);
    }
    std::sort(points.begin(), points.end());
    points.erase(std::unique(points.begin(), points.end()),
                 points.end());
    return points;
}

/** Reconstruct, recover, classify one crash point under @p plan. */
CrashPointResult
classifyPoint(const WorkloadHarness &h, Cycle crashCycle,
              const FaultPlan &plan, const PersistOrderGraph *order)
{
    const System &sys = h.system();
    MemoryImage img = h.baselineNvm();
    applyFaultyPersistEvents(
        img, sys.persistEvents(), sys.mediaWriteEvents(), crashCycle,
        plan, sys.mem().controller().nvm().params().lineBytes, order);
    const RecoveryResult rec =
        recoverUndoLog(img, h.framework().logLayout());

    CrashPointResult r;
    r.crashCycle = crashCycle;
    r.plan = plan;
    r.entriesTorn = rec.entriesTorn;
    if (h.app().checkRecovered(img)) {
        r.outcome = rec.entriesTorn ? CrashOutcome::TornLogDetected
                                    : CrashOutcome::Recovered;
    } else {
        r.outcome = CrashOutcome::Unrecoverable;
    }
    return r;
}

/**
 * Shrink a failing plan to the weakest variant that still fails:
 * no faults at all, tear only, drain only, then the original.  The
 * reconstruction is pure, so re-classification is cheap.
 */
FaultPlan
shrinkFailure(const WorkloadHarness &h, Cycle crashCycle,
              const FaultPlan &plan, const PersistOrderGraph *order)
{
    FaultPlan benign = plan;
    benign.drainLines = FaultPlan::kDrainAll;
    benign.tear = TearKind::None;

    FaultPlan tear_only = benign;
    tear_only.tear = plan.tear;

    FaultPlan drain_only = benign;
    drain_only.drainLines = plan.drainLines;

    for (const FaultPlan &candidate :
         {benign, tear_only, drain_only, plan}) {
        if (classifyPoint(h, crashCycle, candidate, order).outcome ==
            CrashOutcome::Unrecoverable) {
            return candidate;
        }
    }
    return plan;  // Unreachable: the caller saw `plan` fail.
}

/**
 * Simulate one configuration's workload with the transient-fault
 * injector installed.  Self-contained (own System), so configurations
 * simulate in parallel.
 */
std::unique_ptr<WorkloadHarness>
simulateConfig(const CampaignOptions &options, Config cfg,
               bool checked = false)
{
    const LogJobTag tag("campaign/" + std::string(configName(cfg)));
    auto h = std::make_unique<WorkloadHarness>(options.app, cfg,
                                               options.spec);
    h->enableAudit();

    // Transient accept faults pressure the whole simulated run; the
    // controller's bounded-backoff retries must absorb them without
    // wedging any configuration.
    FaultPlan sim_plan;
    sim_plan.seed = mixSeed(options.seed, configSalt(cfg));
    sim_plan.acceptFaultRate = options.acceptFaultRate;
    h->system().mem().controller().nvm().setAcceptFaultHook(
        makeAcceptFaultInjector(sim_plan));

    h->generate();
    if (checked)
        h->simulateChecked();  // SimFaultError, classifiable by a worker.
    else
        h->simulate();
    return h;
}

/**
 * Classify every crash point of one simulated configuration.  The
 * reconstruction of each point is pure given the recorded persist
 * events, so the cells dispatch through the scheduler; tallying and
 * failure shrinking walk the classified points serially in point
 * order, keeping the report byte-identical for any job count.
 */
CampaignConfigResult
classifyConfig(const CampaignOptions &options, Config cfg,
               const WorkloadHarness &h, const exp::Scheduler &sched)
{
    CampaignConfigResult result;
    result.config = cfg;
    result.cycles = h.system().core().stats().cycles;
    result.transientRejects =
        h.system().mem().controller().nvm().stats().transientRejects;

    const std::uint64_t plan_seed =
        mixSeed(options.seed, configSalt(cfg));
    const std::uint32_t wpq_slots =
        h.system().mem().controller().nvm().params().bufferSlots;
    const std::vector<Cycle> points =
        selectCrashPoints(h, options.pointsPerConfig);

    // The run's persist-order partial order generalizes each point's
    // torn persist from "last accepted" to any frontier event of the
    // durable prefix (see applyFaultyPersistEvents).
    const PersistOrderGraph order = buildPersistOrder(h);

    result.results = sched.map<CrashPointResult>(
        points.size(), [&](std::size_t i) {
            const FaultPlan plan = makeFaultPlan(
                mixSeed(plan_seed, 0x6001 + i), wpq_slots);
            return classifyPoint(h, points[i], plan, &order);
        });

    for (std::size_t i = 0; i < points.size(); ++i) {
        const CrashPointResult &r = result.results[i];
        ++result.points;
        switch (r.outcome) {
          case CrashOutcome::Recovered:
            ++result.recovered;
            break;
          case CrashOutcome::TornLogDetected:
            ++result.tornDetected;
            break;
          case CrashOutcome::Unrecoverable:
            ++result.unrecoverable;
            if (!configIsUnsafe(cfg)) {
                Reproducer rep;
                rep.seed = options.seed;
                rep.config = cfg;
                rep.crashCycle = points[i];
                rep.plan = shrinkFailure(h, points[i], r.plan, &order);
                result.failures.push_back(std::move(rep));
            }
            break;
        }
    }
    return result;
}

constexpr const char *kConfigResultMagic = "ede-campaign-config-v1";

/** FaultPlan as whitespace tokens (rate by bit pattern, exact). */
void
emitPlan(std::ostream &os, const FaultPlan &p)
{
    std::uint64_t rate_bits = 0;
    std::memcpy(&rate_bits, &p.acceptFaultRate, sizeof(rate_bits));
    os << p.seed << ' ' << p.drainLines << ' '
       << static_cast<unsigned>(p.tear) << ' ' << rate_bits << ' '
       << p.maxConsecutiveRejects;
}

bool
readPlan(std::istream &is, FaultPlan &p)
{
    std::uint64_t seed = 0, rate_bits = 0;
    std::uint32_t drain = 0, rejects = 0;
    unsigned tear = 0;
    if (!(is >> seed >> drain >> tear >> rate_bits >> rejects))
        return false;
    if (tear > static_cast<unsigned>(TearKind::Interleaved))
        return false;
    p.seed = seed;
    p.drainLines = drain;
    p.tear = static_cast<TearKind>(tear);
    std::memcpy(&p.acceptFaultRate, &rate_bits, sizeof(double));
    p.maxConsecutiveRejects = rejects;
    return true;
}

/** Minimal JSON string escaping (failure messages, stderr tails). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
jsonDouble(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

void
emitPlanJson(std::ostream &os, const FaultPlan &p)
{
    os << "{\"seed\": " << p.seed << ", \"drain_lines\": "
       << p.drainLines << ", \"tear\": \"" << tearKindName(p.tear)
       << "\", \"accept_fault_rate\": "
       << jsonDouble(p.acceptFaultRate)
       << ", \"max_consecutive_rejects\": " << p.maxConsecutiveRejects
       << "}";
}

/** The worker identity of one (campaign, config) pair. */
std::uint64_t
configFingerprint(const CampaignOptions &options, Config cfg)
{
    exp::FingerprintHasher h;
    h.field("campaign.sweep", campaignSweepId(options));
    h.field("campaign.config", configName(cfg));
    return h.value();
}

} // namespace

const char *
crashOutcomeName(CrashOutcome outcome)
{
    switch (outcome) {
      case CrashOutcome::Recovered:
        return "recovered";
      case CrashOutcome::TornLogDetected:
        return "torn-log-detected";
      case CrashOutcome::Unrecoverable:
        return "unrecoverable";
    }
    return "unknown";
}

std::string
Reproducer::describe() const
{
    std::ostringstream os;
    os << "{seed=" << seed << ", config=" << configName(config)
       << ", crashCycle=" << crashCycle << ", faultPlan={"
       << plan.describe() << "}}";
    return os.str();
}

bool
CampaignReport::safeConfigsClean() const
{
    for (const CampaignConfigResult &c : configs) {
        if (!configIsUnsafe(c.config) && c.unrecoverable > 0)
            return false;
    }
    return true;
}

std::string
CampaignReport::describe() const
{
    std::ostringstream os;
    os << "fault campaign: app=" << appName(options.app) << " seed="
       << options.seed << " points/config="
       << (options.pointsPerConfig
               ? std::to_string(options.pointsPerConfig)
               : std::string("exhaustive"))
       << " acceptFaultRate=" << options.acceptFaultRate << "\n";
    for (const CampaignConfigResult &c : configs) {
        os << "  " << configName(c.config) << ": " << c.points
           << " points -> " << c.recovered << " recovered, "
           << c.tornDetected << " torn-log-detected, "
           << c.unrecoverable << " unrecoverable  (run=" << c.cycles
           << " cycles, transientRejects=" << c.transientRejects
           << ")\n";
        for (const Reproducer &rep : c.failures)
            os << "    FAILURE " << rep.describe() << "\n";
    }
    for (const QuarantinedConfig &q : quarantined) {
        os << "  " << configName(q.config) << ": QUARANTINED ("
           << q.failure.describe() << ")\n";
    }
    os << (safeConfigsClean()
               ? "  safe configurations clean (Table III holds)\n"
               : "  SAFE CONFIGURATION FAILURES above\n");
    if (!quarantined.empty()) {
        os << "  " << quarantined.size()
           << " configuration(s) quarantined -- no verdict for them\n";
    }
    return os.str();
}

std::string
serializeConfigResult(const CampaignConfigResult &result)
{
    std::ostringstream os;
    os << kConfigResultMagic << "\n";
    os << "config " << configName(result.config) << "\n";
    os << "cycles " << result.cycles << "\n";
    os << "transientRejects " << result.transientRejects << "\n";
    os << "tallies " << result.points << ' ' << result.recovered
       << ' ' << result.tornDetected << ' ' << result.unrecoverable
       << "\n";
    os << "results " << result.results.size() << "\n";
    for (const CrashPointResult &r : result.results) {
        os << "p " << r.crashCycle << ' '
           << static_cast<int>(r.outcome) << ' ' << r.entriesTorn
           << ' ';
        emitPlan(os, r.plan);
        os << "\n";
    }
    os << "failures " << result.failures.size() << "\n";
    for (const Reproducer &rep : result.failures) {
        os << "f " << rep.seed << ' ' << configName(rep.config) << ' '
           << rep.crashCycle << ' ';
        emitPlan(os, rep.plan);
        os << "\n";
    }
    return os.str();
}

std::optional<CampaignConfigResult>
deserializeConfigResult(const std::string &text)
{
    std::istringstream is(text);
    std::string magic, key, name;
    if (!(is >> magic) || magic != kConfigResultMagic)
        return std::nullopt;

    CampaignConfigResult result;
    if (!(is >> key >> name) || key != "config")
        return std::nullopt;
    const std::optional<Config> cfg = configFromName(name);
    if (!cfg)
        return std::nullopt;
    result.config = *cfg;

    if (!(is >> key >> result.cycles) || key != "cycles")
        return std::nullopt;
    if (!(is >> key >> result.transientRejects) ||
        key != "transientRejects") {
        return std::nullopt;
    }
    if (!(is >> key >> result.points >> result.recovered >>
          result.tornDetected >> result.unrecoverable) ||
        key != "tallies") {
        return std::nullopt;
    }

    std::size_t n = 0;
    if (!(is >> key >> n) || key != "results")
        return std::nullopt;
    result.results.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        CrashPointResult r;
        int outcome = 0;
        if (!(is >> key >> r.crashCycle >> outcome >>
              r.entriesTorn) ||
            key != "p" || outcome < 0 ||
            outcome > static_cast<int>(CrashOutcome::Unrecoverable) ||
            !readPlan(is, r.plan)) {
            return std::nullopt;
        }
        r.outcome = static_cast<CrashOutcome>(outcome);
        result.results.push_back(r);
    }

    if (!(is >> key >> n) || key != "failures")
        return std::nullopt;
    result.failures.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        Reproducer rep;
        if (!(is >> key >> rep.seed >> name >> rep.crashCycle) ||
            key != "f" || !readPlan(is, rep.plan)) {
            return std::nullopt;
        }
        const std::optional<Config> repCfg = configFromName(name);
        if (!repCfg)
            return std::nullopt;
        rep.config = *repCfg;
        result.failures.push_back(std::move(rep));
    }
    return result;
}

std::uint64_t
campaignSweepId(const CampaignOptions &options)
{
    exp::FingerprintHasher h;
    h.field("campaign.schema",
            static_cast<std::uint64_t>(exp::kResultSchemaVersion));
    h.field("campaign.app", appName(options.app));
    h.field("campaign.seed", options.seed);
    h.field("campaign.pointsPerConfig",
            static_cast<std::uint64_t>(options.pointsPerConfig));
    h.field("campaign.txns",
            static_cast<std::uint64_t>(options.spec.txns));
    h.field("campaign.opsPerTxn",
            static_cast<std::uint64_t>(options.spec.opsPerTxn));
    h.field("campaign.workloadSeed", options.spec.seed);
    h.field("campaign.acceptFaultRate", options.acceptFaultRate);
    h.field("campaign.configs",
            static_cast<std::uint64_t>(options.configs.size()));
    for (Config c : options.configs)
        h.field("campaign.config", configName(c));
    return h.value();
}

std::string
campaignToJson(const CampaignReport &report)
{
    const CampaignOptions &opt = report.options;
    std::ostringstream os;
    os << "{\n";
    os << "  \"bench\": \"fault_campaign\",\n";
    os << "  \"schema\": " << exp::kResultSchemaVersion << ",\n";
    os << "  \"campaign\": {\"app\": \"" << appName(opt.app)
       << "\", \"seed\": " << opt.seed << ", \"points_per_config\": "
       << opt.pointsPerConfig << ", \"txns\": " << opt.spec.txns
       << ", \"ops_per_txn\": " << opt.spec.opsPerTxn
       << ", \"workload_seed\": " << opt.spec.seed
       << ", \"accept_fault_rate\": "
       << jsonDouble(opt.acceptFaultRate) << "},\n";
    os << "  \"configs\": [\n";
    for (std::size_t i = 0; i < report.configs.size(); ++i) {
        const CampaignConfigResult &c = report.configs[i];
        os << "    {\n";
        os << "      \"config\": \"" << configName(c.config)
           << "\",\n";
        os << "      \"cycles\": " << c.cycles << ",\n";
        os << "      \"transient_rejects\": " << c.transientRejects
           << ",\n";
        os << "      \"points\": " << c.points << ",\n";
        os << "      \"recovered\": " << c.recovered << ",\n";
        os << "      \"torn_detected\": " << c.tornDetected << ",\n";
        os << "      \"unrecoverable\": " << c.unrecoverable << ",\n";
        os << "      \"crash_points\": [";
        for (std::size_t j = 0; j < c.results.size(); ++j) {
            const CrashPointResult &r = c.results[j];
            os << (j ? ",\n        " : "\n        ");
            os << "{\"cycle\": " << r.crashCycle << ", \"outcome\": \""
               << crashOutcomeName(r.outcome) << "\", \"entries_torn\": "
               << r.entriesTorn << ", \"plan\": ";
            emitPlanJson(os, r.plan);
            os << "}";
        }
        os << (c.results.empty() ? "],\n" : "\n      ],\n");
        os << "      \"failures\": [";
        for (std::size_t j = 0; j < c.failures.size(); ++j) {
            const Reproducer &rep = c.failures[j];
            os << (j ? ",\n        " : "\n        ");
            os << "{\"seed\": " << rep.seed << ", \"config\": \""
               << configName(rep.config) << "\", \"crash_cycle\": "
               << rep.crashCycle << ", \"plan\": ";
            emitPlanJson(os, rep.plan);
            os << "}";
        }
        os << (c.failures.empty() ? "]\n" : "\n      ]\n");
        os << "    }"
           << (i + 1 < report.configs.size() ? ",\n" : "\n");
    }
    os << "  ],\n";
    os << "  \"quarantined\": [\n";
    for (std::size_t i = 0; i < report.quarantined.size(); ++i) {
        const QuarantinedConfig &q = report.quarantined[i];
        const exp::JobFailure &f = q.failure;
        os << "    {\"config\": \"" << configName(q.config)
           << "\", \"outcome\": \"" << exp::jobOutcomeName(f.outcome)
           << "\", \"signal\": " << f.signal << ", \"exit_code\": "
           << f.exitCode << ", \"attempts\": " << f.attempts
           << ", \"message\": \"" << jsonEscape(f.message)
           << "\", \"stderr_tail\": \"" << jsonEscape(f.stderrTail)
           << "\"}"
           << (i + 1 < report.quarantined.size() ? ",\n" : "\n");
    }
    os << "  ],\n";
    os << "  \"safe_configs_clean\": "
       << (report.safeConfigsClean() ? "true" : "false") << "\n";
    os << "}\n";
    return os.str();
}

namespace {

/**
 * The isolated campaign: one forked worker per configuration.  The
 * child simulates and classifies serially (its own inner scheduler is
 * jobs=1) and ships the exact serialization back; the parent fans out
 * across configurations, quarantining any config whose worker keeps
 * failing.  The journal makes the fan-out resumable per config.
 */
CampaignReport
runCampaignIsolated(const CampaignOptions &options)
{
    if (!exp::processIsolationSupported())
        ede_fatal("process isolation is not supported on this platform");

    const std::size_t n = options.configs.size();
    std::optional<exp::SweepJournal> journal;
    if (!options.journalPath.empty()) {
        journal.emplace(options.journalPath, campaignSweepId(options),
                        n, options.resume);
    }

    std::vector<std::optional<CampaignConfigResult>> slots(n);
    std::vector<std::optional<QuarantinedConfig>> poisoned(n);
    auto quarantine = [&](std::size_t i, Config cfg,
                          exp::JobFailure failure) {
        ede_warn("config '", configName(cfg), "' quarantined: ",
                 failure.describe());
        if (journal) {
            journal->recordQuarantine(
                i, configFingerprint(options, cfg), failure);
        }
        poisoned[i] = QuarantinedConfig{cfg, std::move(failure)};
    };

    auto runConfig = [&](std::size_t i) {
        const Config cfg = options.configs[i];
        const std::uint64_t fp = configFingerprint(options, cfg);

        if (journal && options.resume) {
            const auto it = journal->replayed().find(i);
            if (it != journal->replayed().end() &&
                it->second.fingerprint == fp) {
                const exp::JournalEntry &e = it->second;
                if (e.ok) {
                    if (std::optional<CampaignConfigResult> r =
                            deserializeConfigResult(e.payload);
                        r && r->config == cfg) {
                        slots[i] = std::move(*r);
                        return;
                    }
                    // Corrupt payload: fall through and re-run.
                } else {
                    poisoned[i] = QuarantinedConfig{cfg, e.failure};
                    return;
                }
            }
        }

        const exp::WorkerRun run = exp::runWithRetry(
            [&]() -> std::string {
                if (!options.chaosCrashConfig.empty() &&
                    configName(cfg) == options.chaosCrashConfig) {
                    std::abort();
                }
                CampaignOptions child = options;
                child.jobs = 1;  // The worker *is* the parallel unit.
                const std::unique_ptr<WorkloadHarness> h =
                    simulateConfig(child, cfg, /*checked=*/true);
                return serializeConfigResult(classifyConfig(
                    child, cfg, *h, exp::Scheduler(1)));
            },
            options.limits, options.retry, /*jitterSeed=*/fp);

        if (run.ok()) {
            if (std::optional<CampaignConfigResult> r =
                    deserializeConfigResult(run.payload);
                r && r->config == cfg) {
                if (journal)
                    journal->recordOk(i, fp, run.payload);
                slots[i] = std::move(*r);
                return;
            }
            exp::JobFailure protocol;
            protocol.outcome = exp::JobOutcome::Crashed;
            protocol.attempts = run.failure.attempts;
            protocol.message =
                "worker payload failed campaign-result validation";
            quarantine(i, cfg, std::move(protocol));
            return;
        }
        quarantine(i, cfg, run.failure);
    };

    const exp::Scheduler sched(options.jobs);
    sched.run(n, runConfig, exp::FailureMode::KeepGoing);

    CampaignReport report;
    report.options = options;
    for (std::size_t i = 0; i < n; ++i) {
        if (slots[i])
            report.configs.push_back(std::move(*slots[i]));
        else if (poisoned[i])
            report.quarantined.push_back(std::move(*poisoned[i]));
    }
    return report;
}

} // namespace

CampaignReport
runCampaign(const CampaignOptions &options)
{
    if (!options.journalPath.empty() && !options.isolate) {
        ede_fatal("the campaign journal requires process isolation "
                  "(--isolate)");
    }
    if (options.isolate)
        return runCampaignIsolated(options);

    const exp::Scheduler sched(options.jobs);

    // Phase 1: every configuration's simulation is independent.
    std::vector<std::unique_ptr<WorkloadHarness>> harnesses =
        sched.map<std::unique_ptr<WorkloadHarness>>(
            options.configs.size(), [&](std::size_t i) {
                return simulateConfig(options, options.configs[i]);
            });

    // Phase 2: per-point classification, parallel within each
    // configuration, tallied in deterministic point order.
    CampaignReport report;
    report.options = options;
    for (std::size_t i = 0; i < options.configs.size(); ++i) {
        report.configs.push_back(classifyConfig(
            options, options.configs[i], *harnesses[i], sched));
    }
    return report;
}

} // namespace ede
