/**
 * @file
 * The crash-injection campaign.
 *
 * One campaign run takes a workload and a root seed and, for every
 * Table III configuration:
 *
 *  1. simulates the workload once with the plan's transient
 *     accept-fault injector installed on the NVM device;
 *  2. enumerates candidate crash cycles at persist boundaries (each
 *     persist-accept cycle and the cycle after it), stratified across
 *     the inter-commit windows so every transaction's commit protocol
 *     is probed, not just the cycles where persists cluster;
 *  3. reconstructs the adversarial crash image for each point under a
 *     per-point FaultPlan (ADR drain budget + torn final persist),
 *     runs undo-log recovery, and classifies the outcome;
 *  4. for safe-configuration failures, shrinks the fault plan to the
 *     weakest one that still fails and records a minimal
 *     {seed, config, crashCycle, faultPlan} reproducer.
 *
 * The paper's Table III safety claim becomes the campaign's
 * acceptance check: B/IQ/WB must classify every point as Recovered or
 * TornLogDetected; U must produce at least one Unrecoverable point.
 */

#ifndef EDE_FAULT_CAMPAIGN_HH
#define EDE_FAULT_CAMPAIGN_HH

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "apps/driver.hh"
#include "exp/worker.hh"
#include "fault/fault_plan.hh"
#include "sim/config.hh"

namespace ede {

/** Classification of one crash point. */
enum class CrashOutcome
{
    Recovered,       ///< Image recovered to a transaction boundary.
    TornLogDetected, ///< Recovered; torn log entries were discarded.
    Unrecoverable,   ///< No transaction boundary matches the image.
};

const char *crashOutcomeName(CrashOutcome outcome);

/** A minimal failing tuple, printable and replayable. */
struct Reproducer
{
    std::uint64_t seed = 0;     ///< Campaign root seed.
    Config config = Config::B;
    Cycle crashCycle = 0;
    FaultPlan plan;

    /** One-line `{seed, config, crashCycle, faultPlan}` tuple. */
    std::string describe() const;
};

/** One classified crash point. */
struct CrashPointResult
{
    Cycle crashCycle = 0;
    CrashOutcome outcome = CrashOutcome::Recovered;
    FaultPlan plan;
    std::uint64_t entriesTorn = 0;  ///< Discarded by recovery.
};

/** Per-configuration tallies. */
struct CampaignConfigResult
{
    Config config = Config::B;
    Cycle cycles = 0;                  ///< Simulated run length.
    std::uint64_t transientRejects = 0;
    std::size_t points = 0;
    std::size_t recovered = 0;
    std::size_t tornDetected = 0;
    std::size_t unrecoverable = 0;
    std::vector<CrashPointResult> results;
    std::vector<Reproducer> failures;  ///< Safe-config only, shrunk.
};

/** Campaign parameters; everything flows from one root seed. */
struct CampaignOptions
{
    AppId app = AppId::Update;
    std::uint64_t seed = 1;
    std::size_t pointsPerConfig = 200;  ///< 0 = exhaustive.
    RunSpec spec{/*txns=*/6, /*opsPerTxn=*/8, /*seed=*/42};
    double acceptFaultRate = 0.02;      ///< Transient-fault pressure.
    std::vector<Config> configs{kAllConfigs.begin(), kAllConfigs.end()};

    /**
     * Parallel jobs for the per-config simulations and the
     * crash-point classifications (both dispatched through the
     * experiment scheduler; every scenario derives only from the
     * recorded persist events, so results are bit-identical for any
     * job count).  0 = hardware concurrency; default 1 = serial.
     */
    unsigned jobs = 1;

    /**
     * Fork one worker per configuration: the child simulates and
     * classifies the whole config serially and ships the serialized
     * CampaignConfigResult back; a crash/hang/OOM quarantines that
     * configuration instead of killing the campaign.  Results are
     * bit-identical to the in-process path (the serialization is
     * exact).
     */
    bool isolate = false;

    exp::WorkerLimits limits;  ///< Per-config bounds (isolate only).
    exp::RetryPolicy retry;    ///< Transient-failure retries.

    /**
     * Append-only journal of per-config outcomes; empty disables it.
     * With `resume`, configs already journaled by a compatible run
     * are replayed instead of re-simulated.  Requires `isolate`.
     */
    std::string journalPath;
    bool resume = false;

    /**
     * Test/chaos hook: the configuration with this name calls
     * abort() inside its isolated worker -- how tests and the CI
     * chaos job provoke a deterministic quarantine.
     */
    std::string chaosCrashConfig;
};

/** A configuration whose isolated worker never produced a result. */
struct QuarantinedConfig
{
    Config config = Config::B;
    exp::JobFailure failure;
};

/** The whole campaign's outcome. */
struct CampaignReport
{
    CampaignOptions options;
    std::vector<CampaignConfigResult> configs;
    std::vector<QuarantinedConfig> quarantined; ///< Isolated runs only.

    /** Table III holds: no safe config produced an unrecoverable. */
    bool safeConfigsClean() const;

    /** Campaign acceptance: Table III holds and nothing quarantined. */
    bool ok() const { return safeConfigsClean() && quarantined.empty(); }

    /** Multi-line human-readable summary with reproducer tuples. */
    std::string describe() const;
};

/** Run the campaign. */
CampaignReport runCampaign(const CampaignOptions &options);

/** @name Campaign worker wire format / journal payloads. */
/// @{

/** Exact text serialization of one config's classified results. */
std::string serializeConfigResult(const CampaignConfigResult &result);

/** Inverse of serializeConfigResult; nullopt on any malformation. */
std::optional<CampaignConfigResult>
deserializeConfigResult(const std::string &text);

/** Journal identity: hash of every input that shapes the campaign. */
std::uint64_t campaignSweepId(const CampaignOptions &options);
/// @}

/**
 * Deterministic JSON artifact for the campaign: options, per-config
 * tallies and crash points, shrunk reproducers, and quarantined
 * configurations.  Contains no host-side measurements, so an
 * interrupted-then-resumed campaign serializes byte-identically to an
 * uninterrupted one (the CI chaos gate relies on this).
 */
std::string campaignToJson(const CampaignReport &report);

} // namespace ede

#endif // EDE_FAULT_CAMPAIGN_HH
