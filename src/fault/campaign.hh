/**
 * @file
 * The crash-injection campaign.
 *
 * One campaign run takes a workload and a root seed and, for every
 * Table III configuration:
 *
 *  1. simulates the workload once with the plan's transient
 *     accept-fault injector installed on the NVM device;
 *  2. enumerates candidate crash cycles at persist boundaries (each
 *     persist-accept cycle and the cycle after it), stratified across
 *     the inter-commit windows so every transaction's commit protocol
 *     is probed, not just the cycles where persists cluster;
 *  3. reconstructs the adversarial crash image for each point under a
 *     per-point FaultPlan (ADR drain budget + torn final persist),
 *     runs undo-log recovery, and classifies the outcome;
 *  4. for safe-configuration failures, shrinks the fault plan to the
 *     weakest one that still fails and records a minimal
 *     {seed, config, crashCycle, faultPlan} reproducer.
 *
 * The paper's Table III safety claim becomes the campaign's
 * acceptance check: B/IQ/WB must classify every point as Recovered or
 * TornLogDetected; U must produce at least one Unrecoverable point.
 */

#ifndef EDE_FAULT_CAMPAIGN_HH
#define EDE_FAULT_CAMPAIGN_HH

#include <cstddef>
#include <string>
#include <vector>

#include "apps/driver.hh"
#include "fault/fault_plan.hh"
#include "sim/config.hh"

namespace ede {

/** Classification of one crash point. */
enum class CrashOutcome
{
    Recovered,       ///< Image recovered to a transaction boundary.
    TornLogDetected, ///< Recovered; torn log entries were discarded.
    Unrecoverable,   ///< No transaction boundary matches the image.
};

const char *crashOutcomeName(CrashOutcome outcome);

/** A minimal failing tuple, printable and replayable. */
struct Reproducer
{
    std::uint64_t seed = 0;     ///< Campaign root seed.
    Config config = Config::B;
    Cycle crashCycle = 0;
    FaultPlan plan;

    /** One-line `{seed, config, crashCycle, faultPlan}` tuple. */
    std::string describe() const;
};

/** One classified crash point. */
struct CrashPointResult
{
    Cycle crashCycle = 0;
    CrashOutcome outcome = CrashOutcome::Recovered;
    FaultPlan plan;
    std::uint64_t entriesTorn = 0;  ///< Discarded by recovery.
};

/** Per-configuration tallies. */
struct CampaignConfigResult
{
    Config config = Config::B;
    Cycle cycles = 0;                  ///< Simulated run length.
    std::uint64_t transientRejects = 0;
    std::size_t points = 0;
    std::size_t recovered = 0;
    std::size_t tornDetected = 0;
    std::size_t unrecoverable = 0;
    std::vector<CrashPointResult> results;
    std::vector<Reproducer> failures;  ///< Safe-config only, shrunk.
};

/** Campaign parameters; everything flows from one root seed. */
struct CampaignOptions
{
    AppId app = AppId::Update;
    std::uint64_t seed = 1;
    std::size_t pointsPerConfig = 200;  ///< 0 = exhaustive.
    RunSpec spec{/*txns=*/6, /*opsPerTxn=*/8, /*seed=*/42};
    double acceptFaultRate = 0.02;      ///< Transient-fault pressure.
    std::vector<Config> configs{kAllConfigs.begin(), kAllConfigs.end()};

    /**
     * Parallel jobs for the per-config simulations and the
     * crash-point classifications (both dispatched through the
     * experiment scheduler; every scenario derives only from the
     * recorded persist events, so results are bit-identical for any
     * job count).  0 = hardware concurrency; default 1 = serial.
     */
    unsigned jobs = 1;
};

/** The whole campaign's outcome. */
struct CampaignReport
{
    CampaignOptions options;
    std::vector<CampaignConfigResult> configs;

    /** Table III holds: no safe config produced an unrecoverable. */
    bool safeConfigsClean() const;

    /** Multi-line human-readable summary with reproducer tuples. */
    std::string describe() const;
};

/** Run the campaign. */
CampaignReport runCampaign(const CampaignOptions &options);

} // namespace ede

#endif // EDE_FAULT_CAMPAIGN_HH
