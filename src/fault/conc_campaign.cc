#include "fault/conc_campaign.hh"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <sstream>

#include "common/logging.hh"
#include "common/random.hh"
#include "exp/fingerprint.hh"
#include "exp/journal.hh"
#include "exp/scheduler.hh"
#include "fault/conc_check.hh"
#include "fault/crash_image.hh"
#include "fault/fault_plan.hh"

namespace ede {

namespace {

/** Reverse of configName; nullopt for an unknown name. */
std::optional<Config>
configFromName(const std::string &name)
{
    for (Config c : kAllConfigs) {
        if (configName(c) == name)
            return c;
    }
    return std::nullopt;
}

/** Decorrelated 64-bit stream: one value per (seed, salt) pair. */
std::uint64_t
mixSeed(std::uint64_t seed, std::uint64_t salt)
{
    Rng rng(seed ^ (salt * 0x9e3779b97f4a7c15ull));
    return rng.next();
}

std::uint64_t
configSalt(Config cfg)
{
    return static_cast<std::uint64_t>(cfg) + 1;
}

/**
 * Does some core other than 0 have an accepted persist whose media
 * write is still outstanding at cycle @p c?  That is the campaign's
 * target window: core 0's crash image then depends on *remote*
 * buffered state.
 */
bool
remoteOutstandingAt(const PersistOrderGraph &g,
                    const std::vector<PersistEvent> &events, Cycle c)
{
    for (std::size_t i = 0; i < g.nodes.size(); ++i) {
        if (events[i].core == 0)
            continue;
        const PersistNode &n = g.nodes[i];
        if (n.accept <= c &&
            (n.mediaCycle == kNoCycle || n.mediaCycle > c)) {
            return true;
        }
    }
    return false;
}

/** Selected crash cycles plus their remote-outstanding flags. */
struct ConcCrashPoints
{
    std::vector<Cycle> cycles;
    std::vector<bool> remote;
};

/**
 * Candidate crash cycles at persist boundaries, stratified toward
 * the remote-outstanding window: when the budget is smaller than the
 * candidate set, ~3/4 of it goes to cycles where a remote core's
 * media writes are pending and the rest to the others, each picked
 * evenly spaced.  @p budget 0 means exhaustive.
 */
ConcCrashPoints
selectConcCrashPoints(const PersistOrderGraph &g,
                      const std::vector<PersistEvent> &events,
                      std::size_t budget)
{
    std::vector<Cycle> candidates;
    for (const PersistEvent &ev : events) {
        candidates.push_back(ev.cycle);
        candidates.push_back(ev.cycle + 1);
    }
    std::sort(candidates.begin(), candidates.end());
    candidates.erase(
        std::unique(candidates.begin(), candidates.end()),
        candidates.end());

    std::vector<Cycle> remote, local;
    for (Cycle c : candidates) {
        (remoteOutstandingAt(g, events, c) ? remote : local)
            .push_back(c);
    }

    std::vector<Cycle> pickedRemote = remote, pickedLocal = local;
    if (budget != 0 && candidates.size() > budget) {
        std::size_t takeRemote = std::min(
            remote.size(),
            std::max<std::size_t>(remote.empty() ? 0 : 1,
                                  budget * 3 / 4));
        std::size_t takeLocal =
            std::min(local.size(), budget - takeRemote);
        // Spare budget spills back into the richer stratum.
        takeRemote = std::min(remote.size(), budget - takeLocal);

        auto spaced = [](const std::vector<Cycle> &from,
                         std::size_t take) {
            std::vector<Cycle> out;
            out.reserve(take);
            for (std::size_t j = 0; j < take; ++j)
                out.push_back(from[j * from.size() / take]);
            return out;
        };
        pickedRemote =
            takeRemote ? spaced(remote, takeRemote)
                       : std::vector<Cycle>{};
        pickedLocal = takeLocal ? spaced(local, takeLocal)
                                : std::vector<Cycle>{};
    }

    std::vector<std::pair<Cycle, bool>> merged;
    merged.reserve(pickedRemote.size() + pickedLocal.size());
    for (Cycle c : pickedRemote)
        merged.emplace_back(c, true);
    for (Cycle c : pickedLocal)
        merged.emplace_back(c, false);
    std::sort(merged.begin(), merged.end());

    ConcCrashPoints points;
    points.cycles.reserve(merged.size());
    points.remote.reserve(merged.size());
    for (const auto &[c, r] : merged) {
        points.cycles.push_back(c);
        points.remote.push_back(r);
    }
    return points;
}

/** Reconstruct and judge one multi-core crash point under @p plan. */
ConcCrashPointResult
classifyConcPoint(const ConcurrentHarness &h,
                  const PersistOrderGraph &order, Cycle crashCycle,
                  const FaultPlan &plan)
{
    MemoryImage img = h.baselineNvm();
    applyFaultyPersistEvents(img, h.system().persistEvents(),
                             h.system().mediaWriteEvents(),
                             crashCycle, plan, h.mediaLineBytes(),
                             &order);

    ConcCrashPointResult r;
    r.crashCycle = crashCycle;
    r.plan = plan;
    if (const char *inv = checkConcInvariants(h.model(), img)) {
        r.outcome = CrashOutcome::Unrecoverable;
        r.invariant = inv;
    } else {
        r.outcome = CrashOutcome::Recovered;
    }
    return r;
}

/**
 * Shrink a failing plan to the weakest variant that still violates:
 * no faults at all, tear only, drain only, then the original.
 */
ConcReproducer
shrinkConcFailure(const ConcCampaignOptions &options, Config cfg,
                  const ConcurrentHarness &h,
                  const PersistOrderGraph &order, Cycle crashCycle,
                  const FaultPlan &plan)
{
    FaultPlan benign = plan;
    benign.drainLines = FaultPlan::kDrainAll;
    benign.tear = TearKind::None;

    FaultPlan tear_only = benign;
    tear_only.tear = plan.tear;

    FaultPlan drain_only = benign;
    drain_only.drainLines = plan.drainLines;

    ConcReproducer rep;
    rep.seed = options.seed;
    rep.config = cfg;
    rep.crashCycle = crashCycle;
    rep.plan = plan;
    for (const FaultPlan &candidate :
         {benign, tear_only, drain_only, plan}) {
        const ConcCrashPointResult r =
            classifyConcPoint(h, order, crashCycle, candidate);
        if (r.outcome == CrashOutcome::Unrecoverable) {
            rep.plan = candidate;
            rep.invariant = r.invariant;
            return rep;
        }
    }
    return rep;  // Unreachable: the caller saw `plan` fail.
}

/** One simulated configuration for the campaign. */
struct SimulatedConcCampaign
{
    std::unique_ptr<ConcurrentHarness> harness;
    Cycle cycles = 0;
};

SimulatedConcCampaign
simulateConcCampaignConfig(const ConcCampaignOptions &options,
                           Config cfg)
{
    const LogJobTag tag("conc-campaign/" +
                        std::string(configName(cfg)));
    SimulatedConcCampaign sim;
    ConcParams p;
    p.cfg = cfg;
    p.cores = options.cores;
    p.opsPerCore = options.opsPerCore;
    p.seed = options.workloadSeed;
    p.paced = true;
    sim.harness = std::make_unique<ConcurrentHarness>(
        options.app, p, options.mediaFactor);

    // Transient accept faults pressure the whole simulated run, same
    // as the single-core campaign: the controller's retries must
    // absorb them on every core.
    FaultPlan sim_plan;
    sim_plan.seed = mixSeed(options.seed, configSalt(cfg));
    sim_plan.acceptFaultRate = options.acceptFaultRate;
    sim.harness->system().mem().controller().nvm().setAcceptFaultHook(
        makeAcceptFaultInjector(sim_plan));

    sim.harness->generate();
    sim.cycles = sim.harness->simulateChecked();
    return sim;
}

/**
 * Classify every crash point of one simulated configuration.  Point
 * reconstruction is pure given the recorded events, so the cells
 * dispatch through the scheduler; tallying and failure shrinking
 * walk point order serially, keeping the report byte-identical for
 * any job count.
 */
ConcCampaignConfigResult
classifyConcConfig(const ConcCampaignOptions &options, Config cfg,
                   const SimulatedConcCampaign &sim,
                   const exp::Scheduler &sched)
{
    const ConcurrentHarness &h = *sim.harness;
    ConcCampaignConfigResult result;
    result.config = cfg;
    result.cycles = sim.cycles;
    result.transientRejects =
        h.system().mem().controller().nvm().stats().transientRejects;

    const std::uint64_t plan_seed =
        mixSeed(options.seed, configSalt(cfg));
    const std::uint32_t wpq_slots =
        h.system().mem().controller().nvm().params().bufferSlots;

    const PersistOrderGraph order = buildConcPersistOrder(h);
    const ConcCrashPoints points = selectConcCrashPoints(
        order, h.system().persistEvents(), options.pointsPerConfig);

    result.results = sched.map<ConcCrashPointResult>(
        points.cycles.size(), [&](std::size_t i) {
            const FaultPlan plan = makeFaultPlan(
                mixSeed(plan_seed, 0x6101 + i), wpq_slots);
            ConcCrashPointResult r = classifyConcPoint(
                h, order, points.cycles[i], plan);
            r.remoteOutstanding = points.remote[i];
            return r;
        });

    for (std::size_t i = 0; i < points.cycles.size(); ++i) {
        const ConcCrashPointResult &r = result.results[i];
        ++result.points;
        if (r.remoteOutstanding)
            ++result.remotePoints;
        switch (r.outcome) {
          case CrashOutcome::Recovered:
          case CrashOutcome::TornLogDetected:
            ++result.recovered;
            break;
          case CrashOutcome::Unrecoverable:
            ++result.unrecoverable;
            if (!configIsUnsafe(cfg)) {
                result.failures.push_back(shrinkConcFailure(
                    options, cfg, h, order, points.cycles[i],
                    r.plan));
            }
            break;
        }
    }
    return result;
}

constexpr const char *kConcCampaignResultMagic =
    "ede-conc-campaign-v1";

/** FaultPlan as whitespace tokens (rate by bit pattern, exact). */
void
emitPlan(std::ostream &os, const FaultPlan &p)
{
    std::uint64_t rate_bits = 0;
    std::memcpy(&rate_bits, &p.acceptFaultRate, sizeof(rate_bits));
    os << p.seed << ' ' << p.drainLines << ' '
       << static_cast<unsigned>(p.tear) << ' ' << rate_bits << ' '
       << p.maxConsecutiveRejects;
}

bool
readPlan(std::istream &is, FaultPlan &p)
{
    std::uint64_t seed = 0, rate_bits = 0;
    std::uint32_t drain = 0, rejects = 0;
    unsigned tear = 0;
    if (!(is >> seed >> drain >> tear >> rate_bits >> rejects))
        return false;
    if (tear > static_cast<unsigned>(TearKind::Interleaved))
        return false;
    p.seed = seed;
    p.drainLines = drain;
    p.tear = static_cast<TearKind>(tear);
    std::memcpy(&p.acceptFaultRate, &rate_bits, sizeof(double));
    p.maxConsecutiveRejects = rejects;
    return true;
}

/** Invariant names never contain spaces; "-" encodes "none". */
std::string
invariantToken(const std::string &invariant)
{
    return invariant.empty() ? "-" : invariant;
}

std::string
invariantFromToken(const std::string &token)
{
    return token == "-" ? "" : token;
}

/** Minimal JSON string escaping (failure messages, stderr tails). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
jsonDouble(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

void
emitPlanJson(std::ostream &os, const FaultPlan &p)
{
    os << "{\"seed\": " << p.seed << ", \"drain_lines\": "
       << p.drainLines << ", \"tear\": \"" << tearKindName(p.tear)
       << "\", \"accept_fault_rate\": "
       << jsonDouble(p.acceptFaultRate)
       << ", \"max_consecutive_rejects\": " << p.maxConsecutiveRejects
       << "}";
}

/** The worker identity of one (conc campaign, config) pair. */
std::uint64_t
concCampaignConfigFingerprint(const ConcCampaignOptions &options,
                              Config cfg)
{
    exp::FingerprintHasher h;
    h.field("conccampaign.sweep", concCampaignSweepId(options));
    h.field("conccampaign.config", configName(cfg));
    return h.value();
}

} // namespace

std::string
ConcReproducer::describe() const
{
    std::ostringstream os;
    os << "{seed=" << seed << ", config=" << configName(config)
       << ", crashCycle=" << crashCycle << ", invariant="
       << (invariant.empty() ? "<none>" : invariant)
       << ", faultPlan={" << plan.describe() << "}}";
    return os.str();
}

bool
ConcCampaignReport::safeConfigsClean() const
{
    for (const ConcCampaignConfigResult &c : configs) {
        if (!configIsUnsafe(c.config) && c.unrecoverable > 0)
            return false;
    }
    return true;
}

bool
ConcCampaignReport::ok() const
{
    return quarantined.empty() && safeConfigsClean();
}

std::string
ConcCampaignReport::describe() const
{
    std::ostringstream os;
    os << "conc campaign: app=" << concAppName(options.app)
       << " seed=" << options.seed << " cores=" << options.cores
       << " ops/core=" << options.opsPerCore << " points/config="
       << (options.pointsPerConfig
               ? std::to_string(options.pointsPerConfig)
               : std::string("exhaustive"))
       << " mediaFactor=" << options.mediaFactor
       << " acceptFaultRate=" << options.acceptFaultRate << "\n";
    for (const ConcCampaignConfigResult &c : configs) {
        os << "  " << configName(c.config) << ": " << c.points
           << " points (" << c.remotePoints
           << " remote-outstanding) -> " << c.recovered
           << " recovered, " << c.unrecoverable
           << " unrecoverable  (run=" << c.cycles
           << " cycles, transientRejects=" << c.transientRejects
           << ")\n";
        for (const ConcReproducer &rep : c.failures)
            os << "    FAILURE " << rep.describe() << "\n";
    }
    for (const QuarantinedConfig &q : quarantined) {
        os << "  " << configName(q.config) << ": QUARANTINED ("
           << q.failure.describe() << ")\n";
    }
    os << (safeConfigsClean()
               ? "  safe configurations clean across cores\n"
               : "  SAFE CONFIGURATION FAILURES above\n");
    if (!quarantined.empty()) {
        os << "  " << quarantined.size()
           << " configuration(s) quarantined -- no verdict for them\n";
    }
    return os.str();
}

std::string
serializeConcCampaignResult(const ConcCampaignConfigResult &result)
{
    std::ostringstream os;
    os << kConcCampaignResultMagic << "\n";
    os << "config " << configName(result.config) << "\n";
    os << "cycles " << result.cycles << "\n";
    os << "transientRejects " << result.transientRejects << "\n";
    os << "tallies " << result.points << ' ' << result.remotePoints
       << ' ' << result.recovered << ' ' << result.unrecoverable
       << "\n";
    os << "results " << result.results.size() << "\n";
    for (const ConcCrashPointResult &r : result.results) {
        os << "p " << r.crashCycle << ' '
           << static_cast<int>(r.outcome) << ' '
           << (r.remoteOutstanding ? 1 : 0) << ' '
           << invariantToken(r.invariant) << ' ';
        emitPlan(os, r.plan);
        os << "\n";
    }
    os << "failures " << result.failures.size() << "\n";
    for (const ConcReproducer &rep : result.failures) {
        os << "f " << rep.seed << ' ' << configName(rep.config) << ' '
           << rep.crashCycle << ' ' << invariantToken(rep.invariant)
           << ' ';
        emitPlan(os, rep.plan);
        os << "\n";
    }
    return os.str();
}

std::optional<ConcCampaignConfigResult>
deserializeConcCampaignResult(const std::string &text)
{
    std::istringstream is(text);
    std::string magic, key, name, token;
    if (!(is >> magic) || magic != kConcCampaignResultMagic)
        return std::nullopt;

    ConcCampaignConfigResult result;
    if (!(is >> key >> name) || key != "config")
        return std::nullopt;
    const std::optional<Config> cfg = configFromName(name);
    if (!cfg)
        return std::nullopt;
    result.config = *cfg;

    if (!(is >> key >> result.cycles) || key != "cycles")
        return std::nullopt;
    if (!(is >> key >> result.transientRejects) ||
        key != "transientRejects") {
        return std::nullopt;
    }
    if (!(is >> key >> result.points >> result.remotePoints >>
          result.recovered >> result.unrecoverable) ||
        key != "tallies") {
        return std::nullopt;
    }

    std::size_t n = 0;
    if (!(is >> key >> n) || key != "results")
        return std::nullopt;
    result.results.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        ConcCrashPointResult r;
        int outcome = 0, remote = 0;
        if (!(is >> key >> r.crashCycle >> outcome >> remote >>
              token) ||
            key != "p" || outcome < 0 ||
            outcome > static_cast<int>(CrashOutcome::Unrecoverable) ||
            remote < 0 || remote > 1 || !readPlan(is, r.plan)) {
            return std::nullopt;
        }
        r.outcome = static_cast<CrashOutcome>(outcome);
        r.remoteOutstanding = remote == 1;
        r.invariant = invariantFromToken(token);
        result.results.push_back(std::move(r));
    }

    if (!(is >> key >> n) || key != "failures")
        return std::nullopt;
    result.failures.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        ConcReproducer rep;
        if (!(is >> key >> rep.seed >> name >> rep.crashCycle >>
              token) ||
            key != "f" || !readPlan(is, rep.plan)) {
            return std::nullopt;
        }
        const std::optional<Config> repCfg = configFromName(name);
        if (!repCfg)
            return std::nullopt;
        rep.config = *repCfg;
        rep.invariant = invariantFromToken(token);
        result.failures.push_back(std::move(rep));
    }
    return result;
}

std::uint64_t
concCampaignSweepId(const ConcCampaignOptions &options)
{
    exp::FingerprintHasher h;
    h.field("conccampaign.schema",
            static_cast<std::uint64_t>(exp::kResultSchemaVersion));
    h.field("conccampaign.app", concAppName(options.app));
    h.field("conccampaign.seed", options.seed);
    h.field("conccampaign.pointsPerConfig",
            static_cast<std::uint64_t>(options.pointsPerConfig));
    h.field("conccampaign.cores",
            static_cast<std::uint64_t>(options.cores));
    h.field("conccampaign.opsPerCore",
            static_cast<std::uint64_t>(options.opsPerCore));
    h.field("conccampaign.workloadSeed", options.workloadSeed);
    h.field("conccampaign.mediaFactor",
            static_cast<std::uint64_t>(options.mediaFactor));
    h.field("conccampaign.acceptFaultRate", options.acceptFaultRate);
    h.field("conccampaign.configs",
            static_cast<std::uint64_t>(options.configs.size()));
    for (Config c : options.configs)
        h.field("conccampaign.config", configName(c));
    return h.value();
}

std::string
concCampaignToJson(const ConcCampaignReport &report)
{
    const ConcCampaignOptions &opt = report.options;
    std::ostringstream os;
    os << "{\n";
    os << "  \"bench\": \"conc_campaign\",\n";
    os << "  \"schema\": " << exp::kResultSchemaVersion << ",\n";
    os << "  \"conc_campaign\": {\"app\": \"" << concAppName(opt.app)
       << "\", \"seed\": " << opt.seed << ", \"points_per_config\": "
       << opt.pointsPerConfig << ", \"cores\": " << opt.cores
       << ", \"ops_per_core\": " << opt.opsPerCore
       << ", \"workload_seed\": " << opt.workloadSeed
       << ", \"media_factor\": " << opt.mediaFactor
       << ", \"accept_fault_rate\": "
       << jsonDouble(opt.acceptFaultRate) << "},\n";
    os << "  \"configs\": [\n";
    for (std::size_t i = 0; i < report.configs.size(); ++i) {
        const ConcCampaignConfigResult &c = report.configs[i];
        os << "    {\n";
        os << "      \"config\": \"" << configName(c.config)
           << "\",\n";
        os << "      \"cycles\": " << c.cycles << ",\n";
        os << "      \"transient_rejects\": " << c.transientRejects
           << ",\n";
        os << "      \"points\": " << c.points << ",\n";
        os << "      \"remote_points\": " << c.remotePoints << ",\n";
        os << "      \"recovered\": " << c.recovered << ",\n";
        os << "      \"unrecoverable\": " << c.unrecoverable << ",\n";
        os << "      \"crash_points\": [";
        for (std::size_t j = 0; j < c.results.size(); ++j) {
            const ConcCrashPointResult &r = c.results[j];
            os << (j ? ",\n        " : "\n        ");
            os << "{\"cycle\": " << r.crashCycle
               << ", \"outcome\": \"" << crashOutcomeName(r.outcome)
               << "\", \"remote_outstanding\": "
               << (r.remoteOutstanding ? "true" : "false")
               << ", \"invariant\": ";
            if (r.invariant.empty())
                os << "null";
            else
                os << '"' << jsonEscape(r.invariant) << '"';
            os << ", \"plan\": ";
            emitPlanJson(os, r.plan);
            os << "}";
        }
        os << (c.results.empty() ? "],\n" : "\n      ],\n");
        os << "      \"failures\": [";
        for (std::size_t j = 0; j < c.failures.size(); ++j) {
            const ConcReproducer &rep = c.failures[j];
            os << (j ? ",\n        " : "\n        ");
            os << "{\"seed\": " << rep.seed << ", \"config\": \""
               << configName(rep.config) << "\", \"crash_cycle\": "
               << rep.crashCycle << ", \"invariant\": ";
            if (rep.invariant.empty())
                os << "null";
            else
                os << '"' << jsonEscape(rep.invariant) << '"';
            os << ", \"plan\": ";
            emitPlanJson(os, rep.plan);
            os << "}";
        }
        os << (c.failures.empty() ? "]\n" : "\n      ]\n");
        os << "    }"
           << (i + 1 < report.configs.size() ? ",\n" : "\n");
    }
    os << "  ],\n";
    os << "  \"quarantined\": [\n";
    for (std::size_t i = 0; i < report.quarantined.size(); ++i) {
        const QuarantinedConfig &q = report.quarantined[i];
        const exp::JobFailure &f = q.failure;
        os << "    {\"config\": \"" << configName(q.config)
           << "\", \"outcome\": \"" << exp::jobOutcomeName(f.outcome)
           << "\", \"signal\": " << f.signal << ", \"exit_code\": "
           << f.exitCode << ", \"attempts\": " << f.attempts
           << ", \"message\": \"" << jsonEscape(f.message)
           << "\", \"stderr_tail\": \"" << jsonEscape(f.stderrTail)
           << "\"}"
           << (i + 1 < report.quarantined.size() ? ",\n" : "\n");
    }
    os << "  ],\n";
    os << "  \"safe_configs_clean\": "
       << (report.safeConfigsClean() ? "true" : "false") << ",\n";
    os << "  \"ok\": " << (report.ok() ? "true" : "false") << "\n";
    os << "}\n";
    return os.str();
}

namespace {

/**
 * The isolated multi-core campaign: one forked worker per
 * configuration, exact wire payloads journaled per config,
 * quarantine on persistent worker failure -- the PR-5 contract.
 */
ConcCampaignReport
runConcCampaignIsolated(const ConcCampaignOptions &options)
{
    if (!exp::processIsolationSupported())
        ede_fatal("process isolation is not supported on this platform");

    const std::size_t n = options.configs.size();
    std::optional<exp::SweepJournal> journal;
    if (!options.journalPath.empty()) {
        journal.emplace(options.journalPath,
                        concCampaignSweepId(options), n,
                        options.resume);
    }

    std::vector<std::optional<ConcCampaignConfigResult>> slots(n);
    std::vector<std::optional<QuarantinedConfig>> poisoned(n);
    auto quarantine = [&](std::size_t i, Config cfg,
                          exp::JobFailure failure) {
        ede_warn("config '", configName(cfg), "' quarantined: ",
                 failure.describe());
        if (journal) {
            journal->recordQuarantine(
                i, concCampaignConfigFingerprint(options, cfg),
                failure);
        }
        poisoned[i] = QuarantinedConfig{cfg, std::move(failure)};
    };

    auto runConfig = [&](std::size_t i) {
        const Config cfg = options.configs[i];
        const std::uint64_t fp =
            concCampaignConfigFingerprint(options, cfg);

        if (journal && options.resume) {
            const auto it = journal->replayed().find(i);
            if (it != journal->replayed().end() &&
                it->second.fingerprint == fp) {
                const exp::JournalEntry &e = it->second;
                if (e.ok) {
                    if (std::optional<ConcCampaignConfigResult> r =
                            deserializeConcCampaignResult(e.payload);
                        r && r->config == cfg) {
                        slots[i] = std::move(*r);
                        return;
                    }
                    // Corrupt payload: fall through and re-run.
                } else {
                    poisoned[i] = QuarantinedConfig{cfg, e.failure};
                    return;
                }
            }
        }

        const exp::WorkerRun run = exp::runWithRetry(
            [&]() -> std::string {
                if (!options.chaosCrashConfig.empty() &&
                    configName(cfg) == options.chaosCrashConfig) {
                    std::abort();
                }
                ConcCampaignOptions child = options;
                child.jobs = 1;  // The worker *is* the parallel unit.
                const SimulatedConcCampaign sim =
                    simulateConcCampaignConfig(child, cfg);
                return serializeConcCampaignResult(classifyConcConfig(
                    child, cfg, sim, exp::Scheduler(1)));
            },
            options.limits, options.retry, /*jitterSeed=*/fp);

        if (run.ok()) {
            if (std::optional<ConcCampaignConfigResult> r =
                    deserializeConcCampaignResult(run.payload);
                r && r->config == cfg) {
                if (journal)
                    journal->recordOk(i, fp, run.payload);
                slots[i] = std::move(*r);
                return;
            }
            exp::JobFailure protocol;
            protocol.outcome = exp::JobOutcome::Crashed;
            protocol.attempts = run.failure.attempts;
            protocol.message =
                "worker payload failed conc-campaign validation";
            quarantine(i, cfg, std::move(protocol));
            return;
        }
        quarantine(i, cfg, run.failure);
    };

    const exp::Scheduler sched(options.jobs);
    sched.run(n, runConfig, exp::FailureMode::KeepGoing);

    ConcCampaignReport report;
    report.options = options;
    for (std::size_t i = 0; i < n; ++i) {
        if (slots[i])
            report.configs.push_back(std::move(*slots[i]));
        else if (poisoned[i])
            report.quarantined.push_back(std::move(*poisoned[i]));
    }
    return report;
}

} // namespace

ConcCampaignReport
runConcCampaign(const ConcCampaignOptions &options)
{
    if (!options.journalPath.empty() && !options.isolate) {
        ede_fatal("the conc-campaign journal requires process "
                  "isolation (--isolate)");
    }
    if (options.isolate)
        return runConcCampaignIsolated(options);

    const exp::Scheduler sched(options.jobs);

    // Phase 1: every configuration's simulation is independent.
    std::vector<SimulatedConcCampaign> sims =
        sched.map<SimulatedConcCampaign>(
            options.configs.size(), [&](std::size_t i) {
                return simulateConcCampaignConfig(
                    options, options.configs[i]);
            });

    // Phase 2: per-point classification, parallel within each
    // configuration, tallied in deterministic point order.
    ConcCampaignReport report;
    report.options = options;
    for (std::size_t i = 0; i < options.configs.size(); ++i) {
        report.configs.push_back(classifyConcConfig(
            options, options.configs[i], sims[i], sched));
    }
    return report;
}

} // namespace ede
