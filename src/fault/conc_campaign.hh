/**
 * @file
 * Multi-core crash-injection campaign.
 *
 * The single-core campaign (fault/campaign.hh) samples crash cycles
 * of one hart's run and pushes each reconstructed image through
 * undo-log recovery.  This campaign runs the concurrent kernels on N
 * cores and aims its samples at the genuinely multi-core failure
 * window: crash cycles where core 0 is mid-operation while a *remote*
 * core (1..N-1) still has accepted-but-undrained persists -- writes
 * the NVM buffer acknowledged but whose media writes are outstanding.
 * Those are the states a fence bug on one core corrupts through
 * another core's durable view.  Crash-point selection stratifies
 * toward that window (remote-outstanding points get ~3/4 of the
 * budget); each image is reconstructed by the shared frontier-torn
 * crash-image builder against the *joint* persist order
 * (multicore_order.hh) and judged by the kernels' recovery oracles
 * (checkConcInvariants).
 *
 * The isolation/journal/quarantine contract is the single-core
 * campaign's: one forked worker per configuration, exact wire
 * payloads journaled per config, so a SIGKILLed multi-core sweep
 * resumes byte-identically.
 */

#ifndef EDE_FAULT_CONC_CAMPAIGN_HH
#define EDE_FAULT_CONC_CAMPAIGN_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "apps/conc_harness.hh"
#include "exp/worker.hh"
#include "fault/campaign.hh"

namespace ede {

/** One sampled multi-core crash point's verdict. */
struct ConcCrashPointResult
{
    Cycle crashCycle = 0;
    CrashOutcome outcome = CrashOutcome::Recovered;
    bool remoteOutstanding = false; ///< Remote media writes pending.
    std::string invariant;          ///< Violated invariant ("" = none).
    FaultPlan plan;
};

/** A failing multi-core crash point, replayable from scratch. */
struct ConcReproducer
{
    std::uint64_t seed = 0;
    Config config = Config::B;
    Cycle crashCycle = 0;
    FaultPlan plan;
    std::string invariant;

    /** One-line human-readable rendering. */
    std::string describe() const;
};

/** Tallies and failures for one configuration. */
struct ConcCampaignConfigResult
{
    Config config = Config::B;
    Cycle cycles = 0;
    std::uint64_t transientRejects = 0;
    std::uint64_t points = 0;
    std::uint64_t remotePoints = 0;  ///< Remote-outstanding samples.
    std::uint64_t recovered = 0;
    std::uint64_t unrecoverable = 0;
    std::vector<ConcCrashPointResult> results;
    std::vector<ConcReproducer> failures;  ///< Safe configs only.
};

/** Multi-core campaign parameters. */
struct ConcCampaignOptions
{
    ConcApp app = ConcApp::MsQueue;
    std::uint64_t seed = 1;

    /** Crash points sampled per configuration (0 = exhaustive). */
    std::size_t pointsPerConfig = 200;

    unsigned cores = 2;
    int opsPerCore = 8;
    std::uint64_t workloadSeed = 42;

    /** NVM media write latency multiplier (see ConcCheckOptions). */
    std::uint32_t mediaFactor = 8;

    /** Transient accept-fault rate pressured during simulation. */
    double acceptFaultRate = 0.02;

    std::vector<Config> configs{kAllConfigs.begin(),
                                kAllConfigs.end()};
    unsigned jobs = 1;

    /** @name Process isolation (same contract as CampaignOptions). */
    /// @{
    bool isolate = false;
    exp::WorkerLimits limits;
    exp::RetryPolicy retry;
    std::string journalPath;  ///< Requires isolate; empty disables.
    bool resume = false;
    std::string chaosCrashConfig;  ///< Worker abort() hook (tests/CI).
    /// @}
};

/** The whole multi-core campaign's outcome. */
struct ConcCampaignReport
{
    ConcCampaignOptions options;
    std::vector<ConcCampaignConfigResult> configs;
    std::vector<QuarantinedConfig> quarantined;

    /** No safe configuration produced an unrecoverable image. */
    bool safeConfigsClean() const;

    /** safeConfigsClean and nothing quarantined. */
    bool ok() const;

    /** Multi-line human-readable summary with failures. */
    std::string describe() const;
};

/** Run the multi-core campaign across configurations. */
ConcCampaignReport runConcCampaign(const ConcCampaignOptions &options);

/** @name Worker wire format / journal payloads. */
/// @{
std::string
serializeConcCampaignResult(const ConcCampaignConfigResult &result);

std::optional<ConcCampaignConfigResult>
deserializeConcCampaignResult(const std::string &text);

std::uint64_t concCampaignSweepId(const ConcCampaignOptions &options);
/// @}

/** Deterministic JSON artifact (BENCH_conc_campaign.json). */
std::string concCampaignToJson(const ConcCampaignReport &report);

} // namespace ede

#endif // EDE_FAULT_CONC_CAMPAIGN_HH
