#include "fault/conc_check.hh"

#include <algorithm>
#include <memory>
#include <sstream>

#include "common/logging.hh"
#include "common/random.hh"
#include "exp/fingerprint.hh"
#include "exp/journal.hh"
#include "exp/scheduler.hh"
#include "fault/model_check/checker.hh"
#include "fault/model_check/enumerate.hh"
#include "fault/model_check/multicore_order.hh"

namespace ede {

namespace {

/** Reverse of configName; nullopt for an unknown name. */
std::optional<Config>
configFromName(const std::string &name)
{
    for (Config c : kAllConfigs) {
        if (configName(c) == name)
            return c;
    }
    return std::nullopt;
}

/** Decorrelated 64-bit stream: one value per (seed, salt) pair. */
std::uint64_t
mixSeed(std::uint64_t seed, std::uint64_t salt)
{
    Rng rng(seed ^ (salt * 0x9e3779b97f4a7c15ull));
    return rng.next();
}

std::uint64_t
configSalt(Config cfg)
{
    return static_cast<std::uint64_t>(cfg) + 1;
}

/** Minimal JSON string escaping. */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace

PersistOrderGraph
buildConcPersistOrder(const ConcurrentHarness &h)
{
    return buildJointPersistOrder(
        h.traces(), h.system().persistEvents(),
        h.system().mediaWriteEvents(), h.completionMatrix(),
        h.mediaLineBytes());
}

SeededConcBug
seedMissingCrossCoreWaitBug(std::vector<Trace> &traces)
{
    SeededConcBug bug;
    const auto cores = static_cast<unsigned>(traces.size());
    // Non-zero cores first: the campaign's crash framing holds core 0
    // mid-transaction, so a consumer-side bug on another core is the
    // more interesting plant when both exist.
    for (unsigned step = 0; step < cores; ++step) {
        const unsigned c = (1 + step) % cores;
        Trace &trace = traces[c];
        for (std::size_t t = 0; t < trace.size(); ++t) {
            StaticInst &si = trace.at(t).si;
            if (si.op != Op::WaitKey)
                continue;
            if (!edkIsReal(si.edkUse) ||
                si.edkUse == concCoreKey(c)) {
                continue;  // Local drain: no cross-core edge here.
            }
            si.edkUse = concCoreKey(c);
            bug.opIdx = t;
            bug.core = c;
            return bug;
        }
    }
    return bug;
}

std::string
ConcCounterexample::describe() const
{
    std::ostringstream os;
    os << "{invariant=" << invariant << ", durable=[";
    for (std::size_t i = 0; i < durable.size(); ++i)
        os << (i ? "," : "") << durable[i];
    os << "]";
    if (tornIdx != kNoEvent) {
        os << ", torn=" << tornIdx << " mask=0x" << std::hex
           << tornMask << std::dec;
    }
    os << ", imageHash=0x" << std::hex << imageHash << std::dec
       << "}";
    return os.str();
}

namespace {

/** One simulated configuration's artifacts for the check phase. */
struct SimulatedConc
{
    std::unique_ptr<ConcurrentHarness> harness;
    Cycle cycles = 0;
    SeededConcBug bug;
};

SimulatedConc
simulateConcConfig(const ConcCheckOptions &options, Config cfg)
{
    const LogJobTag tag("conc-check/" +
                        std::string(configName(cfg)));
    SimulatedConc sim;
    ConcParams p;
    p.cfg = cfg;
    p.cores = options.cores;
    p.opsPerCore = options.opsPerCore;
    p.seed = options.workloadSeed;
    p.paced = true;  // The checkers require model-order execution.
    sim.harness = std::make_unique<ConcurrentHarness>(
        options.app, p, options.mediaFactor);
    sim.harness->generate();
    if (options.seedBug)
        sim.bug = seedMissingCrossCoreWaitBug(sim.harness->traces());
    sim.cycles = sim.harness->simulateChecked();
    return sim;
}

/**
 * Enumerate and judge every cross-core durable state of one
 * simulated configuration (serial within a configuration: the dedup
 * cache is shared across states).
 */
ConcCheckConfigResult
checkConcConfig(const ConcCheckOptions &options, Config cfg,
                const SimulatedConc &sim)
{
    const ConcurrentHarness &h = *sim.harness;
    ConcCheckConfigResult result;
    result.config = cfg;
    result.cycles = sim.cycles;
    result.seededBugOpIdx = sim.bug.opIdx;
    result.seededBugCore = sim.bug.core;

    const PersistOrderGraph graph = buildConcPersistOrder(h);
    result.events = graph.nodes.size();
    result.freeEvents = graph.nodes.size() - graph.preSetupCount;
    result.orderStats = graph.stats;

    const ConcModel &model = h.model();
    DurableSetChecker checker(
        h.system().persistEvents(), h.baselineNvm(), graph,
        [&model](MemoryImage &img) {
            DurableSetChecker::StateVerdict v;
            v.invariant = checkConcInvariants(model, img);
            v.appOk = v.invariant == nullptr;
            return v;
        });
    const std::uint64_t torn_seed =
        mixSeed(options.seed, 0x70c0 ^ configSalt(cfg));

    auto handleState = [&](const std::vector<std::size_t> &set,
                           std::size_t tornIdx,
                           std::uint64_t tornMask) {
        const DurableSetChecker::StateVerdict v =
            checker.check(set, tornIdx, tornMask);
        if (v.duplicate)
            return;
        if (!v.invariant) {
            ++result.recoveredClean;
            return;
        }
        ++result.violations;
        if (result.counterexamples.size() >=
            options.maxCounterexamples) {
            return;
        }
        ConcCounterexample cex;
        cex.invariant = v.invariant;
        std::size_t shrunkTorn = tornIdx;
        std::uint64_t shrunkMask = tornMask;
        cex.durable = checker.shrink(set, shrunkTorn, shrunkMask,
                                     options.drainLines,
                                     cex.invariant);
        cex.tornIdx = shrunkTorn;
        cex.tornMask = shrunkTorn == kNoEvent ? 0 : shrunkMask;
        cex.imageHash =
            checker
                .materialize(cex.durable, cex.tornIdx, cex.tornMask)
                .canonicalContentHash();
        result.counterexamples.push_back(std::move(cex));
    };

    EnumerationLimits limits;
    limits.drainLines = options.drainLines;
    limits.maxStates = options.maxStates;
    limits.budgetMs = options.budgetMs;

    const EnumerationStats stats = forEachDurableSet(
        graph, limits, [&](const DurableSetView &view) {
            handleState(view.postSetup, kNoEvent, 0);
            if (options.torn) {
                for (std::size_t cand :
                     checker.tornCandidates(view.postSetup,
                                            /*cap=*/4)) {
                    const std::size_t chunks =
                        (graph.nodes[cand].size + 7) / 8;
                    for (TearKind kind :
                         {TearKind::Prefix, TearKind::Suffix,
                          TearKind::Interleaved}) {
                        FaultPlan tp;
                        tp.seed = mixSeed(
                            torn_seed,
                            cand * 8 +
                                static_cast<std::uint64_t>(kind));
                        tp.tear = kind;
                        const std::uint64_t mask =
                            tornChunkMask(tp, chunks);
                        ++result.tornVariants;
                        handleState(view.postSetup, cand, mask);
                    }
                }
            }
            return true;
        });

    result.states = stats.states;
    result.rejectedBudget = stats.rejectedBudget;
    result.truncated = stats.truncated;
    result.uniqueImages = checker.uniqueImages();
    return result;
}

constexpr const char *kConcCheckResultMagic = "ede-concheck-config-v1";

/** The worker identity of one (conc check, config) pair. */
std::uint64_t
concConfigFingerprint(const ConcCheckOptions &options, Config cfg)
{
    exp::FingerprintHasher h;
    h.field("concheck.sweep", concCheckSweepId(options));
    h.field("concheck.config", configName(cfg));
    return h.value();
}

} // namespace

bool
ConcCheckReport::ok() const
{
    if (!quarantined.empty())
        return false;
    for (const ConcCheckConfigResult &c : configs) {
        const bool planted =
            options.seedBug && c.seededBugOpIdx != kNoEvent;
        if (planted) {
            // A checker blind to its own seeded WAIT bug proves
            // nothing; non-detection fails the run.
            if (c.violations == 0)
                return false;
        } else if (c.violations != 0) {
            return false;
        }
    }
    return true;
}

std::string
ConcCheckReport::describe() const
{
    std::ostringstream os;
    os << "conc check: app=" << concAppName(options.app) << " seed="
       << options.seed << " cores=" << options.cores << " ops/core="
       << options.opsPerCore << " mediaFactor="
       << options.mediaFactor << " drainLines=";
    if (options.drainLines == FaultPlan::kDrainAll)
        os << "all";
    else
        os << options.drainLines;
    os << " maxStates=" << options.maxStates
       << (options.seedBug ? " SEEDED-BUG" : "") << "\n";
    for (const ConcCheckConfigResult &c : configs) {
        os << "  " << configName(c.config) << ": " << c.states
           << " durable sets";
        if (c.truncated)
            os << " (TRUNCATED)";
        os << " + " << c.tornVariants << " torn -> "
           << c.uniqueImages << " unique images, "
           << c.recoveredClean << " clean, " << c.violations
           << " violating  (" << c.freeEvents << " free events, "
           << c.orderStats.total() << " edges, "
           << c.orderStats.crossWait << " cross-wait, "
           << c.orderStats.crossLine << " cross-line)\n";
        if (options.seedBug) {
            if (c.seededBugOpIdx != kNoEvent) {
                os << "    seeded cross-core WAIT bug at core "
                   << c.seededBugCore << " op[" << c.seededBugOpIdx
                   << "]: "
                   << (c.violations ? "DETECTED" : "NOT DETECTED")
                   << "\n";
            } else {
                os << "    seeded bug not plantable (no cross-core "
                      "WAIT in this configuration)\n";
            }
        }
        for (const ConcCounterexample &cex : c.counterexamples)
            os << "    COUNTEREXAMPLE " << cex.describe() << "\n";
    }
    for (const QuarantinedConfig &q : quarantined) {
        os << "  " << configName(q.config) << ": QUARANTINED ("
           << q.failure.describe() << ")\n";
    }
    os << (ok() ? "  conc check ok\n" : "  CONC CHECK FAILED\n");
    return os.str();
}

std::string
serializeConcCheckResult(const ConcCheckConfigResult &result)
{
    std::ostringstream os;
    os << kConcCheckResultMagic << "\n";
    os << "config " << configName(result.config) << "\n";
    os << "cycles " << result.cycles << "\n";
    os << "events " << result.events << ' ' << result.freeEvents
       << "\n";
    const PersistOrderStats &s = result.orderStats;
    os << "edges " << s.sameLine << ' ' << s.edk << ' ' << s.keyChain
       << ' ' << s.fence << ' ' << s.lineGate << ' ' << s.nonmonotone
       << ' ' << s.crossWait << ' ' << s.crossLine << "\n";
    os << "tallies " << result.states << ' ' << result.rejectedBudget
       << ' ' << result.tornVariants << ' ' << result.uniqueImages
       << ' ' << result.recoveredClean << ' ' << result.violations
       << ' ' << (result.truncated ? 1 : 0) << ' '
       << result.seededBugOpIdx << ' ' << result.seededBugCore
       << "\n";
    os << "counterexamples " << result.counterexamples.size() << "\n";
    for (const ConcCounterexample &cex : result.counterexamples) {
        os << "c " << cex.invariant << ' ' << cex.tornIdx << ' '
           << cex.tornMask << ' ' << cex.imageHash << ' '
           << cex.durable.size();
        for (std::size_t i : cex.durable)
            os << ' ' << i;
        os << "\n";
    }
    return os.str();
}

std::optional<ConcCheckConfigResult>
deserializeConcCheckResult(const std::string &text)
{
    std::istringstream is(text);
    std::string magic, key, name;
    if (!(is >> magic) || magic != kConcCheckResultMagic)
        return std::nullopt;

    ConcCheckConfigResult result;
    if (!(is >> key >> name) || key != "config")
        return std::nullopt;
    const std::optional<Config> cfg = configFromName(name);
    if (!cfg)
        return std::nullopt;
    result.config = *cfg;

    if (!(is >> key >> result.cycles) || key != "cycles")
        return std::nullopt;
    if (!(is >> key >> result.events >> result.freeEvents) ||
        key != "events") {
        return std::nullopt;
    }
    PersistOrderStats &s = result.orderStats;
    if (!(is >> key >> s.sameLine >> s.edk >> s.keyChain >> s.fence >>
          s.lineGate >> s.nonmonotone >> s.crossWait >>
          s.crossLine) ||
        key != "edges") {
        return std::nullopt;
    }
    int truncated = 0;
    if (!(is >> key >> result.states >> result.rejectedBudget >>
          result.tornVariants >> result.uniqueImages >>
          result.recoveredClean >> result.violations >> truncated >>
          result.seededBugOpIdx >> result.seededBugCore) ||
        key != "tallies" || truncated < 0 || truncated > 1) {
        return std::nullopt;
    }
    result.truncated = truncated == 1;

    std::size_t n = 0;
    if (!(is >> key >> n) || key != "counterexamples")
        return std::nullopt;
    result.counterexamples.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        ConcCounterexample cex;
        std::size_t durables = 0;
        if (!(is >> key >> cex.invariant >> cex.tornIdx >>
              cex.tornMask >> cex.imageHash >> durables) ||
            key != "c") {
            return std::nullopt;
        }
        cex.durable.resize(durables);
        for (std::size_t j = 0; j < durables; ++j) {
            if (!(is >> cex.durable[j]))
                return std::nullopt;
        }
        result.counterexamples.push_back(std::move(cex));
    }
    return result;
}

std::uint64_t
concCheckSweepId(const ConcCheckOptions &options)
{
    exp::FingerprintHasher h;
    h.field("concheck.schema",
            static_cast<std::uint64_t>(exp::kResultSchemaVersion));
    h.field("concheck.app", concAppName(options.app));
    h.field("concheck.seed", options.seed);
    h.field("concheck.cores",
            static_cast<std::uint64_t>(options.cores));
    h.field("concheck.opsPerCore",
            static_cast<std::uint64_t>(options.opsPerCore));
    h.field("concheck.workloadSeed", options.workloadSeed);
    h.field("concheck.mediaFactor",
            static_cast<std::uint64_t>(options.mediaFactor));
    h.field("concheck.drainLines",
            static_cast<std::uint64_t>(options.drainLines));
    h.field("concheck.maxStates", options.maxStates);
    h.field("concheck.budgetMs", options.budgetMs);
    h.field("concheck.torn", options.torn);
    h.field("concheck.seedBug", options.seedBug);
    h.field("concheck.maxCounterexamples",
            static_cast<std::uint64_t>(options.maxCounterexamples));
    h.field("concheck.configs",
            static_cast<std::uint64_t>(options.configs.size()));
    for (Config c : options.configs)
        h.field("concheck.config", configName(c));
    return h.value();
}

std::string
concCheckToJson(const ConcCheckReport &report)
{
    const ConcCheckOptions &opt = report.options;
    std::ostringstream os;
    os << "{\n";
    os << "  \"bench\": \"conc_check\",\n";
    os << "  \"schema\": " << exp::kResultSchemaVersion << ",\n";
    os << "  \"conc_check\": {\"app\": \"" << concAppName(opt.app)
       << "\", \"seed\": " << opt.seed << ", \"cores\": "
       << opt.cores << ", \"ops_per_core\": " << opt.opsPerCore
       << ", \"workload_seed\": " << opt.workloadSeed
       << ", \"media_factor\": " << opt.mediaFactor
       << ", \"drain_lines\": " << opt.drainLines
       << ", \"max_states\": " << opt.maxStates
       << ", \"budget_ms\": " << opt.budgetMs << ", \"torn\": "
       << (opt.torn ? "true" : "false") << ", \"seed_bug\": "
       << (opt.seedBug ? "true" : "false") << "},\n";
    os << "  \"configs\": [\n";
    for (std::size_t i = 0; i < report.configs.size(); ++i) {
        const ConcCheckConfigResult &c = report.configs[i];
        const PersistOrderStats &s = c.orderStats;
        os << "    {\n";
        os << "      \"config\": \"" << configName(c.config)
           << "\",\n";
        os << "      \"cycles\": " << c.cycles << ",\n";
        os << "      \"events\": " << c.events << ",\n";
        os << "      \"free_events\": " << c.freeEvents << ",\n";
        os << "      \"edges\": {\"same_line\": " << s.sameLine
           << ", \"edk\": " << s.edk << ", \"key_chain\": "
           << s.keyChain << ", \"fence\": " << s.fence
           << ", \"line_gate\": " << s.lineGate
           << ", \"nonmonotone\": " << s.nonmonotone
           << ", \"cross_wait\": " << s.crossWait
           << ", \"cross_line\": " << s.crossLine << "},\n";
        os << "      \"states\": " << c.states << ",\n";
        os << "      \"rejected_budget\": " << c.rejectedBudget
           << ",\n";
        os << "      \"torn_variants\": " << c.tornVariants << ",\n";
        os << "      \"unique_images\": " << c.uniqueImages << ",\n";
        os << "      \"recovered_clean\": " << c.recoveredClean
           << ",\n";
        os << "      \"violations\": " << c.violations << ",\n";
        os << "      \"truncated\": "
           << (c.truncated ? "true" : "false") << ",\n";
        os << "      \"coverage\": \""
           << (c.truncated ? "truncated" : "exact") << "\",\n";
        if (c.seededBugOpIdx != kNoEvent) {
            os << "      \"seeded_bug_core\": " << c.seededBugCore
               << ",\n";
            os << "      \"seeded_bug_op_idx\": " << c.seededBugOpIdx
               << ",\n";
        }
        os << "      \"counterexamples\": [";
        for (std::size_t j = 0; j < c.counterexamples.size(); ++j) {
            const ConcCounterexample &cex = c.counterexamples[j];
            os << (j ? ",\n        " : "\n        ");
            os << "{\"invariant\": \"" << jsonEscape(cex.invariant)
               << "\", \"durable\": [";
            for (std::size_t k = 0; k < cex.durable.size(); ++k)
                os << (k ? ", " : "") << cex.durable[k];
            os << "], \"torn_idx\": ";
            if (cex.tornIdx == kNoEvent)
                os << "null";
            else
                os << cex.tornIdx;
            os << ", \"torn_mask\": " << cex.tornMask
               << ", \"image_hash\": " << cex.imageHash << "}";
        }
        os << (c.counterexamples.empty() ? "]\n" : "\n      ]\n");
        os << "    }"
           << (i + 1 < report.configs.size() ? ",\n" : "\n");
    }
    os << "  ],\n";
    os << "  \"quarantined\": [\n";
    for (std::size_t i = 0; i < report.quarantined.size(); ++i) {
        const QuarantinedConfig &q = report.quarantined[i];
        const exp::JobFailure &f = q.failure;
        os << "    {\"config\": \"" << configName(q.config)
           << "\", \"outcome\": \"" << exp::jobOutcomeName(f.outcome)
           << "\", \"signal\": " << f.signal << ", \"exit_code\": "
           << f.exitCode << ", \"attempts\": " << f.attempts
           << ", \"message\": \"" << jsonEscape(f.message)
           << "\", \"stderr_tail\": \"" << jsonEscape(f.stderrTail)
           << "\"}"
           << (i + 1 < report.quarantined.size() ? ",\n" : "\n");
    }
    os << "  ],\n";
    os << "  \"ok\": " << (report.ok() ? "true" : "false") << "\n";
    os << "}\n";
    return os.str();
}

namespace {

/**
 * The isolated cross-core check: one forked worker per
 * configuration, mirroring the single-core model check's contract --
 * exact wire serialization, per-config journal entries, quarantine
 * on persistent worker failure.
 */
ConcCheckReport
runConcCheckIsolated(const ConcCheckOptions &options)
{
    if (!exp::processIsolationSupported())
        ede_fatal("process isolation is not supported on this platform");

    const std::size_t n = options.configs.size();
    std::optional<exp::SweepJournal> journal;
    if (!options.journalPath.empty()) {
        journal.emplace(options.journalPath, concCheckSweepId(options),
                        n, options.resume);
    }

    std::vector<std::optional<ConcCheckConfigResult>> slots(n);
    std::vector<std::optional<QuarantinedConfig>> poisoned(n);
    auto quarantine = [&](std::size_t i, Config cfg,
                          exp::JobFailure failure) {
        ede_warn("config '", configName(cfg), "' quarantined: ",
                 failure.describe());
        if (journal) {
            journal->recordQuarantine(
                i, concConfigFingerprint(options, cfg), failure);
        }
        poisoned[i] = QuarantinedConfig{cfg, std::move(failure)};
    };

    auto runConfig = [&](std::size_t i) {
        const Config cfg = options.configs[i];
        const std::uint64_t fp = concConfigFingerprint(options, cfg);

        if (journal && options.resume) {
            const auto it = journal->replayed().find(i);
            if (it != journal->replayed().end() &&
                it->second.fingerprint == fp) {
                const exp::JournalEntry &e = it->second;
                if (e.ok) {
                    if (std::optional<ConcCheckConfigResult> r =
                            deserializeConcCheckResult(e.payload);
                        r && r->config == cfg) {
                        slots[i] = std::move(*r);
                        return;
                    }
                    // Corrupt payload: fall through and re-run.
                } else {
                    poisoned[i] = QuarantinedConfig{cfg, e.failure};
                    return;
                }
            }
        }

        const exp::WorkerRun run = exp::runWithRetry(
            [&]() -> std::string {
                if (!options.chaosCrashConfig.empty() &&
                    configName(cfg) == options.chaosCrashConfig) {
                    std::abort();
                }
                const SimulatedConc sim =
                    simulateConcConfig(options, cfg);
                return serializeConcCheckResult(
                    checkConcConfig(options, cfg, sim));
            },
            options.limits, options.retry, /*jitterSeed=*/fp);

        if (run.ok()) {
            if (std::optional<ConcCheckConfigResult> r =
                    deserializeConcCheckResult(run.payload);
                r && r->config == cfg) {
                if (journal)
                    journal->recordOk(i, fp, run.payload);
                slots[i] = std::move(*r);
                return;
            }
            exp::JobFailure protocol;
            protocol.outcome = exp::JobOutcome::Crashed;
            protocol.attempts = run.failure.attempts;
            protocol.message =
                "worker payload failed conc-check validation";
            quarantine(i, cfg, std::move(protocol));
            return;
        }
        quarantine(i, cfg, run.failure);
    };

    const exp::Scheduler sched(options.jobs);
    sched.run(n, runConfig, exp::FailureMode::KeepGoing);

    ConcCheckReport report;
    report.options = options;
    for (std::size_t i = 0; i < n; ++i) {
        if (slots[i])
            report.configs.push_back(std::move(*slots[i]));
        else if (poisoned[i])
            report.quarantined.push_back(std::move(*poisoned[i]));
    }
    return report;
}

} // namespace

ConcCheckReport
runConcCheck(const ConcCheckOptions &options)
{
    if (!options.journalPath.empty() && !options.isolate) {
        ede_fatal("the conc-check journal requires process "
                  "isolation (--isolate)");
    }
    if (options.isolate)
        return runConcCheckIsolated(options);

    const exp::Scheduler sched(options.jobs);
    std::vector<ConcCheckConfigResult> results =
        sched.map<ConcCheckConfigResult>(
            options.configs.size(), [&](std::size_t i) {
                const SimulatedConc sim =
                    simulateConcConfig(options, options.configs[i]);
                return checkConcConfig(options, options.configs[i],
                                       sim);
            });

    ConcCheckReport report;
    report.options = options;
    report.configs = std::move(results);
    return report;
}

} // namespace ede
