/**
 * @file
 * Cross-core crash-consistency model checker.
 *
 * The single-core checker (fault/model_check/checker.hh) enumerates
 * durable sets of one hart's persist order and judges each state
 * through undo-log recovery.  This is its N-core counterpart: one
 * *joint* partial order spans every core's persist events (per-core
 * chains joined by cross-core WAIT edges and shared-L2 dirty-handoff
 * same-line edges, multicore_order.hh), cross-core durable sets are
 * the ideals of that joint lattice, and each materialized crash image
 * is judged by the concurrent kernels' recovery oracles
 * (checkConcInvariants) -- there is no undo log; the structures are
 * their own recovery story.
 *
 * Sensitivity gate: seedMissingCrossCoreWaitBug retargets one
 * cross-core WAIT to the waiting core's own key, deleting exactly the
 * WAIT edge that orders a consumer's dependent persist behind the
 * producer core's persists.  The checker must then find a durable
 * set with the consumer's write durable but the producer's missing
 * (e.g. a dequeued node vanishing from a recovered MS-queue) while
 * the intact program verifies clean.
 *
 * Checks run in the slow-media regime by default (mediaFactor scales
 * the NVM media write latency): accepted-but-undrained remote
 * persists then stay outstanding across scheduling rounds, which is
 * precisely the window where cross-core ordering bugs surface.
 */

#ifndef EDE_FAULT_CONC_CHECK_HH
#define EDE_FAULT_CONC_CHECK_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "apps/conc_harness.hh"
#include "exp/worker.hh"
#include "fault/campaign.hh"
#include "fault/model_check/persist_order.hh"

namespace ede {

/** Joint persist order of a completed, audited concurrent run. */
PersistOrderGraph buildConcPersistOrder(const ConcurrentHarness &h);

/** Where (if anywhere) the seeded cross-core bug was planted. */
struct SeededConcBug
{
    std::size_t opIdx = kNoEvent; ///< Trace index; kNoEvent = none.
    unsigned core = 0;            ///< Core whose WAIT was retargeted.
};

/**
 * Seeded-bug mutator: the first WAIT_KEY naming a *remote* core's
 * key (scanning cores 1..N-1 first, then core 0) is retargeted to
 * the waiting core's own key.  The machine still executes a valid
 * wait -- it just no longer drains the remote producer, so the
 * cross-core ordering edge disappears.  Must run after generate()
 * and before simulate().  Fence-based configurations (B, SU, U)
 * carry no WAIT: the bug is reported unplanted.
 */
SeededConcBug seedMissingCrossCoreWaitBug(std::vector<Trace> &traces);

/** One shrunk violating cross-core durable state. */
struct ConcCounterexample
{
    std::string invariant;            ///< checkConcInvariants name.
    std::vector<std::size_t> durable; ///< Joint-lattice event indices.
    std::size_t tornIdx = kNoEvent;   ///< Torn event, if any.
    std::uint64_t tornMask = 0;       ///< Surviving-chunk mask.
    std::uint64_t imageHash = 0;      ///< Canonical content hash.

    /** One-line human-readable rendering. */
    std::string describe() const;
};

/** Verdict and tallies for one configuration. */
struct ConcCheckConfigResult
{
    Config config = Config::B;
    Cycle cycles = 0;                 ///< Simulated run length.
    std::size_t events = 0;           ///< Persist events recorded.
    std::size_t freeEvents = 0;       ///< Enumerable (all of them).
    PersistOrderStats orderStats;     ///< Incl. crossWait/crossLine.
    std::uint64_t states = 0;
    std::uint64_t rejectedBudget = 0;
    std::uint64_t tornVariants = 0;
    std::uint64_t uniqueImages = 0;
    std::uint64_t recoveredClean = 0;
    std::uint64_t violations = 0;
    bool truncated = false;
    std::size_t seededBugOpIdx = kNoEvent;
    unsigned seededBugCore = 0;
    std::vector<ConcCounterexample> counterexamples;
};

/** Cross-core model-check parameters. */
struct ConcCheckOptions
{
    ConcApp app = ConcApp::MsQueue;
    std::uint64_t seed = 1;

    unsigned cores = 2;

    /**
     * Deliberately tiny: the joint lattice is exponential in the
     * total persist events of *all* cores.  Four ops per core on two
     * cores already exercises every cross-core handoff path.
     */
    int opsPerCore = 4;
    std::uint64_t workloadSeed = 42;

    /**
     * NVM media write latency multiplier (>= 1).  The default keeps
     * remote persists buffered across several paced rounds so
     * accept-order prefixes routinely cut through
     * accepted-but-undrained remote writes.
     */
    std::uint32_t mediaFactor = 8;

    std::vector<Config> configs{Config::B, Config::IQ, Config::WB};

    std::uint32_t drainLines = FaultPlan::kDrainAll;
    std::uint64_t maxStates = 20000;
    std::uint64_t budgetMs = 0;
    bool torn = true;
    bool seedBug = false;  ///< Apply seedMissingCrossCoreWaitBug.
    std::size_t maxCounterexamples = 4;
    unsigned jobs = 1;

    /** @name Process isolation (same contract as CampaignOptions). */
    /// @{
    bool isolate = false;
    exp::WorkerLimits limits;
    exp::RetryPolicy retry;
    std::string journalPath;  ///< Requires isolate; empty disables.
    bool resume = false;
    std::string chaosCrashConfig;  ///< Worker abort() hook (tests/CI).
    /// @}
};

/** The whole cross-core model check's outcome. */
struct ConcCheckReport
{
    ConcCheckOptions options;
    std::vector<ConcCheckConfigResult> configs;
    std::vector<QuarantinedConfig> quarantined;

    /**
     * Acceptance: nothing quarantined; intact configurations verify
     * clean; configurations where the seeded WAIT bug was actually
     * planted (EDE configurations with a cross-core WAIT) report at
     * least one violation.
     */
    bool ok() const;

    /** Multi-line human-readable summary with counterexamples. */
    std::string describe() const;
};

/** Run the cross-core model check across configurations. */
ConcCheckReport runConcCheck(const ConcCheckOptions &options);

/** @name Worker wire format / journal payloads. */
/// @{
std::string
serializeConcCheckResult(const ConcCheckConfigResult &result);

std::optional<ConcCheckConfigResult>
deserializeConcCheckResult(const std::string &text);

std::uint64_t concCheckSweepId(const ConcCheckOptions &options);
/// @}

/** Deterministic JSON artifact (BENCH_conc_check.json). */
std::string concCheckToJson(const ConcCheckReport &report);

} // namespace ede

#endif // EDE_FAULT_CONC_CHECK_HH
