#include "fault/crash_image.hh"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/logging.hh"

namespace ede {

namespace {

/** Write the surviving 8-byte chunks of a torn event. */
void
applyTorn(MemoryImage &image, const PersistEvent &ev,
          std::uint64_t mask)
{
    const std::size_t chunks = (ev.size + 7) / 8;
    for (std::size_t c = 0; c < chunks; ++c) {
        if (!(mask & (std::uint64_t{1} << c)))
            continue;
        const std::size_t off = 8 * c;
        const std::size_t len =
            std::min<std::size_t>(8, ev.size - off);
        image.write(ev.addr + off, ev.bytes.data() + off, len);
    }
}

} // namespace

FaultyImageReport
applyFaultyPersistEvents(MemoryImage &image,
                         const std::vector<PersistEvent> &events,
                         const std::vector<MediaWriteEvent> &mediaWrites,
                         Cycle crashCycle, const FaultPlan &plan,
                         std::uint32_t lineBytes,
                         const PersistOrderGraph *order)
{
    FaultyImageReport report;
    const Addr line_mask = ~static_cast<Addr>(lineBytes - 1);

    // Per-line sorted media-write cycles.  A completed media write at
    // cycle M carries every update accepted before it launched, and a
    // younger accept would have re-armed (cancelled) the write -- so
    // an event is on the media iff some write of its line completed
    // in (ev.cycle, crashCycle].
    std::unordered_map<Addr, std::vector<Cycle>> mediaByLine;
    for (const MediaWriteEvent &mw : mediaWrites) {
        if (mw.cycle <= crashCycle)
            mediaByLine[mw.lineAddr].push_back(mw.cycle);
    }
    for (auto &[line, cycles] : mediaByLine)
        std::sort(cycles.begin(), cycles.end());

    auto on_media = [&](const PersistEvent &ev) {
        auto it = mediaByLine.find(ev.addr & line_mask);
        if (it == mediaByLine.end())
            return false;
        auto up = std::upper_bound(it->second.begin(),
                                   it->second.end(), ev.cycle);
        return up != it->second.end();
    };

    // The durable set must be a strict prefix of the accept order.
    // Media writes do NOT drain the WPQ oldest-in-accept-order
    // (coalescing re-arms a hot line, so an old log line can still be
    // pending while younger data lines are already on media); if the
    // drain budget dropped pending events but kept younger on-media
    // ones, the image would contain a reordering that even a fully
    // fenced program cannot defend against -- a failed ADR breaks
    // undo logging's durability contract outright, not just its
    // ordering.  So the budget only decides WHERE the prefix is cut:
    // walking the accept order, each event still pending at the crash
    // consumes budget for its (distinct) line, and the first pending
    // event past the budget ends the durable prefix.  Younger events
    // are discarded even when their line later reached the media --
    // conservative for them, and exactly equivalent to an earlier
    // crash under a drain that got that far.
    const std::size_t limit = events.size();
    std::unordered_set<Addr> drainedLines;
    std::size_t cut = 0;  // Number of durable (applied) events.
    for (std::size_t i = 0; i < limit; ++i) {
        const PersistEvent &ev = events[i];
        if (ev.cycle > crashCycle)
            break;
        if (!on_media(ev)) {
            const Addr line = ev.addr & line_mask;
            if (!drainedLines.count(line)) {
                if (plan.drainLines != FaultPlan::kDrainAll &&
                    drainedLines.size() >= plan.drainLines) {
                    break;
                }
                drainedLines.insert(line);
            }
        }
        cut = i + 1;
    }

    report.durableCount = cut;

    // Which durable event tears.  Without ordering information it is
    // the last one -- the media write (or WPQ drain push) that was in
    // flight when power died; nothing younger survived, so a torn
    // tail is still an ordering the memory system produced.  With the
    // run's persist-order graph, ANY frontier event of the durable
    // prefix may have been mid-write: still pending, maximal in the
    // prefix (minSucc past the cut -- tearing an event some durable
    // event was ordered behind would fabricate an un-produced
    // ordering), and the last durable update of its cache line (an
    // older event's torn bytes are overwritten anyway).  The choice
    // among candidates is derived from the plan's seed.
    std::size_t torn_at = kNoEvent;
    if (plan.tear != TearKind::None && cut > 0) {
        torn_at = cut - 1;
        if (order) {
            ede_assert(order->nodes.size() == events.size(),
                       "persist-order graph does not match the "
                       "event stream");
            const Addr cache_mask = ~static_cast<Addr>(63);
            std::unordered_map<Addr, std::size_t> last_of_line;
            for (std::size_t i = 0; i < cut; ++i)
                last_of_line[events[i].addr & cache_mask] = i;
            std::vector<std::size_t> candidates;
            for (std::size_t i = 0; i < cut; ++i) {
                const PersistEvent &ev = events[i];
                if (ev.size <= 8 || on_media(ev))
                    continue;
                if (order->minSucc[i] < cut)
                    continue;
                if (last_of_line[ev.addr & cache_mask] != i)
                    continue;
                candidates.push_back(i);
            }
            if (!candidates.empty()) {
                Rng pick(plan.seed ^ 0x7ea2f5a11ull);
                torn_at = candidates[pick.next() % candidates.size()];
            }
        }
    }

    for (std::size_t i = 0; i < events.size(); ++i) {
        const PersistEvent &ev = events[i];
        if (ev.cycle > crashCycle)
            break;
        ede_assert(ev.bytes.size() == ev.size,
                   "persist event without data; enable "
                   "System::recordPersistData before running");
        if (i >= cut) {
            ++report.dropped;
            continue;
        }
        if (on_media(ev))
            ++report.onMedia;
        else
            ++report.drained;
        if (i == torn_at) {
            const std::size_t chunks = (ev.size + 7) / 8;
            const std::uint64_t mask = tornChunkMask(plan, chunks);
            applyTorn(image, ev, mask);
            report.tore = true;
            report.tornAddr = ev.addr;
            report.tornMask = mask;
            report.tornIdx = i;
        } else {
            image.write(ev.addr, ev.bytes.data(), ev.size);
        }
    }
    return report;
}

} // namespace ede
