/**
 * @file
 * Adversarial crash-image reconstruction.
 *
 * The audit layer's applyPersistEvents() models a *perfect* ADR: every
 * event accepted into the WPQ before the crash is durable.  This
 * module reconstructs the image a real power failure could leave
 * behind under a FaultPlan:
 *
 *  - the durable set is a strict prefix of the persist-accept order;
 *  - walking that order, every event still pending in the WPQ at the
 *    crash consumes drain budget for its (distinct) 256 B line, and
 *    the first pending event past the budget ends the prefix -- the
 *    "K of 128 slots reached the media" power-fail model;
 *  - the last durable event may tear at 8-byte granularity.
 *
 * Because the durable set is always an accept-order prefix, every
 * image this module produces corresponds to an ordering the memory
 * system actually generated -- a safe configuration must recover from
 * all of them, while the unsafe configurations fail on the orderings
 * their missing fences allowed.
 */

#ifndef EDE_FAULT_CRASH_IMAGE_HH
#define EDE_FAULT_CRASH_IMAGE_HH

#include <cstddef>
#include <vector>

#include "fault/fault_plan.hh"
#include "fault/model_check/persist_order.hh"
#include "mem/memory_image.hh"
#include "sim/system.hh"

namespace ede {

/** What the faulty reconstruction did (shrinking/debug support). */
struct FaultyImageReport
{
    std::size_t onMedia = 0;      ///< Events durable on the media.
    std::size_t drained = 0;      ///< Pending events the drain saved.
    std::size_t dropped = 0;      ///< Pending events lost at the cut.
    bool tore = false;            ///< A torn event was applied.
    Addr tornAddr = kNoAddr;      ///< Address of the torn event.
    std::uint64_t tornMask = 0;   ///< Chunk-survival mask applied.

    /**
     * The durable set is events [0, durableCount) of the accept
     * order, with event tornIdx (when not kNoEvent) torn to
     * tornMask -- enough for the model checker to re-materialize this
     * exact image and check it is inside the enumerated lattice.
     */
    std::size_t durableCount = 0;
    std::size_t tornIdx = kNoEvent;
};

/**
 * Apply the persist events up to @p crashCycle onto @p image the way
 * a power failure under @p plan would: media-resident events fully,
 * then a drained prefix of the pending events with one event possibly
 * torn.  With a benign plan this reduces exactly to
 * applyPersistEvents().
 *
 * Without @p order the torn event is the last durable one (the write
 * in flight when power died).  With a persist-order graph for this
 * run, the tear generalizes to a seed-chosen *frontier* event of the
 * durable prefix: still pending at the crash, maximal in the durable
 * set (no durable successor -- tearing an event that something
 * durable was ordered behind would fabricate an ordering the device
 * never produced), and the last durable update of its cache line
 * (else the torn bytes would be overwritten anyway).
 *
 * @param events      System::persistEvents() (with recorded bytes)
 * @param mediaWrites System::mediaWriteEvents()
 * @param lineBytes   NVM media line size (NvmParams::lineBytes)
 * @param order       persist-order graph of the same run (optional)
 */
FaultyImageReport applyFaultyPersistEvents(
    MemoryImage &image, const std::vector<PersistEvent> &events,
    const std::vector<MediaWriteEvent> &mediaWrites, Cycle crashCycle,
    const FaultPlan &plan, std::uint32_t lineBytes = 256,
    const PersistOrderGraph *order = nullptr);

} // namespace ede

#endif // EDE_FAULT_CRASH_IMAGE_HH
