#include "fault/fault_plan.hh"

#include <memory>
#include <sstream>
#include <unordered_map>

#include "common/logging.hh"

namespace ede {

const char *
tearKindName(TearKind kind)
{
    switch (kind) {
      case TearKind::None:
        return "none";
      case TearKind::Prefix:
        return "prefix";
      case TearKind::Suffix:
        return "suffix";
      case TearKind::Interleaved:
        return "interleaved";
    }
    return "unknown";
}

std::string
FaultPlan::describe() const
{
    std::ostringstream os;
    os << "seed=" << seed << " drain=";
    if (drainLines == kDrainAll)
        os << "all";
    else
        os << drainLines;
    os << " tear=" << tearKindName(tear);
    if (acceptFaultRate > 0.0) {
        os << " acceptFaultRate=" << acceptFaultRate
           << " maxConsecRejects=" << maxConsecutiveRejects;
    }
    return os.str();
}

FaultPlan
makeFaultPlan(std::uint64_t seed, std::uint32_t wpqSlots)
{
    FaultPlan plan;
    plan.seed = seed;
    Rng rng(seed);
    // Mix perfect drains in so every crash point is also probed
    // without the power-fail fault (the classic torn/clean split).
    if (rng.chance(0.25)) {
        plan.drainLines = FaultPlan::kDrainAll;
    } else {
        plan.drainLines =
            static_cast<std::uint32_t>(rng.below(wpqSlots + 1));
    }
    switch (rng.below(4)) {
      case 0:
        plan.tear = TearKind::None;
        break;
      case 1:
        plan.tear = TearKind::Prefix;
        break;
      case 2:
        plan.tear = TearKind::Suffix;
        break;
      default:
        plan.tear = TearKind::Interleaved;
        break;
    }
    return plan;
}

std::uint64_t
tornChunkMask(const FaultPlan &plan, std::size_t chunks)
{
    ede_assert(chunks >= 1 && chunks <= 64,
               "torn event must span 1..64 chunks");
    const std::uint64_t full = chunks == 64
        ? ~std::uint64_t{0}
        : (std::uint64_t{1} << chunks) - 1;
    // Decorrelate from the drain/tear draws made in makeFaultPlan.
    Rng rng(plan.seed ^ 0x7ea51237ull);
    switch (plan.tear) {
      case TearKind::None:
        return full;
      case TearKind::Prefix: {
        // Keep 1..chunks-1 leading chunks (chunks == 1: lose it all).
        const std::uint64_t keep =
            chunks == 1 ? 0 : rng.between(1, chunks - 1);
        return (std::uint64_t{1} << keep) - 1;
      }
      case TearKind::Suffix: {
        const std::uint64_t keep =
            chunks == 1 ? 0 : rng.between(1, chunks - 1);
        return full & ~((std::uint64_t{1} << (chunks - keep)) - 1);
      }
      case TearKind::Interleaved: {
        // Random subset, re-drawn until strictly partial.
        std::uint64_t mask = rng.next() & full;
        while (mask == full)
            mask = rng.next() & full;
        return mask;
      }
    }
    return full;
}

AcceptFaultHook
makeAcceptFaultInjector(const FaultPlan &plan)
{
    if (plan.acceptFaultRate <= 0.0)
        return {};
    struct InjectorState
    {
        Rng rng;
        double rate;
        std::uint32_t maxConsecutive;
        std::unordered_map<Addr, std::uint32_t> consecutive;
        explicit InjectorState(const FaultPlan &p)
            : rng(p.seed ^ 0xacceb7ull), rate(p.acceptFaultRate),
              maxConsecutive(p.maxConsecutiveRejects)
        {
        }
    };
    auto state = std::make_shared<InjectorState>(plan);
    return [state](const MemReq &req, Cycle) {
        const Addr line = req.addr & ~Addr{255};
        std::uint32_t &streak = state->consecutive[line];
        if (streak >= state->maxConsecutive ||
            !state->rng.chance(state->rate)) {
            streak = 0;
            return false;
        }
        ++streak;
        return true;
    };
}

} // namespace ede
