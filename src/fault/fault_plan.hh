/**
 * @file
 * Deterministic NVM fault plans.
 *
 * A FaultPlan describes every fault injected into one crash scenario:
 *
 *  - a *power-fail ADR drain* budget: at the crash, only `drainLines`
 *    distinct 256 B media lines still pending in the WPQ reach the
 *    media before the stored energy runs out.  The durable set is
 *    modelled as a strict prefix of the persist-accept order (the
 *    budget decides where the prefix is cut; see crash_image.hh) --
 *    anything weaker fabricates orderings the memory system never
 *    produced (a young data update surviving while the older log
 *    entry it depends on is dropped);
 *
 *  - a *torn persist*: the last durable event is cut at an 8-byte
 *    chunk boundary (prefix kept, suffix kept, or an interleaved
 *    subset).  Only the final event may tear: a tear in the middle of
 *    the durable prefix would, again, invent an un-produced ordering;
 *
 *  - *transient accept failures*: the DIMM sporadically refuses a
 *    write/clean at the buffer interface.  Rejections per line are
 *    bounded so the controller's bounded-backoff retry always makes
 *    forward progress.
 *
 * Every decision is derived from the plan's seed through the
 * deterministic Rng -- re-running a {seed, config, crashCycle, plan}
 * tuple reproduces the exact same fault sequence.
 */

#ifndef EDE_FAULT_FAULT_PLAN_HH
#define EDE_FAULT_FAULT_PLAN_HH

#include <cstdint>
#include <string>

#include "common/random.hh"
#include "mem/nvm.hh"

namespace ede {

/** How the final drained persist event is cut. */
enum class TearKind : std::uint8_t
{
    None,        ///< The event lands whole.
    Prefix,      ///< Only the leading chunks land.
    Suffix,      ///< Only the trailing chunks land.
    Interleaved, ///< An arbitrary strict subset of chunks lands.
};

const char *tearKindName(TearKind kind);

/** One crash scenario's fault description. */
struct FaultPlan
{
    /** Drain budget meaning "perfect ADR: everything lands". */
    static constexpr std::uint32_t kDrainAll = 0xffffffffu;

    std::uint64_t seed = 0;       ///< Root of all derived randomness.

    /** Distinct 256 B lines the power-fail drain completes. */
    std::uint32_t drainLines = kDrainAll;

    /** Tear applied to the last drained event. */
    TearKind tear = TearKind::None;

    /** Probability a write/clean accept attempt is refused. */
    double acceptFaultRate = 0.0;

    /** Max consecutive refusals per line (forward-progress bound). */
    std::uint32_t maxConsecutiveRejects = 3;

    /** True when the plan injects no fault at all. */
    bool
    benign() const
    {
        return drainLines == kDrainAll && tear == TearKind::None &&
               acceptFaultRate <= 0.0;
    }

    /** Compact single-line rendering for reproducer tuples. */
    std::string describe() const;
};

/**
 * Derive a crash-point fault plan from @p seed: a drain budget in
 * [0, wpqSlots] and a tear kind, both uniform.  Accept-fault injection
 * is configured separately (it applies to a whole simulation, not one
 * crash point).
 */
FaultPlan makeFaultPlan(std::uint64_t seed, std::uint32_t wpqSlots);

/**
 * Chunk-survival mask for a torn event of @p chunks 8-byte chunks:
 * bit i set means chunk i landed.  Always a strict subset (at least
 * one chunk lost) and, except for TearKind::Interleaved, non-empty.
 * Deterministic in (plan.seed, plan.tear, chunks).
 */
std::uint64_t tornChunkMask(const FaultPlan &plan, std::size_t chunks);

/**
 * Build the NvmDevice accept-fault injector for @p plan: refuses
 * write-class accepts with plan.acceptFaultRate, never more than
 * plan.maxConsecutiveRejects times in a row for one media line.
 * Returns an empty hook for plans with no accept faults.
 */
AcceptFaultHook makeAcceptFaultInjector(const FaultPlan &plan);

} // namespace ede

#endif // EDE_FAULT_FAULT_PLAN_HH
