#include "fault/model_check/checker.hh"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <sstream>
#include <unordered_map>

#include "audit/auditor.hh"
#include "common/logging.hh"
#include "exp/fingerprint.hh"
#include "exp/journal.hh"
#include "exp/scheduler.hh"
#include "nvm/undo_log.hh"

namespace ede {

namespace {

/** Reverse of configName; nullopt for an unknown name. */
std::optional<Config>
configFromName(const std::string &name)
{
    for (Config c : kAllConfigs) {
        if (configName(c) == name)
            return c;
    }
    return std::nullopt;
}

/** Decorrelated 64-bit stream: one value per (seed, salt) pair. */
std::uint64_t
mixSeed(std::uint64_t seed, std::uint64_t salt)
{
    Rng rng(seed ^ (salt * 0x9e3779b97f4a7c15ull));
    return rng.next();
}

std::uint64_t
configSalt(Config cfg)
{
    return static_cast<std::uint64_t>(cfg) + 1;
}

/** Write the surviving 8-byte chunks of a torn event. */
void
applyTornEvent(MemoryImage &image, const PersistEvent &ev,
               std::uint64_t mask)
{
    const std::size_t chunks = (ev.size + 7) / 8;
    for (std::size_t c = 0; c < chunks; ++c) {
        if (!(mask & (std::uint64_t{1} << c)))
            continue;
        const std::size_t off = 8 * c;
        const std::size_t len =
            std::min<std::size_t>(8, ev.size - off);
        image.write(ev.addr + off, ev.bytes.data() + off, len);
    }
}

/** Minimal JSON string escaping. */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace

PersistOrderGraph
buildPersistOrder(const WorkloadHarness &h)
{
    const System &sys = h.system();
    return buildPersistOrder(
        h.trace(), sys.persistEvents(), sys.mediaWriteEvents(),
        sys.completionCycles(), h.setupCompleteCycle(),
        sys.mem().controller().nvm().params().lineBytes);
}

std::size_t
seedMissingEdkBug(WorkloadHarness &h)
{
    const std::vector<PersistObligation> &obs =
        h.framework().obligations();
    ede_assert(!obs.empty(),
               "seedMissingEdkBug needs a generated workload with at "
               "least one transactional write");
    const std::size_t idx = obs.front().dataStrIdx;
    DynInst &di = h.trace().at(idx);
    if (!edkIsReal(di.si.edkUse))
        return kNoEvent;  // Fence-based config: nothing to delete.
    di.si.edkUse = kZeroEdk;
    return idx;
}

std::string
ModelCheckCounterexample::describe() const
{
    std::ostringstream os;
    os << "{invariant=" << invariant << ", durable=[";
    for (std::size_t i = 0; i < durable.size(); ++i)
        os << (i ? "," : "") << durable[i];
    os << "]";
    if (tornIdx != kNoEvent) {
        os << ", torn=" << tornIdx << " mask=0x" << std::hex
           << tornMask << std::dec;
    }
    os << ", imageHash=0x" << std::hex << imageHash << std::dec
       << ", rollbacks=" << rollbackTargets.size() << "}";
    return os.str();
}

DurableSetChecker::DurableSetChecker(const WorkloadHarness &h,
                                     const PersistOrderGraph &graph)
    : DurableSetChecker(
          h.system().persistEvents(), h.baselineNvm(), graph,
          [&h](MemoryImage &img) {
              StateVerdict v;
              const RecoveryResult rec =
                  recoverUndoLog(img, h.framework().logLayout());
              v.appOk = h.app().checkRecovered(img);
              v.entriesTorn = rec.entriesTorn;
              v.invariant = crashInvariantName(v.appOk, rec);
              v.rollbackTargets = rec.appliedTargets;
              return v;
          })
{
}

DurableSetChecker::DurableSetChecker(
    const std::vector<PersistEvent> &events,
    const MemoryImage &baselineNvm, const PersistOrderGraph &graph,
    StateJudge judge)
    : events_(events), graph_(graph), judge_(std::move(judge)),
      setupImage_(baselineNvm)
{
    ede_assert(events_.size() == graph_.nodes.size(),
               "graph does not match this run's persist events");
    for (std::size_t i = 0; i < graph_.preSetupCount; ++i) {
        const PersistEvent &ev = events_[i];
        ede_assert(ev.bytes.size() == ev.size,
                   "persist event without data; enable audit before "
                   "running");
        setupImage_.write(ev.addr, ev.bytes.data(), ev.size);
    }
}

MemoryImage
DurableSetChecker::materialize(const std::vector<std::size_t> &postSetup,
                               std::size_t tornIdx,
                               std::uint64_t tornMask) const
{
    MemoryImage img = setupImage_;
    for (std::size_t i : postSetup) {
        const PersistEvent &ev = events_[i];
        ede_assert(ev.bytes.size() == ev.size,
                   "persist event without data; enable audit before "
                   "running");
        if (i == tornIdx)
            applyTornEvent(img, ev, tornMask);
        else
            img.write(ev.addr, ev.bytes.data(), ev.size);
    }
    return img;
}

DurableSetChecker::StateVerdict
DurableSetChecker::judge(MemoryImage &img) const
{
    return judge_(img);
}

DurableSetChecker::StateVerdict
DurableSetChecker::check(const std::vector<std::size_t> &postSetup,
                         std::size_t tornIdx, std::uint64_t tornMask)
{
    MemoryImage img = materialize(postSetup, tornIdx, tornMask);
    const std::uint64_t hash = img.canonicalContentHash();
    if (!seenHashes_.insert(hash).second) {
        StateVerdict v;
        v.duplicate = true;
        v.imageHash = hash;
        return v;
    }
    ++uniqueImages_;
    StateVerdict v = judge(img);
    v.imageHash = hash;
    return v;
}

std::vector<std::size_t>
DurableSetChecker::tornCandidates(
    const std::vector<std::size_t> &postSetup, std::size_t cap) const
{
    std::vector<std::size_t> out;
    if (postSetup.empty() || cap == 0)
        return out;

    // Earliest legal crash cycle for this set: everything included
    // must be accepted, so c = max accept.  An event can tear only
    // while its line is still pending then.
    Cycle maxAcc = 0;
    for (std::size_t i : postSetup)
        maxAcc = std::max(maxAcc, graph_.nodes[i].accept);

    // An event with a successor inside the set is fully ordered
    // before that successor's accept -- it was not the in-flight
    // write when power died.  Same for an older event of a cache
    // line the set updates again: the tear would be overwritten.
    std::unordered_set<std::size_t> hasSucc;
    std::unordered_map<Addr, std::size_t> lastOfLine;
    const Addr cacheMask = ~static_cast<Addr>(63);
    for (std::size_t i : postSetup) {
        for (std::size_t p : graph_.nodes[i].postSetupPreds)
            hasSucc.insert(p);
        lastOfLine[graph_.nodes[i].addr & cacheMask] = i;
    }

    for (auto it = postSetup.rbegin();
         it != postSetup.rend() && out.size() < cap; ++it) {
        const std::size_t i = *it;
        const PersistNode &node = graph_.nodes[i];
        if (node.size <= 8)
            continue;  // Single chunk: nothing to tear.
        if (hasSucc.count(i))
            continue;
        if (lastOfLine[node.addr & cacheMask] != i)
            continue;
        if (node.mediaCycle != kNoCycle && node.mediaCycle <= maxAcc)
            continue;  // Already on media at every legal crash cycle.
        out.push_back(i);
    }
    return out;
}

std::vector<std::size_t>
DurableSetChecker::shrink(const std::vector<std::size_t> &postSetup,
                          std::size_t &tornIdx,
                          std::uint64_t &tornMask,
                          std::uint32_t drainLines,
                          const std::string &invariant)
{
    auto stillFails = [&](const std::vector<std::size_t> &set,
                          std::size_t torn, std::uint64_t mask) {
        MemoryImage img = materialize(set, torn, mask);
        const StateVerdict v = judge(img);
        return v.invariant && invariant == v.invariant;
    };

    std::vector<std::size_t> cur = postSetup;
    if (tornIdx != kNoEvent && stillFails(cur, kNoEvent, 0)) {
        tornIdx = kNoEvent;  // The tear was not load-bearing.
        tornMask = 0;
    }

    bool changed = true;
    while (changed) {
        changed = false;
        // Youngest-first removal peels dependents before the events
        // they require, so downward closure rarely rejects a probe.
        for (std::size_t k = cur.size(); k-- > 0;) {
            if (cur[k] == tornIdx)
                continue;
            std::vector<std::size_t> cand = cur;
            cand.erase(cand.begin() +
                       static_cast<std::ptrdiff_t>(k));
            if (!isLegalDurableSet(graph_, drainLines, cand))
                continue;
            if (stillFails(cand, tornIdx, tornMask)) {
                cur = std::move(cand);
                changed = true;
                break;
            }
        }
    }
    return cur;
}

namespace {

/** Simulate one configuration's workload for the model check. */
struct SimulatedConfig
{
    std::unique_ptr<WorkloadHarness> harness;
    std::size_t seededBugTraceIdx = kNoEvent;
};

SimulatedConfig
simulateConfig(const ModelCheckOptions &options, Config cfg,
               bool checked)
{
    const LogJobTag tag("model-check/" +
                        std::string(configName(cfg)));
    SimulatedConfig sim;
    sim.harness = std::make_unique<WorkloadHarness>(
        options.app, cfg, options.spec, options.appParams);
    sim.harness->enableAudit();
    sim.harness->generate();
    if (options.seedBug)
        sim.seededBugTraceIdx = seedMissingEdkBug(*sim.harness);
    if (checked)
        sim.harness->simulateChecked();
    else
        sim.harness->simulate();
    return sim;
}

/**
 * Enumerate and check every durable state of one simulated
 * configuration.  Inherently serial within a configuration (the
 * dedup cache is shared across states); configurations themselves
 * fan out through the scheduler or the isolated workers.
 */
ModelCheckConfigResult
checkConfig(const ModelCheckOptions &options, Config cfg,
            const SimulatedConfig &sim)
{
    const WorkloadHarness &h = *sim.harness;
    ModelCheckConfigResult result;
    result.config = cfg;
    result.cycles = h.system().core().stats().cycles;
    result.seededBugTraceIdx = sim.seededBugTraceIdx;

    const PersistOrderGraph graph = buildPersistOrder(h);
    result.events = graph.nodes.size();
    result.freeEvents = graph.nodes.size() - graph.preSetupCount;
    result.orderStats = graph.stats;

    DurableSetChecker checker(h, graph);
    const std::uint64_t torn_seed =
        mixSeed(options.seed, 0x7042 ^ configSalt(cfg));

    auto handleState = [&](const std::vector<std::size_t> &set,
                           std::size_t tornIdx,
                           std::uint64_t tornMask) {
        const DurableSetChecker::StateVerdict v =
            checker.check(set, tornIdx, tornMask);
        if (v.duplicate)
            return;
        if (!v.invariant) {
            ++result.recoveredClean;
            if (v.entriesTorn)
                ++result.tornLogDetected;
            return;
        }
        ++result.violations;
        if (result.counterexamples.size() >=
            options.maxCounterexamples) {
            return;
        }
        ModelCheckCounterexample cex;
        cex.invariant = v.invariant;
        std::size_t shrunkTorn = tornIdx;
        std::uint64_t shrunkMask = tornMask;
        cex.durable = checker.shrink(set, shrunkTorn, shrunkMask,
                                     options.drainLines,
                                     cex.invariant);
        cex.tornIdx = shrunkTorn;
        cex.tornMask = shrunkTorn == kNoEvent ? 0 : shrunkMask;
        MemoryImage img = checker.materialize(
            cex.durable, cex.tornIdx, cex.tornMask);
        cex.imageHash = img.canonicalContentHash();
        const RecoveryResult rec =
            recoverUndoLog(img, h.framework().logLayout());
        cex.rollbackTargets = rec.appliedTargets;
        result.counterexamples.push_back(std::move(cex));
    };

    EnumerationLimits limits;
    limits.drainLines = options.drainLines;
    limits.maxStates = options.maxStates;
    limits.budgetMs = options.budgetMs;

    const EnumerationStats stats = forEachDurableSet(
        graph, limits, [&](const DurableSetView &view) {
            handleState(view.postSetup, kNoEvent, 0);
            if (options.torn) {
                for (std::size_t cand :
                     checker.tornCandidates(view.postSetup,
                                            /*cap=*/4)) {
                    const std::size_t chunks =
                        (graph.nodes[cand].size + 7) / 8;
                    for (TearKind kind :
                         {TearKind::Prefix, TearKind::Suffix,
                          TearKind::Interleaved}) {
                        FaultPlan tp;
                        tp.seed = mixSeed(
                            torn_seed,
                            cand * 8 +
                                static_cast<std::uint64_t>(kind));
                        tp.tear = kind;
                        const std::uint64_t mask =
                            tornChunkMask(tp, chunks);
                        ++result.tornVariants;
                        handleState(view.postSetup, cand, mask);
                    }
                }
            }
            return true;
        });

    result.states = stats.states;
    result.rejectedBudget = stats.rejectedBudget;
    result.truncated = stats.truncated;
    result.uniqueImages = checker.uniqueImages();
    return result;
}

constexpr const char *kModelCheckResultMagic =
    "ede-modelcheck-config-v1";

/** The worker identity of one (model check, config) pair. */
std::uint64_t
configFingerprint(const ModelCheckOptions &options, Config cfg)
{
    exp::FingerprintHasher h;
    h.field("modelcheck.sweep", modelCheckSweepId(options));
    h.field("modelcheck.config", configName(cfg));
    return h.value();
}

} // namespace

bool
ModelCheckReport::ok() const
{
    if (!quarantined.empty())
        return false;
    for (const ModelCheckConfigResult &c : configs) {
        const bool planted =
            options.seedBug && c.seededBugTraceIdx != kNoEvent;
        if (planted) {
            // A checker that cannot see its own seeded bug proves
            // nothing; non-detection fails the run.
            if (c.violations == 0)
                return false;
        } else if (c.violations != 0) {
            return false;
        }
    }
    return true;
}

std::string
ModelCheckReport::describe() const
{
    std::ostringstream os;
    os << "model check: app=" << appName(options.app) << " seed="
       << options.seed << " txns=" << options.spec.txns << " ops/txn="
       << options.spec.opsPerTxn << " drainLines=";
    if (options.drainLines == FaultPlan::kDrainAll)
        os << "all";
    else
        os << options.drainLines;
    os << " maxStates=" << options.maxStates
       << (options.seedBug ? " SEEDED-BUG" : "") << "\n";
    for (const ModelCheckConfigResult &c : configs) {
        os << "  " << configName(c.config) << ": " << c.states
           << " durable sets";
        if (c.truncated)
            os << " (TRUNCATED)";
        os << " + " << c.tornVariants << " torn -> "
           << c.uniqueImages << " unique images, "
           << c.recoveredClean << " clean ("
           << c.tornLogDetected << " torn-log-detected), "
           << c.violations << " violating  (" << c.freeEvents
           << " free events, " << c.orderStats.total() << " edges)\n";
        if (options.seedBug && c.seededBugTraceIdx != kNoEvent) {
            os << "    seeded bug at trace[" << c.seededBugTraceIdx
               << "]: "
               << (c.violations ? "DETECTED" : "NOT DETECTED")
               << "\n";
        }
        for (const ModelCheckCounterexample &cex : c.counterexamples)
            os << "    COUNTEREXAMPLE " << cex.describe() << "\n";
    }
    for (const QuarantinedConfig &q : quarantined) {
        os << "  " << configName(q.config) << ": QUARANTINED ("
           << q.failure.describe() << ")\n";
    }
    os << (ok() ? "  model check ok\n" : "  MODEL CHECK FAILED\n");
    return os.str();
}

std::string
serializeModelCheckResult(const ModelCheckConfigResult &result)
{
    std::ostringstream os;
    os << kModelCheckResultMagic << "\n";
    os << "config " << configName(result.config) << "\n";
    os << "cycles " << result.cycles << "\n";
    os << "events " << result.events << ' ' << result.freeEvents
       << "\n";
    const PersistOrderStats &s = result.orderStats;
    os << "edges " << s.sameLine << ' ' << s.edk << ' ' << s.keyChain
       << ' ' << s.fence << ' ' << s.lineGate << ' ' << s.nonmonotone
       << "\n";
    os << "tallies " << result.states << ' ' << result.rejectedBudget
       << ' ' << result.tornVariants << ' ' << result.uniqueImages
       << ' ' << result.recoveredClean << ' '
       << result.tornLogDetected << ' ' << result.violations << ' '
       << (result.truncated ? 1 : 0) << ' '
       << result.seededBugTraceIdx << "\n";
    os << "counterexamples " << result.counterexamples.size() << "\n";
    for (const ModelCheckCounterexample &cex :
         result.counterexamples) {
        os << "c " << cex.invariant << ' ' << cex.tornIdx << ' '
           << cex.tornMask << ' ' << cex.imageHash << ' '
           << cex.durable.size();
        for (std::size_t i : cex.durable)
            os << ' ' << i;
        os << ' ' << cex.rollbackTargets.size();
        for (Addr a : cex.rollbackTargets)
            os << ' ' << a;
        os << "\n";
    }
    return os.str();
}

std::optional<ModelCheckConfigResult>
deserializeModelCheckResult(const std::string &text)
{
    std::istringstream is(text);
    std::string magic, key, name;
    if (!(is >> magic) || magic != kModelCheckResultMagic)
        return std::nullopt;

    ModelCheckConfigResult result;
    if (!(is >> key >> name) || key != "config")
        return std::nullopt;
    const std::optional<Config> cfg = configFromName(name);
    if (!cfg)
        return std::nullopt;
    result.config = *cfg;

    if (!(is >> key >> result.cycles) || key != "cycles")
        return std::nullopt;
    if (!(is >> key >> result.events >> result.freeEvents) ||
        key != "events") {
        return std::nullopt;
    }
    PersistOrderStats &s = result.orderStats;
    if (!(is >> key >> s.sameLine >> s.edk >> s.keyChain >> s.fence >>
          s.lineGate >> s.nonmonotone) ||
        key != "edges") {
        return std::nullopt;
    }
    int truncated = 0;
    if (!(is >> key >> result.states >> result.rejectedBudget >>
          result.tornVariants >> result.uniqueImages >>
          result.recoveredClean >> result.tornLogDetected >>
          result.violations >> truncated >>
          result.seededBugTraceIdx) ||
        key != "tallies" || truncated < 0 || truncated > 1) {
        return std::nullopt;
    }
    result.truncated = truncated == 1;

    std::size_t n = 0;
    if (!(is >> key >> n) || key != "counterexamples")
        return std::nullopt;
    result.counterexamples.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        ModelCheckCounterexample cex;
        std::size_t durables = 0;
        if (!(is >> key >> cex.invariant >> cex.tornIdx >>
              cex.tornMask >> cex.imageHash >> durables) ||
            key != "c") {
            return std::nullopt;
        }
        cex.durable.resize(durables);
        for (std::size_t j = 0; j < durables; ++j) {
            if (!(is >> cex.durable[j]))
                return std::nullopt;
        }
        std::size_t targets = 0;
        if (!(is >> targets))
            return std::nullopt;
        cex.rollbackTargets.resize(targets);
        for (std::size_t j = 0; j < targets; ++j) {
            if (!(is >> cex.rollbackTargets[j]))
                return std::nullopt;
        }
        result.counterexamples.push_back(std::move(cex));
    }
    return result;
}

std::uint64_t
modelCheckSweepId(const ModelCheckOptions &options)
{
    exp::FingerprintHasher h;
    h.field("modelcheck.schema",
            static_cast<std::uint64_t>(exp::kResultSchemaVersion));
    h.field("modelcheck.app", appName(options.app));
    h.field("modelcheck.seed", options.seed);
    h.field("modelcheck.txns",
            static_cast<std::uint64_t>(options.spec.txns));
    h.field("modelcheck.opsPerTxn",
            static_cast<std::uint64_t>(options.spec.opsPerTxn));
    h.field("modelcheck.workloadSeed", options.spec.seed);
    h.field("modelcheck.appSeed", options.appParams.seed);
    h.field("modelcheck.arrayLen",
            static_cast<std::uint64_t>(options.appParams.arrayLen));
    h.field("modelcheck.drainLines",
            static_cast<std::uint64_t>(options.drainLines));
    h.field("modelcheck.maxStates", options.maxStates);
    h.field("modelcheck.budgetMs", options.budgetMs);
    h.field("modelcheck.torn", options.torn);
    h.field("modelcheck.seedBug", options.seedBug);
    h.field("modelcheck.maxCounterexamples",
            static_cast<std::uint64_t>(options.maxCounterexamples));
    h.field("modelcheck.configs",
            static_cast<std::uint64_t>(options.configs.size()));
    for (Config c : options.configs)
        h.field("modelcheck.config", configName(c));
    return h.value();
}

std::string
modelCheckToJson(const ModelCheckReport &report)
{
    const ModelCheckOptions &opt = report.options;
    std::ostringstream os;
    os << "{\n";
    os << "  \"bench\": \"model_check\",\n";
    os << "  \"schema\": " << exp::kResultSchemaVersion << ",\n";
    os << "  \"model_check\": {\"app\": \"" << appName(opt.app)
       << "\", \"seed\": " << opt.seed << ", \"txns\": "
       << opt.spec.txns << ", \"ops_per_txn\": " << opt.spec.opsPerTxn
       << ", \"workload_seed\": " << opt.spec.seed
       << ", \"array_len\": " << opt.appParams.arrayLen
       << ", \"drain_lines\": " << opt.drainLines
       << ", \"max_states\": " << opt.maxStates
       << ", \"budget_ms\": " << opt.budgetMs << ", \"torn\": "
       << (opt.torn ? "true" : "false") << ", \"seed_bug\": "
       << (opt.seedBug ? "true" : "false") << "},\n";
    os << "  \"configs\": [\n";
    for (std::size_t i = 0; i < report.configs.size(); ++i) {
        const ModelCheckConfigResult &c = report.configs[i];
        const PersistOrderStats &s = c.orderStats;
        os << "    {\n";
        os << "      \"config\": \"" << configName(c.config)
           << "\",\n";
        os << "      \"cycles\": " << c.cycles << ",\n";
        os << "      \"events\": " << c.events << ",\n";
        os << "      \"free_events\": " << c.freeEvents << ",\n";
        os << "      \"edges\": {\"same_line\": " << s.sameLine
           << ", \"edk\": " << s.edk << ", \"key_chain\": "
           << s.keyChain << ", \"fence\": " << s.fence
           << ", \"line_gate\": " << s.lineGate
           << ", \"nonmonotone\": " << s.nonmonotone << "},\n";
        os << "      \"states\": " << c.states << ",\n";
        os << "      \"rejected_budget\": " << c.rejectedBudget
           << ",\n";
        os << "      \"torn_variants\": " << c.tornVariants << ",\n";
        os << "      \"unique_images\": " << c.uniqueImages << ",\n";
        os << "      \"recovered_clean\": " << c.recoveredClean
           << ",\n";
        os << "      \"torn_log_detected\": " << c.tornLogDetected
           << ",\n";
        os << "      \"violations\": " << c.violations << ",\n";
        os << "      \"truncated\": "
           << (c.truncated ? "true" : "false") << ",\n";
        os << "      \"coverage\": \""
           << (c.truncated ? "truncated" : "exact") << "\",\n";
        if (c.seededBugTraceIdx != kNoEvent) {
            os << "      \"seeded_bug_trace_idx\": "
               << c.seededBugTraceIdx << ",\n";
        }
        os << "      \"counterexamples\": [";
        for (std::size_t j = 0; j < c.counterexamples.size(); ++j) {
            const ModelCheckCounterexample &cex =
                c.counterexamples[j];
            os << (j ? ",\n        " : "\n        ");
            os << "{\"invariant\": \"" << jsonEscape(cex.invariant)
               << "\", \"durable\": [";
            for (std::size_t k = 0; k < cex.durable.size(); ++k)
                os << (k ? ", " : "") << cex.durable[k];
            os << "], \"torn_idx\": ";
            if (cex.tornIdx == kNoEvent)
                os << "null";
            else
                os << cex.tornIdx;
            os << ", \"torn_mask\": " << cex.tornMask
               << ", \"image_hash\": " << cex.imageHash
               << ", \"rollback_targets\": [";
            for (std::size_t k = 0; k < cex.rollbackTargets.size();
                 ++k) {
                os << (k ? ", " : "") << cex.rollbackTargets[k];
            }
            os << "]}";
        }
        os << (c.counterexamples.empty() ? "]\n" : "\n      ]\n");
        os << "    }"
           << (i + 1 < report.configs.size() ? ",\n" : "\n");
    }
    os << "  ],\n";
    os << "  \"quarantined\": [\n";
    for (std::size_t i = 0; i < report.quarantined.size(); ++i) {
        const QuarantinedConfig &q = report.quarantined[i];
        const exp::JobFailure &f = q.failure;
        os << "    {\"config\": \"" << configName(q.config)
           << "\", \"outcome\": \"" << exp::jobOutcomeName(f.outcome)
           << "\", \"signal\": " << f.signal << ", \"exit_code\": "
           << f.exitCode << ", \"attempts\": " << f.attempts
           << ", \"message\": \"" << jsonEscape(f.message)
           << "\", \"stderr_tail\": \"" << jsonEscape(f.stderrTail)
           << "\"}"
           << (i + 1 < report.quarantined.size() ? ",\n" : "\n");
    }
    os << "  ],\n";
    os << "  \"ok\": " << (report.ok() ? "true" : "false") << "\n";
    os << "}\n";
    return os.str();
}

namespace {

/**
 * The isolated model check: one forked worker per configuration,
 * mirroring the campaign's contract -- exact wire serialization,
 * per-config journal entries, quarantine on persistent worker
 * failure.
 */
ModelCheckReport
runModelCheckIsolated(const ModelCheckOptions &options)
{
    if (!exp::processIsolationSupported())
        ede_fatal("process isolation is not supported on this platform");

    const std::size_t n = options.configs.size();
    std::optional<exp::SweepJournal> journal;
    if (!options.journalPath.empty()) {
        journal.emplace(options.journalPath,
                        modelCheckSweepId(options), n, options.resume);
    }

    std::vector<std::optional<ModelCheckConfigResult>> slots(n);
    std::vector<std::optional<QuarantinedConfig>> poisoned(n);
    auto quarantine = [&](std::size_t i, Config cfg,
                          exp::JobFailure failure) {
        ede_warn("config '", configName(cfg), "' quarantined: ",
                 failure.describe());
        if (journal) {
            journal->recordQuarantine(
                i, configFingerprint(options, cfg), failure);
        }
        poisoned[i] = QuarantinedConfig{cfg, std::move(failure)};
    };

    auto runConfig = [&](std::size_t i) {
        const Config cfg = options.configs[i];
        const std::uint64_t fp = configFingerprint(options, cfg);

        if (journal && options.resume) {
            const auto it = journal->replayed().find(i);
            if (it != journal->replayed().end() &&
                it->second.fingerprint == fp) {
                const exp::JournalEntry &e = it->second;
                if (e.ok) {
                    if (std::optional<ModelCheckConfigResult> r =
                            deserializeModelCheckResult(e.payload);
                        r && r->config == cfg) {
                        slots[i] = std::move(*r);
                        return;
                    }
                    // Corrupt payload: fall through and re-run.
                } else {
                    poisoned[i] = QuarantinedConfig{cfg, e.failure};
                    return;
                }
            }
        }

        const exp::WorkerRun run = exp::runWithRetry(
            [&]() -> std::string {
                if (!options.chaosCrashConfig.empty() &&
                    configName(cfg) == options.chaosCrashConfig) {
                    std::abort();
                }
                const SimulatedConfig sim =
                    simulateConfig(options, cfg, /*checked=*/true);
                return serializeModelCheckResult(
                    checkConfig(options, cfg, sim));
            },
            options.limits, options.retry, /*jitterSeed=*/fp);

        if (run.ok()) {
            if (std::optional<ModelCheckConfigResult> r =
                    deserializeModelCheckResult(run.payload);
                r && r->config == cfg) {
                if (journal)
                    journal->recordOk(i, fp, run.payload);
                slots[i] = std::move(*r);
                return;
            }
            exp::JobFailure protocol;
            protocol.outcome = exp::JobOutcome::Crashed;
            protocol.attempts = run.failure.attempts;
            protocol.message =
                "worker payload failed model-check validation";
            quarantine(i, cfg, std::move(protocol));
            return;
        }
        quarantine(i, cfg, run.failure);
    };

    const exp::Scheduler sched(options.jobs);
    sched.run(n, runConfig, exp::FailureMode::KeepGoing);

    ModelCheckReport report;
    report.options = options;
    for (std::size_t i = 0; i < n; ++i) {
        if (slots[i])
            report.configs.push_back(std::move(*slots[i]));
        else if (poisoned[i])
            report.quarantined.push_back(std::move(*poisoned[i]));
    }
    return report;
}

} // namespace

ModelCheckReport
runModelCheck(const ModelCheckOptions &options)
{
    if (!options.journalPath.empty() && !options.isolate) {
        ede_fatal("the model-check journal requires process "
                  "isolation (--isolate)");
    }
    if (options.isolate)
        return runModelCheckIsolated(options);

    const exp::Scheduler sched(options.jobs);
    std::vector<ModelCheckConfigResult> results =
        sched.map<ModelCheckConfigResult>(
            options.configs.size(), [&](std::size_t i) {
                const SimulatedConfig sim = simulateConfig(
                    options, options.configs[i], /*checked=*/false);
                return checkConfig(options, options.configs[i], sim);
            });

    ModelCheckReport report;
    report.options = options;
    report.configs = std::move(results);
    return report;
}

} // namespace ede
