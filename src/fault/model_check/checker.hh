/**
 * @file
 * Crash-consistency model checker over the durable-set lattice.
 *
 * The fault campaign samples crash cycles and reconstructs one
 * accept-order-prefix image per sample.  The model checker is the
 * exhaustive counterpart: it derives the persist-ordering partial
 * order of one simulated run (persist_order.hh), enumerates *every*
 * legal durable set (enumerate.hh) with torn-persist variants at each
 * set's frontier, materializes each state through the recorded persist
 * events, deduplicates by canonical content hash, and pushes every
 * unique image through undo-log recovery and the application's
 * invariant oracle.  A violating state is shrunk to a minimal durable
 * set before being reported as a counterexample.
 *
 * The checker's sensitivity is validated by a seeded bug: deleting
 * one load-bearing EDK operand from the workload's first
 * transactional write (seedMissingEdkBug) removes the log-before-data
 * ordering edge, and the enumerator must then find a state with the
 * data durable but its undo entry missing -- the
 * "active-rollback-failed" invariant -- while the intact program
 * verifies clean.
 */

#ifndef EDE_FAULT_MODEL_CHECK_CHECKER_HH
#define EDE_FAULT_MODEL_CHECK_CHECKER_HH

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "apps/harness.hh"
#include "exp/worker.hh"
#include "fault/campaign.hh"
#include "fault/model_check/enumerate.hh"
#include "fault/model_check/persist_order.hh"

namespace ede {

/** Derive the persist-order graph of a completed, audited run. */
PersistOrderGraph buildPersistOrder(const WorkloadHarness &h);

/**
 * Seeded-bug mutator: clear the EDK use operand of the first
 * transactional data store (the operand that orders it behind its
 * undo-log entry's persist).  Must run after generate() and before
 * simulate().  @return the mutated trace index, or kNoEvent when the
 * configuration carries no EDK there (fence-based configurations are
 * not affected by this bug).
 */
std::size_t seedMissingEdkBug(WorkloadHarness &h);

/** One shrunk violating durable state. */
struct ModelCheckCounterexample
{
    std::string invariant;            ///< crashInvariantName() string.
    std::vector<std::size_t> durable; ///< Post-setup event indices.
    std::size_t tornIdx = kNoEvent;   ///< Torn event, if any.
    std::uint64_t tornMask = 0;       ///< Surviving-chunk mask.
    std::uint64_t imageHash = 0;      ///< Canonical content hash.
    std::vector<Addr> rollbackTargets;///< Recovery's witness trail.

    /** One-line human-readable rendering. */
    std::string describe() const;
};

/**
 * Verdict and tallies for one configuration.  `states` counts
 * enumerated durable sets, `tornVariants` the extra torn states;
 * `uniqueImages` is after content dedup and is what recovery actually
 * ran on.
 */
struct ModelCheckConfigResult
{
    Config config = Config::B;
    Cycle cycles = 0;                 ///< Simulated run length.
    std::size_t events = 0;           ///< Persist events recorded.
    std::size_t freeEvents = 0;       ///< Post-setup (enumerable).
    PersistOrderStats orderStats;     ///< Edge tallies.
    std::uint64_t states = 0;         ///< Durable sets enumerated.
    std::uint64_t rejectedBudget = 0; ///< Drain-infeasible leaves.
    std::uint64_t tornVariants = 0;   ///< Torn states materialized.
    std::uint64_t uniqueImages = 0;   ///< Distinct image contents.
    std::uint64_t recoveredClean = 0; ///< Unique images passing.
    std::uint64_t tornLogDetected = 0;///< Passing via discarded entry.
    std::uint64_t violations = 0;     ///< Unique violating images.
    bool truncated = false;           ///< A search limit tripped.
    std::size_t seededBugTraceIdx =
        kNoEvent;                     ///< Mutated op (seed-bug runs).
    std::vector<ModelCheckCounterexample> counterexamples;
};

/** Model-check parameters; everything derives from one root seed. */
struct ModelCheckOptions
{
    AppId app = AppId::Update;
    std::uint64_t seed = 1;

    /**
     * Deliberately tiny default workload: the lattice is exponential
     * in the free (post-setup) events, and two transactions of two
     * ops already cover the whole commit protocol twice.
     */
    RunSpec spec{/*txns=*/2, /*opsPerTxn=*/2, /*seed=*/42};
    AppParams appParams{/*seed=*/42, /*arrayLen=*/64};

    std::vector<Config> configs{Config::B, Config::IQ, Config::WB};

    /** ADR drain budget for legality (default: perfect ADR). */
    std::uint32_t drainLines = FaultPlan::kDrainAll;

    /** Deterministic search bound (0 = unlimited). */
    std::uint64_t maxStates = 20000;

    /** Wall-clock bound, ms (0 = unlimited; NONDETERMINISTIC which
     * states are covered when it trips -- prefer maxStates). */
    std::uint64_t budgetMs = 0;

    bool torn = true;      ///< Materialize torn frontier variants.
    bool seedBug = false;  ///< Apply seedMissingEdkBug before running.

    /** Counterexamples kept per configuration. */
    std::size_t maxCounterexamples = 4;

    /** Parallel jobs for the per-config phase (0 = hardware). */
    unsigned jobs = 1;

    /** @name Process isolation (same contract as CampaignOptions). */
    /// @{
    bool isolate = false;
    exp::WorkerLimits limits;
    exp::RetryPolicy retry;
    std::string journalPath;  ///< Requires isolate; empty disables.
    bool resume = false;
    std::string chaosCrashConfig;  ///< Worker abort() hook (tests/CI).
    /// @}
};

/** The whole model check's outcome. */
struct ModelCheckReport
{
    ModelCheckOptions options;
    std::vector<ModelCheckConfigResult> configs;
    std::vector<QuarantinedConfig> quarantined;

    /**
     * Acceptance: nothing quarantined; every intact configuration
     * verifies clean; and when the seeded bug was actually planted
     * (EDE configurations), the checker detected it.
     */
    bool ok() const;

    /** Multi-line human-readable summary with counterexamples. */
    std::string describe() const;
};

/** Run the model check across configurations. */
ModelCheckReport runModelCheck(const ModelCheckOptions &options);

/**
 * Materializes, deduplicates and checks durable states of one
 * completed run.  Exposed so tests can drive single states (e.g. the
 * campaign-containment cross-validation re-materializes a sampled
 * crash image through the same path).
 */
class DurableSetChecker
{
  public:
    /** Recovery + oracle verdict on one state. */
    struct StateVerdict
    {
        bool duplicate = false;     ///< Content hash seen before.
        bool appOk = true;
        std::uint64_t entriesTorn = 0;
        const char *invariant = nullptr;  ///< Violated invariant name.
        std::uint64_t imageHash = 0;
        std::vector<Addr> rollbackTargets;
    };

    /**
     * Recovery-and-oracle hook: run recovery on the materialized
     * image in place and report the verdict (invariant must point at
     * a string with static storage duration).
     */
    using StateJudge = std::function<StateVerdict(MemoryImage &)>;

    /**
     * @p h must be audited and simulated.  The graph reference must
     * outlive the checker.  Judges through the undo-log recovery and
     * the application's checkRecovered oracle.
     */
    DurableSetChecker(const WorkloadHarness &h,
                      const PersistOrderGraph &graph);

    /**
     * Generic form: materialize from @p events (accept order, data
     * recorded) on top of @p baselineNvm, judge each unique image
     * with @p judge.  The events and graph references must outlive
     * the checker; graph.preSetupCount leading events are forced into
     * the base image.  The N-core concurrent checker judges with the
     * kernel oracles through this hook; the single-core constructor
     * above delegates here.
     */
    DurableSetChecker(const std::vector<PersistEvent> &events,
                      const MemoryImage &baselineNvm,
                      const PersistOrderGraph &graph,
                      StateJudge judge);

    /**
     * The image a crash leaving exactly {setup events} + @p postSetup
     * durable produces; @p tornIdx (an element of the set) optionally
     * tears to the surviving chunks in @p tornMask.
     */
    MemoryImage materialize(const std::vector<std::size_t> &postSetup,
                            std::size_t tornIdx = kNoEvent,
                            std::uint64_t tornMask = 0) const;

    /**
     * Materialize, dedup, recover and judge one durable state.
     * Duplicate states short-circuit (verdict.duplicate).
     */
    StateVerdict check(const std::vector<std::size_t> &postSetup,
                       std::size_t tornIdx = kNoEvent,
                       std::uint64_t tornMask = 0);

    /**
     * Torn-variant candidates of @p postSetup: events maximal in the
     * set, still pending at the earliest legal crash cycle, last of
     * their cache line within the set, and wider than one 8-byte
     * chunk.  At most @p cap, youngest first.
     */
    std::vector<std::size_t>
    tornCandidates(const std::vector<std::size_t> &postSetup,
                   std::size_t cap) const;

    /**
     * Greedily remove post-setup events (youngest first, keeping
     * legality under @p drainLines) while the verdict still names
     * @p invariant; returns the minimal set.  An untorn variant is
     * tried first; @p tornIdx / @p tornMask are updated to what the
     * minimal counterexample actually needs.  Shrink probes bypass
     * the dedup cache.
     */
    std::vector<std::size_t>
    shrink(const std::vector<std::size_t> &postSetup,
           std::size_t &tornIdx, std::uint64_t &tornMask,
           std::uint32_t drainLines, const std::string &invariant);

    std::uint64_t uniqueImages() const { return uniqueImages_; }

  private:
    StateVerdict judge(MemoryImage &img) const;

    const std::vector<PersistEvent> &events_;
    const PersistOrderGraph &graph_;
    StateJudge judge_;
    MemoryImage setupImage_;  ///< Baseline + pre-setup events.
    std::unordered_set<std::uint64_t> seenHashes_;
    std::uint64_t uniqueImages_ = 0;
};

/** @name Worker wire format / journal payloads. */
/// @{
std::string
serializeModelCheckResult(const ModelCheckConfigResult &result);

std::optional<ModelCheckConfigResult>
deserializeModelCheckResult(const std::string &text);

std::uint64_t modelCheckSweepId(const ModelCheckOptions &options);
/// @}

/** Deterministic JSON artifact (BENCH_model_check.json). */
std::string modelCheckToJson(const ModelCheckReport &report);

} // namespace ede

#endif // EDE_FAULT_MODEL_CHECK_CHECKER_HH
