#include "fault/model_check/enumerate.hh"

#include <algorithm>
#include <chrono>
#include <unordered_set>

#include "common/logging.hh"

namespace ede {

namespace {

/** Shared state of one enumeration DFS. */
struct Search
{
    const PersistOrderGraph &g;
    const EnumerationLimits &limits;
    const std::function<bool(const DurableSetView &)> &visit;
    EnumerationStats stats;

    std::vector<char> included;         ///< Per-node inclusion flag.
    std::vector<std::size_t> cur;       ///< Included post-setup indices.
    std::unordered_set<Addr> pending;   ///< Leaf scratch (media lines).

    /** Pre-setup media lines that never reached the media: pending at
     * every crash cycle. */
    std::vector<Addr> setupUnknownLines;
    /** Latest pre-setup media completion (kNoCycle when none known). */
    Cycle setupMaxMedia = 0;

    std::chrono::steady_clock::time_point deadline;
    bool hasDeadline = false;
    std::uint64_t leafTick = 0;
    bool stopped = false;

    explicit Search(
        const PersistOrderGraph &graph, const EnumerationLimits &lim,
        const std::function<bool(const DurableSetView &)> &fn)
        : g(graph), limits(lim), visit(fn)
    {
        included.assign(g.nodes.size(), 0);
        std::unordered_set<Addr> unknown;
        for (std::size_t i = 0; i < g.preSetupCount; ++i) {
            included[i] = 1;
            const PersistNode &node = g.nodes[i];
            if (node.mediaCycle == kNoCycle)
                unknown.insert(g.mediaLine(node.addr));
            else
                setupMaxMedia = std::max(setupMaxMedia, node.mediaCycle);
        }
        setupUnknownLines.assign(unknown.begin(), unknown.end());
        if (lim.budgetMs) {
            deadline = std::chrono::steady_clock::now() +
                       std::chrono::milliseconds(lim.budgetMs);
            hasDeadline = true;
        }
    }

    bool
    overDeadline()
    {
        // Amortize the clock read; maxStates stays exact either way.
        if (!hasDeadline || (++leafTick & 0x3f))
            return false;
        return std::chrono::steady_clock::now() >= deadline;
    }

    /** Drain feasibility of the current leaf with window bound mx. */
    bool
    drainFeasible(Cycle mx)
    {
        if (limits.drainLines == FaultPlan::kDrainAll)
            return true;
        // Best crash cycle: one short of the earliest media write of
        // an excluded event (infinite when nothing excluded ever hit
        // the media).  Every included event pending then must fit the
        // ADR budget.
        const Cycle cBest = mx == kNoCycle ? kNoCycle : mx - 1;
        pending.clear();
        for (Addr line : setupUnknownLines)
            pending.insert(line);
        if (cBest != kNoCycle && cBest < setupMaxMedia) {
            // A crash inside the setup drain window; real runs place
            // every post-setup accept after it, but hand-built graphs
            // may not.
            for (std::size_t i = 0; i < g.preSetupCount; ++i) {
                const PersistNode &node = g.nodes[i];
                if (node.mediaCycle != kNoCycle && node.mediaCycle > cBest)
                    pending.insert(g.mediaLine(node.addr));
            }
        }
        for (std::size_t i : cur) {
            const PersistNode &node = g.nodes[i];
            if (node.mediaCycle == kNoCycle ||
                (cBest != kNoCycle && node.mediaCycle > cBest)) {
                pending.insert(g.mediaLine(node.addr));
            }
        }
        return pending.size() <= limits.drainLines;
    }

    /** Visit the leaf for the current inclusion; false stops the DFS. */
    bool
    leaf(Cycle mx)
    {
        if (overDeadline()) {
            stats.truncated = true;
            return false;
        }
        if (!drainFeasible(mx)) {
            ++stats.rejectedBudget;
            return true;
        }
        ++stats.states;
        if (!visit(DurableSetView{cur})) {
            stats.truncated = true;
            return false;
        }
        if (limits.maxStates && stats.states >= limits.maxStates) {
            stats.truncated = true;
            return false;
        }
        return true;
    }

    /**
     * Extend the current partial set with a decision for node i.
     * mx is the running window bound: the earliest media-write cycle
     * of any excluded event so far (kNoCycle when none).  Window
     * legality needs checking only when including -- excluding keeps
     * every included accept below the tightened bound because a line
     * reaches the media only after its accept and accepts are
     * non-decreasing.
     */
    void
    dfs(std::size_t i, Cycle mx)
    {
        if (stopped)
            return;
        if (i == g.nodes.size()) {
            if (!leaf(mx))
                stopped = true;
            return;
        }
        const PersistNode &node = g.nodes[i];
        bool depsIn = true;
        for (std::size_t p : node.postSetupPreds) {
            if (!included[p]) {
                depsIn = false;
                break;
            }
        }
        if (depsIn && node.accept < mx) {
            included[i] = 1;
            cur.push_back(i);
            dfs(i + 1, mx);
            cur.pop_back();
            included[i] = 0;
        }
        if (!stopped)
            dfs(i + 1, std::min(mx, node.mediaCycle));
    }
};

} // namespace

EnumerationStats
forEachDurableSet(const PersistOrderGraph &graph,
                  const EnumerationLimits &limits,
                  const std::function<bool(const DurableSetView &)> &visit)
{
    ede_assert(graph.minSucc.size() == graph.nodes.size(),
               "PersistOrderGraph::finalize() must run before "
               "enumeration");
    Search search(graph, limits, visit);
    search.dfs(graph.preSetupCount, kNoCycle);
    return search.stats;
}

bool
isLegalDurableSet(const PersistOrderGraph &graph,
                  std::uint32_t drainLines,
                  const std::vector<std::size_t> &postSetup)
{
    const std::size_t n = graph.nodes.size();
    std::vector<char> included(n, 0);
    for (std::size_t i = 0; i < graph.preSetupCount; ++i)
        included[i] = 1;
    for (std::size_t i : postSetup) {
        if (i < graph.preSetupCount || i >= n)
            return false;
        included[i] = 1;
    }

    // Downward closure and the crash window.
    Cycle maxAccept = 0;
    Cycle minExcludedMedia = kNoCycle;
    for (std::size_t i = 0; i < n; ++i) {
        const PersistNode &node = graph.nodes[i];
        if (included[i]) {
            for (std::size_t p : node.postSetupPreds) {
                if (!included[p])
                    return false;
            }
            maxAccept = std::max(maxAccept, node.accept);
        } else {
            minExcludedMedia =
                std::min(minExcludedMedia, node.mediaCycle);
        }
    }
    if (minExcludedMedia != kNoCycle && maxAccept >= minExcludedMedia)
        return false;

    if (drainLines == FaultPlan::kDrainAll)
        return true;
    const Cycle cBest =
        minExcludedMedia == kNoCycle ? kNoCycle : minExcludedMedia - 1;
    std::unordered_set<Addr> pendingLines;
    for (std::size_t i = 0; i < n; ++i) {
        const PersistNode &node = graph.nodes[i];
        if (!included[i])
            continue;
        if (node.mediaCycle == kNoCycle ||
            (cBest != kNoCycle && node.mediaCycle > cBest)) {
            pendingLines.insert(graph.mediaLine(node.addr));
        }
    }
    return pendingLines.size() <= drainLines;
}

std::uint64_t
countOrderIdeals(const PersistOrderGraph &graph)
{
    std::uint64_t count = 0;
    PersistOrderGraph unconstrained = graph;
    for (PersistNode &node : unconstrained.nodes)
        node.mediaCycle = kNoCycle;
    unconstrained.finalize();
    EnumerationLimits limits;  // kDrainAll, unbounded.
    forEachDurableSet(unconstrained, limits,
                      [&](const DurableSetView &) {
                          ++count;
                          return true;
                      });
    return count;
}

} // namespace ede
