/**
 * @file
 * Enumeration of every legal durable set of a persist-order graph.
 *
 * A crash at cycle c with a working-but-finite ADR drain leaves
 * durable exactly: every event already on the media, plus some subset
 * of the pending lines the drain saved.  Quantifying over all crash
 * cycles and all drain choices, the reachable durable states are the
 * *order ideals* (downward-closed subsets) of the persist partial
 * order that additionally fit a crash window:
 *
 *  - downward-closed: an event can be durable only if every
 *    predecessor is (the constraints in persist_order.hh);
 *  - window-legal: there must exist a crash cycle c with every
 *    included event accepted (accept <= c) and every excluded event
 *    not yet on the media (c < mediaCycle);
 *  - drain-feasible: at the best such c, the included events still
 *    pending (mediaCycle absent or > c) span at most drainLines
 *    distinct media lines.
 *
 * The DFS walks events in accept order, include-first.  Excluding
 * event j can never break window legality for what is already
 * included: accept(j) < mediaCycle(j) always (a line reaches the
 * media only after acceptance) and accepts are non-decreasing, so
 * the tightened window bound stays above every included accept.
 * Legality therefore only needs checking on include branches and the
 * drain budget only at leaves, which is what makes the walk a
 * partial-order reduction rather than a crash-cycle sweep: each
 * distinct durable set is visited exactly once.
 */

#ifndef EDE_FAULT_MODEL_CHECK_ENUMERATE_HH
#define EDE_FAULT_MODEL_CHECK_ENUMERATE_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "fault/fault_plan.hh"
#include "fault/model_check/persist_order.hh"

namespace ede {

/** Search bounds for the durable-set enumeration. */
struct EnumerationLimits
{
    /** ADR drain budget in 256 B media lines (kDrainAll: unlimited). */
    std::uint32_t drainLines = FaultPlan::kDrainAll;

    /** Stop after emitting this many durable sets (0: unlimited). */
    std::uint64_t maxStates = 0;

    /**
     * Wall-clock budget in milliseconds (0: unlimited).  NOTE: unlike
     * maxStates this bound is nondeterministic -- which states get
     * emitted before it trips depends on host speed.  Deterministic
     * reproduction should bound maxStates instead.
     */
    std::uint64_t budgetMs = 0;
};

/** Tallies from one enumeration. */
struct EnumerationStats
{
    std::uint64_t states = 0;         ///< Durable sets emitted.
    std::uint64_t rejectedBudget = 0; ///< Leaves over the drain budget.
    bool truncated = false;           ///< A limit stopped the search.

    /** Leaves visited: emitted plus drain-rejected. */
    std::uint64_t exploredLeaves() const
    {
        return states + rejectedBudget;
    }
};

/**
 * One enumerated durable set, passed to the visitor.  The vectors are
 * owned by the enumerator and reused between calls -- copy them to
 * keep them.
 */
struct DurableSetView
{
    /** Post-setup event indices in the set, ascending.  Pre-setup
     * events (graph.preSetupCount of them) are always durable and are
     * not repeated here. */
    const std::vector<std::size_t> &postSetup;
};

/**
 * Enumerate every legal durable set of @p graph under @p limits,
 * calling @p visit for each.  Return false from @p visit to stop
 * early (counted as truncation).  finalize() must have run on the
 * graph.  Returns the tallies.
 */
EnumerationStats
forEachDurableSet(const PersistOrderGraph &graph,
                  const EnumerationLimits &limits,
                  const std::function<bool(const DurableSetView &)> &visit);

/**
 * Decide whether the given set of post-setup event indices (sorted
 * ascending, pre-setup events implicitly included) is a legal durable
 * set of @p graph under drain budget @p drainLines: downward-closed,
 * window-legal and drain-feasible per the file comment.  Used by the
 * campaign-containment cross-validation and the shrinker.
 */
bool isLegalDurableSet(const PersistOrderGraph &graph,
                       std::uint32_t drainLines,
                       const std::vector<std::size_t> &postSetup);

/**
 * Count the order ideals of @p graph ignoring crash-window and drain
 * constraints (every node treated as never reaching the media).
 * Exponential; only for the closed-form tests on tiny graphs.
 */
std::uint64_t countOrderIdeals(const PersistOrderGraph &graph);

} // namespace ede

#endif // EDE_FAULT_MODEL_CHECK_ENUMERATE_HH
