#include "fault/model_check/multicore_order.hh"

#include <algorithm>
#include <array>
#include <unordered_map>

#include "common/logging.hh"
#include "isa/edk.hh"

namespace ede {

namespace {

/** Sorted-unique insertion of @p add into @p set (small sets). */
void
mergeInto(std::vector<std::size_t> &set,
          const std::vector<std::size_t> &add)
{
    if (add.empty())
        return;
    set.insert(set.end(), add.begin(), add.end());
    std::sort(set.begin(), set.end());
    set.erase(std::unique(set.begin(), set.end()), set.end());
}

/** One gated store on a 64 B cache line. */
struct GateEntry
{
    std::vector<std::size_t> producers; ///< Persist events to follow.
    std::size_t storeIdx = 0;           ///< Trace index of the store.
    unsigned core = 0;                  ///< Core that ran the store.
};

/** One CVAP event naming a key, for the cross-core WAIT join. */
struct KeyedEvent
{
    Cycle completion = kNoCycle;  ///< The CVAP's completion cycle.
    std::size_t ev = 0;           ///< Its persist event index.
};

} // namespace

PersistOrderGraph
buildJointPersistOrder(
    const std::vector<Trace> &traces,
    const std::vector<PersistEvent> &events,
    const std::vector<MediaWriteEvent> &mediaWrites,
    const std::vector<std::vector<Cycle>> &completionCycles,
    std::uint32_t lineBytes)
{
    const auto cores = static_cast<unsigned>(traces.size());
    ede_assert(cores >= 1, "joint persist order needs >= 1 core");
    ede_assert(completionCycles.size() == cores,
               "one completion-cycle vector per core");

    PersistOrderGraph g;
    g.lineBytes = lineBytes;
    g.nodes.resize(events.size());

    // Per-media-line sorted completion cycles, for mediaCycle.
    std::unordered_map<Addr, std::vector<Cycle>> mediaByLine;
    for (const MediaWriteEvent &mw : mediaWrites)
        mediaByLine[mw.lineAddr].push_back(mw.cycle);
    for (auto &[line, cycles] : mediaByLine)
        std::sort(cycles.begin(), cycles.end());

    // Nodes, media cycles, and the *global* same-line accept chains:
    // the NVM buffer keeps one slot per 256 B line regardless of
    // which core's push accepted, so the chain crosses cores -- a
    // cross-core link is the dirty-handoff coherence edge.
    std::vector<unsigned> eventCore(events.size(), 0);
    std::vector<std::unordered_map<TraceIndex, std::size_t>>
        eventOfOrigin(cores);
    std::unordered_map<Addr, std::size_t> lastOfMediaLine;
    for (std::size_t i = 0; i < events.size(); ++i) {
        const PersistEvent &ev = events[i];
        PersistNode &node = g.nodes[i];
        node.addr = ev.addr;
        node.size = ev.size;
        node.accept = ev.cycle;
        node.origin = ev.origin;
        eventCore[i] = ev.core;

        const Addr line = g.mediaLine(ev.addr);
        if (auto it = mediaByLine.find(line);
            it != mediaByLine.end()) {
            const auto up = std::upper_bound(
                it->second.begin(), it->second.end(), ev.cycle);
            if (up != it->second.end())
                node.mediaCycle = *up;
        }

        if (auto it = lastOfMediaLine.find(line);
            it != lastOfMediaLine.end()) {
            node.preds.push_back(it->second);
            if (eventCore[it->second] == ev.core)
                ++g.stats.sameLine;
            else
                ++g.stats.crossLine;
        }
        lastOfMediaLine[line] = i;

        if (ev.origin != kNoOrigin && ev.core < cores)
            eventOfOrigin[ev.core].emplace(ev.origin, i);
    }

    // Pass 0: per-(core, key) CVAP events in completion order -- the
    // producers a *remote* WAIT on that key drains.  A CVAP enters
    // the shared counter file when it issues and leaves when it
    // completes, so a WAIT completing at cycle W is ordered behind
    // exactly the remote CVAPs naming its key with completion <= W.
    std::vector<std::array<std::vector<KeyedEvent>, kNumEdks>>
        keyed(cores);
    for (unsigned c = 0; c < cores; ++c) {
        const Trace &trace = traces[c];
        const std::vector<Cycle> &done = completionCycles[c];
        ede_assert(done.size() == trace.size(),
                   "completion recording must cover every core");
        for (std::size_t t = 0; t < trace.size(); ++t) {
            const StaticInst &si = trace[t].si;
            if (si.op != Op::DcCvap)
                continue;
            const auto it = eventOfOrigin[c].find(t);
            if (it == eventOfOrigin[c].end())
                continue;
            if (edkIsReal(si.edkDef)) {
                keyed[c][si.edkDef].push_back(
                    KeyedEvent{done[t], it->second});
            }
            if (edkIsReal(si.edkUse) && si.edkUse != si.edkDef) {
                keyed[c][si.edkUse].push_back(
                    KeyedEvent{done[t], it->second});
            }
        }
    }
    for (unsigned c = 0; c < cores; ++c) {
        for (auto &list : keyed[c]) {
            std::sort(list.begin(), list.end(),
                      [](const KeyedEvent &a, const KeyedEvent &b) {
                          return a.completion < b.completion ||
                                 (a.completion == b.completion &&
                                  a.ev < b.ev);
                      });
        }
    }

    // Per-core walk state: EDM key files, WAIT producer sets and
    // barrier roots are all private to a core (the single-core walk's
    // state, replicated), so a use operand only ever resolves against
    // a local producer.  Gated stores share one global per-line map:
    // the gate's data travels with the cache line across cores.
    struct CoreWalk
    {
        std::vector<std::size_t> keyProducers[kNumEdks];
        std::vector<std::size_t> waitProducers[kNumEdks];
        std::vector<std::size_t> barrierRoots;
        std::vector<std::size_t> cvapEventsSoFar;
    };
    std::vector<CoreWalk> walks(cores);
    std::unordered_map<Addr, std::vector<GateEntry>> lineGate;
    const Addr cacheMask = ~static_cast<Addr>(63);

    auto addPreds = [&](std::size_t ev,
                        const std::vector<std::size_t> &producers,
                        std::uint64_t &local, std::uint64_t &cross) {
        for (std::size_t p : producers) {
            if (p == ev)
                continue;
            g.nodes[ev].preds.push_back(p);
            if (eventCore[p] == eventCore[ev])
                ++local;
            else
                ++cross;
        }
    };

    // Join the remote producers of key @p k with completion <= upTo
    // into @p roots: the cross-core WAIT edge source set.
    auto mergeRemote = [&](unsigned c, Edk k, Cycle upTo,
                           std::vector<std::size_t> &roots) {
        for (unsigned rc = 0; rc < cores; ++rc) {
            if (rc == c)
                continue;
            std::vector<std::size_t> add;
            for (const KeyedEvent &ke : keyed[rc][k]) {
                if (ke.completion > upTo)
                    break;
                add.push_back(ke.ev);
            }
            mergeInto(roots, add);
        }
    };

    for (unsigned c = 0; c < cores; ++c) {
        const Trace &trace = traces[c];
        const std::vector<Cycle> &done = completionCycles[c];
        CoreWalk &w = walks[c];

        auto consumedSet = [&](const StaticInst &si) {
            std::vector<std::size_t> out;
            if (edkIsReal(si.edkUse))
                mergeInto(out, w.keyProducers[si.edkUse]);
            if (edkIsReal(si.edkUse2))
                mergeInto(out, w.keyProducers[si.edkUse2]);
            return out;
        };

        for (std::size_t t = 0; t < trace.size(); ++t) {
            const StaticInst &si = trace[t].si;
            switch (si.op) {
              case Op::DcCvap: {
                const auto it = eventOfOrigin[c].find(t);
                const std::size_t ev =
                    it != eventOfOrigin[c].end() ? it->second
                                                 : kNoEvent;
                if (ev != kNoEvent) {
                    if (edkIsReal(si.edkUse)) {
                        addPreds(ev, w.keyProducers[si.edkUse],
                                 g.stats.edk, g.stats.crossWait);
                    }
                    addPreds(ev, w.barrierRoots, g.stats.fence,
                             g.stats.crossWait);
                    if (edkIsReal(si.edkDef)) {
                        addPreds(ev, w.keyProducers[si.edkDef],
                                 g.stats.keyChain,
                                 g.stats.crossWait);
                        w.keyProducers[si.edkDef] = {ev};
                        w.waitProducers[si.edkDef].push_back(ev);
                    }
                    if (edkIsReal(si.edkUse))
                        w.waitProducers[si.edkUse].push_back(ev);
                    w.cvapEventsSoFar.push_back(ev);
                } else if (edkIsReal(si.edkDef)) {
                    w.keyProducers[si.edkDef] = consumedSet(si);
                }
                break;
              }
              case Op::Str:
              case Op::Stp: {
                std::vector<std::size_t> producers = consumedSet(si);
                mergeInto(producers, w.barrierRoots);
                if (!producers.empty()) {
                    lineGate[trace[t].addr & cacheMask].push_back(
                        GateEntry{std::move(producers), t, c});
                }
                if (edkIsReal(si.edkDef))
                    w.keyProducers[si.edkDef] = consumedSet(si);
                break;
              }
              case Op::Ldr:
                if (edkIsReal(si.edkDef))
                    w.keyProducers[si.edkDef] = consumedSet(si);
                break;
              case Op::Join:
                if (edkIsReal(si.edkDef))
                    w.keyProducers[si.edkDef] = consumedSet(si);
                break;
              case Op::WaitKey:
                if (edkIsReal(si.edkUse)) {
                    mergeInto(w.barrierRoots,
                              w.waitProducers[si.edkUse]);
                    ede_assert(done[t] != kNoCycle,
                               "WAIT never completed in a completed "
                               "run");
                    mergeRemote(c, si.edkUse, done[t],
                                w.barrierRoots);
                }
                break;
              case Op::WaitAllKeys:
                ede_assert(done[t] != kNoCycle,
                           "WAIT never completed in a completed run");
                for (int k = 1; k < kNumEdks; ++k) {
                    mergeInto(w.barrierRoots, w.waitProducers[k]);
                    mergeRemote(c, static_cast<Edk>(k), done[t],
                                w.barrierRoots);
                }
                break;
              case Op::DsbSy:
                // Local fence: orders this core's prior CVAPs only.
                mergeInto(w.barrierRoots, w.cvapEventsSoFar);
                break;
              case Op::DmbSt:
                // DMB ST does not order DC CVAP: the SU hole.
                break;
              default:
                break;
            }
        }
    }

    // Apply the store gates globally: a persist of a gated line
    // accepted at or after the gating store's completion contains
    // that store's data -- whichever core pushed it, the shared L2
    // handed the dirty line over first -- and inherits its producers.
    if (!lineGate.empty()) {
        for (std::size_t i = 0; i < g.nodes.size(); ++i) {
            PersistNode &node = g.nodes[i];
            for (Addr line = node.addr & cacheMask;
                 line < node.addr + node.size; line += 64) {
                const auto it = lineGate.find(line);
                if (it == lineGate.end())
                    continue;
                for (const GateEntry &gate : it->second) {
                    const std::vector<Cycle> &done =
                        completionCycles[gate.core];
                    if (gate.storeIdx >= done.size())
                        continue;
                    const Cycle dc = done[gate.storeIdx];
                    if (dc == kNoCycle || node.accept < dc)
                        continue;
                    addPreds(i, gate.producers, g.stats.lineGate,
                             g.stats.crossLine);
                }
            }
        }
    }

    g.finalize();
    return g;
}

} // namespace ede
