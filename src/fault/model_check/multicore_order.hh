/**
 * @file
 * The joint persist-ordering partial order of an N-core run.
 *
 * One PersistOrderGraph spanning every core's persist events, built
 * from three families of constraints:
 *
 *  - per-core chains: each core's trace is walked exactly as
 *    persist_order.cc walks a single-core trace (EDK use edges, key
 *    definition chains, DSB SY barrier roots, gated-store line
 *    edges), against that core's private EDM/key state -- per-core
 *    key files mean a use operand can only name a local producer;
 *
 *  - cross-core WAIT edges: the WAIT counter file spans the
 *    coherence point (core/cross_core.hh), so WAIT_KEY(k) on core c
 *    also drains every *remote* in-flight CVAP naming k.  The walk
 *    joins the waiter's barrier roots with every remote CVAP event
 *    whose instruction completed no later than the WAIT itself --
 *    exactly the set the counters could have tracked;
 *
 *  - same-line coherence edges: the global accept-order chain over
 *    each 256 B media line.  Two cores' persists of one line meet at
 *    the shared L2 (dirty handoff) and the NVM buffer coalesces them
 *    into one ordered media stream, so the chain is sound across
 *    cores; cross-core links are tallied separately (crossLine).
 *
 * Every durable set of a multi-core crash is an ideal of this joint
 * lattice, which is what lets the single-core enumerator, torn-event
 * machinery and shrinker run on N-core runs unchanged.
 *
 * All events are post-setup (preSetup stays false): a concurrent
 * kernel's setup phase is ordinary work performed by core 0, and a
 * crash mid-setup is a legitimate -- and checked -- crash state.
 */

#ifndef EDE_FAULT_MODEL_CHECK_MULTICORE_ORDER_HH
#define EDE_FAULT_MODEL_CHECK_MULTICORE_ORDER_HH

#include <vector>

#include "fault/model_check/persist_order.hh"

namespace ede {

/**
 * Derive the joint partial order of one N-core run.
 *
 * @param traces            the executed traces, index == core
 * @param events            System::persistEvents() (global accept
 *                          order; .core binds each event to its core)
 * @param mediaWrites       System::mediaWriteEvents()
 * @param completionCycles  per-core completion cycles, index == core
 *                          (System::completionCycles(i), recording on)
 * @param lineBytes         NVM media line size
 */
PersistOrderGraph
buildJointPersistOrder(
    const std::vector<Trace> &traces,
    const std::vector<PersistEvent> &events,
    const std::vector<MediaWriteEvent> &mediaWrites,
    const std::vector<std::vector<Cycle>> &completionCycles,
    std::uint32_t lineBytes);

} // namespace ede

#endif // EDE_FAULT_MODEL_CHECK_MULTICORE_ORDER_HH
