#include "fault/model_check/persist_order.hh"

#include <algorithm>
#include <unordered_map>

#include "common/logging.hh"
#include "isa/edk.hh"

namespace ede {

namespace {

/** Sorted-unique insertion of @p add into @p set (small sets). */
void
mergeInto(std::vector<std::size_t> &set,
          const std::vector<std::size_t> &add)
{
    if (add.empty())
        return;
    set.insert(set.end(), add.begin(), add.end());
    std::sort(set.begin(), set.end());
    set.erase(std::unique(set.begin(), set.end()), set.end());
}

/** One gated store on a 64 B cache line. */
struct GateEntry
{
    std::vector<std::size_t> producers; ///< Persist events to follow.
    std::size_t storeIdx = 0;           ///< Trace index of the store.
};

} // namespace

void
PersistOrderGraph::finalize()
{
    const std::size_t n = nodes.size();

    preSetupCount = 0;
    while (preSetupCount < n && nodes[preSetupCount].preSetup)
        ++preSetupCount;
    for (std::size_t i = preSetupCount; i < n; ++i) {
        ede_assert(!nodes[i].preSetup,
                   "setup persist events must form an accept-order "
                   "prefix");
    }

    minSucc.assign(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        PersistNode &node = nodes[i];
        std::sort(node.preds.begin(), node.preds.end());
        node.preds.erase(
            std::unique(node.preds.begin(), node.preds.end()),
            node.preds.end());
        // An edge must point backward in accept order; anything else
        // is a constraint the hardware never sequenced (see file
        // comment) and is dropped defensively.
        const auto fwd = std::lower_bound(node.preds.begin(),
                                          node.preds.end(), i);
        stats.nonmonotone += node.preds.end() - fwd;
        node.preds.erase(fwd, node.preds.end());

        node.postSetupPreds.clear();
        for (std::size_t p : node.preds) {
            if (p >= preSetupCount)
                node.postSetupPreds.push_back(p);
            minSucc[p] = std::min(minSucc[p], i);
        }
    }
}

PersistOrderGraph
buildPersistOrder(const Trace &trace,
                  const std::vector<PersistEvent> &events,
                  const std::vector<MediaWriteEvent> &mediaWrites,
                  const std::vector<Cycle> &completionCycles,
                  Cycle setupCompleteCycle, std::uint32_t lineBytes)
{
    PersistOrderGraph g;
    g.lineBytes = lineBytes;
    g.nodes.resize(events.size());

    // Per-media-line sorted completion cycles, for mediaCycle.
    std::unordered_map<Addr, std::vector<Cycle>> mediaByLine;
    for (const MediaWriteEvent &mw : mediaWrites)
        mediaByLine[mw.lineAddr].push_back(mw.cycle);
    for (auto &[line, cycles] : mediaByLine)
        std::sort(cycles.begin(), cycles.end());

    // Nodes, media cycles, and the same-line accept chains.
    std::unordered_map<Addr, std::size_t> lastOfMediaLine;
    std::unordered_map<TraceIndex, std::size_t> eventOfOrigin;
    for (std::size_t i = 0; i < events.size(); ++i) {
        const PersistEvent &ev = events[i];
        PersistNode &node = g.nodes[i];
        node.addr = ev.addr;
        node.size = ev.size;
        node.accept = ev.cycle;
        node.origin = ev.origin;
        node.preSetup = ev.cycle < setupCompleteCycle;

        const Addr line = g.mediaLine(ev.addr);
        if (auto it = mediaByLine.find(line); it != mediaByLine.end()) {
            const auto up = std::upper_bound(it->second.begin(),
                                             it->second.end(), ev.cycle);
            if (up != it->second.end())
                node.mediaCycle = *up;
        }

        if (auto it = lastOfMediaLine.find(line);
            it != lastOfMediaLine.end()) {
            node.preds.push_back(it->second);
            ++g.stats.sameLine;
        }
        lastOfMediaLine[line] = i;

        if (ev.origin != kNoOrigin)
            eventOfOrigin.emplace(ev.origin, i);
    }

    // Walk the trace in program order, maintaining per-key producer
    // sets (persist events conveying each key), the accumulated
    // barrier roots, and the per-cache-line store gates.
    //
    // Two distinct producer notions per key:
    //  - keyProducers[k]: the NEWEST definition, the EDM mapping an
    //    EDK use operand resolves against;
    //  - waitProducers[k]: EVERY CVAP event naming k, the set the
    //    WAIT counter file tracks.  WAIT_KEY(k) retires only when all
    //    of them completed (WaitCounters::keyClear), so the wait
    //    barrier must not lean on keyProducers plus chain
    //    transitivity: the write buffer can accept successive
    //    definitions of one key OUT of program order (a hot line
    //    coalesces and accepts early), which severs the chain and
    //    would leave older producers unordered against the
    //    post-wait persists.
    std::vector<std::size_t> keyProducers[kNumEdks];
    std::vector<std::size_t> waitProducers[kNumEdks];
    std::vector<std::size_t> barrierRoots;
    std::vector<std::size_t> cvapEventsSoFar;
    std::unordered_map<Addr, std::vector<GateEntry>> lineGate;
    const Addr cacheMask = ~static_cast<Addr>(63);

    auto addPreds = [&](std::size_t ev,
                        const std::vector<std::size_t> &producers,
                        std::uint64_t &tally) {
        for (std::size_t p : producers) {
            if (p != ev) {
                g.nodes[ev].preds.push_back(p);
                ++tally;
            }
        }
    };
    auto consumedSet = [&](const StaticInst &si) {
        std::vector<std::size_t> out;
        if (edkIsReal(si.edkUse))
            mergeInto(out, keyProducers[si.edkUse]);
        if (edkIsReal(si.edkUse2))
            mergeInto(out, keyProducers[si.edkUse2]);
        return out;
    };

    for (std::size_t t = 0; t < trace.size(); ++t) {
        const StaticInst &si = trace[t].si;
        switch (si.op) {
          case Op::DcCvap: {
            const auto it = eventOfOrigin.find(t);
            const std::size_t ev =
                it != eventOfOrigin.end() ? it->second : kNoEvent;
            if (ev != kNoEvent) {
                if (edkIsReal(si.edkUse)) {
                    addPreds(ev, keyProducers[si.edkUse],
                             g.stats.edk);
                }
                addPreds(ev, barrierRoots, g.stats.fence);
                if (edkIsReal(si.edkDef)) {
                    // Chain edge to the previous definition.  When
                    // accepts inverted, finalize() drops it (counted
                    // nonmonotone) -- correctly, since no stall
                    // sequenced the two lines; waitProducers keeps
                    // the WAIT barriers sound regardless.
                    addPreds(ev, keyProducers[si.edkDef],
                             g.stats.keyChain);
                    keyProducers[si.edkDef] = {ev};
                    waitProducers[si.edkDef].push_back(ev);
                }
                if (edkIsReal(si.edkUse))
                    waitProducers[si.edkUse].push_back(ev);
                cvapEventsSoFar.push_back(ev);
            } else if (edkIsReal(si.edkDef)) {
                // A CVAP that never reached the NVM (shouldn't happen
                // in a completed run): the key degenerates to the
                // persists it consumed.
                keyProducers[si.edkDef] = consumedSet(si);
            }
            break;
          }
          case Op::Str:
          case Op::Stp: {
            std::vector<std::size_t> producers = consumedSet(si);
            mergeInto(producers, barrierRoots);
            if (!producers.empty()) {
                lineGate[trace[t].addr & cacheMask].push_back(
                    GateEntry{std::move(producers), t});
            }
            if (edkIsReal(si.edkDef))
                keyProducers[si.edkDef] = consumedSet(si);
            break;
          }
          case Op::Ldr:
            if (edkIsReal(si.edkDef))
                keyProducers[si.edkDef] = consumedSet(si);
            break;
          case Op::Join:
            if (edkIsReal(si.edkDef))
                keyProducers[si.edkDef] = consumedSet(si);
            break;
          case Op::WaitKey:
            if (edkIsReal(si.edkUse))
                mergeInto(barrierRoots, waitProducers[si.edkUse]);
            break;
          case Op::WaitAllKeys:
            for (int k = 1; k < kNumEdks; ++k)
                mergeInto(barrierRoots, waitProducers[k]);
            break;
          case Op::DsbSy:
            // Every prior CVAP completed (persisted) before anything
            // younger executes; prior plain stores carry their
            // ordering through the line gates below.
            mergeInto(barrierRoots, cvapEventsSoFar);
            break;
          case Op::DmbSt:
            // DMB ST does not order DC CVAP: the SU hole.  No edges.
            break;
          default:
            break;
        }
    }

    // Apply the store gates: every persist of a gated line accepted
    // at or after the gating store's completion contains that store's
    // data and inherits its producers.  Earlier persists of the line
    // predate the store and are genuinely unordered against it.
    if (!lineGate.empty()) {
        for (std::size_t i = 0; i < g.nodes.size(); ++i) {
            PersistNode &node = g.nodes[i];
            for (Addr line = node.addr & cacheMask;
                 line < node.addr + node.size; line += 64) {
                const auto it = lineGate.find(line);
                if (it == lineGate.end())
                    continue;
                for (const GateEntry &gate : it->second) {
                    if (gate.storeIdx >= completionCycles.size())
                        continue;
                    const Cycle done = completionCycles[gate.storeIdx];
                    if (done == kNoCycle || node.accept < done)
                        continue;
                    addPreds(i, gate.producers, g.stats.lineGate);
                }
            }
        }
    }

    g.finalize();
    return g;
}

} // namespace ede
