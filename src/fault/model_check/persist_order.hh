/**
 * @file
 * The persist-ordering partial order of one simulated run.
 *
 * The WPQ/ADR model guarantees much less than "persists become
 * durable in accept order": an accepted line may still be pending
 * when power fails, and the drain that follows saves an arbitrary
 * subset of the pending lines.  What IS guaranteed -- and therefore
 * what a crash-consistency checker may rely on -- is exactly the set
 * of constraints the program and the device enforce:
 *
 *  - same-media-line accept chains: the NVM buffers one slot per
 *    256 B internal line, so successive accepts of one line coalesce
 *    and reach the media as one ordered stream -- a younger update of
 *    a line can never be durable without the older ones;
 *
 *  - EDK edges: a DC CVAP consuming key k completes only after the
 *    persists producing k, so its persist event is ordered behind
 *    theirs (the Section IV dependence the paper adds);
 *
 *  - key-chain edges: successive CVAP definitions of one key are
 *    usually pushed and accepted in program order, chaining a
 *    consumer of the newest definition behind the older ones.  This
 *    is a heuristic, not a guarantee: hot-line coalescing can invert
 *    the accepts of two definitions, in which case the chain edge is
 *    dropped (stats.nonmonotone) because no stall sequenced them;
 *
 *  - residual fences: DSB SY orders every prior CVAP persist before
 *    anything younger; WAIT_KEY / WAIT_ALL_KEYS order EVERY
 *    still-tracked CVAP naming the key the same way -- the WAIT
 *    counter file counts all of them, not just the newest
 *    definition, so these edges must not rely on key-chain
 *    transitivity.  DMB ST contributes NOTHING here -- it does not
 *    order DC CVAP (Section II-A), which is precisely the SU
 *    configuration's hole;
 *
 *  - line gates: a store ordered behind producers (an EDK use
 *    operand, or issue after a barrier/wait) carries that ordering
 *    onto every later persist of its cache line -- including dirty
 *    evictions, which have no ordering of their own.  The gate
 *    applies only to persist events accepted at or after the store's
 *    completion: an earlier eviction of the line does not yet contain
 *    the store's data and is genuinely unordered.
 *
 * Every guaranteed edge points backward in accept order by
 * construction of the pipeline (consumers stall until producers
 * complete, which is after the producer's accept).  An edge that
 * would point forward is dropped and counted in stats.nonmonotone:
 * only the heuristic key-chain edges can legitimately do so (accept
 * inversion under hot-line coalescing, seen on the WB pipeline at
 * deeper workloads); the tests assert zero for the micro lattice
 * gates, where accepts stay in program order.
 */

#ifndef EDE_FAULT_MODEL_CHECK_PERSIST_ORDER_HH
#define EDE_FAULT_MODEL_CHECK_PERSIST_ORDER_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/system.hh"
#include "trace/trace.hh"

namespace ede {

/** "No event" sentinel for event-index fields. */
inline constexpr std::size_t kNoEvent = static_cast<std::size_t>(-1);

/** One persist event as a node of the partial order. */
struct PersistNode
{
    Addr addr = kNoAddr;          ///< 64 B aligned event address.
    std::uint32_t size = 0;       ///< Event payload size (bytes).
    Cycle accept = kNoCycle;      ///< WPQ accept cycle.
    TraceIndex origin = kNoOrigin;///< Originating instruction, if any.

    /**
     * Cycle the first media write of this event's 256 B line
     * completed after the accept; kNoCycle when the line never
     * reached the media before the run ended.  A crash at cycle
     * c >= mediaCycle cannot drop this event.
     */
    Cycle mediaCycle = kNoCycle;

    /** Accepted during pool setup: durable in every crash state. */
    bool preSetup = false;

    /** Immediate predecessors (earlier event indices), sorted unique. */
    std::vector<std::size_t> preds;

    /**
     * The post-setup subset of preds, precomputed because the DFS
     * tests it on every include decision and setup events (which can
     * dominate preds through barrier roots) are always included.
     */
    std::vector<std::size_t> postSetupPreds;
};

/** Per-edge-kind tallies (diagnostics and the JSON artifact). */
struct PersistOrderStats
{
    std::uint64_t sameLine = 0;   ///< 256 B media-line accept chains.
    std::uint64_t edk = 0;        ///< Direct EDK use edges.
    std::uint64_t keyChain = 0;   ///< Same-key CVAP definition chains.
    std::uint64_t fence = 0;      ///< DSB SY / WAIT_* barrier roots.
    std::uint64_t lineGate = 0;   ///< Gated-store line edges.
    std::uint64_t nonmonotone = 0;///< Dropped forward edges (expect 0).

    /**
     * @name Cross-core edges (multicore_order.hh; zero on one core).
     *
     * crossWait: a WAIT/fence-rooted edge whose producer persisted on
     * a different core than the consumer -- the cross-core WAIT
     * counters of core/cross_core.hh made the waiter stall on the
     * remote persist.  crossLine: a same-media-line or line-gate edge
     * joining persists of two different cores -- the shared-L2 dirty
     * handoff carried the line across the coherence point and the NVM
     * buffer chained the accepts.
     */
    /// @{
    std::uint64_t crossWait = 0;
    std::uint64_t crossLine = 0;
    /// @}

    std::uint64_t total() const
    {
        return sameLine + edk + keyChain + fence + lineGate +
               crossWait + crossLine;
    }
};

/** The assembled partial order over one run's persist events. */
struct PersistOrderGraph
{
    std::vector<PersistNode> nodes;  ///< In accept order.
    PersistOrderStats stats;
    std::uint32_t lineBytes = 256;   ///< NVM media line size.
    std::size_t preSetupCount = 0;   ///< nodes[0..preSetupCount) forced.

    /**
     * minSucc[i]: smallest j with i in preds(j), nodes.size() when no
     * successor.  Lets "is i maximal within the durable prefix
     * [0, cut)" be answered as minSucc[i] >= cut in O(1) -- the
     * frontier test the generalized torn-persist selection uses.
     */
    std::vector<std::size_t> minSucc;

    /** 256 B media line of @p a. */
    Addr
    mediaLine(Addr a) const
    {
        return a & ~static_cast<Addr>(lineBytes - 1);
    }

    /**
     * Normalize hand- or builder-assembled edges: sort and dedup each
     * pred list, drop (and count) edges that do not point backward in
     * accept order, then derive preSetupCount, postSetupPreds and
     * minSucc.  Must be called before the graph is enumerated.
     */
    void finalize();
};

/**
 * Derive the partial order for one run.
 *
 * @param trace             the executed trace (EDK/fence constraints)
 * @param events            System::persistEvents() (accept order)
 * @param mediaWrites       System::mediaWriteEvents()
 * @param completionCycles  System::completionCycles() (recording on)
 * @param setupCompleteCycle first cycle with the pool fully durable
 * @param lineBytes         NVM media line size
 */
PersistOrderGraph
buildPersistOrder(const Trace &trace,
                  const std::vector<PersistEvent> &events,
                  const std::vector<MediaWriteEvent> &mediaWrites,
                  const std::vector<Cycle> &completionCycles,
                  Cycle setupCompleteCycle, std::uint32_t lineBytes);

} // namespace ede

#endif // EDE_FAULT_MODEL_CHECK_PERSIST_ORDER_HH
