#include "isa/assembler.hh"

#include <cctype>
#include <charconv>

namespace ede {

namespace {

/** Cursor over one line. */
class Scanner
{
  public:
    explicit Scanner(std::string_view text) : text_(text) {}

    void
    skipSpace()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_]))) {
            ++pos_;
        }
    }

    bool done() { skipSpace(); return pos_ >= text_.size(); }

    /** Consume @p tok (case sensitive) if present. */
    bool
    eat(std::string_view tok)
    {
        skipSpace();
        if (text_.substr(pos_, tok.size()) == tok) {
            pos_ += tok.size();
            return true;
        }
        return false;
    }

    /** Next identifier-ish word (letters, digits, '_', '.'). */
    std::string_view
    word()
    {
        skipSpace();
        const std::size_t start = pos_;
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (std::isalnum(static_cast<unsigned char>(c)) ||
                c == '_' || c == '.') {
                ++pos_;
            } else {
                break;
            }
        }
        return text_.substr(start, pos_ - start);
    }

    /** Parse a signed integer. */
    bool
    integer(std::int64_t &out)
    {
        skipSpace();
        const char *begin = text_.data() + pos_;
        const char *end = text_.data() + text_.size();
        auto [ptr, ec] = std::from_chars(begin, end, out);
        if (ec != std::errc{})
            return false;
        pos_ += static_cast<std::size_t>(ptr - begin);
        return true;
    }

    std::size_t pos() const { return pos_; }

  private:
    std::string_view text_;
    std::size_t pos_ = 0;
};

bool
parseReg(Scanner &s, RegIndex &out)
{
    s.skipSpace();
    if (s.eat("xzr")) {
        out = kZeroReg;
        return true;
    }
    if (!s.eat("x"))
        return false;
    std::int64_t n = 0;
    if (!s.integer(n) || n < 0 || n >= kNumArchRegs)
        return false;
    out = static_cast<RegIndex>(n);
    return true;
}

/**
 * Parse a parenthesized key list with exactly @p n_keys keys:
 * "(k)", "(d,u)" or "(d,u1,u2)".
 */
bool
parseKeys(Scanner &s, Edk &def, Edk &use1, Edk *use2, int n_keys)
{
    if (!s.eat("("))
        return false;
    std::int64_t a = 0;
    if (!s.integer(a) || a < 0 || a >= kNumEdks)
        return false;
    if (n_keys == 1) {
        if (!s.eat(")"))
            return false;
        def = static_cast<Edk>(a);
        return true;
    }
    if (!s.eat(","))
        return false;
    std::int64_t b = 0;
    if (!s.integer(b) || b < 0 || b >= kNumEdks)
        return false;
    if (n_keys == 3) {
        if (!s.eat(","))
            return false;
        std::int64_t c = 0;
        if (!s.integer(c) || c < 0 || c >= kNumEdks)
            return false;
        *use2 = static_cast<Edk>(c);
    }
    if (!s.eat(")"))
        return false;
    def = static_cast<Edk>(a);
    use1 = static_cast<Edk>(b);
    return true;
}

/** "[xN]" or "[xN, #imm]". */
bool
parseMem(Scanner &s, RegIndex &base, std::int64_t &disp)
{
    if (!s.eat("["))
        return false;
    if (!parseReg(s, base))
        return false;
    disp = 0;
    if (s.eat(",")) {
        if (!s.eat("#"))
            return false;
        if (!s.integer(disp))
            return false;
    }
    return s.eat("]");
}

AsmResult
fail(const std::string &msg)
{
    AsmResult r;
    r.error = msg;
    return r;
}

AsmResult
finish(const StaticInst &si)
{
    AsmResult r;
    r.ok = true;
    r.inst = si;
    return r;
}

} // namespace

AsmResult
assembleLine(std::string_view line)
{
    // Strip comments.
    if (const auto sc = line.find(';'); sc != std::string_view::npos)
        line = line.substr(0, sc);

    Scanner s(line);
    if (s.done())
        return fail("empty line");

    StaticInst si;

    // Multi-word mnemonics first.
    if (s.eat("dc")) {
        if (s.word() != "cvap")
            return fail("expected 'dc cvap'");
        si.op = Op::DcCvap;
        Edk use2_unused = 0;
        (void)use2_unused;
        // Optional keys, then base register.
        Scanner probe = s;
        if (probe.eat("(")) {
            if (!parseKeys(s, si.edkDef, si.edkUse, nullptr, 2))
                return fail("bad key operands");
            if (!s.eat(","))
                return fail("expected ',' after keys");
        }
        if (!parseReg(s, si.base))
            return fail("expected base register");
        return s.done() ? finish(si) : fail("trailing input");
    }
    if (s.eat("dsb")) {
        if (s.word() != "sy")
            return fail("expected 'dsb sy'");
        si.op = Op::DsbSy;
        return s.done() ? finish(si) : fail("trailing input");
    }
    if (s.eat("dmb")) {
        if (s.word() != "st")
            return fail("expected 'dmb st'");
        si.op = Op::DmbSt;
        return s.done() ? finish(si) : fail("trailing input");
    }

    const std::string_view mnem = s.word();
    if (mnem == "nop") {
        si.op = Op::Nop;
        return s.done() ? finish(si) : fail("trailing input");
    }
    if (mnem == "wait_all_keys") {
        si.op = Op::WaitAllKeys;
        return s.done() ? finish(si) : fail("trailing input");
    }
    if (mnem == "wait_key") {
        si.op = Op::WaitKey;
        Edk key = 0;
        Edk dummy = 0;
        if (!parseKeys(s, key, dummy, nullptr, 1))
            return fail("expected '(key)'");
        if (!edkIsReal(key))
            return fail("WAIT_KEY needs a non-zero key");
        // Producer and consumer of the same key (Section IV-B2).
        si.edkDef = key;
        si.edkUse = key;
        return s.done() ? finish(si) : fail("trailing input");
    }
    if (mnem == "join") {
        si.op = Op::Join;
        if (!parseKeys(s, si.edkDef, si.edkUse, &si.edkUse2, 3))
            return fail("expected '(def,use1,use2)'");
        return s.done() ? finish(si) : fail("trailing input");
    }
    if (mnem == "mov") {
        si.op = Op::Mov;
        if (!parseReg(s, si.dst))
            return fail("expected destination register");
        if (!s.eat(","))
            return fail("expected ','");
        if (s.eat("#")) {
            if (!s.integer(si.imm))
                return fail("bad immediate");
        } else if (!parseReg(s, si.src1)) {
            return fail("expected register or immediate");
        }
        return s.done() ? finish(si) : fail("trailing input");
    }
    if (mnem == "add" || mnem == "sub" || mnem == "and" ||
        mnem == "orr" || mnem == "eor" || mnem == "cmp" ||
        mnem == "alu") {
        si.op = Op::IntAlu;
        if (mnem == "cmp") {
            // cmp xA, xB reads two sources, writes flags (modelled
            // as no destination).
            if (!parseReg(s, si.src1))
                return fail("expected register");
            if (!s.eat(","))
                return fail("expected ','");
            if (!parseReg(s, si.src2))
                return fail("expected register");
            return s.done() ? finish(si) : fail("trailing input");
        }
        if (!parseReg(s, si.dst))
            return fail("expected destination register");
        if (!s.eat(","))
            return fail("expected ','");
        if (!parseReg(s, si.src1))
            return fail("expected source register");
        if (s.eat(",")) {
            if (s.eat("#")) {
                if (!s.integer(si.imm))
                    return fail("bad immediate");
            } else if (!parseReg(s, si.src2)) {
                return fail("expected register or immediate");
            }
        }
        return s.done() ? finish(si) : fail("trailing input");
    }
    if (mnem == "mul") {
        si.op = Op::IntMult;
        if (!parseReg(s, si.dst) || !s.eat(",") ||
            !parseReg(s, si.src1) || !s.eat(",") ||
            !parseReg(s, si.src2)) {
            return fail("expected 'mul xd, xa, xb'");
        }
        return s.done() ? finish(si) : fail("trailing input");
    }
    if (mnem == "b") {
        si.op = Op::Branch;
        if (s.eat("#") && !s.integer(si.imm))
            return fail("bad displacement");
        return s.done() ? finish(si) : fail("trailing input");
    }
    if (mnem == "b.cond" || mnem == "b.ne" || mnem == "b.eq") {
        si.op = Op::BranchCond;
        if (parseReg(s, si.src1)) {
            if (!s.eat(",") || !parseReg(s, si.src2))
                return fail("expected second register");
            s.eat(","); // Optional displacement follows.
        }
        if (s.eat("#") && !s.integer(si.imm))
            return fail("bad displacement");
        return s.done() ? finish(si) : fail("trailing input");
    }
    if (mnem == "ldr" || mnem == "str" || mnem == "stp") {
        si.op = mnem == "ldr" ? Op::Ldr
                : mnem == "str" ? Op::Str : Op::Stp;
        si.size = si.op == Op::Stp ? 16 : 8;
        Scanner probe = s;
        if (probe.eat("(")) {
            if (!parseKeys(s, si.edkDef, si.edkUse, nullptr, 2))
                return fail("bad key operands");
            if (!s.eat(","))
                return fail("expected ',' after keys");
        }
        RegIndex r1;
        if (!parseReg(s, r1))
            return fail("expected register");
        if (si.op == Op::Ldr)
            si.dst = r1;
        else
            si.src1 = r1;
        if (si.op == Op::Stp) {
            if (!s.eat(",") || !parseReg(s, si.src2))
                return fail("expected second register");
        }
        if (!s.eat(","))
            return fail("expected ','");
        if (!parseMem(s, si.base, si.imm))
            return fail("expected '[xN]' address operand");
        return s.done() ? finish(si) : fail("trailing input");
    }
    return fail("unknown mnemonic '" + std::string(mnem) + "'");
}

std::optional<std::vector<StaticInst>>
assemble(std::string_view listing, std::string *error_out)
{
    std::vector<StaticInst> out;
    std::size_t line_no = 0;
    std::size_t pos = 0;
    while (pos <= listing.size()) {
        const std::size_t nl = listing.find('\n', pos);
        const std::string_view line = listing.substr(
            pos, nl == std::string_view::npos ? nl : nl - pos);
        ++line_no;
        pos = (nl == std::string_view::npos) ? listing.size() + 1
                                             : nl + 1;

        // Skip blank/comment-only lines.
        std::string_view body = line;
        if (const auto sc = body.find(';');
            sc != std::string_view::npos) {
            body = body.substr(0, sc);
        }
        bool blank = true;
        for (char c : body) {
            if (!std::isspace(static_cast<unsigned char>(c)))
                blank = false;
        }
        if (blank)
            continue;

        const AsmResult r = assembleLine(line);
        if (!r.ok) {
            if (error_out) {
                *error_out = "line " + std::to_string(line_no) +
                             ": " + r.error;
            }
            return std::nullopt;
        }
        out.push_back(r.inst);
    }
    return out;
}

} // namespace ede
