/**
 * @file
 * Text assembler for the model ISA, accepting the paper's syntax:
 *
 *   ldr x1, [x0]              load
 *   ldr (0,1), x4, [x1]       EDE load variant (Section VIII-C)
 *   str (0,1), x3, [x0]       EDE store variant (Figure 7)
 *   stp x0, x1, [x2]          pairwise store
 *   dc cvap (1,0), x2         cacheline writeback to PoP
 *   dsb sy / dmb st           barriers
 *   join (3,1,2)              JOIN (EDKdef, EDKuse1, EDKuse2)
 *   wait_key (4)              WAIT_KEY
 *   wait_all_keys             WAIT_ALL_KEYS
 *   mov x3, #42               immediate move
 *   add x1, x2, x3 / add x1, x2, #4
 *   mul x1, x2, x3
 *   b #label-displacement / b.cond x1, x2, #disp
 *   nop
 *
 * The assembler produces StaticInst records (what encode() accepts);
 * it is the inverse of disassemble() for every supported form.
 */

#ifndef EDE_ISA_ASSEMBLER_HH
#define EDE_ISA_ASSEMBLER_HH

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "isa/inst.hh"

namespace ede {

/** Result of assembling one line. */
struct AsmResult
{
    bool ok = false;
    StaticInst inst;
    std::string error;   ///< Filled when !ok.
};

/** Assemble a single instruction line (comments after ';' ignored). */
AsmResult assembleLine(std::string_view line);

/**
 * Assemble a multi-line listing.  Blank lines and ';' comments are
 * skipped.  @return the instructions, or std::nullopt with
 * @p error_out set to "line N: message".
 */
std::optional<std::vector<StaticInst>>
assemble(std::string_view listing, std::string *error_out = nullptr);

} // namespace ede

#endif // EDE_ISA_ASSEMBLER_HH
