#include "isa/inst.hh"

#include <sstream>

namespace ede {

std::string_view
opName(Op op)
{
    switch (op) {
      case Op::Nop: return "nop";
      case Op::IntAlu: return "alu";
      case Op::IntMult: return "mul";
      case Op::Mov: return "mov";
      case Op::Ldr: return "ldr";
      case Op::Str: return "str";
      case Op::Stp: return "stp";
      case Op::DcCvap: return "dc cvap";
      case Op::DsbSy: return "dsb sy";
      case Op::DmbSt: return "dmb st";
      case Op::Branch: return "b";
      case Op::BranchCond: return "b.cond";
      case Op::Join: return "join";
      case Op::WaitKey: return "wait_key";
      case Op::WaitAllKeys: return "wait_all_keys";
      default: return "<bad-op>";
    }
}

namespace {

std::string
regName(RegIndex r)
{
    if (r == kNoReg)
        return "-";
    if (r == kZeroReg)
        return "xzr";
    return "x" + std::to_string(static_cast<int>(r));
}

/** Render "(def, use)" or "(def, use1, use2)" key operands. */
std::string
keyOperands(const StaticInst &si)
{
    std::ostringstream os;
    os << "(" << static_cast<int>(si.edkDef) << ","
       << static_cast<int>(si.edkUse);
    if (si.op == Op::Join)
        os << "," << static_cast<int>(si.edkUse2);
    os << ")";
    return os.str();
}

} // namespace

std::string
disassemble(const StaticInst &si)
{
    std::ostringstream os;
    os << opName(si.op);
    switch (si.op) {
      case Op::Nop:
      case Op::DsbSy:
      case Op::DmbSt:
      case Op::WaitAllKeys:
        break;
      case Op::IntAlu:
      case Op::IntMult:
        os << " " << regName(si.dst) << ", " << regName(si.src1) << ", ";
        if (si.src2 != kNoReg)
            os << regName(si.src2);
        else
            os << "#" << si.imm;
        break;
      case Op::Mov:
        os << " " << regName(si.dst) << ", ";
        if (si.src1 != kNoReg)
            os << regName(si.src1);
        else
            os << "#" << si.imm;
        break;
      case Op::Ldr:
        if (si.usesEde())
            os << " " << keyOperands(si) << ",";
        os << " " << regName(si.dst) << ", [" << regName(si.base);
        if (si.imm)
            os << ", #" << si.imm;
        os << "]";
        break;
      case Op::Str:
        if (si.usesEde())
            os << " " << keyOperands(si) << ",";
        os << " " << regName(si.src1) << ", [" << regName(si.base);
        if (si.imm)
            os << ", #" << si.imm;
        os << "]";
        break;
      case Op::Stp:
        if (si.usesEde())
            os << " " << keyOperands(si) << ",";
        os << " " << regName(si.src1) << ", " << regName(si.src2)
           << ", [" << regName(si.base);
        if (si.imm)
            os << ", #" << si.imm;
        os << "]";
        break;
      case Op::DcCvap:
        if (si.usesEde())
            os << " " << keyOperands(si) << ",";
        os << " " << regName(si.base);
        break;
      case Op::Branch:
      case Op::BranchCond:
        os << " #" << si.imm;
        break;
      case Op::Join:
        os << " " << keyOperands(si);
        break;
      case Op::WaitKey:
        os << " (" << static_cast<int>(si.edkUse) << ")";
        break;
      default:
        break;
    }
    return os.str();
}

std::string
disassemble(const DynInst &di)
{
    std::ostringstream os;
    os << disassemble(di.si);
    if (di.isMemRef() && di.addr != kNoAddr) {
        os << "  ; addr=0x" << std::hex << di.addr << std::dec;
    }
    if (di.isBranch())
        os << "  ; " << (di.taken ? "taken" : "not-taken");
    return os.str();
}

} // namespace ede
