/**
 * @file
 * Execution Dependence Keys (EDKs).
 *
 * EDE defines sixteen keys (EDK #0 .. EDK #15).  EDK #0 is the *zero
 * key*: encoding it in a producer or consumer field means "this field
 * is unused".  Consequently the Execution Dependence Map only needs
 * fifteen real entries (Section IV-A1 of the paper).
 */

#ifndef EDE_ISA_EDK_HH
#define EDE_ISA_EDK_HH

#include <cstdint>

namespace ede {

/** An Execution Dependence Key operand. */
using Edk = std::uint8_t;

/** Total number of architecturally named keys, including the zero key. */
inline constexpr int kNumEdks = 16;

/** The zero key: "no dependence conveyed through this field". */
inline constexpr Edk kZeroEdk = 0;

/** True when @p k names a real (non-zero) key. */
constexpr bool
edkIsReal(Edk k)
{
    return k != kZeroEdk && k < kNumEdks;
}

/** True when @p k is any architecturally valid key, including zero. */
constexpr bool
edkIsValid(Edk k)
{
    return k < kNumEdks;
}

} // namespace ede

#endif // EDE_ISA_EDK_HH
