#include "isa/encoding.hh"

namespace ede {

namespace {

constexpr std::int64_t kImmMax = (1ll << 20) - 1;
constexpr std::int64_t kImmMin = -(1ll << 20);

/**
 * Unused register operands are encoded as the zero register: neither
 * creates a scheduling dependence, so the forms are equivalent.
 */
std::uint64_t
canonicalReg(RegIndex r)
{
    return (r == kNoReg) ? kZeroReg : r;
}

} // namespace

std::optional<MachineWord>
encode(const StaticInst &si)
{
    if (si.op >= Op::NumOps)
        return std::nullopt;
    if (!edkIsValid(si.edkDef) || !edkIsValid(si.edkUse) ||
        !edkIsValid(si.edkUse2)) {
        return std::nullopt;
    }
    if (si.usesEde() && !opAllowsEdkOperands(si.op))
        return std::nullopt;
    if (edkIsReal(si.edkUse2) && si.op != Op::Join)
        return std::nullopt;
    if (si.imm < kImmMin || si.imm > kImmMax)
        return std::nullopt;
    if (si.size > 16)
        return std::nullopt;
    if ((si.dst != kNoReg && si.dst >= kNumArchRegs) ||
        (si.src1 != kNoReg && si.src1 >= kNumArchRegs) ||
        (si.src2 != kNoReg && si.src2 >= kNumArchRegs) ||
        (si.base != kNoReg && si.base >= kNumArchRegs)) {
        return std::nullopt;
    }

    MachineWord w = 0;
    w |= static_cast<std::uint64_t>(si.op) & 0x3f;
    w |= canonicalReg(si.dst) << 6;
    w |= canonicalReg(si.src1) << 11;
    w |= canonicalReg(si.src2) << 16;
    w |= canonicalReg(si.base) << 21;
    w |= static_cast<std::uint64_t>(si.edkDef & 0xf) << 26;
    w |= static_cast<std::uint64_t>(si.edkUse & 0xf) << 30;
    w |= static_cast<std::uint64_t>(si.edkUse2 & 0xf) << 34;
    w |= static_cast<std::uint64_t>(si.size & 0x1f) << 38;
    w |= (static_cast<std::uint64_t>(si.imm) & 0x1fffff) << 43;
    return w;
}

std::optional<StaticInst>
decode(MachineWord word)
{
    StaticInst si;
    const auto op_raw = word & 0x3f;
    if (op_raw >= static_cast<std::uint64_t>(Op::NumOps))
        return std::nullopt;
    si.op = static_cast<Op>(op_raw);
    si.dst = static_cast<RegIndex>((word >> 6) & 0x1f);
    si.src1 = static_cast<RegIndex>((word >> 11) & 0x1f);
    si.src2 = static_cast<RegIndex>((word >> 16) & 0x1f);
    si.base = static_cast<RegIndex>((word >> 21) & 0x1f);
    si.edkDef = static_cast<Edk>((word >> 26) & 0xf);
    si.edkUse = static_cast<Edk>((word >> 30) & 0xf);
    si.edkUse2 = static_cast<Edk>((word >> 34) & 0xf);
    si.size = static_cast<std::uint8_t>((word >> 38) & 0x1f);

    // Sign-extend the 21-bit immediate.
    std::uint64_t imm_raw = (word >> 43) & 0x1fffff;
    if (imm_raw & (1ull << 20))
        imm_raw |= ~0x1fffffull;
    si.imm = static_cast<std::int64_t>(imm_raw);

    if (si.usesEde() && !opAllowsEdkOperands(si.op))
        return std::nullopt;
    if (edkIsReal(si.edkUse2) && si.op != Op::Join)
        return std::nullopt;
    if (si.size > 16)
        return std::nullopt;
    return si;
}

} // namespace ede
