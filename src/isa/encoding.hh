/**
 * @file
 * Binary encoding for the model ISA, including the EDE key fields.
 *
 * A real EDE implementation would claim unused AArch64 opcode space;
 * this library is a microarchitecture study, so we use a transparent
 * 64-bit container with explicit fields.  The encoding exists so the
 * key-operand plumbing (two 4-bit keys on memory variants, three on
 * JOIN) is demonstrably encodable and round-trippable, and so traces
 * can be serialized compactly.
 *
 * Layout (bit 0 = least significant):
 *
 *   [5:0]   opcode          [10:6]  dst        [15:11] src1
 *   [20:16] src2            [25:21] base       [29:26] edkDef
 *   [33:30] edkUse          [37:34] edkUse2    [42:38] size
 *   [63:43] imm (21-bit two's complement)
 *
 * Register fields use 0x1f (kNoReg is mapped to 0x1f... note x31 is
 * the zero register; "no register" is encoded as the zero register
 * since neither creates a dependence).
 */

#ifndef EDE_ISA_ENCODING_HH
#define EDE_ISA_ENCODING_HH

#include <cstdint>
#include <optional>

#include "isa/inst.hh"

namespace ede {

/** Encoded instruction word. */
using MachineWord = std::uint64_t;

/**
 * Encode a static instruction.
 *
 * @return the machine word, or std::nullopt if the instruction is not
 *         encodable (immediate out of the 21-bit range, EDE keys on an
 *         opcode that does not allow them, or invalid key numbers).
 */
std::optional<MachineWord> encode(const StaticInst &si);

/**
 * Decode a machine word.
 *
 * @return the static instruction, or std::nullopt if the word is not
 *         a valid encoding (bad opcode, malformed key fields).
 */
std::optional<StaticInst> decode(MachineWord word);

} // namespace ede

#endif // EDE_ISA_ENCODING_HH
