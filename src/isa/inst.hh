/**
 * @file
 * Instruction records: the static (program) part and the dynamic
 * (per-execution) part.
 *
 * StaticInst is what an assembler/compiler produces: opcode, register
 * operands, immediate, and EDE key operands.  DynInst is one element
 * of a dynamic instruction stream: a StaticInst plus the resolved
 * effective address, store data, and branch outcome.  The pipeline
 * consumes DynInst streams.
 */

#ifndef EDE_ISA_INST_HH
#define EDE_ISA_INST_HH

#include <cstdint>
#include <string>

#include "common/types.hh"
#include "isa/edk.hh"
#include "isa/opcodes.hh"

namespace ede {

/**
 * The static portion of an instruction.
 *
 * Register conventions: @c dst is the destination register (loads and
 * ALU ops); @c src1/@c src2 are data sources; @c base is the address
 * base register for memory ops.  Unused operands hold kNoReg.
 * EDE key operands follow Section IV-B: @c edkDef is the
 * dependence-producer key, @c edkUse the consumer key, and
 * @c edkUse2 the second consumer key (JOIN only).
 */
struct StaticInst
{
    Op op = Op::Nop;
    RegIndex dst = kNoReg;
    RegIndex src1 = kNoReg;
    RegIndex src2 = kNoReg;
    RegIndex base = kNoReg;
    Edk edkDef = kZeroEdk;
    Edk edkUse = kZeroEdk;
    Edk edkUse2 = kZeroEdk;
    std::uint8_t size = 0;   ///< Memory access size in bytes.
    std::int64_t imm = 0;    ///< Immediate / address displacement.

    /** True when this instruction produces an EDE dependence. */
    bool isEdeProducer() const { return edkIsReal(edkDef); }

    /** True when this instruction consumes an EDE dependence. */
    bool
    isEdeConsumer() const
    {
        return edkIsReal(edkUse) || edkIsReal(edkUse2);
    }

    /** True when any EDE key field is in use. */
    bool usesEde() const { return isEdeProducer() || isEdeConsumer(); }

    /** True when this instruction writes a general purpose register. */
    bool
    writesReg() const
    {
        return dst != kNoReg && dst != kZeroReg;
    }

    bool operator==(const StaticInst &) const = default;
};

/**
 * One element of a dynamic instruction stream.
 *
 * The trace layer resolves control flow and effective addresses, so a
 * DynInst carries the actual address touched, the value(s) a store
 * writes (used to keep the simulated NVM image functionally correct),
 * and the actual branch outcome (the predictor guesses, the outcome
 * decides squashes).
 */
struct DynInst
{
    StaticInst si;
    Addr pc = kNoAddr;        ///< Static PC of the emitting site.
    Addr addr = kNoAddr;      ///< Effective address (memory ops).
    std::uint64_t val0 = 0;   ///< Store data (first 8 bytes).
    std::uint64_t val1 = 0;   ///< Store data (second 8 bytes, STP).
    bool taken = false;       ///< Actual branch outcome.

    /** Convenience accessors that forward to the static part. */
    Op op() const { return si.op; }
    bool isLoad() const { return opIsLoad(si.op); }
    bool isStore() const { return opIsStore(si.op); }
    bool isCvap() const { return opIsCvap(si.op); }
    bool isMemRef() const { return opIsMemRef(si.op); }
    bool isFence() const { return opIsFence(si.op); }
    bool isBranch() const { return opIsBranch(si.op); }
    bool isEdeControl() const { return opIsEdeControl(si.op); }
    bool isEdeProducer() const { return si.isEdeProducer(); }
    bool isEdeConsumer() const { return si.isEdeConsumer(); }

    /**
     * True when the instruction occupies a write-buffer entry after
     * retirement: stores, cache-line writebacks and, in the WB
     * enforcement design, JOINs (Section V-D).
     */
    bool
    entersWriteBuffer() const
    {
        return isStore() || isCvap() || si.op == Op::Join;
    }
};

/** Render a static instruction in the paper's assembly syntax. */
std::string disassemble(const StaticInst &si);

/** Render a dynamic instruction, including its resolved address. */
std::string disassemble(const DynInst &di);

} // namespace ede

#endif // EDE_ISA_INST_HH
