/**
 * @file
 * Micro-op opcode classes for the AArch64-flavoured model ISA.
 *
 * The simulator executes dynamic micro-ops rather than encoded
 * AArch64; each opcode class carries the scheduling-relevant semantics
 * of the corresponding AArch64 instruction group.  EDE's new
 * instructions (Section IV-B of the paper) are first-class opcodes.
 */

#ifndef EDE_ISA_OPCODES_HH
#define EDE_ISA_OPCODES_HH

#include <cstdint>
#include <string_view>

namespace ede {

/** Opcode classes. */
enum class Op : std::uint8_t {
    Nop,         ///< No operation.
    IntAlu,      ///< Single-cycle integer op (add/sub/logical/cmp).
    IntMult,     ///< Multi-cycle integer multiply.
    Mov,         ///< Register/immediate move.
    Ldr,         ///< Load register from memory.
    Str,         ///< Store register to memory (EDE variant capable).
    Stp,         ///< Store pair, 16 bytes (EDE variant capable).
    DcCvap,      ///< Clean data cache line to point of persistence.
    DsbSy,       ///< Full data synchronization barrier.
    DmbSt,       ///< Store-only data memory barrier (like x86 SFENCE).
    Branch,      ///< Unconditional branch.
    BranchCond,  ///< Conditional branch.
    Join,        ///< EDE JOIN (EDKdef, EDKuse1, EDKuse2).
    WaitKey,     ///< EDE WAIT_KEY (EDK).
    WaitAllKeys, ///< EDE WAIT_ALL_KEYS.
    NumOps
};

/** Number of opcode classes. */
inline constexpr int kNumOps = static_cast<int>(Op::NumOps);

/** Mnemonic for an opcode class. */
std::string_view opName(Op op);

/** True for memory loads. */
constexpr bool
opIsLoad(Op op)
{
    return op == Op::Ldr;
}

/** True for memory stores (including the pairwise store). */
constexpr bool
opIsStore(Op op)
{
    return op == Op::Str || op == Op::Stp;
}

/** True for cache-line writebacks to the persistence point. */
constexpr bool
opIsCvap(Op op)
{
    return op == Op::DcCvap;
}

/** True for any instruction that references memory. */
constexpr bool
opIsMemRef(Op op)
{
    return opIsLoad(op) || opIsStore(op) || opIsCvap(op);
}

/** True for barrier/fence instructions. */
constexpr bool
opIsFence(Op op)
{
    return op == Op::DsbSy || op == Op::DmbSt;
}

/** True for control-transfer instructions. */
constexpr bool
opIsBranch(Op op)
{
    return op == Op::Branch || op == Op::BranchCond;
}

/** True for EDE's control instructions (Section IV-B2). */
constexpr bool
opIsEdeControl(Op op)
{
    return op == Op::Join || op == Op::WaitKey || op == Op::WaitAllKeys;
}

/**
 * True when the EDE memory-variant key fields are architecturally
 * permitted on this opcode.  The paper adds the (EDKdef, EDKuse)
 * variant to stores and cache-line writebacks only (Section IV-B1);
 * the load variant from the technical report is supported as a
 * future-work extension (Section VIII-C) and is exercised by the
 * hazard-pointer example.
 */
constexpr bool
opAllowsEdkOperands(Op op)
{
    return opIsStore(op) || opIsCvap(op) || opIsLoad(op) ||
           opIsEdeControl(op);
}

} // namespace ede

#endif // EDE_ISA_OPCODES_HH
