/**
 * @file
 * Physical address map: the hybrid DRAM + NVM split.
 *
 * Matching the paper's setup (Section VI-A), one controller fronts
 * both technologies and the physical address space is statically
 * split: [0, dramBytes) targets DRAM, [dramBytes, dramBytes +
 * nvmBytes) targets NVM.
 */

#ifndef EDE_MEM_ADDR_MAP_HH
#define EDE_MEM_ADDR_MAP_HH

#include "common/types.hh"

namespace ede {

/** Static DRAM/NVM address split. */
struct AddrMap
{
    Addr dramBytes = 2ull << 30;  ///< 2 GB of DRAM.
    Addr nvmBytes = 2ull << 30;   ///< 2 GB of NVM.

    /** First NVM byte address. */
    Addr nvmBase() const { return dramBytes; }

    /** One past the last valid address. */
    Addr limit() const { return dramBytes + nvmBytes; }

    /** True when @p addr targets the NVM region. */
    bool
    isNvm(Addr addr) const
    {
        return addr >= dramBytes && addr < limit();
    }

    /** True when @p addr targets the DRAM region. */
    bool isDram(Addr addr) const { return addr < dramBytes; }
};

} // namespace ede

#endif // EDE_MEM_ADDR_MAP_HH
