#include "mem/cache.hh"

#include <algorithm>

#include "common/logging.hh"

namespace ede {

Cache::Cache(CacheParams params, MemSink *below)
    : params_(std::move(params)), below_(below)
{
    ede_assert(below_, "cache '", params_.name, "' needs a level below");
    ede_assert((params_.lineBytes & (params_.lineBytes - 1)) == 0,
               "line size must be a power of two");
    mask_ = params_.lineBytes - 1;
    numSets_ = params_.sizeBytes / (params_.lineBytes * params_.assoc);
    ede_assert(numSets_ > 0, "cache '", params_.name, "' too small");
    lines_.resize(numSets_ * params_.assoc);
    mshrs_.resize(params_.mshrs);
}

std::size_t
Cache::setIndex(Addr line_addr) const
{
    return (line_addr / params_.lineBytes) % numSets_;
}

Cache::Line *
Cache::lookup(Addr addr)
{
    const Addr la = lineAddr(addr);
    const std::size_t set = setIndex(la);
    for (std::uint32_t w = 0; w < params_.assoc; ++w) {
        Line &line = lines_[set * params_.assoc + w];
        if (line.valid && line.tag == la)
            return &line;
    }
    return nullptr;
}

const Cache::Line *
Cache::lookup(Addr addr) const
{
    return const_cast<Cache *>(this)->lookup(addr);
}

void
Cache::preload(Addr addr, Cycle now, bool dirty)
{
    if (Line *line = lookup(addr))
        line->dirty = line->dirty || dirty;
    else
        installLine(lineAddr(addr), dirty, now);
}

SnoopResult
Cache::snoopInvalidate(Addr addr)
{
    Line *line = lookup(addr);
    if (!line)
        return SnoopResult::Miss;
    const bool was_dirty = line->dirty;
    line->valid = false;
    line->dirty = false;
    ++stats_.snoopInvalidations;
    return was_dirty ? SnoopResult::Dirty : SnoopResult::Clean;
}

SnoopResult
Cache::snoopDowngrade(Addr addr)
{
    Line *line = lookup(addr);
    if (!line)
        return SnoopResult::Miss;
    if (!line->dirty)
        return SnoopResult::Clean;
    line->dirty = false;
    ++stats_.snoopDowngrades;
    return SnoopResult::Dirty;
}

bool
Cache::probe(Addr addr) const
{
    return lookup(addr) != nullptr;
}

bool
Cache::probeDirty(Addr addr) const
{
    const Line *line = lookup(addr);
    return line && line->dirty;
}

bool
Cache::tryAccept(const MemReq &req, Cycle now)
{
    (void)now;
    if (inputQ_.size() >= params_.inputQueue) {
        ++stats_.rejects;
        return false;
    }
    inputQ_.push_back(req);
    return true;
}

Cache::Mshr *
Cache::findMshr(Addr line_addr)
{
    for (Mshr &m : mshrs_) {
        if (m.valid && m.lineAddr == line_addr)
            return &m;
    }
    return nullptr;
}

Cache::Mshr *
Cache::allocMshr(Addr line_addr)
{
    for (Mshr &m : mshrs_) {
        if (!m.valid) {
            m.valid = true;
            m.fillSent = false;
            m.lineAddr = line_addr;
            m.waiters.clear();
            return &m;
        }
    }
    return nullptr;
}

std::size_t
Cache::freeMshrCount() const
{
    std::size_t n = 0;
    for (const Mshr &m : mshrs_)
        if (!m.valid)
            ++n;
    return n;
}

void
Cache::scheduleResp(const MemResp &resp, Cycle due)
{
    respQ_.push(PendingResp{due, resp});
}

void
Cache::sendBelowOrRetry(const MemReq &req, Cycle now)
{
    if (!below_->tryAccept(req, now))
        retryQ_.push_back(req);
}

void
Cache::installLine(Addr line_addr, bool dirty, Cycle now)
{
    const std::size_t set = setIndex(line_addr);
    Line *victim = nullptr;
    for (std::uint32_t w = 0; w < params_.assoc; ++w) {
        Line &line = lines_[set * params_.assoc + w];
        if (!line.valid) {
            victim = &line;
            break;
        }
        if (!victim || line.lastUse < victim->lastUse)
            victim = &line;
    }
    if (victim->valid) {
        ++stats_.evictions;
        if (victim->dirty) {
            ++stats_.writebacks;
            MemReq wb;
            wb.id = kNoReq;
            wb.kind = ReqKind::Writeback;
            wb.addr = victim->tag;
            wb.size = static_cast<std::uint8_t>(
                std::min<std::uint32_t>(params_.lineBytes, 255));
            sendBelowOrRetry(wb, now);
        }
    }
    victim->valid = true;
    victim->dirty = dirty;
    victim->tag = line_addr;
    victim->lastUse = now;
}

void
Cache::processRequest(const MemReq &req, Cycle now)
{
    const Addr la = lineAddr(req.addr);
    switch (req.kind) {
      case ReqKind::Clean: {
        if (Line *line = lookup(req.addr)) {
            // Data (if any was dirty here) travels with the clean.
            line->dirty = false;
        }
        ++stats_.cleansForwarded;
        ++inFlightCleans_;
        MemReq fwd = req;
        fwd.addr = la;
        sendBelowOrRetry(fwd, now);
        return;
      }
      case ReqKind::Writeback: {
        if (Line *line = lookup(req.addr)) {
            line->dirty = true;
            line->lastUse = now;
            ++stats_.hits;
        } else {
            // The victim carries the whole line: allocate without fill.
            ++stats_.misses;
            installLine(la, /*dirty=*/true, now);
        }
        return;
      }
      case ReqKind::Read:
      case ReqKind::Write: {
        if (Line *line = lookup(req.addr)) {
            ++stats_.hits;
            line->lastUse = now;
            if (req.kind == ReqKind::Write)
                line->dirty = true;
            scheduleResp(MemResp{req.id, req.kind, req.addr, req.core},
                         now + params_.latency);
            return;
        }
        ++stats_.misses;
        if (Mshr *m = findMshr(la)) {
            ++stats_.mshrMerges;
            m->waiters.push_back(req);
            return;
        }
        Mshr *m = allocMshr(la);
        ede_assert(m, "allocMshr after freeMshrCount check");
        m->waiters.push_back(req);
        m->fillSent = true;
        MemReq fill;
        fill.id = kNoReq;
        fill.kind = ReqKind::Read;
        fill.addr = la;
        fill.size = static_cast<std::uint8_t>(
            std::min<std::uint32_t>(params_.lineBytes, 255));
        fill.core = req.core;
        sendBelowOrRetry(fill, now + params_.latency);
        return;
      }
    }
}

void
Cache::handleResp(const MemResp &resp, Cycle now)
{
    if (resp.kind == ReqKind::Clean) {
        ede_assert(inFlightCleans_ > 0,
                   params_.name, ": clean response with none in flight");
        --inFlightCleans_;
        respond_(resp, now);
        return;
    }

    // A returning line fill.
    ede_assert(resp.kind == ReqKind::Read,
               params_.name, ": unexpected response kind");
    Mshr *m = findMshr(lineAddr(resp.addr));
    ede_assert(m, params_.name, ": fill response without an MSHR for 0x",
               std::hex, resp.addr);
    bool any_write = false;
    for (const MemReq &w : m->waiters)
        any_write |= (w.kind == ReqKind::Write);
    installLine(m->lineAddr, any_write, now);
    for (const MemReq &w : m->waiters) {
        scheduleResp(MemResp{w.id, w.kind, w.addr, w.core},
                     now + params_.latency);
    }
    m->valid = false;
}

void
Cache::tick(Cycle now)
{
    // Deliver due responses upward.
    while (!respQ_.empty() && respQ_.top().due <= now) {
        MemResp resp = respQ_.top().resp;
        respQ_.pop();
        respond_(resp, now);
    }

    // Retry requests the level below refused earlier.
    while (!retryQ_.empty()) {
        if (!below_->tryAccept(retryQ_.front(), now))
            break;
        retryQ_.pop_front();
    }

    // Process new requests, up to the port limit.
    for (std::uint32_t p = 0; p < params_.ports && !inputQ_.empty(); ++p) {
        const MemReq req = inputQ_.front();
        // A miss needs either a matching MSHR or a free one; stall the
        // head of the queue otherwise (the fill path is saturated).
        if ((req.kind == ReqKind::Read || req.kind == ReqKind::Write) &&
            !lookup(req.addr) && !findMshr(lineAddr(req.addr)) &&
            freeMshrCount() == 0) {
            break;
        }
        inputQ_.pop_front();
        processRequest(req, now);
    }
}

bool
Cache::idle() const
{
    if (!inputQ_.empty() || !retryQ_.empty() || !respQ_.empty())
        return false;
    if (inFlightCleans_ > 0)
        return false;
    for (const Mshr &m : mshrs_)
        if (m.valid)
            return false;
    return true;
}

Cycle
Cache::nextEventCycle(Cycle now) const
{
    // Queued input and refused-retry work is reattempted every cycle,
    // and each attempt may mutate state below (including any
    // fault-injection hook's), so a tick with either queue non-empty
    // must actually execute.
    if (!inputQ_.empty() || !retryQ_.empty())
        return now;
    if (!respQ_.empty())
        return std::max(now, respQ_.top().due);
    return kNoCycle;
}

} // namespace ede
