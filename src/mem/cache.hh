/**
 * @file
 * Set-associative write-back cache timing model.
 *
 * Tags-only (functional data lives in MemoryImage).  Each cache is a
 * MemSink for the level above and forwards misses to the MemSink
 * below.  Misses allocate MSHRs (finite; full MSHRs exert
 * backpressure), fills install lines with LRU replacement, and dirty
 * victims generate Writeback requests to the level below.
 *
 * Clean requests (DC CVAP) clear the local dirty bit and always
 * propagate to the point of persistence; their response (persist
 * acknowledgement) flows straight back up the chain.
 */

#ifndef EDE_MEM_CACHE_HH
#define EDE_MEM_CACHE_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <queue>
#include <string>
#include <vector>

#include "common/types.hh"
#include "mem/req.hh"

namespace ede {

/** Downstream interface implemented by caches and the controller. */
class MemSink
{
  public:
    virtual ~MemSink() = default;

    /**
     * Offer a request; @return false when the component cannot accept
     * it this cycle (queue or MSHRs full) and the caller must retry.
     */
    virtual bool tryAccept(const MemReq &req, Cycle now) = 0;
};

/** Upward response callback. */
using RespFn = std::function<void(const MemResp &, Cycle)>;

/** Static cache parameters. */
struct CacheParams
{
    std::string name = "cache";
    std::uint32_t sizeBytes = 32 * 1024;
    std::uint32_t assoc = 2;
    std::uint32_t lineBytes = 64;
    Cycle latency = 1;          ///< Hit latency in cycles.
    std::uint32_t ports = 2;    ///< Requests processed per cycle.
    std::uint32_t mshrs = 8;    ///< Outstanding line fills.
    std::uint32_t inputQueue = 16;
};

/** Occupancy and outcome counters for one cache. */
struct CacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t mshrMerges = 0;
    std::uint64_t evictions = 0;
    std::uint64_t writebacks = 0;
    std::uint64_t cleansForwarded = 0;
    std::uint64_t rejects = 0;
    std::uint64_t snoopInvalidations = 0;  ///< Lines killed by peers.
    std::uint64_t snoopDowngrades = 0;     ///< Dirty lines cleaned by peers.
};

/** What a coherence snoop found in a peer cache. */
enum class SnoopResult
{
    Miss,   ///< The line was not present.
    Clean,  ///< Present and clean; invalidated/unchanged as requested.
    Dirty,  ///< Present and dirty; the owner must absorb the data.
};

/** One level of the hierarchy. */
class Cache : public MemSink
{
  public:
    /**
     * @param params static geometry/latency parameters
     * @param below  next level (cache or memory controller)
     */
    Cache(CacheParams params, MemSink *below);

    /** Install the callback receiving this cache's upward responses. */
    void setRespFn(RespFn fn) { respond_ = std::move(fn); }

    /** Deliver a response from the level below. */
    void handleResp(const MemResp &resp, Cycle now);

    /** Advance one cycle. */
    void tick(Cycle now);

    bool tryAccept(const MemReq &req, Cycle now) override;

    /** True when no request is in flight anywhere in this cache. */
    bool idle() const;

    /**
     * Skip-ahead hint: the earliest cycle >= @p now at which tick()
     * might change any state (deliver a response, retry a refused
     * request, process queued input).  kNoCycle when this cache is
     * guaranteed inert until new work arrives from outside.  Hints
     * may be conservatively early, never late (DESIGN.md section 10).
     */
    Cycle nextEventCycle(Cycle now) const;

    /** Statistics. */
    const CacheStats &stats() const { return stats_; }

    /**
     * Functional warmup: install the line without generating any
     * traffic (clean by default).  A present line only gains, never
     * loses, its dirty bit.  Used for pre-run pool initialization and
     * by the coherence point to absorb a snooped-out dirty copy.
     */
    void preload(Addr addr, Cycle now = 0, bool dirty = false);

    /**
     * @name Coherence snoops (MESI-ish, at the shared-cache boundary).
     *
     * Instantaneous tag-side operations MemSystem applies to *peer*
     * L1s when a request from another core enters the coherence
     * point.  They never generate traffic themselves; when a dirty
     * copy is found (SnoopResult::Dirty) the caller is responsible
     * for making the data's home level dirty (the modelled
     * cache-to-cache transfer).  Lines still being filled (MSHR in
     * flight) are untouched: the snoop is observed at input-queue
     * entry, before the fill completes -- a documented simplification
     * of a real transient-state protocol.
     */
    /// @{
    /** A peer write: drop the line entirely (M/E/S -> I). */
    SnoopResult snoopInvalidate(Addr addr);

    /** A peer read/clean: keep the line but clear dirty (M/E -> S). */
    SnoopResult snoopDowngrade(Addr addr);
    /// @}

    /** Tag lookup (tests): true when the line is cached. */
    bool probe(Addr addr) const;

    /** Tag lookup (tests): true when the line is cached dirty. */
    bool probeDirty(Addr addr) const;

    /** Static parameters. */
    const CacheParams &params() const { return params_; }

  private:
    struct Line
    {
        bool valid = false;
        bool dirty = false;
        Addr tag = 0;
        Cycle lastUse = 0;
    };

    struct Mshr
    {
        bool valid = false;
        bool fillSent = false;
        Addr lineAddr = 0;
        std::vector<MemReq> waiters;
    };

    struct PendingResp
    {
        Cycle due;
        MemResp resp;
        bool operator>(const PendingResp &o) const { return due > o.due; }
    };

    Addr lineAddr(Addr a) const { return a & ~static_cast<Addr>(mask_); }
    std::size_t setIndex(Addr line_addr) const;

    Line *lookup(Addr addr);
    const Line *lookup(Addr addr) const;
    void processRequest(const MemReq &req, Cycle now);
    void installLine(Addr line_addr, bool dirty, Cycle now);
    Mshr *findMshr(Addr line_addr);
    Mshr *allocMshr(Addr line_addr);
    std::size_t freeMshrCount() const;
    void scheduleResp(const MemResp &resp, Cycle due);
    void sendBelowOrRetry(const MemReq &req, Cycle now);

    CacheParams params_;
    MemSink *below_;
    RespFn respond_;

    std::uint32_t mask_;
    std::size_t numSets_;
    std::vector<Line> lines_;   ///< numSets x assoc, row-major.

    std::deque<MemReq> inputQ_;
    std::deque<MemReq> retryQ_; ///< Requests below_ refused to accept.
    std::vector<Mshr> mshrs_;
    std::priority_queue<PendingResp, std::vector<PendingResp>,
                        std::greater<PendingResp>> respQ_;
    std::uint64_t inFlightCleans_ = 0;

    CacheStats stats_;
};

} // namespace ede

#endif // EDE_MEM_CACHE_HH
