#include "mem/controller.hh"

#include <algorithm>

#include "common/logging.hh"

namespace ede {

namespace {

bool
isWriteClass(const MemReq &req)
{
    return req.kind == ReqKind::Writeback || req.kind == ReqKind::Clean;
}

} // namespace

MemController::MemController(AddrMap map, DramParams dram, NvmParams nvm)
    : map_(map), dram_(dram), nvm_(nvm)
{
}

bool
MemController::tryAccept(const MemReq &req, Cycle now)
{
    if (req.addr >= map_.limit()) {
        ede_panic("request beyond physical memory: 0x", std::hex,
                  req.addr);
    }
    if (map_.isNvm(req.addr)) {
        if (isWriteClass(req) && !retryQ_.empty()) {
            // Preserve write order behind earlier transient rejects.
            if (retryQ_.size() >= kRetryDepth)
                return false;
            retryQ_.push_back(req);
            return true;
        }
        if (nvm_.tryAccept(req, now))
            return true;
        if (isWriteClass(req) && nvm_.lastRejectTransient() &&
            retryQ_.size() < kRetryDepth) {
            retryQ_.push_back(req);
            backoff_ = kRetryBase;
            nextRetry_ = now + backoff_;
            return true;
        }
        return false;
    }

    // DRAM side: a Clean has nothing durable to do; acknowledge it at
    // the controller boundary.
    if (req.kind == ReqKind::Clean) {
        immediate_.push_back(MemResp{req.id, ReqKind::Clean, req.addr,
                                     req.core});
        return true;
    }
    return dram_.tryAccept(req, now);
}

void
MemController::drainRetries(Cycle now)
{
    while (!retryQ_.empty() && nextRetry_ <= now) {
        if (nvm_.tryAccept(retryQ_.front(), now)) {
            retryQ_.pop_front();
            backoff_ = kRetryBase;
        } else {
            backoff_ = std::min(kRetryMax, backoff_ * 2);
            nextRetry_ = now + backoff_;
            break;
        }
    }
}

void
MemController::tick(Cycle now)
{
    drainRetries(now);
    scratch_.clear();
    dram_.tick(now, scratch_);
    nvm_.tick(now, scratch_);
    for (const MemResp &resp : immediate_)
        scratch_.push_back(resp);
    immediate_.clear();
    for (const MemResp &resp : scratch_) {
        // Silent completions (evictions) carry no requester.
        if (resp.kind == ReqKind::Writeback && resp.id == kNoReq)
            continue;
        respond_(resp, now);
    }
}

bool
MemController::idle() const
{
    return dram_.idle() && nvm_.idle() && immediate_.empty() &&
           retryQ_.empty();
}

Cycle
MemController::nextEventCycle(Cycle now) const
{
    Cycle next = std::min(dram_.nextEventCycle(now),
                          nvm_.nextEventCycle(now));
    if (!immediate_.empty())
        next = std::min(next, now);
    // Retry attempts mutate the backoff schedule (and may consult a
    // fault-injection hook), so every attempt cycle must execute.
    if (!retryQ_.empty())
        next = std::min(next, std::max(now, nextRetry_));
    return next;
}

} // namespace ede
