#include "mem/controller.hh"

#include "common/logging.hh"

namespace ede {

MemController::MemController(AddrMap map, DramParams dram, NvmParams nvm)
    : map_(map), dram_(dram), nvm_(nvm)
{
}

bool
MemController::tryAccept(const MemReq &req, Cycle now)
{
    if (req.addr >= map_.limit()) {
        ede_panic("request beyond physical memory: 0x", std::hex,
                  req.addr);
    }
    if (map_.isNvm(req.addr))
        return nvm_.tryAccept(req, now);

    // DRAM side: a Clean has nothing durable to do; acknowledge it at
    // the controller boundary.
    if (req.kind == ReqKind::Clean) {
        immediate_.push_back(MemResp{req.id, ReqKind::Clean, req.addr});
        return true;
    }
    return dram_.tryAccept(req, now);
}

void
MemController::tick(Cycle now)
{
    scratch_.clear();
    dram_.tick(now, scratch_);
    nvm_.tick(now, scratch_);
    for (const MemResp &resp : immediate_)
        scratch_.push_back(resp);
    immediate_.clear();
    for (const MemResp &resp : scratch_) {
        // Silent completions (evictions) carry no requester.
        if (resp.kind == ReqKind::Writeback && resp.id == kNoReq)
            continue;
        respond_(resp, now);
    }
}

bool
MemController::idle() const
{
    return dram_.idle() && nvm_.idle() && immediate_.empty();
}

} // namespace ede
