/**
 * @file
 * Hybrid memory controller fronting DRAM and NVM.
 *
 * One controller receives all requests below the LLC and routes them
 * by physical address (Section VI-A).  Cleans addressed to DRAM
 * complete immediately at the controller: with ADR, the controller
 * queues are already inside the persistence domain and DRAM data is
 * not expected to survive anyway.
 *
 * Write-class NVM requests the device rejects *transiently* (the
 * fault campaign's injected accept failures) are absorbed into a
 * small controller-side FIFO and re-offered with exponential backoff,
 * so a flaky DIMM interface degrades bandwidth instead of wedging the
 * LLC.  Buffer-full rejections keep the original bounce-to-LLC path
 * untouched; with no fault hook installed the queue never fills and
 * timing is identical to the fault-free model.
 */

#ifndef EDE_MEM_CONTROLLER_HH
#define EDE_MEM_CONTROLLER_HH

#include <cstddef>
#include <deque>
#include <vector>

#include "mem/addr_map.hh"
#include "mem/cache.hh"
#include "mem/dram.hh"
#include "mem/nvm.hh"

namespace ede {

/** Routes requests to the DRAM or NVM device by address. */
class MemController : public MemSink
{
  public:
    MemController(AddrMap map, DramParams dram, NvmParams nvm);

    bool tryAccept(const MemReq &req, Cycle now) override;

    /** Install the callback receiving responses (to the LLC). */
    void setRespFn(RespFn fn) { respond_ = std::move(fn); }

    /** Advance one cycle. */
    void tick(Cycle now);

    /** True when both devices are drained. */
    bool idle() const;

    /**
     * Skip-ahead hint: the minimum of the device hints, the pending
     * immediate responses, and the retry-queue backoff deadline.
     */
    Cycle nextEventCycle(Cycle now) const;

    /** Device access for stats and hooks. */
    NvmDevice &nvm() { return nvm_; }
    const NvmDevice &nvm() const { return nvm_; }
    DramDevice &dram() { return dram_; }
    const DramDevice &dram() const { return dram_; }
    const AddrMap &addrMap() const { return map_; }

    /** Write-class requests waiting out a transient NVM fault. */
    std::size_t retryPending() const { return retryQ_.size(); }

  private:
    /** Bound on absorbed transient rejects before back-pressuring. */
    static constexpr std::size_t kRetryDepth = 16;
    static constexpr Cycle kRetryBase = 4;   ///< First re-offer delay.
    static constexpr Cycle kRetryMax = 512;  ///< Backoff ceiling.

    void drainRetries(Cycle now);

    AddrMap map_;
    DramDevice dram_;
    NvmDevice nvm_;
    RespFn respond_;
    std::vector<MemResp> immediate_;
    std::vector<MemResp> scratch_;
    std::deque<MemReq> retryQ_;  ///< Transiently rejected NVM writes.
    Cycle nextRetry_ = 0;
    Cycle backoff_ = kRetryBase;
};

} // namespace ede

#endif // EDE_MEM_CONTROLLER_HH
