/**
 * @file
 * Hybrid memory controller fronting DRAM and NVM.
 *
 * One controller receives all requests below the LLC and routes them
 * by physical address (Section VI-A).  Cleans addressed to DRAM
 * complete immediately at the controller: with ADR, the controller
 * queues are already inside the persistence domain and DRAM data is
 * not expected to survive anyway.
 */

#ifndef EDE_MEM_CONTROLLER_HH
#define EDE_MEM_CONTROLLER_HH

#include <vector>

#include "mem/addr_map.hh"
#include "mem/cache.hh"
#include "mem/dram.hh"
#include "mem/nvm.hh"

namespace ede {

/** Routes requests to the DRAM or NVM device by address. */
class MemController : public MemSink
{
  public:
    MemController(AddrMap map, DramParams dram, NvmParams nvm);

    bool tryAccept(const MemReq &req, Cycle now) override;

    /** Install the callback receiving responses (to the LLC). */
    void setRespFn(RespFn fn) { respond_ = std::move(fn); }

    /** Advance one cycle. */
    void tick(Cycle now);

    /** True when both devices are drained. */
    bool idle() const;

    /** Device access for stats and hooks. */
    NvmDevice &nvm() { return nvm_; }
    const NvmDevice &nvm() const { return nvm_; }
    DramDevice &dram() { return dram_; }
    const DramDevice &dram() const { return dram_; }
    const AddrMap &addrMap() const { return map_; }

  private:
    AddrMap map_;
    DramDevice dram_;
    NvmDevice nvm_;
    RespFn respond_;
    std::vector<MemResp> immediate_;
    std::vector<MemResp> scratch_;
};

} // namespace ede

#endif // EDE_MEM_CONTROLLER_HH
