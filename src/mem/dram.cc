#include "mem/dram.hh"

#include <algorithm>

namespace ede {

DramDevice::DramDevice(DramParams params) : params_(params)
{
    banks_.resize(params_.banks);
}

std::size_t
DramDevice::bankIndex(Addr addr) const
{
    return (addr / params_.rowBytes) % params_.banks;
}

Addr
DramDevice::rowIndex(Addr addr) const
{
    return addr / (static_cast<Addr>(params_.rowBytes) * params_.banks);
}

bool
DramDevice::tryAccept(const MemReq &req, Cycle now)
{
    (void)now;
    if (queue_.size() >= params_.queueDepth) {
        ++stats_.rejects;
        return false;
    }
    queue_.push_back(req);
    return true;
}

void
DramDevice::tick(Cycle now, std::vector<MemResp> &out)
{
    while (!completions_.empty() && completions_.top().due <= now) {
        const Pending &p = completions_.top();
        if (p.resp.id != kNoReq || p.resp.kind == ReqKind::Read) {
            out.push_back(p.resp);
        } else {
            --inFlightWrites_;
        }
        completions_.pop();
    }

    // FCFS with bank-availability bypass: issue the first request in
    // the queue whose bank and the shared bus are both free.
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
        Bank &bank = banks_[bankIndex(it->addr)];
        if (bank.busyUntil > now || busBusyUntil_ > now)
            continue;
        const Addr row = rowIndex(it->addr);
        Cycle lat;
        if (bank.rowOpen && bank.openRow == row) {
            ++stats_.rowHits;
            lat = params_.rowHit;
        } else {
            ++stats_.rowMisses;
            lat = params_.rowMiss;
            bank.rowOpen = true;
            bank.openRow = row;
        }
        const Cycle done = now + lat + params_.busBurst;
        bank.busyUntil = now + lat;
        busBusyUntil_ = now + params_.busBurst;
        if (it->kind == ReqKind::Read) {
            ++stats_.reads;
            completions_.push(Pending{done, MemResp{it->id, it->kind,
                                                    it->addr, it->core}});
        } else {
            // Writebacks complete silently when the burst lands.
            ++stats_.writes;
            ++inFlightWrites_;
            completions_.push(Pending{done, MemResp{kNoReq,
                                                    ReqKind::Writeback,
                                                    it->addr}});
        }
        queue_.erase(it);
        break;
    }
}

bool
DramDevice::idle() const
{
    return queue_.empty() && completions_.empty();
}

Cycle
DramDevice::nextEventCycle(Cycle now) const
{
    Cycle next = kNoCycle;
    if (!completions_.empty())
        next = std::min(next, std::max(now, completions_.top().due));
    // A queued request issues once its bank and the data bus are both
    // free; tick() picks the first such request in FCFS order, so the
    // earliest ready time over the queue bounds the next issue.
    for (const MemReq &req : queue_) {
        const Bank &bank = banks_[bankIndex(req.addr)];
        const Cycle ready = std::max(bank.busyUntil, busBusyUntil_);
        next = std::min(next, std::max(now, ready));
    }
    return next;
}

} // namespace ede
