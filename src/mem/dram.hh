/**
 * @file
 * DDR4-2400-like DRAM device timing model.
 *
 * Open-page policy with per-bank row buffers: a request to the open
 * row pays the column access latency, anything else pays
 * precharge+activate+column.  Bank count matches Table I (2 ranks x
 * 16 banks behind one channel).  All latencies are in core cycles
 * (3 GHz core).
 */

#ifndef EDE_MEM_DRAM_HH
#define EDE_MEM_DRAM_HH

#include <cstdint>
#include <deque>
#include <queue>
#include <vector>

#include "common/types.hh"
#include "mem/req.hh"

namespace ede {

/** DRAM timing/geometry parameters. */
struct DramParams
{
    std::uint32_t banks = 32;        ///< 2 ranks x 16 banks.
    std::uint32_t rowBytes = 2048;   ///< Row buffer size.
    Cycle rowHit = 45;               ///< ~15 ns column access.
    Cycle rowMiss = 135;             ///< ~45 ns pre+act+cas.
    Cycle busBurst = 10;             ///< ~3.3 ns for a 64 B burst.
    std::uint32_t queueDepth = 32;
};

/** DRAM counters. */
struct DramStats
{
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t rowHits = 0;
    std::uint64_t rowMisses = 0;
    std::uint64_t rejects = 0;
};

/** One DRAM channel with banked row buffers. */
class DramDevice
{
  public:
    explicit DramDevice(DramParams params = {});

    /** Offer a request; false when the queue is full. */
    bool tryAccept(const MemReq &req, Cycle now);

    /** Advance one cycle; completed reads are pushed to @p out. */
    void tick(Cycle now, std::vector<MemResp> &out);

    /** True when nothing is queued or in flight. */
    bool idle() const;

    /**
     * Skip-ahead hint: earliest cycle >= @p now at which tick() might
     * complete a pending access or issue a queued request (a bank and
     * the bus become free).  kNoCycle when fully drained.
     */
    Cycle nextEventCycle(Cycle now) const;

    const DramStats &stats() const { return stats_; }

  private:
    struct Bank
    {
        bool rowOpen = false;
        Addr openRow = 0;
        Cycle busyUntil = 0;
    };

    struct Pending
    {
        Cycle due;
        MemResp resp;
        bool operator>(const Pending &o) const { return due > o.due; }
    };

    std::size_t bankIndex(Addr addr) const;
    Addr rowIndex(Addr addr) const;

    DramParams params_;
    std::vector<Bank> banks_;
    std::deque<MemReq> queue_;
    std::priority_queue<Pending, std::vector<Pending>,
                        std::greater<Pending>> completions_;
    Cycle busBusyUntil_ = 0;
    std::uint64_t inFlightWrites_ = 0;
    DramStats stats_;
};

} // namespace ede

#endif // EDE_MEM_DRAM_HH
