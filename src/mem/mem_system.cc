#include "mem/mem_system.hh"

#include <algorithm>

#include "common/logging.hh"

namespace ede {

MemSystem::MemSystem(MemSystemParams params) : params_(std::move(params))
{
    ctrl_ = std::make_unique<MemController>(params_.map, params_.dram,
                                            params_.nvm);
    l3_ = std::make_unique<Cache>(params_.l3, ctrl_.get());
    l2_ = std::make_unique<Cache>(params_.l2, l3_.get());
    l1d_ = std::make_unique<Cache>(params_.l1d, l2_.get());

    ctrl_->setRespFn([this](const MemResp &r, Cycle now) {
        l3_->handleResp(r, now);
    });
    l3_->setRespFn([this](const MemResp &r, Cycle now) {
        l2_->handleResp(r, now);
    });
    l2_->setRespFn([this](const MemResp &r, Cycle now) {
        l1d_->handleResp(r, now);
    });
    l1d_->setRespFn([this](const MemResp &r, Cycle) {
        if (r.id != kNoReq)
            done_.insert(r.id);
    });
}

std::optional<ReqId>
MemSystem::send(ReqKind kind, Addr addr, std::uint8_t size, Cycle now,
                TraceIndex origin)
{
    MemReq req;
    req.id = nextId_;
    req.kind = kind;
    req.addr = addr;
    req.size = size;
    req.origin = origin;
    if (!l1d_->tryAccept(req, now))
        return std::nullopt;
    ++nextId_;
    return req.id;
}

std::optional<ReqId>
MemSystem::sendLoad(Addr addr, std::uint8_t size, Cycle now)
{
    return send(ReqKind::Read, addr, size, now);
}

std::optional<ReqId>
MemSystem::sendStore(Addr addr, std::uint8_t size, Cycle now,
                     TraceIndex origin)
{
    return send(ReqKind::Write, addr, size, now, origin);
}

std::optional<ReqId>
MemSystem::sendClean(Addr addr, Cycle now, TraceIndex origin)
{
    return send(ReqKind::Clean, addr, 64, now, origin);
}

bool
MemSystem::consumeDone(ReqId id)
{
    return done_.erase(id) > 0;
}

void
MemSystem::warmLine(Addr addr, int level)
{
    l3_->preload(addr);
    if (level <= 2)
        l2_->preload(addr);
    if (level <= 1)
        l1d_->preload(addr);
}

void
MemSystem::tick(Cycle now)
{
    ctrl_->tick(now);
    l3_->tick(now);
    l2_->tick(now);
    l1d_->tick(now);
}

bool
MemSystem::idle() const
{
    return ctrl_->idle() && l3_->idle() && l2_->idle() && l1d_->idle();
}

Cycle
MemSystem::nextEventCycle(Cycle now) const
{
    // An unconsumed completion means the core acts on it next poll.
    if (!done_.empty())
        return now;
    return std::min(std::min(l1d_->nextEventCycle(now),
                             l2_->nextEventCycle(now)),
                    std::min(l3_->nextEventCycle(now),
                             ctrl_->nextEventCycle(now)));
}

} // namespace ede
