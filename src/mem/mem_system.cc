#include "mem/mem_system.hh"

#include <algorithm>

#include "common/logging.hh"

namespace ede {

MemSystem::MemSystem(MemSystemParams params, unsigned coreCount)
    : params_(std::move(params))
{
    ede_assert(coreCount >= 1, "a hierarchy needs at least one core");
    ctrl_ = std::make_unique<MemController>(params_.map, params_.dram,
                                            params_.nvm);
    l3_ = std::make_unique<Cache>(params_.l3, ctrl_.get());
    l2_ = std::make_unique<Cache>(params_.l2, l3_.get());
    l1ds_.reserve(coreCount);
    for (unsigned c = 0; c < coreCount; ++c) {
        CacheParams p = params_.l1d;
        if (coreCount > 1)
            p.name = params_.l1d.name + "." + std::to_string(c);
        l1ds_.push_back(std::make_unique<Cache>(p, l2_.get()));
    }

    ctrl_->setRespFn([this](const MemResp &r, Cycle now) {
        l3_->handleResp(r, now);
    });
    l3_->setRespFn([this](const MemResp &r, Cycle now) {
        l2_->handleResp(r, now);
    });
    l2_->setRespFn([this](const MemResp &r, Cycle now) {
        // Responses crossing the coherence point carry the core that
        // asked; dirty-eviction acknowledgements (no waiting core)
        // default to 0, which is always a valid L1.
        l1ds_.at(r.core)->handleResp(r, now);
    });
    for (auto &l1 : l1ds_) {
        l1->setRespFn([this](const MemResp &r, Cycle) {
            if (r.id != kNoReq)
                done_.insert(r.id);
        });
    }
}

void
MemSystem::snoopPeers(const MemReq &req, Cycle now)
{
    ++coherence_.snoops;
    for (unsigned c = 0; c < l1ds_.size(); ++c) {
        if (c == req.core)
            continue;
        Cache &peer = *l1ds_[c];
        const SnoopResult r = req.kind == ReqKind::Write
            ? peer.snoopInvalidate(req.addr)
            : peer.snoopDowngrade(req.addr);
        if (r == SnoopResult::Miss)
            continue;
        if (req.kind == ReqKind::Write)
            ++coherence_.invalidations;
        else
            ++coherence_.downgrades;
        if (r == SnoopResult::Dirty) {
            // The modelled cache-to-cache transfer: the snooped-out
            // dirty data lands at the coherence point, so the
            // requester's fill (and any later writeback) sees it
            // there instead of racing the peer's eviction.
            ++coherence_.dirtyHandoffs;
            l2_->preload(req.addr, now, /*dirty=*/true);
        }
    }
}

std::optional<ReqId>
MemSystem::send(ReqKind kind, Addr addr, std::uint8_t size, Cycle now,
                TraceIndex origin, unsigned core)
{
    MemReq req;
    req.id = nextId_;
    req.kind = kind;
    req.addr = addr;
    req.size = size;
    req.origin = origin;
    req.core = core;
    if (!l1ds_.at(core)->tryAccept(req, now))
        return std::nullopt;
    if (l1ds_.size() > 1)
        snoopPeers(req, now);
    ++nextId_;
    return req.id;
}

std::optional<ReqId>
MemSystem::sendLoad(Addr addr, std::uint8_t size, Cycle now,
                    unsigned core)
{
    return send(ReqKind::Read, addr, size, now, kNoOrigin, core);
}

std::optional<ReqId>
MemSystem::sendStore(Addr addr, std::uint8_t size, Cycle now,
                     TraceIndex origin, unsigned core)
{
    return send(ReqKind::Write, addr, size, now, origin, core);
}

std::optional<ReqId>
MemSystem::sendClean(Addr addr, Cycle now, TraceIndex origin,
                     unsigned core)
{
    return send(ReqKind::Clean, addr, 64, now, origin, core);
}

bool
MemSystem::consumeDone(ReqId id)
{
    return done_.erase(id) > 0;
}

void
MemSystem::warmLine(Addr addr, int level)
{
    l3_->preload(addr);
    if (level <= 2)
        l2_->preload(addr);
    if (level <= 1) {
        for (auto &l1 : l1ds_)
            l1->preload(addr);
    }
}

void
MemSystem::tick(Cycle now)
{
    ctrl_->tick(now);
    l3_->tick(now);
    l2_->tick(now);
    for (auto &l1 : l1ds_)
        l1->tick(now);
}

bool
MemSystem::idle() const
{
    if (!ctrl_->idle() || !l3_->idle() || !l2_->idle())
        return false;
    for (const auto &l1 : l1ds_) {
        if (!l1->idle())
            return false;
    }
    return true;
}

Cycle
MemSystem::nextEventCycle(Cycle now) const
{
    // An unconsumed completion means a core acts on it next poll.
    if (!done_.empty())
        return now;
    Cycle next = std::min(l2_->nextEventCycle(now),
                          std::min(l3_->nextEventCycle(now),
                                   ctrl_->nextEventCycle(now)));
    for (const auto &l1 : l1ds_)
        next = std::min(next, l1->nextEventCycle(now));
    return next;
}

} // namespace ede
