/**
 * @file
 * Core-facing memory hierarchy: per-core private L1Ds -> shared
 * L2 -> L3 -> controller.
 *
 * Each pipeline issues loads, store drains and cleans here and polls
 * for completion by request id.  Instruction fetch is modelled as
 * always hitting (the evaluated kernels fit comfortably in the 32 KB
 * L1I), which matches the data-bound behaviour of the paper's
 * workloads; the L1I parameters remain in the Table I printout for
 * completeness.
 *
 * With more than one core the L2 is the coherence point: every
 * request entering it from core i snoops the other cores' private
 * L1s MESI-style (writes invalidate peer copies, reads and cleans
 * downgrade them), and a snooped-out dirty copy is absorbed into the
 * L2 as the modelled cache-to-cache transfer.  Snoops act on the tag
 * arrays instantaneously at send time -- transient protocol states
 * are deliberately not modelled.  A single-core hierarchy never
 * executes any snoop code and is cycle-identical to the historical
 * one-L1 layout.
 */

#ifndef EDE_MEM_MEM_SYSTEM_HH
#define EDE_MEM_MEM_SYSTEM_HH

#include <memory>
#include <optional>
#include <unordered_set>
#include <vector>

#include "mem/cache.hh"
#include "mem/controller.hh"

namespace ede {

/** Aggregate parameters for the whole hierarchy (Table I defaults). */
struct MemSystemParams
{
    CacheParams l1d{"l1d", 48 * 1024, 3, 64, 1, 2, 8, 16};
    CacheParams l2{"l2", 256 * 1024, 16, 64, 12, 1, 16, 16};
    CacheParams l3{"l3", 1024 * 1024, 16, 64, 20, 1, 16, 16};
    DramParams dram{};
    NvmParams nvm{};
    AddrMap map{};
};

/** Coherence-point counters (all zero on a single-core hierarchy). */
struct CoherenceStats
{
    std::uint64_t snoops = 0;             ///< Requests that snooped peers.
    std::uint64_t invalidations = 0;      ///< Peer lines dropped.
    std::uint64_t downgrades = 0;         ///< Peer dirty bits cleared.
    std::uint64_t dirtyHandoffs = 0;      ///< Dirty copies absorbed by L2.
};

/** The assembled hierarchy. */
class MemSystem
{
  public:
    /** @param coreCount number of private L1Ds above the shared L2. */
    explicit MemSystem(MemSystemParams params = {},
                       unsigned coreCount = 1);

    /** @name Core request interface.
     *  Each returns the request id, or std::nullopt when the issuing
     *  core's L1D cannot accept this cycle (backpressure; retry
     *  later).
     */
    /// @{
    std::optional<ReqId> sendLoad(Addr addr, std::uint8_t size, Cycle now,
                                  unsigned core = 0);
    std::optional<ReqId> sendStore(Addr addr, std::uint8_t size, Cycle now,
                                   TraceIndex origin = kNoOrigin,
                                   unsigned core = 0);
    std::optional<ReqId> sendClean(Addr addr, Cycle now,
                                   TraceIndex origin = kNoOrigin,
                                   unsigned core = 0);
    /// @}

    /** Consume a completion: true exactly once per finished request. */
    bool consumeDone(ReqId id);

    /**
     * Functional warmup: make @p addr's line resident (clean) in the
     * hierarchy down to @p level (1 = L1D..L3).  Level 1 warms every
     * core's private L1.  Pre-run use only.
     */
    void warmLine(Addr addr, int level);

    /** Advance one cycle. */
    void tick(Cycle now);

    /** True when every component is drained. */
    bool idle() const;

    /**
     * Skip-ahead hint: earliest cycle >= @p now at which any level of
     * the hierarchy might change state.  kNoCycle when the whole
     * hierarchy is inert until a core sends a new request.
     */
    Cycle nextEventCycle(Cycle now) const;

    /** Unconsumed completions (skip-ahead safety check). */
    bool hasPendingDone() const { return !done_.empty(); }

    /** @name Component access (stats, hooks, tests). */
    /// @{
    Cache &l1d(unsigned core = 0) { return *l1ds_.at(core); }
    Cache &l2() { return *l2_; }
    Cache &l3() { return *l3_; }
    const Cache &l1d(unsigned core = 0) const { return *l1ds_.at(core); }
    const Cache &l2() const { return *l2_; }
    const Cache &l3() const { return *l3_; }
    MemController &controller() { return *ctrl_; }
    const MemController &controller() const { return *ctrl_; }
    const MemSystemParams &params() const { return params_; }
    unsigned coreCount() const
    {
        return static_cast<unsigned>(l1ds_.size());
    }
    const CoherenceStats &coherenceStats() const { return coherence_; }
    /// @}

  private:
    std::optional<ReqId> send(ReqKind kind, Addr addr, std::uint8_t size,
                              Cycle now, TraceIndex origin, unsigned core);

    /** MESI-ish snoop of every peer L1 when @p req enters core i's. */
    void snoopPeers(const MemReq &req, Cycle now);

    MemSystemParams params_;
    std::unique_ptr<MemController> ctrl_;
    std::unique_ptr<Cache> l3_;
    std::unique_ptr<Cache> l2_;
    std::vector<std::unique_ptr<Cache>> l1ds_;  ///< One per core.
    std::unordered_set<ReqId> done_;
    ReqId nextId_ = 1;
    CoherenceStats coherence_;
};

} // namespace ede

#endif // EDE_MEM_MEM_SYSTEM_HH
