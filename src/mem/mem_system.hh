/**
 * @file
 * Core-facing memory hierarchy: L1D -> L2 -> L3 -> controller.
 *
 * The pipeline issues loads, store drains and cleans here and polls
 * for completion by request id.  Instruction fetch is modelled as
 * always hitting (the evaluated kernels fit comfortably in the 32 KB
 * L1I), which matches the data-bound behaviour of the paper's
 * workloads; the L1I parameters remain in the Table I printout for
 * completeness.
 */

#ifndef EDE_MEM_MEM_SYSTEM_HH
#define EDE_MEM_MEM_SYSTEM_HH

#include <memory>
#include <optional>
#include <unordered_set>

#include "mem/cache.hh"
#include "mem/controller.hh"

namespace ede {

/** Aggregate parameters for the whole hierarchy (Table I defaults). */
struct MemSystemParams
{
    CacheParams l1d{"l1d", 48 * 1024, 3, 64, 1, 2, 8, 16};
    CacheParams l2{"l2", 256 * 1024, 16, 64, 12, 1, 16, 16};
    CacheParams l3{"l3", 1024 * 1024, 16, 64, 20, 1, 16, 16};
    DramParams dram{};
    NvmParams nvm{};
    AddrMap map{};
};

/** The assembled hierarchy. */
class MemSystem
{
  public:
    explicit MemSystem(MemSystemParams params = {});

    /** @name Core request interface.
     *  Each returns the request id, or std::nullopt when the L1D
     *  cannot accept this cycle (backpressure; retry later).
     */
    /// @{
    std::optional<ReqId> sendLoad(Addr addr, std::uint8_t size, Cycle now);
    std::optional<ReqId> sendStore(Addr addr, std::uint8_t size, Cycle now,
                                   TraceIndex origin = kNoOrigin);
    std::optional<ReqId> sendClean(Addr addr, Cycle now,
                                   TraceIndex origin = kNoOrigin);
    /// @}

    /** Consume a completion: true exactly once per finished request. */
    bool consumeDone(ReqId id);

    /**
     * Functional warmup: make @p addr's line resident (clean) in the
     * hierarchy down to @p level (1 = L1D..L3).  Pre-run use only.
     */
    void warmLine(Addr addr, int level);

    /** Advance one cycle. */
    void tick(Cycle now);

    /** True when every component is drained. */
    bool idle() const;

    /**
     * Skip-ahead hint: earliest cycle >= @p now at which any level of
     * the hierarchy might change state.  kNoCycle when the whole
     * hierarchy is inert until the core sends a new request.
     */
    Cycle nextEventCycle(Cycle now) const;

    /** Unconsumed completions (skip-ahead safety check). */
    bool hasPendingDone() const { return !done_.empty(); }

    /** @name Component access (stats, hooks, tests). */
    /// @{
    Cache &l1d() { return *l1d_; }
    Cache &l2() { return *l2_; }
    Cache &l3() { return *l3_; }
    const Cache &l1d() const { return *l1d_; }
    const Cache &l2() const { return *l2_; }
    const Cache &l3() const { return *l3_; }
    MemController &controller() { return *ctrl_; }
    const MemController &controller() const { return *ctrl_; }
    const MemSystemParams &params() const { return params_; }
    /// @}

  private:
    std::optional<ReqId> send(ReqKind kind, Addr addr, std::uint8_t size,
                              Cycle now, TraceIndex origin = kNoOrigin);

    MemSystemParams params_;
    std::unique_ptr<MemController> ctrl_;
    std::unique_ptr<Cache> l3_;
    std::unique_ptr<Cache> l2_;
    std::unique_ptr<Cache> l1d_;
    std::unordered_set<ReqId> done_;
    ReqId nextId_ = 1;
};

} // namespace ede

#endif // EDE_MEM_MEM_SYSTEM_HH
