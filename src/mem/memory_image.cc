#include "mem/memory_image.hh"

#include <algorithm>

namespace ede {

const MemoryImage::Page *
MemoryImage::findPage(Addr page_addr) const
{
    auto it = pages_.find(page_addr);
    return it == pages_.end() ? nullptr : &it->second;
}

MemoryImage::Page &
MemoryImage::getPage(Addr page_addr)
{
    auto [it, inserted] = pages_.try_emplace(page_addr);
    if (inserted)
        it->second.assign(kPageSize, 0);
    return it->second;
}

void
MemoryImage::read(Addr addr, void *out, std::size_t len) const
{
    auto *dst = static_cast<std::uint8_t *>(out);
    while (len > 0) {
        const Addr page_addr = addr & ~(kPageSize - 1);
        const std::size_t off = addr - page_addr;
        const std::size_t chunk = std::min(len, kPageSize - off);
        if (const Page *page = findPage(page_addr)) {
            std::memcpy(dst, page->data() + off, chunk);
        } else {
            std::memset(dst, 0, chunk);
        }
        dst += chunk;
        addr += chunk;
        len -= chunk;
    }
}

void
MemoryImage::write(Addr addr, const void *in, std::size_t len)
{
    const auto *src = static_cast<const std::uint8_t *>(in);
    while (len > 0) {
        const Addr page_addr = addr & ~(kPageSize - 1);
        const std::size_t off = addr - page_addr;
        const std::size_t chunk = std::min(len, kPageSize - off);
        Page &page = getPage(page_addr);
        std::memcpy(page.data() + off, src, chunk);
        src += chunk;
        addr += chunk;
        len -= chunk;
    }
}

void
MemoryImage::copyRange(const MemoryImage &src, Addr addr, std::size_t len)
{
    std::vector<std::uint8_t> buf(len);
    src.read(addr, buf.data(), len);
    write(addr, buf.data(), len);
}

namespace {

bool
pageIsZero(const std::vector<std::uint8_t> &page)
{
    for (std::uint8_t b : page)
        if (b != 0)
            return false;
    return true;
}

// FNV-1a over a byte range, seeded with the running hash.
std::uint64_t
fnv1a(std::uint64_t h, const void *data, std::size_t len)
{
    const auto *p = static_cast<const std::uint8_t *>(data);
    for (std::size_t i = 0; i < len; ++i) {
        h ^= p[i];
        h *= 0x100000001b3ull;
    }
    return h;
}

} // namespace

std::uint64_t
MemoryImage::canonicalContentHash() const
{
    // Hash pages in address order so the result is independent of the
    // unordered_map's iteration order and of zero pages that were
    // materialized but never written with nonzero data.
    std::vector<Addr> addrs;
    addrs.reserve(pages_.size());
    for (const auto &[addr, page] : pages_)
        if (!pageIsZero(page))
            addrs.push_back(addr);
    std::sort(addrs.begin(), addrs.end());

    std::uint64_t h = 0xcbf29ce484222325ull;
    for (Addr a : addrs) {
        h = fnv1a(h, &a, sizeof(a));
        h = fnv1a(h, pages_.at(a).data(), kPageSize);
    }
    return h;
}

bool
MemoryImage::contentEquals(const MemoryImage &other) const
{
    static const Page zeros(kPageSize, 0);
    auto covers = [](const MemoryImage &a, const MemoryImage &b) {
        for (const auto &[addr, page] : a.pages_) {
            const Page *peer = b.findPage(addr);
            const Page &ref = peer ? *peer : zeros;
            if (page != ref)
                return false;
        }
        return true;
    };
    return covers(*this, other) && covers(other, *this);
}

} // namespace ede
