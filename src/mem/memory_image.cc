#include "mem/memory_image.hh"

#include <algorithm>

namespace ede {

const MemoryImage::Page *
MemoryImage::findPage(Addr page_addr) const
{
    auto it = pages_.find(page_addr);
    return it == pages_.end() ? nullptr : &it->second;
}

MemoryImage::Page &
MemoryImage::getPage(Addr page_addr)
{
    auto [it, inserted] = pages_.try_emplace(page_addr);
    if (inserted)
        it->second.assign(kPageSize, 0);
    return it->second;
}

void
MemoryImage::read(Addr addr, void *out, std::size_t len) const
{
    auto *dst = static_cast<std::uint8_t *>(out);
    while (len > 0) {
        const Addr page_addr = addr & ~(kPageSize - 1);
        const std::size_t off = addr - page_addr;
        const std::size_t chunk = std::min(len, kPageSize - off);
        if (const Page *page = findPage(page_addr)) {
            std::memcpy(dst, page->data() + off, chunk);
        } else {
            std::memset(dst, 0, chunk);
        }
        dst += chunk;
        addr += chunk;
        len -= chunk;
    }
}

void
MemoryImage::write(Addr addr, const void *in, std::size_t len)
{
    const auto *src = static_cast<const std::uint8_t *>(in);
    while (len > 0) {
        const Addr page_addr = addr & ~(kPageSize - 1);
        const std::size_t off = addr - page_addr;
        const std::size_t chunk = std::min(len, kPageSize - off);
        Page &page = getPage(page_addr);
        std::memcpy(page.data() + off, src, chunk);
        src += chunk;
        addr += chunk;
        len -= chunk;
    }
}

void
MemoryImage::copyRange(const MemoryImage &src, Addr addr, std::size_t len)
{
    std::vector<std::uint8_t> buf(len);
    src.read(addr, buf.data(), len);
    write(addr, buf.data(), len);
}

} // namespace ede
