/**
 * @file
 * Functional byte-addressable memory image.
 *
 * The timing model only moves tags and latencies; actual data values
 * live here.  The NVM framework and the workloads read/write this
 * image directly (functional execution), and the audit module keeps a
 * second image that is updated *in persist order* as the simulator
 * pushes lines to the NVM media, so crash states are real memory
 * states.
 */

#ifndef EDE_MEM_MEMORY_IMAGE_HH
#define EDE_MEM_MEMORY_IMAGE_HH

#include <cstdint>
#include <cstring>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/types.hh"

namespace ede {

/** Sparse paged memory holding the functional state. */
class MemoryImage
{
  public:
    /** Read @p len bytes at @p addr into @p out (zero-fill untouched). */
    void read(Addr addr, void *out, std::size_t len) const;

    /** Write @p len bytes from @p in at @p addr. */
    void write(Addr addr, const void *in, std::size_t len);

    /** Typed read of a trivially copyable value. */
    template <typename T>
    T
    read(Addr addr) const
    {
        static_assert(std::is_trivially_copyable_v<T>);
        T v{};
        read(addr, &v, sizeof(T));
        return v;
    }

    /** Typed write of a trivially copyable value. */
    template <typename T>
    void
    write(Addr addr, const T &v)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        write(addr, &v, sizeof(T));
    }

    /** Copy a byte range from another image (used for crash states). */
    void copyRange(const MemoryImage &src, Addr addr, std::size_t len);

    /** Number of pages materialized (for tests). */
    std::size_t pageCount() const { return pages_.size(); }

    /**
     * Canonical content hash: equal for images with identical byte
     * contents regardless of which pages happen to be materialized
     * (an absent page reads as zeros, so all-zero pages are excluded
     * before hashing).  Used by the crash model checker to
     * deduplicate materialized crash states.
     */
    std::uint64_t canonicalContentHash() const;

    /** Byte-for-byte content equality under the same zero convention. */
    bool contentEquals(const MemoryImage &other) const;

    /** Drop all contents. */
    void clear() { pages_.clear(); }

  private:
    static constexpr std::size_t kPageBits = 12;
    static constexpr std::size_t kPageSize = 1ull << kPageBits;

    using Page = std::vector<std::uint8_t>;

    const Page *findPage(Addr page_addr) const;
    Page &getPage(Addr page_addr);

    std::unordered_map<Addr, Page> pages_;
};

} // namespace ede

#endif // EDE_MEM_MEMORY_IMAGE_HH
