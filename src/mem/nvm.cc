#include "mem/nvm.hh"

#include <algorithm>

#include "common/logging.hh"

namespace ede {

NvmDevice::NvmDevice(NvmParams params)
    : params_(params), occupancy_(params.bufferSlots, 1)
{
    slots_.reserve(params_.bufferSlots);
    readPortFree_.assign(params_.mediaReaders, 0);
}

NvmDevice::Slot *
NvmDevice::findSlot(Addr line_addr)
{
    for (Slot &s : slots_) {
        if (s.lineAddr == line_addr)
            return &s;
    }
    return nullptr;
}

bool
NvmDevice::acceptWrite(const MemReq &req, Cycle now, bool is_clean)
{
    const Addr line = mediaLine(req.addr);
    Slot *slot = findSlot(line);
    if (slot) {
        ++stats_.writesCoalesced;
        // A write being pushed to the media cannot absorb new data;
        // coalescing into it would lose the update.  Re-arm the slot.
        if (slot->writing) {
            slot->writing = false;
            slot->enqueued = now;
        }
    } else {
        if (slots_.size() >= params_.bufferSlots) {
            ++stats_.bufferFullRejects;
            return false;
        }
        Slot fresh;
        fresh.lineAddr = line;
        fresh.enqueued = now;
        slots_.push_back(fresh);
    }
    ++stats_.writesAccepted;
    if (is_clean) {
        ++stats_.cleansAccepted;
        completions_.push(Pending{now + params_.bufferAccept,
                                  MemResp{req.id, ReqKind::Clean,
                                          req.addr, req.core}});
    }
    // The buffer is inside the persistence domain (ADR): entering it
    // makes the data crash-durable.
    if (persistHook_) {
        persistHook_(req.addr, req.size ? req.size : 64, now, req.origin,
                     req.core);
    }
    return true;
}

bool
NvmDevice::tryAccept(const MemReq &req, Cycle now)
{
    lastRejectTransient_ = false;
    switch (req.kind) {
      case ReqKind::Writeback:
      case ReqKind::Clean: {
        if (acceptFault_ && acceptFault_(req, now)) {
            ++stats_.transientRejects;
            lastRejectTransient_ = true;
            return false;
        }
        return acceptWrite(req, now,
                           /*is_clean=*/req.kind == ReqKind::Clean);
      }
      case ReqKind::Read:
      case ReqKind::Write: {
        if (readQ_.size() >= params_.readQueueDepth)
            return false;
        readQ_.push_back(req);
        return true;
      }
    }
    return false;
}

void
NvmDevice::tick(Cycle now, std::vector<MemResp> &out)
{
    while (!completions_.empty() && completions_.top().due <= now) {
        out.push_back(completions_.top().resp);
        completions_.pop();
    }

    // Media read ports.
    while (!readQ_.empty()) {
        const MemReq &req = readQ_.front();
        const Addr line = mediaLine(req.addr);
        if (findSlot(line)) {
            // Served from the pending-write buffer.
            ++stats_.reads;
            ++stats_.bufferReadHits;
            completions_.push(Pending{now + params_.bufferReadHit,
                                      MemResp{req.id, req.kind,
                                              req.addr, req.core}});
            readQ_.pop_front();
            continue;
        }
        auto port = std::min_element(readPortFree_.begin(),
                                     readPortFree_.end());
        if (*port > now)
            break;
        ++stats_.reads;
        *port = now + params_.readLatency;
        completions_.push(Pending{now + params_.readLatency,
                                  MemResp{req.id, req.kind, req.addr,
                                          req.core}});
        readQ_.pop_front();
    }

    // Media write ports: finish in-flight writes, then launch new
    // ones oldest-first.
    for (auto it = slots_.begin(); it != slots_.end();) {
        if (it->writing && it->writeDone <= now) {
            ++stats_.mediaWrites;
            // Fig. 10 sample: pending writes when a store reaches the
            // media (the completing write still occupies its slot).
            occupancy_.sample(slots_.size());
            if (mediaWriteHook_)
                mediaWriteHook_(it->lineAddr, now);
            it = slots_.erase(it);
        } else {
            ++it;
        }
    }
    std::uint32_t busy = 0;
    for (const Slot &s : slots_)
        busy += s.writing ? 1 : 0;
    while (busy < params_.mediaWriters) {
        Slot *oldest = nullptr;
        for (Slot &s : slots_) {
            if (!s.writing && (!oldest || s.enqueued < oldest->enqueued))
                oldest = &s;
        }
        if (!oldest)
            break;
        oldest->writing = true;
        oldest->writeDone = now + params_.writeLatency;
        ++busy;
    }
}

bool
NvmDevice::idle() const
{
    return slots_.empty() && readQ_.empty() && completions_.empty();
}

Cycle
NvmDevice::nextEventCycle(Cycle now) const
{
    Cycle next = kNoCycle;
    if (!completions_.empty())
        next = std::min(next, std::max(now, completions_.top().due));
    if (!readQ_.empty()) {
        // The queue head waits for a media read port; a buffer hit
        // can only appear through a new write accept, which is core
        // activity that ends any skip window on its own.
        const Cycle port = *std::min_element(readPortFree_.begin(),
                                             readPortFree_.end());
        next = std::min(next, std::max(now, port));
    }
    bool launchable = false;
    std::uint32_t busy = 0;
    for (const Slot &s : slots_) {
        if (s.writing) {
            ++busy;
            next = std::min(next, std::max(now, s.writeDone));
        } else {
            launchable = true;
        }
    }
    // Writer slots free only at a writeDone (covered above), but be
    // defensive: a launchable slot with a free writer acts this cycle.
    if (launchable && busy < params_.mediaWriters)
        next = std::min(next, now);
    return next;
}

} // namespace ede
