/**
 * @file
 * NVM device model: asymmetric read/write latency, 256-byte internal
 * lines, and a persistent 128-slot on-DIMM write buffer.
 *
 * Matching Section VI-A of the paper: writes (cache evictions and DC
 * CVAP cleans) are accepted into the persistent buffer, where they may
 * coalesce with pending writes to the same 256 B internal line; a
 * small number of media writers drain the buffer at the 500 ns write
 * latency.  Because the buffer sits inside the ADR persistence
 * domain, a Clean *completes* (is persistent) as soon as its line is
 * accepted into the buffer.
 *
 * Every time a write reaches the media, the current buffer occupancy
 * is sampled -- this is exactly the Fig. 10 distribution.
 */

#ifndef EDE_MEM_NVM_HH
#define EDE_MEM_NVM_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <queue>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "mem/req.hh"

namespace ede {

/** NVM timing/geometry parameters (Table I defaults). */
struct NvmParams
{
    Cycle readLatency = 450;     ///< 150 ns at 3 GHz.
    Cycle writeLatency = 1500;   ///< 500 ns at 3 GHz.
    Cycle bufferAccept = 60;     ///< WPQ accept round trip (~20 ns).
    Cycle bufferReadHit = 60;    ///< Read served from a pending write.
    std::uint32_t lineBytes = 256;
    std::uint32_t bufferSlots = 128;

    /**
     * Concurrent media write streams drained from the buffer:
     * 5 x 256 B / 500 ns = ~2.6 GB/s sustained write bandwidth, in
     * line with a 3D-XPoint-class DIMM.  Under the unsafe
     * configuration the kernels' persist rate exceeds this, keeping
     * the 128-slot buffer full (Fig. 10).
     */
    std::uint32_t mediaWriters = 5;
    std::uint32_t mediaReaders = 4;  ///< Concurrent media read ports.
    std::uint32_t readQueueDepth = 16;
};

/** NVM counters. */
struct NvmStats
{
    std::uint64_t reads = 0;
    std::uint64_t bufferReadHits = 0;
    std::uint64_t writesAccepted = 0;
    std::uint64_t writesCoalesced = 0;
    std::uint64_t mediaWrites = 0;
    std::uint64_t cleansAccepted = 0;
    std::uint64_t bufferFullRejects = 0;
    std::uint64_t transientRejects = 0; ///< Fault-injected accept fails.
};

/**
 * Hook invoked when a write/clean enters the persistence domain
 * (i.e. the persistent buffer): (cache-line address, size, cycle,
 * originating trace index or kNoOrigin for cache-generated traffic,
 * originating core).  The origin lets the fault model-checker tie
 * persist events back to the DC CVAP / store instructions whose EDK
 * and fence constraints order them; the core index is only meaningful
 * when the origin is real (evictions aggregate stores from many
 * instructions and report core 0).
 */
using PersistHook =
    std::function<void(Addr, std::uint32_t, Cycle, TraceIndex, unsigned)>;

/**
 * Hook invoked when a buffered line finishes its media write:
 * (256 B media-line address, cycle).  Lines that reached the media
 * are durable even under a failed power-down drain, so the fault
 * campaign uses these events to split "on media" from "still in the
 * WPQ" when it reconstructs adversarial crash images.
 */
using MediaWriteHook = std::function<void(Addr, Cycle)>;

/**
 * Fault-injection hook consulted before a write/clean is accepted:
 * return true to reject this attempt (a transient accept failure;
 * the controller retries with backoff).  Installed by the fault
 * campaign; must eventually return false for every line so the
 * simulation keeps making progress.
 */
using AcceptFaultHook = std::function<bool(const MemReq &, Cycle)>;

/** NVM DIMM with persistent write buffering. */
class NvmDevice
{
  public:
    explicit NvmDevice(NvmParams params = {});

    /** Offer a request; false when buffers/queues are full. */
    bool tryAccept(const MemReq &req, Cycle now);

    /** Advance one cycle; completed reads/cleans are pushed to @p out. */
    void tick(Cycle now, std::vector<MemResp> &out);

    /** True when nothing is pending (buffer drained). */
    bool idle() const;

    /**
     * Skip-ahead hint: earliest cycle >= @p now at which tick() might
     * deliver a completion, serve a queued read, or finish/launch a
     * media write.  kNoCycle when fully drained.
     */
    Cycle nextEventCycle(Cycle now) const;

    /** Current number of pending writes in the on-DIMM buffer. */
    std::size_t bufferOccupancy() const { return slots_.size(); }

    /** Fig. 10 distribution: occupancy sampled at each media write. */
    const Distribution &occupancyDist() const { return occupancy_; }

    /**
     * Mean sampled WPQ occupancy in permille of bufferSlots -- the
     * congestion half of the traffic layer's backpressure signal.
     * Integer arithmetic (0 with no samples) so downstream admission
     * decisions are bit-stable.
     */
    std::uint64_t
    meanOccupancyPermille() const
    {
        const std::uint64_t samples = occupancy_.totalSamples();
        if (!samples || !params_.bufferSlots)
            return 0;
        return occupancy_.sampleSum() * 1000 /
               (samples * params_.bufferSlots);
    }

    /**
     * Accept rejections (buffer-full + fault-injected transient) in
     * permille of all accept attempts -- the reject half of the
     * backpressure signal.
     */
    std::uint64_t
    rejectPermille() const
    {
        const std::uint64_t rejects =
            stats_.bufferFullRejects + stats_.transientRejects;
        const std::uint64_t attempts = stats_.writesAccepted +
                                       stats_.cleansAccepted + rejects;
        return attempts ? rejects * 1000 / attempts : 0;
    }

    /** Install the persistence-domain entry hook. */
    void setPersistHook(PersistHook hook) { persistHook_ = std::move(hook); }

    /** Install the media-write completion hook. */
    void
    setMediaWriteHook(MediaWriteHook hook)
    {
        mediaWriteHook_ = std::move(hook);
    }

    /** Install (or clear) the transient accept-failure injector. */
    void
    setAcceptFaultHook(AcceptFaultHook hook)
    {
        acceptFault_ = std::move(hook);
    }

    /** True when the latest tryAccept rejection was fault-injected. */
    bool lastRejectTransient() const { return lastRejectTransient_; }

    const NvmStats &stats() const { return stats_; }

    const NvmParams &params() const { return params_; }

  private:
    struct Slot
    {
        Addr lineAddr = 0;        ///< 256 B aligned media line.
        Cycle enqueued = 0;
        bool writing = false;
        Cycle writeDone = 0;
    };

    struct Pending
    {
        Cycle due;
        MemResp resp;
        bool operator>(const Pending &o) const { return due > o.due; }
    };

    Addr mediaLine(Addr a) const
    {
        return a & ~static_cast<Addr>(params_.lineBytes - 1);
    }

    Slot *findSlot(Addr line_addr);
    bool acceptWrite(const MemReq &req, Cycle now, bool is_clean);

    NvmParams params_;
    std::vector<Slot> slots_;            ///< Pending buffer entries.
    std::deque<MemReq> readQ_;
    std::priority_queue<Pending, std::vector<Pending>,
                        std::greater<Pending>> completions_;
    std::vector<Cycle> readPortFree_;    ///< Per-port busy-until.
    Distribution occupancy_;
    PersistHook persistHook_;
    MediaWriteHook mediaWriteHook_;
    AcceptFaultHook acceptFault_;
    bool lastRejectTransient_ = false;
    NvmStats stats_;
};

} // namespace ede

#endif // EDE_MEM_NVM_HH
