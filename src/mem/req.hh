/**
 * @file
 * Memory request records exchanged between hierarchy levels.
 */

#ifndef EDE_MEM_REQ_HH
#define EDE_MEM_REQ_HH

#include <cstdint>

#include "common/types.hh"

namespace ede {

/** Opaque identifier for a core-visible memory request. */
using ReqId = std::uint64_t;

/** Identifier meaning "no core request attached" (e.g. evictions). */
inline constexpr ReqId kNoReq = 0;

/**
 * Trace index of the instruction that originated a request, for
 * requests that have one (store drains and DC CVAP cleans pushed from
 * the write buffer).  Cache-generated traffic -- fills, dirty
 * writebacks -- carries kNoOrigin: an eviction aggregates stores from
 * many instructions and belongs to none of them.
 */
using TraceIndex = std::uint64_t;

/** Sentinel meaning "no originating instruction". */
inline constexpr TraceIndex kNoOrigin =
    static_cast<TraceIndex>(-1);

/** Request kinds. */
enum class ReqKind : std::uint8_t {
    Read,       ///< Demand load (completes at the level that hits).
    Write,      ///< Store drain from the write buffer (write-allocate).
    Clean,      ///< DC CVAP: clean line to the point of persistence.
    Writeback,  ///< Dirty eviction moving down one level (no response).
};

/** One request flowing down the hierarchy. */
struct MemReq
{
    ReqId id = kNoReq;        ///< Core request id (kNoReq for evictions).
    ReqKind kind = ReqKind::Read;
    Addr addr = kNoAddr;      ///< Byte address (line-aligned for fills).
    std::uint8_t size = 0;    ///< Access size in bytes.
    TraceIndex origin = kNoOrigin;  ///< Originating instruction, if any.
};

/** A response delivered back up the hierarchy. */
struct MemResp
{
    ReqId id = kNoReq;
    ReqKind kind = ReqKind::Read;
    Addr addr = kNoAddr;
};

} // namespace ede

#endif // EDE_MEM_REQ_HH
