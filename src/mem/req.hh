/**
 * @file
 * Memory request records exchanged between hierarchy levels.
 */

#ifndef EDE_MEM_REQ_HH
#define EDE_MEM_REQ_HH

#include <cstdint>

#include "common/types.hh"

namespace ede {

/** Opaque identifier for a core-visible memory request. */
using ReqId = std::uint64_t;

/** Identifier meaning "no core request attached" (e.g. evictions). */
inline constexpr ReqId kNoReq = 0;

/**
 * Trace index of the instruction that originated a request, for
 * requests that have one (store drains and DC CVAP cleans pushed from
 * the write buffer).  Cache-generated traffic -- fills, dirty
 * writebacks -- carries kNoOrigin: an eviction aggregates stores from
 * many instructions and belongs to none of them.
 */
using TraceIndex = std::uint64_t;

/** Sentinel meaning "no originating instruction". */
inline constexpr TraceIndex kNoOrigin =
    static_cast<TraceIndex>(-1);

/** Request kinds. */
enum class ReqKind : std::uint8_t {
    Read,       ///< Demand load (completes at the level that hits).
    Write,      ///< Store drain from the write buffer (write-allocate).
    Clean,      ///< DC CVAP: clean line to the point of persistence.
    Writeback,  ///< Dirty eviction moving down one level (no response).
};

/** One request flowing down the hierarchy. */
struct MemReq
{
    ReqId id = kNoReq;        ///< Core request id (kNoReq for evictions).
    ReqKind kind = ReqKind::Read;
    Addr addr = kNoAddr;      ///< Byte address (line-aligned for fills).
    std::uint8_t size = 0;    ///< Access size in bytes.
    TraceIndex origin = kNoOrigin;  ///< Originating instruction, if any.

    /**
     * Index of the core that issued this request.  Fills inherit the
     * core of the miss that allocated their MSHR; dirty evictions stay
     * at 0 (an eviction aggregates stores from many instructions and,
     * on a shared cache, potentially from many cores).  The shared-
     * cache levels route responses back to the right private L1 by
     * this field, and persist events record it as provenance.
     */
    unsigned core = 0;
};

/** A response delivered back up the hierarchy. */
struct MemResp
{
    ReqId id = kNoReq;
    ReqKind kind = ReqKind::Read;
    Addr addr = kNoAddr;
    unsigned core = 0;  ///< Requesting core (routes the response up).
};

} // namespace ede

#endif // EDE_MEM_REQ_HH
