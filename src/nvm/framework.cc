#include "nvm/framework.hh"

#include <set>

#include "common/logging.hh"

namespace ede {

NvmFramework::NvmFramework(Config cfg, TraceBuilder &builder,
                           MemoryImage &image, PersistentHeap &heap,
                           UndoLogLayout log)
    : cfg_(cfg), builder_(builder), image_(image), heap_(heap), log_(log)
{
    ede_assert(log_.stateAddr != kNoAddr && log_.capacity > 0,
               "framework needs a placed undo log");
    ede_assert((log_.entriesBase & 0x3f) == 0,
               "log entries must start on a cache line");
}

void
NvmFramework::emitLogOrdering()
{
    switch (cfg_) {
      case Config::B:
        builder_.dsbSy();
        break;
      case Config::SU:
        // Orders stores against stores only; does NOT order the DC
        // CVAP we just issued -- this is why SU is unsafe.
        builder_.dmbSt();
        break;
      case Config::IQ:
      case Config::WB:
        // Nothing: the dependence is carried by EDK #1 (Figure 7).
        break;
      case Config::U:
        break;
    }
}

void
NvmFramework::emitCommitBarrier()
{
    switch (cfg_) {
      case Config::B:
        builder_.dsbSy();
        break;
      case Config::SU:
        builder_.dmbSt();
        break;
      default:
        break; // EDE configs use WAIT_KEY; U uses nothing.
    }
}

void
NvmFramework::txBegin()
{
    ede_assert(!inTx_, "transactions do not nest");
    inTx_ = true;
    entriesUsed_ = 0;
    if (configUsesEde(cfg_)) {
        // The previous transaction's state-word clear must be durable
        // before this transaction's first update can persist.
        builder_.waitKey(fwkeys::kStateClear);
    }
}

void
NvmFramework::pWriteU64(Addr dst, std::uint64_t value)
{
    ede_assert(inTx_, "pWriteU64 outside a failure-atomic region");
    ede_assert(entriesUsed_ < log_.capacity, "undo log overflow: raise "
               "UndoLogLayout::capacity");
    ede_assert(dst != 0, "address 0 is reserved as the empty-entry "
               "marker");

    // Slots are allocated from a rotating cursor, as PMDK's ulog
    // does: successive transactions append to fresh (cache-cold)
    // lines rather than rewriting one hot slot set.
    const bool ede = configUsesEde(cfg_);

    // PMDK-style snapshot dedup: a location already undo-logged in
    // this transaction keeps its original (oldest) entry, so only
    // the update half of Figure 4 is emitted.  Ordering stays
    // intact: the repeated store overlaps the first one, and the
    // write buffer drains overlapping stores in order, so it is
    // transitively ordered behind the original log persist.
    if (loggedWords_.count(dst)) {
        const RegIndex r_addr2 = temps_.get();
        builder_.movImm(r_addr2, static_cast<std::int64_t>(dst));
        const RegIndex r_new2 = temps_.get();
        builder_.movImm(r_new2, static_cast<std::int64_t>(value));
        builder_.str(r_new2, r_addr2, dst, value);
        builder_.cvap(r_addr2, dst,
                      ede ? EdkOps{fwkeys::kData, 0} : EdkOps{});
        image_.write<std::uint64_t>(dst, value);
        return;
    }
    loggedWords_.insert(dst);

    const std::uint64_t old_val = image_.read<std::uint64_t>(dst);
    const Addr slot =
        log_.entryAddr((logCursor_ + entriesUsed_) % log_.capacity);
    ++entriesUsed_;

    // Framework bookkeeping around the persisted write: the
    // operator= dispatch, TLS transaction lookup and the log-slot
    // reserve of Figure 1(b)/2(a) compile to a short dependent
    // sequence before the Figure 4 pattern proper.
    RegIndex chain = temps_.get();
    builder_.movImm(chain, static_cast<std::int64_t>(slot));
    builder_.ldr(chain, chain, log_.stateAddr); // TX state lookup.
    for (int i = 0; i < 6; ++i)
        builder_.alu(chain, chain, kNoReg, 1);

    // log_value (Figures 2(a) / 7(a)), compiled as in Figure 4.
    const RegIndex r_addr = temps_.get();
    builder_.movImm(r_addr, static_cast<std::int64_t>(dst));
    const RegIndex r_old = temps_.get();
    builder_.ldr(r_old, r_addr, dst);
    const RegIndex r_slot = temps_.get();
    builder_.movImm(r_slot, static_cast<std::int64_t>(slot));
    // reserve_uint64(): the slot bump the framework performs.
    builder_.alu(r_slot, r_slot, kNoReg, 0);
    // Fold the {addr, old value} checksum into the sealed addr word
    // before the pair store (torn-entry detection at recovery).
    const std::uint64_t sealed = sealUndoEntry(dst, old_val);
    const RegIndex r_seal = temps_.get();
    builder_.alu(r_seal, r_addr, r_old);
    builder_.stp(r_seal, r_old, r_slot, slot, sealed, old_val);
    PersistObligation ob;
    ob.logCvapIdx = builder_.cvap(
        r_slot, slot, ede ? EdkOps{fwkeys::kLogEntry, 0} : EdkOps{});
    emitLogOrdering();
    image_.write<std::uint64_t>(slot, sealed);
    image_.write<std::uint64_t>(slot + 8, old_val);

    // update_value (Figures 2(b) / 7(b)).
    const RegIndex r_new = temps_.get();
    builder_.movImm(r_new, static_cast<std::int64_t>(value));
    ob.dataStrIdx = builder_.str(
        r_new, r_addr, dst, value, 0,
        ede ? EdkOps{0, fwkeys::kLogEntry} : EdkOps{});
    ob.dataCvapIdx = builder_.cvap(
        r_addr, dst, ede ? EdkOps{fwkeys::kData, 0} : EdkOps{});
    image_.write<std::uint64_t>(dst, value);
    obligations_.push_back(ob);
}

std::size_t
NvmFramework::emitRangeSnapshot(Addr base, std::size_t words, Edk key)
{
    const bool ede = configUsesEde(cfg_);
    std::size_t last_cvap = 0;
    Addr pending_log_line = kNoAddr;
    auto flush_log_line = [&]() {
        if (pending_log_line == kNoAddr)
            return;
        const RegIndex r_line = temps_.get();
        builder_.movImm(r_line,
                        static_cast<std::int64_t>(pending_log_line));
        // Every snapshot line persists under the range key; the
        // consumer links to the newest producer.  Pushes start
        // oldest-first and pay the same accept latency, so earlier
        // lines complete no later -- the crash-consistency audit
        // checks this holds on every run.
        last_cvap = builder_.cvap(r_line, pending_log_line,
                                  ede ? EdkOps{key, 0} : EdkOps{});
        pending_log_line = kNoAddr;
    };

    for (std::size_t w = 0; w < words; ++w) {
        const Addr target = base + 8 * w;
        loggedWords_.insert(target);
        const std::uint64_t old_val =
            image_.read<std::uint64_t>(target);
        ede_assert(entriesUsed_ < log_.capacity,
                   "undo log overflow: raise capacity");
        const Addr slot = log_.entryAddr(
            (logCursor_ + entriesUsed_) % log_.capacity);
        ++entriesUsed_;

        const RegIndex r_addr = temps_.get();
        builder_.movImm(r_addr, static_cast<std::int64_t>(target));
        const RegIndex r_old = temps_.get();
        builder_.ldr(r_old, r_addr, target);
        const RegIndex r_slot = temps_.get();
        builder_.movImm(r_slot, static_cast<std::int64_t>(slot));
        const std::uint64_t sealed = sealUndoEntry(target, old_val);
        const RegIndex r_seal = temps_.get();
        builder_.alu(r_seal, r_addr, r_old);
        builder_.stp(r_seal, r_old, r_slot, slot, sealed, old_val);
        image_.write<std::uint64_t>(slot, sealed);
        image_.write<std::uint64_t>(slot + 8, old_val);

        const Addr line = slot & ~63ull;
        if (pending_log_line != kNoAddr && pending_log_line != line)
            flush_log_line();
        pending_log_line = line;
    }
    flush_log_line();
    emitLogOrdering(); // One barrier per snapshot (non-EDE configs).
    return last_cvap;
}

void
NvmFramework::pWriteU64InRange(Addr dst, std::uint64_t value,
                               Addr range_base,
                               std::size_t range_words)
{
    ede_assert(inTx_, "pWriteU64InRange outside a failure-atomic "
               "region");
    ede_assert(dst >= range_base && dst < range_base + 8 * range_words,
               "write outside its declared range");
    const bool ede = configUsesEde(cfg_);

    auto it = loggedRanges_.find(range_base);
    Edk key;
    if (it == loggedRanges_.end()) {
        key = static_cast<Edk>(
            fwkeys::kRangeFirst +
            (rangeKeyCursor_++ % fwkeys::kRangeCount));
        loggedRanges_.emplace(range_base, key);
        rangeCvapIdx_[range_base] =
            emitRangeSnapshot(range_base, range_words, key);
    } else {
        key = it->second;
    }

    PersistObligation ob;
    ob.logCvapIdx = rangeCvapIdx_[range_base];
    const RegIndex r_addr = temps_.get();
    builder_.movImm(r_addr, static_cast<std::int64_t>(dst));
    const RegIndex r_new = temps_.get();
    builder_.movImm(r_new, static_cast<std::int64_t>(value));
    ob.dataStrIdx = builder_.str(r_new, r_addr, dst, value, 0,
                                 ede ? EdkOps{0, key} : EdkOps{});
    ob.dataCvapIdx = builder_.cvap(
        r_addr, dst, ede ? EdkOps{fwkeys::kData, 0} : EdkOps{});
    image_.write<std::uint64_t>(dst, value);
    obligations_.push_back(ob);
}

void
NvmFramework::txCommit()
{
    ede_assert(inTx_, "txCommit without txBegin");
    const bool ede = configUsesEde(cfg_);

    // Step 1: every transactional update is durable.
    if (ede)
        builder_.waitKey(fwkeys::kData);
    else
        emitCommitBarrier();

    // Step 2: commit record.
    const RegIndex r_state = temps_.get();
    builder_.movImm(r_state, static_cast<std::int64_t>(log_.stateAddr));
    const RegIndex r_val = temps_.get();
    builder_.movImm(r_val, static_cast<std::int64_t>(kTxCommitted));
    builder_.str(r_val, r_state, log_.stateAddr, kTxCommitted);
    builder_.cvap(r_state, log_.stateAddr,
                  ede ? EdkOps{fwkeys::kCommit, 0} : EdkOps{});
    emitCommitBarrier();
    image_.write<std::uint64_t>(log_.stateAddr, kTxCommitted);

    // Step 3: truncate the log (zero the addr word of each used
    // entry, one persist per touched line).  Under EDE each zeroing
    // store consumes the commit-record persist (one-to-many).
    const RegIndex r_zero = temps_.get();
    builder_.movImm(r_zero, 0);
    std::set<Addr> lines;
    for (std::uint64_t i = 0; i < entriesUsed_; ++i) {
        const Addr entry =
            log_.entryAddr((logCursor_ + i) % log_.capacity);
        const RegIndex r_entry = temps_.get();
        builder_.movImm(r_entry, static_cast<std::int64_t>(entry));
        builder_.str(r_zero, r_entry, entry, 0, 0,
                     ede ? EdkOps{0, fwkeys::kCommit} : EdkOps{});
        image_.write<std::uint64_t>(entry, 0);
        lines.insert(entry & ~static_cast<Addr>(63));
    }
    for (Addr line : lines) {
        const RegIndex r_line = temps_.get();
        builder_.movImm(r_line, static_cast<std::int64_t>(line));
        builder_.cvap(r_line, line,
                      ede ? EdkOps{fwkeys::kZeroes, 0} : EdkOps{});
    }
    if (ede)
        builder_.waitKey(fwkeys::kZeroes);
    else
        emitCommitBarrier();

    // Step 4: back to ACTIVE.  The state-clear persist is recorded as
    // this transaction's commit mark (crash-campaign stratification).
    const RegIndex r_active = temps_.get();
    builder_.movImm(r_active, static_cast<std::int64_t>(kTxActive));
    builder_.str(r_active, r_state, log_.stateAddr, kTxActive);
    commitMarks_.push_back(
        builder_.cvap(r_state, log_.stateAddr,
                      ede ? EdkOps{fwkeys::kStateClear, 0} : EdkOps{}));
    emitCommitBarrier();
    image_.write<std::uint64_t>(log_.stateAddr, kTxActive);

    inTx_ = false;
    logCursor_ = (logCursor_ + entriesUsed_) % log_.capacity;
    entriesUsed_ = 0;
    loggedWords_.clear();
    loggedRanges_.clear();
    rangeCvapIdx_.clear();
    ++txCount_;
}

RegIndex
NvmFramework::loadU64(Addr src, RegIndex base, std::uint64_t *out)
{
    if (base == kNoReg) {
        base = temps_.get();
        builder_.movImm(base, static_cast<std::int64_t>(src));
    }
    const RegIndex dst = temps_.get();
    builder_.ldr(dst, base, src);
    const std::uint64_t v = image_.read<std::uint64_t>(src);
    if (out)
        *out = v;
    return dst;
}

RegIndex
NvmFramework::movAddr(Addr a)
{
    const RegIndex r = temps_.get();
    builder_.movImm(r, static_cast<std::int64_t>(a));
    return r;
}

void
NvmFramework::compute(int n)
{
    for (int i = 0; i < n; ++i) {
        const RegIndex r = temps_.get();
        builder_.alu(r, r, kNoReg, 1);
    }
}

void
NvmFramework::branchCmp(const std::string &site, RegIndex a, RegIndex b,
                        bool taken)
{
    builder_.branchCond(site, a, b, taken);
}

void
NvmFramework::rawStoreU64(Addr dst, std::uint64_t value)
{
    const RegIndex r_addr = temps_.get();
    builder_.movImm(r_addr, static_cast<std::int64_t>(dst));
    const RegIndex r_val = temps_.get();
    builder_.movImm(r_val, static_cast<std::int64_t>(value));
    builder_.str(r_val, r_addr, dst, value);
    image_.write<std::uint64_t>(dst, value);
}

void
NvmFramework::persistLine(Addr addr)
{
    const RegIndex r = temps_.get();
    builder_.movImm(r, static_cast<std::int64_t>(addr));
    builder_.cvap(r, addr);
}

void
NvmFramework::backdoorStoreU64(Addr dst, std::uint64_t value,
                               int warm_level)
{
    image_.write<std::uint64_t>(dst, value);
    if (backdoor_)
        backdoor_(dst, value, warm_level);
}

void
NvmFramework::warmUndoLog()
{
    // PMDK zeroes its per-lane ulogs when a pool is opened, leaving
    // them cache-resident (L2 here: bigger than L1, hot enough).
    const Addr end = log_.entryAddr(log_.capacity);
    for (Addr line = log_.stateAddr & ~63ull; line < end; line += 64)
        backdoorStoreU64(line, 0, /*warm_level=*/2);
}

void
NvmFramework::setupFence()
{
    // Setup is not part of any measured claim; every configuration
    // closes it with the same full barrier so the comparison between
    // configurations is unaffected.
    builder_.dsbSy();
}

} // namespace ede
