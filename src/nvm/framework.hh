/**
 * @file
 * The persistence framework (mini-PMDK).
 *
 * This layer plays the role the paper gives to "framework code"
 * (Figures 1, 2, 7): applications call transactional writes, and the
 * framework transparently emits the undo-logging and persist-ordering
 * instruction patterns.  Because the framework is the only place
 * persist ordering is expressed, it is also where Table III's
 * configurations are lowered:
 *
 *  - Config::B  : DC CVAP + DSB SY            (Figure 2)
 *  - Config::SU : DC CVAP + DMB ST            (store-only; UNSAFE --
 *                 DMB ST does not order DC CVAP, Section II-A)
 *  - Config::IQ / Config::WB : EDE key variants (Figure 7),
 *                 WAIT_KEY for the commit barriers
 *  - Config::U  : DC CVAP only                (no ordering; UNSAFE)
 *
 * The framework executes functionally against the volatile memory
 * image while emitting the dynamic micro-op stream, so data structure
 * contents are real and the emitted trace carries real addresses and
 * store values.
 */

#ifndef EDE_NVM_FRAMEWORK_HH
#define EDE_NVM_FRAMEWORK_HH

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "mem/memory_image.hh"
#include "nvm/heap.hh"
#include "nvm/undo_log.hh"
#include "sim/config.hh"
#include "trace/builder.hh"

namespace ede {

/**
 * One transactional write's ordering obligation, recorded for the
 * crash-consistency auditor: the element store must not become
 * visible before the log-entry persist completes.
 */
struct PersistObligation
{
    std::size_t logCvapIdx = 0;  ///< Trace index of the log DC CVAP.
    std::size_t dataStrIdx = 0;  ///< Trace index of the element store.
    std::size_t dataCvapIdx = 0; ///< Trace index of the element DC CVAP.
};

/** EDK assignments used by the framework's lowering. */
namespace fwkeys {
inline constexpr Edk kLogEntry = 1;   ///< Log persist -> element store.
inline constexpr Edk kData = 2;       ///< Tags element persists.
inline constexpr Edk kCommit = 3;     ///< Commit-record persist.
inline constexpr Edk kZeroes = 4;     ///< Tags log-truncation persists.
inline constexpr Edk kStateClear = 5; ///< State-word clear persist.

/**
 * Keys 6..15 rotate across range snapshots: every line persist of a
 * snapshot produces the range's key, and stores into the range
 * consume it.  A consumer therefore orders behind the *newest*
 * producer; older snapshot lines were pushed earlier with the same
 * accept latency and complete no later, so the undo invariant holds
 * (the persist-ordering audit verifies this on every run).
 */
inline constexpr Edk kRangeFirst = 6;
inline constexpr int kRangeCount = 10;
} // namespace fwkeys

/** The persistence framework. */
class NvmFramework
{
  public:
    /**
     * @param cfg     Table III configuration to lower to
     * @param builder trace sink
     * @param image   functional (volatile) memory image
     * @param heap    persistent allocator
     * @param log     undo log placement
     */
    NvmFramework(Config cfg, TraceBuilder &builder, MemoryImage &image,
                 PersistentHeap &heap, UndoLogLayout log);

    /** @name Failure-atomic regions (Figure 1(b) semantics). */
    /// @{
    void txBegin();

    /**
     * Undo-log then update one persistent 64-bit location -- the
     * operator= of Figure 1(b), emitting the Figure 4 pattern.
     */
    void pWriteU64(Addr dst, std::uint64_t value);

    /**
     * PMDK tx_add_range semantics: snapshot the whole object
     * [range_base, range_base + 8*range_words) into the undo log the
     * first time the transaction touches it, then write @p dst.
     * Subsequent writes into the same range skip the logging.
     */
    void pWriteU64InRange(Addr dst, std::uint64_t value,
                          Addr range_base, std::size_t range_words);

    void txCommit();

    bool inTx() const { return inTx_; }
    /// @}

    /** @name Reads and compute emitted by application code. */
    /// @{
    /**
     * Emit a 64-bit load.  @p base names the register holding the
     * pointer (chain it from a previous load to model pointer
     * chasing); kNoReg materializes the address first.
     * @return the destination register; *out receives the value.
     */
    RegIndex loadU64(Addr src, RegIndex base = kNoReg,
                     std::uint64_t *out = nullptr);

    /** Materialize an address into a register. */
    RegIndex movAddr(Addr a);

    /** Emit @p n independent single-cycle ALU ops (address math). */
    void compute(int n = 1);

    /** Emit a conditional branch at site @p site comparing two regs. */
    void branchCmp(const std::string &site, RegIndex a, RegIndex b,
                   bool taken);
    /// @}

    /** @name Non-transactional initialization helpers. */
    /// @{
    /**
     * Backdoor pool initialization: (addr, value, warm level).  The
     * harness wires this to write the durable images and warm the
     * caches without emitting instructions -- the equivalent of
     * opening an already-created pool (functional warmup).
     */
    using BackdoorFn =
        std::function<void(Addr, std::uint64_t, int)>;

    /** Install the backdoor (harness use). */
    void setBackdoor(BackdoorFn fn) { backdoor_ = std::move(fn); }

    /**
     * Initialize one persistent word through the backdoor; the line
     * is made durable and cache-resident down to @p warm_level.
     */
    void backdoorStoreU64(Addr dst, std::uint64_t value,
                          int warm_level = 3);

    /** Plain store (functional + trace), no logging. */
    void rawStoreU64(Addr dst, std::uint64_t value);

    /** Persist a line (plain DC CVAP, no ordering keys). */
    void persistLine(Addr addr);

    /**
     * Touch every undo-log line once (PMDK zeroes its per-lane ulogs
     * when a pool is opened, leaving them cache-resident).
     */
    void warmUndoLog();

    /** Full barrier used to close the setup phase (all configs). */
    void setupFence();
    /// @}

    /** @name Access for applications and harnesses. */
    /// @{
    MemoryImage &image() { return image_; }
    PersistentHeap &heap() { return heap_; }
    TraceBuilder &builder() { return builder_; }
    Config config() const { return cfg_; }
    const UndoLogLayout &logLayout() const { return log_; }
    const std::vector<PersistObligation> &obligations() const
    {
        return obligations_;
    }
    std::uint64_t txCount() const { return txCount_; }

    /**
     * Trace index of each transaction's state-clear persist (the last
     * durable step of its commit).  Once element i completes, the
     * first i+1 transactions are committed and truncated -- the crash
     * campaign stratifies its crash points over these boundaries.
     */
    const std::vector<std::size_t> &commitMarks() const
    {
        return commitMarks_;
    }
    /// @}

  private:
    /** The per-config ordering token after a log-entry persist. */
    void emitLogOrdering();

    /** Barrier between commit protocol steps (non-EDE configs). */
    void emitCommitBarrier();

    /**
     * Emit the snapshot of a fresh range under chain key @p key;
     * @return the trace index of its last log-line persist.
     */
    std::size_t emitRangeSnapshot(Addr base, std::size_t words,
                                  Edk key);

    Config cfg_;
    TraceBuilder &builder_;
    MemoryImage &image_;
    PersistentHeap &heap_;
    UndoLogLayout log_;
    TempRegPool temps_;
    BackdoorFn backdoor_;
    bool inTx_ = false;
    std::uint64_t entriesUsed_ = 0; ///< Appends in the open tx.
    std::set<Addr> loggedWords_;    ///< Dedup per tx (PMDK-like).
    std::map<Addr, Edk> loggedRanges_;         ///< Range -> chain key.
    std::map<Addr, std::size_t> rangeCvapIdx_; ///< Last snapshot cvap.
    std::uint32_t rangeKeyCursor_ = 0;
    std::uint64_t logCursor_ = 0;   ///< Rotating allocation cursor.
    std::uint64_t txCount_ = 0;
    std::vector<PersistObligation> obligations_;
    std::vector<std::size_t> commitMarks_;
};

} // namespace ede

#endif // EDE_NVM_FRAMEWORK_HH
