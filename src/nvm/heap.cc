#include "nvm/heap.hh"

#include "common/logging.hh"

namespace ede {

PersistentHeap::PersistentHeap(Addr base, std::uint64_t size)
    : base_(base), size_(size), cursor_(base)
{
    ede_assert((base & 0xf) == 0, "heap base must be 16-byte aligned");
    ede_assert(size >= (1ull << kMinClassLog2), "heap too small");
}

int
PersistentHeap::sizeClass(std::uint64_t bytes)
{
    int log2 = kMinClassLog2;
    while ((1ull << log2) < bytes)
        ++log2;
    ede_assert(log2 <= kMaxClassLog2, "allocation of ", bytes,
               " bytes exceeds the largest size class");
    return log2 - kMinClassLog2;
}

Addr
PersistentHeap::alloc(std::uint64_t bytes)
{
    const int cls = sizeClass(bytes);
    const std::uint64_t rounded = 1ull << (cls + kMinClassLog2);
    live_ += rounded;
    auto &list = freeLists_[cls];
    if (!list.empty()) {
        const Addr a = list.back();
        list.pop_back();
        return a;
    }
    if (cursor_ + rounded > base_ + size_)
        ede_fatal("persistent heap exhausted (", size_, " bytes)");
    const Addr a = cursor_;
    cursor_ += rounded;
    return a;
}

void
PersistentHeap::free(Addr addr, std::uint64_t bytes)
{
    const int cls = sizeClass(bytes);
    live_ -= 1ull << (cls + kMinClassLog2);
    freeLists_[cls].push_back(addr);
}

} // namespace ede
