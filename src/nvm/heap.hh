/**
 * @file
 * Persistent heap: a segregated-free-list allocator over the NVM
 * address range.
 *
 * The paper's applications allocate tree nodes and log slots from a
 * PMDK pool.  This allocator hands out addresses in the simulated NVM
 * region; like PMDK's, allocations are 16-byte aligned (so STP-based
 * undo logging can persist an {addr, value} pair with one DC CVAP).
 *
 * Substitution note (see DESIGN.md): allocator *metadata* is kept in
 * volatile host memory rather than being made crash-consistent
 * itself; recovery tests reconstruct reachability from the data
 * structure roots, which is the property the paper's evaluation
 * depends on.
 */

#ifndef EDE_NVM_HEAP_HH
#define EDE_NVM_HEAP_HH

#include <array>
#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace ede {

/** Bump-plus-free-list allocator over [base, base+size). */
class PersistentHeap
{
  public:
    /** Manage the range [base, base+size). */
    PersistentHeap(Addr base, std::uint64_t size);

    /**
     * Allocate @p bytes (rounded up to a power-of-two class, minimum
     * 16, maximum 64 KiB).  @return the address; aborts when the
     * region is exhausted.
     */
    Addr alloc(std::uint64_t bytes);

    /** Return a block obtained from alloc() with the same size. */
    void free(Addr addr, std::uint64_t bytes);

    /** Bytes handed out and not yet freed. */
    std::uint64_t bytesLive() const { return live_; }

    /** Bytes consumed from the bump region so far. */
    std::uint64_t bytesReserved() const { return cursor_ - base_; }

    /** First managed address. */
    Addr base() const { return base_; }

    /** One past the last managed address. */
    Addr limit() const { return base_ + size_; }

  private:
    static constexpr int kMinClassLog2 = 4;   // 16 B
    static constexpr int kMaxClassLog2 = 26;  // 64 MiB

    static int sizeClass(std::uint64_t bytes);

    Addr base_;
    std::uint64_t size_;
    Addr cursor_;
    std::uint64_t live_ = 0;
    std::array<std::vector<Addr>,
               kMaxClassLog2 - kMinClassLog2 + 1> freeLists_;
};

} // namespace ede

#endif // EDE_NVM_HEAP_HH
