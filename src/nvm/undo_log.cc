#include "nvm/undo_log.hh"

#include <vector>

#include "common/logging.hh"

namespace ede {

RecoveryResult
recoverUndoLog(MemoryImage &image, const UndoLogLayout &layout)
{
    ede_assert(layout.stateAddr != kNoAddr && layout.capacity > 0,
               "recovery needs a valid log layout");
    RecoveryResult result;
    const std::uint64_t state =
        image.read<std::uint64_t>(layout.stateAddr);
    result.sawCommitted = (state == kTxCommitted);

    // Collect the valid entries in log order, discarding torn ones
    // (non-empty addr word whose checksum disagrees with the pair).
    std::vector<std::uint64_t> valid;
    std::vector<std::uint64_t> torn;
    for (std::uint64_t i = 0; i < layout.capacity; ++i) {
        const std::uint64_t word =
            image.read<std::uint64_t>(layout.entryAddr(i));
        if (word == 0)
            continue;
        const std::uint64_t old_val =
            image.read<std::uint64_t>(layout.entryAddr(i) + 8);
        if (undoEntryIntact(word, old_val))
            valid.push_back(i);
        else
            torn.push_back(i);
    }
    result.entriesTorn = torn.size();

    if (!result.sawCommitted) {
        // Roll back the in-flight transaction, newest entry first so
        // repeated writes to one location restore the oldest value.
        for (auto it = valid.rbegin(); it != valid.rend(); ++it) {
            const Addr entry = layout.entryAddr(*it);
            const Addr target =
                undoEntryTarget(image.read<std::uint64_t>(entry));
            const std::uint64_t old_val =
                image.read<std::uint64_t>(entry + 8);
            image.write(target, old_val);
            result.appliedTargets.push_back(target);
            ++result.entriesApplied;
        }
    }
    // Torn entries are unusable either way: drop them with the rest.
    valid.insert(valid.end(), torn.begin(), torn.end());

    // Either way, finish with an empty, active log.
    for (std::uint64_t i : valid) {
        image.write<std::uint64_t>(layout.entryAddr(i), 0);
        ++result.entriesZeroed;
    }
    image.write<std::uint64_t>(layout.stateAddr, kTxActive);
    return result;
}

} // namespace ede
