/**
 * @file
 * Undo-log layout and crash recovery.
 *
 * The log lives at a fixed place in NVM:
 *
 *   stateAddr      : u64  -- kTxActive (0) or kTxCommitted (1)
 *   entriesBase    : array of 16-byte entries { u64 addr; u64 val }
 *
 * An entry is *valid* when its addr field is non-zero (entries are
 * zeroed at commit).  The commit protocol is:
 *
 *   1. all transactional data updates persisted        (barrier)
 *   2. state := COMMITTED, persisted                   (barrier)
 *   3. every used entry's addr := 0, persisted         (barrier)
 *   4. state := ACTIVE, persisted                      (barrier)
 *
 * Recovery (over a crash image):
 *   - state == COMMITTED: the crash hit step 3: finish the commit by
 *     zeroing entries; data is already durable.
 *   - state == ACTIVE: apply valid entries newest-first (roll back
 *     the in-flight transaction), then zero them.
 *
 * How each "barrier" is realized is configuration-dependent and is
 * the subject of the paper: see NvmFramework.
 */

#ifndef EDE_NVM_UNDO_LOG_HH
#define EDE_NVM_UNDO_LOG_HH

#include <cstdint>

#include "common/types.hh"
#include "mem/memory_image.hh"

namespace ede {

/** Transaction state words stored at UndoLogLayout::stateAddr. */
inline constexpr std::uint64_t kTxActive = 0;
inline constexpr std::uint64_t kTxCommitted = 1;

/** Where the log lives in NVM. */
struct UndoLogLayout
{
    Addr stateAddr = kNoAddr;   ///< 8-byte state word (16-aligned).
    Addr entriesBase = kNoAddr; ///< First {addr, val} entry.
    std::uint64_t capacity = 0; ///< Maximum number of entries.

    /** Address of entry @p i. */
    Addr entryAddr(std::uint64_t i) const { return entriesBase + 16 * i; }

    /** Bytes the log occupies. */
    std::uint64_t
    footprint() const
    {
        return (entriesBase - stateAddr) + 16 * capacity;
    }
};

/** Result of a recovery pass. */
struct RecoveryResult
{
    bool sawCommitted = false;       ///< Crash hit the commit window.
    std::uint64_t entriesApplied = 0;///< Undo entries rolled back.
    std::uint64_t entriesZeroed = 0;
};

/**
 * Run undo-log recovery over a crash image, mutating it into a
 * consistent post-recovery state.
 */
RecoveryResult recoverUndoLog(MemoryImage &image,
                              const UndoLogLayout &layout);

} // namespace ede

#endif // EDE_NVM_UNDO_LOG_HH
