/**
 * @file
 * Undo-log layout and crash recovery.
 *
 * The log lives at a fixed place in NVM:
 *
 *   stateAddr      : u64  -- kTxActive (0) or kTxCommitted (1)
 *   entriesBase    : array of 16-byte entries { u64 addr; u64 val }
 *
 * The addr field is *sealed*: physical addresses fit in 48 bits, so
 * bits 48..63 carry a checksum over the {addr, val} pair.  A crash in
 * the middle of an entry persist (a torn NVM line write) leaves an
 * entry whose halves disagree; recovery detects the mismatch and
 * discards the entry instead of replaying garbage into the heap.
 *
 * An entry is *valid* when its addr field is non-zero (entries are
 * zeroed at commit).  The commit protocol is:
 *
 *   1. all transactional data updates persisted        (barrier)
 *   2. state := COMMITTED, persisted                   (barrier)
 *   3. every used entry's addr := 0, persisted         (barrier)
 *   4. state := ACTIVE, persisted                      (barrier)
 *
 * Recovery (over a crash image):
 *   - state == COMMITTED: the crash hit step 3: finish the commit by
 *     zeroing entries; data is already durable.
 *   - state == ACTIVE: apply valid entries newest-first (roll back
 *     the in-flight transaction), then zero them.  Entries whose
 *     checksum does not match are torn: they are counted, zeroed and
 *     skipped.
 *
 * How each "barrier" is realized is configuration-dependent and is
 * the subject of the paper: see NvmFramework.
 */

#ifndef EDE_NVM_UNDO_LOG_HH
#define EDE_NVM_UNDO_LOG_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "mem/memory_image.hh"

namespace ede {

/** Transaction state words stored at UndoLogLayout::stateAddr. */
inline constexpr std::uint64_t kTxActive = 0;
inline constexpr std::uint64_t kTxCommitted = 1;

/** Low 48 bits of an entry's addr word hold the target address. */
inline constexpr std::uint64_t kUndoEntryAddrMask =
    (std::uint64_t{1} << 48) - 1;

/** 16-bit checksum over an entry's {addr, val} pair. */
constexpr std::uint16_t
undoEntryChecksum(Addr target, std::uint64_t old_val)
{
    // splitmix64 finalizer over the pair, folded to 16 bits.  One
    // multiply-xor round per word is plenty to catch a torn persist
    // that splits the two 8-byte halves or tears within one.
    std::uint64_t z = (target & kUndoEntryAddrMask) * 0x9e3779b97f4a7c15ull;
    z ^= old_val + 0xbf58476d1ce4e5b9ull + (z << 6) + (z >> 2);
    z = (z ^ (z >> 30)) * 0x94d049bb133111ebull;
    z ^= z >> 27;
    return static_cast<std::uint16_t>(z ^ (z >> 16) ^ (z >> 32));
}

/**
 * Seal an entry's addr word: target address in the low 48 bits, the
 * {addr, val} checksum in the top 16.  Sealing never produces zero
 * for a non-zero target, so the empty-entry marker is preserved.
 */
constexpr std::uint64_t
sealUndoEntry(Addr target, std::uint64_t old_val)
{
    return (target & kUndoEntryAddrMask) |
           (static_cast<std::uint64_t>(undoEntryChecksum(target, old_val))
            << 48);
}

/** Target address carried by a sealed addr word. */
constexpr Addr
undoEntryTarget(std::uint64_t sealed_word)
{
    return sealed_word & kUndoEntryAddrMask;
}

/** True when a non-empty entry's halves agree with its checksum. */
constexpr bool
undoEntryIntact(std::uint64_t sealed_word, std::uint64_t old_val)
{
    return sealed_word ==
           sealUndoEntry(undoEntryTarget(sealed_word), old_val);
}

/** Where the log lives in NVM. */
struct UndoLogLayout
{
    Addr stateAddr = kNoAddr;   ///< 8-byte state word (16-aligned).
    Addr entriesBase = kNoAddr; ///< First {addr, val} entry.
    std::uint64_t capacity = 0; ///< Maximum number of entries.

    /** Address of entry @p i. */
    Addr entryAddr(std::uint64_t i) const { return entriesBase + 16 * i; }

    /** Bytes the log occupies. */
    std::uint64_t
    footprint() const
    {
        return (entriesBase - stateAddr) + 16 * capacity;
    }
};

/** Result of a recovery pass. */
struct RecoveryResult
{
    bool sawCommitted = false;       ///< Crash hit the commit window.
    std::uint64_t entriesApplied = 0;///< Undo entries rolled back.
    std::uint64_t entriesZeroed = 0;
    std::uint64_t entriesTorn = 0;   ///< Checksum mismatches discarded.

    /**
     * Heap addresses the rollback restored, newest entry first --
     * the witness trail a crash-consistency counterexample reports
     * alongside the invariant it violated.
     */
    std::vector<Addr> appliedTargets;
};

/**
 * Run undo-log recovery over a crash image, mutating it into a
 * consistent post-recovery state.
 */
RecoveryResult recoverUndoLog(MemoryImage &image,
                              const UndoLogLayout &layout);

} // namespace ede

#endif // EDE_NVM_UNDO_LOG_HH
