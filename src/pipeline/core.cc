#include "pipeline/core.hh"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <limits>
#include <string_view>

#include "common/logging.hh"

namespace ede {

const char *
tickingModeName(TickingMode mode)
{
    switch (mode) {
      case TickingMode::Auto:      return "auto";
      case TickingMode::SkipAhead: return "skip-ahead";
      case TickingMode::Reference: return "reference";
    }
    return "?";
}

TickingMode
resolveTickingMode(TickingMode mode)
{
    if (mode != TickingMode::Auto)
        return mode;
    // Read once: flipping the env var mid-process must not leave two
    // cores of one comparison run in different modes by accident.
    static const bool reference = [] {
        const char *v = std::getenv("EDE_REFERENCE_TICKING");
        return v && *v && std::string_view(v) != "0";
    }();
    return reference ? TickingMode::Reference : TickingMode::SkipAhead;
}

OoOCore::OoOCore(CoreParams params, MemSystem &mem, unsigned coreId)
    : params_(params), mem_(mem), coreId_(coreId),
      predictor_(params.predictorEntries)
{
    ticking_ = resolveTickingMode(params_.ticking);
    regMap_.fill(kNoSeq);
    wb_ = std::make_unique<WriteBuffer>(
        params_.wbSize, params_.wbDrainPerCycle,
        mem_.params().l1d.lineBytes, mem_,
        [this](const WbEntry &e, Cycle now) { onWbComplete(e, now); },
        [this](SeqNum barrier) { return storesOlderIncomplete(barrier); },
        coreId);
}

InflightInst *
OoOCore::find(SeqNum seq)
{
    auto it = index_.find(seq);
    return it == index_.end() ? nullptr : it->second;
}

bool
OoOCore::regsReady(const InflightInst &inst) const
{
    for (SeqNum dep : {inst.regDep1, inst.regDep2, inst.regDepBase}) {
        if (dep != kNoSeq && notExecuted_.count(dep))
            return false;
    }
    return true;
}

bool
OoOCore::gatesAtIssue(const InflightInst &inst) const
{
    if (inst.edeSrc == kNoSeq && inst.edeSrc2 == kNoSeq)
        return false;
    if (params_.ede == EnforceMode::WB) {
        // Loads observe memory at execute, so the load variant must
        // still be enforced at issue even in the WB design.
        return inst.di.isLoad();
    }
    return true;
}

bool
OoOCore::edeIssueReady(const InflightInst &inst) const
{
    if (inst.edeSrc != kNoSeq && incomplete_.count(inst.edeSrc))
        return false;
    if (inst.edeSrc2 != kNoSeq && incomplete_.count(inst.edeSrc2))
        return false;
    return true;
}

bool
OoOCore::storesOlderIncomplete(SeqNum barrier) const
{
    auto st = incompleteStores_.begin();
    if (st != incompleteStores_.end() && *st < barrier)
        return true;
    if (params_.dmbStCoversCvap) {
        auto cv = incompleteCvaps_.begin();
        if (cv != incompleteCvaps_.end() && *cv < barrier)
            return true;
    }
    return false;
}

void
OoOCore::recordCompletion(std::size_t trace_idx, Cycle now)
{
    if (recordCompletions_)
        completionCycles_[trace_idx] = now;
    if (!watched_.empty()) {
        auto it = watched_.find(trace_idx);
        if (it != watched_.end())
            it->second = now;
    }
}

void
OoOCore::completeSeq(SeqNum seq, const StaticInst &si,
                     std::size_t trace_idx, Cycle now)
{
    lastProgressCycle_ = now;
    progress_ = true;
    incomplete_.erase(seq);
    if (opIsStore(si.op))
        incompleteStores_.erase(seq);
    if (opIsCvap(si.op))
        incompleteCvaps_.erase(seq);
    if (si.isEdeProducer())
        edm_.complete(si.edkDef, seq);
    wb_->onProducerComplete(seq);
    if (InflightInst *in = find(seq)) {
        in->completed = true;
        in->completeCycle = now;
        if (in->edeCounted) {
            countersExit(si);
            in->edeCounted = false;
        }
    }
    recordCompletion(trace_idx, now);
}

void
OoOCore::onWbComplete(const WbEntry &entry, Cycle now)
{
    if (opIsStore(entry.si.op) && timingImage_) {
        timingImage_->write(entry.addr, entry.val0);
        if (entry.si.op == Op::Stp)
            timingImage_->write(entry.addr + 8, entry.val1);
    }
    if (entry.edeCounted)
        countersExit(entry.si);
    completeSeq(entry.seq, entry.si, entry.traceIdx, now);
}

void
OoOCore::pollLoads(Cycle now)
{
    for (auto it = outstandingLoads_.begin();
         it != outstandingLoads_.end();) {
        if (mem_.consumeDone(it->first)) {
            InflightInst *in = find(it->second);
            ede_assert(in, "load completion for unknown seq ",
                       it->second);
            in->executed = true;
            in->execCycle = now;
            notExecuted_.erase(in->seq);
            completeSeq(in->seq, in->di.si, in->traceIdx, now);
            it = outstandingLoads_.erase(it);
        } else {
            ++it;
        }
    }
    for (auto it = orphanReqs_.begin(); it != orphanReqs_.end();) {
        if (mem_.consumeDone(*it)) {
            it = orphanReqs_.erase(it);
            progress_ = true; // May unblock finished().
        } else {
            ++it;
        }
    }
}

void
OoOCore::execWriteback(Cycle now)
{
    while (!pendingExec_.empty() && pendingExec_.top().due <= now) {
        const SeqNum seq = pendingExec_.top().seq;
        pendingExec_.pop();
        // Any pop is state-changing -- including a stale (squashed)
        // event and the store/cvap agen path, which mutate pipeline
        // state without going through completeSeq.
        progress_ = true;
        InflightInst *in = find(seq);
        if (!in)
            continue; // Squashed after the event was scheduled.
        in->executed = true;
        in->execCycle = now;
        notExecuted_.erase(seq);
        const Op op = in->di.op();
        switch (op) {
          case Op::Str:
          case Op::Stp:
          case Op::DcCvap:
            // Address generation done; completion happens at the
            // write buffer.
            break;
          case Op::Branch:
          case Op::BranchCond: {
            if (op == Op::BranchCond)
                predictor_.update(in->di.pc, in->di.taken);
            const bool mispredicted = in->mispredicted;
            completeSeq(seq, in->di.si, in->traceIdx, now);
            if (mispredicted) {
                ++stats_.mispredicts;
                squash(*in, now);
            }
            break;
          }
          default:
            // ALU, moves, multiplies, IQ-mode JOINs, forwarded loads.
            completeSeq(seq, in->di.si, in->traceIdx, now);
            break;
        }
    }
}

void
OoOCore::checkDmbCompletion(Cycle now)
{
    while (!incompleteDmbs_.empty()) {
        const SeqNum d = *incompleteDmbs_.begin();
        auto older_in = [d](const std::set<SeqNum> &s) {
            return !s.empty() && *s.begin() < d;
        };
        if (older_in(incompleteStores_))
            break;
        if (params_.dmbStCoversCvap && older_in(incompleteCvaps_))
            break;
        incompleteDmbs_.erase(incompleteDmbs_.begin());
        InflightInst *in = find(d);
        ede_assert(in, "DMB completion for unknown seq ", d);
        completeSeq(d, in->di.si, in->traceIdx, now);
    }
}

void
OoOCore::checkDsbCompletion(Cycle now)
{
    while (!incompleteDsbs_.empty()) {
        const SeqNum d = *incompleteDsbs_.begin();
        if (incomplete_.empty() || *incomplete_.begin() != d)
            break; // Some older instruction is still incomplete.
        incompleteDsbs_.erase(incompleteDsbs_.begin());
        InflightInst *in = find(d);
        ede_assert(in, "DSB completion for unknown seq ", d);
        in->executed = true;
        in->execCycle = now;
        completeSeq(d, in->di.si, in->traceIdx, now);
    }
}

void
OoOCore::retire(Cycle now)
{
    for (int n = 0; n < params_.retireWidth && !rob_.empty(); ++n) {
        InflightInst &h = rob_.front();
        if (!h.executed)
            return;
        const Op op = h.di.op();
        const bool needsWb =
            opIsStore(op) || opIsCvap(op) ||
            (op == Op::Join && params_.ede == EnforceMode::WB);

        if ((op == Op::Ldr || op == Op::DsbSy || op == Op::DmbSt) &&
            !h.completed) {
            return;
        }
        // On a multi-core machine the WAIT conditions span the
        // coherence point: remote cores' tracked instructions for the
        // key must have drained too (see CrossCoreOrdering).
        if (op == Op::WaitKey && !waitKeyClear(h.di.si.edkUse))
            return;
        if (op == Op::WaitAllKeys && !waitAllClear())
            return;
        if (needsWb && wb_->full()) {
            ++stats_.retireStallWbFull;
            return;
        }

        if (needsWb) {
            WbEntry e;
            e.seq = h.seq;
            e.traceIdx = h.traceIdx;
            e.si = h.di.si;
            e.addr = h.di.addr;
            e.size = h.di.si.size;
            e.val0 = h.di.val0;
            e.val1 = h.di.val1;
            e.dmbBarrier = h.dmbBarrier;
            if (params_.ede == EnforceMode::WB) {
                e.srcId = h.edeSrc;
                e.srcId2 = h.edeSrc2;
            }
            if (h.di.si.usesEde()) {
                countersEnter(h.di.si);
                e.edeCounted = true;
            }
            wb_->insert(std::move(e));
        }

        if (op == Op::WaitKey || op == Op::WaitAllKeys)
            completeSeq(h.seq, h.di.si, h.traceIdx, now);

        // Retirement commits this producer's mapping into the
        // non-speculative EDM -- unless it already completed, in
        // which case the link is dead.
        if (h.di.si.isEdeProducer() && incomplete_.count(h.seq))
            edm_.retireDefine(h.di.si.edkDef, h.seq);

        h.retireCycle = now;
        ++stats_.retired;
        lastProgressCycle_ = now;
        progress_ = true;
        if (op == Op::Ldr && !lq_.empty() && lq_.front() == h.seq)
            lq_.pop_front();
        if ((opIsStore(op) || opIsCvap(op)) && !sq_.empty() &&
            sq_.front() == h.seq) {
            sq_.pop_front();
        }
        index_.erase(h.seq);
        rob_.pop_front();
    }
}

void
OoOCore::issue(Cycle now)
{
    const SeqNum dsb_gate = incompleteDsbs_.empty()
        ? std::numeric_limits<SeqNum>::max()
        : *incompleteDsbs_.begin();
    const SeqNum dmb_gate = incompleteDmbs_.empty()
        ? std::numeric_limits<SeqNum>::max()
        : *incompleteDmbs_.begin();

    int alu = params_.aluUnits;
    int mul = params_.mulUnits;
    int branch = params_.branchUnits;
    int load = params_.loadUnits;
    int store = params_.storeUnits;
    int issued = 0;
    bool removed_any = false;

    for (SeqNum s : iq_) {
        if (issued >= params_.issueWidth)
            break;
        if (s > dsb_gate)
            break; // Everything younger than an incomplete DSB waits.
        InflightInst *inp = find(s);
        ede_assert(inp && inp->inIq, "stale IQ entry ", s);
        InflightInst &in = *inp;
        if (!regsReady(in))
            continue;
        if (gatesAtIssue(in) && !edeIssueReady(in))
            continue; // eDepReady clear (Section V-B1).
        // Store barrier: younger memory operations wait in the LSQ.
        if (in.di.isMemRef() && in.seq > dmb_gate)
            continue;

        const Op op = in.di.op();
        bool launched = false;
        switch (op) {
          case Op::IntAlu:
          case Op::Mov:
          case Op::Join:
            if (alu > 0) {
                --alu;
                pendingExec_.push({now + params_.aluLatency, s});
                launched = true;
            }
            break;
          case Op::IntMult:
            if (mul > 0) {
                --mul;
                pendingExec_.push({now + params_.mulLatency, s});
                launched = true;
            }
            break;
          case Op::Branch:
          case Op::BranchCond:
            if (branch > 0) {
                --branch;
                pendingExec_.push({now + params_.branchLatency, s});
                launched = true;
            }
            break;
          case Op::Str:
          case Op::Stp:
          case Op::DcCvap:
            if (store > 0) {
                --store;
                pendingExec_.push({now + params_.agenLatency, s});
                launched = true;
            }
            break;
          case Op::Ldr: {
            if (load <= 0)
                break;
            if (in.memDep != kNoSeq) {
                if (notExecuted_.count(in.memDep))
                    break; // Store address/data not ready yet.
                if (incomplete_.count(in.memDep)) {
                    if (!in.memDepCovers)
                        break; // Partial overlap: wait for the store.
                    --load;
                    ++stats_.loadsForwarded;
                    pendingExec_.push({now + params_.forwardLatency, s});
                    launched = true;
                    break;
                }
                // Store already visible: normal cache access.
            }
            if (auto id = mem_.sendLoad(in.di.addr, in.di.si.size, now,
                                        coreId_)) {
                --load;
                outstandingLoads_[*id] = s;
                in.loadReq = *id;
                launched = true;
            }
            break;
          }
          default:
            ede_panic("op ", opName(op), " should not be in the IQ");
        }
        if (launched) {
            in.issued = true;
            in.inIq = false;
            in.issueCycle = now;
            ++issued;
            ++stats_.issuedOps;
            removed_any = true;
            progress_ = true;
        }
    }

    if (removed_any) {
        std::erase_if(iq_, [this](SeqNum s) {
            InflightInst *in = find(s);
            return !in || !in->inIq;
        });
    }
    stats_.issueHist.sample(static_cast<std::uint64_t>(issued));
}

void
OoOCore::dispatch(Cycle now)
{
    if (now < fetchResumeAt_)
        return;
    for (int n = 0; n < params_.fetchWidth; ++n) {
        if (fetchIdx_ >= trace_->size())
            return;
        const DynInst &di = (*trace_)[fetchIdx_];
        const Op op = di.op();

        const bool to_iq =
            op == Op::IntAlu || op == Op::IntMult || op == Op::Mov ||
            op == Op::Ldr || op == Op::Str || op == Op::Stp ||
            op == Op::DcCvap || op == Op::Branch ||
            op == Op::BranchCond ||
            (op == Op::Join && params_.ede != EnforceMode::WB);

        if (rob_.size() >= static_cast<std::size_t>(params_.robSize)) {
            ++stats_.dispatchStallRob;
            return;
        }
        if (to_iq && iq_.size() >= static_cast<std::size_t>(
                params_.iqSize)) {
            ++stats_.dispatchStallIq;
            return;
        }
        if (op == Op::Ldr && lq_.size() >= static_cast<std::size_t>(
                params_.lqSize)) {
            ++stats_.dispatchStallLsq;
            return;
        }
        if ((opIsStore(op) || opIsCvap(op)) &&
            sq_.size() >= static_cast<std::size_t>(params_.sqSize)) {
            ++stats_.dispatchStallLsq;
            return;
        }

        rob_.emplace_back();
        InflightInst &in = rob_.back();
        in.di = di;
        in.seq = nextSeq_++;
        in.traceIdx = fetchIdx_;
        in.dispatchCycle = now;
        index_.emplace(in.seq, &in);
        ++fetchIdx_;
        ++stats_.dispatched;
        progress_ = true;

        const StaticInst &si = di.si;

        // EDE rename: first resolve consumer links, then record the
        // producer definition (Section IV-A1).
        if (op != Op::WaitKey && edkIsReal(si.edkUse))
            in.edeSrc = edm_.specLookup(si.edkUse);
        if (op == Op::Join && edkIsReal(si.edkUse2))
            in.edeSrc2 = edm_.specLookup(si.edkUse2);
        if (si.isEdeProducer())
            edm_.specDefine(si.edkDef, in.seq);
        if (!edeSrcOverrides_.empty()) {
            auto ov = edeSrcOverrides_.find(in.traceIdx);
            if (ov != edeSrcOverrides_.end())
                in.edeSrc = in.seq + ov->second;
        }

        // Register dependences.
        auto reg_dep = [this](RegIndex r) {
            return (r == kNoReg || r == kZeroReg) ? kNoSeq : regMap_[r];
        };
        in.regDep1 = reg_dep(si.src1);
        in.regDep2 = reg_dep(si.src2);
        in.regDepBase = reg_dep(si.base);
        if (si.writesReg())
            regMap_[si.dst] = in.seq;

        // Memory dependence: youngest older overlapping store, first
        // in the store queue, then in the write buffer.
        if (op == Op::Ldr) {
            const Addr lo = di.addr;
            const Addr hi = di.addr + si.size;
            for (auto it = sq_.rbegin(); it != sq_.rend(); ++it) {
                const InflightInst *st = index_.at(*it);
                if (!st->di.isStore())
                    continue;
                const Addr slo = st->di.addr;
                const Addr shi = st->di.addr + st->di.si.size;
                if (slo < hi && lo < shi) {
                    in.memDep = st->seq;
                    in.memDepCovers = slo <= lo && hi <= shi;
                    break;
                }
            }
            if (in.memDep == kNoSeq) {
                auto [seq, covers] = wb_->youngestOverlap(di.addr,
                                                          si.size);
                in.memDep = seq;
                in.memDepCovers = covers;
            }
        }

        // Per-op dispatch state.
        switch (op) {
          case Op::Nop:
            in.executed = true;
            in.completed = true;
            recordCompletion(in.traceIdx, now);
            break;
          case Op::DmbSt:
            // Modelled as gem5's LSQ does: a barrier that completes
            // once all older store-class operations have, and that
            // holds younger memory operations at issue until then.
            in.executed = true;
            incomplete_.insert(in.seq);
            incompleteDmbs_.insert(in.seq);
            dmbSeqs_.push_back(in.seq);
            break;
          case Op::WaitKey:
          case Op::WaitAllKeys:
            in.executed = true;
            incomplete_.insert(in.seq);
            break;
          case Op::DsbSy:
            incomplete_.insert(in.seq);
            incompleteDsbs_.insert(in.seq);
            break;
          case Op::Join:
            incomplete_.insert(in.seq);
            if (params_.ede == EnforceMode::WB) {
                in.executed = true; // Gated in the write buffer.
            } else {
                notExecuted_.insert(in.seq);
                iq_.push_back(in.seq);
                in.inIq = true;
            }
            break;
          default:
            notExecuted_.insert(in.seq);
            incomplete_.insert(in.seq);
            iq_.push_back(in.seq);
            in.inIq = true;
            if (op == Op::Ldr)
                lq_.push_back(in.seq);
            if (opIsStore(op) || opIsCvap(op))
                sq_.push_back(in.seq);
            if (opIsStore(op)) {
                incompleteStores_.insert(in.seq);
                if (!dmbSeqs_.empty())
                    in.dmbBarrier = dmbSeqs_.back();
            }
            if (opIsCvap(op)) {
                incompleteCvaps_.insert(in.seq);
                if (params_.dmbStCoversCvap && !dmbSeqs_.empty())
                    in.dmbBarrier = dmbSeqs_.back();
            }
            if (op == Op::BranchCond) {
                ++stats_.branches;
                const bool predicted = predictor_.predict(di.pc);
                in.mispredicted = predicted != di.taken;
            } else if (op == Op::Branch) {
                ++stats_.branches;
            }
            break;
        }

        // WAIT counters track only the post-retirement window
        // (Section IV-B2): instructions that retired before
        // completing, i.e. write-buffer residents.  They enter at
        // write-buffer insertion in retire().  Loads and issue-
        // queue-resolved JOINs complete before they can retire, so
        // they never need tracking -- and counting them at dispatch
        // would deadlock: a younger EDE-gated load tagged with key k
        // holds the counter for k, a WAIT at the ROB head waits for
        // that counter, and the load's producer cannot complete
        // because it cannot retire past the blocked WAIT.  The fuzz
        // campaign (bench/verify_fuzz) finds that wedge immediately.
    }
}

void
OoOCore::squash(InflightInst &branch, Cycle now)
{
    ++stats_.squashes;
    progress_ = true;
    const SeqNum bseq = branch.seq;
    const std::size_t redirect = branch.traceIdx + 1;

    while (!rob_.empty() && rob_.back().seq > bseq) {
        InflightInst &x = rob_.back();
        ++stats_.squashedInsts;
        if (x.edeCounted)
            countersExit(x.di.si);
        if (x.loadReq != kNoReq &&
            outstandingLoads_.erase(x.loadReq)) {
            orphanReqs_.insert(x.loadReq);
        }
        index_.erase(x.seq);
        rob_.pop_back();
    }

    auto prune_seqs = [bseq](auto &container) {
        std::erase_if(container,
                      [bseq](SeqNum s) { return s > bseq; });
    };
    prune_seqs(iq_);
    prune_seqs(lq_);
    prune_seqs(sq_);
    notExecuted_.erase(notExecuted_.upper_bound(bseq),
                       notExecuted_.end());
    incomplete_.erase(incomplete_.upper_bound(bseq), incomplete_.end());
    incompleteStores_.erase(incompleteStores_.upper_bound(bseq),
                            incompleteStores_.end());
    incompleteCvaps_.erase(incompleteCvaps_.upper_bound(bseq),
                           incompleteCvaps_.end());
    incompleteDsbs_.erase(incompleteDsbs_.upper_bound(bseq),
                          incompleteDsbs_.end());
    incompleteDmbs_.erase(incompleteDmbs_.upper_bound(bseq),
                          incompleteDmbs_.end());
    while (!dmbSeqs_.empty() && dmbSeqs_.back() > bseq)
        dmbSeqs_.pop_back();

    // EDM recovery: non-speculative state plus replay of surviving
    // in-flight producer definitions (Section V-A1).
    std::vector<std::pair<Edk, SeqNum>> survivors;
    for (const InflightInst &in : rob_) {
        if (in.di.si.isEdeProducer() && incomplete_.count(in.seq))
            survivors.emplace_back(in.di.si.edkDef, in.seq);
    }
    edm_.squashRestore(survivors);

    // Register map recovery.
    regMap_.fill(kNoSeq);
    for (const InflightInst &in : rob_) {
        if (in.di.si.writesReg())
            regMap_[in.di.si.dst] = in.seq;
    }

    branch.mispredicted = false;
    fetchIdx_ = redirect;
    fetchResumeAt_ = now + params_.mispredictPenalty;
}

// --- Runtime EDK stall analyzer -----------------------------------
//
// Invoked when no instruction has completed or retired for
// edkStallCycles.  Starting from every EDE-gated waiter (issue-queue
// entries held by eDepReady, write-buffer entries held by srcID
// tags), it walks the full blocking graph -- EDE links, register and
// memory dependences, fence gates, retirement order, write-buffer
// line/DMB ordering -- classifying each node as *progressing* (an
// event already in flight will advance it: an outstanding memory
// request, a scheduled execution event, an active push) or *stuck*
// (every path ends in a link that can never resolve).  A node
// encountered grey on the DFS stack is a dependence cycle.  This
// separates a consumer that merely waits out a ~1500-cycle NVM media
// write (External) from one wedged on corrupted EDM/srcID state
// (Stuck).

bool
OoOCore::edkNodeProgressing(SeqNum s,
                            std::vector<SeqNum> &blockers) const
{
    if (!incomplete_.count(s))
        return true;

    // Write-buffer resident?
    for (const WbEntry &e : wb_->entries()) {
        if (e.seq != s)
            continue;
        if (e.pushing)
            return true;
        if (e.srcId != kNoSeq)
            blockers.push_back(e.srcId);
        if (e.srcId2 != kNoSeq)
            blockers.push_back(e.srcId2);
        wb_->appendLineBlockers(s, blockers);
        if (e.dmbBarrier != kNoSeq) {
            auto st = incompleteStores_.begin();
            if (st != incompleteStores_.end() && *st < e.dmbBarrier &&
                *st != s) {
                blockers.push_back(*st);
            }
            if (params_.dmbStCoversCvap) {
                auto cv = incompleteCvaps_.begin();
                if (cv != incompleteCvaps_.end() &&
                    *cv < e.dmbBarrier && *cv != s) {
                    blockers.push_back(*cv);
                }
            }
        }
        // No gate left: the push starts as soon as the L1D accepts
        // it, which is backpressure, not a dependence.
        return blockers.empty();
    }

    auto it = index_.find(s);
    if (it == index_.end())
        return false; // Incomplete but untracked: a dangling link.
    const InflightInst &in = *it->second;
    if (in.completed)
        return true;
    if (in.di.isLoad() && in.loadReq != kNoReq)
        return true; // The memory system owes a response.
    if (in.issued && !in.executed)
        return true; // A pendingExec event will fire.

    const Op op = in.di.op();
    switch (op) {
      case Op::DmbSt: {
        auto st = incompleteStores_.begin();
        if (st != incompleteStores_.end() && *st < s)
            blockers.push_back(*st);
        if (params_.dmbStCoversCvap) {
            auto cv = incompleteCvaps_.begin();
            if (cv != incompleteCvaps_.end() && *cv < s)
                blockers.push_back(*cv);
        }
        return blockers.empty();
      }
      case Op::DsbSy: {
        auto ol = incomplete_.begin();
        if (ol != incomplete_.end() && *ol < s)
            blockers.push_back(*ol);
        return blockers.empty();
      }
      case Op::WaitKey:
      case Op::WaitAllKeys: {
        // Blocked on the WAIT counter holders, plus in-order
        // retirement behind the ROB head.
        const Edk key = in.di.si.edkUse;
        auto holds = [op, key](const StaticInst &si) {
            if (op == Op::WaitAllKeys)
                return true;
            return si.edkDef == key || si.edkUse == key ||
                   si.edkUse2 == key;
        };
        for (const InflightInst &o : rob_) {
            if (o.seq >= s)
                break;
            if (o.edeCounted && holds(o.di.si))
                blockers.push_back(o.seq);
        }
        for (const WbEntry &e : wb_->entries()) {
            if (e.seq < s && e.edeCounted && holds(e.si))
                blockers.push_back(e.seq);
        }
        if (!rob_.empty() && rob_.front().seq != s)
            blockers.push_back(rob_.front().seq);
        return blockers.empty();
      }
      default:
        break;
    }

    if (in.inIq) {
        if (gatesAtIssue(in)) {
            if (in.edeSrc != kNoSeq && incomplete_.count(in.edeSrc))
                blockers.push_back(in.edeSrc);
            if (in.edeSrc2 != kNoSeq && incomplete_.count(in.edeSrc2))
                blockers.push_back(in.edeSrc2);
        }
        for (SeqNum dep : {in.regDep1, in.regDep2, in.regDepBase}) {
            if (dep != kNoSeq && notExecuted_.count(dep))
                blockers.push_back(dep);
        }
        if (op == Op::Ldr && in.memDep != kNoSeq) {
            if (notExecuted_.count(in.memDep)) {
                blockers.push_back(in.memDep);
            } else if (incomplete_.count(in.memDep) &&
                       !in.memDepCovers) {
                blockers.push_back(in.memDep);
            }
        }
        if (!incompleteDsbs_.empty() &&
            *incompleteDsbs_.begin() < s) {
            blockers.push_back(*incompleteDsbs_.begin());
        }
        if (in.di.isMemRef() && !incompleteDmbs_.empty() &&
            *incompleteDmbs_.begin() < s) {
            blockers.push_back(*incompleteDmbs_.begin());
        }
        // No gate: only functional-unit bandwidth holds it back.
        return blockers.empty();
    }

    // Executed, waiting to retire: behind the ROB head, or (at the
    // head) on a free write-buffer slot.
    if (!rob_.empty() && rob_.front().seq != s) {
        blockers.push_back(rob_.front().seq);
        return false;
    }
    if (wb_->full() && !wb_->entries().empty()) {
        blockers.push_back(wb_->entries().front().seq);
        return false;
    }
    return true;
}

bool
OoOCore::edkClassify(SeqNum s, EdkWalk &walk) const
{
    auto c = walk.color.find(s);
    if (c != walk.color.end()) {
        if (c->second == 1) {
            // Grey on the DFS stack: a genuine dependence cycle.
            if (walk.cycle.empty()) {
                auto pos = std::find(walk.stack.begin(),
                                     walk.stack.end(), s);
                walk.cycle.assign(pos, walk.stack.end());
            }
            return false;
        }
        return walk.progressing.at(s);
    }
    walk.color[s] = 1;
    walk.stack.push_back(s);

    std::vector<SeqNum> blockers;
    bool prog = edkNodeProgressing(s, blockers);
    if (!prog) {
        if (!blockers.empty())
            walk.waitsOn[s] = blockers.front();
        prog = !blockers.empty();
        for (SeqNum b : blockers) {
            if (!edkClassify(b, walk))
                prog = false;
        }
    }

    walk.stack.pop_back();
    walk.color[s] = 2;
    walk.progressing[s] = prog;
    return prog;
}

EdkChainNode
OoOCore::edkChainNode(SeqNum s, const EdkWalk &walk) const
{
    EdkChainNode n;
    n.seq = s;
    auto w = walk.waitsOn.find(s);
    if (w != walk.waitsOn.end())
        n.waitsOn = w->second;
    auto it = index_.find(s);
    if (it != index_.end()) {
        n.traceIdx = it->second->traceIdx;
        n.op = it->second->di.op();
        return n;
    }
    for (const WbEntry &e : wb_->entries()) {
        if (e.seq == s) {
            n.traceIdx = e.traceIdx;
            n.op = e.si.op;
            break;
        }
    }
    return n;
}

OoOCore::EdkStallAnalysis
OoOCore::analyzeEdkStall()
{
    EdkStallAnalysis a;

    std::vector<SeqNum> roots;
    for (const InflightInst &in : rob_) {
        if (in.inIq && gatesAtIssue(in) && !edeIssueReady(in))
            roots.push_back(in.seq);
    }
    for (const WbEntry &e : wb_->entries()) {
        if (e.srcId != kNoSeq || e.srcId2 != kNoSeq)
            roots.push_back(e.seq);
    }
    if (roots.empty())
        return a; // NotEde: nothing is waiting on an EDE link.

    EdkWalk walk;
    SeqNum oldest_stuck = kNoSeq;
    for (SeqNum r : roots) {
        if (!edkClassify(r, walk) &&
            (oldest_stuck == kNoSeq || r < oldest_stuck)) {
            oldest_stuck = r;
        }
    }
    if (oldest_stuck == kNoSeq) {
        a.cls = EdkStallClass::External;
        return a;
    }

    a.cls = EdkStallClass::Stuck;
    a.cycleFound = !walk.cycle.empty();
    a.release = oldest_stuck;

    if (a.cycleFound) {
        for (SeqNum s : walk.cycle)
            a.chain.push_back(edkChainNode(s, walk));
    } else {
        SeqNum s = oldest_stuck;
        for (int depth = 0; s != kNoSeq && depth < 32; ++depth) {
            a.chain.push_back(edkChainNode(s, walk));
            auto w = walk.waitsOn.find(s);
            s = w == walk.waitsOn.end() ? kNoSeq : w->second;
        }
    }

    // Fence semantics for degrade mode: release only once every
    // older completable instruction has drained, exactly what a DSB
    // SY before the wedged consumer would have waited for.
    a.releasableNow = true;
    for (SeqNum s : incomplete_) {
        if (s >= a.release)
            break;
        if (edkClassify(s, walk)) {
            a.releasableNow = false;
            break;
        }
    }
    return a;
}

void
OoOCore::applyEdkDegrade(const EdkStallAnalysis &a, Cycle now)
{
    if (!a.releasableNow)
        return; // Re-checked after the next stall window.
    bool cleared = false;
    if (InflightInst *in = find(a.release)) {
        if (in->inIq &&
            (in->edeSrc != kNoSeq || in->edeSrc2 != kNoSeq)) {
            in->edeSrc = kNoSeq;
            in->edeSrc2 = kNoSeq;
            cleared = true;
        }
    }
    if (!cleared)
        cleared = wb_->clearEdeGates(a.release);
    if (cleared) {
        ++stats_.edkFencesSynthesized;
        // Releasing the gate is forward progress; the watchdog and
        // the analyzer both re-arm.  Flagging progress also keeps the
        // skip-ahead loop from jumping past the newly eligible work.
        lastProgressCycle_ = now;
        progress_ = true;
        ede_warn("EDK degrade: unresolvable dependence on seq ",
                 a.release, " converted to fence semantics at cycle ",
                 now);
    }
}

SimError
OoOCore::buildSimError(SimErrorKind kind, Cycle now) const
{
    SimError e;
    e.kind = kind;
    e.cycle = now;
    e.lastProgressCycle = lastProgressCycle_;
    e.fetchIdx = fetchIdx_;
    e.traceSize = trace_ ? trace_->size() : 0;
    e.robOccupancy = rob_.size();
    e.iqOccupancy = iq_.size();
    e.wbOccupancy = wb_->occupancy();

    const std::size_t head_n = std::min<std::size_t>(rob_.size(), 8);
    for (std::size_t i = 0; i < head_n; ++i) {
        const InflightInst &in = rob_[i];
        RobHeadInfo r;
        r.seq = in.seq;
        r.traceIdx = in.traceIdx;
        r.op = in.di.op();
        r.addr = in.di.addr;
        r.inIq = in.inIq;
        r.issued = in.issued;
        r.executed = in.executed;
        r.completed = in.completed;
        e.robHead.push_back(r);
    }

    const SeqNum dsb_gate = incompleteDsbs_.empty()
        ? std::numeric_limits<SeqNum>::max()
        : *incompleteDsbs_.begin();
    for (SeqNum s : iq_) {
        if (e.iqWaits.size() >= 8)
            break;
        auto it = index_.find(s);
        if (it == index_.end())
            continue;
        const InflightInst &in = *it->second;
        IqWaitInfo w;
        w.seq = in.seq;
        w.op = in.di.op();
        w.regsReady = regsReady(in);
        w.edeGated = gatesAtIssue(in) && !edeIssueReady(in);
        w.edeSrc = in.edeSrc;
        w.edeSrc2 = in.edeSrc2;
        w.dsbGated = s > dsb_gate;
        e.iqWaits.push_back(w);
    }

    for (const WbEntry &we : wb_->entries()) {
        WbChainInfo c;
        c.seq = we.seq;
        c.op = we.si.op;
        c.addr = we.addr;
        c.srcId = we.srcId;
        c.srcId2 = we.srcId2;
        c.dmbBarrier = we.dmbBarrier;
        c.pushing = we.pushing;
        e.wbChain.push_back(c);
    }

    for (int k = 1; k < kNumEdks; ++k) {
        const Edk key = static_cast<Edk>(k);
        const SeqNum spec = edm_.spec().lookup(key);
        const SeqNum nonspec = edm_.nonspec().lookup(key);
        if (spec == kNoSeq && nonspec == kNoSeq)
            continue;
        e.edmLinks.push_back(EdmLinkInfo{key, spec, nonspec});
    }
    return e;
}

bool
OoOCore::finished() const
{
    // The program is done when every instruction has completed (the
    // write buffer drains to the coherence/persistence point).  The
    // NVM on-DIMM buffer may still be pushing lines to the media in
    // the background; that drain is not part of execution time.
    return fetchIdx_ >= trace_->size() && rob_.empty() &&
           wb_->empty() && outstandingLoads_.empty() &&
           orphanReqs_.empty();
}

void
OoOCore::tickOnce(Cycle now)
{
    {
        PhaseTimer t(profile_, &HostProfile::memNanos);
        mem_.tick(now);
    }
    tickPipeline(now);
}

void
OoOCore::tickPipeline(Cycle now)
{
    {
        PhaseTimer t(profile_, &HostProfile::memNanos);
        pollLoads(now);
    }
    {
        PhaseTimer t(profile_, &HostProfile::wbNanos);
        execWriteback(now);
        wb_->tick(now);
        checkDmbCompletion(now);
        checkDsbCompletion(now);
        retire(now);
    }
    {
        PhaseTimer t(profile_, &HostProfile::issueNanos);
        issue(now);
    }
    {
        PhaseTimer t(profile_, &HostProfile::fetchNanos);
        dispatch(now);
    }
}

bool
OoOCore::runChecks(Cycle now)
{
    // Runtime EDK stall analyzer: much tighter than the watchdog,
    // so an unresolvable dependence is reported (or degraded to
    // fence semantics) within one edkStallCycles window instead
    // of after the full watchdog wait.
    if (params_.ede != EnforceMode::None &&
        now - lastProgressCycle_ > params_.edkStallCycles &&
        now >= lastEdkCheckCycle_ + params_.edkStallCycles) {
        lastEdkCheckCycle_ = now;
        ++stats_.edkStallChecks;
        const EdkStallAnalysis a = analyzeEdkStall();
        if (a.cls == EdkStallClass::Stuck) {
            ++stats_.edkStuckDetected;
            if (params_.edkRecoveryMode == EdkRecoveryMode::Degrade) {
                applyEdkDegrade(a, now);
            } else {
                simError_ = buildSimError(
                    SimErrorKind::EdkDependenceCycle, now);
                simError_.edkChain = a.chain;
                return true;
            }
        } else if (a.cls == EdkStallClass::External) {
            ++stats_.edkExternalStalls;
        }
    }
    // No panic on a wedged pipeline: the watchdog (and, as a hard
    // backstop, maxCycles) stops the run and leaves a structured
    // diagnostic in simError_ for the caller to report.
    if (now - lastProgressCycle_ > params_.watchdogCycles) {
        simError_ =
            buildSimError(SimErrorKind::WatchdogNoProgress, now);
        return true;
    }
    if (now > params_.maxCycles) {
        simError_ =
            buildSimError(SimErrorKind::MaxCyclesExceeded, now);
        return true;
    }
    return false;
}

Cycle
OoOCore::skipTarget(Cycle now) const
{
    // Component hints.  Every hint is conservative-early: a component
    // may advertise a cycle at which nothing happens after all, but
    // must never become actionable *before* its hint (DESIGN.md
    // section 10).  kNoCycle means "no intrinsic event".
    Cycle target = std::min(mem_.nextEventCycle(now),
                            wb_->nextEventCycle(now));

    // Core-scheduled execution writebacks.
    if (!pendingExec_.empty())
        target = std::min(target, std::max(now, pendingExec_.top().due));

    // The fetch redirect after a squash.  The tick just executed ran
    // at cycle now-1, so dispatch was redirect-gated iff
    // fetchResumeAt_ >= now -- and the gate lifts at fetchResumeAt_
    // itself (== now means the very next tick dispatches: no skip).
    // When fetchResumeAt_ < now the frontend was not gated and
    // dispatch stalled structurally, which only core progress can
    // clear, so the window is uniform and needs no hint.
    if (fetchIdx_ < trace_->size() && fetchResumeAt_ >= now)
        target = std::min(target, fetchResumeAt_);

    // The run-loop checks are cycle-count triggered, not event
    // triggered: jump exactly onto each one's first firing cycle so
    // analyzer invocations, degrade releases and watchdog aborts land
    // on the same cycle as under reference ticking.
    if (params_.ede != EnforceMode::None) {
        const Cycle edk_fire =
            std::max(lastProgressCycle_ + params_.edkStallCycles + 1,
                     lastEdkCheckCycle_ + params_.edkStallCycles);
        target = std::min(target, std::max(now, edk_fire));
    }
    target = std::min(target,
                      lastProgressCycle_ + params_.watchdogCycles + 1);
    target = std::min(target, params_.maxCycles + 1);
    return target;
}

void
OoOCore::beginRun(const Trace &trace)
{
    ede_assert(!ran_, "OoOCore::run is single-shot; build a new core");
    ran_ = true;
    trace_ = &trace;
    if (recordCompletions_)
        completionCycles_.assign(trace.size(), kNoCycle);
}

Cycle
OoOCore::run(const Trace &trace)
{
    beginRun(trace);
    const auto wall_start = std::chrono::steady_clock::now();
    const bool skip = ticking_ == TickingMode::SkipAhead;

    Cycle now = 0;
    lastProgressCycle_ = 0;
    // Failed-attempt backoff: when a dead tick's skipTarget comes
    // back <= now (some queue is mid-drain and hints "ready"), the
    // full component walk was wasted.  Retrying it every dead cycle
    // can cost more than the ticks it saves, so back off
    // exponentially (capped) until a skip lands or progress resumes.
    // Purely a host-time heuristic: the extra dead cycles are ticked
    // normally, so simulated results are unaffected.
    Cycle nextAttempt = 0;
    Cycle backoff = 1;
    while (!finished()) {
        progress_ = false;
        // Snapshot the dead-tick counter set: when the tick below
        // makes no progress, these are the only statistics it may
        // have bumped, and every skipped cycle would bump them by
        // exactly the same amounts.
        const std::uint64_t pre_rob = stats_.dispatchStallRob;
        const std::uint64_t pre_iq = stats_.dispatchStallIq;
        const std::uint64_t pre_lsq = stats_.dispatchStallLsq;
        const std::uint64_t pre_wbfull = stats_.retireStallWbFull;
        const WriteBufferStats pre_wb = wb_->stats();

        tickOnce(now);
        ++now;
        if (profile_)
            ++profile_->hostTicks;
        if (runChecks(now))
            break;
        if (!skip || progress_ ||
            wb_->stats().pushes != pre_wb.pushes ||
            wb_->stats().memRejected != pre_wb.memRejected) {
            nextAttempt = 0;
            backoff = 1;
            continue;
        }
        if (now < nextAttempt)
            continue;

        // Dead tick: nothing dispatched, issued, executed, completed
        // or retired, and the write buffer started nothing.  Every
        // cycle until the earliest advertised event is an identical
        // no-op -- jump there, replaying the stall counters the
        // skipped ticks would have accumulated.
        Cycle target;
        {
            PhaseTimer timer(profile_, &HostProfile::skipNanos);
            if (profile_)
                ++profile_->skipAttempts;
            target = skipTarget(now);
        }
        if (target <= now) {
            nextAttempt = now + backoff;
            backoff = std::min<Cycle>(backoff * 2, 16);
            continue;
        }
        nextAttempt = 0;
        backoff = 1;
        const Cycle skipped = target - now;
        stats_.dispatchStallRob +=
            (stats_.dispatchStallRob - pre_rob) * skipped;
        stats_.dispatchStallIq +=
            (stats_.dispatchStallIq - pre_iq) * skipped;
        stats_.dispatchStallLsq +=
            (stats_.dispatchStallLsq - pre_lsq) * skipped;
        stats_.retireStallWbFull +=
            (stats_.retireStallWbFull - pre_wbfull) * skipped;
        wb_->replayGateStalls(
            (wb_->stats().srcIdGated - pre_wb.srcIdGated) * skipped,
            (wb_->stats().lineGated - pre_wb.lineGated) * skipped,
            (wb_->stats().dmbGated - pre_wb.dmbGated) * skipped);
        stats_.issueHist.sample(0, skipped); // issue() saw 0 each tick.
        now = target;
        if (profile_) {
            ++profile_->skipJumps;
            profile_->cyclesSkipped += skipped;
        }
        // The landing cycle may be a check firing cycle.
        if (runChecks(now))
            break;
    }
    stats_.cycles = now;
    if (profile_) {
        profile_->cyclesSimulated = now;
        profile_->referenceTicking = !skip;
        profile_->wallNanos += static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - wall_start)
                .count());
    }
    return now;
}

} // namespace ede
