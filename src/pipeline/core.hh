/**
 * @file
 * Cycle-level out-of-order core with EDE support.
 *
 * Models the A72-like configuration of Table I: 3-wide in-order
 * fetch/dispatch and retire, an 8-wide unified issue queue with
 * register/memory/execution-dependence wakeup, split 16-entry
 * load/store queues with store-to-load forwarding, a 128-entry ROB,
 * and a 16-entry post-retirement write buffer that drains out of
 * order.
 *
 * Instruction completion follows Section IV-B1 of the paper: ALU ops
 * and loads complete at writeback; stores complete when their write
 * buffer push lands in the L1D (globally visible); DC CVAP completes
 * when the line is accepted by the persistent on-DIMM buffer; DSB SY
 * completes when every older instruction has completed and blocks
 * issue of all younger instructions until then; DMB ST only orders
 * store visibility; WAIT_KEY / WAIT_ALL_KEYS retire when the EDE
 * counters report no tracked older instruction.
 *
 * EDE enforcement is selected by CoreParams::ede:
 *  - IQ: consumers stall in the issue queue (eDepReady) until the
 *    producer completes;
 *  - WB: store/writeback/JOIN consumers retire freely and are gated
 *    by srcID tags in the write buffer; load consumers (the future-
 *    work variant) still gate at issue because loads observe memory
 *    at execute.
 *
 * Mispredicted conditional branches squash all younger instructions
 * when they execute: the speculative EDM and the register map are
 * restored from non-speculative state plus a replay of the surviving
 * in-flight definitions, and fetch resumes after a refill penalty.
 */

#ifndef EDE_PIPELINE_CORE_HH
#define EDE_PIPELINE_CORE_HH

#include <array>
#include <deque>
#include <memory>
#include <queue>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "core/cross_core.hh"
#include "core/edm.hh"
#include "exp/profile.hh"
#include "core/wait_counters.hh"
#include "mem/memory_image.hh"
#include "mem/mem_system.hh"
#include "pipeline/inflight.hh"
#include "pipeline/params.hh"
#include "pipeline/predictor.hh"
#include "pipeline/sim_error.hh"
#include "pipeline/write_buffer.hh"
#include "trace/trace.hh"

namespace ede {

/** Aggregate core statistics. */
struct CoreStats
{
    Cycle cycles = 0;
    std::uint64_t retired = 0;
    std::uint64_t dispatched = 0;
    std::uint64_t issuedOps = 0;
    Histogram issueHist{9};          ///< Fig. 11: issued per cycle, 0..8.
    std::uint64_t branches = 0;
    std::uint64_t mispredicts = 0;
    std::uint64_t squashes = 0;
    std::uint64_t squashedInsts = 0;
    std::uint64_t loadsForwarded = 0;
    std::uint64_t retireStallWbFull = 0;
    std::uint64_t dispatchStallRob = 0;
    std::uint64_t dispatchStallIq = 0;
    std::uint64_t dispatchStallLsq = 0;

    /** @name Runtime EDK stall analyzer (see CoreParams::edkStallCycles). */
    /// @{
    std::uint64_t edkStallChecks = 0;      ///< Analyzer invocations.
    std::uint64_t edkExternalStalls = 0;   ///< Long-latency memory, not a cycle.
    std::uint64_t edkStuckDetected = 0;    ///< Unresolvable chains found.
    std::uint64_t edkFencesSynthesized = 0;///< Degrade-mode gate releases.
    /// @}

    /** Retired instructions per cycle. */
    double
    ipc() const
    {
        return cycles ? static_cast<double>(retired) / cycles : 0.0;
    }
};

/** The out-of-order core. */
class OoOCore
{
  public:
    /**
     * @param mem    the memory hierarchy this core issues into
     * @param coreId this core's index into @p mem's private L1s
     */
    OoOCore(CoreParams params, MemSystem &mem, unsigned coreId = 0);

    /** This core's index in its System (0 on a single-core machine). */
    unsigned coreId() const { return coreId_; }

    /**
     * Attach the shared cross-core WAIT-counter aggregation.  When
     * attached, every WaitCounters enter/exit is mirrored into the
     * shared file and WAIT_KEY / WAIT_ALL_KEYS retirement additionally
     * requires the *remote* counters for the key to be clear -- the
     * paper's counters, widened across the coherence point.  Detached
     * (single-core) behaviour is bit-identical to the historical core.
     */
    void setCrossCore(CrossCoreOrdering *xcore) { xcore_ = xcore; }

    /**
     * Attach the coherent ("timing") memory image; store values are
     * applied to it in visibility order as stores complete.
     */
    void setTimingImage(MemoryImage *image) { timingImage_ = image; }

    /** Record the completion cycle of every trace element. */
    void setRecordCompletions(bool on) { recordCompletions_ = on; }

    /** Per-trace-index completion cycles (needs recording enabled). */
    const std::vector<Cycle> &completionCycles() const
    {
        return completionCycles_;
    }

    /**
     * Watch a single trace element's completion without paying for
     * full recording (used to delimit the measured phase).
     */
    void
    watchCompletion(std::size_t trace_idx)
    {
        watched_.emplace(trace_idx, kNoCycle);
    }

    /** Completion cycle of a watched element (kNoCycle if not yet). */
    Cycle
    watchedCompletion(std::size_t trace_idx) const
    {
        auto it = watched_.find(trace_idx);
        return it == watched_.end() ? kNoCycle : it->second;
    }

    /**
     * Run @p trace to completion; @return total cycles.  When the
     * progress watchdog or the maxCycles backstop fires, the run
     * stops early and simError() carries the diagnostic report --
     * callers must check it before trusting the cycle count.
     */
    Cycle run(const Trace &trace);

    /** Structured abort report; kind == None after a clean run. */
    const SimError &simError() const { return simError_; }

    const CoreStats &stats() const { return stats_; }

    /**
     * Attach a host-perf profile; run() fills wall-clock phase
     * timers and skip counters into it.  Host-side only: attaching a
     * profile never changes simulated behaviour.
     */
    void setProfile(HostProfile *profile) { profile_ = profile; }

    /** The concrete (Auto-resolved) ticking mode this core runs. */
    TickingMode ticking() const { return ticking_; }

    /** Write buffer statistics. */
    const WriteBufferStats &wbStats() const { return wb_->stats(); }

    /** EDM access for tests. */
    const Edm &edm() const { return edm_; }

    /**
     * Fault-injection seam: when the element at @p trace_idx
     * dispatches, overwrite its resolved EDE consumer link with its
     * own sequence number plus @p seq_offset.  A positive offset
     * forges a *forward* link -- the corruption a soft error in the
     * EDM srcID field would produce -- which is the only way this
     * pipeline can form a genuine dependence cycle: architecturally,
     * rename always resolves consumer links to older instructions.
     * Used by the detector tests and the fuzz campaign's
     * hardware-fault programs.
     */
    void
    corruptEdeLink(std::size_t trace_idx, SeqNum seq_offset)
    {
        edeSrcOverrides_[trace_idx] = seq_offset;
    }

  private:
    struct ExecEvent
    {
        Cycle due;
        SeqNum seq;
        bool operator>(const ExecEvent &o) const { return due > o.due; }
    };

    void tickOnce(Cycle now);

    /**
     * The core-private portion of tickOnce: everything except the
     * shared memory hierarchy's tick.  CoreGroup ticks the hierarchy
     * exactly once per cycle and then runs each core's pipeline, so
     * the split keeps a shared MemSystem from being advanced N times.
     */
    void tickPipeline(Cycle now);

    /** Per-run initialization shared by run() and CoreGroup. */
    void beginRun(const Trace &trace);

    /** @name Cross-core-aware WAIT retirement conditions. */
    /// @{
    bool
    waitKeyClear(Edk key) const
    {
        return counters_.keyClear(key) &&
               (!xcore_ || xcore_->remoteKeyClear(coreId_, key));
    }

    bool
    waitAllClear() const
    {
        return counters_.allClear() &&
               (!xcore_ || xcore_->remoteAllClear(coreId_));
    }
    /// @}

    /** WaitCounters enter/exit, mirrored into the shared file. */
    void
    countersEnter(const StaticInst &si)
    {
        counters_.enter(si);
        if (xcore_)
            xcore_->enter(coreId_, si);
    }

    void
    countersExit(const StaticInst &si)
    {
        counters_.exit(si);
        if (xcore_)
            xcore_->exit(coreId_, si);
    }

    /**
     * The per-cycle run-loop checks (EDK stall analyzer, progress
     * watchdog, maxCycles backstop), shared verbatim by both ticking
     * modes.  @return true when the run must stop (simError_ set).
     */
    bool runChecks(Cycle now);

    /**
     * Skip-ahead: the earliest cycle > @p now at which anything can
     * happen -- the minimum over every component's nextEventCycle
     * hint, the core's own timed events (execution writebacks, the
     * fetch-redirect resume), and the exact next firing cycles of the
     * run-loop checks.  Only meaningful right after a dead tick.
     */
    Cycle skipTarget(Cycle now) const;

    void pollLoads(Cycle now);
    void execWriteback(Cycle now);
    void checkDsbCompletion(Cycle now);
    void checkDmbCompletion(Cycle now);
    void retire(Cycle now);
    void issue(Cycle now);
    void dispatch(Cycle now);
    void squash(InflightInst &branch, Cycle now);

    /** How the stall analyzer classified a no-progress window. */
    enum class EdkStallClass
    {
        NotEde,   ///< No EDE-gated waiter exists; not our stall.
        External, ///< Every chain ends at an operation still in flight
                  ///< in the memory system (e.g. an NVM media write).
        Stuck,    ///< Some chain can never resolve (cycle/dangling).
    };

    /** Result of one analyzer invocation. */
    struct EdkStallAnalysis
    {
        EdkStallClass cls = EdkStallClass::NotEde;
        bool cycleFound = false;
        SeqNum release = kNoSeq; ///< Oldest stuck EDE-gated waiter.
        bool releasableNow = false; ///< Older completable work drained.
        std::vector<EdkChainNode> chain; ///< For the SimError report.
    };

    /** Tri-color DFS bookkeeping for the analyzer walk. */
    struct EdkWalk
    {
        std::unordered_map<SeqNum, int> color; ///< 1 grey, 2 done.
        std::unordered_map<SeqNum, bool> progressing;
        std::unordered_map<SeqNum, SeqNum> waitsOn;
        std::vector<SeqNum> stack;
        std::vector<SeqNum> cycle;
    };

    EdkStallAnalysis analyzeEdkStall();
    bool edkClassify(SeqNum s, EdkWalk &walk) const;
    bool edkNodeProgressing(SeqNum s,
                            std::vector<SeqNum> &blockers) const;
    EdkChainNode edkChainNode(SeqNum s, const EdkWalk &walk) const;
    void applyEdkDegrade(const EdkStallAnalysis &a, Cycle now);

    InflightInst *find(SeqNum seq);
    bool regsReady(const InflightInst &inst) const;
    bool edeIssueReady(const InflightInst &inst) const;
    bool gatesAtIssue(const InflightInst &inst) const;
    void completeSeq(SeqNum seq, const StaticInst &si,
                     std::size_t trace_idx, Cycle now);
    void onWbComplete(const WbEntry &entry, Cycle now);
    bool storesOlderIncomplete(SeqNum barrier) const;
    void recordCompletion(std::size_t trace_idx, Cycle now);
    bool finished() const;
    SimError buildSimError(SimErrorKind kind, Cycle now) const;

    friend class CoreGroup;

    CoreParams params_;
    MemSystem &mem_;
    unsigned coreId_ = 0;
    CrossCoreOrdering *xcore_ = nullptr;
    MemoryImage *timingImage_ = nullptr;

    const Trace *trace_ = nullptr;
    std::size_t fetchIdx_ = 0;
    Cycle fetchResumeAt_ = 0;
    SeqNum nextSeq_ = 1;

    std::deque<InflightInst> rob_;
    std::unordered_map<SeqNum, InflightInst *> index_;
    std::vector<SeqNum> iq_;        ///< Age-ordered issue queue.
    std::deque<SeqNum> lq_;
    std::deque<SeqNum> sq_;
    std::unique_ptr<WriteBuffer> wb_;

    std::array<SeqNum, kNumArchRegs> regMap_{};
    std::set<SeqNum> notExecuted_;
    std::set<SeqNum> incomplete_;
    std::set<SeqNum> incompleteStores_;
    std::set<SeqNum> incompleteCvaps_;
    std::set<SeqNum> incompleteDsbs_;
    std::set<SeqNum> incompleteDmbs_;
    std::vector<SeqNum> dmbSeqs_;   ///< All DMB ST seqs, ascending.

    Edm edm_;
    WaitCounters counters_;
    BranchPredictor predictor_;

    std::priority_queue<ExecEvent, std::vector<ExecEvent>,
                        std::greater<ExecEvent>> pendingExec_;
    std::unordered_map<ReqId, SeqNum> outstandingLoads_;
    std::unordered_set<ReqId> orphanReqs_;

    bool recordCompletions_ = false;
    std::vector<Cycle> completionCycles_;
    std::unordered_map<std::size_t, Cycle> watched_;
    bool ran_ = false;
    Cycle lastProgressCycle_ = 0;
    Cycle lastEdkCheckCycle_ = 0;
    /** Concrete loop strategy (CoreParams::ticking, Auto resolved). */
    TickingMode ticking_ = TickingMode::SkipAhead;
    /** Set by any state-changing pipeline action during tickOnce. */
    bool progress_ = false;
    HostProfile *profile_ = nullptr;
    SimError simError_;
    /** traceIdx -> forged edeSrc offset (fault-injection seam). */
    std::unordered_map<std::size_t, SeqNum> edeSrcOverrides_;

    CoreStats stats_;
};

} // namespace ede

#endif // EDE_PIPELINE_CORE_HH
