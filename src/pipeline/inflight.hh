/**
 * @file
 * Per-instruction in-flight state tracked by the out-of-order core.
 */

#ifndef EDE_PIPELINE_INFLIGHT_HH
#define EDE_PIPELINE_INFLIGHT_HH

#include <cstddef>

#include "common/types.hh"
#include "isa/inst.hh"
#include "mem/req.hh"

namespace ede {

/** One dynamic instruction between dispatch and completion. */
struct InflightInst
{
    DynInst di;
    SeqNum seq = kNoSeq;
    std::size_t traceIdx = 0;

    /** @name Dependences resolved at dispatch. */
    /// @{
    SeqNum regDep1 = kNoSeq;   ///< Producer of src1.
    SeqNum regDep2 = kNoSeq;   ///< Producer of src2.
    SeqNum regDepBase = kNoSeq;///< Producer of the address base.
    SeqNum memDep = kNoSeq;    ///< Youngest older overlapping store.
    bool memDepCovers = false; ///< Store fully covers this load.
    SeqNum edeSrc = kNoSeq;    ///< EDM link for EDKuse.
    SeqNum edeSrc2 = kNoSeq;   ///< EDM link for EDKuse2 (JOIN).
    SeqNum dmbBarrier = kNoSeq;///< Latest older DMB ST (stores only).
    /// @}

    /** @name Pipeline state. */
    /// @{
    bool inIq = false;
    bool issued = false;
    bool executed = false;
    bool completed = false;
    bool mispredicted = false; ///< Prediction differed from outcome.
    bool edeCounted = false;   ///< Holds a WaitCounters slot.
    ReqId loadReq = kNoReq;
    /// @}

    /** @name Timestamps (kNoCycle until reached). */
    /// @{
    Cycle dispatchCycle = kNoCycle;
    Cycle issueCycle = kNoCycle;
    Cycle execCycle = kNoCycle;
    Cycle retireCycle = kNoCycle;
    Cycle completeCycle = kNoCycle;
    /// @}
};

} // namespace ede

#endif // EDE_PIPELINE_INFLIGHT_HH
