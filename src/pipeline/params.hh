/**
 * @file
 * Out-of-order core parameters (Table I defaults: Arm A72-like).
 */

#ifndef EDE_PIPELINE_PARAMS_HH
#define EDE_PIPELINE_PARAMS_HH

#include <cstdint>

#include "common/types.hh"
#include "core/enforcement.hh"

namespace ede {

/**
 * What the core does when the runtime EDK stall analyzer concludes
 * that a dependence chain cannot resolve (a cycle through corrupted
 * EDM/srcID links, or a link to an instruction that no longer
 * exists).
 */
/**
 * How OoOCore::run advances simulated time.
 *
 * Both modes produce bit-identical cycle counts and CoreStats; the
 * skip-ahead scheduler only jumps over cycles that are provably
 * no-ops (see DESIGN.md section 10).  Because the results are
 * identical, the mode is deliberately excluded from the result-cache
 * fingerprint.
 */
enum class TickingMode
{
    /** Resolve at core construction: Reference when the
     *  EDE_REFERENCE_TICKING environment variable is set and
     *  non-empty (and not "0"), SkipAhead otherwise. */
    Auto,
    /** Event-driven: jump dead windows to the next component hint. */
    SkipAhead,
    /** The original tickOnce-per-cycle loop (differential oracle). */
    Reference,
};

/** Short stable name ("skip-ahead" / "reference"). */
const char *tickingModeName(TickingMode mode);

/** Map Auto to the environment-selected concrete mode. */
TickingMode resolveTickingMode(TickingMode mode);

enum class EdkRecoveryMode
{
    /** Stop the run with a structured EdkDependenceCycle SimError. */
    Report,
    /**
     * Degrade to full-fence semantics: once every older completable
     * instruction has drained, the oldest wedged consumer's EDE gates
     * are cleared so it proceeds -- exactly what a DSB SY at that
     * point would have guaranteed.  Logged and counted; the run
     * continues.
     */
    Degrade,
};

/** Static core configuration. */
struct CoreParams
{
    int fetchWidth = 3;       ///< Decode width (Table I: 3-instr).
    int issueWidth = 8;       ///< Issue queue width (Section VII-B).
    int retireWidth = 3;
    int robSize = 128;
    int iqSize = 40;
    int lqSize = 16;          ///< Table I: 16-entry load queue.
    int sqSize = 16;          ///< Table I: 16-entry store queue.
    int wbSize = 16;          ///< Table I: 16-entry write buffer.
    int wbDrainPerCycle = 2;  ///< Write-buffer pushes started per cycle.

    /** Frontend refill bubble after a mispredicted branch resolves. */
    Cycle mispredictPenalty = 8;

    /** @name Functional unit counts (A72-like integer side). */
    /// @{
    int aluUnits = 2;
    int mulUnits = 1;
    int branchUnits = 1;
    int loadUnits = 1;
    int storeUnits = 1;   ///< Store/writeback address generation.
    /// @}

    /** @name Operation latencies in cycles. */
    /// @{
    Cycle aluLatency = 1;
    Cycle mulLatency = 3;
    Cycle branchLatency = 1;
    Cycle agenLatency = 1;       ///< Store/cvap address generation.
    Cycle forwardLatency = 2;    ///< Store-to-load forwarding.
    /// @}

    /** Where EDE dependences are enforced. */
    EnforceMode ede = EnforceMode::None;

    /**
     * Whether DMB ST timing conservatively covers DC CVAP as a
     * store-class operation (as gem5's LSQ does).  Architecturally
     * DMB ST does NOT order DC CVAP -- that gap is what makes the
     * paper's SU configuration unsafe -- but conservative hardware
     * stalls it anyway, which is why SU is only ~5% faster than the
     * DSB baseline in Figure 9.  Setting this false models an
     * aggressive LSQ that exploits the architectural permission.
     */
    bool dmbStCoversCvap = true;

    /** Branch predictor table size (entries, power of two). */
    std::uint32_t predictorEntries = 4096;

    /**
     * Progress watchdog: abort with a structured SimError when no
     * instruction completes or retires for this many consecutive
     * cycles.  Catches wedged pipelines (e.g. a dependence cycle the
     * fault campaign provokes) long before maxCycles would, and emits
     * a diagnostic dump instead of a panic.
     */
    Cycle watchdogCycles = 1'000'000;

    /** Hard backstop on total cycles (also a structured SimError). */
    Cycle maxCycles = 2'000'000'000;

    /**
     * Runtime EDK stall analyzer trigger: when no instruction
     * completes or retires for this many cycles, walk the live
     * EDM/srcID chains and classify the stall.  Must comfortably
     * exceed the slowest single memory operation (an NVM media write
     * is ~1500 cycles) so long-latency producers are never mistaken
     * for dependence cycles, and sit far below watchdogCycles so
     * genuine cycles are reported without the full watchdog wait.
     */
    Cycle edkStallCycles = 25'000;

    /** Response to an unresolvable EDK dependence (see enum). */
    EdkRecoveryMode edkRecoveryMode = EdkRecoveryMode::Report;

    /**
     * Cycle-loop strategy.  Results are identical in both concrete
     * modes; this knob exists for differential testing and host-perf
     * measurement, and is NOT part of the result-cache fingerprint.
     */
    TickingMode ticking = TickingMode::Auto;
};

} // namespace ede

#endif // EDE_PIPELINE_PARAMS_HH
