/**
 * @file
 * Bimodal branch predictor (2-bit saturating counters).
 *
 * Branch targets come from the trace, so only direction prediction is
 * modelled; a misprediction squashes the pipeline when the branch
 * executes, which is what exercises the EDM checkpoint-restore path.
 */

#ifndef EDE_PIPELINE_PREDICTOR_HH
#define EDE_PIPELINE_PREDICTOR_HH

#include <cstdint>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace ede {

/** 2-bit bimodal direction predictor. */
class BranchPredictor
{
  public:
    /** @param entries table size; must be a power of two. */
    explicit BranchPredictor(std::uint32_t entries = 4096)
        : table_(entries, kWeaklyTaken)
    {
        ede_assert((entries & (entries - 1)) == 0,
                   "predictor size must be a power of two");
    }

    /** Predicted direction for the branch at @p pc. */
    bool
    predict(Addr pc) const
    {
        return table_[index(pc)] >= kWeaklyTaken;
    }

    /** Train with the resolved direction. */
    void
    update(Addr pc, bool taken)
    {
        std::uint8_t &ctr = table_[index(pc)];
        if (taken) {
            if (ctr < kStronglyTaken)
                ++ctr;
        } else {
            if (ctr > 0)
                --ctr;
        }
    }

  private:
    static constexpr std::uint8_t kWeaklyTaken = 2;
    static constexpr std::uint8_t kStronglyTaken = 3;

    std::size_t
    index(Addr pc) const
    {
        return (pc >> 2) & (table_.size() - 1);
    }

    std::vector<std::uint8_t> table_;
};

} // namespace ede

#endif // EDE_PIPELINE_PREDICTOR_HH
