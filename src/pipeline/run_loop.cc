#include "pipeline/run_loop.hh"

#include <algorithm>
#include <chrono>

#include "common/logging.hh"

namespace ede {

CoreGroup::CoreGroup(std::vector<OoOCore *> cores)
    : cores_(std::move(cores))
{
    ede_assert(!cores_.empty(), "core group needs at least one core");
    for (const OoOCore *c : cores_) {
        ede_assert(c, "core group holds null core");
        ede_assert(&c->mem_ == &cores_[0]->mem_,
                   "all cores of a group must share one MemSystem");
        ede_assert(c->ticking_ == cores_[0]->ticking_,
                   "all cores of a group must share one ticking mode");
        ede_assert(!c->ran_, "core group cores must not have run");
    }
}

Cycle
CoreGroup::run(const std::vector<const Trace *> &traces)
{
    ede_assert(traces.size() == cores_.size(),
               "core group needs one trace per core");
    for (std::size_t i = 0; i < cores_.size(); ++i)
        cores_[i]->beginRun(*traces[i]);

    const auto wall_start = std::chrono::steady_clock::now();
    HostProfile *prof = cores_[0]->profile_;
    MemSystem &mem = cores_[0]->mem_;
    const bool skip = cores_[0]->ticking_ == TickingMode::SkipAhead;

    const std::size_t n = cores_.size();

    // Dead-tick counter snapshots, one per core (see OoOCore::run for
    // the single-core original of this machinery).
    struct Snap
    {
        std::uint64_t rob = 0;
        std::uint64_t iq = 0;
        std::uint64_t lsq = 0;
        std::uint64_t wbfull = 0;
        WriteBufferStats wb;
    };
    std::vector<Snap> pre(n);

    std::vector<bool> running(n, true);
    std::size_t live = n;

    Cycle now = 0;
    for (OoOCore *c : cores_)
        c->lastProgressCycle_ = 0;

    // A core handed an empty trace is finished before the first tick;
    // it executes for zero cycles, exactly as its solo run would.
    for (std::size_t i = 0; i < n; ++i) {
        if (cores_[i]->finished()) {
            cores_[i]->stats_.cycles = 0;
            running[i] = false;
            --live;
        }
    }

    // Group-level failed-attempt backoff, same heuristic and cap as
    // the single-core loop (host-time only; never changes results).
    Cycle nextAttempt = 0;
    Cycle backoff = 1;
    bool stopped = false;

    while (live > 0) {
        for (std::size_t i = 0; i < n; ++i) {
            if (!running[i])
                continue;
            OoOCore &c = *cores_[i];
            c.progress_ = false;
            pre[i] = Snap{c.stats_.dispatchStallRob,
                          c.stats_.dispatchStallIq,
                          c.stats_.dispatchStallLsq,
                          c.stats_.retireStallWbFull,
                          c.wb_->stats()};
        }

        // The shared hierarchy ticks exactly once per cycle; each
        // unfinished core then runs its private pipeline in index
        // order against the post-tick memory state, just as a solo
        // core's tickOnce does.
        {
            PhaseTimer t(prof, &HostProfile::memNanos);
            mem.tick(now);
        }
        for (std::size_t i = 0; i < n; ++i) {
            if (running[i])
                cores_[i]->tickPipeline(now);
        }
        ++now;
        if (prof)
            ++prof->hostTicks;

        // Every unfinished core runs its per-cycle checks each tick
        // (the analyzer has per-core side effects); any core's abort
        // stops the whole group -- partial-machine results are not
        // meaningful.  Callers check every core's simError().
        for (std::size_t i = 0; i < n; ++i) {
            if (running[i] && cores_[i]->runChecks(now))
                stopped = true;
        }
        if (stopped)
            break;

        // A cycle is dead only when *no* core progressed.  Cross-core
        // WAIT release is covered: remote counters change only when
        // the remote core completes something, which is progress.
        bool progressed = false;
        for (std::size_t i = 0; i < n; ++i) {
            if (!running[i])
                continue;
            const OoOCore &c = *cores_[i];
            if (c.progress_ ||
                c.wb_->stats().pushes != pre[i].wb.pushes ||
                c.wb_->stats().memRejected != pre[i].wb.memRejected)
                progressed = true;
        }

        for (std::size_t i = 0; i < n; ++i) {
            if (running[i] && cores_[i]->finished()) {
                cores_[i]->stats_.cycles = now;
                running[i] = false;
                --live;
            }
        }
        if (live == 0)
            break;

        if (!skip || progressed) {
            nextAttempt = 0;
            backoff = 1;
            continue;
        }
        if (now < nextAttempt)
            continue;

        // Group skip target: the earliest advertised event of any
        // unfinished core (each core's walk already includes the
        // shared hierarchy's hint and its own check firing cycles).
        Cycle target;
        {
            PhaseTimer timer(prof, &HostProfile::skipNanos);
            if (prof)
                ++prof->skipAttempts;
            target = kNoCycle;
            for (std::size_t i = 0; i < n; ++i) {
                if (running[i])
                    target = std::min(target,
                                      cores_[i]->skipTarget(now));
            }
        }
        if (target <= now) {
            nextAttempt = now + backoff;
            backoff = std::min<Cycle>(backoff * 2, 16);
            continue;
        }
        nextAttempt = 0;
        backoff = 1;
        const Cycle skipped = target - now;
        for (std::size_t i = 0; i < n; ++i) {
            if (!running[i])
                continue;
            OoOCore &c = *cores_[i];
            c.stats_.dispatchStallRob +=
                (c.stats_.dispatchStallRob - pre[i].rob) * skipped;
            c.stats_.dispatchStallIq +=
                (c.stats_.dispatchStallIq - pre[i].iq) * skipped;
            c.stats_.dispatchStallLsq +=
                (c.stats_.dispatchStallLsq - pre[i].lsq) * skipped;
            c.stats_.retireStallWbFull +=
                (c.stats_.retireStallWbFull - pre[i].wbfull) * skipped;
            c.wb_->replayGateStalls(
                (c.wb_->stats().srcIdGated - pre[i].wb.srcIdGated) *
                    skipped,
                (c.wb_->stats().lineGated - pre[i].wb.lineGated) *
                    skipped,
                (c.wb_->stats().dmbGated - pre[i].wb.dmbGated) *
                    skipped);
            c.stats_.issueHist.sample(0, skipped);
        }
        now = target;
        if (prof) {
            ++prof->skipJumps;
            prof->cyclesSkipped += skipped;
        }
        // The landing cycle may be a check firing cycle.
        for (std::size_t i = 0; i < n; ++i) {
            if (running[i] && cores_[i]->runChecks(now))
                stopped = true;
        }
        if (stopped)
            break;
    }

    // Cores still unfinished (the group stopped on an error) record
    // the stop cycle, matching the solo loop's early-exit behaviour.
    for (std::size_t i = 0; i < n; ++i) {
        if (running[i])
            cores_[i]->stats_.cycles = now;
    }
    if (prof) {
        prof->cyclesSimulated = now;
        prof->referenceTicking = !skip;
        prof->wallNanos += static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - wall_start)
                .count());
    }
    return now;
}

} // namespace ede
