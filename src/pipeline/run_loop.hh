/**
 * @file
 * CoreGroup: the N-core generalization of OoOCore's run loop.
 *
 * A group ticks the shared memory hierarchy exactly once per cycle,
 * then runs every unfinished core's private pipeline in core-index
 * order.  The skip-ahead machinery generalizes per-core: a cycle is
 * dead only when *no* core made progress, and the jump target is the
 * earliest of every unfinished core's advertised events -- so a
 * cross-core WAIT release (which always rides on some core's
 * completion, i.e. on progress) can never be jumped over.  Each
 * core's dead-tick stall counters are replayed individually, exactly
 * as the single-core loop replays its own.
 *
 * A group of one core reproduces OoOCore::run(trace) bit-identically:
 * the loop body is the same sequence of calls on the same state, and
 * the differential gate in bench/fig_scaling holds the two paths
 * against each other.  OoOCore::run keeps its own copy of the
 * single-core loop precisely so that gate compares two independent
 * implementations.
 */

#ifndef EDE_PIPELINE_RUN_LOOP_HH
#define EDE_PIPELINE_RUN_LOOP_HH

#include <vector>

#include "pipeline/core.hh"

namespace ede {

/** Lock-step scheduler for the cores of one System. */
class CoreGroup
{
  public:
    /**
     * @param cores all cores of one System, index order; every core
     *              must share one MemSystem and one resolved ticking
     *              mode, and must not have run yet.
     */
    explicit CoreGroup(std::vector<OoOCore *> cores);

    /**
     * Run core i's trace on core i until every core finishes (or any
     * core's watchdog/maxCycles/EDK check stops the run -- check each
     * core's simError()).  Single-shot.  @return the cycle the last
     * core finished; each core's own CoreStats::cycles records its
     * individual finish cycle.
     */
    Cycle run(const std::vector<const Trace *> &traces);

  private:
    std::vector<OoOCore *> cores_;
};

} // namespace ede

#endif // EDE_PIPELINE_RUN_LOOP_HH
