#include "pipeline/sim_error.hh"

#include <sstream>

namespace ede {

const char *
simErrorKindName(SimErrorKind kind)
{
    switch (kind) {
      case SimErrorKind::None:
        return "none";
      case SimErrorKind::WatchdogNoProgress:
        return "watchdog-no-progress";
      case SimErrorKind::MaxCyclesExceeded:
        return "max-cycles-exceeded";
      case SimErrorKind::EdkDependenceCycle:
        return "edk-dependence-cycle";
      case SimErrorKind::CoreCountKeyExhausted:
        return "core-count-key-exhausted";
      case SimErrorKind::PacingDrift:
        return "pacing-drift";
      case SimErrorKind::SessionReused:
        return "session-reused";
      case SimErrorKind::RunRequestInvalid:
        return "run-request-invalid";
    }
    return "unknown";
}

namespace {

void
putSeq(std::ostream &os, SeqNum s)
{
    if (s == kNoSeq)
        os << "-";
    else
        os << s;
}

} // namespace

std::string
SimError::describe() const
{
    std::ostringstream os;
    os << "sim error: " << simErrorKindName(kind) << " at cycle "
       << cycle << " (last progress at " << lastProgressCycle
       << ")\n";
    if (!detail.empty())
        os << "  detail: " << detail << "\n";
    os << "  fetch " << fetchIdx << "/" << traceSize << "  rob="
       << robOccupancy << "  iq=" << iqOccupancy << "  wb="
       << wbOccupancy << "\n";

    os << "  rob head:\n";
    for (const RobHeadInfo &r : robHead) {
        os << "    seq " << r.seq << " idx " << r.traceIdx << " "
           << opName(r.op);
        if (r.addr != kNoAddr)
            os << " @0x" << std::hex << r.addr << std::dec;
        os << (r.completed ? " completed"
               : r.executed ? " executed"
               : r.issued ? " issued"
               : r.inIq ? " in-iq" : " dispatched")
           << "\n";
    }

    os << "  iq waits:\n";
    for (const IqWaitInfo &w : iqWaits) {
        os << "    seq " << w.seq << " " << opName(w.op)
           << (w.regsReady ? "" : " !regs")
           << (w.dsbGated ? " !dsb" : "");
        if (w.edeGated) {
            os << " !ede(src=";
            putSeq(os, w.edeSrc);
            if (w.edeSrc2 != kNoSeq) {
                os << ",";
                putSeq(os, w.edeSrc2);
            }
            os << ")";
        }
        os << "\n";
    }

    os << "  wb chain:\n";
    for (const WbChainInfo &w : wbChain) {
        os << "    seq " << w.seq << " " << opName(w.op) << " @0x"
           << std::hex << w.addr << std::dec << " src=";
        putSeq(os, w.srcId);
        os << ",";
        putSeq(os, w.srcId2);
        os << " dmb=";
        putSeq(os, w.dmbBarrier);
        os << (w.pushing ? " pushing" : " waiting") << "\n";
    }

    if (!edkChain.empty()) {
        os << "  edk chain (unresolvable):\n";
        for (const EdkChainNode &n : edkChain) {
            os << "    seq " << n.seq << " idx " << n.traceIdx << " "
               << opName(n.op) << " waits on ";
            putSeq(os, n.waitsOn);
            os << "\n";
        }
    }

    os << "  edm links:\n";
    for (const EdmLinkInfo &l : edmLinks) {
        os << "    edk#" << static_cast<int>(l.key) << " spec=";
        putSeq(os, l.spec);
        os << " nonspec=";
        putSeq(os, l.nonspec);
        os << "\n";
    }
    return os.str();
}

} // namespace ede
