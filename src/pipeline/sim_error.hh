/**
 * @file
 * Structured simulator failure reports.
 *
 * When the core stops making forward progress (no instruction
 * completes or retires for watchdogCycles) or exceeds the hard
 * maxCycles backstop, it no longer panics with a one-line message:
 * it builds a SimError carrying a machine-readable diagnostic dump --
 * the ROB head window, what each stalled issue-queue entry is waiting
 * on, the write-buffer srcID chains, and the live EDM links -- so a
 * deadlock found by the fault campaign can be diagnosed from the
 * report alone, without re-running under a debugger.
 */

#ifndef EDE_PIPELINE_SIM_ERROR_HH
#define EDE_PIPELINE_SIM_ERROR_HH

#include <cstddef>
#include <string>
#include <vector>

#include "common/types.hh"
#include "isa/edk.hh"
#include "isa/inst.hh"

namespace ede {

/** Why the simulation was aborted. */
enum class SimErrorKind
{
    None,               ///< Run finished normally.
    WatchdogNoProgress, ///< Nothing completed/retired for the window.
    MaxCyclesExceeded,  ///< Hard cycle-count backstop tripped.
    /**
     * The runtime EDK stall analyzer proved the machine is wedged on
     * execution-dependence links that can never resolve (a cycle
     * through corrupted EDM/srcID state, or a link to a vanished
     * producer).  Reported the moment the analyzer runs -- one
     * edkStallCycles window after progress stops -- instead of after
     * the much longer watchdog window; edkChain names the members.
     */
    EdkDependenceCycle,
    /**
     * A concurrent-workload generator was asked for more per-core EDK
     * keys than the ISA has (15 real keys).  Keys are allocated
     * round-robin with an explicit collision check; rather than
     * silently aliasing two cores onto one key -- which would let a
     * WAIT drain the wrong core's persists and mask ordering bugs --
     * generation fails up front with this kind.
     */
    CoreCountKeyExhausted,
    /**
     * A paced concurrent run's machine execution drifted out of the
     * generator's global serialization: some operation's persist
     * events were accepted before an earlier (model-order) op's.
     * The crash-consistency checkers resolve cross-core values
     * host-side under that serialization, so a drifted run would be
     * silently unsound -- the harness verifies the persist accept
     * windows post-run and fails loudly with this kind instead.
     */
    PacingDrift,
    /**
     * A Session was asked to run twice.  Sessions are single-shot --
     * the underlying System carries retired state that a second run
     * would silently corrupt -- so reuse is reported as a structured
     * error instead of a process abort, letting sweep drivers skip
     * the offending cell and continue.
     */
    SessionReused,
    /**
     * A RunRequest failed validation before any simulation started:
     * no workload at all, a trace-per-core count that does not match
     * the configured machine, or a malformed traffic plan (the
     * rejected knob is named in SimError::detail).
     */
    RunRequestInvalid,
};

const char *simErrorKindName(SimErrorKind kind);

/** One instruction at/near the ROB head. */
struct RobHeadInfo
{
    SeqNum seq = kNoSeq;
    std::size_t traceIdx = 0;
    Op op = Op::Nop;
    Addr addr = kNoAddr;
    bool inIq = false;
    bool issued = false;
    bool executed = false;
    bool completed = false;
};

/** One issue-queue entry and what holds it back. */
struct IqWaitInfo
{
    SeqNum seq = kNoSeq;
    Op op = Op::Nop;
    bool regsReady = false;      ///< Register operands available.
    bool edeGated = false;       ///< Blocked on an execution dependence.
    SeqNum edeSrc = kNoSeq;      ///< Producer it waits on (if any).
    SeqNum edeSrc2 = kNoSeq;     ///< Second producer (JOIN).
    bool dsbGated = false;       ///< Younger than an incomplete DSB.
};

/** One write-buffer entry and its ordering gates. */
struct WbChainInfo
{
    SeqNum seq = kNoSeq;
    Op op = Op::Nop;
    Addr addr = kNoAddr;
    SeqNum srcId = kNoSeq;       ///< EDE producer gate (WB mode).
    SeqNum srcId2 = kNoSeq;
    SeqNum dmbBarrier = kNoSeq;
    bool pushing = false;
};

/** One member of an unresolvable EDK dependence chain. */
struct EdkChainNode
{
    SeqNum seq = kNoSeq;
    std::size_t traceIdx = 0;
    Op op = Op::Nop;
    SeqNum waitsOn = kNoSeq;     ///< The link that blocks it.
};

/** One live EDM link (key with an in-flight producer). */
struct EdmLinkInfo
{
    Edk key = kZeroEdk;
    SeqNum spec = kNoSeq;        ///< Speculative-map producer.
    SeqNum nonspec = kNoSeq;     ///< Non-speculative-map producer.
};

/** The full structured report. */
struct SimError
{
    SimErrorKind kind = SimErrorKind::None;
    Cycle cycle = 0;             ///< Cycle the abort fired.
    Cycle lastProgressCycle = 0; ///< Last completion/retirement.
    std::size_t fetchIdx = 0;    ///< Next trace element to dispatch.
    std::size_t traceSize = 0;
    std::size_t robOccupancy = 0;
    std::size_t iqOccupancy = 0;
    std::size_t wbOccupancy = 0;

    std::vector<RobHeadInfo> robHead;  ///< Oldest few ROB entries.
    std::vector<IqWaitInfo> iqWaits;   ///< Stalled IQ entries.
    std::vector<WbChainInfo> wbChain;  ///< Write-buffer contents.
    std::vector<EdmLinkInfo> edmLinks; ///< Keys with live producers.
    std::vector<EdkChainNode> edkChain; ///< Unresolvable chain members.

    /**
     * Optional free-form detail for pre-simulation rejections
     * (SessionReused / RunRequestInvalid): names the violated
     * constraint.  Empty for machine-state aborts, whose diagnosis
     * lives in the structured dump above.
     */
    std::string detail;

    /** True when the run aborted. */
    explicit operator bool() const { return kind != SimErrorKind::None; }

    /** Render the dump as a human-readable multi-line string. */
    std::string describe() const;
};

} // namespace ede

#endif // EDE_PIPELINE_SIM_ERROR_HH
