#include "pipeline/write_buffer.hh"

#include "common/logging.hh"

namespace ede {

WriteBuffer::WriteBuffer(int capacity, int drainPerCycle,
                         std::uint32_t lineBytes, MemSystem &mem,
                         CompletionFn on_complete, DmbCheckFn dmb_blocked,
                         unsigned coreId)
    : capacity_(static_cast<std::size_t>(capacity)),
      drainPerCycle_(drainPerCycle), lineBytes_(lineBytes), mem_(mem),
      onComplete_(std::move(on_complete)),
      dmbBlocked_(std::move(dmb_blocked)), coreId_(coreId)
{
    ede_assert(capacity > 0, "write buffer needs at least one entry");
}

void
WriteBuffer::insert(WbEntry entry)
{
    ede_assert(!full(), "write buffer overflow");
    ede_assert(entries_.empty() || entries_.back().seq < entry.seq,
               "write buffer entries must arrive in program order");
    // Insertion-time CAM check (Section V-D): if the producer's
    // entry is no longer in the buffer, it has already completed --
    // clear the tag.  (Producers that never enter the buffer, such
    // as loads, are older and thus completed before this retirement.)
    auto present = [this](SeqNum s) {
        for (const WbEntry &e : entries_) {
            if (e.seq == s)
                return true;
        }
        return false;
    };
    if (entry.srcId != kNoSeq && !present(entry.srcId))
        entry.srcId = kNoSeq;
    if (entry.srcId2 != kNoSeq && !present(entry.srcId2))
        entry.srcId2 = kNoSeq;
    ++stats_.inserted;
    entries_.push_back(std::move(entry));
}

bool
WriteBuffer::lineConflictBefore(std::size_t idx) const
{
    // Memory-dependence gating:
    //  - a store must wait for older stores whose bytes overlap
    //    (drain order decides the final value);
    //  - a clean must wait for older same-line stores (the persist
    //    must capture their data -- the STR -> DC CVAP dependence of
    //    Figure 5);
    //  - a store after a clean, and a clean after a clean, need no
    //    ordering: the younger operation does not disturb what the
    //    older one wrote or captured.
    const WbEntry &e = entries_[idx];
    const bool e_is_store = opIsStore(e.si.op);
    const Addr line = lineOf(e.addr);
    for (std::size_t i = 0; i < idx; ++i) {
        const WbEntry &older = entries_[i];
        if (!opIsStore(older.si.op))
            continue;
        if (e_is_store) {
            const Addr lo = e.addr;
            const Addr hi = e.addr + e.size;
            if (older.addr < hi && lo < older.addr + older.size)
                return true;
        } else if (lineOf(older.addr) == line) {
            return true;
        }
    }
    return false;
}

void
WriteBuffer::completeEntry(std::size_t idx, Cycle now)
{
    // Move the entry out first: the completion callback and the
    // srcID broadcast both inspect the buffer.
    WbEntry entry = std::move(entries_[idx]);
    entries_.erase(entries_.begin() +
                   static_cast<std::ptrdiff_t>(idx));
    onProducerComplete(entry.seq);
    onComplete_(entry, now);
}

void
WriteBuffer::onProducerComplete(SeqNum producer)
{
    for (WbEntry &e : entries_) {
        if (e.srcId == producer)
            e.srcId = kNoSeq;
        if (e.srcId2 == producer)
            e.srcId2 = kNoSeq;
    }
}

void
WriteBuffer::tick(Cycle now)
{
    // 1. Finished pushes complete (and release their consumers).
    for (std::size_t i = 0; i < entries_.size();) {
        WbEntry &e = entries_[i];
        if (e.pushing && mem_.consumeDone(e.req)) {
            completeEntry(i, now);
            continue;
        }
        ++i;
    }

    // 2. JOIN entries with both tags cleared are done: they have no
    //    data to push (Section V-D).
    for (std::size_t i = 0; i < entries_.size();) {
        WbEntry &e = entries_[i];
        if (e.si.op == Op::Join && e.srcId == kNoSeq &&
            e.srcId2 == kNoSeq) {
            completeEntry(i, now);
            continue;
        }
        ++i;
    }

    // 3. Start new pushes, oldest first.
    int started = 0;
    for (std::size_t i = 0; i < entries_.size() &&
         started < drainPerCycle_; ++i) {
        WbEntry &e = entries_[i];
        if (e.pushing || e.si.op == Op::Join)
            continue;
        if (e.srcId != kNoSeq || e.srcId2 != kNoSeq) {
            ++stats_.srcIdGated;
            continue;
        }
        if (lineConflictBefore(i)) {
            ++stats_.lineGated;
            continue;
        }
        // The core sets dmbBarrier only on entries the barrier
        // covers (stores always; cvaps when the conservative LSQ
        // timing is modelled).
        if (e.dmbBarrier != kNoSeq && dmbBlocked_(e.dmbBarrier)) {
            ++stats_.dmbGated;
            continue;
        }
        std::optional<ReqId> id;
        if (opIsStore(e.si.op)) {
            id = mem_.sendStore(e.addr, e.size, now, e.traceIdx,
                                coreId_);
        } else {
            id = mem_.sendClean(e.addr, now, e.traceIdx, coreId_);
        }
        if (!id) {
            // L1D backpressure affects every later push equally.
            ++stats_.memRejected;
            break;
        }
        e.pushing = true;
        e.req = *id;
        ++stats_.pushes;
        ++started;
    }
}

Cycle
WriteBuffer::nextEventCycle(Cycle now) const
{
    for (std::size_t i = 0; i < entries_.size(); ++i) {
        const WbEntry &e = entries_[i];
        if (e.si.op == Op::Join) {
            if (e.srcId == kNoSeq && e.srcId2 == kNoSeq)
                return now; // Completes next tick.
            continue;
        }
        if (e.pushing)
            continue; // Completion arrives through the memory hint.
        if (e.srcId != kNoSeq || e.srcId2 != kNoSeq)
            continue; // Cleared only by a producer completing.
        if (lineConflictBefore(i))
            continue; // Cleared only by an older entry completing.
        if (e.dmbBarrier != kNoSeq && dmbBlocked_(e.dmbBarrier))
            continue; // Cleared only by older stores completing.
        return now;   // Push-eligible: the next tick acts on it.
    }
    return kNoCycle;
}

bool
WriteBuffer::appendLineBlockers(SeqNum seq,
                                std::vector<SeqNum> &out) const
{
    std::size_t idx = entries_.size();
    for (std::size_t i = 0; i < entries_.size(); ++i) {
        if (entries_[i].seq == seq) {
            idx = i;
            break;
        }
    }
    if (idx == entries_.size())
        return false;
    // Mirrors lineConflictBefore, but reports *which* older entries
    // impose the ordering instead of a single yes/no.
    const WbEntry &e = entries_[idx];
    const bool e_is_store = opIsStore(e.si.op);
    const Addr line = lineOf(e.addr);
    for (std::size_t i = 0; i < idx; ++i) {
        const WbEntry &older = entries_[i];
        if (!opIsStore(older.si.op))
            continue;
        if (e_is_store) {
            const Addr lo = e.addr;
            const Addr hi = e.addr + e.size;
            if (older.addr < hi && lo < older.addr + older.size)
                out.push_back(older.seq);
        } else if (lineOf(older.addr) == line) {
            out.push_back(older.seq);
        }
    }
    return true;
}

bool
WriteBuffer::clearEdeGates(SeqNum seq)
{
    for (WbEntry &e : entries_) {
        if (e.seq != seq)
            continue;
        const bool had = e.srcId != kNoSeq || e.srcId2 != kNoSeq;
        e.srcId = kNoSeq;
        e.srcId2 = kNoSeq;
        return had;
    }
    return false;
}

std::pair<SeqNum, bool>
WriteBuffer::youngestOverlap(Addr addr, std::uint8_t size) const
{
    const Addr lo = addr;
    const Addr hi = addr + size;
    for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
        if (!opIsStore(it->si.op))
            continue;
        const Addr slo = it->addr;
        const Addr shi = it->addr + it->size;
        if (slo < hi && lo < shi) {
            const bool covers = slo <= lo && hi <= shi;
            return {it->seq, covers};
        }
    }
    return {kNoSeq, false};
}

} // namespace ede
