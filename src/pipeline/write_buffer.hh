/**
 * @file
 * The post-retirement write buffer.
 *
 * Retired stores and cache-line writebacks wait here until their data
 * can be pushed to the memory system.  Entries may drain out of
 * order, subject to three gates:
 *
 *  1. same-line ordering: an entry must wait for older entries that
 *     touch the same cache line (this is the memory dependence that
 *     orders a store before the DC CVAP that persists it);
 *  2. DMB ST ordering: a store younger than a store barrier must wait
 *     until every store older than the barrier has completed --
 *     writebacks are deliberately *not* covered, which is why the
 *     paper's SU configuration is unsafe;
 *  3. EDE srcID ordering (WB enforcement, Section V-D): an entry that
 *     consumed an execution dependence carries the producer's
 *     sequence number and may not start pushing until the producer
 *     has completed.  JOIN entries carry two srcIDs and complete,
 *     without pushing anything, once both are cleared.
 */

#ifndef EDE_PIPELINE_WRITE_BUFFER_HH
#define EDE_PIPELINE_WRITE_BUFFER_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "common/types.hh"
#include "isa/inst.hh"
#include "mem/mem_system.hh"

namespace ede {

/** One write-buffer entry. */
struct WbEntry
{
    SeqNum seq = kNoSeq;
    std::size_t traceIdx = 0;
    StaticInst si;
    Addr addr = kNoAddr;
    std::uint8_t size = 0;
    std::uint64_t val0 = 0;
    std::uint64_t val1 = 0;
    SeqNum srcId = kNoSeq;      ///< EDE producer gate (WB mode).
    SeqNum srcId2 = kNoSeq;     ///< Second producer gate (JOIN).
    SeqNum dmbBarrier = kNoSeq; ///< Store barrier older than this entry.
    bool edeCounted = false;    ///< Holds a WaitCounters slot.
    bool pushing = false;
    ReqId req = kNoReq;
};

/** Write-buffer statistics. */
struct WriteBufferStats
{
    std::uint64_t inserted = 0;
    std::uint64_t pushes = 0;
    std::uint64_t srcIdGated = 0;   ///< Push attempts blocked by EDE.
    std::uint64_t lineGated = 0;    ///< Blocked by same-line ordering.
    std::uint64_t dmbGated = 0;     ///< Blocked by a store barrier.
    std::uint64_t memRejected = 0;  ///< L1D refused the push.
};

/** The write buffer with EDE enforcement support. */
class WriteBuffer
{
  public:
    /** Invoked when an entry completes (is visible / persistent). */
    using CompletionFn = std::function<void(const WbEntry &, Cycle)>;

    /**
     * True when some *store* older than the barrier sequence number
     * has not yet completed (provided by the core, which tracks
     * stores in the store queue as well as in this buffer).
     */
    using DmbCheckFn = std::function<bool(SeqNum)>;

    /** @param coreId which private L1 this buffer's pushes target. */
    WriteBuffer(int capacity, int drainPerCycle, std::uint32_t lineBytes,
                MemSystem &mem, CompletionFn on_complete,
                DmbCheckFn dmb_blocked, unsigned coreId = 0);

    /** True when no entry can be inserted. */
    bool full() const { return entries_.size() >= capacity_; }

    /** True when the buffer holds no entries. */
    bool empty() const { return entries_.empty(); }

    /** Current occupancy. */
    std::size_t occupancy() const { return entries_.size(); }

    /** Insert at retirement. @pre !full() */
    void insert(WbEntry entry);

    /** Advance one cycle: complete finished pushes, start new ones. */
    void tick(Cycle now);

    /**
     * A dependence producer completed somewhere in the machine: clear
     * matching srcID tags (the paper's CAM-clear on push completion;
     * generalized so producers that never enter the buffer, e.g.
     * loads, also release their consumers).
     */
    void onProducerComplete(SeqNum producer);

    /**
     * Youngest entry overlapping [addr, addr+size), for load
     * dependence checks.  @return its seq and whether it fully covers
     * the range (kNoSeq when none).
     */
    std::pair<SeqNum, bool> youngestOverlap(Addr addr,
                                            std::uint8_t size) const;

    /**
     * Skip-ahead hint: @p now when some entry is ready to act next
     * tick (a push-eligible entry, or a JOIN with both tags cleared);
     * kNoCycle otherwise.  Every gate in this buffer clears through
     * an instruction completing -- core progress that ends any skip
     * window by itself -- so a gated buffer advertises no intrinsic
     * event; the gating stall counters of the cycles skipped over are
     * replayed by the core (see OoOCore::run).
     */
    Cycle nextEventCycle(Cycle now) const;

    const WriteBufferStats &stats() const { return stats_; }

    /**
     * Skip-ahead stat replay: account the gating stalls the buffer
     * would have counted on each of the skipped dead cycles.  The
     * core measures one dead tick's deltas and multiplies (the buffer
     * is untouched across the window, so every skipped tick would
     * have counted exactly the same stalls).
     */
    void
    replayGateStalls(std::uint64_t src_id, std::uint64_t line,
                     std::uint64_t dmb)
    {
        stats_.srcIdGated += src_id;
        stats_.lineGated += line;
        stats_.dmbGated += dmb;
    }

    /** Oldest-first contents (watchdog diagnostics). */
    const std::deque<WbEntry> &entries() const { return entries_; }

    /**
     * Append the sequence numbers of the older entries that currently
     * block @p seq's push -- its same-line predecessors (the stall
     * analyzer walks them like any other ordering edge).  @return
     * false when @p seq is not in the buffer.
     */
    bool appendLineBlockers(SeqNum seq,
                            std::vector<SeqNum> &out) const;

    /**
     * Degrade-to-fence recovery: drop the srcID tags of @p seq so the
     * entry pushes as soon as its memory-ordering gates allow.
     * @return true when a tag was actually cleared.
     */
    bool clearEdeGates(SeqNum seq);

  private:
    Addr lineOf(Addr a) const { return a & ~static_cast<Addr>(lineBytes_ - 1); }
    bool lineConflictBefore(std::size_t idx) const;
    void completeEntry(std::size_t idx, Cycle now);

    std::size_t capacity_;
    int drainPerCycle_;
    std::uint32_t lineBytes_;
    MemSystem &mem_;
    CompletionFn onComplete_;
    DmbCheckFn dmbBlocked_;
    unsigned coreId_ = 0;
    std::deque<WbEntry> entries_;   ///< Oldest first.
    WriteBufferStats stats_;
};

} // namespace ede

#endif // EDE_PIPELINE_WRITE_BUFFER_HH
