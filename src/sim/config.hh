/**
 * @file
 * The five architecture configurations of Table III.
 *
 * A configuration has two halves that must agree: how the NVM
 * framework lowers persist-ordering requirements into the instruction
 * stream (DSB SY / DMB ST / EDE keys / nothing), and which EDE
 * enforcement hardware the core models.
 */

#ifndef EDE_SIM_CONFIG_HH
#define EDE_SIM_CONFIG_HH

#include <array>
#include <string_view>

#include "mem/mem_system.hh"
#include "pipeline/params.hh"

namespace ede {

/** Table III configurations. */
enum class Config {
    B,   ///< Baseline: DSB SY enforces all orderings.
    SU,  ///< Store Barrier Unsafe: DMB ST only (x86 SFENCE-like).
    IQ,  ///< EDE, enforced at the issue queue.
    WB,  ///< EDE, enforced at the write buffer.
    U,   ///< Unsafe: all fences removed.
};

/** All configurations in the paper's presentation order. */
inline constexpr std::array<Config, 5> kAllConfigs = {
    Config::B, Config::SU, Config::IQ, Config::WB, Config::U,
};

/** Printable short name matching the paper. */
constexpr std::string_view
configName(Config c)
{
    switch (c) {
      case Config::B: return "B";
      case Config::SU: return "SU";
      case Config::IQ: return "IQ";
      case Config::WB: return "WB";
      case Config::U: return "U";
    }
    return "<bad-config>";
}

/** True for configurations that permit crash-inconsistent reordering. */
constexpr bool
configIsUnsafe(Config c)
{
    return c == Config::SU || c == Config::U;
}

/** True for configurations that use EDE instructions. */
constexpr bool
configUsesEde(Config c)
{
    return c == Config::IQ || c == Config::WB;
}

/** Enforcement hardware required by a configuration. */
constexpr EnforceMode
configEnforceMode(Config c)
{
    switch (c) {
      case Config::IQ: return EnforceMode::IQ;
      case Config::WB: return EnforceMode::WB;
      default: return EnforceMode::None;
    }
}

/** Everything needed to build a System. */
struct SimParams
{
    CoreParams core;     ///< Shared by every core (homogeneous SMP).
    MemSystemParams mem;
    int coreCount = 1;   ///< Cores sharing the hierarchy at the L2.
};

/** Table I defaults specialized for configuration @p c. */
inline SimParams
makeParams(Config c)
{
    SimParams p;
    p.core.ede = configEnforceMode(c);
    return p;
}

} // namespace ede

#endif // EDE_SIM_CONFIG_HH
