#include "sim/session.hh"

#include <sstream>

#include "common/logging.hh"

namespace ede {

namespace {

/** what() text: kind + cycle header, then the full dump. */
std::string
simFaultMessage(const SimError &error)
{
    std::ostringstream os;
    os << simErrorKindName(error.kind) << " at cycle " << error.cycle
       << " (last progress at " << error.lastProgressCycle << ")\n"
       << error.describe();
    return os.str();
}

} // namespace

SimFaultError::SimFaultError(SimError error)
    : std::runtime_error(simFaultMessage(error)),
      error_(std::move(error))
{
}

Session::Session(const SimConfig &config)
    : config_(config), system_(config)
{
}

SimResult
Session::run(const Trace &trace)
{
    ede_assert(!ran_, "Session::run is single-shot; build a new "
               "Session");
    ran_ = true;
    system_.run(trace);
    return collect();
}

SimResult
Session::run(const std::vector<Trace> &traces)
{
    ede_assert(!ran_, "Session::run is single-shot; build a new "
               "Session");
    ede_assert(traces.size() == system_.coreCount(),
               "Session::run needs one trace per core (",
               system_.coreCount(), " cores, ", traces.size(),
               " traces)");
    ran_ = true;
    system_.run(traces);
    return collect();
}

SimResult
Session::collect() const
{
    SimResult r;
    r.stats = system_.result();
    if (const SimError *e = system_.firstError())
        r.error = *e;
    r.profile = system_.profile();
    return r;
}

SimResult
Session::runChecked(const Trace &trace)
{
    SimResult r = run(trace);
    if (!r.ok())
        throw SimFaultError(r.error);
    return r;
}

SimResult
Session::runChecked(const std::vector<Trace> &traces)
{
    SimResult r = run(traces);
    if (!r.ok())
        throw SimFaultError(r.error);
    return r;
}

} // namespace ede
