#include "sim/session.hh"

#include <sstream>

#include "common/logging.hh"
#include "traffic/overload.hh"

namespace ede {

namespace {

/** what() text: kind + cycle header, then the full dump. */
std::string
simFaultMessage(const SimError &error)
{
    std::ostringstream os;
    os << simErrorKindName(error.kind) << " at cycle " << error.cycle
       << " (last progress at " << error.lastProgressCycle << ")\n"
       << error.describe();
    return os.str();
}

/** A pre-simulation rejection as a result (no machine state). */
SimResult
rejected(SimErrorKind kind, std::string detail)
{
    SimResult r;
    r.error.kind = kind;
    r.error.detail = std::move(detail);
    return r;
}

} // namespace

SimFaultError::SimFaultError(SimError error)
    : std::runtime_error(simFaultMessage(error)),
      error_(std::move(error))
{
}

Session::Session(const SimConfig &config)
    : config_(config), system_(config)
{
}

SimResult
Session::run(const RunRequest &request)
{
    if (ran_) {
        return rejected(SimErrorKind::SessionReused,
                        "Session::run is single-shot; build a new "
                        "Session per run");
    }

    if (request.hasTraffic) {
        const traffic::TrafficCheck check =
            traffic::validateTrafficPlan(request.traffic,
                                         system_.config(),
                                         system_.coreCount());
        if (!check.ok())
            return rejected(check.kind, check.message);
        if (!request.traces.empty()) {
            return rejected(SimErrorKind::RunRequestInvalid,
                            "a traffic request builds its own "
                            "traces; pass either traces or a plan");
        }
        const traffic::TrafficWorkload workload =
            traffic::buildTrafficWorkload(request.traffic,
                                          system_.config(),
                                          system_.coreCount());
        ran_ = true;
        system_.recordCompletions(true);
        system_.run(workload.traces);
        SimResult r = collect();
        if (r.ok()) {
            std::vector<std::vector<Cycle>> completions;
            completions.reserve(system_.coreCount());
            for (unsigned c = 0; c < system_.coreCount(); ++c)
                completions.push_back(system_.completionCycles(c));
            // The machine's own congestion feeds the replay's
            // admission control: WPQ occupancy and accept rejects
            // from this very run scale the finite queue depth.
            const NvmDevice &nvm = system_.mem().controller().nvm();
            traffic::BackpressureSignal signal;
            signal.occupancyPermille = nvm.meanOccupancyPermille();
            signal.rejectPermille = nvm.rejectPermille();
            signal.transientRejects = nvm.stats().transientRejects;
            signal.bufferFullRejects = nvm.stats().bufferFullRejects;
            r.stats.traffic = traffic::computeTrafficResult(
                request.traffic, workload, completions, signal);
        }
        return r;
    }

    if (request.traces.empty()) {
        return rejected(SimErrorKind::RunRequestInvalid,
                        "RunRequest names no workload: pass traces "
                        "or a traffic plan");
    }
    if (request.traces.size() != system_.coreCount()) {
        std::ostringstream os;
        os << "RunRequest needs one trace per core ("
           << system_.coreCount() << " cores, "
           << request.traces.size() << " traces)";
        return rejected(SimErrorKind::RunRequestInvalid, os.str());
    }

    ran_ = true;
    system_.run(request.traces);
    return collect();
}

SimResult
Session::collect() const
{
    SimResult r;
    r.stats = system_.result();
    if (const SimError *e = system_.firstError())
        r.error = *e;
    r.profile = system_.profile();
    return r;
}

} // namespace ede
