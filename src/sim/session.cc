#include "sim/session.hh"

#include <sstream>

#include "common/logging.hh"

namespace ede {

namespace {

/** what() text: kind + cycle header, then the full dump. */
std::string
simFaultMessage(const SimError &error)
{
    std::ostringstream os;
    os << simErrorKindName(error.kind) << " at cycle " << error.cycle
       << " (last progress at " << error.lastProgressCycle << ")\n"
       << error.describe();
    return os.str();
}

} // namespace

SimFaultError::SimFaultError(SimError error)
    : std::runtime_error(simFaultMessage(error)),
      error_(std::move(error))
{
}

Session::Session(const SimConfig &config)
    : config_(config), system_(config)
{
}

SimResult
Session::run(const Trace &trace)
{
    ede_assert(!ran_, "Session::run is single-shot; build a new "
               "Session");
    ran_ = true;
    system_.run(trace);
    SimResult r;
    r.stats = system_.result();
    r.error = system_.core().simError();
    r.profile = system_.profile();
    return r;
}

SimResult
Session::runChecked(const Trace &trace)
{
    SimResult r = run(trace);
    if (!r.ok())
        throw SimFaultError(r.error);
    return r;
}

} // namespace ede
