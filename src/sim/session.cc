#include "sim/session.hh"

#include "common/logging.hh"

namespace ede {

Session::Session(const SimConfig &config)
    : config_(config), system_(config)
{
}

SimResult
Session::run(const Trace &trace)
{
    ede_assert(!ran_, "Session::run is single-shot; build a new "
               "Session");
    ran_ = true;
    system_.run(trace);
    SimResult r;
    r.stats = system_.result();
    r.error = system_.core().simError();
    r.profile = system_.profile();
    return r;
}

} // namespace ede
