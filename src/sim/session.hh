/**
 * @file
 * Session: one validated simulation from configuration to result.
 *
 * OoOCore::run is deliberately single-shot (warm predictor/EDM state
 * must never leak between runs), which used to leave every caller
 * hand-assembling MemSystem + OoOCore + images and separately
 * remembering to check simError() before trusting the cycle count.
 * Session packages that contract:
 *
 *   Session s(SimConfig::paper(Config::WB));
 *   SimResult r = s.run(trace);
 *   if (!r.ok()) ...            // structured SimError
 *   use(r.cycles(), r.stats, r.profile);
 *
 * The configuration is validated up front -- error diagnostics stop
 * construction with the full report, instead of a component assert
 * firing somewhere inside the build.
 */

#ifndef EDE_SIM_SESSION_HH
#define EDE_SIM_SESSION_HH

#include "exp/profile.hh"
#include "sim/sim_config.hh"
#include "sim/system.hh"

namespace ede {

/** Everything one simulation produced. */
struct SimResult
{
    RunResult stats;      ///< Statistics snapshot (cycles, counters).
    SimError error;       ///< kind == None after a clean run.
    HostProfile profile;  ///< Host-side wall-clock / skip counters.

    /** True when the run finished without a structured error. */
    bool ok() const { return error.kind == SimErrorKind::None; }

    Cycle cycles() const { return stats.cycles; }
};

/** A single-shot simulation session over a validated SimConfig. */
class Session
{
  public:
    /** Validates @p config; error diagnostics are fatal here. */
    explicit Session(const SimConfig &config);

    /**
     * Run @p trace to completion.  Single-shot, like the core it
     * wraps: build a fresh Session per run.
     */
    SimResult run(const Trace &trace);

    /** True once run() has been called. */
    bool ran() const { return ran_; }

    /** @name Pre-run knobs and component access. */
    /// @{
    System &system() { return system_; }
    const System &system() const { return system_; }
    const SimConfig &config() const { return config_; }
    /// @}

  private:
    SimConfig config_;
    System system_;
    bool ran_ = false;
};

} // namespace ede

#endif // EDE_SIM_SESSION_HH
