/**
 * @file
 * Session: one validated simulation from configuration to result.
 *
 * OoOCore::run is deliberately single-shot (warm predictor/EDM state
 * must never leak between runs), which used to leave every caller
 * hand-assembling MemSystem + OoOCore + images and separately
 * remembering to check simError() before trusting the cycle count.
 * Session packages that contract:
 *
 *   Session s(SimConfig::paper(Config::WB));
 *   SimResult r = s.run(trace);
 *   if (!r.ok()) ...            // structured SimError
 *   use(r.cycles(), r.stats, r.profile);
 *
 * The configuration is validated up front -- error diagnostics stop
 * construction with the full report, instead of a component assert
 * firing somewhere inside the build.
 */

#ifndef EDE_SIM_SESSION_HH
#define EDE_SIM_SESSION_HH

#include <stdexcept>

#include "exp/profile.hh"
#include "sim/sim_config.hh"
#include "sim/system.hh"

namespace ede {

/**
 * A structured simulator abort (watchdog, max-cycles backstop, EDK
 * dependence cycle) raised as an exception.  what() carries the kind
 * name, the abort cycle and the full diagnostic dump, so an isolated
 * experiment worker can ship the whole report to its parent as a
 * typed SimFault failure record instead of dying on a panic.
 */
class SimFaultError : public std::runtime_error
{
  public:
    explicit SimFaultError(SimError error);

    /** The full structured report. */
    const SimError &error() const { return error_; }

    SimErrorKind kind() const { return error_.kind; }

  private:
    SimError error_;
};

/** Everything one simulation produced. */
struct SimResult
{
    RunResult stats;      ///< Statistics snapshot (cycles, counters).
    SimError error;       ///< kind == None after a clean run.
    HostProfile profile;  ///< Host-side wall-clock / skip counters.

    /** True when the run finished without a structured error. */
    bool ok() const { return error.kind == SimErrorKind::None; }

    Cycle cycles() const { return stats.cycles; }
};

/** A single-shot simulation session over a validated SimConfig. */
class Session
{
  public:
    /** Validates @p config; error diagnostics are fatal here. */
    explicit Session(const SimConfig &config);

    /**
     * Run @p trace to completion.  Single-shot, like the cores it
     * wraps: build a fresh Session per run.  @pre the configuration
     * has coreCount 1 -- multi-core machines take one trace per core
     * through the vector overload.
     */
    SimResult run(const Trace &trace);

    /**
     * Run one trace per core, lock-step, to completion.  @p traces
     * must hold exactly coreCount entries (trace i binds to core i).
     * The result's error is the first core's structured abort in
     * index order; stats.perCore carries each core's breakdown.
     */
    SimResult run(const std::vector<Trace> &traces);

    /**
     * As run(), but a structured simulator abort raises SimFaultError
     * (carrying the full SimError) instead of returning it in the
     * result -- the contract isolated experiment workers rely on to
     * turn watchdog / max-cycles / EdkDependenceCycle aborts into
     * typed failure records.
     */
    SimResult runChecked(const Trace &trace);

    /** Multi-core runChecked; same contract as the vector run(). */
    SimResult runChecked(const std::vector<Trace> &traces);

    /** True once run() has been called. */
    bool ran() const { return ran_; }

    /** @name Pre-run knobs and component access. */
    /// @{
    System &system() { return system_; }
    const System &system() const { return system_; }
    const SimConfig &config() const { return config_; }
    /// @}

  private:
    SimResult collect() const;

    SimConfig config_;
    System system_;
    bool ran_ = false;
};

} // namespace ede

#endif // EDE_SIM_SESSION_HH
