/**
 * @file
 * Session: one validated simulation from configuration to result.
 *
 * OoOCore::run is deliberately single-shot (warm predictor/EDM state
 * must never leak between runs), which used to leave every caller
 * hand-assembling MemSystem + OoOCore + images and separately
 * remembering to check simError() before trusting the cycle count.
 * Session packages that contract around one entry point:
 *
 *   Session s(SimConfig::paper(Config::WB));
 *   SimResult r = s.run(RunRequest::of(trace));
 *   if (!r.ok()) ...            // structured SimError
 *   use(r.cycles(), r.stats, r.profile);
 *
 * A RunRequest names the workload -- one trace, one trace per core,
 * or an open-loop traffic plan (traffic/stream_mux.hh) -- and every
 * outcome flows back through the same result-or-SimError channel:
 * request validation failures (RunRequestInvalid, SessionReused,
 * CoreCountKeyExhausted) are reported exactly like machine aborts,
 * so sweep drivers handle one shape.  Callers who prefer an
 * exception rethrow r.error as a SimFaultError themselves.
 *
 * The configuration is validated up front -- error diagnostics stop
 * construction with the full report, instead of a component assert
 * firing somewhere inside the build.
 */

#ifndef EDE_SIM_SESSION_HH
#define EDE_SIM_SESSION_HH

#include <stdexcept>

#include "exp/profile.hh"
#include "sim/sim_config.hh"
#include "sim/system.hh"
#include "traffic/stream_mux.hh"

namespace ede {

/**
 * A structured simulator abort (watchdog, max-cycles backstop, EDK
 * dependence cycle) raised as an exception.  what() carries the kind
 * name, the abort cycle and the full diagnostic dump, so an isolated
 * experiment worker can ship the whole report to its parent as a
 * typed SimFault failure record instead of dying on a panic.
 */
class SimFaultError : public std::runtime_error
{
  public:
    explicit SimFaultError(SimError error);

    /** The full structured report. */
    const SimError &error() const { return error_; }

    SimErrorKind kind() const { return error_.kind; }

  private:
    SimError error_;
};

/** Everything one simulation produced. */
struct SimResult
{
    RunResult stats;      ///< Statistics snapshot (cycles, counters).
    SimError error;       ///< kind == None after a clean run.
    HostProfile profile;  ///< Host-side wall-clock / skip counters.

    /** True when the run finished without a structured error. */
    bool ok() const { return error.kind == SimErrorKind::None; }

    Cycle cycles() const { return stats.cycles; }
};

/**
 * One validated workload request: either explicit traces (one per
 * core) or a traffic plan the session expands itself.  Built through
 * the factories; Session::run rejects malformed requests with a
 * structured RunRequestInvalid instead of asserting.
 */
struct RunRequest
{
    /** One trace per core, index order (trace i binds to core i). */
    std::vector<Trace> traces;

    /** When set, @ref traffic drives the run and traces are built. */
    bool hasTraffic = false;
    traffic::TrafficPlan traffic;

    /** Single-core request. */
    static RunRequest
    of(Trace trace)
    {
        RunRequest req;
        req.traces.push_back(std::move(trace));
        return req;
    }

    /** Multi-core request; one trace per core. */
    static RunRequest
    perCore(std::vector<Trace> traces)
    {
        RunRequest req;
        req.traces = std::move(traces);
        return req;
    }

    /** Open-loop traffic request (see traffic/stream_mux.hh). */
    static RunRequest
    ofTraffic(const traffic::TrafficPlan &plan)
    {
        RunRequest req;
        req.hasTraffic = true;
        req.traffic = plan;
        return req;
    }
};

/** A single-shot simulation session over a validated SimConfig. */
class Session
{
  public:
    /** Validates @p config; error diagnostics are fatal here. */
    explicit Session(const SimConfig &config);

    /**
     * Run @p request to completion.  Single-shot, like the cores it
     * wraps: a second call returns a SessionReused error without
     * touching the machine.  Invalid requests (no workload, a
     * trace-per-core mismatch, a malformed traffic plan) return
     * RunRequestInvalid -- also without consuming the session, so a
     * driver may correct the request and retry.
     *
     * Traffic requests expand the plan into per-core traces, enable
     * completion recording, and fill stats.traffic with the exact
     * open-loop tail-latency records after the machine run.
     */
    SimResult run(const RunRequest &request);

    /** True once a request has actually reached the machine. */
    bool ran() const { return ran_; }

    /** @name Pre-run knobs and component access. */
    /// @{
    System &system() { return system_; }
    const System &system() const { return system_; }
    const SimConfig &config() const { return config_; }
    /// @}

  private:
    SimResult collect() const;

    SimConfig config_;
    System system_;
    bool ran_ = false;
};

} // namespace ede

#endif // EDE_SIM_SESSION_HH
