#include "sim/sim_config.hh"

#include <sstream>

namespace ede {

const char *
simConfigCheckName(SimConfigCheck check)
{
    switch (check) {
      case SimConfigCheck::NonPositiveWidth:
        return "non-positive-width";
      case SimConfigCheck::NonPositiveCapacity:
        return "non-positive-capacity";
      case SimConfigCheck::EnforceMismatch:
        return "enforce-mismatch";
      case SimConfigCheck::MemGeometryInvalid:
        return "mem-geometry-invalid";
      case SimConfigCheck::EmptyMemRegion:
        return "empty-mem-region";
      case SimConfigCheck::IssueWidthBeyondHistogram:
        return "issue-width-beyond-histogram";
      case SimConfigCheck::ZeroLatency:
        return "zero-latency";
      case SimConfigCheck::StallWindowAboveWatchdog:
        return "stall-window-above-watchdog";
      case SimConfigCheck::CoreCountInvalid:
        return "core-count-invalid";
      case SimConfigCheck::NumKinds:
        break;
    }
    return "<bad-check>";
}

std::string
SimConfigReport::describe() const
{
    std::ostringstream os;
    for (const SimConfigDiagnostic &d : diagnostics) {
        os << (d.severity == SimConfigSeverity::Error ? "error"
                                                      : "warning")
           << ' ' << simConfigCheckName(d.kind) << ' ' << d.field
           << ": " << d.message << '\n';
    }
    return os.str();
}

namespace {

void
add(SimConfigReport &report, SimConfigCheck kind,
    SimConfigSeverity severity, std::string field, std::string message)
{
    SimConfigDiagnostic d;
    d.kind = kind;
    d.severity = severity;
    d.field = std::move(field);
    d.message = std::move(message);
    report.diagnostics.push_back(std::move(d));
}

void
requirePositive(SimConfigReport &report, SimConfigCheck kind,
                const char *field, long long value)
{
    if (value < 1) {
        add(report, kind, SimConfigSeverity::Error, field,
            "must be at least 1, got " + std::to_string(value));
    }
}

bool
isPow2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

void
checkCache(SimConfigReport &report, const char *prefix,
           const CacheParams &c)
{
    const std::string p = prefix;
    if (!isPow2(c.lineBytes)) {
        add(report, SimConfigCheck::MemGeometryInvalid,
            SimConfigSeverity::Error, p + ".lineBytes",
            "line size must be a nonzero power of two, got " +
                std::to_string(c.lineBytes));
        return; // The set computation below would divide by zero.
    }
    if (c.assoc < 1 || c.sizeBytes < c.lineBytes * c.assoc ||
        c.sizeBytes / (c.lineBytes * std::max<std::uint32_t>(c.assoc, 1))
            == 0) {
        add(report, SimConfigCheck::MemGeometryInvalid,
            SimConfigSeverity::Error, p + ".sizeBytes",
            "size/assoc/line geometry yields zero sets");
    }
    if (c.mshrs < 1) {
        add(report, SimConfigCheck::MemGeometryInvalid,
            SimConfigSeverity::Error, p + ".mshrs",
            "need at least one MSHR");
    }
    if (c.ports < 1) {
        add(report, SimConfigCheck::MemGeometryInvalid,
            SimConfigSeverity::Error, p + ".ports",
            "need at least one port");
    }
    if (c.inputQueue < 1) {
        add(report, SimConfigCheck::MemGeometryInvalid,
            SimConfigSeverity::Error, p + ".inputQueue",
            "need at least one input-queue slot");
    }
}

} // namespace

SimConfigReport
SimConfig::validate() const
{
    SimConfigReport report;
    const auto width = SimConfigCheck::NonPositiveWidth;
    const auto cap = SimConfigCheck::NonPositiveCapacity;

    requirePositive(report, width, "core.fetchWidth", core_.fetchWidth);
    requirePositive(report, width, "core.issueWidth", core_.issueWidth);
    requirePositive(report, width, "core.retireWidth",
                    core_.retireWidth);
    requirePositive(report, width, "core.aluUnits", core_.aluUnits);
    requirePositive(report, width, "core.mulUnits", core_.mulUnits);
    requirePositive(report, width, "core.branchUnits",
                    core_.branchUnits);
    requirePositive(report, width, "core.loadUnits", core_.loadUnits);
    requirePositive(report, width, "core.storeUnits", core_.storeUnits);
    requirePositive(report, width, "core.wbDrainPerCycle",
                    core_.wbDrainPerCycle);

    requirePositive(report, cap, "core.robSize", core_.robSize);
    requirePositive(report, cap, "core.iqSize", core_.iqSize);
    requirePositive(report, cap, "core.lqSize", core_.lqSize);
    requirePositive(report, cap, "core.sqSize", core_.sqSize);
    requirePositive(report, cap, "core.wbSize", core_.wbSize);
    requirePositive(report, cap, "core.predictorEntries",
                    static_cast<long long>(core_.predictorEntries));

    if (coreCount_ < 1 || coreCount_ > 64) {
        add(report, SimConfigCheck::CoreCountInvalid,
            SimConfigSeverity::Error, "coreCount",
            "core count must be in [1, 64], got " +
                std::to_string(coreCount_));
    }

    if (core_.ede != configEnforceMode(cfg_)) {
        add(report, SimConfigCheck::EnforceMismatch,
            SimConfigSeverity::Error, "core.ede",
            "configuration " + std::string(configName(cfg_)) +
                " requires a matching enforcement mode (see "
                "configEnforceMode)");
    }

    checkCache(report, "mem.l1d", mem_.l1d);
    checkCache(report, "mem.l2", mem_.l2);
    checkCache(report, "mem.l3", mem_.l3);
    if (mem_.dram.banks < 1 || mem_.dram.queueDepth < 1) {
        add(report, SimConfigCheck::MemGeometryInvalid,
            SimConfigSeverity::Error, "mem.dram",
            "need at least one bank and one queue slot");
    }
    if (!isPow2(mem_.nvm.lineBytes)) {
        add(report, SimConfigCheck::MemGeometryInvalid,
            SimConfigSeverity::Error, "mem.nvm.lineBytes",
            "media line size must be a nonzero power of two, got " +
                std::to_string(mem_.nvm.lineBytes));
    }
    if (mem_.nvm.bufferSlots < 1 || mem_.nvm.mediaWriters < 1 ||
        mem_.nvm.mediaReaders < 1 || mem_.nvm.readQueueDepth < 1) {
        add(report, SimConfigCheck::MemGeometryInvalid,
            SimConfigSeverity::Error, "mem.nvm",
            "need at least one WPQ slot, writer, reader and "
            "read-queue slot");
    }
    if (mem_.map.dramBytes == 0 || mem_.map.nvmBytes == 0) {
        add(report, SimConfigCheck::EmptyMemRegion,
            SimConfigSeverity::Error, "mem.map",
            "both the DRAM and NVM regions must be non-empty");
    }

    if (core_.issueWidth > 8) {
        add(report, SimConfigCheck::IssueWidthBeyondHistogram,
            SimConfigSeverity::Warning, "core.issueWidth",
            "the Fig. 11 issue histogram covers 0..8 issues per "
            "cycle; width " + std::to_string(core_.issueWidth) +
                " saturates its top bucket");
    }
    for (const auto &[field, lat] :
         {std::pair<const char *, Cycle>{"core.aluLatency",
                                         core_.aluLatency},
          {"core.mulLatency", core_.mulLatency},
          {"core.branchLatency", core_.branchLatency},
          {"core.agenLatency", core_.agenLatency},
          {"core.forwardLatency", core_.forwardLatency}}) {
        if (lat == 0) {
            add(report, SimConfigCheck::ZeroLatency,
                SimConfigSeverity::Warning, field,
                "zero-cycle latency; legal but likely a typo");
        }
    }
    if (core_.ede != EnforceMode::None &&
        core_.edkStallCycles >= core_.watchdogCycles) {
        add(report, SimConfigCheck::StallWindowAboveWatchdog,
            SimConfigSeverity::Warning, "core.edkStallCycles",
            "stall-analyzer window (" +
                std::to_string(core_.edkStallCycles) +
                ") is not below watchdogCycles (" +
                std::to_string(core_.watchdogCycles) +
                "); the watchdog aborts before any analysis");
    }
    return report;
}

} // namespace ede
