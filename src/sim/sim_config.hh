/**
 * @file
 * The unified, validated simulation configuration.
 *
 * SimConfig is the single front door for building a simulated
 * machine: it bundles the Table III configuration with the core and
 * memory parameter structs, offers fluent overrides for ablations,
 * and -- unlike handing raw parameter structs to constructors --
 * can explain *what* is wrong with a configuration before any
 * component asserts deep inside the build.
 *
 * validate() returns typed diagnostics in the style of the static
 * EDK verifier (verify/diagnostics.hh): each broken invariant is a
 * (kind, severity, field) triple tooling can assert on, not just a
 * prose string.  System and Session refuse error-level diagnostics;
 * warnings (an issue width the Fig. 11 histogram will saturate on, a
 * stall-analyzer window at or above the watchdog) are advisory.
 */

#ifndef EDE_SIM_SIM_CONFIG_HH
#define EDE_SIM_SIM_CONFIG_HH

#include <cstddef>
#include <string>
#include <vector>

#include "sim/config.hh"

namespace ede {

/** Which configuration invariant a diagnostic reports. */
enum class SimConfigCheck
{
    /** A pipeline width or functional-unit count below one. */
    NonPositiveWidth,
    /** A queue/buffer capacity below one entry. */
    NonPositiveCapacity,
    /** CoreParams::ede disagrees with the Table III configuration
     *  (e.g. a WB machine asked to run the IQ enforcement). */
    EnforceMismatch,
    /** A cache/DRAM/NVM geometry the model cannot index: non-power-
     *  of-two line size, a size/assoc pair yielding zero sets, a
     *  zero-entry structure. */
    MemGeometryInvalid,
    /** The address map has a zero-byte DRAM or NVM region. */
    EmptyMemRegion,
    /** issueWidth exceeds the Fig. 11 histogram range (0..8); the
     *  distribution will saturate its top bucket (warning). */
    IssueWidthBeyondHistogram,
    /** A zero operation latency; legal but almost always a typo
     *  (warning). */
    ZeroLatency,
    /** edkStallCycles does not sit below watchdogCycles, so the
     *  analyzer can never classify a stall before the watchdog
     *  aborts the run (warning). */
    StallWindowAboveWatchdog,
    /** coreCount outside [1, 64]: a machine needs at least one core,
     *  and the snoop model walks every peer L1 on every store. */
    CoreCountInvalid,

    NumKinds,
};

constexpr std::size_t kNumSimConfigChecks =
    static_cast<std::size_t>(SimConfigCheck::NumKinds);

/** Short stable name, e.g. for JSON counters. */
const char *simConfigCheckName(SimConfigCheck check);

/** Diagnostic severity; only errors reject a configuration. */
enum class SimConfigSeverity { Warning, Error };

/** One validation finding, anchored at a parameter field. */
struct SimConfigDiagnostic
{
    SimConfigCheck kind = SimConfigCheck::NumKinds;
    SimConfigSeverity severity = SimConfigSeverity::Error;
    std::string field;    ///< Dotted parameter path, e.g. "core.robSize".
    std::string message;  ///< Human-readable detail.
};

/** Outcome of validating one SimConfig. */
struct SimConfigReport
{
    std::vector<SimConfigDiagnostic> diagnostics;

    /** True when no error-severity diagnostic was emitted. */
    bool
    accepted() const
    {
        for (const SimConfigDiagnostic &d : diagnostics) {
            if (d.severity == SimConfigSeverity::Error)
                return false;
        }
        return true;
    }

    /** The first error diagnostic (nullptr when accepted). */
    const SimConfigDiagnostic *
    firstError() const
    {
        for (const SimConfigDiagnostic &d : diagnostics) {
            if (d.severity == SimConfigSeverity::Error)
                return &d;
        }
        return nullptr;
    }

    /** Number of diagnostics of @p kind (any severity). */
    std::size_t
    countOf(SimConfigCheck kind) const
    {
        std::size_t n = 0;
        for (const SimConfigDiagnostic &d : diagnostics)
            n += d.kind == kind ? 1 : 0;
        return n;
    }

    /** Render every diagnostic as "severity kind field: message". */
    std::string describe() const;
};

/**
 * The unified configuration, with fluent overrides.
 *
 *   System sys(SimConfig::paper(Config::WB));
 *   Session s(SimConfig::paper(Config::B)
 *                 .withWbSize(32)
 *                 .withTicking(TickingMode::Reference));
 */
class SimConfig
{
  public:
    /** Table I defaults for the baseline configuration. */
    SimConfig() { syncEnforce(); }

    /** The paper's preset for Table III configuration @p c. */
    static SimConfig
    paper(Config c)
    {
        SimConfig sc;
        sc.cfg_ = c;
        sc.syncEnforce();
        return sc;
    }

    /** @name Fluent overrides (each returns *this). */
    /// @{
    SimConfig &
    withConfig(Config c)
    {
        cfg_ = c;
        syncEnforce();
        return *this;
    }

    /** Replace the whole core parameter struct (ablation sweeps).
     *  The enforcement mode is taken from @p p verbatim -- validate()
     *  reports EnforceMismatch when it disagrees with the Table III
     *  configuration. */
    SimConfig &
    withCore(const CoreParams &p)
    {
        core_ = p;
        return *this;
    }

    SimConfig &
    withMem(const MemSystemParams &p)
    {
        mem_ = p;
        return *this;
    }

    SimConfig &
    withTicking(TickingMode m)
    {
        core_.ticking = m;
        return *this;
    }

    SimConfig &
    withWbSize(int entries)
    {
        core_.wbSize = entries;
        return *this;
    }

    SimConfig &
    withEdkRecovery(EdkRecoveryMode m)
    {
        core_.edkRecoveryMode = m;
        return *this;
    }

    SimConfig &
    withEdkStallCycles(Cycle c)
    {
        core_.edkStallCycles = c;
        return *this;
    }

    SimConfig &
    withWatchdog(Cycle c)
    {
        core_.watchdogCycles = c;
        return *this;
    }

    /**
     * Number of cores sharing the hierarchy at the L2 coherence
     * point.  Every core gets the same CoreParams, its own private
     * L1D / write buffer / EDM, and a trace of its own at run time
     * (Session::run takes one trace per core).
     */
    SimConfig &
    withCoreCount(int n)
    {
        coreCount_ = n;
        return *this;
    }
    /// @}

    /** @name Access. */
    /// @{
    Config config() const { return cfg_; }
    const CoreParams &core() const { return core_; }
    CoreParams &core() { return core_; }
    const MemSystemParams &mem() const { return mem_; }
    MemSystemParams &mem() { return mem_; }
    int coreCount() const { return coreCount_; }

    /** The component-level parameter bundle System consumes. */
    SimParams
    params() const
    {
        return SimParams{core_, mem_, coreCount_};
    }
    /// @}

    /** Check every modelled invariant; never asserts. */
    SimConfigReport validate() const;

  private:
    void syncEnforce() { core_.ede = configEnforceMode(cfg_); }

    Config cfg_ = Config::B;
    CoreParams core_;
    MemSystemParams mem_;
    int coreCount_ = 1;
};

} // namespace ede

#endif // EDE_SIM_SIM_CONFIG_HH
