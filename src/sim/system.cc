#include "sim/system.hh"

#include "common/logging.hh"

namespace ede {

System::System(Config cfg) : System(SimConfig::paper(cfg)) {}

System::System(Config cfg, const SimParams &params)
    : System(SimConfig::paper(cfg).withCore(params.core)
                 .withMem(params.mem))
{
}

System::System(const SimConfig &config)
    : cfg_(config.config()), params_(config.params())
{
    const SimConfigReport report = config.validate();
    ede_assert(report.accepted(), "invalid SimConfig:\n",
               report.describe());
    wire();
}

void
System::wire()
{
    mem_ = std::make_unique<MemSystem>(params_.mem);
    core_ = std::make_unique<OoOCore>(params_.core, *mem_);
    core_->setTimingImage(&timingImage_);
    core_->setProfile(&profile_);

    // Entering the persistent on-DIMM buffer makes a line durable:
    // snapshot its coherent contents into the crash image.
    mem_->controller().nvm().setPersistHook(
        [this](Addr addr, std::uint32_t size, Cycle now,
               TraceIndex origin) {
            nvmImage_.copyRange(timingImage_, addr, size);
            PersistEvent ev;
            ev.addr = addr;
            ev.size = size;
            ev.cycle = now;
            ev.origin = origin;
            if (recordPersistData_) {
                ev.bytes.resize(size);
                timingImage_.read(addr, ev.bytes.data(), size);
            }
            persistEvents_.push_back(std::move(ev));
        });

    mem_->controller().nvm().setMediaWriteHook(
        [this](Addr line, Cycle now) {
            mediaWriteEvents_.push_back(MediaWriteEvent{line, now});
        });
}

Cycle
System::run(const Trace &trace)
{
    return core_->run(trace);
}

RunResult
System::result() const
{
    RunResult r;
    r.config = cfg_;
    r.cycles = core_->stats().cycles;
    r.core = core_->stats();
    r.wb = core_->wbStats();
    const MemSystem &m = *mem_;
    r.nvm = m.controller().nvm().stats();
    r.nvmOccupancy = m.controller().nvm().occupancyDist();
    r.l1d = m.l1d().stats();
    r.l2 = m.l2().stats();
    r.l3 = m.l3().stats();
    r.dram = m.controller().dram().stats();
    return r;
}

} // namespace ede
