#include "sim/system.hh"

#include <algorithm>

#include "common/logging.hh"
#include "pipeline/run_loop.hh"

namespace ede {

System::System(Config cfg) : System(SimConfig::paper(cfg)) {}

System::System(Config cfg, const SimParams &params)
    : System(SimConfig::paper(cfg).withCore(params.core)
                 .withMem(params.mem)
                 .withCoreCount(params.coreCount))
{
}

System::System(const SimConfig &config)
    : cfg_(config.config()), params_(config.params())
{
    const SimConfigReport report = config.validate();
    ede_assert(report.accepted(), "invalid SimConfig:\n",
               report.describe());
    wire();
}

void
System::wire()
{
    const auto n = static_cast<unsigned>(params_.coreCount);
    mem_ = std::make_unique<MemSystem>(params_.mem, n);
    if (n > 1)
        xcore_ = std::make_unique<CrossCoreOrdering>(n);
    for (unsigned i = 0; i < n; ++i) {
        auto core = std::make_unique<OoOCore>(params_.core, *mem_, i);
        core->setTimingImage(&timingImage_);
        if (xcore_)
            core->setCrossCore(xcore_.get());
        cores_.push_back(std::move(core));
    }
    // The host profile aggregates whole-machine wall time; the group
    // run loop charges it through core 0.
    cores_.front()->setProfile(&profile_);

    // Entering the persistent on-DIMM buffer makes a line durable:
    // snapshot its coherent contents into the crash image.
    mem_->controller().nvm().setPersistHook(
        [this](Addr addr, std::uint32_t size, Cycle now,
               TraceIndex origin, unsigned core) {
            nvmImage_.copyRange(timingImage_, addr, size);
            PersistEvent ev;
            ev.addr = addr;
            ev.size = size;
            ev.cycle = now;
            ev.origin = origin;
            ev.core = core;
            if (recordPersistData_) {
                ev.bytes.resize(size);
                timingImage_.read(addr, ev.bytes.data(), size);
            }
            persistEvents_.push_back(std::move(ev));
        });

    mem_->controller().nvm().setMediaWriteHook(
        [this](Addr line, Cycle now) {
            mediaWriteEvents_.push_back(MediaWriteEvent{line, now});
        });
}

Cycle
System::run(const std::vector<Trace> &traces)
{
    ede_assert(traces.size() == cores_.size(),
               "System::run needs one trace per core (",
               cores_.size(), " cores, ", traces.size(), " traces)");
    std::vector<OoOCore *> cores;
    std::vector<const Trace *> ptrs;
    for (std::size_t i = 0; i < cores_.size(); ++i) {
        cores.push_back(cores_[i].get());
        ptrs.push_back(&traces[i]);
    }
    return CoreGroup(std::move(cores)).run(ptrs);
}

Cycle
System::run(const Trace &trace)
{
    ede_assert(cores_.size() == 1,
               "System::run(Trace) is the single-core entry point; "
               "this machine has ", cores_.size(),
               " cores -- pass one trace per core");
    return CoreGroup({cores_.front().get()}).run({&trace});
}

const SimError *
System::firstError() const
{
    for (const auto &c : cores_) {
        if (c->simError().kind != SimErrorKind::None)
            return &c->simError();
    }
    return nullptr;
}

RunResult
System::result() const
{
    RunResult r;
    r.config = cfg_;
    r.coreCount = coreCount();
    for (const auto &c : cores_) {
        CoreRunStats per;
        per.core = c->coreId();
        per.stats = c->stats();
        per.wb = c->wbStats();
        per.l1d = mem_->l1d(c->coreId()).stats();
        r.cycles = std::max(r.cycles, per.stats.cycles);
        r.perCore.push_back(std::move(per));
    }
    r.core = r.perCore.front().stats;
    r.wb = r.perCore.front().wb;
    r.l1d = r.perCore.front().l1d;
    const MemSystem &m = *mem_;
    r.nvm = m.controller().nvm().stats();
    r.nvmOccupancy = m.controller().nvm().occupancyDist();
    r.l2 = m.l2().stats();
    r.l3 = m.l3().stats();
    r.dram = m.controller().dram().stats();
    r.coherence = m.coherenceStats();
    return r;
}

} // namespace ede
