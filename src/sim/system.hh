/**
 * @file
 * The assembled simulated system: N cores + shared hierarchy + the
 * three memory images.  Cores are homogeneous, each with a private
 * L1D / write buffer / EDM, meeting at the L2 coherence point; a
 * CrossCoreOrdering file (multi-core only) widens the EDE WAIT
 * counters across that point.
 *
 * Image roles:
 *  - volatileImage: mutated by the *functional* execution while the
 *    workload emits its trace (architectural end state);
 *  - timingImage: updated in store-visibility order as the timing
 *    simulation drains the write buffer (coherent memory state);
 *  - nvmImage: updated only when lines enter the NVM persistence
 *    domain -- this is the state that survives a crash.
 */

#ifndef EDE_SIM_SYSTEM_HH
#define EDE_SIM_SYSTEM_HH

#include <memory>
#include <vector>

#include "mem/memory_image.hh"
#include "pipeline/core.hh"
#include "sim/config.hh"
#include "sim/sim_config.hh"
#include "traffic/latency.hh"

namespace ede {

/** One write entering the persistence domain. */
struct PersistEvent
{
    Addr addr = kNoAddr;
    std::uint32_t size = 0;
    Cycle cycle = kNoCycle;

    /**
     * Trace index of the store/CVAP that pushed this write from the
     * write buffer, or kNoOrigin for cache evictions.  The model
     * checker uses this to bind each persist event to the EDK/fence
     * constraints of its originating instruction.
     */
    TraceIndex origin = kNoOrigin;

    /** Core whose push persisted; meaningful when origin is real. */
    unsigned core = 0;

    /** Durable bytes; filled only when data recording is enabled. */
    std::vector<std::uint8_t> bytes;
};

/**
 * One 256 B line completing its media write.  Under a failed
 * power-down drain only lines already on media are guaranteed
 * durable; the fault campaign joins these against persist events to
 * decide which WPQ slots an adversarial crash may drop.
 */
struct MediaWriteEvent
{
    Addr lineAddr = kNoAddr;  ///< 256 B aligned media line.
    Cycle cycle = kNoCycle;
};

/** One core's slice of a multi-core run. */
struct CoreRunStats
{
    unsigned core = 0;        ///< Core index.
    CoreStats stats;          ///< Pipeline counters (incl. cycles).
    WriteBufferStats wb;      ///< This core's write buffer.
    CacheStats l1d;           ///< This core's private L1D.
};

/** Copyable snapshot of every statistic a bench needs. */
struct RunResult
{
    Config config = Config::B;
    Cycle cycles = 0;          ///< Machine run length (slowest core).
    unsigned coreCount = 1;

    /** @name Core 0's counters (the historical single-core fields). */
    /// @{
    CoreStats core;
    WriteBufferStats wb;
    CacheStats l1d;
    /// @}

    /** Per-core breakdown, index order; size == coreCount. */
    std::vector<CoreRunStats> perCore;

    NvmStats nvm;
    Distribution nvmOccupancy{128, 1};
    CacheStats l2;
    CacheStats l3;
    DramStats dram;
    CoherenceStats coherence; ///< Zero on a single-core machine.

    /**
     * Open-loop tail-latency records; enabled only when the run was
     * driven by a traffic plan (RunRequest::ofTraffic).
     */
    traffic::TrafficResult traffic;
};

/** An N-core simulated machine sharing one hierarchy at the L2. */
class System
{
  public:
    /** Build for configuration @p cfg with Table I parameters. */
    explicit System(Config cfg);

    /** Build with explicit parameters (ablation sweeps). */
    System(Config cfg, const SimParams &params);

    /**
     * Build from a unified SimConfig.  The configuration is
     * validated first; error-level diagnostics are fatal with the
     * full report.
     */
    explicit System(const SimConfig &config);

    /** @name Memory images. */
    /// @{
    MemoryImage &volatileImage() { return volatileImage_; }
    MemoryImage &timingImage() { return timingImage_; }
    MemoryImage &nvmImage() { return nvmImage_; }
    const MemoryImage &nvmImage() const { return nvmImage_; }
    /// @}

    /** Record per-trace-index completion cycles (audit support). */
    void
    recordCompletions(bool on)
    {
        for (auto &c : cores_)
            c->setRecordCompletions(on);
    }

    /** Also capture the bytes of every persist event (crash images). */
    void recordPersistData(bool on) { recordPersistData_ = on; }

    /**
     * Run one trace per core, lock-step, to completion; @return the
     * machine run length (the slowest core's finish cycle).  Check
     * firstError() before trusting the count.
     */
    Cycle run(const std::vector<Trace> &traces);

    /** Single-core convenience; @pre coreCount() == 1. */
    Cycle run(const Trace &trace);

    /** Persistence-domain entry events, in order. */
    const std::vector<PersistEvent> &persistEvents() const
    {
        return persistEvents_;
    }

    /** Media-write completions, in order. */
    const std::vector<MediaWriteEvent> &mediaWriteEvents() const
    {
        return mediaWriteEvents_;
    }

    /** Core 0's completion cycles (needs recording on). */
    const std::vector<Cycle> &completionCycles() const
    {
        return cores_.front()->completionCycles();
    }

    /** Per-trace-index completion cycles of core @p i. */
    const std::vector<Cycle> &completionCycles(unsigned i) const
    {
        return cores_.at(i)->completionCycles();
    }

    /** Statistics snapshot. */
    RunResult result() const;

    /** Host-perf profile of the (completed) run. */
    const HostProfile &profile() const { return profile_; }

    /**
     * The first core (index order) that stopped on a structured
     * error, or nullptr after a clean run.  On a multi-core machine
     * any core's abort stops the whole group, so this is the root
     * diagnostic.
     */
    const SimError *firstError() const;

    /** @name Component access. */
    /// @{
    OoOCore &core() { return *cores_.front(); }
    const OoOCore &core() const { return *cores_.front(); }
    OoOCore &core(unsigned i) { return *cores_.at(i); }
    const OoOCore &core(unsigned i) const { return *cores_.at(i); }
    unsigned coreCount() const
    {
        return static_cast<unsigned>(cores_.size());
    }
    MemSystem &mem() { return *mem_; }
    const MemSystem &mem() const { return *mem_; }
    Config config() const { return cfg_; }
    const SimParams &params() const { return params_; }
    /// @}

  private:
    void wire();

    Config cfg_;
    SimParams params_;
    MemoryImage volatileImage_;
    MemoryImage timingImage_;
    MemoryImage nvmImage_;
    std::unique_ptr<MemSystem> mem_;
    std::vector<std::unique_ptr<OoOCore>> cores_;
    std::unique_ptr<CrossCoreOrdering> xcore_; ///< Null on one core.
    std::vector<PersistEvent> persistEvents_;
    std::vector<MediaWriteEvent> mediaWriteEvents_;
    HostProfile profile_;
    bool recordPersistData_ = false;
};

} // namespace ede

#endif // EDE_SIM_SYSTEM_HH
