/**
 * @file
 * The assembled simulated system: core + hierarchy + the three
 * memory images.
 *
 * Image roles:
 *  - volatileImage: mutated by the *functional* execution while the
 *    workload emits its trace (architectural end state);
 *  - timingImage: updated in store-visibility order as the timing
 *    simulation drains the write buffer (coherent memory state);
 *  - nvmImage: updated only when lines enter the NVM persistence
 *    domain -- this is the state that survives a crash.
 */

#ifndef EDE_SIM_SYSTEM_HH
#define EDE_SIM_SYSTEM_HH

#include <memory>
#include <vector>

#include "mem/memory_image.hh"
#include "pipeline/core.hh"
#include "sim/config.hh"
#include "sim/sim_config.hh"

namespace ede {

/** One write entering the persistence domain. */
struct PersistEvent
{
    Addr addr = kNoAddr;
    std::uint32_t size = 0;
    Cycle cycle = kNoCycle;

    /**
     * Trace index of the store/CVAP that pushed this write from the
     * write buffer, or kNoOrigin for cache evictions.  The model
     * checker uses this to bind each persist event to the EDK/fence
     * constraints of its originating instruction.
     */
    TraceIndex origin = kNoOrigin;

    /** Durable bytes; filled only when data recording is enabled. */
    std::vector<std::uint8_t> bytes;
};

/**
 * One 256 B line completing its media write.  Under a failed
 * power-down drain only lines already on media are guaranteed
 * durable; the fault campaign joins these against persist events to
 * decide which WPQ slots an adversarial crash may drop.
 */
struct MediaWriteEvent
{
    Addr lineAddr = kNoAddr;  ///< 256 B aligned media line.
    Cycle cycle = kNoCycle;
};

/** Copyable snapshot of every statistic a bench needs. */
struct RunResult
{
    Config config = Config::B;
    Cycle cycles = 0;
    CoreStats core;
    WriteBufferStats wb;
    NvmStats nvm;
    Distribution nvmOccupancy{128, 1};
    CacheStats l1d;
    CacheStats l2;
    CacheStats l3;
    DramStats dram;
};

/** A single-core simulated machine. */
class System
{
  public:
    /** Build for configuration @p cfg with Table I parameters. */
    explicit System(Config cfg);

    /** Build with explicit parameters (ablation sweeps). */
    System(Config cfg, const SimParams &params);

    /**
     * Build from a unified SimConfig.  The configuration is
     * validated first; error-level diagnostics are fatal with the
     * full report.
     */
    explicit System(const SimConfig &config);

    /** @name Memory images. */
    /// @{
    MemoryImage &volatileImage() { return volatileImage_; }
    MemoryImage &timingImage() { return timingImage_; }
    MemoryImage &nvmImage() { return nvmImage_; }
    const MemoryImage &nvmImage() const { return nvmImage_; }
    /// @}

    /** Record per-trace-index completion cycles (audit support). */
    void recordCompletions(bool on) { core_->setRecordCompletions(on); }

    /** Also capture the bytes of every persist event (crash images). */
    void recordPersistData(bool on) { recordPersistData_ = on; }

    /** Run a trace to completion; @return cycle count. */
    Cycle run(const Trace &trace);

    /** Persistence-domain entry events, in order. */
    const std::vector<PersistEvent> &persistEvents() const
    {
        return persistEvents_;
    }

    /** Media-write completions, in order. */
    const std::vector<MediaWriteEvent> &mediaWriteEvents() const
    {
        return mediaWriteEvents_;
    }

    /** Per-trace-index completion cycles (needs recording on). */
    const std::vector<Cycle> &completionCycles() const
    {
        return core_->completionCycles();
    }

    /** Statistics snapshot. */
    RunResult result() const;

    /** Host-perf profile of the (completed) run. */
    const HostProfile &profile() const { return profile_; }

    /** @name Component access. */
    /// @{
    OoOCore &core() { return *core_; }
    const OoOCore &core() const { return *core_; }
    MemSystem &mem() { return *mem_; }
    const MemSystem &mem() const { return *mem_; }
    Config config() const { return cfg_; }
    const SimParams &params() const { return params_; }
    /// @}

  private:
    void wire();

    Config cfg_;
    SimParams params_;
    MemoryImage volatileImage_;
    MemoryImage timingImage_;
    MemoryImage nvmImage_;
    std::unique_ptr<MemSystem> mem_;
    std::unique_ptr<OoOCore> core_;
    std::vector<PersistEvent> persistEvents_;
    std::vector<MediaWriteEvent> mediaWriteEvents_;
    HostProfile profile_;
    bool recordPersistData_ = false;
};

} // namespace ede

#endif // EDE_SIM_SYSTEM_HH
