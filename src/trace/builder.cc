#include "trace/builder.hh"

#include "common/logging.hh"

namespace ede {

TraceBuilder::TraceBuilder(Trace &trace, Addr text_base)
    : trace_(trace), nextPc_(text_base)
{
}

Addr
TraceBuilder::sitePc(const std::string &site)
{
    auto it = sites_.find(site);
    if (it != sites_.end())
        return it->second;
    Addr pc = nextPc_;
    nextPc_ += 4;
    sites_.emplace(site, pc);
    return pc;
}

std::size_t
TraceBuilder::emit(DynInst di, const std::string &site)
{
    if (!site.empty()) {
        di.pc = sitePc(site);
    } else {
        di.pc = nextPc_;
        nextPc_ += 4;
    }
    return trace_.append(di);
}

std::size_t
TraceBuilder::nop()
{
    DynInst di;
    di.si.op = Op::Nop;
    return emit(di);
}

std::size_t
TraceBuilder::movImm(RegIndex dst, std::int64_t imm)
{
    DynInst di;
    di.si.op = Op::Mov;
    di.si.dst = dst;
    di.si.imm = imm;
    return emit(di);
}

std::size_t
TraceBuilder::movReg(RegIndex dst, RegIndex src)
{
    DynInst di;
    di.si.op = Op::Mov;
    di.si.dst = dst;
    di.si.src1 = src;
    return emit(di);
}

std::size_t
TraceBuilder::alu(RegIndex dst, RegIndex src1, RegIndex src2,
                  std::int64_t imm)
{
    DynInst di;
    di.si.op = Op::IntAlu;
    di.si.dst = dst;
    di.si.src1 = src1;
    di.si.src2 = src2;
    di.si.imm = imm;
    return emit(di);
}

std::size_t
TraceBuilder::mul(RegIndex dst, RegIndex src1, RegIndex src2)
{
    DynInst di;
    di.si.op = Op::IntMult;
    di.si.dst = dst;
    di.si.src1 = src1;
    di.si.src2 = src2;
    return emit(di);
}

std::size_t
TraceBuilder::ldr(RegIndex dst, RegIndex base, Addr addr,
                  std::int64_t disp, EdkOps edks)
{
    ede_assert(addr != kNoAddr, "ldr requires a resolved address");
    DynInst di;
    di.si.op = Op::Ldr;
    di.si.dst = dst;
    di.si.base = base;
    di.si.imm = disp;
    di.si.size = 8;
    di.si.edkDef = edks.def;
    di.si.edkUse = edks.use;
    di.addr = addr;
    return emit(di);
}

std::size_t
TraceBuilder::str(RegIndex src, RegIndex base, Addr addr,
                  std::uint64_t value, std::int64_t disp, EdkOps edks)
{
    ede_assert(addr != kNoAddr, "str requires a resolved address");
    DynInst di;
    di.si.op = Op::Str;
    di.si.src1 = src;
    di.si.base = base;
    di.si.imm = disp;
    di.si.size = 8;
    di.si.edkDef = edks.def;
    di.si.edkUse = edks.use;
    di.addr = addr;
    di.val0 = value;
    return emit(di);
}

std::size_t
TraceBuilder::stp(RegIndex src1, RegIndex src2, RegIndex base,
                  Addr addr, std::uint64_t v0, std::uint64_t v1,
                  std::int64_t disp, EdkOps edks)
{
    ede_assert(addr != kNoAddr, "stp requires a resolved address");
    ede_assert((addr & 0xf) == 0, "stp requires 16-byte alignment");
    DynInst di;
    di.si.op = Op::Stp;
    di.si.src1 = src1;
    di.si.src2 = src2;
    di.si.base = base;
    di.si.imm = disp;
    di.si.size = 16;
    di.si.edkDef = edks.def;
    di.si.edkUse = edks.use;
    di.addr = addr;
    di.val0 = v0;
    di.val1 = v1;
    return emit(di);
}

std::size_t
TraceBuilder::cvap(RegIndex base, Addr addr, EdkOps edks)
{
    ede_assert(addr != kNoAddr, "dc cvap requires a resolved address");
    DynInst di;
    di.si.op = Op::DcCvap;
    di.si.base = base;
    di.si.size = 0;
    di.si.edkDef = edks.def;
    di.si.edkUse = edks.use;
    di.addr = addr;
    return emit(di);
}

std::size_t
TraceBuilder::dsbSy()
{
    DynInst di;
    di.si.op = Op::DsbSy;
    return emit(di);
}

std::size_t
TraceBuilder::dmbSt()
{
    DynInst di;
    di.si.op = Op::DmbSt;
    return emit(di);
}

std::size_t
TraceBuilder::join(Edk def, Edk use1, Edk use2)
{
    DynInst di;
    di.si.op = Op::Join;
    di.si.edkDef = def;
    di.si.edkUse = use1;
    di.si.edkUse2 = use2;
    return emit(di);
}

std::size_t
TraceBuilder::waitKey(Edk key)
{
    ede_assert(edkIsReal(key), "WAIT_KEY requires a non-zero key");
    DynInst di;
    di.si.op = Op::WaitKey;
    di.si.edkUse = key;
    return emit(di);
}

std::size_t
TraceBuilder::waitAllKeys()
{
    DynInst di;
    di.si.op = Op::WaitAllKeys;
    return emit(di);
}

std::size_t
TraceBuilder::branch(const std::string &site)
{
    DynInst di;
    di.si.op = Op::Branch;
    di.taken = true;
    return emit(di, site);
}

std::size_t
TraceBuilder::branchCond(const std::string &site, RegIndex src1,
                         RegIndex src2, bool taken)
{
    DynInst di;
    di.si.op = Op::BranchCond;
    di.si.src1 = src1;
    di.si.src2 = src2;
    di.taken = taken;
    return emit(di, site);
}

} // namespace ede
