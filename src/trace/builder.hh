/**
 * @file
 * TraceBuilder: the codegen DSL used to emit dynamic instruction
 * streams.
 *
 * Workloads and the NVM framework call these helpers while executing
 * functionally; each helper appends one micro-op mirroring the
 * assembly the paper's Clang/LLVM port emits (Figures 4 and 7).
 * Static PCs are assigned per *site* so the same source location
 * always maps to the same PC, which makes the branch predictor and
 * I-cache behave as they would on compiled code.
 */

#ifndef EDE_TRACE_BUILDER_HH
#define EDE_TRACE_BUILDER_HH

#include <cstdint>
#include <string>
#include <unordered_map>

#include "common/types.hh"
#include "trace/trace.hh"

namespace ede {

/** Optional pair of EDE key operands for memory-op variants. */
struct EdkOps
{
    Edk def = kZeroEdk;
    Edk use = kZeroEdk;
};

/**
 * Emits micro-ops into a Trace with stable site PCs.
 *
 * All memory-op helpers take the *resolved* effective address; the
 * base register operand still participates in register-dependence
 * scheduling, mirroring an address that was computed into a register.
 */
class TraceBuilder
{
  public:
    /** Build into @p trace. @p text_base is the first auto PC. */
    explicit TraceBuilder(Trace &trace, Addr text_base = 0x400000);

    /** Stable PC for a named static code site. */
    Addr sitePc(const std::string &site);

    /** @name Emit helpers; each returns the trace index. */
    /// @{
    std::size_t nop();
    std::size_t movImm(RegIndex dst, std::int64_t imm);
    std::size_t movReg(RegIndex dst, RegIndex src);
    std::size_t alu(RegIndex dst, RegIndex src1, RegIndex src2 = kNoReg,
                    std::int64_t imm = 0);
    std::size_t mul(RegIndex dst, RegIndex src1, RegIndex src2);

    std::size_t ldr(RegIndex dst, RegIndex base, Addr addr,
                    std::int64_t disp = 0, EdkOps edks = {});
    std::size_t str(RegIndex src, RegIndex base, Addr addr,
                    std::uint64_t value, std::int64_t disp = 0,
                    EdkOps edks = {});
    std::size_t stp(RegIndex src1, RegIndex src2, RegIndex base,
                    Addr addr, std::uint64_t v0, std::uint64_t v1,
                    std::int64_t disp = 0, EdkOps edks = {});
    std::size_t cvap(RegIndex base, Addr addr, EdkOps edks = {});

    std::size_t dsbSy();
    std::size_t dmbSt();

    std::size_t join(Edk def, Edk use1, Edk use2);
    std::size_t waitKey(Edk key);
    std::size_t waitAllKeys();

    std::size_t branch(const std::string &site);
    std::size_t branchCond(const std::string &site, RegIndex src1,
                           RegIndex src2, bool taken);
    /// @}

    /** The trace being built. */
    Trace &trace() { return trace_; }

  private:
    /** Append with an auto-assigned or site PC. */
    std::size_t emit(DynInst di, const std::string &site = {});

    Trace &trace_;
    Addr nextPc_;
    std::unordered_map<std::string, Addr> sites_;
};

/**
 * Rotating pool of scratch registers, approximating how a register
 * allocator cycles temporaries through the integer file.  Keeps
 * synthetic traces from serializing on a single architectural
 * register.
 */
class TempRegPool
{
  public:
    /** Rotate through [lo, hi] inclusive. */
    TempRegPool(RegIndex lo = 8, RegIndex hi = 25) : lo_(lo), hi_(hi),
        next_(lo) {}

    /** Next scratch register. */
    RegIndex
    get()
    {
        RegIndex r = next_;
        next_ = (next_ == hi_) ? lo_ : static_cast<RegIndex>(next_ + 1);
        return r;
    }

  private:
    RegIndex lo_;
    RegIndex hi_;
    RegIndex next_;
};

} // namespace ede

#endif // EDE_TRACE_BUILDER_HH
