#include "trace/trace.hh"

#include <algorithm>

namespace ede {

std::size_t
Trace::edeCount() const
{
    return static_cast<std::size_t>(
        std::count_if(insts_.begin(), insts_.end(),
                      [](const DynInst &di) { return di.si.usesEde(); }));
}

void
Trace::clear()
{
    insts_.clear();
    opCounts_.fill(0);
}

} // namespace ede
