/**
 * @file
 * Dynamic instruction stream container.
 *
 * A Trace is the unit of work handed to the pipeline: the dynamic
 * micro-op sequence a compiled program would execute, with control
 * flow already resolved (branch outcomes recorded) and effective
 * addresses computed by the functional execution.
 */

#ifndef EDE_TRACE_TRACE_HH
#define EDE_TRACE_TRACE_HH

#include <array>
#include <cstddef>
#include <vector>

#include "isa/inst.hh"

namespace ede {

/** A finite dynamic instruction stream. */
class Trace
{
  public:
    /** Append an instruction and return its index. */
    std::size_t
    append(const DynInst &di)
    {
        insts_.push_back(di);
        ++opCounts_[static_cast<std::size_t>(di.op())];
        return insts_.size() - 1;
    }

    /** Number of instructions. */
    std::size_t size() const { return insts_.size(); }

    /** True when the trace holds no instructions. */
    bool empty() const { return insts_.empty(); }

    /** Access instruction @p i. */
    const DynInst &operator[](std::size_t i) const { return insts_[i]; }

    /** Mutable access (used by configuration lowering rewrites). */
    DynInst &at(std::size_t i) { return insts_[i]; }

    /** Count of instructions with opcode class @p op. */
    std::size_t
    opCount(Op op) const
    {
        return opCounts_[static_cast<std::size_t>(op)];
    }

    /** Count of fence instructions (DSB SY + DMB ST). */
    std::size_t
    fenceCount() const
    {
        return opCount(Op::DsbSy) + opCount(Op::DmbSt);
    }

    /** Count of instructions using any EDE key field. */
    std::size_t edeCount() const;

    /** Iteration support. */
    auto begin() const { return insts_.begin(); }
    auto end() const { return insts_.end(); }

    /** Remove all instructions. */
    void clear();

  private:
    std::vector<DynInst> insts_;
    std::array<std::size_t, kNumOps> opCounts_{};
};

} // namespace ede

#endif // EDE_TRACE_TRACE_HH
