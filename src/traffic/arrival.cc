#include "traffic/arrival.hh"

#include <cmath>

namespace ede {
namespace traffic {

Cycle
ArrivalProcess::next()
{
    double mean = spec_.meanGap;
    if (spec_.kind == ArrivalKind::Bursty && burst_)
        mean = spec_.meanGap / spec_.burstFactor;

    // Inverse-CDF exponential draw.  real() is in [0, 1), so the
    // argument of log stays in (0, 1] and the gap is finite.
    const double u = rng_.real();
    const double gap = -mean * std::log(1.0 - u);
    clock_ += gap;

    if (spec_.kind == ArrivalKind::Bursty && rng_.chance(spec_.pSwitch))
        burst_ = !burst_;

    return static_cast<Cycle>(clock_);
}

Cycle
ArrivalProcess::thinkGap()
{
    const double u = rng_.real();
    const double gap = -spec_.thinkTime * std::log(1.0 - u);
    return static_cast<Cycle>(gap);
}

} // namespace traffic
} // namespace ede
