/**
 * @file
 * Seeded open-loop arrival processes.
 *
 * An open-loop harness offers load on the clients' schedule, not the
 * server's: arrivals keep coming whether or not the machine has
 * caught up, which is exactly what exposes queueing delay and the
 * overload knee that a closed-loop (back-to-back) run structurally
 * cannot show.  Two processes are modelled:
 *
 *  - Poisson: i.i.d. exponential inter-arrival gaps around a mean --
 *    the classic memoryless client population;
 *  - Bursty: a two-state Markov-modulated Poisson process (MMPP).
 *    The process flips between a calm state (the nominal mean gap)
 *    and a burst state (mean gap divided by burstFactor) with
 *    probability pSwitch after each arrival, producing the clumped
 *    arrivals that hurt tails far more than their average rate
 *    suggests;
 *  - ClosedPool: a finite client pool per stream (the closed /
 *    hybrid half of the classic open-vs-closed contrast).  Each of
 *    poolSize clients thinks for a seeded exponential gap, issues
 *    its next transaction, and only thinks again once that
 *    transaction leaves the system -- so offered load is
 *    self-limiting and the knee sweep can contrast how open load
 *    diverges where closed load merely slows.  The per-transaction
 *    think gaps are drawn at build time (thinkGap()); the actual
 *    arrival stamps emerge in the replay, where completion times
 *    are known.
 *
 * Determinism: every draw comes from an explicitly seeded Rng, and
 * the accumulated arrival clock is quantized to integer cycles only
 * at the observation point, so a (spec, seed) pair always yields the
 * identical arrival sequence.
 */

#ifndef EDE_TRAFFIC_ARRIVAL_HH
#define EDE_TRAFFIC_ARRIVAL_HH

#include <string_view>

#include "common/random.hh"
#include "common/types.hh"

namespace ede {
namespace traffic {

/** The modelled arrival processes. */
enum class ArrivalKind { Poisson, Bursty, ClosedPool };

/** Printable process name (JSON / labels). */
constexpr std::string_view
arrivalKindName(ArrivalKind k)
{
    switch (k) {
      case ArrivalKind::Poisson: return "poisson";
      case ArrivalKind::Bursty: return "bursty";
      case ArrivalKind::ClosedPool: return "closed-pool";
    }
    return "<bad-arrival-kind>";
}

/** One offered-load point. */
struct ArrivalSpec
{
    ArrivalKind kind = ArrivalKind::Poisson;

    /** Mean inter-arrival gap per stream, in cycles (> 0). */
    double meanGap = 2000.0;

    /** @name Bursty (MMPP) only. */
    /// @{
    double burstFactor = 8.0;  ///< Burst-state rate multiplier (>= 1).
    double pSwitch = 0.05;     ///< Per-arrival state-flip probability.
    /// @}

    /** @name ClosedPool only. */
    /// @{
    unsigned poolSize = 4;      ///< Clients per stream (>= 1).
    double thinkTime = 2000.0;  ///< Mean think gap, cycles (>= 0).
    /// @}
};

/** A seeded generator of monotone arrival timestamps. */
class ArrivalProcess
{
  public:
    ArrivalProcess(const ArrivalSpec &spec, std::uint64_t seed)
        : spec_(spec), rng_(seed)
    {
    }

    /** The next arrival's cycle stamp (non-decreasing). */
    Cycle next();

    /**
     * An independent think-gap draw (ClosedPool): exponential around
     * thinkTime, quantized per draw -- no cumulative clock, since a
     * closed client's arrival stamp is completion + think and only
     * the replay knows the completion.
     */
    Cycle thinkGap();

  private:
    ArrivalSpec spec_;
    Rng rng_;
    double clock_ = 0.0;  ///< Continuous time; quantized on read.
    bool burst_ = false;  ///< MMPP state.
};

} // namespace traffic
} // namespace ede

#endif // EDE_TRAFFIC_ARRIVAL_HH
