/**
 * @file
 * Seeded open-loop arrival processes.
 *
 * An open-loop harness offers load on the clients' schedule, not the
 * server's: arrivals keep coming whether or not the machine has
 * caught up, which is exactly what exposes queueing delay and the
 * overload knee that a closed-loop (back-to-back) run structurally
 * cannot show.  Two processes are modelled:
 *
 *  - Poisson: i.i.d. exponential inter-arrival gaps around a mean --
 *    the classic memoryless client population;
 *  - Bursty: a two-state Markov-modulated Poisson process (MMPP).
 *    The process flips between a calm state (the nominal mean gap)
 *    and a burst state (mean gap divided by burstFactor) with
 *    probability pSwitch after each arrival, producing the clumped
 *    arrivals that hurt tails far more than their average rate
 *    suggests.
 *
 * Determinism: every draw comes from an explicitly seeded Rng, and
 * the accumulated arrival clock is quantized to integer cycles only
 * at the observation point, so a (spec, seed) pair always yields the
 * identical arrival sequence.
 */

#ifndef EDE_TRAFFIC_ARRIVAL_HH
#define EDE_TRAFFIC_ARRIVAL_HH

#include <string_view>

#include "common/random.hh"
#include "common/types.hh"

namespace ede {
namespace traffic {

/** The modelled arrival processes. */
enum class ArrivalKind { Poisson, Bursty };

/** Printable process name (JSON / labels). */
constexpr std::string_view
arrivalKindName(ArrivalKind k)
{
    switch (k) {
      case ArrivalKind::Poisson: return "poisson";
      case ArrivalKind::Bursty: return "bursty";
    }
    return "<bad-arrival-kind>";
}

/** One offered-load point. */
struct ArrivalSpec
{
    ArrivalKind kind = ArrivalKind::Poisson;

    /** Mean inter-arrival gap per stream, in cycles (> 0). */
    double meanGap = 2000.0;

    /** @name Bursty (MMPP) only. */
    /// @{
    double burstFactor = 8.0;  ///< Burst-state rate multiplier (>= 1).
    double pSwitch = 0.05;     ///< Per-arrival state-flip probability.
    /// @}
};

/** A seeded generator of monotone arrival timestamps. */
class ArrivalProcess
{
  public:
    ArrivalProcess(const ArrivalSpec &spec, std::uint64_t seed)
        : spec_(spec), rng_(seed)
    {
    }

    /** The next arrival's cycle stamp (non-decreasing). */
    Cycle next();

  private:
    ArrivalSpec spec_;
    Rng rng_;
    double clock_ = 0.0;  ///< Continuous time; quantized on read.
    bool burst_ = false;  ///< MMPP state.
};

} // namespace traffic
} // namespace ede

#endif // EDE_TRAFFIC_ARRIVAL_HH
