#include "traffic/latency.hh"

#include <algorithm>

#include "common/logging.hh"

namespace ede {
namespace traffic {

Cycle
exactPermille(std::vector<Cycle> &samples, unsigned permille)
{
    ede_assert(!samples.empty(),
               "exactPermille over an empty population");
    ede_assert(permille >= 1 && permille <= 1000,
               "permille must be in [1, 1000], got ", permille);
    const std::uint64_t n = samples.size();
    // Nearest rank: ceil(n * permille / 1000) - 1, in pure integer
    // arithmetic so the selected index can never drift with the
    // platform's floating-point rounding.
    const std::uint64_t idx = (n * permille + 999) / 1000 - 1;
    auto nth = samples.begin() + static_cast<std::ptrdiff_t>(idx);
    std::nth_element(samples.begin(), nth, samples.end());
    return *nth;
}

LatencySummary
summarize(std::vector<Cycle> samples)
{
    LatencySummary s;
    s.count = samples.size();
    if (samples.empty())
        return s;
    for (Cycle c : samples) {
        s.sum += c;
        s.max = std::max(s.max, c);
    }
    s.p50 = exactPermille(samples, 500);
    s.p99 = exactPermille(samples, 990);
    s.p999 = exactPermille(samples, 999);
    return s;
}

} // namespace traffic
} // namespace ede
