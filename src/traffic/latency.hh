/**
 * @file
 * Exact latency-percentile records for the traffic harness.
 *
 * Tail latency is the whole point of the open-loop harness, so the
 * percentiles are *exact order statistics* over the integer cycle
 * samples -- nearest-rank selection via nth_element -- never a
 * histogram approximation whose bucket geometry could smear the very
 * tail the sweep is hunting.  Integer in, integer out: summaries are
 * trivially bit-identical across --jobs counts and ticking modes, so
 * the determinism gates can cmp them byte for byte.
 */

#ifndef EDE_TRAFFIC_LATENCY_HH
#define EDE_TRAFFIC_LATENCY_HH

#include <vector>

#include "common/types.hh"

namespace ede {
namespace traffic {

/**
 * Exact per-mille nearest-rank order statistic: the smallest sample
 * such that at least permille/1000 of @p samples are <= it (index
 * ceil(n * permille / 1000) - 1 of the sorted order).  Selection is
 * done in place with nth_element; @p samples is reordered.
 * @pre !samples.empty() && 1 <= permille <= 1000.
 */
Cycle exactPermille(std::vector<Cycle> &samples, unsigned permille);

/** Exact order-statistics digest of one latency population. */
struct LatencySummary
{
    std::uint64_t count = 0;
    Cycle p50 = 0;        ///< Median (nearest rank).
    Cycle p99 = 0;        ///< 99th percentile (exact, not binned).
    Cycle p999 = 0;       ///< 99.9th percentile.
    Cycle max = 0;
    std::uint64_t sum = 0;  ///< For exact means downstream.

    /** Mean as a double (0 for an empty population). */
    double
    mean() const
    {
        return count ? static_cast<double>(sum) /
                           static_cast<double>(count)
                     : 0.0;
    }
};

/** Digest @p samples (consumed: selection reorders the vector). */
LatencySummary summarize(std::vector<Cycle> samples);

/** One stream's latency record. */
struct StreamLatency
{
    unsigned stream = 0;     ///< Stream id.
    unsigned core = 0;       ///< Core the stream was multiplexed onto.
    LatencySummary open;     ///< Open-loop latency (depart - arrival).
    LatencySummary service;  ///< Pure service time (machine cycles).
};

/** Everything a traffic run reports beyond the closed-loop counters. */
struct TrafficResult
{
    bool enabled = false;          ///< True only for traffic runs.
    LatencySummary open;           ///< Aggregate over every txn.
    LatencySummary service;
    std::vector<StreamLatency> streams;  ///< Stream-id order.
};

} // namespace traffic
} // namespace ede

#endif // EDE_TRAFFIC_LATENCY_HH
