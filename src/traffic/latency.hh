/**
 * @file
 * Exact latency-percentile records for the traffic harness.
 *
 * Tail latency is the whole point of the open-loop harness, so the
 * percentiles are *exact order statistics* over the integer cycle
 * samples -- nearest-rank selection via nth_element -- never a
 * histogram approximation whose bucket geometry could smear the very
 * tail the sweep is hunting.  Integer in, integer out: summaries are
 * trivially bit-identical across --jobs counts and ticking modes, so
 * the determinism gates can cmp them byte for byte.
 */

#ifndef EDE_TRAFFIC_LATENCY_HH
#define EDE_TRAFFIC_LATENCY_HH

#include <vector>

#include "common/types.hh"

namespace ede {
namespace traffic {

/**
 * Exact per-mille nearest-rank order statistic: the smallest sample
 * such that at least permille/1000 of @p samples are <= it (index
 * ceil(n * permille / 1000) - 1 of the sorted order).  Selection is
 * done in place with nth_element; @p samples is reordered.
 * @pre !samples.empty() && 1 <= permille <= 1000.
 */
Cycle exactPermille(std::vector<Cycle> &samples, unsigned permille);

/** Exact order-statistics digest of one latency population. */
struct LatencySummary
{
    std::uint64_t count = 0;
    Cycle p50 = 0;        ///< Median (nearest rank).
    Cycle p99 = 0;        ///< 99th percentile (exact, not binned).
    Cycle p999 = 0;       ///< 99.9th percentile.
    Cycle max = 0;
    std::uint64_t sum = 0;  ///< For exact means downstream.

    /** Mean as a double (0 for an empty population). */
    double
    mean() const
    {
        return count ? static_cast<double>(sum) /
                           static_cast<double>(count)
                     : 0.0;
    }
};

/** Digest @p samples (consumed: selection reorders the vector). */
LatencySummary summarize(std::vector<Cycle> samples);

/**
 * One stream's latency record.  A count of zero in either summary is
 * an explicit "no samples" verdict (the JSON sink emits absent
 * percentiles, never zeros) -- it arises when every transaction of a
 * stream was shed, or for an empty window slice.
 */
struct StreamLatency
{
    unsigned stream = 0;     ///< Stream id.
    unsigned core = 0;       ///< Core the stream was multiplexed onto.
    LatencySummary open;     ///< Open-loop latency (depart - arrival).
    LatencySummary service;  ///< Pure service time (machine cycles).

    /** @name Overload counters (zero unless a policy was active). */
    /// @{
    std::uint64_t shed = 0;      ///< Shed attempts (any reason).
    std::uint64_t retries = 0;   ///< Budgeted retries spent.
    std::uint64_t failures = 0;  ///< Permanently failed transactions.
    /// @}
};

/**
 * One progress window of the run: transactions are binned by their
 * per-stream index (window = index * windows / txnsOfStream), so the
 * series tracks run progression identically for open and closed-pool
 * arrivals.  A window is flagged warmup when it lies entirely inside
 * the warmup fraction of the run.
 */
struct WindowLatency
{
    unsigned window = 0;
    bool warmup = false;
    LatencySummary open;
    LatencySummary service;
};

/**
 * What the overload-control replay (traffic/overload.hh) reports when
 * an admission policy is active.  Goodput counts transactions that
 * completed AND met their deadline (every completion when no deadline
 * is configured); completed-but-late transactions are timeouts.
 * offered == completed + failures always holds.
 */
struct OverloadResult
{
    bool enabled = false;

    /** Backpressure-scaled finite queue depth actually enforced. */
    std::uint64_t effectiveDepth = 0;

    std::uint64_t offered = 0;    ///< Distinct transactions offered.
    std::uint64_t admitted = 0;   ///< Admission grants (= completions).
    std::uint64_t completed = 0;
    std::uint64_t goodput = 0;    ///< Completed within deadline.
    std::uint64_t timeouts = 0;   ///< Completed but past deadline.
    std::uint64_t failures = 0;   ///< Shed and never completed.

    /** @name Steady-state slice (warmup transactions excluded). */
    /// @{
    std::uint64_t steadyOffered = 0;
    std::uint64_t steadyGoodput = 0;
    /** First steady arrival to last arrival, for goodput *rates*. */
    Cycle steadyHorizon = 0;
    /// @}

    /** @name Shed attempts by reason. */
    /// @{
    std::uint64_t shedQueue = 0;     ///< Finite queue full.
    std::uint64_t shedDeadline = 0;  ///< Predicted start past deadline.
    std::uint64_t shedToken = 0;     ///< Token bucket empty.
    std::uint64_t shedDegrade = 0;   ///< Escalation-ladder rejections.
    /// @}

    /** @name Retry budget. */
    /// @{
    std::uint64_t retries = 0;
    std::uint64_t retryExhausted = 0;  ///< Failures with budget spent.
    /// @}

    /** @name Graceful-degradation ladder. */
    /// @{
    std::uint64_t degradeUp = 0;
    std::uint64_t degradeDown = 0;
    unsigned maxDegradeLevel = 0;  ///< Highest DegradeLevel reached.
    /// @}

    LatencySummary open;         ///< Completed txns, client-perceived.
    LatencySummary goodputOpen;  ///< Deadline-met txns only.
};

/** Everything a traffic run reports beyond the closed-loop counters. */
struct TrafficResult
{
    bool enabled = false;          ///< True only for traffic runs.
    LatencySummary open;           ///< Aggregate over every txn.
    LatencySummary service;

    /** @name Warmup vs steady-state split of the aggregates. */
    /// @{
    LatencySummary openWarmup;
    LatencySummary openSteady;
    LatencySummary serviceWarmup;
    LatencySummary serviceSteady;
    /// @}

    std::vector<WindowLatency> windows;  ///< Progress time series.
    std::vector<StreamLatency> streams;  ///< Stream-id order.

    OverloadResult overload;  ///< enabled only when a policy ran.
};

} // namespace traffic
} // namespace ede

#endif // EDE_TRAFFIC_LATENCY_HH
