#include "traffic/opmix.hh"

#include <cmath>

#include "common/logging.hh"

namespace ede {
namespace traffic {

ZipfGenerator::ZipfGenerator(std::uint64_t keys, double theta)
    : n_(keys), theta_(theta)
{
    ede_assert(keys >= 1, "zipfian keyspace must be non-empty");
    ede_assert(theta >= 0.0 && theta < 1.0,
               "zipfian theta must be in [0, 1)");
    zetan_ = 0.0;
    for (std::uint64_t i = 1; i <= n_; ++i)
        zetan_ += 1.0 / std::pow(static_cast<double>(i), theta_);
    alpha_ = 1.0 / (1.0 - theta_);
    const double zeta2 =
        1.0 + 1.0 / std::pow(2.0, theta_);  // zeta(2, theta).
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_),
                           1.0 - theta_)) /
           (1.0 - zeta2 / zetan_);
    halfPowTheta_ = std::pow(0.5, theta_);
}

std::uint64_t
ZipfGenerator::next(Rng &rng)
{
    if (n_ == 1)
        return 0;
    const double u = rng.real();
    const double uz = u * zetan_;
    if (uz < 1.0)
        return 0;
    if (uz < 1.0 + halfPowTheta_)
        return 1;
    const double frac = eta_ * u - eta_ + 1.0;
    auto rank = static_cast<std::uint64_t>(
        static_cast<double>(n_) * std::pow(frac, alpha_));
    return rank >= n_ ? n_ - 1 : rank;
}

} // namespace traffic
} // namespace ede
