/**
 * @file
 * YCSB-style operation mix with zipfian key skew.
 *
 * Request-serving workloads are never uniform: a few hot keys absorb
 * most of the traffic.  The generator follows the YCSB convention --
 * a read/update split plus a zipfian key-popularity distribution --
 * using the incremental Gray et al. sampler, which draws in O(1)
 * after an O(keys) zeta precomputation and needs no table of
 * cumulative weights.
 */

#ifndef EDE_TRAFFIC_OPMIX_HH
#define EDE_TRAFFIC_OPMIX_HH

#include <cstdint>

#include "common/random.hh"

namespace ede {
namespace traffic {

/** What one transaction does. */
enum class TxnKind { Read, Update };

/** The workload's operation mix and key-popularity skew. */
struct OpMix
{
    double readFraction = 0.5;  ///< P(read txn); rest are updates.

    /**
     * Zipfian skew parameter theta in [0, 1): 0 is uniform, 0.99 is
     * the YCSB default "hot" skew.  (theta = 1 is the divergent
     * harmonic case the incremental sampler cannot represent;
     * validation rejects it.)
     */
    double zipfTheta = 0.99;

    std::uint64_t keys = 256;   ///< Keyspace size per stream.
};

/**
 * Incremental zipfian sampler over [0, keys): rank 0 is the hottest
 * key.  Deterministic given the caller's Rng stream.
 */
class ZipfGenerator
{
  public:
    ZipfGenerator(std::uint64_t keys, double theta);

    /** Draw one key rank in [0, keys). */
    std::uint64_t next(Rng &rng);

  private:
    std::uint64_t n_;
    double theta_;
    double zetan_;   ///< zeta(n, theta).
    double alpha_;   ///< 1 / (1 - theta).
    double eta_;
    double halfPowTheta_;  ///< 0.5^theta.
};

/** Draw the next transaction's kind from @p mix. */
inline TxnKind
drawTxnKind(const OpMix &mix, Rng &rng)
{
    return rng.chance(mix.readFraction) ? TxnKind::Read
                                        : TxnKind::Update;
}

} // namespace traffic
} // namespace ede

#endif // EDE_TRAFFIC_OPMIX_HH
